package dhash

import (
	"fmt"
	"testing"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func BenchmarkInsertDistinct(b *testing.B) {
	terms := make([]string, 10000)
	for i := range terms {
		terms[i] = fmt.Sprintf("term%06d", i)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
					m := New(c, armci.New(c))
					for j := c.Rank(); j < len(terms); j += c.Size() {
						m.Insert(terms[j])
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInsertCached(b *testing.B) {
	// Re-inserting a seen term is a pure cache hit.
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		m := New(c, armci.New(c))
		m.Insert("hot")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Insert("hot")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFinalize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			m := New(c, armci.New(c))
			for j := 0; j < 5000; j++ {
				m.Insert(fmt.Sprintf("w%05d", j))
			}
			m.Finalize()
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
