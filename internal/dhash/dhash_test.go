package dhash

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

// newMap wires up a map inside a rank body.
func newMap(c *cluster.Comm) *Map {
	return New(c, armci.New(c))
}

func TestInsertAssignsStableIDs(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			m := newMap(c)
			a := m.Insert("alpha")
			b := m.Insert("beta")
			a2 := m.Insert("alpha")
			if a != a2 {
				return fmt.Errorf("re-insert changed id: %d vs %d", a, a2)
			}
			if a == b {
				return fmt.Errorf("distinct terms share id %d", a)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestConcurrentInsertsSameVocabulary(t *testing.T) {
	// All ranks insert overlapping term sets; after Finalize the global
	// vocabulary must contain each term exactly once with dense IDs 0..N-1.
	for _, p := range []int{1, 2, 3, 8} {
		terms := make([]string, 100)
		for i := range terms {
			terms[i] = fmt.Sprintf("term%03d", i)
		}
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			m := newMap(c)
			prov := make([]int64, len(terms))
			// Each rank inserts a shifted ordering so owners see
			// different interleavings.
			for i := range terms {
				j := (i + c.Rank()*13) % len(terms)
				prov[j] = m.Insert(terms[j])
			}
			n := m.Finalize()
			if n != int64(len(terms)) {
				return fmt.Errorf("N=%d want %d", n, len(terms))
			}
			seen := make(map[int64]string)
			for i, pid := range prov {
				d := m.Dense(pid)
				if d < 0 || d >= n {
					return fmt.Errorf("dense id %d out of range", d)
				}
				if prev, dup := seen[d]; dup && prev != terms[i] {
					return fmt.Errorf("dense id %d maps to %q and %q", d, prev, terms[i])
				}
				seen[d] = terms[i]
				if got := m.Term(d); got != terms[i] {
					return fmt.Errorf("Term(%d)=%q want %q", d, got, terms[i])
				}
				if got, ok := m.DenseLookup(terms[i]); !ok || got != d {
					return fmt.Errorf("DenseLookup(%q)=(%d,%v) want %d", terms[i], got, ok, d)
				}
			}
			if len(seen) != len(terms) {
				return fmt.Errorf("%d dense ids for %d terms", len(seen), len(terms))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestDenseIDsDeterministicAcrossRuns(t *testing.T) {
	// With a fixed P, dense numbering depends only on the vocabulary set,
	// not on insertion order — run twice with different per-rank orders.
	const p = 4
	terms := make([]string, 60)
	for i := range terms {
		terms[i] = fmt.Sprintf("w%02d", i)
	}
	runOnce := func(seed int64) map[string]int64 {
		out := make(map[string]int64)
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			m := newMap(c)
			order := rand.New(rand.NewSource(seed + int64(c.Rank()))).Perm(len(terms))
			for _, i := range order {
				m.Insert(terms[i])
			}
			m.Finalize()
			if c.Rank() == 0 {
				for _, term := range terms {
					id, ok := m.DenseLookup(term)
					if !ok {
						return fmt.Errorf("missing %q", term)
					}
					out[term] = id
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := runOnce(1), runOnce(999)
	for term, id := range a {
		if b[term] != id {
			t.Fatalf("term %q: dense id %d vs %d across insertion orders", term, id, b[term])
		}
	}
}

func TestDenseRangePartition(t *testing.T) {
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		m := newMap(c)
		for i := 0; i < 50; i++ {
			m.Insert(fmt.Sprintf("tok%d", i))
		}
		n := m.Finalize()
		var covered int64
		prevHi := int64(0)
		for r := 0; r < 4; r++ {
			lo, hi := m.DenseRange(r)
			if lo != prevHi {
				return fmt.Errorf("range gap at rank %d", r)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			return fmt.Errorf("ranges cover %d of %d", covered, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupWithoutInsert(t *testing.T) {
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		m := newMap(c)
		if c.Rank() == 0 {
			m.Insert("present")
		}
		c.Barrier()
		if _, ok := m.Lookup("absent"); ok {
			return fmt.Errorf("found absent term")
		}
		if _, ok := m.Lookup("present"); !ok {
			return fmt.Errorf("did not find present term")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnfinalizedAccessPanics(t *testing.T) {
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		m := newMap(c)
		m.Insert("x")
		m.Term(0) // must panic: not finalized
		return nil
	})
	if err == nil {
		t.Fatal("expected panic for pre-Finalize Term access")
	}
}

func TestLocalCountSumsToN(t *testing.T) {
	_, err := cluster.Run(4, simtime.Zero(), func(c *cluster.Comm) error {
		m := newMap(c)
		for i := 0; i < 37; i++ {
			m.Insert(fmt.Sprintf("q%02d", i))
		}
		c.Barrier()
		total := c.AllreduceSumInt(m.LocalCount())
		if total != 37 {
			return fmt.Errorf("local counts sum to %d want 37", total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDenseNumberingIsSortedPerOwner(t *testing.T) {
	// Within one owner's dense range, terms are lexicographically sorted.
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		m := newMap(c)
		words := []string{"zeta", "alpha", "mu", "beta", "omega", "kappa", "nu"}
		for _, wd := range words {
			m.Insert(wd)
		}
		m.Finalize()
		for r := 0; r < 3; r++ {
			lo, hi := m.DenseRange(r)
			var prev string
			for d := lo; d < hi; d++ {
				term := m.Term(d)
				if d > lo && term <= prev {
					return fmt.Errorf("rank %d dense range unsorted: %q after %q", r, term, prev)
				}
				prev = term
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomVocabularies(t *testing.T) {
	f := func(raw []string, pRaw uint8) bool {
		p := int(pRaw%4) + 1
		// Sanitize: drop empties, dedupe.
		set := make(map[string]bool)
		for _, s := range raw {
			if s != "" && len(s) < 64 {
				set[s] = true
			}
		}
		terms := make([]string, 0, len(set))
		for s := range set {
			terms = append(terms, s)
		}
		sort.Strings(terms)
		ok := true
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			m := newMap(c)
			for i := range terms {
				m.Insert(terms[(i+c.Rank())%len(terms)])
			}
			n := m.Finalize()
			if n != int64(len(terms)) {
				ok = false
				return nil
			}
			ids := make(map[int64]bool)
			for _, term := range terms {
				id, found := m.DenseLookup(term)
				if !found || ids[id] || m.Term(id) != term {
					ok = false
					return nil
				}
				ids[id] = true
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
