// Package dhash implements the paper's scalable distributed hashmap: the
// global vocabulary map built collectively by all ranks during scanning.
// Terms are hash-partitioned across ranks; inserting a new term is an ARMCI
// remote procedure call to the owner, which assigns a provisional global
// term ID. After scanning, Finalize renumbers the vocabulary into dense IDs
// 0..N-1 ordered lexicographically within each owner — a deterministic
// numbering that downstream stages (term statistics, topicality, inverted
// index) use to index global arrays.
package dhash

import (
	"hash/fnv"
	"sort"
	"sync"

	"inspire/internal/armci"
	"inspire/internal/cluster"
)

// insert handler name in the armci registry.
const handlerInsert = "dhash.insert"

// shard is one rank's partition of the vocabulary.
type shard struct {
	mu    sync.Mutex
	ids   map[string]int64 // term -> local sequence number
	terms []string         // local sequence number -> term

	// Populated by Finalize.
	sortedIdx []int64 // local sequence number -> lexicographic index
	sorted    []string
}

// Map is one rank's handle to the distributed vocabulary hashmap.
type Map struct {
	c      *cluster.Comm
	rpc    *armci.Registry
	shards []*shard // shared across ranks; shards[r] owned by rank r

	// cache memoizes owner replies so each rank pays at most one RPC per
	// distinct term, as a batched ARMCI implementation would.
	cache map[string]int64

	// Populated by Finalize.
	finalized bool
	prefix    []int64 // dense ID base per owner rank; len P+1
}

// sharedState is broadcast from rank 0 at creation.
type sharedState struct {
	shards []*shard
}

// New collectively creates an empty distributed hashmap on the given
// registry. Every rank must call New.
func New(c *cluster.Comm, rpc *armci.Registry) *Map {
	var ss *sharedState
	if c.Rank() == 0 {
		ss = &sharedState{shards: make([]*shard, c.Size())}
		for r := range ss.shards {
			ss.shards[r] = &shard{ids: make(map[string]int64)}
		}
	}
	got := c.Bcast(0, ss, 64)
	ss = got.(*sharedState)
	m := &Map{
		c:      c,
		rpc:    rpc,
		shards: ss.shards,
		cache:  make(map[string]int64),
	}
	mine := ss.shards[c.Rank()]
	rpc.Register(handlerInsert, func(arg any) any {
		term := arg.(string)
		mine.mu.Lock()
		id, ok := mine.ids[term]
		if !ok {
			id = int64(len(mine.terms))
			mine.ids[term] = id
			mine.terms = append(mine.terms, term)
		}
		mine.mu.Unlock()
		return id
	})
	c.Barrier() // all handlers registered before any rank inserts
	return m
}

// Owner returns the rank owning a term's vocabulary entry.
func (m *Map) Owner(term string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(term))
	return int(h.Sum32() % uint32(m.c.Size()))
}

// Insert returns the provisional global ID of term, inserting it if new.
// Provisional IDs encode (owner, local sequence): id = local*P + owner.
// They are unique but depend on insertion interleaving; call Finalize and
// Dense for the stable numbering.
func (m *Map) Insert(term string) int64 {
	if id, ok := m.cache[term]; ok {
		return id
	}
	owner := m.Owner(term)
	bytes := float64(len(term) + 8)
	local := m.rpc.Call(owner, handlerInsert, term, bytes, 8).(int64)
	id := local*int64(m.c.Size()) + int64(owner)
	m.cache[term] = id
	return id
}

// Lookup returns the provisional ID of a term and whether it exists, without
// inserting. It pays a one-sided lookup cost when the owner is remote.
func (m *Map) Lookup(term string) (int64, bool) {
	if id, ok := m.cache[term]; ok {
		return id, true
	}
	owner := m.Owner(term)
	sh := m.shards[owner]
	sh.mu.Lock()
	local, ok := sh.ids[term]
	sh.mu.Unlock()
	if owner != m.c.Rank() {
		m.c.Clock().Advance(m.c.Model().OneSidedCost(float64(len(term) + 8)))
	}
	if !ok {
		return 0, false
	}
	return local*int64(m.c.Size()) + int64(owner), true
}

// LocalCount returns the number of vocabulary entries owned by this rank.
func (m *Map) LocalCount() int64 {
	sh := m.shards[m.c.Rank()]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return int64(len(sh.terms))
}

// Finalize collectively freezes the vocabulary and computes the dense
// renumbering: each owner sorts its terms lexicographically, and dense IDs
// are assigned contiguously per owner in rank order. For a fixed P the
// numbering depends only on the vocabulary *set* — never on scan
// interleaving — so repeated runs agree bit-for-bit. Across different P the
// hash partition changes the numbering, so cross-P tests compare term-keyed
// quantities. Returns the global vocabulary size N.
func (m *Map) Finalize() int64 {
	m.c.Barrier() // all inserts complete
	mine := m.shards[m.c.Rank()]
	mine.mu.Lock()
	order := make([]int64, len(mine.terms))
	for i := range order {
		order[i] = int64(i)
	}
	sort.Slice(order, func(a, b int) bool { return mine.terms[order[a]] < mine.terms[order[b]] })
	mine.sortedIdx = make([]int64, len(order))
	mine.sorted = make([]string, len(order))
	for sortedPos, localID := range order {
		mine.sortedIdx[localID] = int64(sortedPos)
		mine.sorted[sortedPos] = mine.terms[localID]
	}
	localN := int64(len(mine.terms))
	mine.mu.Unlock()

	counts := m.c.AllgatherInt64(localN)
	m.prefix = make([]int64, m.c.Size()+1)
	for r, cnt := range counts {
		m.prefix[r+1] = m.prefix[r] + cnt
	}
	// Charge replication of the remap tables (each rank will translate its
	// provisional IDs against every owner's table, traffic a physical run
	// would pay as an allgather of V/P-sized tables).
	remote := m.prefix[m.c.Size()] - localN
	m.c.Clock().Advance(m.c.Model().OneSidedCost(float64(8 * remote)))
	m.finalized = true
	m.c.Barrier()
	return m.prefix[m.c.Size()]
}

// N returns the global vocabulary size; valid after Finalize.
func (m *Map) N() int64 {
	m.mustBeFinal()
	return m.prefix[m.c.Size()]
}

// Dense converts a provisional ID from Insert into its dense global ID in
// 0..N-1; valid after Finalize.
func (m *Map) Dense(provisional int64) int64 {
	m.mustBeFinal()
	p := int64(m.c.Size())
	owner := provisional % p
	local := provisional / p
	return m.prefix[owner] + m.shards[owner].sortedIdx[local]
}

// Term returns the term string for a dense global ID; valid after Finalize.
func (m *Map) Term(dense int64) string {
	m.mustBeFinal()
	owner := sort.Search(m.c.Size(), func(r int) bool { return m.prefix[r+1] > dense })
	return m.shards[owner].sorted[dense-m.prefix[owner]]
}

// DenseLookup returns the dense ID for a term string, if present; valid
// after Finalize.
func (m *Map) DenseLookup(term string) (int64, bool) {
	m.mustBeFinal()
	owner := m.Owner(term)
	sh := m.shards[owner]
	local, ok := sh.ids[term]
	if !ok {
		return 0, false
	}
	return m.prefix[owner] + sh.sortedIdx[local], true
}

// DenseRange returns the dense-ID range [lo,hi) owned by rank r — the term
// partition used by the statistics and topicality stages.
func (m *Map) DenseRange(r int) (lo, hi int64) {
	m.mustBeFinal()
	return m.prefix[r], m.prefix[r+1]
}

func (m *Map) mustBeFinal() {
	if !m.finalized {
		panic("dhash: map not finalized")
	}
}
