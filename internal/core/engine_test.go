package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"inspire/internal/corpus"
	"inspire/internal/invert"
	"inspire/internal/signature"
	"inspire/internal/simtime"
)

// smallCorpus returns a deterministic PubMed-like corpus sized for tests.
func smallCorpus(bytes int64, seed int64) []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: bytes,
		Sources:     8,
		Seed:        seed,
		Topics:      6,
		VocabSize:   3000,
	})
}

func TestPipelineEndToEnd(t *testing.T) {
	sources := smallCorpus(120_000, 42)
	for _, p := range []int{1, 2, 4} {
		sum, err := RunStandalone(p, nil, sources, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		r := sum.Result
		if r.TotalDocs < 50 {
			t.Fatalf("p=%d: only %d docs", p, r.TotalDocs)
		}
		if r.VocabSize < 100 {
			t.Fatalf("p=%d: vocab %d", p, r.VocabSize)
		}
		if len(r.Coords) != int(r.TotalDocs) {
			t.Fatalf("p=%d: %d coords for %d docs", p, len(r.Coords), r.TotalDocs)
		}
		if r.Terrain == nil || len(r.Themes) == 0 {
			t.Fatalf("p=%d: missing terrain/themes", p)
		}
		if sum.TotalVirtual <= 0 {
			t.Fatalf("p=%d: no virtual time", p)
		}
		for _, comp := range Components {
			if sum.ComponentSeconds(comp) <= 0 {
				t.Fatalf("p=%d: component %s has no time", p, comp)
			}
		}
	}
}

func TestPipelineIntegerProductsInvariantAcrossP(t *testing.T) {
	sources := smallCorpus(100_000, 7)
	type fingerprint struct {
		docs, vocab, tokens int64
		topN                int
	}
	var prints []fingerprint
	var coordSets [][]float64
	for _, p := range []int{1, 3, 4} {
		sum, err := RunStandalone(p, simtime.Zero(), sources, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		r := sum.Result
		prints = append(prints, fingerprint{r.TotalDocs, r.VocabSize, r.TotalTokens, r.TopN})
		xs := make([]float64, len(r.Coords))
		for i, pt := range r.Coords {
			xs[i] = pt.X
		}
		coordSets = append(coordSets, xs)
	}
	for i := 1; i < len(prints); i++ {
		if prints[i] != prints[0] {
			t.Fatalf("integer products differ across P: %+v vs %+v", prints[i], prints[0])
		}
	}
	// Coordinates agree across P within floating tolerance (reduction
	// order differs).
	for i := 1; i < len(coordSets); i++ {
		if len(coordSets[i]) != len(coordSets[0]) {
			t.Fatalf("coord count differs across P")
		}
		var maxDiff float64
		for j := range coordSets[i] {
			d := math.Abs(coordSets[i][j] - coordSets[0][j])
			if d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Errorf("coords drift across P: max |dx| = %g", maxDiff)
		}
	}
}

func TestPipelineStrategiesAgree(t *testing.T) {
	sources := smallCorpus(60_000, 9)
	var vocab []int64
	for _, strat := range []invert.Strategy{invert.DynamicGA, invert.Static, invert.MasterWorker} {
		sum, err := RunStandalone(3, simtime.Zero(), sources, Config{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		vocab = append(vocab, sum.Result.VocabSize)
		if sum.Result.NullRate > 0.9 {
			t.Fatalf("%v: null rate %.2f", strat, sum.Result.NullRate)
		}
	}
	if vocab[0] != vocab[1] || vocab[1] != vocab[2] {
		t.Fatalf("strategies disagree on vocabulary: %v", vocab)
	}
}

func TestPipelineTRECCorpus(t *testing.T) {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatTREC,
		TargetBytes: 150_000,
		Sources:     6,
		Seed:        3,
		Topics:      5,
		VocabSize:   2500,
	})
	sum, err := RunStandalone(4, nil, sources, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Result.TotalDocs < 20 {
		t.Fatalf("only %d docs", sum.Result.TotalDocs)
	}
	if len(sum.Result.Coords) != int(sum.Result.TotalDocs) {
		t.Fatalf("coords/docs mismatch")
	}
}

func TestAdaptiveDimensionalityReducesNulls(t *testing.T) {
	// A tiny topic budget forces null signatures; adaptive dimensionality
	// must reduce the null rate.
	sources := smallCorpus(80_000, 13)
	base, err := RunStandalone(2, simtime.Zero(), sources, Config{TopN: 200, TopicFrac: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunStandalone(2, simtime.Zero(), sources, Config{
		TopN: 200, TopicFrac: 0.01, AdaptiveDim: true, NullThreshold: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Result.NullRate > 0.005 {
		if adaptive.Result.DimRetries == 0 {
			t.Fatalf("expected adaptive retries (base null rate %.3f)", base.Result.NullRate)
		}
		if adaptive.Result.NullRate > base.Result.NullRate {
			t.Errorf("adaptive dim did not reduce nulls: %.3f -> %.3f",
				base.Result.NullRate, adaptive.Result.NullRate)
		}
		if adaptive.Result.TopM <= base.Result.TopM {
			t.Errorf("adaptive dim did not grow M: %d -> %d", base.Result.TopM, adaptive.Result.TopM)
		}
	}
}

func TestVirtualTimeScalesDown(t *testing.T) {
	// More processors -> less virtual wall time, in the modeled regime
	// where the synthetic corpus stands in for a paper-scale dataset
	// (DataScale inflates compute and traffic volume; fixed latencies
	// stay fixed). Without DataScale a 200 KB corpus is latency-bound and
	// cannot speed up — which the model correctly reports.
	sources := smallCorpus(200_000, 5)
	model := simtime.PNNLCluster2007()
	model.DataScale = 256
	var prev float64
	for i, p := range []int{1, 2, 4, 8} {
		sum, err := RunStandalone(p, model, sources, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		total := sum.TotalVirtual
		if i > 0 && total >= prev {
			t.Errorf("p=%d virtual time %.3fs not below p=%d time %.3fs",
				p, total, p/2, prev)
		}
		prev = total
	}
}

func TestRunStandaloneBadWorld(t *testing.T) {
	if _, err := RunStandalone(0, nil, nil, Config{}); err == nil {
		t.Fatal("p=0 should fail")
	}
}

func TestThemesNameTopicTerms(t *testing.T) {
	sources := smallCorpus(150_000, 21)
	sum, err := RunStandalone(2, simtime.Zero(), sources, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Result.Themes) == 0 {
		t.Fatal("no themes")
	}
	for _, th := range sum.Result.Themes {
		if th.Size > 0 && len(th.Terms) == 0 {
			t.Errorf("cluster %d (size %d) has no label terms", th.Cluster, th.Size)
		}
		for _, term := range th.Terms {
			if term == "" {
				t.Errorf("cluster %d has empty label", th.Cluster)
			}
		}
	}
}

func TestSummaryHelpers(t *testing.T) {
	sources := smallCorpus(60_000, 2)
	sum, err := RunStandalone(2, nil, sources, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.VirtualMinutes() != sum.TotalVirtual/60 {
		t.Fatal("VirtualMinutes inconsistent")
	}
	sg := sum.SignatureGenSeconds()
	want := sum.ComponentSeconds(CompTopic) + sum.ComponentSeconds(CompAM) + sum.ComponentSeconds(CompDocVec)
	if math.Abs(sg-want) > 1e-12 {
		t.Fatal("SignatureGenSeconds inconsistent")
	}
	if sum.WallSeconds <= 0 {
		t.Fatal("wall time missing")
	}
}

func BenchmarkPipelineSmall(b *testing.B) {
	sources := smallCorpus(100_000, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunStandalone(2, nil, sources, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleRunStandalone() {
	sources := corpus.Generate(corpus.GenSpec{
		Format:      corpus.FormatPubMed,
		TargetBytes: 50_000,
		Sources:     4,
		Seed:        1,
		Topics:      4,
		VocabSize:   2000,
	})
	sum, err := RunStandalone(2, nil, sources, Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(sum.Result.Coords) == int(sum.Result.TotalDocs))
	// Output: true
}

func TestCollectSignaturesRoundTrip(t *testing.T) {
	sources := smallCorpus(60_000, 17)
	sum, err := RunStandalone(3, simtime.Zero(), sources, Config{CollectSignatures: true})
	if err != nil {
		t.Fatal(err)
	}
	r := sum.Result
	if int64(len(r.SigDocIDs)) != r.TotalDocs {
		t.Fatalf("collected %d signatures for %d docs", len(r.SigDocIDs), r.TotalDocs)
	}
	for i := 1; i < len(r.SigDocIDs); i++ {
		if r.SigDocIDs[i] <= r.SigDocIDs[i-1] {
			t.Fatal("signature doc ids unsorted")
		}
	}
	// Persist and reload (pipeline step 7).
	var buf bytes.Buffer
	if err := signature.Save(&buf, r.TopM, r.SigDocIDs, r.SigVecs); err != nil {
		t.Fatal(err)
	}
	m, ids, vecs, err := signature.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != r.TopM || len(ids) != len(r.SigDocIDs) {
		t.Fatalf("reload mismatch: m=%d ids=%d", m, len(ids))
	}
	for i := range vecs {
		if (vecs[i] == nil) != (r.SigVecs[i] == nil) {
			t.Fatalf("null flag mismatch at %d", i)
		}
	}
	// Without the flag, nothing is gathered.
	sum2, err := RunStandalone(2, simtime.Zero(), sources, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Result.SigDocIDs != nil {
		t.Fatal("signatures gathered without CollectSignatures")
	}
}

func TestIOModelSlowsScanAtScale(t *testing.T) {
	sources := smallCorpus(150_000, 19)
	base := simtime.PNNLCluster2007()
	base.DataScale = 1024
	nfs := simtime.PNNLCluster2007()
	nfs.DataScale = 1024
	nfs.IO = simtime.NFS2007()
	lustre := simtime.PNNLCluster2007()
	lustre.DataScale = 1024
	lustre.IO = simtime.Lustre2007()

	scanTime := func(model *simtime.Model, p int) float64 {
		sum, err := RunStandalone(p, model, sources, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return sum.ComponentSeconds(CompScan)
	}
	// At high P the shared filer dominates scanning; Lustre stays close to
	// the compute-bound ideal.
	const p = 32
	ideal := scanTime(base, p)
	overNFS := scanTime(nfs, p)
	overLustre := scanTime(lustre, p)
	if overNFS < 1.5*ideal {
		t.Errorf("NFS at P=%d should be I/O bound: ideal %.1fs, nfs %.1fs", p, ideal, overNFS)
	}
	if overLustre > 1.2*ideal {
		t.Errorf("Lustre should stay near compute bound: ideal %.1fs, lustre %.1fs", ideal, overLustre)
	}
}
