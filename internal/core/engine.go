// Package core orchestrates the full IN-SPIRE text-engine pipeline of the
// paper (Figure 4): Scan & Map with the global vocabulary hashmap, parallel
// inverted file indexing with dynamic load balancing, global term
// statistics, topicality and global topic selection, the association matrix,
// knowledge-signature generation, distributed k-means clustering, and PCA
// projection to the 2-D ThemeView coordinates, with per-component timing in
// virtual (modeled-machine) seconds.
package core

import (
	"fmt"
	"sort"

	"inspire/internal/armci"
	"inspire/internal/assoc"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/invert"
	"inspire/internal/kmeans"
	"inspire/internal/project"
	"inspire/internal/scan"
	"inspire/internal/signature"
	"inspire/internal/simtime"
	"inspire/internal/stats"
	"inspire/internal/topic"
)

// Component names, matching the x-axis labels of the paper's Figures 6b/7b.
const (
	CompScan     = "scan"
	CompIndex    = "index"
	CompTopic    = "topic"
	CompAM       = "AM"
	CompDocVec   = "DocVec"
	CompClusProj = "ClusProj"
)

// Components lists the pipeline components in execution order.
var Components = []string{CompScan, CompIndex, CompTopic, CompAM, CompDocVec, CompClusProj}

// Config tunes the engine. The zero value selects documented defaults.
type Config struct {
	// Tokenizer configures term extraction.
	Tokenizer scan.TokenizerConfig
	// TopN is the number of major terms. Zero selects
	// min(1000, max(32, vocabulary/20)).
	TopN int
	// TopicFrac sets M = TopicFrac*TopN (the paper's "typically 10% of the
	// top N"). Default 0.10.
	TopicFrac float64
	// AdaptiveDim enables the §4.2 remedy: while the null-signature rate
	// exceeds NullThreshold, grow M by 1.5x (up to TopN) and regenerate
	// the association matrix and signatures.
	AdaptiveDim bool
	// NullThreshold is the tolerated global null-signature rate. Default
	// 0.02.
	NullThreshold float64
	// MaxDimGrowth bounds adaptive retries. Default 4.
	MaxDimGrowth int
	// Strategy selects the indexing load-distribution scheme. Default
	// DynamicGA (the paper's).
	Strategy invert.Strategy
	// ChunkTokens is the fixed chunk size for inversion loads. Zero
	// selects totalTokens/(64*P) clamped to [256, 4096]: chunks stay
	// fixed-size within a run (Kruskal-Weiss) but adapt to the corpus so
	// every process sees enough loads for the queue to balance.
	ChunkTokens int64
	// KMeans configures clustering.
	KMeans kmeans.Config
	// GridW, GridH size the ThemeView terrain. Defaults 64x24.
	GridW, GridH int
	// MemoryOverheadFactor estimates the per-rank working set as
	// localBytes*factor for the memory-pressure model. Default 2.5
	// (raw text + forward index + postings).
	MemoryOverheadFactor float64
	// CollectSignatures gathers every rank's knowledge signatures at rank
	// 0 after DocVec (pipeline step 7: "persist the knowledge signatures
	// ... a valuable intermediate product"), populating SigDocIDs/SigVecs
	// for persistence with signature.Save.
	CollectSignatures bool
}

func (cfg Config) withDefaults() Config {
	if cfg.TopicFrac <= 0 || cfg.TopicFrac > 1 {
		cfg.TopicFrac = 0.10
	}
	if cfg.NullThreshold <= 0 {
		cfg.NullThreshold = 0.02
	}
	if cfg.MaxDimGrowth <= 0 {
		cfg.MaxDimGrowth = 4
	}
	if cfg.GridW <= 0 {
		cfg.GridW = 64
	}
	if cfg.GridH <= 0 {
		cfg.GridH = 24
	}
	if cfg.MemoryOverheadFactor <= 0 {
		cfg.MemoryOverheadFactor = 2.5
	}
	return cfg
}

// Theme describes one thematic grouping for reporting.
type Theme struct {
	Cluster int
	Size    int64
	X, Y    float64
	Terms   []string
}

// Result is the per-rank outcome of a pipeline run. Gathered products
// (Coords, Terrain, Themes) are populated on rank 0 only.
type Result struct {
	// Summary statistics (identical on every rank).
	TotalDocs   int64
	VocabSize   int64
	TotalTokens int64
	TopN, TopM  int
	NullRate    float64
	DimRetries  int
	KMeansIters int
	KMeansK     int
	Objective   float64
	// MemPressure is the memory-pressure compute multiplier applied to the
	// scan and indexing stages (1 = no pressure), maximum across ranks.
	MemPressure float64

	// Pipeline products local to this rank.
	Forward    *scan.Forward
	Index      *invert.Index
	Stats      *stats.TermStats
	Topics     *topic.Result
	AM         *assoc.Matrix
	Signatures *signature.Signatures
	Clusters   *kmeans.Result
	Projection *project.Projection

	// Rank-0 gathered products.
	Coords  []project.Point
	Terrain *project.Terrain
	Themes  []Theme
	// SigDocIDs/SigVecs hold the gathered signatures (rank 0, only when
	// Config.CollectSignatures is set), aligned and sorted by document ID.
	SigDocIDs []int64
	SigVecs   [][]float64

	// Vocab allows term lookup after the run.
	Vocab *dhash.Map
}

// Run executes the full pipeline over the given corpus on the calling
// rank's communicator. All ranks must pass identical sources and config; the
// engine partitions sources internally (paper §3.2 static byte-balanced
// distribution).
func Run(c *cluster.Comm, sources []*corpus.Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	model := c.Model()
	res := &Result{}

	timed := func(name string, fn func() error) error {
		start := c.Clock().Now()
		if err := fn(); err != nil {
			return fmt.Errorf("core: %s: %w", name, err)
		}
		// Record the rank's own span before the stage barrier so the
		// per-rank durations expose load imbalance (Figure 9); the
		// barrier then aligns all ranks for the next component.
		c.Timeline().Record(name, start, c.Clock().Now())
		c.Barrier()
		return nil
	}

	// ------------------------------------------------ Scan & Map --------
	parts := corpus.Partition(sources, c.Size())
	mine := parts[c.Rank()]
	rpc := armci.New(c)
	vocab := dhash.New(c, rpc)
	res.Vocab = vocab

	var pressure float64 = 1
	err := timed(CompScan, func() error {
		fwd, err := scan.Scan(c, vocab, mine, cfg.Tokenizer)
		if err != nil {
			return err
		}
		res.VocabSize = vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		res.Forward = fwd
		res.TotalDocs = fwd.TotalDocs
		res.TotalTokens = c.AllreduceSumInt(int64(len(fwd.Tokens)))
		// Memory-pressure penalty (paper §4.2: oversized problems per
		// processor thrash; the 16.44 GB / 4-processor PubMed case).
		ws := model.DataScale * float64(fwd.RawBytes) * cfg.MemoryOverheadFactor
		pressure = model.MemoryPressure(ws)
		res.MemPressure = c.AllreduceMaxFloat64([]float64{pressure})[0]
		if pressure > 1 {
			c.Clock().Advance((pressure - 1) * model.ScanCost(float64(fwd.RawBytes)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ------------------------------------------------ Indexing ----------
	chunk := cfg.ChunkTokens
	if chunk <= 0 {
		chunk = res.TotalTokens / int64(64*c.Size())
		if chunk < 256 {
			chunk = 256
		}
		if chunk > 4096 {
			chunk = 4096
		}
	}
	err = timed(CompIndex, func() error {
		// Stage start for the deterministic schedule model, captured
		// before any inversion work.
		stageStart := c.AllreduceMaxFloat64([]float64{c.Clock().Now()})[0]
		gf := invert.PublishForward(c, res.Forward)
		ix := invert.Invert(c, gf, res.VocabSize, vocab.DenseRange, invert.Options{
			Strategy:    cfg.Strategy,
			ChunkTokens: chunk,
			RPC:         rpc,
		})
		res.Index = ix
		// Global term statistics (the paper folds them into indexing).
		res.Stats = stats.Build(c, ix, res.TotalDocs, int64(len(res.Forward.Tokens)))
		// Replace the racy execution clock with the deterministic
		// schedule model for this stage (see DESIGN.md §6): virtual
		// stage time = schedule makespan per rank, scaled by memory
		// pressure. Applied last so the per-rank spread survives to the
		// timeline record (collectives would re-align the clocks).
		setIndexClocks(c, ix, cfg.Strategy, pressure, stageStart)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ------------------------------------------------ Topicality --------
	topN := cfg.TopN
	if topN <= 0 {
		topN = int(res.VocabSize / 20)
		if topN < 32 {
			topN = 32
		}
		if topN > 1000 {
			topN = 1000
		}
	}
	if int64(topN) > res.VocabSize {
		topN = int(res.VocabSize)
	}
	topM := int(float64(topN) * cfg.TopicFrac)
	if topM < 2 {
		topM = 2
	}
	err = timed(CompTopic, func() error {
		res.Topics = topic.Select(c, res.Stats, topN, topM, vocab.Term)
		res.TopN = res.Topics.N()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---------------------------- Association matrix + signatures -------
	// Adaptive dimensionality (§4.2): while too many signatures are null,
	// grow the signature space — first the number of topics M within the
	// current majors, then the majors breadth N itself (re-running topic
	// selection) — and regenerate; "as we scale we need to adapt the
	// dimensionality to dynamically fit the vocabulary diversity".
	m := res.Topics.M()
	for try := 0; ; try++ {
		err = timed(CompAM, func() error {
			res.AM = assoc.Build(c, res.Forward, res.Topics, res.Stats)
			return nil
		})
		if err != nil {
			return nil, err
		}
		err = timed(CompDocVec, func() error {
			res.Signatures = signature.Generate(c, res.Forward, res.AM)
			res.NullRate = res.Signatures.NullRate(c)
			return nil
		})
		if err != nil {
			return nil, err
		}
		res.TopM = m
		if !cfg.AdaptiveDim || res.NullRate <= cfg.NullThreshold || try >= cfg.MaxDimGrowth {
			break
		}
		grownM := m * 3 / 2
		if grownM <= m {
			grownM = m + 1
		}
		if grownM <= res.Topics.N() {
			// Room within the current majors: widen the topic prefix.
			m = grownM
			res.Topics = retopic(res.Topics, m)
		} else if int64(topN) < res.VocabSize {
			// Majors exhausted: broaden the discriminating vocabulary and
			// re-select (charged to the topic component, as the paper notes
			// increased dimensionality "incurs the overhead of more
			// computation").
			topN = topN * 3 / 2
			if int64(topN) > res.VocabSize {
				topN = int(res.VocabSize)
			}
			m = grownM
			if m > topN {
				m = topN
			}
			err = timed(CompTopic, func() error {
				res.Topics = topic.Select(c, res.Stats, topN, m, vocab.Term)
				res.TopN = res.Topics.N()
				return nil
			})
			if err != nil {
				return nil, err
			}
			m = res.Topics.M()
		} else {
			break // the whole vocabulary is already in play
		}
		res.DimRetries = try + 1
	}

	// ------------------------- Persist signatures (step 7) --------------
	if cfg.CollectSignatures {
		GatherSignatures(c, res)
	}

	// ------------------------------------------------ ClusProj ----------
	err = timed(CompClusProj, func() error {
		km := kmeans.Run(c, res.Signatures.Vecs, res.Forward.GlobalDocIDs, res.TotalDocs, cfg.KMeans)
		res.Clusters = km
		res.KMeansIters = km.Iters
		res.KMeansK = km.K
		res.Objective = km.Objective
		if km.K == 0 {
			return fmt.Errorf("no non-null signatures to cluster (null rate %.2f)", res.NullRate)
		}
		proj, err := project.Project(c, res.Signatures.Vecs, res.Forward.GlobalDocIDs, km.Centroids, km.Sizes)
		if err != nil {
			return err
		}
		res.Projection = proj
		res.Coords = project.GatherCoords(c, proj, 0)
		if c.Rank() == 0 {
			res.Terrain = project.BuildTerrain(res.Coords, cfg.GridW, cfg.GridH, 0)
			res.Themes = themes(res, 6)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// GatherSignatures collectively gathers all ranks' signatures at rank 0,
// flattened as (docID, kind, vec...) frames, sorted by document ID, into
// SigDocIDs/SigVecs. Run calls it when Config.CollectSignatures is set; the
// serving layer calls it when snapshotting a run whose signatures were not
// collected during the pipeline.
func GatherSignatures(c *cluster.Comm, res *Result) {
	m := res.Signatures.M
	frame := 2 + m
	flat := make([]float64, 0, frame*len(res.Signatures.Vecs))
	for i, v := range res.Signatures.Vecs {
		flat = append(flat, float64(res.Forward.GlobalDocIDs[i]))
		if v == nil {
			flat = append(flat, 0)
			flat = append(flat, make([]float64, m)...)
		} else {
			flat = append(flat, 1)
			flat = append(flat, v...)
		}
	}
	parts := c.GatherFloat64s(0, flat)
	if parts == nil {
		return
	}
	type rec struct {
		id  int64
		vec []float64
	}
	var recs []rec
	for _, part := range parts {
		for i := 0; i+frame <= len(part); i += frame {
			r := rec{id: int64(part[i])}
			if part[i+1] == 1 {
				r.vec = append([]float64(nil), part[i+2:i+frame]...)
			}
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
	res.SigDocIDs = make([]int64, len(recs))
	res.SigVecs = make([][]float64, len(recs))
	for i, r := range recs {
		res.SigDocIDs[i] = r.id
		res.SigVecs[i] = r.vec
	}
}

// retopic shrinks/grows the topic prefix of an existing selection without
// re-scoring (the majors list is already topicality-ordered).
func retopic(t *topic.Result, m int) *topic.Result {
	if m > len(t.Majors) {
		m = len(t.Majors)
	}
	nt := &topic.Result{
		Majors:   t.Majors,
		Scores:   t.Scores,
		MajorIdx: t.MajorIdx,
		Topics:   t.Majors[:m],
		TopicIdx: make(map[int64]int, m),
	}
	for j, id := range nt.Topics {
		nt.TopicIdx[id] = j
	}
	return nt
}

// setIndexClocks replaces the post-inversion clocks with the deterministic
// schedule model: the stage starts at the collective maximum entry time
// (captured before inversion ran), and each rank finishes after its
// scheduled share of the load costs.
func setIndexClocks(c *cluster.Comm, ix *invert.Index, strat invert.Strategy, pressure, start float64) {
	model := c.Model()
	costs, owners := invert.LoadCosts(model, ix.Loads)
	var perRank []float64
	switch strat {
	case invert.Static:
		_, perRank = simtime.StaticSchedule(costs, owners, c.Size())
	case invert.MasterWorker:
		// One synthetic load models DataScale real fixed-size chunks, so
		// the dispatcher serves DataScale times as many requests as the
		// synthetic load count; its per-request costs scale accordingly.
		rpc := model.RPCRoundTrip(8, 8) * model.DataScale
		service := model.RPCCost * model.DataScale
		makespan := simtime.MasterWorkerSchedule(costs, c.Size(), rpc, service)
		perRank = make([]float64, c.Size())
		for r := range perRank {
			perRank[r] = makespan
		}
	default:
		_, perRank = simtime.ListSchedule(costs, c.Size())
	}
	c.Clock().Set(start + pressure*perRank[c.Rank()])
}

// themes labels each cluster with the strongest topic terms of its centroid.
func themes(res *Result, termsPer int) []Theme {
	if res.Clusters == nil || res.Projection == nil {
		return nil
	}
	out := make([]Theme, 0, res.Clusters.K)
	for k := 0; k < res.Clusters.K; k++ {
		th := Theme{
			Cluster: k,
			Size:    res.Clusters.Sizes[k],
			X:       res.Projection.Centers2D[k][0],
			Y:       res.Projection.Centers2D[k][1],
		}
		ctr := res.Clusters.Centroids[k]
		type dim struct {
			j int
			w float64
		}
		dims := make([]dim, len(ctr))
		for j, w := range ctr {
			dims[j] = dim{j, w}
		}
		// Partial selection of the strongest dimensions.
		for i := 0; i < termsPer && i < len(dims); i++ {
			best := i
			for j := i + 1; j < len(dims); j++ {
				if dims[j].w > dims[best].w {
					best = j
				}
			}
			dims[i], dims[best] = dims[best], dims[i]
			if dims[i].w <= 0 {
				break
			}
			th.Terms = append(th.Terms, res.Vocab.Term(res.Topics.Topics[dims[i].j]))
		}
		out = append(out, th)
	}
	return out
}
