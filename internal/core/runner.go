package core

import (
	"fmt"
	"time"

	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/simtime"
)

// Summary is the outcome of a standalone engine run: the rank-0 result plus
// the cross-rank timing breakdown in virtual seconds and the real host
// elapsed time.
type Summary struct {
	P            int
	Model        *simtime.Model
	Breakdown    *simtime.Breakdown
	TotalVirtual float64
	WallSeconds  float64
	Result       *Result
}

// RunStandalone creates a world of p ranks, runs the pipeline over sources,
// and returns the summary. model nil selects the PNNL 2007 profile.
func RunStandalone(p int, model *simtime.Model, sources []*corpus.Source, cfg Config) (*Summary, error) {
	w, err := cluster.NewWorld(p, model)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, p)
	start := time.Now()
	err = w.Run(func(c *cluster.Comm) error {
		r, err := Run(c, sources, cfg)
		if err != nil {
			return err
		}
		results[c.Rank()] = r
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: run p=%d: %w", p, err)
	}
	b := simtime.Collect(w.Timelines())
	return &Summary{
		P:            p,
		Model:        w.Model(),
		Breakdown:    b,
		TotalVirtual: b.Total(),
		WallSeconds:  time.Since(start).Seconds(),
		Result:       results[0],
	}, nil
}

// ComponentSeconds returns the virtual duration of one component (max over
// ranks).
func (s *Summary) ComponentSeconds(name string) float64 {
	return s.Breakdown.Max(name)
}

// SignatureGenSeconds returns the combined topic + association matrix +
// DocVec time — the "Signature Generation" component of the paper's
// Figure 8.
func (s *Summary) SignatureGenSeconds() float64 {
	return s.Breakdown.Max(CompTopic) + s.Breakdown.Max(CompAM) + s.Breakdown.Max(CompDocVec)
}

// VirtualMinutes returns the total pipeline virtual time in minutes, the
// unit of the paper's Figure 5.
func (s *Summary) VirtualMinutes() float64 { return s.TotalVirtual / 60 }
