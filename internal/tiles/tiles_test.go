package tiles

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randEntries builds a deterministic entry set, including points outside the
// bounds (which must clamp into edge tiles) and unassigned clusters.
func randEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		e := Entry{
			Doc:     int64(i * 3), // sparse IDs
			X:       rng.Float64()*2 - 0.5,
			Y:       rng.Float64()*2 - 0.5,
			Cluster: int64(rng.Intn(5)) - 1, // -1..3
		}
		out = append(out, e)
	}
	return out
}

func testBounds() Rect { return NewBounds(0, 0, 1, 1) }

// TestBuildOrderIndependent pins the core invariant: the pyramid is a pure
// function of the member set, whatever order entries arrive in.
func TestBuildOrderIndependent(t *testing.T) {
	entries := randEntries(200, 1)
	a, err := Build(Config{}, testBounds(), entries)
	if err != nil {
		t.Fatal(err)
	}
	rev := make([]Entry, len(entries))
	for i, e := range entries {
		rev[len(entries)-1-i] = e
	}
	b, err := Build(Config{}, testBounds(), rev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pyramids differ under insertion order")
	}
}

// TestRemoveMatchesRebuild pins the incremental-maintenance invariant:
// removing documents from a pyramid leaves exactly the pyramid built from
// the survivors — density, counts, theme histograms and exemplars included.
func TestRemoveMatchesRebuild(t *testing.T) {
	entries := randEntries(300, 2)
	full, err := Build(Config{}, testBounds(), entries)
	if err != nil {
		t.Fatal(err)
	}
	var survivors []Entry
	for i, e := range entries {
		if i%3 == 0 {
			if !full.Remove(e.Doc) {
				t.Fatalf("remove %d failed", e.Doc)
			}
		} else {
			survivors = append(survivors, e)
		}
	}
	want, err := Build(Config{}, testBounds(), survivors)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, want) {
		t.Fatal("incrementally maintained pyramid differs from rebuild")
	}
	// Removing everything leaves the empty pyramid.
	for _, e := range survivors {
		full.Remove(e.Doc)
	}
	empty, _ := New(Config{}, testBounds())
	if !reflect.DeepEqual(full, empty) {
		t.Fatalf("emptied pyramid not empty: %d tiles, %d docs", full.NumTiles(), full.NumDocs())
	}
}

// TestZoomNesting checks that parent tiles aggregate exactly their four
// children at every level.
func TestZoomNesting(t *testing.T) {
	p, err := Build(Config{MaxZoom: 5}, testBounds(), randEntries(400, 3))
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 5; z++ {
		all, _ := p.Range(z, p.Bounds())
		for _, tl := range all {
			var kids int64
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					if c := p.Tile(z+1, 2*tl.X+dx, 2*tl.Y+dy); c != nil {
						kids += c.Docs
					}
				}
			}
			if kids != tl.Docs {
				t.Fatalf("z=%d tile (%d,%d) has %d docs, children sum %d", z, tl.X, tl.Y, tl.Docs, kids)
			}
			var dens int64
			for _, d := range tl.Density {
				dens += int64(d)
			}
			if dens != tl.Docs {
				t.Fatalf("z=%d tile (%d,%d) density sums %d for %d docs", z, tl.X, tl.Y, dens, tl.Docs)
			}
		}
	}
}

// TestSearchMatchesBruteForce compares quadtree candidate search against a
// full scan for random query boxes.
func TestSearchMatchesBruteForce(t *testing.T) {
	entries := randEntries(250, 4)
	p, err := Build(Config{}, testBounds(), entries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		cx, cy := rng.Float64(), rng.Float64()
		r := rng.Float64() * 0.3
		q := Rect{MinX: cx - r, MinY: cy - r, MaxX: cx + r, MaxY: cy + r}
		cands, _, _ := p.Search(q)
		got := map[int64]bool{}
		for _, e := range cands {
			got[e.Doc] = true
		}
		// Every in-box point (by binned position) must be a candidate.
		for _, e := range entries {
			inBox := e.X >= q.MinX && e.X <= q.MaxX && e.Y >= q.MinY && e.Y <= q.MaxY
			if inBox && !got[e.Doc] {
				t.Fatalf("query %v missed doc %d at (%g,%g)", q, e.Doc, e.X, e.Y)
			}
		}
	}
}

// TestMergeMatchesMonolithic partitions one entry set across three
// "shards" and checks that merging per-shard tiles reproduces the
// monolithic tile exactly at every address and zoom.
func TestMergeMatchesMonolithic(t *testing.T) {
	entries := randEntries(300, 5)
	mono, err := Build(Config{}, testBounds(), entries)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Pyramid, 3)
	for i := range shards {
		var part []Entry
		for _, e := range entries {
			if int(e.Doc)%3 == i {
				part = append(part, e)
			}
		}
		shards[i], err = Build(Config{}, testBounds(), part)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := mono.Config()
	for z := 0; z <= cfg.MaxZoom; z++ {
		all, _ := mono.Range(z, mono.Bounds())
		for _, want := range all {
			parts := make([]*Tile, len(shards))
			for i, sh := range shards {
				parts[i] = sh.Tile(z, want.X, want.Y)
			}
			got := Merge(parts, cfg.Exemplars)
			if got == nil || got.Docs != want.Docs ||
				!reflect.DeepEqual(got.Density, want.Density) ||
				!reflect.DeepEqual(got.Themes, want.Themes) ||
				!reflect.DeepEqual(got.Exemplars, want.Exemplars) {
				t.Fatalf("z=%d tile (%d,%d): merged %+v != mono %+v", z, want.X, want.Y, got, want)
			}
		}
	}
}

// TestExemplarsAreSmallestDocs pins the exemplar definition through adds and
// removals.
func TestExemplarsAreSmallestDocs(t *testing.T) {
	p, err := Build(Config{Exemplars: 3}, testBounds(), randEntries(100, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Remove the globally smallest docs; the root exemplars must re-derive.
	root := p.Tile(0, 0, 0)
	smallest := append([]int64(nil), root.Exemplars...)
	for _, d := range smallest {
		p.Remove(d)
	}
	root = p.Tile(0, 0, 0)
	var want []int64
	for d := range p.loc {
		want = append(want, d)
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if len(want) > 3 {
		want = want[:3]
	}
	if !reflect.DeepEqual(root.Exemplars, want) {
		t.Fatalf("root exemplars %v, want %v", root.Exemplars, want)
	}
}

// TestCodecRoundTrip pins Encode/Decode identity on a pyramid with
// out-of-bounds (clamped) points and unassigned clusters.
func TestCodecRoundTrip(t *testing.T) {
	p, err := Build(Config{MaxZoom: 4, Grid: 4, Exemplars: 2}, testBounds(), randEntries(120, 7))
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatal("decode(encode(p)) != p")
	}
	if re := back.Encode(); !reflect.DeepEqual(enc, re) {
		t.Fatal("encode(decode(b)) != b")
	}
}

// TestCodecRejects exercises the decoder's validation.
func TestCodecRejects(t *testing.T) {
	p, err := Build(Config{}, testBounds(), randEntries(20, 8))
	if err != nil {
		t.Fatal(err)
	}
	enc := p.Encode()
	cases := map[string][]byte{
		"bad magic":  append([]byte("NOTTILES99\n"), enc[len(Magic):]...),
		"truncated":  enc[:len(enc)-3],
		"trailing":   append(append([]byte(nil), enc...), 0),
		"empty":      {},
		"magic only": []byte(Magic),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
