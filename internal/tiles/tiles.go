// Package tiles implements the Galaxy tile pyramid: a quadtree of
// multi-resolution aggregates over the ThemeView projection, the
// level-of-detail structure that lets a client render millions of projected
// documents without pulling a single raw point. Zoom 0 is one tile covering
// the whole projection; each zoom doubles the resolution per axis, so tile
// (z, x, y) covers cell (x, y) of a 2^z x 2^z grid over the world bounds.
//
// Every tile stores exact integer aggregates of the documents binned under
// it: a Grid x Grid density grid of point counts, the document count, a
// sparse per-theme histogram, a sparse per-day time histogram, a sparse
// per-facet count, and the smallest document IDs as exemplars. Because each
// aggregate is a pure, order-independent function of the tile's member set,
// a pyramid maintained incrementally (Add/Remove as documents ingest and
// delete) is identical to one rebuilt from scratch, and per-shard pyramids
// merge into exactly the monolithic answer (densities and histograms sum;
// exemplar sets union-and-trim).
//
// Binning is exact across zoom levels: a point's normalized coordinate is
// scaled by powers of two (exact in binary floating point), so the cell a
// point lands in at zoom z is always the parent of its cell at zoom z+1, for
// every input. Points outside the world bounds clamp to the edge cells, so a
// pyramid's bounds can be frozen while documents keep arriving.
package tiles

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Config tunes a pyramid. The zero value selects the documented defaults.
type Config struct {
	// MaxZoom is the deepest zoom level (leaf tiles); zoom levels are
	// 0..MaxZoom. Default 6, maximum 14.
	MaxZoom int
	// Grid is the per-tile density grid dimension; must be a power of two
	// so grid cells nest exactly across zoom levels. Default 8, maximum 64.
	Grid int
	// Exemplars is the number of exemplar document IDs kept per tile (the
	// smallest member IDs). Default 4, maximum 64.
	Exemplars int
}

// Codec bounds: Decode rejects anything larger, so corrupt or adversarial
// sidecars cannot demand huge allocations or quadratic work.
const (
	maxMaxZoom   = 14
	maxGrid      = 64
	maxExemplars = 64
)

// WithDefaults fills zero fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.MaxZoom <= 0 {
		c.MaxZoom = 6
	}
	if c.Grid <= 0 {
		c.Grid = 8
	}
	if c.Exemplars <= 0 {
		c.Exemplars = 4
	}
	return c
}

// Validate checks the configuration bounds.
func (c Config) Validate() error {
	switch {
	case c.MaxZoom < 1 || c.MaxZoom > maxMaxZoom:
		return fmt.Errorf("tiles: max zoom %d out of [1, %d]", c.MaxZoom, maxMaxZoom)
	case c.Grid < 1 || c.Grid > maxGrid || c.Grid&(c.Grid-1) != 0:
		return fmt.Errorf("tiles: grid %d is not a power of two in [1, %d]", c.Grid, maxGrid)
	case c.Exemplars < 1 || c.Exemplars > maxExemplars:
		return fmt.Errorf("tiles: exemplar count %d out of [1, %d]", c.Exemplars, maxExemplars)
	}
	return nil
}

// Rect is an axis-aligned rectangle in projection coordinates, also used as
// the pyramid's world bounds.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Intersects reports whether two closed rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Validate checks that the rectangle is finite with positive extent on both
// axes — what the binning arithmetic needs of world bounds.
func (r Rect) Validate() error {
	for _, f := range []float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("tiles: bounds not finite")
		}
	}
	if r.MaxX <= r.MinX || r.MaxY <= r.MinY {
		return fmt.Errorf("tiles: bounds have empty extent")
	}
	return nil
}

// NewBounds builds world bounds from a coordinate bounding box, padding
// degenerate axes to unit extent (the BuildTerrain convention) so binning
// always has room.
func NewBounds(minX, minY, maxX, maxY float64) Rect {
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// BinWindow returns the inclusive tile-index window that rect r covers at
// zoom z under bounds b, computed with exactly the binning arithmetic
// members use (monotone normalization + clamped power-of-two floor). Because
// the same arithmetic places both members and windows, a point inside r is
// always binned inside the window — no epsilon, no edge-rounding misses,
// and coordinates beyond the bounds clamp into the edge cells on both
// sides. ok is false when r is empty or not-a-number.
func BinWindow(b Rect, z int, r Rect) (x0, y0, x1, y1 int, ok bool) {
	if !(r.MinX <= r.MaxX && r.MinY <= r.MaxY) {
		return 0, 0, 0, 0, false
	}
	ex, ey := b.MaxX-b.MinX, b.MaxY-b.MinY
	n := 1 << z
	x0 = clampBin((r.MinX-b.MinX)/ex, n)
	x1 = clampBin((r.MaxX-b.MinX)/ex, n)
	y0 = clampBin((r.MinY-b.MinY)/ey, n)
	y1 = clampBin((r.MaxY-b.MinY)/ey, n)
	return x0, y0, x1, y1, true
}

// TileRectIn returns the world rectangle of tile (z, x, y) under bounds b —
// a rendering aid. Spatial pruning never compares world rectangles (edge
// rounding would mis-prune boundary points); it uses BinWindow.
func TileRectIn(b Rect, z, x, y int) Rect {
	n := float64(int64(1) << z)
	w := (b.MaxX - b.MinX) / n
	h := (b.MaxY - b.MinY) / n
	return Rect{
		MinX: b.MinX + float64(x)*w,
		MinY: b.MinY + float64(y)*h,
		MaxX: b.MinX + float64(x+1)*w,
		MaxY: b.MinY + float64(y+1)*h,
	}
}

// Entry is one projected document: its ID, projection coordinates, theme
// cluster (-1 when unassigned — documents ingested after the clustering
// run), ingest timestamp (unix seconds; 0 = no timestamp) and facet strings
// ("key=value", strictly ascending, nil when the document carries none).
// Facets slices are shared, never mutated, after an entry enters a pyramid.
type Entry struct {
	Doc     int64
	X, Y    float64
	Cluster int64
	Time    int64
	Facets  []string
}

// ThemeCount is one theme's share of a tile, ascending by Cluster within a
// tile.
type ThemeCount struct {
	Cluster int64
	Docs    int64
}

// BucketSeconds is the width of one time-histogram bucket: a UTC day.
const BucketSeconds = 86400

// TimeBucket maps a unix-seconds timestamp to its day bucket (floor
// division, so pre-epoch timestamps bucket consistently too).
func TimeBucket(ts int64) int64 {
	q := ts / BucketSeconds
	if ts%BucketSeconds != 0 && ts < 0 {
		q--
	}
	return q
}

// TimeCount is one day bucket's share of a tile, ascending by Bucket within
// a tile. Documents without a timestamp (Time 0) count in Docs but not here.
type TimeCount struct {
	Bucket int64
	Docs   int64
}

// FacetCount is one facet string's share of a tile, ascending by Facet
// within a tile.
type FacetCount struct {
	Facet string
	Docs  int64
}

// Tile is one node of the pyramid: exact aggregates of the documents binned
// under it. Fields are maintained in place by Add/Remove; readers must copy
// (Clone) before releasing the pyramid's external lock.
type Tile struct {
	Z, X, Y int
	// Docs is the number of documents binned under this tile.
	Docs int64
	// Density is the Grid x Grid count raster over the tile's extent
	// (row-major, row 0 at MinY).
	Density []uint32
	// Themes is the sparse per-cluster histogram, ascending by cluster;
	// unassigned documents (cluster -1) count in Docs but not here.
	Themes []ThemeCount
	// Times is the sparse per-day histogram, ascending by bucket;
	// untimestamped documents (Time 0) count in Docs but not here.
	Times []TimeCount
	// Facets is the sparse per-facet count, ascending by facet string; a
	// document counts once under each of its facets.
	Facets []FacetCount
	// Exemplars holds the up-to-Config.Exemplars smallest member document
	// IDs, ascending — deterministic representatives at any zoom.
	Exemplars []int64
}

// Clone deep-copies the tile.
func (t *Tile) Clone() *Tile {
	if t == nil {
		return nil
	}
	cp := &Tile{Z: t.Z, X: t.X, Y: t.Y, Docs: t.Docs}
	cp.Density = append([]uint32(nil), t.Density...)
	cp.Themes = append([]ThemeCount(nil), t.Themes...)
	cp.Times = append([]TimeCount(nil), t.Times...)
	cp.Facets = append([]FacetCount(nil), t.Facets...)
	cp.Exemplars = append([]int64(nil), t.Exemplars...)
	return cp
}

// key packs a tile address; MaxZoom <= 14 keeps x and y under 2^28.
func key(z, x, y int) uint64 {
	return uint64(z)<<56 | uint64(x)<<28 | uint64(y)
}

// Pyramid is a quadtree tile pyramid over one set of projected documents.
// It is a pure data structure: callers synchronize access (the serving layer
// guards each pyramid with its own mutex).
type Pyramid struct {
	cfg Config
	b   Rect
	// tiles holds the aggregates of every non-empty tile at every zoom.
	tiles map[uint64]*Tile
	// leaves holds the member entries of every non-empty leaf (MaxZoom)
	// tile, ascending by document ID — the candidate lists spatial queries
	// scan and exemplar refills draw from.
	leaves map[uint64][]Entry
	// loc resolves a member document to its entry, for removals.
	loc map[int64]Entry
}

// New returns an empty pyramid with the given configuration and world
// bounds.
func New(cfg Config, b Rect) (*Pyramid, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Pyramid{
		cfg:    cfg,
		b:      b,
		tiles:  make(map[uint64]*Tile),
		leaves: make(map[uint64][]Entry),
		loc:    make(map[int64]Entry),
	}, nil
}

// Build constructs a pyramid over the entries. Entry order never matters:
// every aggregate is a pure function of the member set.
func Build(cfg Config, b Rect, entries []Entry) (*Pyramid, error) {
	p, err := New(cfg, b)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !p.Add(e) {
			return nil, fmt.Errorf("tiles: duplicate or non-finite document %d", e.Doc)
		}
	}
	return p, nil
}

// Config returns the pyramid's configuration.
func (p *Pyramid) Config() Config { return p.cfg }

// Bounds returns the pyramid's world bounds.
func (p *Pyramid) Bounds() Rect { return p.b }

// NumDocs returns the number of member documents.
func (p *Pyramid) NumDocs() int { return len(p.loc) }

// NumTiles returns the number of non-empty tiles across all zoom levels.
func (p *Pyramid) NumTiles() int { return len(p.tiles) }

// Contains reports whether doc is a member.
func (p *Pyramid) Contains(doc int64) bool {
	_, ok := p.loc[doc]
	return ok
}

// norm maps projection coordinates to the unit square of the world bounds
// (values outside [0,1] clamp at bin time).
func (p *Pyramid) norm(x, y float64) (u, v float64) {
	return (x - p.b.MinX) / (p.b.MaxX - p.b.MinX), (y - p.b.MinY) / (p.b.MaxY - p.b.MinY)
}

// clampBin returns floor(u*n) clamped into [0, n-1]. n is always a power of
// two, so u*n is an exact scaling and bins nest exactly across zoom levels.
// The clamp compares in float space: a coordinate far outside the bounds can
// overflow int64 (or reach infinity) at the finer granularities, and both
// edges must clamp consistently at every level.
func clampBin(u float64, n int) int {
	f := math.Floor(u * float64(n))
	if !(f > 0) { // negative, zero, or NaN
		return 0
	}
	if f >= float64(n) {
		return n - 1
	}
	return int(f)
}

// tileAt returns (creating on demand) the tile at (z, x, y).
func (p *Pyramid) tileAt(z, x, y int) *Tile {
	k := key(z, x, y)
	t := p.tiles[k]
	if t == nil {
		t = &Tile{Z: z, X: x, Y: y, Density: make([]uint32, p.cfg.Grid*p.cfg.Grid)}
		p.tiles[k] = t
	}
	return t
}

// Add bins one document into every zoom level. It returns false (and changes
// nothing) when the document is already a member or its coordinates are not
// finite.
func (p *Pyramid) Add(e Entry) bool {
	if _, dup := p.loc[e.Doc]; dup {
		return false
	}
	if math.IsNaN(e.X) || math.IsInf(e.X, 0) || math.IsNaN(e.Y) || math.IsInf(e.Y, 0) {
		return false
	}
	p.loc[e.Doc] = e
	u, v := p.norm(e.X, e.Y)
	g := p.cfg.Grid
	for z := 0; z <= p.cfg.MaxZoom; z++ {
		n := 1 << z
		tx, ty := clampBin(u, n), clampBin(v, n)
		t := p.tileAt(z, tx, ty)
		t.Docs++
		gx := clampBin(u, n*g) - tx*g
		gy := clampBin(v, n*g) - ty*g
		t.Density[gy*g+gx]++
		if e.Cluster >= 0 {
			t.addTheme(e.Cluster, 1)
		}
		t.addMeta(e, 1)
		t.addExemplar(e.Doc, p.cfg.Exemplars)
	}
	lk := key(p.cfg.MaxZoom, clampBin(u, 1<<p.cfg.MaxZoom), clampBin(v, 1<<p.cfg.MaxZoom))
	l := p.leaves[lk]
	i := sort.Search(len(l), func(i int) bool { return l[i].Doc >= e.Doc })
	l = append(l, Entry{})
	copy(l[i+1:], l[i:])
	l[i] = e
	p.leaves[lk] = l
	return true
}

// Remove unbins one document from every zoom level; false when it is not a
// member. Tiles left empty are deleted, so an incrementally maintained
// pyramid stays identical to one rebuilt from the surviving members.
func (p *Pyramid) Remove(doc int64) bool {
	e, ok := p.loc[doc]
	if !ok {
		return false
	}
	delete(p.loc, doc)
	u, v := p.norm(e.X, e.Y)
	g := p.cfg.Grid
	// Drop the leaf entry before the aggregate walk: exemplar refills read
	// the leaf lists and must not see the departing document.
	lk := key(p.cfg.MaxZoom, clampBin(u, 1<<p.cfg.MaxZoom), clampBin(v, 1<<p.cfg.MaxZoom))
	l := p.leaves[lk]
	li := sort.Search(len(l), func(i int) bool { return l[i].Doc >= doc })
	l = append(l[:li], l[li+1:]...)
	if len(l) == 0 {
		delete(p.leaves, lk)
	} else {
		p.leaves[lk] = l
	}
	for z := 0; z <= p.cfg.MaxZoom; z++ {
		n := 1 << z
		tx, ty := clampBin(u, n), clampBin(v, n)
		k := key(z, tx, ty)
		t := p.tiles[k]
		t.Docs--
		if t.Docs == 0 {
			delete(p.tiles, k)
			continue
		}
		gx := clampBin(u, n*g) - tx*g
		gy := clampBin(v, n*g) - ty*g
		t.Density[gy*g+gx]--
		if e.Cluster >= 0 {
			t.addTheme(e.Cluster, -1)
		}
		t.addMeta(e, -1)
		t.dropExemplar(doc)
		if len(t.Exemplars) < p.cfg.Exemplars && t.Docs > int64(len(t.Exemplars)) {
			p.refillExemplars(t)
		}
	}
	return true
}

// addTheme adjusts the sparse per-cluster histogram, keeping it ascending by
// cluster and dropping zeroed entries.
func (t *Tile) addTheme(cluster, delta int64) {
	i := sort.Search(len(t.Themes), func(i int) bool { return t.Themes[i].Cluster >= cluster })
	if i < len(t.Themes) && t.Themes[i].Cluster == cluster {
		t.Themes[i].Docs += delta
		if t.Themes[i].Docs == 0 {
			t.Themes = append(t.Themes[:i], t.Themes[i+1:]...)
			if len(t.Themes) == 0 {
				// Keep "no themes" canonical (nil), so an incrementally
				// emptied histogram compares equal to a rebuilt one.
				t.Themes = nil
			}
		}
		return
	}
	t.Themes = append(t.Themes, ThemeCount{})
	copy(t.Themes[i+1:], t.Themes[i:])
	t.Themes[i] = ThemeCount{Cluster: cluster, Docs: delta}
}

// addMeta adjusts the time and facet histograms for one member entry —
// the metadata twin of addTheme, with the same nil-when-empty canonical
// form so incremental and rebuilt pyramids stay identical.
func (t *Tile) addMeta(e Entry, delta int64) {
	if e.Time != 0 {
		t.addTime(TimeBucket(e.Time), delta)
	}
	for _, f := range e.Facets {
		t.addFacet(f, delta)
	}
}

// addTime adjusts the sparse per-day histogram, keeping it ascending by
// bucket and dropping zeroed entries.
func (t *Tile) addTime(bucket, delta int64) {
	i := sort.Search(len(t.Times), func(i int) bool { return t.Times[i].Bucket >= bucket })
	if i < len(t.Times) && t.Times[i].Bucket == bucket {
		t.Times[i].Docs += delta
		if t.Times[i].Docs == 0 {
			t.Times = append(t.Times[:i], t.Times[i+1:]...)
			if len(t.Times) == 0 {
				t.Times = nil
			}
		}
		return
	}
	t.Times = append(t.Times, TimeCount{})
	copy(t.Times[i+1:], t.Times[i:])
	t.Times[i] = TimeCount{Bucket: bucket, Docs: delta}
}

// addFacet adjusts the sparse per-facet count, keeping it ascending by facet
// string and dropping zeroed entries.
func (t *Tile) addFacet(facet string, delta int64) {
	i := sort.Search(len(t.Facets), func(i int) bool { return t.Facets[i].Facet >= facet })
	if i < len(t.Facets) && t.Facets[i].Facet == facet {
		t.Facets[i].Docs += delta
		if t.Facets[i].Docs == 0 {
			t.Facets = append(t.Facets[:i], t.Facets[i+1:]...)
			if len(t.Facets) == 0 {
				t.Facets = nil
			}
		}
		return
	}
	t.Facets = append(t.Facets, FacetCount{})
	copy(t.Facets[i+1:], t.Facets[i:])
	t.Facets[i] = FacetCount{Facet: facet, Docs: delta}
}

// addExemplar inserts doc into the sorted exemplar set if it belongs among
// the cap smallest member IDs.
func (t *Tile) addExemplar(doc int64, cap int) {
	n := len(t.Exemplars)
	if n == cap && doc >= t.Exemplars[n-1] {
		return
	}
	i := sort.Search(n, func(i int) bool { return t.Exemplars[i] >= doc })
	t.Exemplars = append(t.Exemplars, 0)
	copy(t.Exemplars[i+1:], t.Exemplars[i:])
	t.Exemplars[i] = doc
	if len(t.Exemplars) > cap {
		t.Exemplars = t.Exemplars[:cap]
	}
}

// dropExemplar removes doc from the exemplar set if present.
func (t *Tile) dropExemplar(doc int64) {
	i := sort.Search(len(t.Exemplars), func(i int) bool { return t.Exemplars[i] >= doc })
	if i < len(t.Exemplars) && t.Exemplars[i] == doc {
		t.Exemplars = append(t.Exemplars[:i], t.Exemplars[i+1:]...)
	}
}

// refillExemplars recomputes a tile's exemplar set from the leaf lists under
// it — needed when a removal evicted an exemplar while more members remain.
// The result is the cap smallest member IDs, the same pure function Add
// maintains, so removal keeps incremental and rebuilt pyramids identical.
func (p *Pyramid) refillExemplars(t *Tile) {
	s := p.cfg.MaxZoom - t.Z
	var cand []int64
	for lk, l := range p.leaves {
		lx := int(lk >> 28 & (1<<28 - 1))
		ly := int(lk & (1<<28 - 1))
		if lx>>s != t.X || ly>>s != t.Y {
			continue
		}
		for i := 0; i < len(l) && i < p.cfg.Exemplars; i++ {
			cand = append(cand, l[i].Doc)
		}
	}
	sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
	if len(cand) > p.cfg.Exemplars {
		cand = cand[:p.cfg.Exemplars]
	}
	t.Exemplars = cand
}

// Tile returns the live tile at (z, x, y), or nil when it is empty. The
// returned pointer aliases pyramid state: copy (Clone) before releasing the
// caller's lock.
func (p *Pyramid) Tile(z, x, y int) *Tile {
	return p.tiles[key(z, x, y)]
}

// TileWhere builds the tile at (z, x, y) over only the member entries keep
// accepts — byte-for-byte the aggregate a pyramid over the matching subset
// would hold at that address, because every aggregate is an order-independent
// pure function of the member set. The result is freshly allocated (callers
// own it); nil when no member under the address matches. Cost is proportional
// to the tile's member count, so filtered tile queries bypass the unfiltered
// aggregates instead of approximating from them.
func (p *Pyramid) TileWhere(z, x, y int, keep func(Entry) bool) *Tile {
	if z < 0 || z > p.cfg.MaxZoom || x < 0 || y < 0 || x >= 1<<z || y >= 1<<z {
		return nil
	}
	s := p.cfg.MaxZoom - z
	g := p.cfg.Grid
	n := 1 << z
	var out *Tile
	for lk, l := range p.leaves {
		lx := int(lk >> 28 & (1<<28 - 1))
		ly := int(lk & (1<<28 - 1))
		if lx>>s != x || ly>>s != y {
			continue
		}
		for _, e := range l {
			if !keep(e) {
				continue
			}
			if out == nil {
				out = &Tile{Z: z, X: x, Y: y, Density: make([]uint32, g*g)}
			}
			u, v := p.norm(e.X, e.Y)
			gx := clampBin(u, n*g) - x*g
			gy := clampBin(v, n*g) - y*g
			out.Docs++
			out.Density[gy*g+gx]++
			if e.Cluster >= 0 {
				out.addTheme(e.Cluster, 1)
			}
			out.addMeta(e, 1)
			out.addExemplar(e.Doc, p.cfg.Exemplars)
		}
	}
	return out
}

// window is one zoom level's inclusive admission box during a walk.
type window struct{ x0, y0, x1, y1 int }

func (w window) admits(x, y int) bool {
	return x >= w.x0 && x <= w.x1 && y >= w.y0 && y <= w.y1
}

// windows precomputes r's bin window at every zoom level up to depth; ok is
// false for empty/NaN rects.
func (p *Pyramid) windows(depth int, r Rect) ([]window, bool) {
	out := make([]window, depth+1)
	for z := 0; z <= depth; z++ {
		x0, y0, x1, y1, ok := BinWindow(p.b, z, r)
		if !ok {
			return nil, false
		}
		out[z] = window{x0, y0, x1, y1}
	}
	return out, true
}

// Range returns the non-empty tiles at zoom z whose bin window intersects
// r's, ordered by (x, y), plus the number of non-empty subtrees the quadtree
// descent pruned without touching. The returned tiles are live pointers;
// copy before releasing the caller's lock.
func (p *Pyramid) Range(z int, r Rect) (out []*Tile, pruned int) {
	if z < 0 || z > p.cfg.MaxZoom {
		return nil, 0
	}
	wins, ok := p.windows(z, r)
	if !ok {
		return nil, 0
	}
	var walk func(zz, x, y int)
	walk = func(zz, x, y int) {
		t := p.tiles[key(zz, x, y)]
		if t == nil {
			return
		}
		if !wins[zz].admits(x, y) {
			pruned++
			return
		}
		if zz == z {
			out = append(out, t)
			return
		}
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				walk(zz+1, 2*x+dx, 2*y+dy)
			}
		}
	}
	walk(0, 0, 0)
	sort.Slice(out, func(a, b int) bool {
		if out[a].X != out[b].X {
			return out[a].X < out[b].X
		}
		return out[a].Y < out[b].Y
	})
	return out, pruned
}

// Search descends the quadtree to the leaf tiles admitted by r's bin
// windows and returns a copy of their member entries — the candidate set a
// spatial query then filters exactly — plus the number of leaves visited
// and the number of non-empty subtrees pruned. Cost is proportional to the
// answer neighbourhood, not the corpus, and a point inside r is always among
// the candidates (the windows use the member binning arithmetic, clamping
// included).
func (p *Pyramid) Search(r Rect) (cands []Entry, visited, pruned int) {
	wins, ok := p.windows(p.cfg.MaxZoom, r)
	if !ok {
		return nil, 0, 0
	}
	var walk func(z, x, y int)
	walk = func(z, x, y int) {
		if p.tiles[key(z, x, y)] == nil {
			return
		}
		if !wins[z].admits(x, y) {
			pruned++
			return
		}
		if z == p.cfg.MaxZoom {
			visited++
			cands = append(cands, p.leaves[key(z, x, y)]...)
			return
		}
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				walk(z+1, 2*x+dx, 2*y+dy)
			}
		}
	}
	walk(0, 0, 0)
	return cands, visited, pruned
}

// Merge sums per-shard instances of one tile address into the tile a
// monolithic pyramid over the union of the shards' documents would hold:
// densities, document counts and theme histograms add; the exemplar sets
// union and trim to the cap smallest (shards partition the documents, so
// every per-shard exemplar set contains the shard's candidates for the
// global set). nil entries (shards without the tile) are skipped; nil when
// every part is nil.
func Merge(parts []*Tile, exemplarCap int) *Tile {
	return MergeInto(nil, parts, exemplarCap)
}

// MergeInto is Merge with a caller-owned result tile: dst's slices are
// truncated and reused, so a serving gather loop can recycle one scratch
// tile (e.g. through a sync.Pool) and merge allocation-free once the buffers
// reach working-set size. dst may be nil (a fresh tile is allocated on the
// first non-nil part); it must not be one of parts. Returns nil — with dst
// left reusable — when every part is nil.
func MergeInto(dst *Tile, parts []*Tile, exemplarCap int) *Tile {
	var out *Tile
	for _, t := range parts {
		if t == nil {
			continue
		}
		if out == nil {
			out = dst
			if out == nil {
				out = &Tile{}
			}
			out.Z, out.X, out.Y = t.Z, t.X, t.Y
			out.Docs = 0
			if cap(out.Density) < len(t.Density) {
				out.Density = make([]uint32, len(t.Density))
			} else {
				out.Density = out.Density[:len(t.Density)]
				clear(out.Density)
			}
			out.Themes = out.Themes[:0]
			out.Times = out.Times[:0]
			out.Facets = out.Facets[:0]
			out.Exemplars = out.Exemplars[:0]
		}
		out.Docs += t.Docs
		for i, d := range t.Density {
			out.Density[i] += d
		}
		for _, th := range t.Themes {
			out.addTheme(th.Cluster, th.Docs)
		}
		for _, tc := range t.Times {
			out.addTime(tc.Bucket, tc.Docs)
		}
		for _, fc := range t.Facets {
			out.addFacet(fc.Facet, fc.Docs)
		}
		out.Exemplars = append(out.Exemplars, t.Exemplars...)
	}
	if out == nil {
		return nil
	}
	// slices.Sort, not sort.Slice: the generic sort needs no reflection and
	// no closure, keeping a warm merge allocation-free.
	slices.Sort(out.Exemplars)
	if len(out.Exemplars) > exemplarCap {
		out.Exemplars = out.Exemplars[:exemplarCap]
	}
	return out
}

// Clone deep-copies the pyramid.
func (p *Pyramid) Clone() *Pyramid {
	cp := &Pyramid{
		cfg:    p.cfg,
		b:      p.b,
		tiles:  make(map[uint64]*Tile, len(p.tiles)),
		leaves: make(map[uint64][]Entry, len(p.leaves)),
		loc:    make(map[int64]Entry, len(p.loc)),
	}
	for k, t := range p.tiles {
		cp.tiles[k] = t.Clone()
	}
	for k, l := range p.leaves {
		cp.leaves[k] = append([]Entry(nil), l...)
	}
	for d, e := range p.loc {
		cp.loc[d] = e
	}
	return cp
}
