package tiles

import "testing"

// TestMergeIntoAllocFree pins the gather-merge win: recycling one scratch
// tile across merges (what the router's tile pool does) allocates nothing
// once the buffers reach working-set size.
func TestMergeIntoAllocFree(t *testing.T) {
	mk := func(seed uint32) *Tile {
		tl := &Tile{Z: 1, X: 0, Y: 1, Docs: int64(seed) + 3, Density: make([]uint32, 64)}
		for i := range tl.Density {
			tl.Density[i] = seed + uint32(i)
		}
		tl.Themes = []ThemeCount{{Cluster: 0, Docs: 2}, {Cluster: int64(seed%3 + 1), Docs: 1}}
		tl.Exemplars = []int64{int64(seed), int64(seed) + 10, int64(seed) + 20}
		return tl
	}
	parts := []*Tile{mk(1), nil, mk(5), mk(9)}
	dst := &Tile{}
	merged := MergeInto(dst, parts, 4) // warm to working-set size
	if merged != dst || merged.Docs != 4+8+12 {
		t.Fatalf("warm merge = %+v", merged)
	}
	got := testing.AllocsPerRun(100, func() {
		MergeInto(dst, parts, 4)
	})
	if got != 0 {
		t.Fatalf("warm MergeInto allocates %v objects/op, want 0", got)
	}
	// The all-nil merge answers nil and leaves dst reusable.
	if MergeInto(dst, []*Tile{nil, nil}, 4) != nil {
		t.Fatal("all-nil merge not nil")
	}
	if MergeInto(dst, parts, 4) == nil {
		t.Fatal("dst unusable after all-nil merge")
	}
}

func BenchmarkMerge(b *testing.B) {
	parts := make([]*Tile, 4)
	for i := range parts {
		tl := &Tile{Z: 2, X: 1, Y: 1, Docs: 40, Density: make([]uint32, 256)}
		for j := range tl.Density {
			tl.Density[j] = uint32(i + j)
		}
		tl.Themes = []ThemeCount{{Cluster: int64(i), Docs: 10}}
		tl.Exemplars = []int64{int64(i), int64(i) + 4}
		parts[i] = tl
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Merge(parts, 8)
	}
}

func BenchmarkMergeInto(b *testing.B) {
	parts := make([]*Tile, 4)
	for i := range parts {
		tl := &Tile{Z: 2, X: 1, Y: 1, Docs: 40, Density: make([]uint32, 256)}
		for j := range tl.Density {
			tl.Density[j] = uint32(i + j)
		}
		tl.Themes = []ThemeCount{{Cluster: int64(i), Docs: 10}}
		tl.Exemplars = []int64{int64(i), int64(i) + 4}
		parts[i] = tl
	}
	dst := &Tile{}
	MergeInto(dst, parts, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeInto(dst, parts, 8)
	}
}
