package tiles

import (
	"math/rand"
	"reflect"
	"testing"
)

// FuzzTileRoundTrip drives the sidecar codec from both ends: arbitrary bytes
// must either be rejected or decode to a pyramid whose canonical re-encoding
// is byte-identical, and structured pyramids synthesized from the fuzzer's
// integers must always round-trip exactly.
func FuzzTileRoundTrip(f *testing.F) {
	small, err := Build(Config{MaxZoom: 3, Grid: 2, Exemplars: 2}, NewBounds(0, 0, 1, 1), []Entry{
		{Doc: 0, X: 0.1, Y: 0.2, Cluster: 1},
		{Doc: 5, X: 0.9, Y: 0.8, Cluster: -1},
		{Doc: 9, X: -2, Y: 3, Cluster: 0}, // clamps into an edge tile
	})
	if err != nil {
		f.Fatal(err)
	}
	empty, err := New(Config{}, NewBounds(-1, -1, 1, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(small.Encode(), uint8(3), uint16(12), int64(1))
	f.Add(empty.Encode(), uint8(2), uint16(0), int64(2))
	f.Add([]byte(Magic), uint8(1), uint16(4), int64(3))
	f.Add([]byte{}, uint8(0), uint16(0), int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, zoom uint8, docs uint16, seed int64) {
		// Arbitrary bytes: decode either errors or yields a pyramid whose
		// canonical encoding is byte-identical and decodes back to the
		// same value.
		if p, err := Decode(raw); err == nil {
			re := p.Encode()
			if !reflect.DeepEqual(re, raw) {
				t.Fatalf("accepted sidecar is not canonical: %d vs %d bytes", len(re), len(raw))
			}
			back, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encoded sidecar rejected: %v", err)
			}
			if !reflect.DeepEqual(p, back) {
				t.Fatal("round trip drifted")
			}
		}

		// Structured input: a synthesized pyramid must round-trip to
		// identity.
		cfg := Config{MaxZoom: int(zoom)%6 + 1, Grid: 1 << (int(zoom) % 4), Exemplars: int(zoom)%5 + 1}
		rng := rand.New(rand.NewSource(seed))
		entries := make([]Entry, 0, int(docs)%64)
		for i := 0; i < int(docs)%64; i++ {
			entries = append(entries, Entry{
				Doc:     int64(i)*7 + int64(docs),
				X:       rng.Float64()*4 - 2,
				Y:       rng.Float64()*4 - 2,
				Cluster: int64(rng.Intn(4)) - 1,
			})
		}
		p, err := Build(cfg, NewBounds(-1, -1, 2, 2), entries)
		if err != nil {
			t.Fatalf("valid pyramid rejected: %v", err)
		}
		enc := p.Encode()
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("encoded pyramid rejected: %v", err)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatal("structured round trip drifted")
		}
	})
}
