package tiles

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"inspire/internal/storefile"
)

// Magic heads the persisted pyramid sidecar. The file carries the
// configuration, the world bounds and the leaf member entries only: every
// higher-zoom aggregate is a pure function of the leaves, so Decode rebuilds
// them — the sidecar cannot go out of step with itself, and corruption in an
// aggregate is structurally impossible. Version 2 added the per-entry
// timestamp and facet strings; MagicV1 sidecars (no metadata) still load
// through DecodeAny.
const (
	Magic   = "INSPTILES2\n"
	MagicV1 = "INSPTILES1\n"
)

// Codec bounds on per-entry metadata: Decode rejects anything larger, so a
// corrupt sidecar cannot demand huge allocations. The serving layer validates
// facets at ingest well inside these.
const (
	maxEntryFacets = 64
	maxFacetLen    = 1024
)

// Encode serializes the pyramid canonically: leaves ascending by tile
// address, entries ascending by document ID, coordinates as raw IEEE-754
// bits. Decode(Encode(p)) reproduces p exactly, and Encode(Decode(b)) == b
// for every accepted b.
func (p *Pyramid) Encode() []byte {
	buf := []byte(Magic)
	buf = binary.AppendUvarint(buf, uint64(p.cfg.MaxZoom))
	buf = binary.AppendUvarint(buf, uint64(p.cfg.Grid))
	buf = binary.AppendUvarint(buf, uint64(p.cfg.Exemplars))
	for _, f := range []float64{p.b.MinX, p.b.MinY, p.b.MaxX, p.b.MaxY} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	keys := make([]uint64, 0, len(p.leaves))
	for k := range p.leaves {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, k>>28&(1<<28-1))
		buf = binary.AppendUvarint(buf, k&(1<<28-1))
		l := p.leaves[k]
		buf = binary.AppendUvarint(buf, uint64(len(l)))
		prev := int64(-1)
		for _, e := range l {
			buf = binary.AppendUvarint(buf, uint64(e.Doc-prev))
			prev = e.Doc
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Y))
			buf = binary.AppendVarint(buf, e.Cluster)
			buf = binary.AppendVarint(buf, e.Time)
			buf = binary.AppendUvarint(buf, uint64(len(e.Facets)))
			for _, f := range e.Facets {
				buf = binary.AppendUvarint(buf, uint64(len(f)))
				buf = append(buf, f...)
			}
		}
	}
	return buf
}

// SaveFile persists the pyramid to a sidecar file atomically.
func (p *Pyramid) SaveFile(path string) error {
	return storefile.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(p.Encode())
		return err
	})
}

// Decode parses a sidecar written by Encode, rebuilding the aggregate tiles
// from the leaf entries, and rejects anything non-canonical: unsorted or
// duplicate leaves or documents, entries binned under the wrong leaf,
// non-finite coordinates, clusters below -1, unsorted or oversized facet
// sets, or trailing bytes.
func Decode(data []byte) (*Pyramid, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("tiles: not a tile-pyramid sidecar")
	}
	return decodeBody(data[len(Magic):], true)
}

// DecodeAny parses a sidecar in the current or the previous on-disk version:
// a MagicV1 file carries no per-entry metadata and loads with zero
// timestamps and no facets (re-encoding it upgrades the file to version 2).
// Loaders use this; the canonical round-trip guarantee belongs to Decode.
func DecodeAny(data []byte) (*Pyramid, error) {
	if len(data) >= len(MagicV1) && string(data[:len(MagicV1)]) == MagicV1 {
		return decodeBody(data[len(MagicV1):], false)
	}
	return Decode(data)
}

func decodeBody(body []byte, withMeta bool) (*Pyramid, error) {
	r := &byteReader{buf: body}
	cfg := Config{
		MaxZoom:   int(r.uvarint()),
		Grid:      int(r.uvarint()),
		Exemplars: int(r.uvarint()),
	}
	b := Rect{MinX: r.float(), MinY: r.float(), MaxX: r.float(), MaxY: r.float()}
	if r.err != nil {
		return nil, fmt.Errorf("tiles: corrupt sidecar: %w", r.err)
	}
	// Validate the configuration exactly as persisted: defaulting a zero
	// field here would make the re-encoding differ from the input.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p, err := New(cfg, b)
	if err != nil {
		return nil, err
	}
	nLeaves := r.uvarint()
	prevKey := int64(-1)
	for i := uint64(0); i < nLeaves && r.err == nil; i++ {
		lx, ly := r.uvarint(), r.uvarint()
		n := 1 << cfg.MaxZoom
		if lx >= uint64(n) || ly >= uint64(n) {
			return nil, fmt.Errorf("tiles: leaf (%d,%d) outside zoom %d", lx, ly, cfg.MaxZoom)
		}
		k := key(cfg.MaxZoom, int(lx), int(ly))
		if int64(k) <= prevKey {
			return nil, fmt.Errorf("tiles: leaves not strictly ascending")
		}
		prevKey = int64(k)
		nEntries := r.uvarint()
		if nEntries == 0 && r.err == nil {
			// An empty leaf would vanish on re-encode; only non-empty
			// leaves are canonical.
			return nil, fmt.Errorf("tiles: empty leaf record")
		}
		prevDoc := int64(-1)
		for j := uint64(0); j < nEntries && r.err == nil; j++ {
			delta := r.uvarint()
			// prevDoc >= -1, so prevDoc+1 >= 0; doc = prevDoc + delta must
			// stay within int64.
			if delta == 0 || delta-1 > uint64(math.MaxInt64)-uint64(prevDoc+1) {
				return nil, fmt.Errorf("tiles: leaf documents not strictly ascending")
			}
			e := Entry{Doc: prevDoc + int64(delta), X: r.float(), Y: r.float(), Cluster: r.varint()}
			prevDoc = e.Doc
			if withMeta && r.err == nil {
				e.Time = r.varint()
				nf := r.uvarint()
				if nf > maxEntryFacets {
					return nil, fmt.Errorf("tiles: document %d has %d facets (max %d)", e.Doc, nf, maxEntryFacets)
				}
				for fi := uint64(0); fi < nf && r.err == nil; fi++ {
					f := r.str(maxFacetLen)
					if r.err != nil {
						break
					}
					if f == "" || (len(e.Facets) > 0 && f <= e.Facets[len(e.Facets)-1]) {
						return nil, fmt.Errorf("tiles: document %d facets not strictly ascending", e.Doc)
					}
					e.Facets = append(e.Facets, f)
				}
			}
			if r.err != nil {
				break
			}
			if e.Cluster < -1 {
				return nil, fmt.Errorf("tiles: document %d has cluster %d", e.Doc, e.Cluster)
			}
			if !p.Add(e) {
				return nil, fmt.Errorf("tiles: duplicate or non-finite document %d", e.Doc)
			}
			u, v := p.norm(e.X, e.Y)
			if clampBin(u, n) != int(lx) || clampBin(v, n) != int(ly) {
				return nil, fmt.Errorf("tiles: document %d filed under the wrong leaf", e.Doc)
			}
		}
	}
	switch {
	case r.err != nil:
		return nil, fmt.Errorf("tiles: corrupt sidecar: %w", r.err)
	case len(r.buf) != 0:
		return nil, fmt.Errorf("tiles: sidecar has %d trailing bytes", len(r.buf))
	}
	return p, nil
}

// LoadFile reads a pyramid sidecar by path, accepting both on-disk versions.
func LoadFile(path string) (*Pyramid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeAny(data)
}

// byteReader cursors over the sidecar body, latching the first error.
type byteReader struct {
	buf []byte
	err error
}

// uvarintLen returns the minimal encoded length of v — the decoder rejects
// padded encodings so every accepted sidecar is canonical and re-encodes
// byte-identically.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 || n != uvarintLen(v) {
		r.err = fmt.Errorf("truncated or non-minimal uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	u := uint64(v) << 1
	if v < 0 {
		u = ^u
	}
	if n <= 0 || n != uvarintLen(u) {
		r.err = fmt.Errorf("truncated or non-minimal varint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// str reads a length-prefixed string of at most maxLen bytes.
func (r *byteReader) str(maxLen int) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(maxLen) || n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("truncated or oversized string")
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}

func (r *byteReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		r.err = fmt.Errorf("non-finite float")
		return 0
	}
	return v
}
