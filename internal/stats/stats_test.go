package stats

import (
	"fmt"
	"testing"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/invert"
	"inspire/internal/scan"
	"inspire/internal/simtime"
)

func statSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 40_000, Sources: 4, Seed: 51, VocabSize: 900, Topics: 4,
	})
}

// withStats runs scan+invert+stats.
func withStats(t *testing.T, p int, sources []*corpus.Source,
	body func(c *cluster.Comm, st *TermStats, vocab *dhash.Map, fwd *scan.Forward) error) {
	t.Helper()
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, p)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := invert.PublishForward(c, fwd)
		ix := invert.Invert(c, gf, n, vocab.DenseRange, invert.Options{})
		st := Build(c, ix, fwd.TotalDocs, int64(len(fwd.Tokens)))
		return body(c, st, vocab, fwd)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalsConsistent(t *testing.T) {
	sources := statSources()
	for _, p := range []int{1, 2, 4} {
		withStats(t, p, sources, func(c *cluster.Comm, st *TermStats, vocab *dhash.Map, fwd *scan.Forward) error {
			if st.TotalDocs != fwd.TotalDocs {
				return fmt.Errorf("docs %d vs %d", st.TotalDocs, fwd.TotalDocs)
			}
			// Sum of CF equals total tokens.
			var localCF int64
			for _, v := range st.CF.Access() {
				localCF += v
			}
			globalCF := c.AllreduceSumInt(localCF)
			if globalCF != st.TotalTokens {
				return fmt.Errorf("sum(CF)=%d tokens=%d", globalCF, st.TotalTokens)
			}
			// DF bounded by docs and by CF.
			df := st.DF.Access()
			cf := st.CF.Access()
			for i := range df {
				if df[i] > st.TotalDocs || df[i] > cf[i] || (df[i] == 0) != (cf[i] == 0) {
					return fmt.Errorf("term %d: df=%d cf=%d docs=%d", i, df[i], cf[i], st.TotalDocs)
				}
			}
			// TotalPostings equals global sum of DF.
			var localDF int64
			for _, v := range df {
				localDF += v
			}
			if got := c.AllreduceSumInt(localDF); got != st.TotalPostings {
				return fmt.Errorf("postings %d vs %d", got, st.TotalPostings)
			}
			return nil
		})
	}
}

func TestDFByTermInvariantAcrossP(t *testing.T) {
	sources := statSources()
	collect := func(p int) map[string]int64 {
		out := make(map[string]int64)
		withStats(t, p, sources, func(c *cluster.Comm, st *TermStats, vocab *dhash.Map, fwd *scan.Forward) error {
			lo, hi := st.DF.Distribution(c.Rank())
			df := st.DF.Access()
			// Each rank reports its own range; merge via gather at 0.
			type pair struct {
				Term string
				DF   int64
			}
			local := make([]pair, 0, hi-lo)
			for i := int64(0); i < hi-lo; i++ {
				local = append(local, pair{vocab.Term(lo + i), df[i]})
			}
			parts := c.Gather(0, local, float64(24*len(local)))
			if c.Rank() == 0 {
				for _, part := range parts {
					for _, pr := range part.([]pair) {
						out[pr.Term] = pr.DF
					}
				}
			}
			return nil
		})
		return out
	}
	base := collect(1)
	for _, p := range []int{2, 3} {
		got := collect(p)
		if len(got) != len(base) {
			t.Fatalf("p=%d: %d terms vs %d", p, len(got), len(base))
		}
		for term, df := range base {
			if got[term] != df {
				t.Fatalf("p=%d: term %q df %d vs %d", p, term, got[term], df)
			}
		}
	}
}

func TestStatsReadableFromAnyRank(t *testing.T) {
	withStats(t, 3, statSources(), func(c *cluster.Comm, st *TermStats, vocab *dhash.Map, fwd *scan.Forward) error {
		// Every rank reads the same value for term 0 via one-sided Get.
		v := st.DF.GetOne(0)
		sum := c.AllreduceSumInt(v)
		if sum != v*int64(c.Size()) {
			return fmt.Errorf("ranks read different df for term 0")
		}
		return nil
	})
}
