// Package stats implements the paper's Global Term Statistics component:
// after inverted file indexing, the per-term document and collection
// frequencies are published in global arrays so every process can read any
// term's statistics during signature generation (paper §3.3: "A global array
// is created to store these term statistics from all processes").
package stats

import (
	"inspire/internal/cluster"
	"inspire/internal/ga"
	"inspire/internal/invert"
)

// TermStats holds the global term statistics.
type TermStats struct {
	// DF[t] is term t's document frequency (documents containing t).
	DF *ga.Array[int64]
	// CF[t] is term t's collection frequency (total occurrences).
	CF *ga.Array[int64]
	// TotalDocs is the global document count D.
	TotalDocs int64
	// TotalPostings is the global number of (term, document) pairs.
	TotalPostings int64
	// TotalTokens is the global token count.
	TotalTokens int64
}

// Build collectively publishes the owner-local DF/CF vectors computed during
// inversion into global arrays and reduces the collection-wide totals.
func Build(c *cluster.Comm, ix *invert.Index, totalDocs int64, localTokens int64) *TermStats {
	st := &TermStats{TotalDocs: totalDocs}
	st.DF = ga.CreateIrregular[int64](c, "stats.df", ix.TermHi-ix.TermLo)
	st.CF = ga.CreateIrregular[int64](c, "stats.cf", ix.TermHi-ix.TermLo)
	copy(st.DF.Access(), ix.DF)
	copy(st.CF.Access(), ix.CF)
	var localPost, localCF int64
	for i := range ix.DF {
		localPost += ix.DF[i]
		localCF += ix.CF[i]
	}
	totals := c.AllreduceSumInt64([]int64{localPost, localTokens})
	st.TotalPostings = totals[0]
	st.TotalTokens = totals[1]
	c.Barrier()
	return st
}
