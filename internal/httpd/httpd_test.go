package httpd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/query"
	"inspire/internal/serve"
	"inspire/internal/simtime"
	"inspire/internal/tiles"
)

// TestSavePathConfinement pins the /save target policy: a plain file name
// joined under the save dir, everything else — absolute paths, separators,
// traversal, or an unconfigured dir — refused.
func TestSavePathConfinement(t *testing.T) {
	if _, err := savePath("", "run.live"); err == nil {
		t.Fatal("save allowed without a save dir")
	}
	got, err := savePath("/data", "run.live")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("/data", "run.live"); got != want {
		t.Fatalf("savePath = %q, want %q", got, want)
	}
	for _, name := range []string{"", ".", "..", "/etc/passwd", "../escape", "sub/file", `sub\file`, "a/../b"} {
		if _, err := savePath("/data", name); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

// stubQuerier/stubService satisfy the serving interfaces with inert answers,
// so the routing-policy tests need no indexed store behind them.
type stubQuerier struct{}

func (stubQuerier) TermDocs(context.Context, string) []query.Posting         { return nil }
func (stubQuerier) DF(context.Context, string) int64                         { return 0 }
func (stubQuerier) And(context.Context, ...string) []int64                   { return nil }
func (stubQuerier) Or(context.Context, ...string) []int64                    { return nil }
func (stubQuerier) Similar(context.Context, int64, int) ([]query.Hit, error) { return nil, nil }
func (stubQuerier) ThemeDocs(context.Context, int) []int64                   { return nil }
func (stubQuerier) Near(context.Context, float64, float64, float64) []int64  { return nil }
func (stubQuerier) Tile(context.Context, int, int, int) (*serve.TileResult, error) {
	return &serve.TileResult{}, nil
}
func (stubQuerier) TileRange(context.Context, int, tiles.Rect) ([]*serve.TileResult, error) {
	return nil, nil
}
func (stubQuerier) Add(context.Context, string) (int64, error) { return 0, nil }
func (stubQuerier) AddDoc(context.Context, string, int64, []string) (int64, error) {
	return 0, nil
}
func (stubQuerier) SetFilter(serve.Filter) error        { return nil }
func (stubQuerier) Delete(context.Context, int64) error { return nil }
func (stubQuerier) Stats() serve.SessionStats           { return serve.SessionStats{} }

type stubService struct{}

func (stubService) NewQuerier() serve.Querier               { return stubQuerier{} }
func (stubService) Stats() serve.Stats                      { return serve.Stats{} }
func (stubService) TopTerms(context.Context, int) []string  { return nil }
func (stubService) SampleDocs(context.Context, int) []int64 { return nil }
func (stubService) NumThemes() int                          { return 0 }
func (stubService) Themes() []core.Theme                    { return nil }

// TestMutatingEndpointsRequirePOST pins the method split of the HTTP surface:
// every state-changing endpoint rejects GET with 405, queries stay on GET,
// and /save without a save dir refuses rather than writing.
func TestMutatingEndpointsRequirePOST(t *testing.T) {
	mux := New(stubService{}, "").Mux()
	do := func(method, target string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
		return rec
	}

	for _, ep := range []string{"/add?text=x", "/delete?doc=1", "/flush", "/compact", "/save?path=x"} {
		rec := do(http.MethodGet, ep)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want %d", ep, rec.Code, http.StatusMethodNotAllowed)
		}
		// The 405 still carries a JSON body naming the fix.
		var rep Reply
		if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
			t.Fatalf("GET %s: non-JSON 405 body: %v", ep, err)
		}
		if rep.Error == "" || !strings.Contains(rep.Error, "POST") {
			t.Fatalf("GET %s: 405 body %+v does not name POST", ep, rep)
		}
	}
	for _, ep := range []string{"/df?q=x", "/and?q=a,b", "/similar?doc=0&k=3", "/stats"} {
		if rec := do(http.MethodGet, ep); rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want %d", ep, rec.Code, http.StatusOK)
		}
	}
	if rec := do(http.MethodPost, "/add?text=x"); rec.Code != http.StatusOK {
		t.Fatalf("POST /add = %d, want %d", rec.Code, http.StatusOK)
	}

	// No save dir configured: /save must refuse with an error, not write.
	rec := do(http.MethodPost, "/save?path=/tmp/anywhere")
	var rep Reply
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Error == "" {
		t.Fatalf("unconfined save not refused: %+v", rep)
	}
}

// TestTilesEndpointRouting pins the slippy-map tile route: GET answers with a
// tile envelope, the path values reach the querier, and mutation methods 405.
func TestTilesEndpointRouting(t *testing.T) {
	mux := New(stubService{}, "").Mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tiles/2/1/3?session=a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /tiles/2/1/3 = %d, want %d", rec.Code, http.StatusOK)
	}
	var rep Reply
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Op != "tile" || rep.Error != "" || rep.Tile == nil {
		t.Fatalf("tile reply = %+v", rep)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/tiles/0/0/0", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /tiles/0/0/0 = %d, want %d", rec.Code, http.StatusMethodNotAllowed)
	}

	// A malformed address must error, not alias to the (0,0,0) root tile.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/tiles/abc/def/ghi", nil))
	rep = Reply{}
	if err := json.NewDecoder(rec.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" || rep.Tile != nil {
		t.Fatalf("non-numeric tile address not refused: %+v", rep)
	}
}

// e2eDocs is the hand corpus behind the end-to-end sweep: known term overlap
// for boolean queries, two clear topic groups for themes/tiles, and unique
// marker terms for live add/delete assertions.
var e2eDocs = []string{
	"apple apple banana banana cherry",
	"apple banana banana",
	"apple apple cherry cherry",
	"durian durian elder elder fig fig",
	"durian elder elder fig",
	"grape grape honeydew honeydew kiwi kiwi",
	"grape kiwi kiwi honeydew",
	"banana cherry durian grape",
}

// buildService runs the real pipeline over e2eDocs and wraps it in a Server
// (shards==1) or a scatter-gather Router.
func buildService(t *testing.T, shards int) serve.Service {
	t.Helper()
	src := corpus.FromTexts("httpd-e2e", e2eDocs)
	var st *serve.Store
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 100, TopicFrac: 0.5, CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := serve.Config{}
	if shards > 1 {
		parts, err := st.Shard(shards)
		if err != nil {
			t.Fatal(err)
		}
		r, err := serve.NewRouter(parts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	srv, err := serve.NewServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// get issues a real HTTP request against the test server and decodes the
// JSON reply envelope.
func get(t *testing.T, client *http.Client, method, url string) (Reply, int) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s %s: Content-Type %q, want application/json", method, url, ct)
	}
	var rep Reply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return rep, resp.StatusCode
}

// TestEndToEndSweep drives every route of the daemon over real HTTP against
// a real indexed store — single-store and sharded — including error paths,
// live ingest, maintenance endpoints and /save persistence.
func TestEndToEndSweep(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single", 1},
		{"sharded", 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			saveDir := t.TempDir()
			ts := httptest.NewServer(New(buildService(t, tc.shards), saveDir).Mux())
			defer ts.Close()
			c := ts.Client()

			// Term query: apple appears in docs 0,1,2.
			rep, code := get(t, c, http.MethodGet, ts.URL+"/term?q=apple")
			if code != http.StatusOK || rep.Op != "term" || rep.Count != 3 || len(rep.Postings) != 3 {
				t.Fatalf("/term?q=apple = %d %+v", code, rep)
			}
			if rep.VirtualMS < 0 {
				t.Fatalf("negative virtual latency: %+v", rep)
			}

			// DF and a missing term.
			if rep, _ = get(t, c, http.MethodGet, ts.URL+"/df?q=banana"); rep.DF != 3 {
				t.Fatalf("/df?q=banana = %+v, want DF 3", rep)
			}
			if rep, _ = get(t, c, http.MethodGet, ts.URL+"/df?q=zzz"); rep.DF != 0 {
				t.Fatalf("/df?q=zzz = %+v, want DF 0", rep)
			}

			// Boolean queries; q splits on commas and spaces.
			rep, _ = get(t, c, http.MethodGet, ts.URL+"/and?q=apple,banana")
			if rep.Count != 2 || len(rep.Docs) != 2 {
				t.Fatalf("/and apple,banana = %+v, want docs {0,1}", rep)
			}
			rep, _ = get(t, c, http.MethodGet, ts.URL+"/or?q=apple,durian")
			if rep.Count != 6 {
				t.Fatalf("/or apple,durian = %+v, want 6 docs", rep)
			}

			// Similarity: a valid target answers hits; an unknown document is
			// a JSON-body error on HTTP 200, not a transport failure.
			rep, code = get(t, c, http.MethodGet, ts.URL+"/similar?doc=0&k=3")
			if code != http.StatusOK || rep.Error != "" || rep.Count == 0 {
				t.Fatalf("/similar?doc=0 = %d %+v", code, rep)
			}
			rep, code = get(t, c, http.MethodGet, ts.URL+"/similar?doc=99999&k=3")
			if code != http.StatusOK || rep.Error == "" {
				t.Fatalf("unknown similar target not an in-band error: %d %+v", code, rep)
			}

			// Theme drill-down and ThemeView region query.
			rep, _ = get(t, c, http.MethodGet, ts.URL+"/theme?cluster=0")
			if rep.Op != "theme" || rep.Error != "" {
				t.Fatalf("/theme?cluster=0 = %+v", rep)
			}
			rep, _ = get(t, c, http.MethodGet, ts.URL+"/near?x=0&y=0&r=2")
			if rep.Op != "near" || rep.Count != len(e2eDocs) {
				t.Fatalf("/near radius 2 = %+v, want all %d docs", rep, len(e2eDocs))
			}

			// Root tile covers the whole projection.
			rep, code = get(t, c, http.MethodGet, ts.URL+"/tiles/0/0/0")
			if code != http.StatusOK || rep.Error != "" || rep.Tile == nil {
				t.Fatalf("/tiles/0/0/0 = %d %+v", code, rep)
			}
			if rep.Tile.Docs != int64(len(e2eDocs)) {
				t.Fatalf("root tile covers %d docs, want %d", rep.Tile.Docs, len(e2eDocs))
			}
			// Out-of-range and malformed addresses are in-band errors.
			if rep, _ = get(t, c, http.MethodGet, ts.URL+"/tiles/0/5/5"); rep.Error == "" {
				t.Fatalf("out-of-range tile not refused: %+v", rep)
			}
			if rep, _ = get(t, c, http.MethodGet, ts.URL+"/tiles/x/0/0"); rep.Error == "" || rep.Tile != nil {
				t.Fatalf("malformed tile address not refused: %+v", rep)
			}

			// Live ingest: add a document whose term pair exists nowhere in
			// the base corpus (apple ∈ {0,1,2}, kiwi ∈ {5,6}; the vocabulary
			// is frozen at snapshot time, so the marker must be in-vocab),
			// flush it visible, query it back, then tombstone it.
			rep, _ = get(t, c, http.MethodPost, ts.URL+"/add?text=apple+kiwi+kiwi")
			if !rep.OK || rep.Error != "" {
				t.Fatalf("/add = %+v", rep)
			}
			added := rep.Doc
			if rep, _ = get(t, c, http.MethodPost, ts.URL+"/flush"); !rep.OK {
				t.Fatalf("/flush = %+v", rep)
			}
			rep, _ = get(t, c, http.MethodGet, ts.URL+"/and?q=apple,kiwi")
			if rep.Count != 1 || rep.Docs[0] != added {
				t.Fatalf("added doc not served: %+v, want doc %d", rep, added)
			}
			rep, _ = get(t, c, http.MethodPost, fmt.Sprintf("%s/delete?doc=%d", ts.URL, added))
			if !rep.OK {
				t.Fatalf("/delete = %+v", rep)
			}
			if rep, _ = get(t, c, http.MethodGet, ts.URL+"/and?q=apple,kiwi"); rep.Count != 0 {
				t.Fatalf("tombstoned doc still served: %+v", rep)
			}
			// Deleting it again is an in-band error.
			rep, code = get(t, c, http.MethodPost, fmt.Sprintf("%s/delete?doc=%d", ts.URL, added))
			if code != http.StatusOK || rep.Error == "" || rep.OK {
				t.Fatalf("double delete not refused in-band: %d %+v", code, rep)
			}

			// Maintenance: compact now, then persist under the save dir.
			if rep, _ = get(t, c, http.MethodPost, ts.URL+"/compact"); !rep.OK {
				t.Fatalf("/compact = %+v", rep)
			}
			rep, _ = get(t, c, http.MethodPost, ts.URL+"/save?path=run.live")
			if !rep.OK || rep.Error != "" {
				t.Fatalf("/save = %+v", rep)
			}
			if _, err := os.Stat(filepath.Join(saveDir, "run.live")); err != nil {
				t.Fatalf("save did not write inside the save dir: %v", err)
			}
			// Traversal out of the save dir is refused in-band.
			rep, _ = get(t, c, http.MethodPost, ts.URL+"/save?path=..%2Fescape")
			if rep.OK || rep.Error == "" {
				t.Fatalf("traversal save not refused: %+v", rep)
			}

			// /themes and /stats are raw JSON (not a Reply envelope).
			resp, err := c.Get(ts.URL + "/themes")
			if err != nil {
				t.Fatal(err)
			}
			var themes []core.Theme
			if err := json.NewDecoder(resp.Body).Decode(&themes); err != nil {
				t.Fatalf("/themes: %v", err)
			}
			resp.Body.Close()
			resp, err = c.Get(ts.URL + "/stats")
			if err != nil {
				t.Fatal(err)
			}
			var st serve.Stats
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("/stats: %v", err)
			}
			resp.Body.Close()
			if st.Queries == 0 {
				t.Fatalf("stats counted no queries after the sweep: %+v", st)
			}

			// Unknown routes 404 at the mux.
			resp, err = c.Get(ts.URL + "/nosuch")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("GET /nosuch = %d, want 404", resp.StatusCode)
			}
		})
	}
}

// TestNamedSessionsAccumulate pins the session=NAME contract: one name keeps
// one virtual account across requests, and the table is bounded.
func TestNamedSessionsAccumulate(t *testing.T) {
	d := New(buildService(t, 1), "")
	ts := httptest.NewServer(d.Mux())
	defer ts.Close()
	c := ts.Client()

	// Two requests on one name reuse one Querier: the retained table holds
	// exactly one session.
	get(t, c, http.MethodGet, ts.URL+"/term?q=apple&session=s1")
	get(t, c, http.MethodGet, ts.URL+"/term?q=banana&session=s1")
	d.mu.Lock()
	n := len(d.sessions)
	d.mu.Unlock()
	if n != 1 {
		t.Fatalf("retained %d sessions after two requests on one name, want 1", n)
	}
	// Anonymous requests never enter the table.
	get(t, c, http.MethodGet, ts.URL+"/term?q=apple")
	d.mu.Lock()
	n = len(d.sessions)
	d.mu.Unlock()
	if n != 1 {
		t.Fatalf("anonymous request retained a session: table has %d", n)
	}
}

// TestSessionTableBound pins the maxNamedSessions fallback: once the table is
// full, unseen names get throwaway sessions instead of growing memory.
func TestSessionTableBound(t *testing.T) {
	d := New(stubService{}, "")
	for i := 0; i < maxNamedSessions; i++ {
		d.session(fmt.Sprintf("s%d", i))
	}
	if len(d.sessions) != maxNamedSessions {
		t.Fatalf("table has %d sessions, want %d", len(d.sessions), maxNamedSessions)
	}
	d.session("overflow")
	if len(d.sessions) != maxNamedSessions {
		t.Fatalf("overflow name grew the table to %d", len(d.sessions))
	}
}

// TestServeLines drives the stdin line protocol end to end: queries, live
// ops, stats and quit, one JSON document per line.
func TestServeLines(t *testing.T) {
	d := New(buildService(t, 1), "")
	in := strings.NewReader(strings.Join([]string{
		"term apple",
		"and apple banana",
		"df banana",
		"add apple kiwi kiwi",
		"flush",
		"similar 0 3",
		"tile 0 0 0",
		"bogusop x",
		"stats",
		"quit",
		"term never-reached",
	}, "\n"))
	var out strings.Builder
	d.ServeLines(in, &out)

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("got %d reply lines, want 9 (quit stops before the trailing term):\n%s", len(lines), out.String())
	}
	var rep Reply
	if err := json.Unmarshal([]byte(lines[0]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Op != "term" || rep.Count != 3 {
		t.Fatalf("line 1 = %+v, want term count 3", rep)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Op != "and" || rep.Count != 2 {
		t.Fatalf("line 2 = %+v, want and count 2", rep)
	}
	// The unknown op answers an in-band error and the loop continues.
	if err := json.Unmarshal([]byte(lines[7]), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" {
		t.Fatalf("unknown op not refused: %+v", rep)
	}
	// Line 9 is the stats document, not a Reply envelope.
	var st serve.Stats
	if err := json.Unmarshal([]byte(lines[8]), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 {
		t.Fatalf("stats counted no queries: %+v", st)
	}
}
