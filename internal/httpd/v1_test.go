package httpd

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fetch returns one response's status, headers and raw body.
func fetch(t *testing.T, c *http.Client, method, url string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// pathOf strips the query string of a test route, leaving the request path
// the Link successor-version header is derived from.
func pathOf(route string) string {
	if i := strings.IndexByte(route, '?'); i >= 0 {
		return route[:i]
	}
	return route
}

// TestV1LegacyEquivalence pins the deprecation contract: for every query
// endpoint, the legacy unversioned body is byte-identical to the /v1
// envelope's "data" payload, and the legacy response headers carry the
// RFC 8594 Deprecation marker plus a Link to the /v1 twin (absent on /v1
// itself). Each route is primed once first so both reads see the same warm
// cache state (virtual_ms models cache hits).
func TestV1LegacyEquivalence(t *testing.T) {
	ts := httptest.NewServer(New(buildService(t, 3), "").Mux())
	defer ts.Close()
	c := ts.Client()

	routes := []string{
		"/term?q=apple",
		"/df?q=banana",
		"/and?q=apple,banana",
		"/or?q=apple,durian",
		"/similar?doc=0&k=3",
		"/theme?cluster=0",
		"/near?x=0&y=0&r=2",
		"/tiles/0/0/0",
		"/themes",
	}
	for _, route := range routes {
		fetch(t, c, http.MethodGet, ts.URL+route) // prime caches
		legacyCode, legacyHdr, legacy := fetch(t, c, http.MethodGet, ts.URL+route)
		v1Code, v1Hdr, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1"+route)
		if legacyCode != http.StatusOK || v1Code != http.StatusOK {
			t.Fatalf("%s: legacy %d, v1 %d", route, legacyCode, v1Code)
		}
		// Legacy aliases must self-announce their retirement out of band —
		// bodies stay frozen, the headers carry the sunset signal.
		if got := legacyHdr.Get("Deprecation"); got != "true" {
			t.Fatalf("%s: Deprecation header = %q, want \"true\"", route, got)
		}
		wantLink := `</v1` + pathOf(route) + `>; rel="successor-version"`
		if got := legacyHdr.Get("Link"); got != wantLink {
			t.Fatalf("%s: Link header = %q, want %q", route, got, wantLink)
		}
		if v1Hdr.Get("Deprecation") != "" || v1Hdr.Get("Link") != "" {
			t.Fatalf("/v1%s: versioned route carries deprecation headers", route)
		}
		var env Envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("/v1%s: %v", route, err)
		}
		if !env.OK || env.Error != nil {
			t.Fatalf("/v1%s envelope = %s", route, raw)
		}
		if got, want := bytes.TrimSpace(env.Data), bytes.TrimSpace(legacy); !bytes.Equal(got, want) {
			t.Fatalf("/v1%s data diverges from the legacy body:\n  v1:     %s\n  legacy: %s", route, got, want)
		}
	}
}

// TestV1ErrorEnvelope pins the /v1 failure shape: op errors answer
// {"ok":false,"error":{code,message}} with a stable code and a non-200
// status, while the legacy alias keeps its in-band {"error": "..."} on 200.
func TestV1ErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(New(buildService(t, 1), "").Mux())
	defer ts.Close()
	c := ts.Client()

	code, _, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/similar?doc=99999&k=3")
	if code == http.StatusOK {
		t.Fatalf("/v1 op error kept status 200: %s", raw)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.OK || env.Error == nil || env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("v1 error envelope = %s", raw)
	}

	// Same op on the legacy alias: in-band error, HTTP 200.
	code, _, raw = fetch(t, c, http.MethodGet, ts.URL+"/similar?doc=99999&k=3")
	if code != http.StatusOK {
		t.Fatalf("legacy op error changed status to %d", code)
	}
	var rep Reply
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" {
		t.Fatalf("legacy error not in-band: %s", raw)
	}

	// Mutation guard under /v1: envelope with the stable code.
	code, _, raw = fetch(t, c, http.MethodGet, ts.URL+"/v1/add?text=x")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/add = %d, want 405", code)
	}
	env = Envelope{}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.OK || env.Error == nil || env.Error.Code != CodeMethodNotAllowed {
		t.Fatalf("405 envelope = %s", raw)
	}
}

// TestAdmissionInFlightShedding pins the overload path: past MaxInFlight the
// daemon sheds with 429 + Retry-After and the stable overloaded code, and
// counts the shed.
func TestAdmissionInFlightShedding(t *testing.T) {
	d := New(stubService{}, "")
	d.SetLimits(Limits{MaxInFlight: 2, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(d.Mux())
	defer ts.Close()
	c := ts.Client()

	d.inflight.Add(2) // two requests parked in flight
	code, hdr, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x")
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded request = %d, want 429: %s", code, raw)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", hdr.Get("Retry-After"))
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.OK || env.Error == nil || env.Error.Code != CodeOverloaded {
		t.Fatalf("shed envelope = %s", raw)
	}
	if d.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", d.Shed())
	}

	// The legacy alias sheds too, with its in-band shape.
	code, hdr, raw = fetch(t, c, http.MethodGet, ts.URL+"/term?q=x")
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("legacy shed = %d (Retry-After %q)", code, hdr.Get("Retry-After"))
	}
	var rep Reply
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" {
		t.Fatalf("legacy shed body = %s", raw)
	}

	d.inflight.Add(-2)
	if code, _, _ := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x"); code != http.StatusOK {
		t.Fatalf("post-overload request = %d, want 200", code)
	}
}

// TestSessionRateLimit pins the per-session token bucket: one name's burst
// exhausts independently of other names.
func TestSessionRateLimit(t *testing.T) {
	d := New(stubService{}, "")
	d.SetLimits(Limits{SessionRate: 0.001, SessionBurst: 2})
	ts := httptest.NewServer(d.Mux())
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 2; i++ {
		if code, _, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x&session=a"); code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, code, raw)
		}
	}
	code, _, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x&session=a")
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted session = %d, want 429: %s", code, raw)
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != CodeRateLimited {
		t.Fatalf("rate-limit envelope = %s", raw)
	}
	// A different name still has its own bucket.
	if code, _, _ := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x&session=b"); code != http.StatusOK {
		t.Fatalf("sibling session limited too: %d", code)
	}
	// Anonymous requests bypass session buckets entirely.
	if code, _, _ := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x"); code != http.StatusOK {
		t.Fatalf("anonymous request limited: %d", code)
	}
}

// TestGlobalRateLimit pins the daemon-wide bucket: past the global burst
// every request sheds regardless of session.
func TestGlobalRateLimit(t *testing.T) {
	d := New(stubService{}, "")
	d.SetLimits(Limits{GlobalRate: 0.001, GlobalBurst: 3})
	ts := httptest.NewServer(d.Mux())
	defer ts.Close()
	c := ts.Client()

	for i := 0; i < 3; i++ {
		if code, _, _ := fetch(t, c, http.MethodGet, ts.URL+"/v1/term?q=x"); code != http.StatusOK {
			t.Fatalf("request %d not admitted", i)
		}
	}
	code, _, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/df?q=x")
	if code != http.StatusTooManyRequests {
		t.Fatalf("global-exhausted request = %d, want 429: %s", code, raw)
	}
	// Observability stays up under overload: /stats and /themes bypass
	// admission entirely.
	if code, _, _ := fetch(t, c, http.MethodGet, ts.URL+"/v1/stats"); code != http.StatusOK {
		t.Fatalf("/v1/stats shed under overload: %d", code)
	}
}

// TestDegradedReplies pins graceful degradation: past the degrade threshold
// replies are flagged X-Degraded and served coarser — similarity K clamped,
// deep tile addresses answered by their ancestor at the clamp zoom.
func TestDegradedReplies(t *testing.T) {
	d := New(buildService(t, 1), "")
	d.SetLimits(Limits{MaxInFlight: 100, DegradeThreshold: 0.1, DegradeSimilarK: 2, DegradeMaxZoom: 1})
	ts := httptest.NewServer(d.Mux())
	defer ts.Close()
	c := ts.Client()

	d.inflight.Add(50) // half the ceiling: degraded, not shed
	defer d.inflight.Add(-50)

	code, hdr, raw := fetch(t, c, http.MethodGet, ts.URL+"/v1/similar?doc=0&k=5")
	if code != http.StatusOK {
		t.Fatalf("degraded similar = %d: %s", code, raw)
	}
	if hdr.Get("X-Degraded") != "1" {
		t.Fatal("degraded reply not flagged with X-Degraded")
	}
	var env Envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	var rep Reply
	if err := json.Unmarshal(env.Data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Hits) > 2 {
		t.Fatalf("degraded similar served %d hits, want <= 2", len(rep.Hits))
	}

	// A deep tile address answers as its zoom-1 ancestor.
	code, hdr, raw = fetch(t, c, http.MethodGet, ts.URL+"/tiles/4/15/15")
	if code != http.StatusOK || hdr.Get("X-Degraded") != "1" {
		t.Fatalf("degraded tile = %d (X-Degraded %q)", code, hdr.Get("X-Degraded"))
	}
	rep = Reply{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error != "" || rep.Tile == nil || rep.Tile.Z != 1 {
		t.Fatalf("degraded tile reply = %s, want the zoom-1 ancestor", raw)
	}
}
