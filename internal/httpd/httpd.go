// Package httpd is the daemon's serving surface: the JSON HTTP mux and the
// stdin line protocol that cmd/inspired exposes, factored out of the command
// so it can also be driven in-process — the end-to-end test sweep and the
// wall-clock load harness (internal/loadgen, cmd/loadbench) mount the exact
// handler the production daemon serves, over real HTTP listeners, without
// forking a subprocess.
//
// Endpoints (JSON responses; reads are GET, mutations are POST):
//
//	GET  /term?q=word            posting list of one term
//	GET  /df?q=word              document frequency
//	GET  /and?q=a,b,c            conjunctive query
//	GET  /or?q=a,b,c             disjunctive query
//	GET  /similar?doc=3&k=5      top-K similarity in signature space
//	GET  /theme?cluster=2        documents of one k-means theme
//	GET  /near?x=0&y=0&r=0.2     ThemeView region drill-down
//	GET  /tiles/{z}/{x}/{y}      Galaxy tile
//	POST /add?text=...           ingest a document (returns its ID)
//	POST /delete?doc=3           tombstone a document
//	POST /flush                  make pending adds visible now
//	POST /compact                merge sealed segments now
//	POST /save?path=NAME         persist under the configured save dir
//	GET  /themes                 discovered themes
//	GET  /stats                  server cache/traffic/ingest counters
//
// Pass session=NAME on query endpoints to accumulate per-session virtual
// latency across requests; anonymous requests each get a fresh session.
package httpd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"inspire/internal/query"
	"inspire/internal/serve"
)

// Daemon multiplexes named sessions over the serving surface — a monolithic
// Server or a sharded Router, indistinguishable behind serve.Service.
type Daemon struct {
	srv serve.Service
	// saveDir confines HTTP /save targets; empty disables the endpoint.
	saveDir string

	mu       sync.Mutex
	sessions map[string]*namedSession
}

// New builds a daemon over a service. saveDir confines HTTP /save targets to
// plain file names inside it; empty disables the endpoint entirely.
func New(srv serve.Service, saveDir string) *Daemon {
	return &Daemon{srv: srv, saveDir: saveDir, sessions: make(map[string]*namedSession)}
}

// namedSession serializes the requests of one session name: a Querier
// requires one goroutine at a time, and serializing also keeps each reply's
// virtual_ms the latency of its own interaction.
type namedSession struct {
	mu   sync.Mutex
	sess serve.Querier
}

// maxNamedSessions bounds the retained session table; once full, unseen
// names fall back to throwaway sessions instead of growing memory without
// bound.
const maxNamedSessions = 1024

// session returns the named session, creating it on first use; the empty
// name gets a fresh throwaway session.
func (d *Daemon) session(name string) *namedSession {
	if name == "" {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[name]; ok {
		return s
	}
	if len(d.sessions) >= maxNamedSessions {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	s := &namedSession{sess: d.srv.NewQuerier()}
	d.sessions[name] = s
	return s
}

// Reply is the JSON envelope of every query response.
type Reply struct {
	Op        string            `json:"op"`
	VirtualMS float64           `json:"virtual_ms"`         // this interaction's modeled latency
	Count     int               `json:"count"`              // result cardinality
	Postings  []query.Posting   `json:"postings,omitempty"` // term queries
	Docs      []int64           `json:"docs,omitempty"`     // boolean/theme/near queries
	Hits      []query.Hit       `json:"hits,omitempty"`     // similarity queries
	Tile      *serve.TileResult `json:"tile,omitempty"`     // galaxy tile queries
	DF        int64             `json:"df,omitempty"`
	Doc       int64             `json:"doc,omitempty"` // add: the assigned document ID
	OK        bool              `json:"ok,omitempty"`  // add/delete/flush/compact/save
	Error     string            `json:"error,omitempty"`
}

// run executes one parsed operation against a session, holding its lock so
// concurrent requests on one name serialize and the reported virtual_ms
// belongs to this interaction.
func (d *Daemon) run(ns *namedSession, op string, args map[string]string) Reply {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	sess := ns.sess
	rep := Reply{Op: op}
	terms := func() []string {
		return strings.FieldsFunc(args["q"], func(r rune) bool { return r == ',' || r == ' ' })
	}
	switch op {
	case "term":
		rep.Postings = sess.TermDocs(args["q"])
		rep.Count = len(rep.Postings)
	case "df":
		rep.DF = sess.DF(args["q"])
	case "and":
		rep.Docs = sess.And(terms()...)
		rep.Count = len(rep.Docs)
	case "or":
		rep.Docs = sess.Or(terms()...)
		rep.Count = len(rep.Docs)
	case "similar":
		doc, _ := strconv.ParseInt(args["doc"], 10, 64)
		k, _ := strconv.Atoi(args["k"])
		if k <= 0 {
			k = 5
		}
		hits, err := sess.Similar(doc, k)
		if err != nil {
			rep.Error = err.Error()
		}
		rep.Hits = hits
		rep.Count = len(hits)
	case "theme":
		k, _ := strconv.Atoi(args["cluster"])
		rep.Docs = sess.ThemeDocs(k)
		rep.Count = len(rep.Docs)
	case "near":
		x, _ := strconv.ParseFloat(args["x"], 64)
		y, _ := strconv.ParseFloat(args["y"], 64)
		r, _ := strconv.ParseFloat(args["r"], 64)
		rep.Docs = sess.Near(x, y, r)
		rep.Count = len(rep.Docs)
	case "tile":
		z, errZ := strconv.Atoi(args["z"])
		x, errX := strconv.Atoi(args["x"])
		y, errY := strconv.Atoi(args["y"])
		if errZ != nil || errX != nil || errY != nil {
			// A malformed address must not alias to a valid tile (Atoi's
			// zero value is the root tile).
			rep.Error = fmt.Sprintf("tile address %q/%q/%q is not numeric", args["z"], args["x"], args["y"])
			break
		}
		t, err := sess.Tile(z, x, y)
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Tile = t
			rep.Count = int(t.Docs)
		}
	case "add":
		doc, err := sess.Add(args["text"])
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	case "delete":
		doc, err := strconv.ParseInt(args["doc"], 10, 64)
		if err == nil {
			err = sess.Delete(doc)
		}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	default:
		rep.Error = fmt.Sprintf("unknown op %q", op)
		return rep
	}
	rep.VirtualMS = sess.Stats().LastMS
	return rep
}

// live executes one service-level maintenance op (flush/compact/save) — not
// a session interaction, so no virtual account is touched.
func (d *Daemon) live(op, path string) Reply {
	rep := Reply{Op: op}
	lv, ok := d.srv.(serve.Liver)
	if !ok {
		rep.Error = "service does not support live maintenance"
		return rep
	}
	var err error
	switch op {
	case "flush":
		err = lv.FlushLive()
	case "compact":
		err = lv.CompactLive()
	case "save":
		if path == "" {
			err = fmt.Errorf("save needs a path")
		} else {
			err = lv.SaveLive(path)
		}
	}
	if err != nil {
		rep.Error = err.Error()
	} else {
		rep.OK = true
	}
	return rep
}

// Mux builds the HTTP surface. Query endpoints answer GET; every endpoint
// that mutates server state (add/delete/flush/compact/save) requires POST, so
// crawlers, prefetchers and simple cross-site GETs cannot trip them.
func (d *Daemon) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(op string, mutating bool, keys ...string) {
		mux.HandleFunc("/"+op, func(w http.ResponseWriter, r *http.Request) {
			if mutating && r.Method != http.MethodPost {
				writeJSONStatus(w, http.StatusMethodNotAllowed, Reply{Op: op, Error: "mutating endpoint: use POST"})
				return
			}
			args := make(map[string]string, len(keys))
			for _, k := range keys {
				args[k] = r.URL.Query().Get(k)
			}
			sess := d.session(r.URL.Query().Get("session"))
			writeJSON(w, d.run(sess, op, args))
		})
	}
	handle("term", false, "q")
	handle("df", false, "q")
	handle("and", false, "q")
	handle("or", false, "q")
	handle("similar", false, "doc", "k")
	handle("theme", false, "cluster")
	handle("near", false, "x", "y", "r")
	// Galaxy tiles are addressed by path, slippy-map style; the method
	// prefix makes non-GET requests 405 like the other read endpoints'
	// mutation guard does.
	mux.HandleFunc("GET /tiles/{z}/{x}/{y}", func(w http.ResponseWriter, r *http.Request) {
		args := map[string]string{
			"z": r.PathValue("z"),
			"x": r.PathValue("x"),
			"y": r.PathValue("y"),
		}
		sess := d.session(r.URL.Query().Get("session"))
		writeJSON(w, d.run(sess, "tile", args))
	})
	handle("add", true, "text")
	handle("delete", true, "doc")
	for _, op := range []string{"flush", "compact", "save"} {
		op := op
		mux.HandleFunc("/"+op, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				writeJSONStatus(w, http.StatusMethodNotAllowed, Reply{Op: op, Error: "mutating endpoint: use POST"})
				return
			}
			path := r.URL.Query().Get("path")
			if op == "save" {
				resolved, err := savePath(d.saveDir, path)
				if err != nil {
					writeJSON(w, Reply{Op: op, Error: err.Error()})
					return
				}
				path = resolved
			}
			writeJSON(w, d.live(op, path))
		})
	}
	mux.HandleFunc("/themes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.srv.Themes())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.srv.Stats())
	})
	return mux
}

// savePath resolves an HTTP /save target to a plain file name inside the
// configured save dir, so a client with network access never gets a
// file-write primitive against an arbitrary server-side path. An empty dir
// keeps the endpoint disabled.
func savePath(dir, name string) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("save over HTTP is disabled; start inspired with -save-dir")
	}
	if name == "" || name == "." || name == ".." ||
		name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("save path must be a plain file name (it is written inside -save-dir)")
	}
	return filepath.Join(dir, name), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeLines answers the stdin line protocol: one op per line, JSON per
// line. Lines are "term apple", "and apple banana", "similar 3 5",
// "theme 2", "near 0 0 0.2", "tile 2 1 3", "df apple", "stats", "quit".
// Unlike HTTP /save, the line protocol's save takes a full path — it is the
// operator's own terminal, not the network surface.
func (d *Daemon) ServeLines(in io.Reader, out io.Writer) {
	sess := &namedSession{sess: d.srv.NewQuerier()}
	sc := bufio.NewScanner(in)
	enc := json.NewEncoder(out)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		op, rest := fields[0], fields[1:]
		switch op {
		case "quit", "exit":
			return
		case "stats":
			_ = enc.Encode(d.srv.Stats())
			continue
		case "flush", "compact", "save":
			path := ""
			if len(rest) > 0 {
				path = rest[0]
			}
			_ = enc.Encode(d.live(op, path))
			continue
		}
		args := map[string]string{}
		switch op {
		case "term", "df":
			if len(rest) > 0 {
				args["q"] = rest[0]
			}
		case "and", "or":
			args["q"] = strings.Join(rest, ",")
		case "add":
			args["text"] = strings.Join(rest, " ")
		case "delete":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
		case "similar":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
			if len(rest) > 1 {
				args["k"] = rest[1]
			}
		case "theme":
			if len(rest) > 0 {
				args["cluster"] = rest[0]
			}
		case "near":
			if len(rest) > 2 {
				args["x"], args["y"], args["r"] = rest[0], rest[1], rest[2]
			}
		case "tile":
			if len(rest) > 2 {
				args["z"], args["x"], args["y"] = rest[0], rest[1], rest[2]
			}
		}
		_ = enc.Encode(d.run(sess, op, args))
	}
}
