// Package httpd is the daemon's serving surface: the JSON HTTP mux and the
// stdin line protocol that cmd/inspired exposes, factored out of the command
// so it can also be driven in-process — the end-to-end test sweep and the
// wall-clock load harness (internal/loadgen, cmd/loadbench) mount the exact
// handler the production daemon serves, over real HTTP listeners, without
// forking a subprocess.
//
// The versioned surface lives under /v1 and wraps every response in the
// envelope {"ok":bool,"data":...,"error":{"code","message"}} with stable
// error codes (bad_request, not_found, disabled, rate_limited, overloaded,
// method_not_allowed, internal). The unversioned routes below remain as
// deprecated aliases answering the bare payload — byte-identical to the
// corresponding /v1 response's "data" field.
//
// Endpoints (JSON responses; reads are GET, mutations are POST):
//
//	GET  /v1/term?q=word            posting list of one term
//	GET  /v1/df?q=word              document frequency
//	GET  /v1/and?q=a,b,c            conjunctive query
//	GET  /v1/or?q=a,b,c             disjunctive query
//	GET  /v1/similar?doc=3&k=5      top-K similarity in signature space
//	GET  /v1/theme?cluster=2        documents of one k-means theme
//	GET  /v1/near?x=0&y=0&r=0.2     ThemeView region drill-down
//	GET  /v1/tiles/{z}/{x}/{y}      Galaxy tile
//	POST /v1/add?text=...           ingest a document (returns its ID)
//	                                optional ts=UNIX and repeated facet=k=v
//	                                attach document metadata
//	POST /v1/delete?doc=3           tombstone a document
//	POST /v1/flush                  make pending adds visible now
//	POST /v1/compact                merge sealed segments now
//	POST /v1/save?path=NAME         persist under the configured save dir
//	GET  /v1/themes                 discovered themes
//	GET  /v1/stats                  server cache/traffic/ingest counters
//
// Query endpoints take optional facet-filter parameters: after=UNIX and
// before=UNIX bound the documents' ingest timestamps (inclusive;
// untimestamped documents fail any bound) and repeated facet=key=value
// parameters require every listed facet. The filter is per-request: a
// request without filter parameters is unfiltered, and a filtered answer is
// exactly the unfiltered answer minus the non-matching documents. DF reads
// the corpus-wide descriptor and ignores the filter.
//
// Pass session=NAME on query endpoints to accumulate per-session virtual
// latency across requests; anonymous requests each get a fresh session.
// Every request runs under its http.Request context, so a disconnected
// client cancels the scatter-gather it was waiting on.
//
// The front door applies admission control when configured with Limits:
// per-session and global token buckets, a bounded in-flight ceiling shedding
// excess load with 429 + Retry-After, and graceful degradation (smaller
// similarity K, coarser tiles, flagged with X-Degraded: 1) as the in-flight
// level approaches the ceiling.
package httpd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"inspire/internal/query"
	"inspire/internal/serve"
)

// Stable /v1 error codes.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeDisabled         = "disabled"
	CodeRateLimited      = "rate_limited"
	CodeOverloaded       = "overloaded"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeInternal         = "internal"
)

// Limits configures the front door's admission control. The zero value
// disables every limit — the pre-replication behaviour.
type Limits struct {
	// MaxInFlight bounds concurrently executing requests; excess requests
	// are shed with 429 + Retry-After. 0 = unbounded.
	MaxInFlight int
	// RetryAfter is advertised on shed responses. Default 1s.
	RetryAfter time.Duration
	// SessionRate is each named session's sustained requests/sec (token
	// bucket, SessionBurst deep). 0 = unlimited.
	SessionRate  float64
	SessionBurst int
	// GlobalRate caps the whole daemon's sustained requests/sec. 0 =
	// unlimited.
	GlobalRate  float64
	GlobalBurst int
	// DegradeThreshold is the fraction of MaxInFlight above which replies
	// degrade (smaller similarity K, coarser tiles) instead of shedding;
	// 0 disables degradation.
	DegradeThreshold float64
	// DegradeSimilarK clamps similar?k= while degraded. Default 3.
	DegradeSimilarK int
	// DegradeMaxZoom clamps tile zoom while degraded (deeper addresses are
	// answered by their ancestor at this zoom). Default 3.
	DegradeMaxZoom int
}

func (l Limits) withDefaults() Limits {
	if l.RetryAfter <= 0 {
		l.RetryAfter = time.Second
	}
	if l.SessionBurst <= 0 {
		l.SessionBurst = int(math.Max(1, l.SessionRate))
	}
	if l.GlobalBurst <= 0 {
		l.GlobalBurst = int(math.Max(1, l.GlobalRate))
	}
	if l.DegradeSimilarK <= 0 {
		l.DegradeSimilarK = 3
	}
	if l.DegradeMaxZoom <= 0 {
		l.DegradeMaxZoom = 3
	}
	return l
}

// bucket is a token bucket: rate tokens/sec, burst deep, prefilled.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{tokens: float64(burst), rate: rate, burst: float64(burst)}
}

func (b *bucket) allow(now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Daemon multiplexes named sessions over the serving surface — a monolithic
// Server or a sharded Router, indistinguishable behind serve.Service.
type Daemon struct {
	srv serve.Service
	// saveDir confines HTTP /save targets; empty disables the endpoint.
	saveDir string

	limits   Limits
	global   *bucket
	inflight atomic.Int64
	shed     atomic.Uint64

	mu       sync.Mutex
	sessions map[string]*namedSession
}

// New builds a daemon over a service. saveDir confines HTTP /save targets to
// plain file names inside it; empty disables the endpoint entirely.
func New(srv serve.Service, saveDir string) *Daemon {
	return &Daemon{srv: srv, saveDir: saveDir, sessions: make(map[string]*namedSession)}
}

// SetLimits installs the admission-control configuration. Call before the
// mux starts serving.
func (d *Daemon) SetLimits(l Limits) {
	d.limits = l.withDefaults()
	d.global = newBucket(d.limits.GlobalRate, d.limits.GlobalBurst)
}

// Shed returns how many requests admission control has shed with 429.
func (d *Daemon) Shed() uint64 { return d.shed.Load() }

// namedSession serializes the requests of one session name: a Querier
// requires one goroutine at a time, and serializing also keeps each reply's
// virtual_ms the latency of its own interaction.
type namedSession struct {
	mu   sync.Mutex
	sess serve.Querier
	bkt  *bucket
}

// maxNamedSessions bounds the retained session table; once full, unseen
// names fall back to throwaway sessions instead of growing memory without
// bound.
const maxNamedSessions = 1024

// session returns the named session, creating it on first use; the empty
// name gets a fresh throwaway session.
func (d *Daemon) session(name string) *namedSession {
	if name == "" {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.sessions[name]; ok {
		return s
	}
	if len(d.sessions) >= maxNamedSessions {
		return &namedSession{sess: d.srv.NewQuerier()}
	}
	s := &namedSession{sess: d.srv.NewQuerier()}
	if d.limits.SessionRate > 0 {
		s.bkt = newBucket(d.limits.SessionRate, d.limits.SessionBurst)
	}
	d.sessions[name] = s
	return s
}

// Reply is the JSON payload of every query response: the whole body on the
// deprecated unversioned routes, the "data" field under /v1.
type Reply struct {
	Op        string            `json:"op"`
	VirtualMS float64           `json:"virtual_ms"`         // this interaction's modeled latency
	Count     int               `json:"count"`              // result cardinality
	Postings  []query.Posting   `json:"postings,omitempty"` // term queries
	Docs      []int64           `json:"docs,omitempty"`     // boolean/theme/near queries
	Hits      []query.Hit       `json:"hits,omitempty"`     // similarity queries
	Tile      *serve.TileResult `json:"tile,omitempty"`     // galaxy tile queries
	DF        int64             `json:"df,omitempty"`
	Doc       int64             `json:"doc,omitempty"` // add: the assigned document ID
	OK        bool              `json:"ok,omitempty"`  // add/delete/flush/compact/save
	Error     string            `json:"error,omitempty"`
}

// ErrorInfo is the /v1 envelope's error half.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Envelope is the /v1 response shape.
type Envelope struct {
	OK    bool            `json:"ok"`
	Data  json.RawMessage `json:"data,omitempty"`
	Error *ErrorInfo      `json:"error,omitempty"`
}

// errCode classifies an op error message onto the stable code set.
func errCode(msg string) string {
	switch {
	case strings.Contains(msg, "disabled"):
		return CodeDisabled
	case strings.Contains(msg, "not found"):
		return CodeNotFound
	case strings.Contains(msg, "context"):
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// httpStatus maps a stable error code to its transport status.
func httpStatus(code string) int {
	switch code {
	case CodeNotFound:
		return http.StatusNotFound
	case CodeRateLimited, CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// run executes one parsed operation against a session, holding its lock so
// concurrent requests on one name serialize and the reported virtual_ms
// belongs to this interaction. degraded requests answer with reduced
// fidelity: a clamped similarity K, and tile addresses coarsened to the
// degrade zoom.
func (d *Daemon) run(ctx context.Context, ns *namedSession, op string, args map[string]string, facets []string, degraded bool) Reply {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	sess := ns.sess
	rep := Reply{Op: op}
	// The metadata filter is per-request: absent parameters install the zero
	// Filter, which clears anything a previous request on this named session
	// set. Writes ignore the filter, so installing it unconditionally keeps
	// every op on one code path.
	var f serve.Filter
	var ferr error
	if v := args["after"]; v != "" {
		if f.After, ferr = strconv.ParseInt(v, 10, 64); ferr != nil {
			rep.Error = fmt.Sprintf("after %q is not a unix timestamp", v)
			return rep
		}
	}
	if v := args["before"]; v != "" {
		if f.Before, ferr = strconv.ParseInt(v, 10, 64); ferr != nil {
			rep.Error = fmt.Sprintf("before %q is not a unix timestamp", v)
			return rep
		}
	}
	f.Facets = facets
	if err := sess.SetFilter(f); err != nil {
		rep.Error = err.Error()
		return rep
	}
	terms := func() []string {
		return strings.FieldsFunc(args["q"], func(r rune) bool { return r == ',' || r == ' ' })
	}
	switch op {
	case "term":
		rep.Postings = sess.TermDocs(ctx, args["q"])
		rep.Count = len(rep.Postings)
	case "df":
		rep.DF = sess.DF(ctx, args["q"])
	case "and":
		rep.Docs = sess.And(ctx, terms()...)
		rep.Count = len(rep.Docs)
	case "or":
		rep.Docs = sess.Or(ctx, terms()...)
		rep.Count = len(rep.Docs)
	case "similar":
		doc, _ := strconv.ParseInt(args["doc"], 10, 64)
		k, _ := strconv.Atoi(args["k"])
		if k <= 0 {
			k = 5
		}
		if degraded && k > d.limits.DegradeSimilarK {
			k = d.limits.DegradeSimilarK
		}
		hits, err := sess.Similar(ctx, doc, k)
		if err != nil {
			rep.Error = err.Error()
		}
		rep.Hits = hits
		rep.Count = len(hits)
	case "theme":
		k, _ := strconv.Atoi(args["cluster"])
		rep.Docs = sess.ThemeDocs(ctx, k)
		rep.Count = len(rep.Docs)
	case "near":
		x, _ := strconv.ParseFloat(args["x"], 64)
		y, _ := strconv.ParseFloat(args["y"], 64)
		r, _ := strconv.ParseFloat(args["r"], 64)
		rep.Docs = sess.Near(ctx, x, y, r)
		rep.Count = len(rep.Docs)
	case "tile":
		z, errZ := strconv.Atoi(args["z"])
		x, errX := strconv.Atoi(args["x"])
		y, errY := strconv.Atoi(args["y"])
		if errZ != nil || errX != nil || errY != nil {
			// A malformed address must not alias to a valid tile (Atoi's
			// zero value is the root tile).
			rep.Error = fmt.Sprintf("tile address %q/%q/%q is not numeric", args["z"], args["x"], args["y"])
			break
		}
		if degraded && z > d.limits.DegradeMaxZoom {
			// Coarser tiles under overload: answer with the ancestor at the
			// degrade zoom, which covers the requested extent.
			dz := z - d.limits.DegradeMaxZoom
			z, x, y = d.limits.DegradeMaxZoom, x>>dz, y>>dz
		}
		t, err := sess.Tile(ctx, z, x, y)
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Tile = t
			rep.Count = int(t.Docs)
		}
	case "add":
		var ts int64
		if v := args["ts"]; v != "" {
			var err error
			if ts, err = strconv.ParseInt(v, 10, 64); err != nil {
				rep.Error = fmt.Sprintf("ts %q is not a unix timestamp", v)
				return rep
			}
		}
		doc, err := sess.AddDoc(ctx, args["text"], ts, facets)
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	case "delete":
		doc, err := strconv.ParseInt(args["doc"], 10, 64)
		if err == nil {
			err = sess.Delete(ctx, doc)
		}
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Doc, rep.OK = doc, true
		}
	default:
		rep.Error = fmt.Sprintf("unknown op %q", op)
		return rep
	}
	rep.VirtualMS = sess.Stats().LastMS
	return rep
}

// live executes one service-level maintenance op (flush/compact/save) — not
// a session interaction, so no virtual account is touched.
func (d *Daemon) live(ctx context.Context, op, path string) Reply {
	rep := Reply{Op: op}
	lv, ok := d.srv.(serve.Liver)
	if !ok {
		rep.Error = "live maintenance is disabled on this service"
		return rep
	}
	var err error
	switch op {
	case "flush":
		err = lv.FlushLive(ctx)
	case "compact":
		err = lv.CompactLive(ctx)
	case "save":
		if path == "" {
			err = fmt.Errorf("save needs a path")
		} else {
			err = lv.SaveLive(ctx, path)
		}
	}
	if err != nil {
		rep.Error = err.Error()
	} else {
		rep.OK = true
	}
	return rep
}

// admit applies admission control for one request; when it returns false the
// response has been written. degraded reports whether the in-flight level
// crossed the degradation threshold. Callers must release() when admitted.
func (d *Daemon) admit(w http.ResponseWriter, name string, v1 bool, op string) (degraded, ok bool) {
	l := d.limits
	now := time.Now()
	if !d.global.allow(now) {
		d.shedReply(w, v1, op, CodeRateLimited, "global request rate exceeded")
		return false, false
	}
	if name != "" && l.SessionRate > 0 {
		if ns := d.session(name); !ns.bkt.allow(now) {
			d.shedReply(w, v1, op, CodeRateLimited, fmt.Sprintf("session %q rate exceeded", name))
			return false, false
		}
	}
	if l.MaxInFlight > 0 {
		if in := d.inflight.Load(); int(in) >= l.MaxInFlight {
			d.shedReply(w, v1, op, CodeOverloaded, "server is at its in-flight ceiling")
			return false, false
		}
		if l.DegradeThreshold > 0 &&
			float64(d.inflight.Load()) >= l.DegradeThreshold*float64(l.MaxInFlight) {
			degraded = true
		}
	}
	d.inflight.Add(1)
	return degraded, true
}

func (d *Daemon) release() { d.inflight.Add(-1) }

// shedReply writes a 429 with Retry-After on either surface.
func (d *Daemon) shedReply(w http.ResponseWriter, v1 bool, op, code, msg string) {
	d.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(d.limits.RetryAfter.Seconds()))))
	if v1 {
		writeJSONStatus(w, httpStatus(code), Envelope{OK: false, Error: &ErrorInfo{Code: code, Message: msg}})
		return
	}
	writeJSONStatus(w, httpStatus(code), Reply{Op: op, Error: msg})
}

// reply writes an op result: the bare payload on the deprecated routes, the
// envelope under /v1 (op errors map onto the stable code set).
func writeReply(w http.ResponseWriter, v1 bool, rep Reply) {
	if !v1 {
		writeJSON(w, rep)
		return
	}
	if rep.Error != "" {
		code := errCode(rep.Error)
		writeJSONStatus(w, httpStatus(code), Envelope{OK: false, Error: &ErrorInfo{Code: code, Message: rep.Error}})
		return
	}
	writeData(w, rep)
}

// writeData envelopes any payload as a successful /v1 response. The data
// bytes are exactly what the deprecated alias writes as its whole body.
func writeData(w http.ResponseWriter, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError,
			Envelope{OK: false, Error: &ErrorInfo{Code: CodeInternal, Message: err.Error()}})
		return
	}
	writeJSON(w, Envelope{OK: true, Data: raw})
}

// methodNotAllowed writes the mutation-guard refusal on either surface.
func methodNotAllowed(w http.ResponseWriter, v1 bool, op string) {
	if v1 {
		writeJSONStatus(w, http.StatusMethodNotAllowed,
			Envelope{OK: false, Error: &ErrorInfo{Code: CodeMethodNotAllowed, Message: "mutating endpoint: use POST"}})
		return
	}
	writeJSONStatus(w, http.StatusMethodNotAllowed, Reply{Op: op, Error: "mutating endpoint: use POST"})
}

// Mux builds the HTTP surface: the versioned /v1 routes and their deprecated
// unversioned aliases. Query endpoints answer GET; every endpoint that
// mutates server state (add/delete/flush/compact/save) requires POST, so
// crawlers, prefetchers and simple cross-site GETs cannot trip them.
func (d *Daemon) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	register := func(prefix string, v1 bool) {
		// Unversioned routes announce their own retirement: RFC 8594
		// Deprecation plus a Link to the /v1 twin, set before any body write.
		// Bodies stay byte-identical to what these aliases always returned.
		handleFunc := mux.HandleFunc
		if !v1 {
			handleFunc = func(pattern string, h func(http.ResponseWriter, *http.Request)) {
				mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
					w.Header().Set("Deprecation", "true")
					w.Header().Set("Link", `</v1`+r.URL.Path+`>; rel="successor-version"`)
					h(w, r)
				})
			}
		}
		handle := func(op string, mutating bool, keys ...string) {
			handleFunc(prefix+"/"+op, func(w http.ResponseWriter, r *http.Request) {
				if mutating && r.Method != http.MethodPost {
					methodNotAllowed(w, v1, op)
					return
				}
				name := r.URL.Query().Get("session")
				degraded, ok := d.admit(w, name, v1, op)
				if !ok {
					return
				}
				defer d.release()
				if degraded {
					w.Header().Set("X-Degraded", "1")
				}
				args := make(map[string]string, len(keys))
				for _, k := range keys {
					args[k] = r.URL.Query().Get(k)
				}
				writeReply(w, v1, d.run(r.Context(), d.session(name), op, args,
					r.URL.Query()["facet"], degraded))
			})
		}
		handle("term", false, "q", "after", "before")
		handle("df", false, "q")
		handle("and", false, "q", "after", "before")
		handle("or", false, "q", "after", "before")
		handle("similar", false, "doc", "k", "after", "before")
		handle("theme", false, "cluster", "after", "before")
		handle("near", false, "x", "y", "r", "after", "before")
		// Galaxy tiles are addressed by path, slippy-map style; the method
		// prefix makes non-GET requests 405 like the other read endpoints'
		// mutation guard does.
		handleFunc("GET "+prefix+"/tiles/{z}/{x}/{y}", func(w http.ResponseWriter, r *http.Request) {
			name := r.URL.Query().Get("session")
			degraded, ok := d.admit(w, name, v1, "tile")
			if !ok {
				return
			}
			defer d.release()
			if degraded {
				w.Header().Set("X-Degraded", "1")
			}
			args := map[string]string{
				"z":      r.PathValue("z"),
				"x":      r.PathValue("x"),
				"y":      r.PathValue("y"),
				"after":  r.URL.Query().Get("after"),
				"before": r.URL.Query().Get("before"),
			}
			writeReply(w, v1, d.run(r.Context(), d.session(name), "tile", args,
				r.URL.Query()["facet"], degraded))
		})
		handle("add", true, "text", "ts")
		handle("delete", true, "doc")
		for _, op := range []string{"flush", "compact", "save"} {
			op := op
			handleFunc(prefix+"/"+op, func(w http.ResponseWriter, r *http.Request) {
				if r.Method != http.MethodPost {
					methodNotAllowed(w, v1, op)
					return
				}
				path := r.URL.Query().Get("path")
				if op == "save" {
					resolved, err := savePath(d.saveDir, path)
					if err != nil {
						writeReply(w, v1, Reply{Op: op, Error: err.Error()})
						return
					}
					path = resolved
				}
				writeReply(w, v1, d.live(r.Context(), op, path))
			})
		}
		handleFunc(prefix+"/themes", func(w http.ResponseWriter, r *http.Request) {
			if v1 {
				writeData(w, d.srv.Themes())
				return
			}
			writeJSON(w, d.srv.Themes())
		})
		handleFunc(prefix+"/stats", func(w http.ResponseWriter, r *http.Request) {
			if v1 {
				writeData(w, d.srv.Stats())
				return
			}
			writeJSON(w, d.srv.Stats())
		})
	}
	register("/v1", true)
	// Deprecated: the unversioned aliases of the /v1 routes, kept for
	// existing clients; their bodies are the /v1 "data" payloads verbatim.
	register("", false)
	return mux
}

// savePath resolves an HTTP /save target to a plain file name inside the
// configured save dir, so a client with network access never gets a
// file-write primitive against an arbitrary server-side path. An empty dir
// keeps the endpoint disabled.
func savePath(dir, name string) (string, error) {
	if dir == "" {
		return "", fmt.Errorf("save over HTTP is disabled; start inspired with -save-dir")
	}
	if name == "" || name == "." || name == ".." ||
		name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("save path must be a plain file name (it is written inside -save-dir)")
	}
	return filepath.Join(dir, name), nil
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeLines answers the stdin line protocol: one op per line, JSON per
// line. Lines are "term apple", "and apple banana", "similar 3 5",
// "theme 2", "near 0 0 0.2", "tile 2 1 3", "df apple", "stats", "quit".
// "filter after=100 before=200 key=value ..." installs a sticky metadata
// filter on the connection's session (applied to every later query op);
// "filter" alone clears it. Unlike HTTP /save, the line protocol's save
// takes a full path — it is the operator's own terminal, not the network
// surface.
func (d *Daemon) ServeLines(in io.Reader, out io.Writer) {
	ctx := context.Background()
	sess := &namedSession{sess: d.srv.NewQuerier()}
	sc := bufio.NewScanner(in)
	enc := json.NewEncoder(out)
	// The connection's sticky filter, re-injected into every op's args so
	// run() — which resets the session filter from its arguments each call —
	// keeps HTTP requests stateless while the terminal stays sticky.
	filterArgs := map[string]string{}
	var filterFacets []string
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		op, rest := fields[0], fields[1:]
		switch op {
		case "quit", "exit":
			return
		case "stats":
			_ = enc.Encode(d.srv.Stats())
			continue
		case "filter":
			filterArgs = map[string]string{}
			filterFacets = nil
			for _, tok := range rest {
				switch {
				case strings.HasPrefix(tok, "after="):
					filterArgs["after"] = tok[len("after="):]
				case strings.HasPrefix(tok, "before="):
					filterArgs["before"] = tok[len("before="):]
				default:
					filterFacets = append(filterFacets, tok)
				}
			}
			_ = enc.Encode(Reply{Op: op, OK: true, Count: len(filterFacets)})
			continue
		case "flush", "compact", "save":
			path := ""
			if len(rest) > 0 {
				path = rest[0]
			}
			_ = enc.Encode(d.live(ctx, op, path))
			continue
		}
		args := map[string]string{}
		for k, v := range filterArgs {
			args[k] = v
		}
		switch op {
		case "term", "df":
			if len(rest) > 0 {
				args["q"] = rest[0]
			}
		case "and", "or":
			args["q"] = strings.Join(rest, ",")
		case "add":
			args["text"] = strings.Join(rest, " ")
		case "delete":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
		case "similar":
			if len(rest) > 0 {
				args["doc"] = rest[0]
			}
			if len(rest) > 1 {
				args["k"] = rest[1]
			}
		case "theme":
			if len(rest) > 0 {
				args["cluster"] = rest[0]
			}
		case "near":
			if len(rest) > 2 {
				args["x"], args["y"], args["r"] = rest[0], rest[1], rest[2]
			}
		case "tile":
			if len(rest) > 2 {
				args["z"], args["x"], args["y"] = rest[0], rest[1], rest[2]
			}
		}
		_ = enc.Encode(d.run(ctx, sess, op, args, filterFacets, false))
	}
}
