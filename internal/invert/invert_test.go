package invert

import (
	"fmt"
	"reflect"
	"testing"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/scan"
	"inspire/internal/simtime"
)

// refPosting is a reference posting list entry.
type refPosting struct {
	Doc  int64
	Freq int64
}

// referenceIndex builds the expected term->postings map by scanning the
// whole corpus serially (P=1) and inverting it with plain maps.
func referenceIndex(t *testing.T, sources []*corpus.Source) map[string][]refPosting {
	t.Helper()
	ref := make(map[string][]refPosting)
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		vocab := dhash.New(c, armci.New(c))
		fwd, err := scan.Scan(c, vocab, sources, scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		for r := 0; r < fwd.NumRecords(); r++ {
			freq := make(map[int64]int64)
			for _, tok := range fwd.RecordTokens(r) {
				freq[tok]++
			}
			doc := fwd.GlobalDocIDs[r]
			for tok, f := range freq {
				term := vocab.Term(tok)
				ref[term] = append(ref[term], refPosting{Doc: doc, Freq: f})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sort postings by doc for comparability.
	for term := range ref {
		ps := ref[term]
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && ps[j].Doc < ps[j-1].Doc; j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
	}
	return ref
}

// runInvert executes the full scan+invert under the given strategy and
// returns the term->postings map read back through one-sided gets.
func runInvert(t *testing.T, p int, sources []*corpus.Source, strat Strategy, chunk int64) map[string][]refPosting {
	t.Helper()
	out := make(map[string][]refPosting)
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, p)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := PublishForward(c, fwd)
		ix := Invert(c, gf, n, vocab.DenseRange, Options{Strategy: strat, ChunkTokens: chunk, RPC: rpc})
		if c.Rank() == 0 {
			for d := int64(0); d < n; d++ {
				docs, freqs := ix.Postings(d)
				term := vocab.Term(d)
				for i := range docs {
					out[term] = append(out[term], refPosting{Doc: docs[i], Freq: freqs[i]})
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func invTestSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 30_000, Sources: 5, Seed: 23, VocabSize: 900, Topics: 4,
	})
}

func TestInvertMatchesReferenceAllStrategies(t *testing.T) {
	sources := invTestSources()
	want := referenceIndex(t, sources)
	for _, strat := range []Strategy{DynamicGA, Static, MasterWorker} {
		for _, p := range []int{1, 2, 4} {
			got := runInvert(t, p, sources, strat, 512)
			if len(got) != len(want) {
				t.Fatalf("%v p=%d: %d terms vs %d", strat, p, len(got), len(want))
			}
			for term, wps := range want {
				if !reflect.DeepEqual(got[term], wps) {
					t.Fatalf("%v p=%d: term %q postings %v want %v", strat, p, term, got[term], wps)
				}
			}
		}
	}
}

func TestInvertTinyChunksStressStealing(t *testing.T) {
	sources := invTestSources()
	want := referenceIndex(t, sources)
	// Chunk of 1 token maximizes load count and steal contention.
	got := runInvert(t, 4, sources, DynamicGA, 1)
	if len(got) != len(want) {
		t.Fatalf("%d terms vs %d", len(got), len(want))
	}
	for term, wps := range want {
		if !reflect.DeepEqual(got[term], wps) {
			t.Fatalf("term %q postings differ under tiny chunks", term)
		}
	}
}

func TestInvertRepeatedRunsIdentical(t *testing.T) {
	// Work stealing changes who does what, never the result.
	sources := invTestSources()
	a := runInvert(t, 4, sources, DynamicGA, 256)
	b := runInvert(t, 4, sources, DynamicGA, 256)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated dynamic runs differ")
	}
}

func TestBuildLoadsCoverEveryFieldOnce(t *testing.T) {
	sources := invTestSources()
	for _, p := range []int{1, 3} {
		for _, chunk := range []int64{64, 1024, 1 << 20} {
			_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
				vocab := dhash.New(c, armci.New(c))
				parts := corpus.Partition(sources, p)
				fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
				if err != nil {
					return err
				}
				vocab.Finalize()
				fwd.RemapDense(c, vocab)
				fwd.AssignGlobalDocIDs(c)
				gf := PublishForward(c, fwd)
				loads := BuildLoads(c, gf, chunk)
				covered := make(map[int64]bool)
				for _, l := range loads {
					if l.Owner < 0 || l.Owner >= p {
						return fmt.Errorf("bad owner %d", l.Owner)
					}
					for f := l.FieldLo; f < l.FieldHi; f++ {
						if covered[f] {
							return fmt.Errorf("field %d in two loads", f)
						}
						covered[f] = true
					}
				}
				if int64(len(covered)) != gf.NumField {
					return fmt.Errorf("loads cover %d of %d fields", len(covered), gf.NumField)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d chunk=%d: %v", p, chunk, err)
			}
		}
	}
}

func TestLoadsAlignToRecordBoundaries(t *testing.T) {
	sources := invTestSources()
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		vocab := dhash.New(c, armci.New(c))
		parts := corpus.Partition(sources, 2)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := PublishForward(c, fwd)
		loads := BuildLoads(c, gf, 64)
		// The first field of a load must start a new document relative to
		// the previous field.
		for _, l := range loads {
			if l.FieldLo == 0 {
				continue
			}
			var prev, first [1]int64
			gf.FieldDoc.Get(l.FieldLo-1, prev[:])
			gf.FieldDoc.Get(l.FieldLo, first[:])
			if prev[0] == first[0] {
				// Same doc crossing a load boundary is only legal when
				// the previous field belongs to another owner's rank
				// boundary — which cannot happen since docs never span
				// sources. Flag it.
				return fmt.Errorf("load at field %d splits doc %d", l.FieldLo, first[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDFAndCFConsistency(t *testing.T) {
	sources := invTestSources()
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, 3)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := PublishForward(c, fwd)
		ix := Invert(c, gf, n, vocab.DenseRange, Options{Strategy: DynamicGA})
		// Sum of CF over all terms equals the global token count.
		var localCF int64
		for _, v := range ix.CF {
			localCF += v
		}
		totalCF := c.AllreduceSumInt(localCF)
		totalTokens := c.AllreduceSumInt(int64(len(fwd.Tokens)))
		if totalCF != totalTokens {
			return fmt.Errorf("sum(CF)=%d != tokens=%d", totalCF, totalTokens)
		}
		// DF of each owned term equals its posting count and postings are
		// sorted by doc.
		lo, _ := vocab.DenseRange(c.Rank())
		for i := range ix.DF {
			docs, freqs := ix.Postings(lo + int64(i))
			if int64(len(docs)) != ix.DF[i] {
				return fmt.Errorf("term %d: %d postings, DF=%d", lo+int64(i), len(docs), ix.DF[i])
			}
			var cf int64
			for k := range docs {
				cf += freqs[k]
				if k > 0 && docs[k] <= docs[k-1] {
					return fmt.Errorf("term %d postings unsorted or duplicated", lo+int64(i))
				}
			}
			if cf != ix.CF[i] {
				return fmt.Errorf("term %d: CF %d vs %d", lo+int64(i), cf, ix.CF[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadCostPositiveAndMonotone(t *testing.T) {
	m := simtime.PNNLCluster2007()
	small := &Load{TokenLo: 0, TokenHi: 100, FieldLo: 0, FieldHi: 4, Entries: 50}
	big := &Load{TokenLo: 0, TokenHi: 10000, FieldLo: 0, FieldHi: 400, Entries: 5000}
	cs, cb := LoadCost(m, small), LoadCost(m, big)
	if cs <= 0 || cb <= cs {
		t.Fatalf("load costs not monotone: small=%g big=%g", cs, cb)
	}
	costs, owners := LoadCosts(m, []Load{*small, *big})
	if len(costs) != 2 || len(owners) != 2 || costs[0] != cs || costs[1] != cb {
		t.Fatalf("LoadCosts mismatch")
	}
}

func TestStrategyString(t *testing.T) {
	if DynamicGA.String() != "dynamic-ga" || Static.String() != "static" || MasterWorker.String() != "master-worker" {
		t.Fatal("strategy names")
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy should render")
	}
}

func TestEmptyCorpus(t *testing.T) {
	empty := &corpus.Source{Name: "empty", Format: corpus.FormatPubMed, Data: nil}
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		fwd, err := scan.Scan(c, vocab, []*corpus.Source{empty}, scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := PublishForward(c, fwd)
		ix := Invert(c, gf, n, vocab.DenseRange, Options{})
		if len(ix.Loads) != 0 {
			return fmt.Errorf("loads from empty corpus")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodePostingsMatchesIndex(t *testing.T) {
	sources := invTestSources()
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		rpc := armci.New(c)
		vocab := dhash.New(c, rpc)
		parts := corpus.Partition(sources, 3)
		fwd, err := scan.Scan(c, vocab, parts[c.Rank()], scan.TokenizerConfig{})
		if err != nil {
			return err
		}
		n := vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		gf := PublishForward(c, fwd)
		ix := Invert(c, gf, n, vocab.DenseRange, Options{Strategy: DynamicGA, RPC: rpc})

		// Every rank emits its owned range straight into the block codec;
		// the blocks must decode to exactly the index's posting lists.
		ps, err := ix.EncodePostings(c)
		if err != nil {
			return err
		}
		if err := ps.Validate(); err != nil {
			return err
		}
		if ps.NumTerms != ix.TermHi-ix.TermLo {
			return fmt.Errorf("rank %d encoded %d terms, owns %d", c.Rank(), ps.NumTerms, ix.TermHi-ix.TermLo)
		}
		for i := int64(0); i < ps.NumTerms; i++ {
			wantDocs, wantFreqs := ix.Postings(ix.TermLo + i)
			gotDocs, gotFreqs := ps.Postings(i)
			if !reflect.DeepEqual(gotDocs, wantDocs) || !reflect.DeepEqual(gotFreqs, wantFreqs) {
				return fmt.Errorf("rank %d term %d: block postings differ", c.Rank(), ix.TermLo+i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
