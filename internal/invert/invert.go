// Package invert implements the paper's Indexing component: parallel
// inverted file indexing with the FAST-INV algorithm (two counting-sort
// passes over the forward index) and the dynamic load-balancing scheme of
// §3.3 — the forward index is published in global arrays, divided into
// fixed-size chunks of fields ("loads"), and idle processes steal loads
// through a GA atomic fetch-and-increment on per-owner task-queue counters,
// each process draining its own loads first.
//
// Two baseline strategies are provided for the paper's comparisons: Static
// (each process inverts only its own loads; no balancing — Figure 9's
// counterpart) and MasterWorker (every load grab is an RPC to a rank-0
// dispatcher — the scheme §3.3 argues does not scale).
package invert

import (
	"fmt"
	"sort"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/ga"
	"inspire/internal/postings"
	"inspire/internal/scan"
	"inspire/internal/simtime"
)

// Strategy selects the load-distribution scheme.
type Strategy int

const (
	// DynamicGA is the paper's scheme: per-owner task queues advanced by
	// GA atomic fetch-and-increment, own loads first, then stealing.
	DynamicGA Strategy = iota
	// Static processes only locally owned loads.
	Static
	// MasterWorker requests every load from a rank-0 dispatcher RPC.
	MasterWorker
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case DynamicGA:
		return "dynamic-ga"
	case Static:
		return "static"
	case MasterWorker:
		return "master-worker"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// GlobalForward is the forward index published in global arrays so any
// process can invert any load (paper: "these tables are stored in global
// arrays, so that they are globally accessible when processes exchange
// information during inverted file indexing").
type GlobalForward struct {
	Tokens   *ga.Array[int64] // concatenated token streams, rank-major
	FieldLo  *ga.Array[int64] // global token start of each field
	FieldLen *ga.Array[int64] // token count of each field
	FieldDoc *ga.Array[int64] // global document ID of each field
	NumField int64
}

// PublishForward collectively copies each rank's forward index into global
// arrays. Local shard writes are direct memory stores (free, as in GA).
func PublishForward(c *cluster.Comm, fwd *scan.Forward) *GlobalForward {
	gf := &GlobalForward{}
	gf.Tokens = ga.CreateIrregular[int64](c, "fwd.tokens", int64(len(fwd.Tokens)))
	copy(gf.Tokens.Access(), fwd.Tokens)
	tokBase, _ := gf.Tokens.Distribution(c.Rank())

	nf := int64(len(fwd.Fields))
	gf.FieldLo = ga.CreateIrregular[int64](c, "fwd.fieldlo", nf)
	gf.FieldLen = ga.CreateIrregular[int64](c, "fwd.fieldlen", nf)
	gf.FieldDoc = ga.CreateIrregular[int64](c, "fwd.fielddoc", nf)
	lo, len_, doc := gf.FieldLo.Access(), gf.FieldLen.Access(), gf.FieldDoc.Access()
	for i, f := range fwd.Fields {
		lo[i] = tokBase + f.Lo
		len_[i] = f.Hi - f.Lo
		doc[i] = fwd.GlobalDocIDs[f.Record]
	}
	gf.NumField = gf.FieldLo.N()
	c.Barrier()
	return gf
}

// Load is one unit of inversion work: a contiguous range of fields owned by
// one rank, covering a contiguous token range of that rank's stream.
type Load struct {
	Owner            int
	FieldLo, FieldHi int64 // global field indexes
	TokenLo, TokenHi int64 // global token range
	Entries          int64 // distinct (term, doc) pairs; filled in pass 1
}

// Tokens returns the token count of the load.
func (l *Load) Tokens() int64 { return l.TokenHi - l.TokenLo }

// BuildLoads collectively divides the global forward index into fixed-size
// chunks of approximately chunkTokens tokens (Kruskal-Weiss fixed-size
// chunking). Chunks are aligned to *record* boundaries — all fields of one
// record stay in one load — so each (term, document) pair is produced by
// exactly one load and postings never need cross-load merging. The returned
// table is identical on every rank, ordered by owner.
func BuildLoads(c *cluster.Comm, gf *GlobalForward, chunkTokens int64) []Load {
	if chunkTokens <= 0 {
		chunkTokens = 4096
	}
	fLo, fHi := gf.FieldLo.Distribution(c.Rank())
	lo := gf.FieldLo.Access()
	ln := gf.FieldLen.Access()
	doc := gf.FieldDoc.Access()
	var mine []Load
	var cur *Load
	n := fHi - fLo
	for i := int64(0); i < n; i++ {
		if cur == nil {
			mine = append(mine, Load{
				Owner:   c.Rank(),
				FieldLo: fLo + i, FieldHi: fLo + i,
				TokenLo: lo[i], TokenHi: lo[i],
			})
			cur = &mine[len(mine)-1]
		}
		cur.FieldHi = fLo + i + 1
		cur.TokenHi = lo[i] + ln[i]
		recordEnds := i+1 >= n || doc[i+1] != doc[i]
		if cur.Tokens() >= chunkTokens && recordEnds {
			cur = nil
		}
	}
	// Drop degenerate empty trailing loads.
	filtered := mine[:0]
	for _, l := range mine {
		if l.FieldHi > l.FieldLo {
			filtered = append(filtered, l)
		}
	}
	parts := c.Allgather(filtered, float64(48*len(filtered)))
	var all []Load
	for _, p := range parts {
		all = append(all, p.([]Load)...)
	}
	return all
}

// Index is the product of inversion: the term-to-record index with
// per-term postings (document ID, in-document frequency), partitioned across
// ranks by the dense-term-ID ranges of the vocabulary.
type Index struct {
	N int64 // vocabulary size

	Counts   *ga.Array[int64] // postings per term == document frequency
	Off      *ga.Array[int64] // start offset of each term's postings
	PostDoc  *ga.Array[int64] // posting document IDs
	PostFreq *ga.Array[int64] // posting frequencies

	// TermLo, TermHi is the dense term range owned by the local rank.
	TermLo, TermHi int64

	// DF and CF are the local owned terms' document and collection
	// frequencies (index i corresponds to term TermLo+i).
	DF []int64
	CF []int64

	// Loads is the global load table with Entries filled, and Stats the
	// per-load execution accounting for the deterministic schedule model.
	Loads []Load
}

// Postings returns term t's postings (sorted by document ID) — a one-sided
// read, usable from any rank after Invert.
func (ix *Index) Postings(t int64) (docs, freqs []int64) {
	n := ix.Counts.GetOne(t)
	if n == 0 {
		return nil, nil
	}
	off := ix.Off.GetOne(t)
	docs = make([]int64, n)
	freqs = make([]int64, n)
	ix.PostDoc.Get(off, docs)
	ix.PostFreq.Get(off, freqs)
	return docs, freqs
}

// EncodePostings emits the rank's owned terms straight into the serving
// codec: one block-compressed posting store covering the dense range
// [TermLo, TermHi), local index i holding term TermLo+i. Indexing owns the
// postings sorted and contiguous after finalizeOwned, so emission is one
// linear pass over local memory with no flat detour; charged at the
// re-encode rate.
func (ix *Index) EncodePostings(c *cluster.Comm) (*postings.Store, error) {
	counts := ix.Counts.Access()
	offs := ix.Off.Access()
	postBase, _ := ix.PostDoc.Distribution(c.Rank())
	docs := ix.PostDoc.Access()
	freqs := ix.PostFreq.Access()
	var total int64
	for _, n := range counts {
		total += n
	}
	w := postings.NewWriter(total)
	for i := range counts {
		n := counts[i]
		var d, f []int64
		if n > 0 {
			lo := offs[i] - postBase
			d, f = docs[lo:lo+n], freqs[lo:lo+n]
		}
		if err := w.Append(d, f); err != nil {
			return nil, fmt.Errorf("invert: encode postings of term %d: %w", ix.TermLo+int64(i), err)
		}
	}
	c.Clock().Advance(c.Model().LocalCopyCost(16*float64(total)) + c.Model().FlopCost(4*float64(total)))
	return w.Finish(), nil
}

// termBoundsFn describes the dense-term partition (from dhash.DenseRange).
type termBoundsFn func(rank int) (lo, hi int64)

// Options configures Invert.
type Options struct {
	Strategy    Strategy
	ChunkTokens int64
	// RPC is required for the MasterWorker strategy.
	RPC *armci.Registry
}

// Invert collectively builds the term-to-record index from the published
// forward index using the FAST-INV two-pass algorithm under the selected
// load-distribution strategy. termBounds must describe the same partition on
// every rank; N is the vocabulary size.
func Invert(c *cluster.Comm, gf *GlobalForward, N int64, termBounds func(rank int) (lo, hi int64), opts Options) *Index {
	lo, hi := termBounds(c.Rank())
	ix := &Index{N: N, TermLo: lo, TermHi: hi}
	ix.Counts = createTermArray(c, "inv.counts", N, termBounds)
	ix.Off = createTermArray(c, "inv.off", N, termBounds)

	loads := BuildLoads(c, gf, opts.ChunkTokens)
	claimer := newClaimer(c, loads, opts)

	// --- Pass 1: count distinct (term, doc) pairs per term. -------------
	myEntries := make(map[int]int64) // load index -> entries
	myLoads := claimer.claim(func(li int) {
		pairs := invertLoad(c, gf, &loads[li])
		idxs := make([]int64, 0, len(pairs))
		ones := make([]int64, 0, len(pairs))
		seen := make(map[int64]int64)
		for _, pr := range pairs {
			seen[pr.term]++
		}
		for t := range seen {
			idxs = append(idxs, t)
			ones = append(ones, seen[t])
		}
		ix.Counts.ScatterAcc(idxs, ones)
		myEntries[li] = int64(len(pairs))
		c.Clock().Advance(c.Model().InvertCost(float64(loads[li].Tokens())))
	})
	c.Barrier()

	// Share per-load entry counts so the load table (and therefore the
	// deterministic cost model) is global.
	type entryPair struct{ Load, Entries int64 }
	local := make([]entryPair, 0, len(myEntries))
	for li, e := range myEntries {
		local = append(local, entryPair{int64(li), e})
	}
	for _, part := range c.Allgather(local, float64(16*len(local))) {
		for _, ep := range part.([]entryPair) {
			loads[ep.Load].Entries = ep.Entries
		}
	}
	ix.Loads = loads

	// --- Offsets: local prefix over owned counts, global base via exscan.
	counts := ix.Counts.Access()
	var localTotal int64
	for _, n := range counts {
		localTotal += n
	}
	base, totalPostings := c.ExScanInt64(localTotal)
	offs := ix.Off.Access()
	run := base
	for i, n := range counts {
		offs[i] = run
		run += n
	}
	ix.PostDoc = ga.CreateIrregular[int64](c, "inv.postdoc", localTotal)
	ix.PostFreq = ga.CreateIrregular[int64](c, "inv.postfreq", localTotal)
	cursor := createTermArray(c, "inv.cursor", N, termBounds)
	copy(cursor.Access(), offs)
	c.Barrier()
	_ = totalPostings

	// --- Pass 2: re-invert the same loads and place postings. -----------
	for _, li := range myLoads {
		pairs := invertLoad(c, gf, &loads[li])
		// Group by term, preserving the deterministic (doc-ordered within
		// a load) pair order.
		byTerm := make(map[int64][]entry)
		for _, pr := range pairs {
			byTerm[pr.term] = append(byTerm[pr.term], pr)
		}
		terms := make([]int64, 0, len(byTerm))
		for t := range byTerm {
			terms = append(terms, t)
		}
		sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
		for _, t := range terms {
			es := byTerm[t]
			slot := cursor.ReadInc(t, int64(len(es)))
			docs := make([]int64, len(es))
			freqs := make([]int64, len(es))
			for i, e := range es {
				docs[i] = e.doc
				freqs[i] = e.freq
			}
			ix.PostDoc.Put(slot, docs)
			ix.PostFreq.Put(slot, freqs)
		}
		c.Clock().Advance(c.Model().InvertCost(float64(loads[li].Tokens())))
	}
	c.Barrier()

	// --- Finalize at the owner: sort postings per term, derive DF/CF. ---
	ix.finalizeOwned(c)
	c.Barrier()
	return ix
}

// entry is one (term, doc, freq) posting contribution.
type entry struct{ term, doc, freq int64 }

// invertLoad reads a load's fields and tokens through one-sided Gets and
// produces its (term, doc)->freq contributions in deterministic order
// (ascending doc, then term-insertion order within the doc).
func invertLoad(c *cluster.Comm, gf *GlobalForward, l *Load) []entry {
	nf := l.FieldHi - l.FieldLo
	fLo := make([]int64, nf)
	fLen := make([]int64, nf)
	fDoc := make([]int64, nf)
	gf.FieldLo.Get(l.FieldLo, fLo)
	gf.FieldLen.Get(l.FieldLo, fLen)
	gf.FieldDoc.Get(l.FieldLo, fDoc)
	toks := make([]int64, l.Tokens())
	gf.Tokens.Get(l.TokenLo, toks)

	var out []entry
	freq := make(map[int64]int64)
	var order []int64
	flush := func(doc int64) {
		for _, t := range order {
			out = append(out, entry{term: t, doc: doc, freq: freq[t]})
			delete(freq, t)
		}
		order = order[:0]
	}
	curDoc := int64(-1)
	for i := int64(0); i < nf; i++ {
		if fDoc[i] != curDoc {
			if curDoc >= 0 {
				flush(curDoc)
			}
			curDoc = fDoc[i]
		}
		start := fLo[i] - l.TokenLo
		for _, t := range toks[start : start+fLen[i]] {
			if freq[t] == 0 {
				order = append(order, t)
			}
			freq[t]++
		}
	}
	if curDoc >= 0 {
		flush(curDoc)
	}
	return out
}

// finalizeOwned sorts each owned term's postings by document ID and fills
// DF/CF.
func (ix *Index) finalizeOwned(c *cluster.Comm) {
	counts := ix.Counts.Access()
	offs := ix.Off.Access()
	ix.DF = make([]int64, len(counts))
	ix.CF = make([]int64, len(counts))
	postBase, _ := ix.PostDoc.Distribution(c.Rank())
	docs := ix.PostDoc.Access()
	freqs := ix.PostFreq.Access()
	var moved int64
	for i := range counts {
		n := counts[i]
		if n == 0 {
			continue
		}
		lo := offs[i] - postBase
		d := docs[lo : lo+n]
		f := freqs[lo : lo+n]
		sort.Sort(&postingSorter{d, f})
		ix.DF[i] = n
		for _, fv := range f {
			ix.CF[i] += fv
		}
		moved += n
	}
	c.Clock().Advance(c.Model().InvertCost(float64(moved)))
}

// postingSorter co-sorts docs and freqs by ascending doc.
type postingSorter struct{ d, f []int64 }

func (p *postingSorter) Len() int           { return len(p.d) }
func (p *postingSorter) Less(i, j int) bool { return p.d[i] < p.d[j] }
func (p *postingSorter) Swap(i, j int) {
	p.d[i], p.d[j] = p.d[j], p.d[i]
	p.f[i], p.f[j] = p.f[j], p.f[i]
}

// createTermArray creates an int64 global array partitioned by the dense
// term ranges.
func createTermArray(c *cluster.Comm, name string, n int64, termBounds func(rank int) (lo, hi int64)) *ga.Array[int64] {
	lo, hi := termBounds(c.Rank())
	a := ga.CreateIrregular[int64](c, name, hi-lo)
	if a.N() != n {
		panic(fmt.Sprintf("invert: %s: term bounds cover %d of %d", name, a.N(), n))
	}
	return a
}

// LoadCost returns the deterministic virtual cost of inverting one load:
// two FAST-INV passes over its tokens, the one-sided reads of its fields and
// tokens, and the scatter of its posting contributions (counts in pass 1,
// doc+freq in pass 2).
func LoadCost(m *simtime.Model, l *Load) float64 {
	tokens := float64(l.Tokens())
	entries := float64(l.Entries)
	fields := float64(l.FieldHi - l.FieldLo)
	compute := 2 * m.InvertCost(tokens)
	comm := 2 * (m.OneSidedCost(8*tokens) + 3*m.OneSidedCost(8*fields))
	comm += m.OneSidedCost(16*entries) * 2
	return compute + comm
}

// LoadCosts returns the per-load cost vector and owner vector for the
// schedule simulators.
func LoadCosts(m *simtime.Model, loads []Load) (costs []float64, owners []int) {
	costs = make([]float64, len(loads))
	owners = make([]int, len(loads))
	for i := range loads {
		costs[i] = LoadCost(m, &loads[i])
		owners[i] = loads[i].Owner
	}
	return costs, owners
}
