package invert

import (
	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/ga"
)

// claimer hands out load indexes under the configured strategy. claim()
// invokes process for every load this rank wins and returns their indexes;
// collectively, every load is processed exactly once.
type claimer struct {
	c     *cluster.Comm
	loads []Load
	opts  Options

	// Per-owner segments of the (owner-ordered) load table.
	ownerStart []int
	ownerCount []int

	// DynamicGA: one task-queue counter per owner rank, advanced by
	// atomic fetch-and-increment.
	queue *ga.Array[int64]

	// MasterWorker: dispatcher RPC.
	rpc *armci.Registry
}

const mwHandler = "invert.nextload"

// newClaimer collectively prepares the strategy state.
func newClaimer(c *cluster.Comm, loads []Load, opts Options) *claimer {
	cl := &claimer{c: c, loads: loads, opts: opts}
	p := c.Size()
	cl.ownerStart = make([]int, p)
	cl.ownerCount = make([]int, p)
	for i := range loads {
		cl.ownerCount[loads[i].Owner]++
	}
	for r := 1; r < p; r++ {
		cl.ownerStart[r] = cl.ownerStart[r-1] + cl.ownerCount[r-1]
	}
	switch opts.Strategy {
	case DynamicGA:
		// One counter per owner; ga.Create distributes one element to
		// each rank when n == P.
		cl.queue = ga.Create[int64](c, "invert.queue", int64(p))
		cl.queue.Sync()
	case MasterWorker:
		cl.rpc = opts.RPC
		if cl.rpc == nil {
			cl.rpc = armci.New(c)
		}
		if c.Rank() == 0 {
			next := 0
			cl.rpc.Register(mwHandler, func(any) any {
				li := next
				next++
				return li
			})
		}
		c.Barrier()
	}
	return cl
}

// claim runs the strategy's work loop.
func (cl *claimer) claim(process func(li int)) []int {
	var mine []int
	switch cl.opts.Strategy {
	case Static:
		r := cl.c.Rank()
		for k := 0; k < cl.ownerCount[r]; k++ {
			li := cl.ownerStart[r] + k
			process(li)
			mine = append(mine, li)
		}
	case MasterWorker:
		for {
			li := cl.rpc.Call(0, mwHandler, nil, 8, 8).(int)
			if li >= len(cl.loads) {
				break
			}
			process(li)
			mine = append(mine, li)
		}
	case DynamicGA:
		// The task queue is prioritized so each process completes its
		// own inversion loads first, then helps with loads owned by
		// other processes (paper §3.3).
		p := cl.c.Size()
		for step := 0; step < p; step++ {
			victim := (cl.c.Rank() + step) % p
			for {
				k := cl.queue.ReadInc(int64(victim), 1)
				if k >= int64(cl.ownerCount[victim]) {
					break
				}
				li := cl.ownerStart[victim] + int(k)
				process(li)
				mine = append(mine, li)
			}
		}
	}
	return mine
}
