package project

import (
	"fmt"
	"math"
)

// Planar is the frozen 2-D projection model of a finished run: the centroid
// mean and the two leading principal components PCA produced. A serving
// store persists it so documents ingested after the snapshot can be placed
// on the ThemeView plane with exactly the arithmetic the batch pipeline used
// — the live-ingestion counterpart of signature.Projection.
type Planar struct {
	Mean, PC1, PC2 []float64
}

// NewPlanar freezes a projection's model (sharing its slices, which are
// never mutated after the run).
func NewPlanar(p *Projection) *Planar {
	if p == nil {
		return nil
	}
	return &Planar{Mean: p.Mean, PC1: p.PC1, PC2: p.PC2}
}

// Validate checks the structural invariants a loaded model must satisfy.
func (p *Planar) Validate() error {
	if len(p.Mean) == 0 || len(p.PC1) != len(p.Mean) || len(p.PC2) != len(p.Mean) {
		return fmt.Errorf("project: planar model has mismatched dimensions (%d/%d/%d)",
			len(p.Mean), len(p.PC1), len(p.PC2))
	}
	for _, s := range [][]float64{p.Mean, p.PC1, p.PC2} {
		for _, f := range s {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("project: planar model not finite")
			}
		}
	}
	return nil
}

// Project places one knowledge signature on the plane, bit-for-bit as
// Project placed the batch run's signatures (a nil or null signature gets
// the origin, IN-SPIRE's "no signature" bucket). Cost: 4*M flops.
func (p *Planar) Project(sig []float64) (x, y float64) {
	for d, val := range sig {
		if d >= len(p.Mean) {
			break
		}
		diff := val - p.Mean[d]
		x += diff * p.PC1[d]
		y += diff * p.PC2[d]
	}
	return x, y
}
