package project

import (
	"math/rand"
	"testing"
)

func BenchmarkJacobiEigen(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		b.Run(map[int]string{16: "n=16", 64: "n=64", 128: "n=128"}[n], func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randSymmetric(n, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := JacobiEigen(a, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildTerrain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]Point, 5000)
	for i := range pts {
		pts[i] = Point{Doc: int64(i), X: rng.NormFloat64(), Y: rng.NormFloat64()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildTerrain(pts, 64, 24, 1.5)
	}
}
