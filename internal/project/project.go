package project

import (
	"fmt"
	"math"
	"sort"

	"inspire/internal/cluster"
)

// Point is one projected document.
type Point struct {
	Doc  int64 // global document ID
	X, Y float64
}

// Projection is the outcome of the projection stage on one rank.
type Projection struct {
	// Mean is the (size-weighted) centroid mean subtracted before
	// projecting.
	Mean []float64
	// PC1, PC2 are the two leading principal components.
	PC1, PC2 []float64
	// Eig holds the two leading eigenvalues of the centroid covariance.
	Eig [2]float64
	// Local holds this rank's projected documents (null signatures get
	// the origin, like IN-SPIRE's "no signature" bucket).
	Local []Point
	// Centers2D holds the projected cluster centroids (identical
	// everywhere).
	Centers2D [][2]float64
}

// PCA computes the covariance of the centroids (weighted by cluster size,
// so the sample reflects the document distribution) and returns its two
// leading eigenpairs. Identical inputs on every rank produce identical
// outputs with no communication, matching the paper's "each process computes
// the transformation matrix using the centroids of the clusters".
func PCA(centroids [][]float64, sizes []int64) (mean, pc1, pc2 []float64, eig [2]float64, err error) {
	k := len(centroids)
	if k == 0 {
		return nil, nil, nil, eig, fmt.Errorf("project: no centroids")
	}
	m := len(centroids[0])
	mean = make([]float64, m)
	var wTotal float64
	for j, ctr := range centroids {
		w := 1.0
		if j < len(sizes) && sizes[j] > 0 {
			w = float64(sizes[j])
		}
		wTotal += w
		for d, x := range ctr {
			mean[d] += w * x
		}
	}
	for d := range mean {
		mean[d] /= wTotal
	}
	cov := make([]float64, m*m)
	for j, ctr := range centroids {
		w := 1.0
		if j < len(sizes) && sizes[j] > 0 {
			w = float64(sizes[j])
		}
		for a := 0; a < m; a++ {
			da := ctr[a] - mean[a]
			for b := a; b < m; b++ {
				cov[a*m+b] += w * da * (ctr[b] - mean[b])
			}
		}
	}
	for a := 0; a < m; a++ {
		for b := 0; b < a; b++ {
			cov[a*m+b] = cov[b*m+a]
		}
	}
	inv := 1 / wTotal
	for i := range cov {
		cov[i] *= inv
	}
	vals, vecs, err := JacobiEigen(cov, m)
	if err != nil {
		return nil, nil, nil, eig, err
	}
	pc1 = vecs[0:m]
	pc2 = make([]float64, m)
	if m > 1 {
		copy(pc2, vecs[m:2*m])
		eig[1] = vals[1]
	}
	eig[0] = vals[0]
	// Canonical sign: make the largest-magnitude coefficient positive so
	// the projection is deterministic across eigensolver sign flips.
	canonicalize(pc1)
	canonicalize(pc2)
	return mean, pc1, pc2, eig, nil
}

func canonicalize(v []float64) {
	big, bigAbs := 0, 0.0
	for i, x := range v {
		if math.Abs(x) > bigAbs {
			big, bigAbs = i, math.Abs(x)
		}
	}
	if bigAbs > 0 && v[big] < 0 {
		for i := range v {
			v[i] = -v[i]
		}
	}
}

// Project collectively projects the local signatures onto the two leading
// principal components of the centroid covariance. vecs[r] may be nil (null
// signature -> origin). The per-document work is local; only the centroid
// inputs (already replicated) are shared.
func Project(c *cluster.Comm, vecs [][]float64, docIDs []int64, centroids [][]float64, sizes []int64) (*Projection, error) {
	mean, pc1, pc2, eig, err := PCA(centroids, sizes)
	if err != nil {
		return nil, err
	}
	m := len(mean)
	// PCA cost: covariance (k*m^2) + Jacobi (~m^3 per sweep, a few sweeps).
	c.Clock().Advance(c.Model().FlopCost(float64(len(centroids)*m*m) + 8*float64(m*m*m)))
	proj := &Projection{Mean: mean, PC1: pc1, PC2: pc2, Eig: eig}
	for r, v := range vecs {
		pt := Point{Doc: docIDs[r]}
		if v != nil {
			var x, y float64
			for d, val := range v {
				diff := val - mean[d]
				x += diff * pc1[d]
				y += diff * pc2[d]
			}
			pt.X, pt.Y = x, y
		}
		proj.Local = append(proj.Local, pt)
	}
	c.Clock().Advance(c.Model().FlopCost(4 * float64(len(vecs)*m)))
	for _, ctr := range centroids {
		var x, y float64
		for d, val := range ctr {
			diff := val - mean[d]
			x += diff * pc1[d]
			y += diff * pc2[d]
		}
		proj.Centers2D = append(proj.Centers2D, [2]float64{x, y})
	}
	return proj, nil
}

// GatherCoords collects every rank's projected points at root, sorted by
// global document ID — the final primary product the master process writes
// for the ThemeView visualization. Returns nil on non-root ranks.
func GatherCoords(c *cluster.Comm, proj *Projection, root int) []Point {
	flat := make([]float64, 0, 3*len(proj.Local))
	for _, p := range proj.Local {
		flat = append(flat, float64(p.Doc), p.X, p.Y)
	}
	parts := c.GatherFloat64s(root, flat)
	if parts == nil {
		return nil
	}
	// The coordinate file is corpus-proportional; charge its assembly at
	// the master like the bulk (scaled) data path.
	var totalBytes float64
	for _, part := range parts {
		totalBytes += float64(8 * len(part))
	}
	c.Clock().Advance(c.Model().OneSidedCost(totalBytes))
	var all []Point
	for _, part := range parts {
		for i := 0; i+2 < len(part); i += 3 {
			all = append(all, Point{Doc: int64(part[i]), X: part[i+1], Y: part[i+2]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Doc < all[b].Doc })
	return all
}
