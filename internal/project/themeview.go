package project

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Terrain is a ThemeView-style density landscape: documents deposit Gaussian
// mass onto a grid; mountains mark dominant themes, valleys weak ones
// (paper Figure 2).
type Terrain struct {
	W, H    int
	Density []float64 // row-major, H rows of W
	// MinX/MaxX/MinY/MaxY are the data bounds mapped onto the grid.
	MinX, MaxX, MinY, MaxY float64
	// Peaks are local maxima in descending height order.
	Peaks []Peak
}

// Peak is one local maximum of the terrain.
type Peak struct {
	GX, GY int     // grid cell
	X, Y   float64 // data coordinates of the cell center
	Height float64
}

// BuildTerrain rasterizes points into a w×h density grid with a Gaussian
// kernel whose standard deviation is sigmaCells grid cells (default 1.5 when
// zero). Points at the exact origin with zero density contribution (the
// null-signature bucket) still count: ThemeView renders everything.
func BuildTerrain(points []Point, w, h int, sigmaCells float64) *Terrain {
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	if sigmaCells <= 0 {
		sigmaCells = 1.5
	}
	t := &Terrain{W: w, H: h, Density: make([]float64, w*h)}
	if len(points) == 0 {
		return t
	}
	t.MinX, t.MaxX = math.Inf(1), math.Inf(-1)
	t.MinY, t.MaxY = math.Inf(1), math.Inf(-1)
	for _, p := range points {
		t.MinX = math.Min(t.MinX, p.X)
		t.MaxX = math.Max(t.MaxX, p.X)
		t.MinY = math.Min(t.MinY, p.Y)
		t.MaxY = math.Max(t.MaxY, p.Y)
	}
	if t.MaxX == t.MinX {
		t.MaxX = t.MinX + 1
	}
	if t.MaxY == t.MinY {
		t.MaxY = t.MinY + 1
	}
	sx := float64(w-1) / (t.MaxX - t.MinX)
	sy := float64(h-1) / (t.MaxY - t.MinY)
	radius := int(math.Ceil(3 * sigmaCells))
	inv2s2 := 1 / (2 * sigmaCells * sigmaCells)
	for _, p := range points {
		cx := (p.X - t.MinX) * sx
		cy := (p.Y - t.MinY) * sy
		gx0, gy0 := int(cx), int(cy)
		for gy := gy0 - radius; gy <= gy0+radius; gy++ {
			if gy < 0 || gy >= h {
				continue
			}
			for gx := gx0 - radius; gx <= gx0+radius; gx++ {
				if gx < 0 || gx >= w {
					continue
				}
				dx := float64(gx) - cx
				dy := float64(gy) - cy
				t.Density[gy*w+gx] += math.Exp(-(dx*dx + dy*dy) * inv2s2)
			}
		}
	}
	t.findPeaks()
	return t
}

// findPeaks locates strict local maxima (8-neighbourhood) above 10% of the
// global maximum.
func (t *Terrain) findPeaks() {
	var maxD float64
	for _, d := range t.Density {
		if d > maxD {
			maxD = d
		}
	}
	if maxD == 0 {
		return
	}
	threshold := 0.1 * maxD
	for gy := 0; gy < t.H; gy++ {
		for gx := 0; gx < t.W; gx++ {
			d := t.Density[gy*t.W+gx]
			if d < threshold {
				continue
			}
			isPeak := true
			for dy := -1; dy <= 1 && isPeak; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx, ny := gx+dx, gy+dy
					if nx < 0 || nx >= t.W || ny < 0 || ny >= t.H {
						continue
					}
					n := t.Density[ny*t.W+nx]
					if n > d || (n == d && (ny*t.W+nx) < (gy*t.W+gx)) {
						isPeak = false
						break
					}
				}
			}
			if isPeak {
				t.Peaks = append(t.Peaks, Peak{
					GX: gx, GY: gy,
					X:      t.MinX + float64(gx)*(t.MaxX-t.MinX)/float64(t.W-1),
					Y:      t.MinY + float64(gy)*(t.MaxY-t.MinY)/float64(t.H-1),
					Height: d,
				})
			}
		}
	}
	sort.Slice(t.Peaks, func(a, b int) bool {
		if t.Peaks[a].Height != t.Peaks[b].Height {
			return t.Peaks[a].Height > t.Peaks[b].Height
		}
		return t.Peaks[a].GY*t.W+t.Peaks[a].GX < t.Peaks[b].GY*t.W+t.Peaks[b].GX
	})
}

// shades ramp from valley to mountain.
var shades = []byte(" .:-=+*#%@")

// ASCII renders the terrain as a text landscape, highest rows first, for
// terminal inspection — the textual stand-in for the ThemeView rendering.
func (t *Terrain) ASCII() string {
	var maxD float64
	for _, d := range t.Density {
		if d > maxD {
			maxD = d
		}
	}
	var sb strings.Builder
	for gy := t.H - 1; gy >= 0; gy-- {
		for gx := 0; gx < t.W; gx++ {
			d := t.Density[gy*t.W+gx]
			idx := 0
			if maxD > 0 {
				idx = int(d / maxD * float64(len(shades)-1))
			}
			sb.WriteByte(shades[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String summarizes the terrain.
func (t *Terrain) String() string {
	return fmt.Sprintf("terrain %dx%d, %d peaks", t.W, t.H, len(t.Peaks))
}
