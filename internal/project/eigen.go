// Package project implements the paper's projection stage: principal
// component analysis over the cluster centroids (using the centroids as a
// representative sample of the document space, §3.5), projection of every
// document signature onto the two leading principal components, gathering of
// the 2-D coordinates at the master process, and the ThemeView terrain — the
// scale-independent landscape of themes rendered from the projected
// documents.
package project

import (
	"fmt"
	"math"
	"sort"
)

// JacobiEigen computes all eigenvalues and eigenvectors of the symmetric
// n×n matrix a (row-major; only read). It returns the eigenvalues in
// descending order with their unit eigenvectors as rows of vecs
// (vecs[k*n:(k+1)*n] is the k-th eigenvector). The cyclic Jacobi rotation
// method is used: robust, dependency-free, and plenty fast for the
// centroid-covariance sizes (M up to a few hundred) this engine produces.
func JacobiEigen(a []float64, n int) (vals []float64, vecs []float64, err error) {
	if len(a) != n*n {
		return nil, nil, fmt.Errorf("project: matrix is %d elements, want %d", len(a), n*n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i*n+j]-a[j*n+i]) > 1e-9*(1+math.Abs(a[i*n+j])) {
				return nil, nil, fmt.Errorf("project: matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Working copy and accumulated rotations (V starts as identity).
	w := make([]float64, n*n)
	copy(w, a)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w[i*n+j] * w[i*n+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w[p*n+p]
				aqq := w[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				rotate(w, v, n, p, q, cos, sin)
			}
		}
	}

	vals = make([]float64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		vals[i] = w[i*n+i]
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return vals[order[x]] > vals[order[y]] })
	outVals := make([]float64, n)
	outVecs := make([]float64, n*n)
	for k, idx := range order {
		outVals[k] = vals[idx]
		for i := 0; i < n; i++ {
			// V's columns are eigenvectors; emit them as rows.
			outVecs[k*n+i] = v[i*n+idx]
		}
	}
	return outVals, outVecs, nil
}

// rotate applies the Jacobi rotation (p, q, cos, sin) to w and accumulates
// it into v.
func rotate(w, v []float64, n, p, q int, cos, sin float64) {
	for i := 0; i < n; i++ {
		wip := w[i*n+p]
		wiq := w[i*n+q]
		w[i*n+p] = cos*wip - sin*wiq
		w[i*n+q] = sin*wip + cos*wiq
	}
	for j := 0; j < n; j++ {
		wpj := w[p*n+j]
		wqj := w[q*n+j]
		w[p*n+j] = cos*wpj - sin*wqj
		w[q*n+j] = sin*wpj + cos*wqj
	}
	for i := 0; i < n; i++ {
		vip := v[i*n+p]
		viq := v[i*n+q]
		v[i*n+p] = cos*vip - sin*viq
		v[i*n+q] = sin*vip + cos*viq
	}
}
