package project

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"inspire/internal/cluster"
	"inspire/internal/simtime"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, 7, 0,
		0, 0, 1,
	}
	vals, vecs, err := JacobiEigen(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals=%v want %v", vals, want)
		}
	}
	// Leading eigenvector is e2 (up to sign).
	if math.Abs(math.Abs(vecs[1])-1) > 1e-10 {
		t.Fatalf("leading vec %v", vecs[:3])
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	vals, vecs, err := JacobiEigen([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("vals=%v", vals)
	}
	// Leading eigenvector ~ (1,1)/sqrt2.
	s := 1 / math.Sqrt2
	if math.Abs(math.Abs(vecs[0])-s) > 1e-9 || math.Abs(math.Abs(vecs[1])-s) > 1e-9 {
		t.Fatalf("vecs=%v", vecs[:2])
	}
}

func TestJacobiEigenErrors(t *testing.T) {
	if _, _, err := JacobiEigen([]float64{1, 2}, 2); err == nil {
		t.Fatal("wrong size should error")
	}
	if _, _, err := JacobiEigen([]float64{1, 2, 3, 4}, 2); err == nil {
		t.Fatal("asymmetric should error")
	}
}

// randSymmetric builds a random symmetric matrix.
func randSymmetric(n int, rng *rand.Rand) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return a
}

func TestJacobiEigenProperties(t *testing.T) {
	// For random symmetric matrices: A v_k = λ_k v_k, vectors orthonormal,
	// trace preserved.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 2
		rng := rand.New(rand.NewSource(seed))
		a := randSymmetric(n, rng)
		vals, vecs, err := JacobiEigen(a, n)
		if err != nil {
			return false
		}
		// Trace.
		var trA, trL float64
		for i := 0; i < n; i++ {
			trA += a[i*n+i]
			trL += vals[i]
		}
		if math.Abs(trA-trL) > 1e-8*(1+math.Abs(trA)) {
			return false
		}
		// Residuals and orthonormality.
		for k := 0; k < n; k++ {
			v := vecs[k*n : (k+1)*n]
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += a[i*n+j] * v[j]
				}
				if math.Abs(av-vals[k]*v[i]) > 1e-7 {
					return false
				}
			}
			for l := 0; l <= k; l++ {
				w := vecs[l*n : (l+1)*n]
				var dot float64
				for i := range v {
					dot += v[i] * w[i]
				}
				want := 0.0
				if l == k {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					return false
				}
			}
		}
		// Descending order.
		for k := 1; k < n; k++ {
			if vals[k] > vals[k-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPCAOnPlanarCentroids(t *testing.T) {
	// Centroids on a line in 5-D: PC1 captures all variance.
	centroids := [][]float64{}
	dir := []float64{1, 2, 0, -1, 3}
	for i := -2; i <= 2; i++ {
		c := make([]float64, 5)
		for d := range c {
			c[d] = float64(i) * dir[d]
		}
		centroids = append(centroids, c)
	}
	mean, pc1, pc2, eig, err := PCA(centroids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mean {
		if math.Abs(m) > 1e-12 {
			t.Fatalf("mean not zero: %v", mean)
		}
	}
	if eig[0] <= 0 {
		t.Fatalf("no variance captured: %v", eig)
	}
	if eig[1] > 1e-10 {
		t.Fatalf("second PC should be ~0 for collinear centroids: %v", eig)
	}
	// PC1 parallel to dir.
	norm := math.Sqrt(1 + 4 + 0 + 1 + 9)
	for d := range dir {
		if math.Abs(math.Abs(pc1[d])-math.Abs(dir[d])/norm) > 1e-9 {
			t.Fatalf("pc1=%v not parallel to %v", pc1, dir)
		}
	}
	_ = pc2
}

func TestPCAWeighted(t *testing.T) {
	// Heavy weight on two x-axis centroids pulls PC1 to the x axis.
	centroids := [][]float64{{10, 0}, {-10, 0}, {0, 1}, {0, -1}}
	sizes := []int64{100, 100, 1, 1}
	_, pc1, _, _, err := PCA(centroids, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(pc1[0])-1) > 1e-6 {
		t.Fatalf("pc1=%v should align with x", pc1)
	}
}

func TestPCAErrorsOnEmpty(t *testing.T) {
	if _, _, _, _, err := PCA(nil, nil); err == nil {
		t.Fatal("no centroids should error")
	}
}

func TestProjectPreservesSeparation(t *testing.T) {
	// Two far-apart groups in 4-D stay separated in 2-D.
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		var vecs [][]float64
		var ids []int64
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		for i := 0; i < 40; i++ {
			v := make([]float64, 4)
			base := 0.0
			if i%2 == 1 {
				base = 20
			}
			for d := range v {
				v[d] = base + rng.NormFloat64()*0.1
			}
			vecs = append(vecs, v)
			ids = append(ids, int64(c.Rank()*1000+i))
		}
		centroids := [][]float64{{0, 0, 0, 0}, {20, 20, 20, 20}}
		sizes := []int64{40, 40}
		proj, err := Project(c, vecs, ids, centroids, sizes)
		if err != nil {
			return err
		}
		for i, pt := range proj.Local {
			other := proj.Local[(i+1)%len(proj.Local)]
			sameGroup := i%2 == (i+1)%2
			_ = sameGroup
			_ = other
			_ = pt
		}
		// Group means differ strongly along PC1.
		var m0, m1 float64
		for i, pt := range proj.Local {
			if i%2 == 0 {
				m0 += pt.X
			} else {
				m1 += pt.X
			}
		}
		m0 /= 20
		m1 /= 20
		if math.Abs(m0-m1) < 10 {
			return fmt.Errorf("groups collapsed: %g vs %g", m0, m1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCoordsSortedComplete(t *testing.T) {
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		proj := &Projection{}
		for i := 0; i < 5; i++ {
			proj.Local = append(proj.Local, Point{
				Doc: int64(c.Rank() + 3*i), X: float64(c.Rank()), Y: float64(i),
			})
		}
		all := GatherCoords(c, proj, 0)
		if c.Rank() != 0 {
			if all != nil {
				return fmt.Errorf("non-root got coords")
			}
			return nil
		}
		if len(all) != 15 {
			return fmt.Errorf("%d coords", len(all))
		}
		for i, pt := range all {
			if pt.Doc != int64(i) {
				return fmt.Errorf("coords unsorted: %v at %d", pt.Doc, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNullSignaturesProjectToOrigin(t *testing.T) {
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		vecs := [][]float64{{1, 2}, nil, {3, 4}}
		ids := []int64{0, 1, 2}
		proj, err := Project(c, vecs, ids, [][]float64{{1, 2}, {3, 4}}, []int64{1, 1})
		if err != nil {
			return err
		}
		if proj.Local[1].X != 0 || proj.Local[1].Y != 0 {
			return fmt.Errorf("null signature not at origin: %+v", proj.Local[1])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTerrainDensityAndPeaks(t *testing.T) {
	// Two tight clusters of points produce two dominant peaks.
	var pts []Point
	for i := 0; i < 50; i++ {
		pts = append(pts, Point{Doc: int64(i), X: 0 + 0.01*float64(i%5), Y: 0})
		pts = append(pts, Point{Doc: int64(100 + i), X: 10 + 0.01*float64(i%5), Y: 10})
	}
	tr := BuildTerrain(pts, 40, 20, 1.0)
	if len(tr.Peaks) < 2 {
		t.Fatalf("found %d peaks, want >= 2", len(tr.Peaks))
	}
	// The two strongest peaks are far apart (one per cluster).
	a, b := tr.Peaks[0], tr.Peaks[1]
	dx, dy := a.X-b.X, a.Y-b.Y
	if math.Sqrt(dx*dx+dy*dy) < 5 {
		t.Fatalf("top peaks too close: %+v %+v", a, b)
	}
	// Density non-negative, max at a peak.
	var maxD float64
	for _, d := range tr.Density {
		if d < 0 {
			t.Fatal("negative density")
		}
		if d > maxD {
			maxD = d
		}
	}
	if tr.Peaks[0].Height != maxD {
		t.Fatalf("strongest peak %g != max density %g", tr.Peaks[0].Height, maxD)
	}
}

func TestTerrainEmptyAndDegenerate(t *testing.T) {
	tr := BuildTerrain(nil, 10, 10, 0)
	if len(tr.Peaks) != 0 {
		t.Fatal("peaks from no points")
	}
	if tr.ASCII() == "" {
		t.Fatal("ascii render empty")
	}
	// All points identical: still renders.
	same := []Point{{Doc: 0, X: 5, Y: 5}, {Doc: 1, X: 5, Y: 5}}
	tr2 := BuildTerrain(same, 8, 8, 0)
	if len(tr2.Peaks) == 0 {
		t.Fatal("degenerate cloud should still peak")
	}
	if tr2.String() == "" {
		t.Fatal("String() empty")
	}
	// Tiny grid clamps.
	tr3 := BuildTerrain(same, 1, 1, 0)
	if tr3.W < 2 || tr3.H < 2 {
		t.Fatal("grid not clamped")
	}
}

func TestTerrainASCIIShades(t *testing.T) {
	pts := []Point{{Doc: 0, X: 0, Y: 0}}
	tr := BuildTerrain(pts, 12, 6, 1)
	art := tr.ASCII()
	lines := 0
	for _, ch := range art {
		if ch == '\n' {
			lines++
		}
	}
	if lines != 6 {
		t.Fatalf("ascii has %d lines, want 6", lines)
	}
	// Max shade appears exactly where the point is.
	found := false
	for _, ch := range art {
		if ch == '@' {
			found = true
		}
	}
	if !found {
		t.Fatal("peak shade missing")
	}
}

func TestCanonicalSignDeterminism(t *testing.T) {
	// PCA of the same data repeated gives identical components.
	centroids := [][]float64{{1, 2, 3}, {4, 0, 1}, {-2, 5, 0}, {0, 0, 7}}
	_, a1, a2, _, err := PCA(centroids, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, b1, b2, _, err := PCA(centroids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != b1[i] || a2[i] != b2[i] {
			t.Fatal("PCA not deterministic")
		}
	}
	// Largest-magnitude coefficient is positive.
	maxAbs, maxIdx := 0.0, 0
	for i, x := range a1 {
		if math.Abs(x) > maxAbs {
			maxAbs, maxIdx = math.Abs(x), i
		}
	}
	if a1[maxIdx] < 0 {
		t.Fatal("sign not canonical")
	}
}
