package bench

import (
	"encoding/json"
	"fmt"
	"os"

	"inspire/internal/serve"
)

// The CI bench-regression gate: every run writes CIMetrics as JSON
// (cmd/benchfig -ci), and cmd/benchgate fails the job when the fresh numbers
// regress past these thresholds against the committed baseline
// (BENCH_BASELINE.json). The gated quantities are virtual — modeled on the
// paper's cluster, independent of the host and of runner noise — so the
// thresholds can be tight without flaking.
const (
	// GateMaxQPSDrop fails the gate when serving throughput falls more than
	// this fraction below the baseline.
	GateMaxQPSDrop = 0.15
	// GateMinCompression is the absolute floor on the posting compression
	// ratio (PR 2's headline claim).
	GateMinCompression = 2.5
	// GateMinShardSpeedup is the absolute floor on the 4-shard throughput
	// scaling over the monolithic server (PR 3's headline claim).
	GateMinShardSpeedup = 1.5
	// GateMaxIngestDrop fails the gate when modeled ingest throughput falls
	// more than this fraction below the baseline.
	GateMaxIngestDrop = 0.15
	// GateMaxIngestP95Ratio is the absolute ceiling on query p95 latency
	// under concurrent ingestion relative to the idle baseline (the live-
	// ingestion PR's headline claim: queries keep serving while documents
	// stream in).
	GateMaxIngestP95Ratio = 2.0
	// GateMinTileSpeedup is the absolute floor on viewport rendering
	// throughput via the Galaxy tile pyramid over naive full-point Near
	// scans (the tile PR's headline claim).
	GateMinTileSpeedup = 3.0
	// GateMaxTileP95Ratio is the absolute ceiling on tile-rendering p95
	// latency under concurrent ingestion relative to idle tile serving.
	GateMaxTileP95Ratio = 2.5
)

// CIMetrics are the gated quantities of one bench run.
type CIMetrics struct {
	Scale float64 `json:"scale"`

	// ServingVirtualQPS is the modeled throughput of one deterministic
	// analyst session against the monolithic server, cold caches.
	ServingVirtualQPS float64 `json:"serving_virtual_qps"`
	// ShardedVirtualQPS4 is the same stream through a 4-shard Router.
	ShardedVirtualQPS4 float64 `json:"sharded_virtual_qps_4"`
	// ShardingSpeedup4x is their ratio.
	ShardingSpeedup4x float64 `json:"sharding_speedup_4x"`
	// CompressionRatio is flat posting bytes over block-compressed bytes.
	CompressionRatio float64 `json:"compression_ratio"`
	// IngestVirtualDPS is the modeled live-ingestion throughput: documents
	// per virtual second of add latency (tokenize + project + append +
	// amortized seals) in the deterministic interleaved stream.
	IngestVirtualDPS float64 `json:"ingest_virtual_dps"`
	// IngestQueryP95Ratio is query p95 latency with concurrent ingestion
	// over the idle p95 — how much serving degrades while documents stream
	// in.
	IngestQueryP95Ratio float64 `json:"ingest_query_p95_ratio"`
	// TileVirtualQPS is the modeled throughput of the deterministic
	// viewport render walk served from the Galaxy tile pyramid.
	TileVirtualQPS float64 `json:"tile_virtual_qps"`
	// TileSpeedupVsScan is TileVirtualQPS over the same walk rendered by
	// naive full-point Near scans.
	TileSpeedupVsScan float64 `json:"tile_speedup_vs_scan"`
	// TileIngestP95Ratio is tile-rendering p95 latency under concurrent
	// ingestion over the idle tile p95.
	TileIngestP95Ratio float64 `json:"tile_ingest_p95_ratio"`
}

// ciWorkload is the deterministic gate workload: a single session's stream
// is free of interleaving effects, so its virtual account reproduces exactly
// on any host.
var ciWorkload = serve.WorkloadConfig{Sessions: 1, OpsPerSession: 400, Seed: 1}

// CollectCI measures the gated metrics at the given scale.
func CollectCI(scale float64) (*CIMetrics, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	if !st.Compressed() {
		return nil, fmt.Errorf("bench: serving snapshot is not compressed")
	}
	m := &CIMetrics{Scale: scale}

	var totalPostings int64
	for _, n := range st.DF {
		totalPostings += n
	}
	m.CompressionRatio = 16 * float64(totalPostings) / float64(st.Posts.SizeBytes())

	for _, n := range []int{1, 4} {
		svc, err := ShardedService(st, n)
		if err != nil {
			return nil, err
		}
		rep, err := serve.Replay(svc, ciWorkload)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			m.ServingVirtualQPS = rep.VirtualQPS
		} else {
			m.ShardedVirtualQPS4 = rep.VirtualQPS
		}
	}
	if m.ServingVirtualQPS > 0 {
		m.ShardingSpeedup4x = m.ShardedVirtualQPS4 / m.ServingVirtualQPS
	}
	if m.IngestVirtualDPS, m.IngestQueryP95Ratio, err = CollectIngestCI(scale); err != nil {
		return nil, err
	}
	if m.TileVirtualQPS, m.TileSpeedupVsScan, m.TileIngestP95Ratio, err = CollectTileCI(scale); err != nil {
		return nil, err
	}
	return m, nil
}

// Gate compares fresh metrics against a baseline and returns the violations,
// empty when the gate passes.
func (m *CIMetrics) Gate(baseline *CIMetrics) []string {
	var out []string
	if floor := (1 - GateMaxQPSDrop) * baseline.ServingVirtualQPS; m.ServingVirtualQPS < floor {
		out = append(out, fmt.Sprintf("serving throughput %.0f virtual qps is >%.0f%% below the baseline %.0f",
			m.ServingVirtualQPS, 100*GateMaxQPSDrop, baseline.ServingVirtualQPS))
	}
	if floor := (1 - GateMaxQPSDrop) * baseline.ShardedVirtualQPS4; m.ShardedVirtualQPS4 < floor {
		out = append(out, fmt.Sprintf("4-shard throughput %.0f virtual qps is >%.0f%% below the baseline %.0f",
			m.ShardedVirtualQPS4, 100*GateMaxQPSDrop, baseline.ShardedVirtualQPS4))
	}
	if m.CompressionRatio < GateMinCompression {
		out = append(out, fmt.Sprintf("posting compression ratio %.2fx is below the gated %.1fx",
			m.CompressionRatio, GateMinCompression))
	}
	if m.ShardingSpeedup4x < GateMinShardSpeedup {
		out = append(out, fmt.Sprintf("4-shard speedup %.2fx is below the gated %.1fx",
			m.ShardingSpeedup4x, GateMinShardSpeedup))
	}
	if floor := (1 - GateMaxIngestDrop) * baseline.IngestVirtualDPS; m.IngestVirtualDPS < floor {
		out = append(out, fmt.Sprintf("ingest throughput %.0f virtual docs/sec is >%.0f%% below the baseline %.0f",
			m.IngestVirtualDPS, 100*GateMaxIngestDrop, baseline.IngestVirtualDPS))
	}
	if m.IngestQueryP95Ratio > GateMaxIngestP95Ratio {
		out = append(out, fmt.Sprintf("query p95 under ingest is %.2fx idle, above the gated %.1fx",
			m.IngestQueryP95Ratio, GateMaxIngestP95Ratio))
	}
	if floor := (1 - GateMaxQPSDrop) * baseline.TileVirtualQPS; m.TileVirtualQPS < floor {
		out = append(out, fmt.Sprintf("tile serving %.0f virtual qps is >%.0f%% below the baseline %.0f",
			m.TileVirtualQPS, 100*GateMaxQPSDrop, baseline.TileVirtualQPS))
	}
	if m.TileSpeedupVsScan < GateMinTileSpeedup {
		out = append(out, fmt.Sprintf("tile rendering speedup %.2fx over full-point scans is below the gated %.1fx",
			m.TileSpeedupVsScan, GateMinTileSpeedup))
	}
	if m.TileIngestP95Ratio > GateMaxTileP95Ratio {
		out = append(out, fmt.Sprintf("tile p95 under ingest is %.2fx idle, above the gated %.1fx",
			m.TileIngestP95Ratio, GateMaxTileP95Ratio))
	}
	return out
}

// WriteJSON persists the metrics for the gate step.
func (m *CIMetrics) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCIMetrics loads a metrics file written by WriteJSON.
func ReadCIMetrics(path string) (*CIMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &CIMetrics{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("bench: metrics %s: %w", path, err)
	}
	return m, nil
}
