package bench

import (
	"bytes"
	"context"
	"fmt"

	"inspire/internal/serve"
)

// andPairs builds the deterministic conjunction workload of the compression
// figure: head×head, head×tail and three-term conjunctions over the store's
// query vocabulary, the mix an analyst's drill-downs produce.
func andPairs(st *serve.Store) [][]string {
	terms := st.TopTerms(96)
	if len(terms) < 4 {
		return nil
	}
	var qs [][]string
	n := len(terms)
	for i := 0; i < 32 && i+1 < n; i++ {
		qs = append(qs, []string{terms[i], terms[i+1]})                     // head×head
		qs = append(qs, []string{terms[i], terms[n-1-i]})                   // head×tail
		qs = append(qs, []string{terms[i], terms[(i+n/2)%n], terms[n-1-i]}) // 3-term
	}
	return qs
}

// andLatency replays the conjunction workload against a cold server over the
// store and returns the mean and max modeled per-interaction latency (ms).
func andLatency(st *serve.Store, qs [][]string) (meanMS, maxMS float64, err error) {
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		return 0, 0, err
	}
	ctx := context.Background()
	sess := srv.NewSession()
	for _, q := range qs {
		sess.And(ctx, q...)
	}
	s := sess.Stats()
	return s.MeanMS, s.MaxMS, nil
}

// storeFileBytes measures the persisted store size (magic + gob body)
// without retaining the encoding.
func storeFileBytes(st *serve.Store) (int64, error) {
	var n countingWriter
	if err := st.Save(&n); err != nil {
		return 0, err
	}
	return int64(n), nil
}

// countingWriter discards writes, keeping only the byte count.
type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

// FigS2 regenerates the posting-store compression figure: the same snapshot
// served from the flat int64 layout (INSPSTORE1) and from the block-coded
// delta+varint layout with skip directory (INSPSTORE2), comparing resident
// posting bytes, persisted file bytes, and the modeled latency of a cold
// conjunction workload. The figure also round-trips a v1 file through the
// compatibility loader so the format claim is exercised every regeneration.
func FigS2(scale float64) ([]*Figure, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	if !st.Compressed() {
		return nil, fmt.Errorf("bench: serving snapshot is not compressed")
	}
	flat := st.FlatCopy()

	var totalPostings int64
	for _, n := range st.DF {
		totalPostings += n
	}
	flatPostBytes := 16 * totalPostings // PostDoc + PostFreq, 8 bytes each
	compPostBytes := st.Posts.SizeBytes()

	// The flat save doubles as the v1 fixture: the file the previous build's
	// format would hold must load and validate through the compatibility
	// loader.
	var v1 bytes.Buffer
	if err := flat.Save(&v1); err != nil {
		return nil, err
	}
	flatFile := int64(v1.Len())
	if _, err := serve.LoadStore(bytes.NewReader(v1.Bytes())); err != nil {
		return nil, fmt.Errorf("bench: v1 store failed the compatibility loader: %w", err)
	}
	compFile, err := storeFileBytes(st)
	if err != nil {
		return nil, err
	}

	qs := andPairs(st)
	flatMean, flatMax, err := andLatency(flat, qs)
	if err != nil {
		return nil, err
	}
	compMean, compMax, err := andLatency(st, qs)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID: "Fig S2",
		Title: fmt.Sprintf("%s: posting store, flat int64 vs block-compressed (delta+varint, %d postings)",
			PubMedSpecs(scale)[0], totalPostings),
		XLabel: "layout",
		YLabel: "posting MB (resident), store file MB, And latency (virtual ms over cold conjunctions)",
		X:      []string{"flat (v1)", "compressed (v2)"},
	}
	const mb = 1 << 20
	fig.AddSeries("posting MB", []float64{float64(flatPostBytes) / mb, float64(compPostBytes) / mb})
	fig.AddSeries("bytes/posting", []float64{
		float64(flatPostBytes) / float64(totalPostings),
		float64(compPostBytes) / float64(totalPostings)})
	fig.AddSeries("file MB", []float64{float64(flatFile) / mb, float64(compFile) / mb})
	fig.AddSeries("And mean ms", []float64{flatMean, compMean})
	fig.AddSeries("And max ms", []float64{flatMax, compMax})
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("compression ratio %.2fx on posting structures, %.2fx on the persisted file; And mean %.2fx",
			float64(flatPostBytes)/float64(compPostBytes),
			float64(flatFile)/float64(compFile),
			flatMean/compMean),
		"the compressed path moves block-coded bytes on misses and intersects larger terms straight off the",
		"skip directory, so the conjunction workload transfers less and never decodes ruled-out blocks",
		"(v1 file round-tripped through the compatibility loader this regeneration)")
	return []*Figure{fig}, nil
}
