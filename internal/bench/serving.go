package bench

import (
	"fmt"
	"sync"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/serve"
)

// servingStoreCache memoizes the snapshotted run behind the serving figure,
// shared with the benchmark smoke tests.
var servingStoreCache = struct {
	sync.Mutex
	m map[string]*serve.Store
}{m: make(map[string]*serve.Store)}

// ServingStore indexes the smallest PubMed dataset once at P ranks and
// returns its serving snapshot (cached per scale).
func ServingStore(scale float64, p int) (*serve.Store, error) {
	spec := PubMedSpecs(scale)[0]
	key := fmt.Sprintf("%s|%g|%d", spec, scale, p)
	servingStoreCache.Lock()
	st, ok := servingStoreCache.m[key]
	servingStoreCache.Unlock()
	if ok {
		return st, nil
	}
	sources := spec.Generate()
	w, err := cluster.NewWorld(p, spec.Model())
	if err != nil {
		return nil, err
	}
	err = w.Run(func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("bench: serving store %s p=%d: %w", spec, p, err)
	}
	servingStoreCache.Lock()
	servingStoreCache.m[key] = st
	servingStoreCache.Unlock()
	return st, nil
}

// ServingSessionCounts are the x axis of the throughput-vs-sessions figure.
var ServingSessionCounts = []int{1, 2, 4, 8, 16}

// servingOpsPerSession keeps total work meaningful while each point stays
// sub-second at default scale.
const servingOpsPerSession = 200

// FigS1 regenerates the serving figure: one pipeline run is snapshotted and
// served to growing numbers of concurrent analyst sessions; each point
// replays the same seeded mixed workload against a cold-cache server and
// reports sustained host throughput, posting-cache effectiveness and the
// modeled per-interaction latency.
func FigS1(scale float64) ([]*Figure, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Fig S1",
		Title:  fmt.Sprintf("%s: serving a mixed analyst workload, throughput vs concurrent sessions", PubMedSpecs(scale)[0]),
		XLabel: "sessions",
		YLabel: "queries/sec (host), hit rate (%), virtual latency (ms)",
	}
	var qps, hit, virt, coal []float64
	for _, n := range ServingSessionCounts {
		fig.X = append(fig.X, fmt.Sprintf("N=%d", n))
		srv, err := serve.NewServer(st, serve.Config{})
		if err != nil {
			return nil, err
		}
		rep, err := serve.Replay(srv, serve.WorkloadConfig{
			Sessions:      n,
			OpsPerSession: servingOpsPerSession,
			Seed:          1,
		})
		if err != nil {
			return nil, err
		}
		qps = append(qps, rep.QPS)
		hit = append(hit, 100*rep.Stats.PostingHitRate())
		virt = append(virt, rep.MeanVirtualMS)
		coal = append(coal, float64(rep.Stats.Coalesced))
	}
	fig.AddSeries("host qps", qps)
	fig.AddSeries("post hit %", hit)
	fig.AddSeries("mean virt ms", virt)
	fig.AddSeries("coalesced", coal)
	fig.Notes = append(fig.Notes,
		"each point replays the same seeded workload against cold caches; more sessions share one store,",
		"so hit rates rise with concurrency while mean modeled latency falls — the serving layer's win over",
		"re-running collective queries per analyst")
	return []*Figure{fig}, nil
}
