package bench

import (
	"fmt"
	"strings"
)

// Series is one curve of a figure: a name and y-values over the shared
// x-values of the figure.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one regenerated paper figure as a text table.
type Figure struct {
	ID     string // e.g. "Fig 6a"
	Title  string
	XLabel string
	YLabel string
	X      []string // row labels (usually processor counts)
	Series []Series
	Notes  []string
}

// AddSeries appends a curve.
func (f *Figure) AddSeries(name string, y []float64) {
	f.Series = append(f.Series, Series{Name: name, Y: y})
}

// Render produces an aligned text table: one row per x value, one column per
// series — the same data layout the paper's plots encode.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "  y: %s\n", f.YLabel)
	// Header.
	fmt.Fprintf(&sb, "  %-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %14s", s.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "  %-14s", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, " %14.2f", s.Y[i])
			} else {
				fmt.Fprintf(&sb, " %14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// psLabels renders processor counts as row labels.
func psLabels(ps []int) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("P=%d", p)
	}
	return out
}
