package bench

import (
	"fmt"
	"sync"

	"inspire/internal/core"
	"inspire/internal/invert"
	"inspire/internal/simtime"
)

// Experiment ties a figure identifier to its generator.
type Experiment struct {
	ID       string
	Describe string
	Run      func(scale float64) ([]*Figure, error)
}

// Experiments lists every regenerable table/figure of the evaluation.
var Experiments = []Experiment{
	{"5", "Overall wall clock (minutes) vs processors, PubMed and TREC, 3 sizes each", Fig5},
	{"6a", "PubMed overall speedup, 3 sizes", Fig6a},
	{"6b", "PubMed 2.75 GB: % time per component vs processors", Fig6b},
	{"7a", "TREC overall speedup, 3 sizes", Fig7a},
	{"7b", "TREC 1 GB: % time per component vs processors", Fig7b},
	{"8", "Per-component speedups, PubMed and TREC, 3 sizes each", Fig8},
	{"9", "Indexing dynamic load balancing vs static partitioning", Fig9},
	{"A1", "Ablation: GA atomic task queue vs master-worker dispatcher", FigA1},
	{"A2", "Ablation: static vs adaptive signature dimensionality", FigA2},
	{"A3", "Ablation: scanning under ideal vs NFS vs Lustre storage", FigA3},
	{"S1", "Serving: query throughput and cache effectiveness vs concurrent sessions", FigS1},
	{"S2", "Serving: posting store bytes and And latency, flat vs block-compressed", FigS2},
	{"S3", "Serving: sharded scatter-gather throughput and tail latency vs shard count", FigS3},
	{"S4", "Serving: query tail latency under live ingestion; refresh lag vs seal threshold", FigS4},
	{"S5", "Serving: Galaxy viewport rendering, tile pyramid vs naive full-point scans, idle and under ingest", FigS5},
}

// FindExperiment resolves an experiment by ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sweepCache memoizes overall sweeps: Figures 5, 6a, 7a and 8 all derive
// from the same runs, so regenerating every figure costs one sweep per
// dataset rather than four.
var sweepCache = struct {
	sync.Mutex
	m map[string]*Sweep
}{m: make(map[string]*Sweep)}

// overallSweeps runs the dataset family across PaperPs, reusing one cached
// sweep per dataset.
func overallSweeps(scale float64, specs []DatasetSpec) ([]*Sweep, error) {
	sweeps := make([]*Sweep, 0, len(specs))
	for _, spec := range specs {
		key := fmt.Sprintf("%s|%g", spec, scale)
		sweepCache.Lock()
		sw, ok := sweepCache.m[key]
		sweepCache.Unlock()
		if !ok {
			var err error
			sw, err = RunSweep(spec, PaperPs, core.Config{})
			if err != nil {
				return nil, err
			}
			sweepCache.Lock()
			sweepCache.m[key] = sw
			sweepCache.Unlock()
		}
		sweeps = append(sweeps, sw)
	}
	return sweeps, nil
}

// Fig5 regenerates the overall wall-clock figure: virtual minutes vs
// processors for the three sizes of each dataset family.
func Fig5(scale float64) ([]*Figure, error) {
	var out []*Figure
	for _, specs := range [][]DatasetSpec{PubMedSpecs(scale), TRECSpecs(scale)} {
		sweeps, err := overallSweeps(scale, specs)
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			ID:     "Fig 5 (" + specs[0].Family + ")",
			Title:  specs[0].Family + " overall timings",
			XLabel: "processors",
			YLabel: "wall clock (modeled minutes)",
			X:      psLabels(PaperPs),
		}
		for _, sw := range sweeps {
			y := make([]float64, len(PaperPs))
			for i, p := range PaperPs {
				y[i] = sw.TotalMinutes(p)
			}
			fig.AddSeries(sw.Spec.Name, y)
		}
		if specs[0].Family == "Pubmed" {
			fig.Notes = append(fig.Notes,
				"largest size at small P exceeds per-processor memory; the model's pressure penalty reproduces the paper's off-trend point")
		}
		out = append(out, fig)
	}
	return out, nil
}

// speedupFigure builds a speedup figure from sweeps.
func speedupFigure(id, family string, sweeps []*Sweep) *Figure {
	fig := &Figure{
		ID:     id,
		Title:  family + " overall performance (speedup, normalized to 4 processors)",
		XLabel: "processors",
		YLabel: "speedup",
		X:      psLabels(PaperPs),
	}
	for _, sw := range sweeps {
		y := make([]float64, len(PaperPs))
		for i, p := range PaperPs {
			y[i] = sw.Speedup(p)
		}
		fig.AddSeries(sw.Spec.Name, y)
	}
	fig.Notes = append(fig.Notes,
		"speedups are drawn on the compute-bound trend: the oversized-run memory penalty stays in Figure 5's wall clock, as in the paper")
	return fig
}

// Fig6a regenerates the PubMed speedup figure.
func Fig6a(scale float64) ([]*Figure, error) {
	sweeps, err := overallSweeps(scale, PubMedSpecs(scale))
	if err != nil {
		return nil, err
	}
	return []*Figure{speedupFigure("Fig 6a", "Pubmed", sweeps)}, nil
}

// Fig7a regenerates the TREC speedup figure.
func Fig7a(scale float64) ([]*Figure, error) {
	sweeps, err := overallSweeps(scale, TRECSpecs(scale))
	if err != nil {
		return nil, err
	}
	return []*Figure{speedupFigure("Fig 7a", "TREC", sweeps)}, nil
}

// componentPercent builds the %-time-per-component figure for one dataset.
func componentPercent(id string, spec DatasetSpec) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  spec.String() + ": time percentage in components",
		XLabel: "component",
		YLabel: "percent of total time",
		X:      core.Components,
	}
	sources := spec.Generate()
	for _, p := range ComponentPs {
		sum, err := core.RunStandalone(p, spec.Model(), sources, core.Config{})
		if err != nil {
			return nil, err
		}
		pct := sum.Breakdown.Percentages()
		y := make([]float64, len(core.Components))
		for i, comp := range core.Components {
			y[i] = pct[comp]
		}
		fig.AddSeries(fmt.Sprintf("%d-procs", p), y)
	}
	fig.Notes = append(fig.Notes,
		"paper: shares stay stable as P grows except topic, whose allreduce communication does not scale")
	return fig, nil
}

// Fig6b regenerates the PubMed component-percentage figure (2.75 GB).
func Fig6b(scale float64) ([]*Figure, error) {
	fig, err := componentPercent("Fig 6b", PubMedSpecs(scale)[0])
	if err != nil {
		return nil, err
	}
	return []*Figure{fig}, nil
}

// Fig7b regenerates the TREC component-percentage figure (1 GB).
func Fig7b(scale float64) ([]*Figure, error) {
	fig, err := componentPercent("Fig 7b", TRECSpecs(scale)[0])
	if err != nil {
		return nil, err
	}
	return []*Figure{fig}, nil
}

// Fig8 regenerates the eight per-component speedup panels: scanning,
// indexing, signature generation, clustering & projection for each family's
// three sizes.
func Fig8(scale float64) ([]*Figure, error) {
	panels := []struct {
		title string
		eval  func(sw *Sweep, p int) float64
	}{
		{"Scanning", func(sw *Sweep, p int) float64 { return sw.ComponentSpeedup(p, core.CompScan) }},
		{"Indexing", func(sw *Sweep, p int) float64 { return sw.ComponentSpeedup(p, core.CompIndex) }},
		{"Signature Generation", func(sw *Sweep, p int) float64 { return sw.SignatureGenSpeedup(p) }},
		{"Clustering & Projections", func(sw *Sweep, p int) float64 { return sw.ComponentSpeedup(p, core.CompClusProj) }},
	}
	var out []*Figure
	for _, specs := range [][]DatasetSpec{PubMedSpecs(scale), TRECSpecs(scale)} {
		sweeps, err := overallSweeps(scale, specs)
		if err != nil {
			return nil, err
		}
		for _, panel := range panels {
			fig := &Figure{
				ID:     "Fig 8 (" + specs[0].Family + ", " + panel.title + ")",
				Title:  panel.title + " speedup",
				XLabel: "processors",
				YLabel: "speedup",
				X:      psLabels(PaperPs),
			}
			for _, sw := range sweeps {
				y := make([]float64, len(PaperPs))
				for i, p := range PaperPs {
					y[i] = panel.eval(sw, p)
				}
				fig.AddSeries(sw.Spec.Name, y)
			}
			out = append(out, fig)
		}
	}
	return out, nil
}

// Fig9 regenerates the load-balancing effectiveness figure: indexing time
// and per-process imbalance under the paper's GA atomic task queue versus
// static partitioning.
func Fig9(scale float64) ([]*Figure, error) {
	// The GOV2-style dataset ships as a fixed set of large, uneven bundle
	// files; static source partitioning cannot balance them across many
	// processors, which is exactly the imbalance §3.3 addresses.
	spec := TRECSpecs(scale)[1]
	spec.Sources = 24
	sources := spec.Generate()
	timeFig := &Figure{
		ID:     "Fig 9 (indexing time)",
		Title:  spec.String() + ": indexing wall clock, dynamic vs static",
		XLabel: "processors",
		YLabel: "indexing time (modeled minutes)",
		X:      psLabels(ComponentPs),
	}
	balFig := &Figure{
		ID:     "Fig 9 (balance)",
		Title:  spec.String() + ": indexing imbalance (max/mean per-process time)",
		XLabel: "processors",
		YLabel: "imbalance ratio (1.0 = perfect)",
		X:      psLabels(ComponentPs),
	}
	for _, strat := range []invert.Strategy{invert.DynamicGA, invert.Static} {
		var times, bals []float64
		for _, p := range ComponentPs {
			sum, err := core.RunStandalone(p, spec.Model(), sources, core.Config{Strategy: strat})
			if err != nil {
				return nil, err
			}
			times = append(times, sum.ComponentSeconds(core.CompIndex)/60)
			bals = append(bals, sum.Breakdown.Imbalance(core.CompIndex))
		}
		timeFig.AddSeries(strat.String(), times)
		balFig.AddSeries(strat.String(), bals)
	}
	timeFig.Notes = append(timeFig.Notes, "paper: dynamic load balancing keeps indexing scalable and well balanced as P grows")
	return []*Figure{timeFig, balFig}, nil
}

// FigA1 regenerates the §3.3 comparison: the GA fetch-and-increment task
// queue versus a master-worker dispatcher, whose single dispenser serializes
// under fine-grained loads.
func FigA1(scale float64) ([]*Figure, error) {
	spec := PubMedSpecs(scale)[0]
	sources := spec.Generate()
	fig := &Figure{
		ID:     "Fig A1",
		Title:  spec.String() + ": indexing time, GA atomic task queue vs master-worker",
		XLabel: "processors",
		YLabel: "indexing time (modeled minutes)",
		X:      psLabels(PaperPs),
	}
	for _, strat := range []invert.Strategy{invert.DynamicGA, invert.MasterWorker} {
		var times []float64
		for _, p := range PaperPs {
			sum, err := core.RunStandalone(p, spec.Model(), sources, core.Config{
				Strategy: strat,
				// Fine-grained chunks stress the dispatcher.
				ChunkTokens: 1024,
			})
			if err != nil {
				return nil, err
			}
			times = append(times, sum.ComponentSeconds(core.CompIndex)/60)
		}
		fig.AddSeries(strat.String(), times)
	}
	fig.Notes = append(fig.Notes,
		"measured parity matches the paper's finding that the GA queue is 'competitive with the MPI-1 version':",
		"the dispatcher's serial service cost stays off the critical path at these load granularities, while the",
		"GA fetch-and-increment achieves the same balance in a few lines without a dedicated master")
	return []*Figure{fig}, nil
}

// FigA2 regenerates the §4.2 finding: insufficient signature dimensionality
// produces null/weak signatures and slows clustering convergence; adaptive
// dimensionality trades more dimensions for fewer iterations.
func FigA2(scale float64) ([]*Figure, error) {
	spec := PubMedSpecs(scale)[0]
	sources := spec.Generate()
	fig := &Figure{
		ID:     "Fig A2",
		Title:  spec.String() + ": static vs adaptive signature dimensionality (P=8)",
		XLabel: "metric",
		YLabel: "value",
		X: []string{"major terms N", "signature dim M", "null rate %",
			"dim retries", "kmeans iterations", "ClusProj minutes"},
	}
	// An undersized signature space (32 majors, ~3 topics) leaves a large
	// fraction of records with null signatures — the paper's §4.2 symptom.
	cfgs := []struct {
		name string
		cfg  core.Config
	}{
		{"static (small)", core.Config{TopN: 32}},
		{"adaptive", core.Config{TopN: 32, AdaptiveDim: true, NullThreshold: 0.01}},
	}
	for _, c := range cfgs {
		sum, err := core.RunStandalone(8, spec.Model(), sources, c.cfg)
		if err != nil {
			return nil, err
		}
		r := sum.Result
		fig.AddSeries(c.name, []float64{
			float64(r.TopN),
			float64(r.TopM),
			100 * r.NullRate,
			float64(r.DimRetries),
			float64(r.KMeansIters),
			sum.ComponentSeconds(core.CompClusProj) / 60,
		})
	}
	fig.Notes = append(fig.Notes,
		"paper §4.2: insufficient dimensionality yields null/weak signatures and slow convergence;",
		"growing the space produces robust signatures at the cost of extra computation and memory")
	return []*Figure{fig}, nil
}

// FigA3 regenerates the §4.2 storage remark: with many processors on larger
// files, scanning turns I/O bound on a shared filer, which "can be leveraged
// by using scalable parallel file systems (e.g., Lustre)".
func FigA3(scale float64) ([]*Figure, error) {
	spec := PubMedSpecs(scale)[1]
	sources := spec.Generate()
	fig := &Figure{
		ID:     "Fig A3",
		Title:  spec.String() + ": scanning component under three storage models",
		XLabel: "processors",
		YLabel: "scan time (modeled minutes)",
		X:      psLabels(PaperPs),
	}
	storage := []struct {
		name string
		io   *simtime.IOModel
	}{
		{"ideal", nil},
		{"shared NFS", simtime.NFS2007()},
		{"Lustre", simtime.Lustre2007()},
	}
	for _, st := range storage {
		var times []float64
		for _, p := range PaperPs {
			model := spec.Model()
			model.IO = st.io
			sum, err := core.RunStandalone(p, model, sources, core.Config{})
			if err != nil {
				return nil, err
			}
			times = append(times, sum.ComponentSeconds(core.CompScan)/60)
		}
		fig.AddSeries(st.name, times)
	}
	fig.Notes = append(fig.Notes,
		"shared-filer scanning stops scaling once P saturates the backend; striped storage keeps the compute-bound trend")
	return []*Figure{fig}, nil
}

// QuickModel returns a zero-latency model for harness self-tests.
func QuickModel() *simtime.Model { return simtime.Zero() }
