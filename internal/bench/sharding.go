package bench

import (
	"fmt"

	"inspire/internal/serve"
)

// ShardCounts are the x axis of the sharded-serving figure.
var ShardCounts = []int{1, 2, 4, 8}

// ShardedService builds the serving surface for one shard count: the
// monolithic Server at 1 (the Fig S1 baseline), a Router over a fresh
// document partition otherwise.
func ShardedService(st *serve.Store, n int) (serve.Service, error) {
	if n == 1 {
		return serve.NewServer(st, serve.Config{})
	}
	shards, err := st.Shard(n)
	if err != nil {
		return nil, err
	}
	return serve.NewRouter(shards, serve.Config{})
}

// FigS3 regenerates the sharded-serving figure: the same snapshot is
// partitioned into growing shard counts and the same seeded mixed workload
// replays against each set cold. Reported per point: modeled sustained
// throughput (interactions over the mean session's virtual seconds — the
// quantity partitioning scales), mean, p95 and worst-case virtual latency, and the
// scatter-gather traffic (shard sub-queries issued, shards pruned by the
// zero-DF summaries, router short-circuits).
func FigS3(scale float64) ([]*Figure, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Fig S3",
		Title: fmt.Sprintf("%s: sharded serving, throughput and tail latency vs shard count (%d sessions)",
			PubMedSpecs(scale)[0], 8),
		XLabel: "shards",
		YLabel: "virtual queries/sec, virtual latency (ms), scatter-gather traffic",
	}
	var vqps, mean, p95, maxv, subq, pruned []float64
	for _, n := range ShardCounts {
		fig.X = append(fig.X, fmt.Sprintf("S=%d", n))
		svc, err := ShardedService(st, n)
		if err != nil {
			return nil, err
		}
		rep, err := serve.Replay(svc, serve.WorkloadConfig{
			Sessions:      8,
			OpsPerSession: servingOpsPerSession,
			Seed:          1,
		})
		if err != nil {
			return nil, err
		}
		vqps = append(vqps, rep.VirtualQPS)
		mean = append(mean, rep.MeanVirtualMS)
		p95 = append(p95, rep.P95VirtualMS)
		maxv = append(maxv, rep.MaxVirtualMS)
		subq = append(subq, float64(rep.Stats.ShardQueries))
		pruned = append(pruned, float64(rep.Stats.ShardsPruned))
	}
	fig.AddSeries("virtual qps", vqps)
	fig.AddSeries("mean virt ms", mean)
	fig.AddSeries("p95 virt ms", p95)
	fig.AddSeries("max virt ms", maxv)
	fig.AddSeries("shard queries", subq)
	fig.AddSeries("shards pruned", pruned)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("virtual throughput scales %.2fx at 4 shards over the monolithic server: each scatter runs its", ratioAt(vqps, 4)),
		"sub-queries in parallel on shard-sized postings and signature slices, so the slowest shard — not the",
		"whole store — bounds the interaction; RPC fan-out and the gather merge are what keeps it sublinear,",
		"and the DF summaries prune shards that cannot contribute before any request is issued;",
		fmt.Sprintf("the worst interaction — a cold full-corpus similarity scan — shrinks %.2fx at 4 shards", 1/ratioAt(maxv, 4)))
	return []*Figure{fig}, nil
}

// ratioAt returns ys[index of shard count n] / ys[index of 1].
func ratioAt(ys []float64, n int) float64 {
	var base, at float64
	for i, s := range ShardCounts {
		if i >= len(ys) {
			break
		}
		if s == 1 {
			base = ys[i]
		}
		if s == n {
			at = ys[i]
		}
	}
	if base == 0 {
		return 0
	}
	return at / base
}
