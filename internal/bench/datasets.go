// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Figures 5-9) plus the two ablations DESIGN.md
// motivates. Each figure is produced as a text table whose rows/series match
// what the paper plots; EXPERIMENTS.md records paper-vs-measured shapes.
//
// The paper's datasets (PubMed at 2.75/6.67/16.44 GB and TREC GOV2 at
// 1/4/8.21 GB) are modeled: a synthetic corpus 1/Scale the size is generated
// with the matching statistical properties, and the machine model's
// DataScale re-inflates observed work and traffic to paper scale, so the
// virtual wall-clock reported corresponds to the full-size run on the 2007
// PNNL cluster.
package bench

import (
	"fmt"

	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/simtime"
)

// GB is two to the thirtieth, the unit of the paper's dataset sizes.
const GB = float64(1 << 30)

// DatasetSpec describes one modeled evaluation dataset.
type DatasetSpec struct {
	// Name as the paper labels the curve (e.g. "2.75 GB").
	Name string
	// Family is the corpus family label ("Pubmed" or "TREC").
	Family string
	// Format selects the generator.
	Format corpus.Format
	// PaperBytes is the modeled (paper) dataset size.
	PaperBytes float64
	// Scale divides PaperBytes to get the generated synthetic size.
	Scale float64
	// Seed fixes the generated corpus.
	Seed int64
	// Topics and VocabSize parameterize the language model.
	Topics    int
	VocabSize int
	// Sources is the number of source files (0 selects 64). The paper's
	// GOV2 data ships as a fixed set of large bundle files, so the
	// load-balancing experiments use fewer sources than processors can
	// evenly share.
	Sources int
}

// SynthBytes returns the synthetic corpus size to generate.
func (d DatasetSpec) SynthBytes() int64 { return int64(d.PaperBytes / d.Scale) }

// String renders "Pubmed 2.75 GB".
func (d DatasetSpec) String() string { return d.Family + " " + d.Name }

// Generate builds the dataset's synthetic corpus.
func (d DatasetSpec) Generate() []*corpus.Source {
	n := d.Sources
	if n <= 0 {
		n = 64
	}
	return corpus.Generate(corpus.GenSpec{
		Format:      d.Format,
		TargetBytes: d.SynthBytes(),
		Sources:     n,
		Seed:        d.Seed,
		Topics:      d.Topics,
		VocabSize:   d.VocabSize,
	})
}

// Model returns the machine model for this dataset: the PNNL 2007 profile
// with DataScale re-inflating the synthetic corpus to paper size.
func (d DatasetSpec) Model() *simtime.Model {
	m := simtime.PNNLCluster2007()
	m.DataScale = d.Scale
	return m
}

// DefaultScale shrinks the paper's multi-gigabyte datasets to megabyte-scale
// synthetic corpora that run in seconds on a laptop while the cost model
// reports paper-scale virtual times.
const DefaultScale = 1024

// PubMedSpecs returns the paper's three PubMed problem sizes.
func PubMedSpecs(scale float64) []DatasetSpec {
	if scale <= 0 {
		scale = DefaultScale
	}
	mk := func(name string, gb float64, seed int64) DatasetSpec {
		return DatasetSpec{
			Name: name, Family: "Pubmed", Format: corpus.FormatPubMed,
			PaperBytes: gb * GB, Scale: scale, Seed: seed,
			Topics: 16, VocabSize: 24000,
		}
	}
	return []DatasetSpec{
		mk("2.75 GB", 2.75, 275),
		mk("6.67 GB", 6.67, 667),
		mk("16.44 GB", 16.44, 1644),
	}
}

// TRECSpecs returns the paper's three TREC problem sizes.
func TRECSpecs(scale float64) []DatasetSpec {
	if scale <= 0 {
		scale = DefaultScale
	}
	mk := func(name string, gb float64, seed int64) DatasetSpec {
		return DatasetSpec{
			Name: name, Family: "TREC", Format: corpus.FormatTREC,
			PaperBytes: gb * GB, Scale: scale, Seed: seed,
			Topics: 16, VocabSize: 24000,
		}
	}
	return []DatasetSpec{
		mk("1.00 GB", 1.00, 100),
		mk("4.00 GB", 4.00, 400),
		mk("8.21 GB", 8.21, 821),
	}
}

// PaperPs are the processor counts of the paper's x axes. The paper's
// evaluation starts at 4 processors (the smallest configuration its cluster
// jobs used); speedups are normalized as P0*T(P0)/T(P).
var PaperPs = []int{4, 8, 16, 32}

// ComponentPs are the processor counts of the component-percentage figures.
var ComponentPs = []int{4, 8, 16, 32}

// RunPoint executes the pipeline for one (dataset, P) point.
func RunPoint(spec DatasetSpec, p int, cfg core.Config) (*core.Summary, error) {
	sources := spec.Generate()
	sum, err := core.RunStandalone(p, spec.Model(), sources, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: %s p=%d: %w", spec, p, err)
	}
	return sum, nil
}

// Sweep holds the summaries of one dataset across processor counts.
type Sweep struct {
	Spec      DatasetSpec
	Ps        []int
	Summaries map[int]*core.Summary
}

// RunSweep executes the pipeline across the processor counts. The generated
// corpus is built once and reused.
func RunSweep(spec DatasetSpec, ps []int, cfg core.Config) (*Sweep, error) {
	sources := spec.Generate()
	sw := &Sweep{Spec: spec, Ps: ps, Summaries: make(map[int]*core.Summary, len(ps))}
	for _, p := range ps {
		sum, err := core.RunStandalone(p, spec.Model(), sources, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s p=%d: %w", spec, p, err)
		}
		sw.Summaries[p] = sum
	}
	return sw, nil
}

// TotalMinutes returns the overall virtual minutes at P.
func (s *Sweep) TotalMinutes(p int) float64 { return s.Summaries[p].VirtualMinutes() }

// pressure returns the memory-pressure multiplier of the run at p.
func (s *Sweep) pressure(p int) float64 {
	if r := s.Summaries[p].Result; r != nil && r.MemPressure > 1 {
		return r.MemPressure
	}
	return 1
}

// Speedup returns P0 * T(P0) / T(p) for the whole pipeline — speedup
// normalized to the smallest measured configuration, the convention the
// paper uses since single-processor runs of multi-gigabyte datasets do not
// fit one node. Virtual times are first corrected for the memory-pressure
// penalty: the paper plots the thrashing of oversized runs in Figure 5's
// wall clock but draws its speedup curves on the compute-bound trend (its
// speedup axes top out near P while the 16.44 GB wall-clock anomaly would
// otherwise produce wildly superlinear curves).
func (s *Sweep) Speedup(p int) float64 {
	base := s.correctedTotal(s.Ps[0])
	t := s.correctedTotal(p)
	if t == 0 {
		return 0
	}
	return float64(s.Ps[0]) * base / t
}

// correctedTotal removes the memory-pressure excess from the stages it was
// applied to (scanning and indexing), leaving the compute-bound trend.
func (s *Sweep) correctedTotal(p int) float64 {
	sum := s.Summaries[p]
	total := sum.TotalVirtual
	pr := s.pressure(p)
	if pr > 1 {
		pressured := sum.ComponentSeconds(core.CompScan) + sum.ComponentSeconds(core.CompIndex)
		total -= pressured * (1 - 1/pr)
	}
	return total
}

// ComponentSpeedup returns the component's normalized speedup vs the first
// measured P, pressure-corrected for the stages the penalty applies to
// (scanning and indexing).
func (s *Sweep) ComponentSpeedup(p int, component string) float64 {
	pressured := component == core.CompScan || component == core.CompIndex
	correct := func(pp int, v float64) float64 {
		if pressured {
			return v / s.pressure(pp)
		}
		return v
	}
	base := correct(s.Ps[0], s.Summaries[s.Ps[0]].ComponentSeconds(component))
	t := correct(p, s.Summaries[p].ComponentSeconds(component))
	if t == 0 {
		return 0
	}
	return float64(s.Ps[0]) * base / t
}

// SignatureGenSpeedup returns the combined signature-generation speedup
// (topic + AM + DocVec), the paper's Figure 8 component.
func (s *Sweep) SignatureGenSpeedup(p int) float64 {
	base := s.Summaries[s.Ps[0]].SignatureGenSeconds()
	t := s.Summaries[p].SignatureGenSeconds()
	if t == 0 {
		return 0
	}
	return float64(s.Ps[0]) * base / t
}
