package bench

import "testing"

// TestIngestClaimOnBenchCorpus gates the live-ingestion headline on the real
// bench corpus at default scale: queries keep serving while documents stream
// in, with p95 virtual latency within 2x of the idle baseline, and ingest
// throughput is a real number. It also pins determinism — the CI gate only
// works because the interleaved probe reproduces exactly.
func TestIngestClaimOnBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("bench corpus run")
	}
	dps1, ratio1, err := CollectIngestCI(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if dps1 <= 0 {
		t.Fatalf("ingest throughput %.2f docs/sec", dps1)
	}
	if ratio1 <= 0 || ratio1 > GateMaxIngestP95Ratio {
		t.Fatalf("query p95 under ingest is %.2fx idle, claim gates %.1fx", ratio1, GateMaxIngestP95Ratio)
	}
	dps2, ratio2, err := CollectIngestCI(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if dps1 != dps2 || ratio1 != ratio2 {
		t.Fatalf("ingest metrics not deterministic: %.6f/%.6f vs %.6f/%.6f", dps1, ratio1, dps2, ratio2)
	}
}
