package bench

import (
	"fmt"
	"testing"

	"inspire/internal/serve"
)

func TestServingStoreReusedAcrossCalls(t *testing.T) {
	a, err := ServingStore(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServingStore(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("serving store not memoized")
	}
	if a.TotalDocs == 0 || a.VocabSize == 0 {
		t.Fatalf("empty serving store: %d docs, %d terms", a.TotalDocs, a.VocabSize)
	}
}

// BenchmarkServingThroughput is the serving smoke benchmark: one pipeline
// run snapshotted, then a seeded mixed workload replayed per session count.
// Custom metrics carry the figure's quantities; ns/op is the host cost.
func BenchmarkServingThroughput(b *testing.B) {
	st, err := ServingStore(DefaultScale*16, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range ServingSessionCounts {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			var rep *serve.WorkloadReport
			for i := 0; i < b.N; i++ {
				srv, err := serve.NewServer(st, serve.Config{})
				if err != nil {
					b.Fatal(err)
				}
				rep, err = serve.Replay(srv, serve.WorkloadConfig{
					Sessions:      n,
					OpsPerSession: 100,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(100*rep.Stats.PostingHitRate(), "hit-pct")
			b.ReportMetric(rep.MeanVirtualMS, "virt-ms")
		})
	}
}
