package bench

import (
	"fmt"
	"testing"

	"inspire/internal/serve"
)

func TestServingStoreReusedAcrossCalls(t *testing.T) {
	a, err := ServingStore(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ServingStore(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("serving store not memoized")
	}
	if a.TotalDocs == 0 || a.VocabSize == 0 {
		t.Fatalf("empty serving store: %d docs, %d terms", a.TotalDocs, a.VocabSize)
	}
}

// BenchmarkServingThroughput is the serving smoke benchmark: one pipeline
// run snapshotted, then a seeded mixed workload replayed per session count.
// Custom metrics carry the figure's quantities; ns/op is the host cost.
func BenchmarkServingThroughput(b *testing.B) {
	st, err := ServingStore(DefaultScale*16, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range ServingSessionCounts {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			var rep *serve.WorkloadReport
			for i := 0; i < b.N; i++ {
				srv, err := serve.NewServer(st, serve.Config{})
				if err != nil {
					b.Fatal(err)
				}
				rep, err = serve.Replay(srv, serve.WorkloadConfig{
					Sessions:      n,
					OpsPerSession: 100,
					Seed:          1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(100*rep.Stats.PostingHitRate(), "hit-pct")
			b.ReportMetric(rep.MeanVirtualMS, "virt-ms")
		})
	}
}

// TestCompressionClaimOnBenchCorpus pins the PR's headline numbers at the
// bench corpus's real scale: the block-coded posting store is at least
// 2.5x smaller than the flat layout, with conjunction latency no worse.
// (At far tinier scales the Zipf tail — mostly DF=1 terms — makes per-term
// directory overhead dominate and the ratio honestly degrades; the claim is
// about the serving corpus, so that is where it is enforced.)
func TestCompressionClaimOnBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench corpus")
	}
	figs, err := FigS2(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string][]float64)
	for _, s := range figs[0].Series {
		series[s.Name] = s.Y
	}
	post := series["posting MB"]
	mean := series["And mean ms"]
	if len(post) != 2 || len(mean) != 2 {
		t.Fatalf("figure series malformed: %v", figs[0].Series)
	}
	flatMB, compMB := post[0], post[1]
	if ratio := flatMB / compMB; ratio < 2.5 {
		t.Fatalf("compression ratio %.2fx < 2.5x (flat %.2f MB, compressed %.2f MB)", ratio, flatMB, compMB)
	}
	if mean[1] > mean[0] {
		t.Fatalf("compressed And mean %.3f ms worse than flat %.3f ms", mean[1], mean[0])
	}
}
