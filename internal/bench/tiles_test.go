package bench

import "testing"

// TestTileClaimOnBenchCorpus pins this PR's headline numbers at the bench
// corpus's real scale: rendering the deterministic Galaxy viewport walk from
// the tile pyramid is at least 3x faster in virtual time than the naive
// full-point scans it replaces, and tile p95 under concurrent ingestion
// stays within the gated ratio of idle.
func TestTileClaimOnBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench corpus")
	}
	qps, speedup, p95Ratio, err := CollectTileCI(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0 {
		t.Fatalf("tile serving throughput %g", qps)
	}
	if speedup < GateMinTileSpeedup {
		t.Fatalf("tile rendering speedup %.2fx < gated %.1fx", speedup, GateMinTileSpeedup)
	}
	if p95Ratio > GateMaxTileP95Ratio {
		t.Fatalf("tile p95 under ingest %.2fx idle > gated %.1fx", p95Ratio, GateMaxTileP95Ratio)
	}
}

// TestTileViewportsDescend sanity-checks the deterministic walk: it starts
// at the whole world and narrows monotonically.
func TestTileViewportsDescend(t *testing.T) {
	st, err := ServingStore(16384, 4)
	if err != nil {
		t.Fatal(err)
	}
	vps, err := TileViewports(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(vps) < 3 {
		t.Fatalf("walk has only %d steps", len(vps))
	}
	for i := 1; i < len(vps); i++ {
		if vps[i].Z != vps[i-1].Z+1 {
			t.Fatalf("step %d jumps from zoom %d to %d", i, vps[i-1].Z, vps[i].Z)
		}
		if i < 2 {
			// Step 1's viewport is the root tile plus pan margin — wider
			// than the world; the walk narrows strictly from there on.
			continue
		}
		prev := (vps[i-1].Rect.MaxX - vps[i-1].Rect.MinX) * (vps[i-1].Rect.MaxY - vps[i-1].Rect.MinY)
		cur := (vps[i].Rect.MaxX - vps[i].Rect.MinX) * (vps[i].Rect.MaxY - vps[i].Rect.MinY)
		if cur >= prev {
			t.Fatalf("step %d viewport grew: %g -> %g", i, prev, cur)
		}
	}
}
