package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"inspire/internal/corpus"
	"inspire/internal/serve"
)

// Live-ingestion figure (Fig S4) and the CI ingest metrics: the serving
// snapshot keeps answering the Fig S1 mixed workload while documents stream
// in through the segmented live path. Everything here is single-session and
// deterministic — virtual latencies depend only on the seeded op stream and
// the seal/compaction policy, never on host scheduling — which is what lets
// benchgate hold the numbers to tight thresholds.

// ingestTextsCache memoizes the parsed record texts of the bench corpus.
var ingestTextsCache = struct {
	sync.Mutex
	texts map[float64][]string
}{texts: make(map[float64][]string)}

// IngestTexts returns the bench corpus's record texts in document order —
// the documents the ingest benchmarks re-feed through the live path (same
// vocabulary, realistic term distribution).
func IngestTexts(scale float64) ([]string, error) {
	ingestTextsCache.Lock()
	texts, ok := ingestTextsCache.texts[scale]
	ingestTextsCache.Unlock()
	if ok {
		return texts, nil
	}
	sources := PubMedSpecs(scale)[0].Generate()
	sort.Slice(sources, func(i, j int) bool { return sources[i].Name < sources[j].Name })
	texts = nil
	for _, src := range sources {
		recs, err := corpus.Parse(src)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			texts = append(texts, recs[i].Text())
		}
	}
	ingestTextsCache.Lock()
	ingestTextsCache.texts[scale] = texts
	ingestTextsCache.Unlock()
	return texts, nil
}

// ingestProbeResult aggregates one deterministic interleaved run.
type ingestProbeResult struct {
	QueryP50MS  float64
	QueryP95MS  float64
	AddP95MS    float64
	AddMeanMS   float64
	Adds        int
	MeanLagDocs float64 // mean buffered (not yet visible) docs over the adds
	Stats       serve.Stats
}

// ingestProbe replays a deterministic single-session mixed query stream
// (the Fig S1 op mix) against a fork of the store, interleaving one add
// every addEvery queries (0 = idle). Sealed segments compact synchronously
// whenever the policy's threshold is reached, so the stream — and every
// virtual latency in it — reproduces exactly on any host.
func ingestProbe(st *serve.Store, texts []string, queries, addEvery int, policy serve.LivePolicy) (*ingestProbeResult, error) {
	fork := st.Fork()
	policy.ManualCompaction = true
	fork.SetLivePolicy(policy)
	srv, err := serve.NewServer(fork, serve.Config{})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sess := srv.NewSession()
	terms := srv.TopTerms(ctx, 48)
	docs := srv.SampleDocs(ctx, 16)
	if len(terms) == 0 || len(docs) == 0 {
		return nil, fmt.Errorf("bench: ingest probe has no query material")
	}
	rng := rand.New(rand.NewSource(11))
	term := func() string { return terms[int(float64(len(terms))*math.Pow(rng.Float64(), 2.5))%len(terms)] }

	res := &ingestProbeResult{}
	var queryLats, addLats []float64
	var lagSum float64
	nextText := 0
	for op := 0; op < queries; op++ {
		switch p := rng.Float64(); {
		case p < 0.40:
			sess.TermDocs(ctx, term())
		case p < 0.55:
			sess.And(ctx, term(), term())
		case p < 0.70:
			sess.Or(ctx, term(), term())
		case p < 0.85:
			doc := docs[int(float64(len(docs))*math.Pow(rng.Float64(), 2.5))%len(docs)]
			if _, err := sess.Similar(ctx, doc, 5); err != nil {
				return nil, err
			}
		case p < 0.93:
			sess.ThemeDocs(ctx, rng.Intn(max(1, srv.NumThemes())))
		default:
			sess.Near(ctx, rng.Float64()-0.5, rng.Float64()-0.5, 0.2)
		}
		queryLats = append(queryLats, sess.Stats().LastMS)
		if addEvery > 0 && (op+1)%addEvery == 0 {
			lagSum += float64(fork.PendingDocs())
			if _, err := sess.Add(ctx, texts[nextText%len(texts)]); err != nil {
				return nil, err
			}
			nextText++
			addLats = append(addLats, sess.Stats().LastMS)
			if fork.LiveSegments() >= policy.CompactSegments {
				if _, err := fork.Compact(); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Float64s(queryLats)
	res.QueryP50MS = quantile(queryLats, 0.50)
	res.QueryP95MS = quantile(queryLats, 0.95)
	res.Adds = len(addLats)
	if len(addLats) > 0 {
		var sum float64
		for _, l := range addLats {
			sum += l
		}
		res.AddMeanMS = sum / float64(len(addLats))
		sort.Float64s(addLats)
		res.AddP95MS = quantile(addLats, 0.95)
		res.MeanLagDocs = lagSum / float64(len(addLats))
	}
	res.Stats = srv.Stats()
	return res, nil
}

// quantile reads the nearest-rank p-quantile of an ascending-sorted slice.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ingestProbeQueries keeps each Fig S4 point sub-second at default scale
// while giving the percentiles a real population.
const ingestProbeQueries = 400

// FigS4 regenerates the live-ingestion figure: the left panel holds the
// query stream fixed and turns ingestion on at two seal thresholds,
// reporting query p50/p95 against the idle baseline; the right panel sweeps
// the seal threshold and reports the refresh lag (mean documents buffered
// and thus invisible) against the seal/compaction traffic it buys.
func FigS4(scale float64) ([]*Figure, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	texts, err := IngestTexts(scale)
	if err != nil {
		return nil, err
	}

	left := &Figure{
		ID:     "Fig S4a",
		Title:  fmt.Sprintf("%s: query latency while documents stream in (1 session, add every 4th op)", PubMedSpecs(scale)[0]),
		XLabel: "mode",
		YLabel: "virtual latency (ms), segment traffic",
	}
	var p50, p95, addP95, segF []float64
	for _, mode := range []struct {
		name     string
		addEvery int
		seal     int
	}{
		{"idle", 0, 64},
		{"seal=64", 4, 64},
		{"seal=16", 4, 16},
	} {
		r, err := ingestProbe(st, texts, ingestProbeQueries, mode.addEvery,
			serve.LivePolicy{SealDocs: mode.seal, CompactSegments: 4})
		if err != nil {
			return nil, err
		}
		left.X = append(left.X, mode.name)
		p50 = append(p50, r.QueryP50MS)
		p95 = append(p95, r.QueryP95MS)
		addP95 = append(addP95, r.AddP95MS)
		segF = append(segF, float64(r.Stats.SegmentFetches))
	}
	left.AddSeries("query p50 ms", p50)
	left.AddSeries("query p95 ms", p95)
	left.AddSeries("add p95 ms", addP95)
	left.AddSeries("seg fetches", segF)
	left.Notes = append(left.Notes,
		"queries keep serving off the previous epoch view while adds buffer, seal and compact;",
		"the p95 stays within 2x of the idle baseline (gated in CI), and the add tail carries the",
		"seal cost — the visible price of a refresh")

	right := &Figure{
		ID:     "Fig S4b",
		Title:  fmt.Sprintf("%s: refresh lag vs seal threshold (add every 2nd op)", PubMedSpecs(scale)[0]),
		XLabel: "seal docs",
		YLabel: "buffered docs, seals/compactions, add latency",
	}
	var lag, seals, compactions, addMean []float64
	for _, seal := range []int{16, 64, 256} {
		r, err := ingestProbe(st, texts, ingestProbeQueries, 2,
			serve.LivePolicy{SealDocs: seal, CompactSegments: 4})
		if err != nil {
			return nil, err
		}
		right.X = append(right.X, fmt.Sprintf("%d", seal))
		lag = append(lag, r.MeanLagDocs)
		seals = append(seals, float64(r.Stats.Seals))
		compactions = append(compactions, float64(r.Stats.Compactions))
		addMean = append(addMean, r.AddMeanMS)
	}
	right.AddSeries("mean lag docs", lag)
	right.AddSeries("seals", seals)
	right.AddSeries("compactions", compactions)
	right.AddSeries("add mean ms", addMean)
	right.Notes = append(right.Notes,
		"the seal threshold is the freshness knob: small deltas surface documents quickly but seal",
		"and compact constantly; large deltas amortize the encode at the price of staleness")
	return []*Figure{left, right}, nil
}

// CollectIngestCI measures the gated ingest quantities: modeled ingest
// throughput (docs over the virtual seconds their adds cost, seals included)
// and the ratio of query p95 under concurrent ingestion to the idle p95.
func CollectIngestCI(scale float64) (dps, p95Ratio float64, err error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return 0, 0, err
	}
	texts, err := IngestTexts(scale)
	if err != nil {
		return 0, 0, err
	}
	pol := serve.LivePolicy{SealDocs: 64, CompactSegments: 4}
	idle, err := ingestProbe(st, texts, ingestProbeQueries, 0, pol)
	if err != nil {
		return 0, 0, err
	}
	busy, err := ingestProbe(st, texts, ingestProbeQueries, 4, pol)
	if err != nil {
		return 0, 0, err
	}
	if busy.AddMeanMS > 0 {
		dps = 1000 / busy.AddMeanMS
	}
	if idle.QueryP95MS > 0 {
		p95Ratio = busy.QueryP95MS / idle.QueryP95MS
	}
	return dps, p95Ratio, nil
}
