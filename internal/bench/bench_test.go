package bench

import (
	"strings"
	"testing"

	"inspire/internal/core"
)

// testScale shrinks datasets far below the default so harness tests run in
// seconds; figures lose resolution but every code path executes.
const testScale = DefaultScale * 64

func TestDatasetSpecs(t *testing.T) {
	pm := PubMedSpecs(0)
	tr := TRECSpecs(0)
	if len(pm) != 3 || len(tr) != 3 {
		t.Fatalf("want 3 sizes per family, got %d and %d", len(pm), len(tr))
	}
	if pm[0].String() != "Pubmed 2.75 GB" || tr[2].String() != "TREC 8.21 GB" {
		t.Fatalf("names: %q %q", pm[0].String(), tr[2].String())
	}
	// Paper sizes in bytes.
	if pm[2].PaperBytes != 16.44*GB {
		t.Fatalf("pubmed largest: %g", pm[2].PaperBytes)
	}
	// Synthetic sizes shrink by the scale factor and the model re-inflates.
	spec := pm[0]
	if spec.SynthBytes() <= 0 || float64(spec.SynthBytes()) > spec.PaperBytes {
		t.Fatalf("synth bytes %d", spec.SynthBytes())
	}
	if spec.Model().DataScale != spec.Scale {
		t.Fatal("model DataScale mismatch")
	}
}

func TestGenerateRespectsSourceOverride(t *testing.T) {
	spec := TRECSpecs(testScale)[0]
	spec.Sources = 5
	if got := len(spec.Generate()); got != 5 {
		t.Fatalf("got %d sources", got)
	}
	spec.Sources = 0
	if got := len(spec.Generate()); got != 64 {
		t.Fatalf("default sources: %d", got)
	}
}

func TestRunPointAndSweep(t *testing.T) {
	spec := PubMedSpecs(testScale)[0]
	sum, err := RunPoint(spec, 2, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Result.TotalDocs == 0 {
		t.Fatal("empty run")
	}
	sw, err := RunSweep(spec, []int{2, 4}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sw.TotalMinutes(2) <= sw.TotalMinutes(4) {
		t.Errorf("no scaling: %g vs %g", sw.TotalMinutes(2), sw.TotalMinutes(4))
	}
	// Normalized speedup: first point is exactly P0.
	if got := sw.Speedup(2); got != 2 {
		t.Errorf("base speedup: %g", got)
	}
	if s := sw.Speedup(4); s <= 2 || s > 4.5 {
		t.Errorf("speedup at 4: %g", s)
	}
	for _, comp := range core.Components {
		if s := sw.ComponentSpeedup(2, comp); s != 2 && s != 0 {
			t.Errorf("%s base speedup %g", comp, s)
		}
	}
	if s := sw.SignatureGenSpeedup(4); s <= 0 {
		t.Errorf("siggen speedup %g", s)
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "Fig T", Title: "test", XLabel: "x", YLabel: "y",
		X: []string{"a", "b"},
	}
	fig.AddSeries("s1", []float64{1, 2})
	fig.AddSeries("short", []float64{3}) // missing second value renders "-"
	fig.Notes = append(fig.Notes, "a note")
	out := fig.Render()
	for _, want := range []string{"Fig T", "s1", "short", "1.00", "3.00", "-", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFindExperiment(t *testing.T) {
	for _, e := range Experiments {
		got, ok := FindExperiment(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("FindExperiment(%q) failed", e.ID)
		}
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Fatal("found nonexistent experiment")
	}
}

func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, e := range Experiments {
		figs, err := e.Run(testScale)
		if err != nil {
			t.Fatalf("experiment %s: %v", e.ID, err)
		}
		if len(figs) == 0 {
			t.Fatalf("experiment %s produced no figures", e.ID)
		}
		for _, f := range figs {
			if len(f.Series) == 0 || len(f.X) == 0 {
				t.Fatalf("experiment %s: empty figure %s", e.ID, f.ID)
			}
			for _, srs := range f.Series {
				for i, y := range srs.Y {
					if y < 0 {
						t.Fatalf("experiment %s figure %s series %s[%d] negative: %g",
							e.ID, f.ID, srs.Name, i, y)
					}
				}
			}
			if f.Render() == "" {
				t.Fatalf("experiment %s: empty render", e.ID)
			}
		}
	}
}

func TestSpeedupShapeHolds(t *testing.T) {
	// The reproduction's headline claim: near-linear overall speedup for
	// an in-memory-sized dataset.
	spec := PubMedSpecs(DefaultScale * 16)[0]
	sw, err := RunSweep(spec, PaperPs, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range PaperPs {
		s := sw.Speedup(p)
		if s < 0.55*float64(p) || s > 1.45*float64(p) {
			t.Errorf("speedup at P=%d is %.1f, outside the near-linear band", p, s)
		}
	}
}
