package bench

import (
	"strings"
	"testing"
)

// TestShardingClaimOnBenchCorpus pins this PR's headline number at the bench
// corpus's real scale: serving throughput scales at least 1.5x at 4 shards
// over the monolithic server, and mean latency does not regress.
func TestShardingClaimOnBenchCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench corpus")
	}
	figs, err := FigS3(DefaultScale)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string][]float64)
	for _, s := range figs[0].Series {
		series[s.Name] = s.Y
	}
	vqps := series["virtual qps"]
	mean := series["mean virt ms"]
	if len(vqps) != len(ShardCounts) || len(mean) != len(ShardCounts) {
		t.Fatalf("figure series malformed: %v", figs[0].Series)
	}
	if ratio := ratioAt(vqps, 4); ratio < GateMinShardSpeedup {
		t.Fatalf("4-shard virtual throughput scales %.2fx < %.1fx (%v)", ratio, GateMinShardSpeedup, vqps)
	}
	if r := ratioAt(mean, 4); r >= 1 {
		t.Fatalf("4-shard mean latency %.2fx of monolithic, want < 1 (%v)", r, mean)
	}
}

// TestCIGateAgainstCommittedBaseline reproduces the CI bench-regression gate
// in-process: fresh metrics at the baseline's scale must pass against the
// repository's committed BENCH_BASELINE.json.
func TestCIGateAgainstCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full bench corpus")
	}
	base, err := ReadCIMetrics("../../BENCH_BASELINE.json")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := CollectCI(base.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if violations := cur.Gate(base); len(violations) > 0 {
		t.Fatalf("gate failed against committed baseline:\n%s", strings.Join(violations, "\n"))
	}
}

// TestGateThresholds exercises the comparison logic itself.
func TestGateThresholds(t *testing.T) {
	base := &CIMetrics{ServingVirtualQPS: 100, ShardedVirtualQPS4: 300, ShardingSpeedup4x: 3, CompressionRatio: 4,
		TileVirtualQPS: 400, TileSpeedupVsScan: 30, TileIngestP95Ratio: 1.7}
	ok := &CIMetrics{ServingVirtualQPS: 90, ShardedVirtualQPS4: 260, ShardingSpeedup4x: 2.9, CompressionRatio: 3.8,
		TileVirtualQPS: 350, TileSpeedupVsScan: 25, TileIngestP95Ratio: 2.2}
	if v := ok.Gate(base); len(v) != 0 {
		t.Fatalf("within-threshold metrics rejected: %v", v)
	}
	pass := *ok
	cases := []struct {
		name string
		mut  func(*CIMetrics)
	}{
		{"qps drop", func(m *CIMetrics) { m.ServingVirtualQPS = 80 }},
		{"sharded qps drop", func(m *CIMetrics) { m.ShardedVirtualQPS4 = 200 }},
		{"compression floor", func(m *CIMetrics) { m.CompressionRatio = 2.4 }},
		{"speedup floor", func(m *CIMetrics) { m.ShardingSpeedup4x = 1.4 }},
		{"tile qps drop", func(m *CIMetrics) { m.TileVirtualQPS = 200 }},
		{"tile speedup floor", func(m *CIMetrics) { m.TileSpeedupVsScan = 2.9 }},
		{"tile p95 ceiling", func(m *CIMetrics) { m.TileIngestP95Ratio = 2.6 }},
	}
	for _, tc := range cases {
		m := pass
		tc.mut(&m)
		if v := m.Gate(base); len(v) == 0 {
			t.Fatalf("%s not caught", tc.name)
		}
	}
}
