package bench

import (
	"context"
	"fmt"
	"math"
	"sort"

	"inspire/internal/serve"
	"inspire/internal/tiles"
)

// Galaxy tile-serving figure (Fig S5) and the CI tile metrics: the same
// deterministic pan-and-zoom render path — the whole corpus down to a single
// theme — is served three ways: through the tile pyramid, through the naive
// full-point Near scan it replaces (a DisableTiles server), and through the
// pyramid while documents stream in. Everything is single-session and
// deterministic, so benchgate can hold the numbers to tight thresholds.

// tileViewport is one step of the render path: the viewport rectangle a
// client shows at zoom z.
type tileViewport struct {
	Z    int
	Rect tiles.Rect
}

// TileViewports derives the deterministic pan-and-zoom path over a store:
// starting from the whole projection at zoom 0, each step descends into the
// densest tile of the current viewport with half a tile of surrounding
// context — the Galaxy walk from the full corpus to one theme's
// neighbourhood.
func TileViewports(st *serve.Store) ([]tileViewport, error) {
	if st.TileBox == nil {
		return nil, fmt.Errorf("bench: store has no tile bounds")
	}
	srv, err := serve.NewServer(st.Fork(), serve.Config{})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sess := srv.NewSession()
	box := *st.TileBox
	maxZoom := serve.Config{}.TileMaxZoom
	if maxZoom <= 0 {
		maxZoom = 6
	}
	cur := box
	var out []tileViewport
	for z := 0; z <= maxZoom; z++ {
		out = append(out, tileViewport{Z: z, Rect: cur})
		ts, err := sess.TileRange(ctx, z, cur)
		if err != nil {
			return nil, err
		}
		if len(ts) == 0 {
			break
		}
		best := ts[0]
		for _, t := range ts[1:] {
			if t.Docs > best.Docs {
				best = t
			}
		}
		r := tiles.TileRectIn(box, z, best.X, best.Y)
		w, h := r.MaxX-r.MinX, r.MaxY-r.MinY
		cur = tiles.Rect{MinX: r.MinX - w/2, MinY: r.MinY - h/2, MaxX: r.MaxX + w/2, MaxY: r.MaxY + h/2}
	}
	return out, nil
}

// tileProbeRounds repeats the walk enough to populate the percentiles while
// each probe stays sub-second at default scale.
const tileProbeRounds = 24

// tileProbeResult aggregates one deterministic render replay.
type tileProbeResult struct {
	Ops        int
	VirtualQPS float64
	P50MS      float64
	P95MS      float64
	Stats      serve.Stats
}

// tileProbe replays the viewport path rounds times against a fork of the
// store. naive renders each viewport with the full-point Near scan
// (DisableTiles — the pre-tiles behaviour); otherwise each viewport is one
// TileRange call. addEvery > 0 interleaves one live add per addEvery
// viewports (sealed segments compact synchronously, so the stream reproduces
// exactly on any host).
func tileProbe(st *serve.Store, vps []tileViewport, rounds int, texts []string, addEvery int, naive bool) (*tileProbeResult, error) {
	// SealDocs is deliberately small relative to the add stream so the walk
	// crosses several epochs — each seal invalidates the tile LRU, which is
	// exactly the refresh cost the under-ingest p95 must carry.
	fork := st.Fork()
	fork.SetLivePolicy(serve.LivePolicy{SealDocs: 16, CompactSegments: 4, ManualCompaction: true})
	srv, err := serve.NewServer(fork, serve.Config{DisableTiles: naive})
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	sess := srv.NewSession()
	var lats []float64
	op, nextText := 0, 0
	for round := 0; round < rounds; round++ {
		for _, vp := range vps {
			if naive {
				cx, cy := (vp.Rect.MinX+vp.Rect.MaxX)/2, (vp.Rect.MinY+vp.Rect.MaxY)/2
				rr := math.Hypot(vp.Rect.MaxX-vp.Rect.MinX, vp.Rect.MaxY-vp.Rect.MinY) / 2
				sess.Near(ctx, cx, cy, rr)
			} else {
				if _, err := sess.TileRange(ctx, vp.Z, vp.Rect); err != nil {
					return nil, err
				}
			}
			lats = append(lats, sess.Stats().LastMS)
			op++
			if addEvery > 0 && op%addEvery == 0 {
				if _, err := sess.Add(ctx, texts[nextText%len(texts)]); err != nil {
					return nil, err
				}
				nextText++
				if fork.LiveSegments() >= 4 {
					if _, err := fork.Compact(); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	res := &tileProbeResult{Ops: len(lats), Stats: srv.Stats()}
	var virtMS float64
	for _, l := range lats {
		virtMS += l
	}
	if virtMS > 0 {
		res.VirtualQPS = float64(len(lats)) / (virtMS / 1000)
	}
	sort.Float64s(lats)
	res.P50MS = quantile(lats, 0.50)
	res.P95MS = quantile(lats, 0.95)
	return res, nil
}

// FigS5 regenerates the tile-serving figure: the deterministic viewport walk
// rendered through the naive full-point scan, through the tile pyramid, and
// through the pyramid under concurrent ingestion — modeled throughput, tail
// latency and the pyramid traffic behind them.
func FigS5(scale float64) ([]*Figure, error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return nil, err
	}
	texts, err := IngestTexts(scale)
	if err != nil {
		return nil, err
	}
	vps, err := TileViewports(st)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "Fig S5",
		Title: fmt.Sprintf("%s: Galaxy viewport rendering, tile pyramid vs full-point scans (%d-step walk x %d)",
			PubMedSpecs(scale)[0], len(vps), tileProbeRounds),
		XLabel: "mode",
		YLabel: "virtual qps, virtual latency (ms), tile traffic",
	}
	var qps, p50, p95, hits, pruned []float64
	for _, mode := range []struct {
		name     string
		naive    bool
		addEvery int
	}{
		{"near scan", true, 0},
		{"tiles", false, 0},
		{"tiles+ingest", false, 2},
	} {
		r, err := tileProbe(st, vps, tileProbeRounds, texts, mode.addEvery, mode.naive)
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, mode.name)
		qps = append(qps, r.VirtualQPS)
		p50 = append(p50, r.P50MS)
		p95 = append(p95, r.P95MS)
		hits = append(hits, float64(r.Stats.TileHits))
		pruned = append(pruned, float64(r.Stats.TilesPruned))
	}
	fig.AddSeries("virtual qps", qps)
	fig.AddSeries("p50 virt ms", p50)
	fig.AddSeries("p95 virt ms", p95)
	fig.AddSeries("tile LRU hits", hits)
	fig.AddSeries("subtrees pruned", pruned)
	if qps[0] > 0 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("rendering a viewport from fixed-size tile aggregates is %.0fx faster in virtual time than", qps[1]/qps[0]),
			"scanning every projected point: the naive scan pays flops proportional to the corpus on every",
			"frame, while a tile answer moves a few kilobytes of density/histogram bins through the epoch-keyed",
			"LRU; under ingestion every seal publishes a new epoch, so tiles re-read the maintained pyramid and",
			"the p95 carries that refresh cost")
	}
	return []*Figure{fig}, nil
}

// CollectTileCI measures the gated tile quantities: modeled tile-serving
// throughput over the viewport walk, its speedup over the naive full-point
// scan, and the p95 ratio of tile rendering under concurrent ingestion to
// idle.
func CollectTileCI(scale float64) (tileQPS, speedup, p95Ratio float64, err error) {
	st, err := ServingStore(scale, 8)
	if err != nil {
		return 0, 0, 0, err
	}
	texts, err := IngestTexts(scale)
	if err != nil {
		return 0, 0, 0, err
	}
	vps, err := TileViewports(st)
	if err != nil {
		return 0, 0, 0, err
	}
	idle, err := tileProbe(st, vps, tileProbeRounds, texts, 0, false)
	if err != nil {
		return 0, 0, 0, err
	}
	scan, err := tileProbe(st, vps, tileProbeRounds, texts, 0, true)
	if err != nil {
		return 0, 0, 0, err
	}
	busy, err := tileProbe(st, vps, tileProbeRounds, texts, 2, false)
	if err != nil {
		return 0, 0, 0, err
	}
	tileQPS = idle.VirtualQPS
	if scan.VirtualQPS > 0 {
		speedup = idle.VirtualQPS / scan.VirtualQPS
	}
	if idle.P95MS > 0 {
		p95Ratio = busy.P95MS / idle.P95MS
	}
	return tileQPS, speedup, p95Ratio, nil
}
