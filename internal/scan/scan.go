package scan

import (
	"fmt"
	"sort"

	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
)

// FieldSpan locates one field instance inside a rank's token stream.
type FieldSpan struct {
	Record int    // local record index
	Name   string // field name
	Lo, Hi int64  // token range within Forward.Tokens
}

// Forward holds one rank's forward index — the product of Scan & Map: the
// document-to-field table (RecordOffsets + Fields) and the field-to-term
// table (Tokens per FieldSpan), with terms as global vocabulary IDs.
type Forward struct {
	// RecordIDs are the external record identifiers, in processing order.
	RecordIDs []string
	// RecordOffsets has len(RecordIDs)+1 entries; record r's tokens are
	// Tokens[RecordOffsets[r]:RecordOffsets[r+1]].
	RecordOffsets []int64
	// Tokens is the concatenated term-ID stream of all local records.
	// After Scan these are provisional vocabulary IDs; RemapDense rewrites
	// them to dense IDs.
	Tokens []int64
	// Fields is the field-to-term table: every field instance with its
	// token span.
	Fields []FieldSpan
	// SourceNames lists this rank's sources in processing order, and
	// SourceRecCounts the number of records scanned from each.
	SourceNames     []string
	SourceRecCounts []int64
	// RawBytes is the total source bytes scanned by this rank.
	RawBytes int64
	// GlobalDocIDs assigns each local record its partition-invariant
	// global document ID; populated by AssignGlobalDocIDs.
	GlobalDocIDs []int64
	// TotalDocs is the global record count; populated by
	// AssignGlobalDocIDs.
	TotalDocs int64
}

// NumRecords returns the number of local records.
func (f *Forward) NumRecords() int { return len(f.RecordIDs) }

// RecordTokens returns the token slice of local record r.
func (f *Forward) RecordTokens(r int) []int64 {
	return f.Tokens[f.RecordOffsets[r]:f.RecordOffsets[r+1]]
}

// Scan parses and tokenizes the rank's assigned sources, building the
// forward index and populating the global vocabulary. Every unique term
// encountered is inserted into the distributed hashmap, which hands back its
// global term ID (an RPC to the term's owner on first sight, cached after).
func Scan(c *cluster.Comm, vocab *dhash.Map, mySources []*corpus.Source, cfg TokenizerConfig) (*Forward, error) {
	fwd := &Forward{RecordOffsets: []int64{0}}
	for _, src := range mySources {
		recs, err := corpus.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("scan: rank %d: %w", c.Rank(), err)
		}
		for _, rec := range recs {
			localRec := len(fwd.RecordIDs)
			fwd.RecordIDs = append(fwd.RecordIDs, rec.ID)
			for _, fl := range rec.Fields {
				lo := int64(len(fwd.Tokens))
				ForEachToken(fl.Text, cfg, func(term string) {
					fwd.Tokens = append(fwd.Tokens, vocab.Insert(term))
				})
				hi := int64(len(fwd.Tokens))
				fwd.Fields = append(fwd.Fields, FieldSpan{Record: localRec, Name: fl.Name, Lo: lo, Hi: hi})
			}
			fwd.RecordOffsets = append(fwd.RecordOffsets, int64(len(fwd.Tokens)))
		}
		fwd.SourceNames = append(fwd.SourceNames, src.Name)
		fwd.SourceRecCounts = append(fwd.SourceRecCounts, int64(len(recs)))
		fwd.RawBytes += src.Size()
		// Charge the tokenize + forward-index cost for this source, plus
		// the storage read under the configured I/O model (paper §4.2:
		// scanning is I/O bound as well as computationally bound).
		c.Clock().Advance(c.Model().ScanCost(float64(src.Size())))
		c.Clock().Advance(c.Model().IO.ReadCost(c.Model(), float64(src.Size()), c.Size()))
	}
	return fwd, nil
}

// RemapDense rewrites the token stream from provisional to dense vocabulary
// IDs after vocab.Finalize. One linear pass; charged at the token-walk rate.
func (f *Forward) RemapDense(c *cluster.Comm, vocab *dhash.Map) {
	for i, t := range f.Tokens {
		f.Tokens[i] = vocab.Dense(t)
	}
	c.Clock().Advance(c.Model().TokenCost(float64(len(f.Tokens))))
}

// AssignGlobalDocIDs collectively assigns every record a global document ID
// that depends only on (source name, position in source) — never on P or on
// which rank scanned the source — so downstream products are comparable
// across runs with different processor counts. It fills GlobalDocIDs and
// TotalDocs.
func (f *Forward) AssignGlobalDocIDs(c *cluster.Comm) {
	type srcCount struct {
		Name  string
		Count int64
	}
	local := make([]srcCount, len(f.SourceNames))
	for i, n := range f.SourceNames {
		local[i] = srcCount{Name: n, Count: f.SourceRecCounts[i]}
	}
	parts := c.Allgather(local, float64(32*len(local)))
	var all []srcCount
	for _, p := range parts {
		all = append(all, p.([]srcCount)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	base := make(map[string]int64, len(all))
	var running int64
	for _, sc := range all {
		base[sc.Name] = running
		running += sc.Count
	}
	f.TotalDocs = running
	f.GlobalDocIDs = make([]int64, 0, len(f.RecordIDs))
	for i, name := range f.SourceNames {
		b := base[name]
		for k := int64(0); k < f.SourceRecCounts[i]; k++ {
			f.GlobalDocIDs = append(f.GlobalDocIDs, b+k)
		}
	}
}
