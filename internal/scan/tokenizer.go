// Package scan implements the paper's "Scan & Map" component: each rank
// parses its statically assigned sources, tokenizes record fields, builds the
// forward indices (field-to-term and document-to-field tables), and inserts
// unique terms into the global distributed vocabulary hashmap, which assigns
// global term IDs (paper §3.2).
package scan

import (
	"strings"
	"unicode"
)

// TokenizerConfig controls term extraction. The zero value selects the
// defaults documented per field.
type TokenizerConfig struct {
	// MinLen drops tokens shorter than this many bytes. Default 2.
	MinLen int
	// MaxLen drops tokens longer than this many bytes. Default 40.
	MaxLen int
	// KeepNumbers keeps purely numeric tokens. Default false: numbers
	// (years, identifiers) carry no thematic signal.
	KeepNumbers bool
	// Stopwords are lowercased terms to drop. Nil selects the built-in
	// English list; an empty non-nil map keeps everything.
	Stopwords map[string]bool
}

func (t TokenizerConfig) withDefaults() TokenizerConfig {
	if t.MinLen == 0 {
		t.MinLen = 2
	}
	if t.MaxLen == 0 {
		t.MaxLen = 40
	}
	if t.Stopwords == nil {
		t.Stopwords = DefaultStopwords
	}
	return t
}

// DefaultStopwords is a small English function-word list, matching the kind
// of configuration the IN-SPIRE engine applies before signature generation.
var DefaultStopwords = func() map[string]bool {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
		"from", "had", "has", "have", "he", "her", "his", "if", "in",
		"into", "is", "it", "its", "no", "not", "of", "on", "or", "she",
		"such", "that", "the", "their", "then", "there", "these", "they",
		"this", "to", "was", "we", "were", "which", "will", "with", "would",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

// NormalizeTerm folds a token to its indexed form: Unicode-aware lowercasing
// plus trimming the intra-word connectors (' and -) the delimiter rules let
// through at token edges. This is the single normalization shared by the
// tokenizer and every query path (query.Engine, serve.Store) — a query layer
// that folds differently makes indexed terms silently unreachable.
func NormalizeTerm(term string) string {
	return strings.Trim(strings.ToLower(term), "'-")
}

// isDelim reports whether r separates terms: anything that is not a letter,
// digit, or intra-word connector. Markup characters (<, >, /, &) therefore
// delimit, which strips the residual HTML in TREC-like sources.
func isDelim(r rune) bool {
	if unicode.IsLetter(r) || unicode.IsDigit(r) {
		return false
	}
	return r != '\'' && r != '-'
}

// Tokenize splits text into lowercased terms according to the config.
func Tokenize(text string, cfg TokenizerConfig) []string {
	cfg = cfg.withDefaults()
	var out []string
	ForEachToken(text, cfg, func(term string) {
		out = append(out, term)
	})
	return out
}

// ForEachToken streams the terms of text without building a slice; the scan
// hot path uses this form.
func ForEachToken(text string, cfg TokenizerConfig, fn func(term string)) {
	cfg = cfg.withDefaults()
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := text[start:end]
		start = -1
		if len(tok) < cfg.MinLen || len(tok) > cfg.MaxLen {
			return
		}
		tok = NormalizeTerm(tok)
		if len(tok) < cfg.MinLen {
			return
		}
		if !cfg.KeepNumbers && allDigits(tok) {
			return
		}
		if cfg.Stopwords[tok] {
			return
		}
		fn(tok)
	}
	for i, r := range text {
		if isDelim(r) {
			flush(i)
		} else if start < 0 {
			start = i
		}
	}
	flush(len(text))
}

func allDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
