package scan

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/simtime"
)

func TestTokenizeBasics(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"the and of", nil},                             // stopwords
		{"x y z", nil},                                  // below MinLen
		{"foo-bar baz's", []string{"foo-bar", "baz's"}}, // connectors kept
		{"1984 was a year", []string{"year"}},           // numbers dropped
		{"<p>markup</p> &amp; entities", []string{"markup", "amp", "entities"}},
		{"", nil},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"--- '' -", nil},
		{"gene-expression", []string{"gene-expression"}},
	}
	for _, tc := range cases {
		got := Tokenize(tc.in, TokenizerConfig{})
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeConfig(t *testing.T) {
	// KeepNumbers retains digits.
	got := Tokenize("in 1984 there", TokenizerConfig{KeepNumbers: true, Stopwords: map[string]bool{}})
	if !reflect.DeepEqual(got, []string{"in", "1984", "there"}) {
		t.Errorf("KeepNumbers: %v", got)
	}
	// MaxLen drops long tokens.
	long := strings.Repeat("a", 50)
	if out := Tokenize(long+" ok", TokenizerConfig{}); !reflect.DeepEqual(out, []string{"ok"}) {
		t.Errorf("MaxLen: %v", out)
	}
	// Custom MinLen.
	if out := Tokenize("go is fun", TokenizerConfig{MinLen: 3, Stopwords: map[string]bool{}}); !reflect.DeepEqual(out, []string{"fun"}) {
		t.Errorf("MinLen: %v", out)
	}
	// Trailing connector trim: "well-" -> "well".
	if out := Tokenize("well- said", TokenizerConfig{}); !reflect.DeepEqual(out, []string{"well", "said"}) {
		t.Errorf("trim: %v", out)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("naïve café résumé", TokenizerConfig{})
	if len(got) != 3 {
		t.Fatalf("unicode words: %v", got)
	}
	if got[0] != "naïve" {
		t.Errorf("lowercasing broke unicode: %v", got[0])
	}
}

func TestForEachTokenMatchesTokenize(t *testing.T) {
	f := func(s string) bool {
		var streamed []string
		ForEachToken(s, TokenizerConfig{}, func(term string) { streamed = append(streamed, term) })
		return reflect.DeepEqual(streamed, Tokenize(s, TokenizerConfig{}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	f := func(s string) bool {
		return reflect.DeepEqual(Tokenize(s, TokenizerConfig{}), Tokenize(s, TokenizerConfig{}))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// scanWorld runs Scan over the sources with p ranks and returns each rank's
// forward index plus rank 0's vocabulary view.
func scanWorld(t *testing.T, p int, sources []*corpus.Source) []*Forward {
	t.Helper()
	fwds := make([]*Forward, p)
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		vocab := dhash.New(c, armci.New(c))
		parts := corpus.Partition(sources, p)
		fwd, err := Scan(c, vocab, parts[c.Rank()], TokenizerConfig{})
		if err != nil {
			return err
		}
		vocab.Finalize()
		fwd.RemapDense(c, vocab)
		fwd.AssignGlobalDocIDs(c)
		fwds[c.Rank()] = fwd
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fwds
}

func testSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 40_000, Sources: 6, Seed: 11, VocabSize: 1500, Topics: 4,
	})
}

func TestScanCoversAllRecords(t *testing.T) {
	sources := testSources()
	var wantDocs int
	for _, s := range sources {
		recs, err := corpus.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		wantDocs += len(recs)
	}
	for _, p := range []int{1, 2, 5} {
		fwds := scanWorld(t, p, sources)
		var got int
		for _, f := range fwds {
			got += f.NumRecords()
		}
		if got != wantDocs {
			t.Fatalf("p=%d: scanned %d of %d records", p, got, wantDocs)
		}
		if fwds[0].TotalDocs != int64(wantDocs) {
			t.Fatalf("p=%d: TotalDocs=%d want %d", p, fwds[0].TotalDocs, wantDocs)
		}
	}
}

func TestGlobalDocIDsArePInvariantPermutation(t *testing.T) {
	sources := testSources()
	collect := func(p int) map[string]int64 {
		out := make(map[string]int64)
		for _, f := range scanWorld(t, p, sources) {
			for i, rid := range f.RecordIDs {
				out[rid] = f.GlobalDocIDs[i]
			}
		}
		return out
	}
	base := collect(1)
	// IDs are a permutation of 0..D-1.
	seen := make(map[int64]bool)
	for _, id := range base {
		if id < 0 || id >= int64(len(base)) || seen[id] {
			t.Fatalf("bad id %d", id)
		}
		seen[id] = true
	}
	for _, p := range []int{2, 4} {
		got := collect(p)
		if len(got) != len(base) {
			t.Fatalf("p=%d: %d ids vs %d", p, len(got), len(base))
		}
		for rid, id := range base {
			if got[rid] != id {
				t.Fatalf("p=%d: record %s id %d vs %d", p, rid, got[rid], id)
			}
		}
	}
}

func TestScanTokensMatchDirectTokenization(t *testing.T) {
	docs := []string{
		"parallel scalable text engines for visual analytics",
		"clusters of documents reveal hidden thematic relationships",
		"the quick brown fox jumps over the lazy dog",
	}
	src := corpus.FromTexts("unit", docs)
	fwds := scanWorld(t, 2, []*corpus.Source{src})
	var all *Forward
	for _, f := range fwds {
		if f.NumRecords() > 0 {
			all = f
		}
	}
	if all == nil || all.NumRecords() != 3 {
		t.Fatalf("records not scanned together: %+v", fwds)
	}
	for i, d := range docs {
		want := Tokenize(d, TokenizerConfig{})
		got := all.RecordTokens(i)
		if len(got) != len(want) {
			t.Fatalf("record %d: %d tokens, want %d", i, len(got), len(want))
		}
	}
}

func TestFieldSpansPartitionTokens(t *testing.T) {
	sources := testSources()
	for _, f := range scanWorld(t, 3, sources) {
		var covered int64
		prevHi := int64(0)
		// Fields must tile the token stream in order.
		for _, span := range f.Fields {
			if span.Lo != prevHi {
				t.Fatalf("field gap: lo=%d prev=%d", span.Lo, prevHi)
			}
			if span.Hi < span.Lo {
				t.Fatalf("negative span")
			}
			covered += span.Hi - span.Lo
			prevHi = span.Hi
		}
		if covered != int64(len(f.Tokens)) {
			t.Fatalf("fields cover %d of %d tokens", covered, len(f.Tokens))
		}
		// Record offsets also tile.
		if f.RecordOffsets[0] != 0 || f.RecordOffsets[len(f.RecordOffsets)-1] != int64(len(f.Tokens)) {
			t.Fatalf("record offsets don't tile")
		}
		if !sort.SliceIsSorted(f.RecordOffsets, func(a, b int) bool { return f.RecordOffsets[a] < f.RecordOffsets[b] }) {
			t.Fatalf("record offsets unsorted")
		}
	}
}

func TestVocabularySetInvariantAcrossP(t *testing.T) {
	sources := testSources()
	collect := func(p int) map[string]bool {
		out := make(map[string]bool)
		_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
			vocab := dhash.New(c, armci.New(c))
			parts := corpus.Partition(sources, p)
			if _, err := Scan(c, vocab, parts[c.Rank()], TokenizerConfig{}); err != nil {
				return err
			}
			n := vocab.Finalize()
			if c.Rank() == 0 {
				for d := int64(0); d < n; d++ {
					out[vocab.Term(d)] = true
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := collect(1)
	for _, p := range []int{2, 4} {
		got := collect(p)
		if len(got) != len(base) {
			t.Fatalf("p=%d: vocab %d vs %d", p, len(got), len(base))
		}
		for term := range base {
			if !got[term] {
				t.Fatalf("p=%d: missing term %q", p, term)
			}
		}
	}
}

func TestScanParseErrorPropagates(t *testing.T) {
	bad := &corpus.Source{Name: "bad", Format: corpus.FormatPubMed, Data: []byte("garbage line\n")}
	_, err := cluster.Run(1, simtime.Zero(), func(c *cluster.Comm) error {
		vocab := dhash.New(c, armci.New(c))
		_, err := Scan(c, vocab, []*corpus.Source{bad}, TokenizerConfig{})
		return err
	})
	if err == nil {
		t.Fatal("expected parse error to propagate")
	}
}

func TestScanChargesVirtualTime(t *testing.T) {
	sources := testSources()
	w, err := cluster.Run(2, nil, func(c *cluster.Comm) error {
		vocab := dhash.New(c, armci.New(c))
		parts := corpus.Partition(sources, 2)
		_, err := Scan(c, vocab, parts[c.Rank()], TokenizerConfig{})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, clk := range w.Clocks() {
		if clk.Now() <= 0 {
			t.Fatalf("rank %d scanned for free", r)
		}
	}
}

func TestRawBytesAccounting(t *testing.T) {
	sources := testSources()
	fwds := scanWorld(t, 2, sources)
	var total int64
	for _, f := range fwds {
		total += f.RawBytes
	}
	if total != corpus.TotalBytes(sources) {
		t.Fatalf("raw bytes %d vs %d", total, corpus.TotalBytes(sources))
	}
}

func ExampleTokenize() {
	fmt.Println(Tokenize("Scalable Visual Analytics of Massive Textual Datasets!", TokenizerConfig{}))
	// Output: [scalable visual analytics massive textual datasets]
}

func TestNormalizeTermMatchesTokenizerFold(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Apple", "apple"},
		{"NAÏVE", "naïve"},
		{"Café", "café"},
		{"STRASSE", "strasse"},
		{"'quoted'", "quoted"},
		{"-dash-", "dash"},
		{"--'mix'-", "mix"},
		{"state-of-the-art", "state-of-the-art"}, // interior connectors survive
		{"o'brien", "o'brien"},
	}
	for _, c := range cases {
		if got := NormalizeTerm(c.in); got != c.want {
			t.Errorf("NormalizeTerm(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Every token the tokenizer emits is a fixed point of NormalizeTerm —
	// the property that makes query-side folding agree with the index.
	text := "Naïve CAFÉS résumé 'alpha' beta-gamma- O'Brien <b>Markup</b> straße"
	for _, tok := range Tokenize(text, TokenizerConfig{}) {
		if got := NormalizeTerm(tok); got != tok {
			t.Errorf("indexed token %q renormalizes to %q", tok, got)
		}
	}
}
