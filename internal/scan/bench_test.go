package scan

import (
	"strings"
	"testing"

	"inspire/internal/armci"
	"inspire/internal/cluster"
	"inspire/internal/corpus"
	"inspire/internal/dhash"
	"inspire/internal/simtime"
)

// benchText is ~1 KB of representative prose.
var benchText = strings.Repeat(
	"parallel text processing engines enable interactive visual analytics "+
		"over massive document collections, revealing hidden thematic structure; ", 8)

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEachToken(benchText, TokenizerConfig{}, func(string) { n++ })
		if n == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkScanPipeline(b *testing.B) {
	sources := corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 256 << 10, Sources: 8, Seed: 1, VocabSize: 5000,
	})
	b.SetBytes(corpus.TotalBytes(sources))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
			vocab := dhash.New(c, armci.New(c))
			parts := corpus.Partition(sources, 2)
			_, err := Scan(c, vocab, parts[c.Rank()], TokenizerConfig{})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
