package simtime

import (
	"fmt"
	"sort"
	"sync"
)

// Clock is the virtual clock of one SPMD rank. A Clock is advanced only by
// its owning rank's goroutine; the one cross-rank interaction, observing a
// message arrival time, is synchronized by the transport that carries the
// message, so Clock itself needs no locking for the fast path. A mutex still
// guards Now/Advance so that instrumentation goroutines may read safely.
type Clock struct {
	mu  sync.Mutex
	now float64
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds. Negative d is ignored: cost
// functions can legitimately round to zero but never travel backwards.
func (c *Clock) Advance(d float64) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Merge sets the clock to max(current, t); used when receiving a message
// whose arrival time is t.
func (c *Clock) Merge(t float64) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Set forces the clock to t; used by barrier-style collectives after all
// ranks agree on a common time.
func (c *Clock) Set(t float64) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Span records the virtual start and end of one component on one rank.
type Span struct {
	Component string
	Start     float64
	End       float64
}

// Duration returns the span length in virtual seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline accumulates the per-component spans of one rank.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Record appends a completed span.
func (t *Timeline) Record(component string, start, end float64) {
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Component: component, Start: start, End: end})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in insertion order.
func (t *Timeline) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// ComponentTotal returns the summed duration of all spans with the given
// component name.
func (t *Timeline) ComponentTotal(component string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum float64
	for _, s := range t.spans {
		if s.Component == component {
			sum += s.Duration()
		}
	}
	return sum
}

// Breakdown summarizes component durations across the timelines of all ranks.
// For each component it keeps the maximum over ranks (the component's
// critical-path duration, since components are separated by barriers) and the
// per-rank durations for balance analysis.
type Breakdown struct {
	// PerRank maps component -> per-rank summed durations.
	PerRank map[string][]float64
	// Order lists components in first-seen order.
	Order []string
}

// Collect builds a Breakdown from the per-rank timelines.
func Collect(timelines []*Timeline) *Breakdown {
	b := &Breakdown{PerRank: make(map[string][]float64)}
	for rank, tl := range timelines {
		for _, s := range tl.Spans() {
			if _, ok := b.PerRank[s.Component]; !ok {
				b.PerRank[s.Component] = make([]float64, len(timelines))
				b.Order = append(b.Order, s.Component)
			}
			b.PerRank[s.Component][rank] += s.Duration()
		}
	}
	return b
}

// Max returns the maximum per-rank duration of the component.
func (b *Breakdown) Max(component string) float64 {
	var m float64
	for _, d := range b.PerRank[component] {
		if d > m {
			m = d
		}
	}
	return m
}

// Total returns the sum over components of the per-component maxima: the
// virtual wall-clock of a barrier-separated pipeline.
func (b *Breakdown) Total() float64 {
	var sum float64
	for _, c := range b.Order {
		sum += b.Max(c)
	}
	return sum
}

// Imbalance returns max/mean of the per-rank durations for a component; 1.0
// is perfectly balanced. Returns 0 when the component did no work.
func (b *Breakdown) Imbalance(component string) float64 {
	per := b.PerRank[component]
	if len(per) == 0 {
		return 0
	}
	var sum, max float64
	for _, d := range per {
		sum += d
		if d > max {
			max = d
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(per))
	return max / mean
}

// Percentages returns the share (0..100) of each component in the total,
// keyed by component, using per-component maxima. Components with zero total
// are reported as 0.
func (b *Breakdown) Percentages() map[string]float64 {
	total := b.Total()
	out := make(map[string]float64, len(b.Order))
	for _, c := range b.Order {
		if total > 0 {
			out[c] = 100 * b.Max(c) / total
		} else {
			out[c] = 0
		}
	}
	return out
}

// String renders the breakdown as an aligned table, components in order.
func (b *Breakdown) String() string {
	out := ""
	for _, c := range b.Order {
		out += fmt.Sprintf("%-10s max=%10.3fs imbalance=%5.2f\n", c, b.Max(c), b.Imbalance(c))
	}
	return out
}

// ListSchedule simulates greedy self-scheduling of independent task costs
// onto p workers: each successive task is taken by the worker with the
// smallest accumulated load. This is the deterministic equivalent of the
// paper's fixed-size-chunking dynamic load balancer (a worker grabs the next
// load the moment it becomes idle), and is used to compute reproducible
// virtual durations for the work-stealing indexing stage. It returns the
// makespan and the per-worker loads.
func ListSchedule(costs []float64, p int) (makespan float64, perWorker []float64) {
	if p <= 0 {
		return 0, nil
	}
	perWorker = make([]float64, p)
	for _, c := range costs {
		// Find least-loaded worker; ties resolve to the lowest rank,
		// keeping the schedule deterministic.
		best := 0
		for w := 1; w < p; w++ {
			if perWorker[w] < perWorker[best] {
				best = w
			}
		}
		perWorker[best] += c
	}
	for _, l := range perWorker {
		if l > makespan {
			makespan = l
		}
	}
	return makespan, perWorker
}

// LPTSchedule is ListSchedule after sorting costs in decreasing order
// (longest processing time first). The paper's own-loads-first priority queue
// behaves between ListSchedule and LPTSchedule; LPT is provided for ablation.
func LPTSchedule(costs []float64, p int) (makespan float64, perWorker []float64) {
	sorted := make([]float64, len(costs))
	copy(sorted, costs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return ListSchedule(sorted, p)
}

// StaticSchedule assigns each task to its owning worker (owners[i] is the
// rank that owns task i) and returns the resulting makespan and per-worker
// loads — the no-load-balancing baseline of the paper's Figure 9.
func StaticSchedule(costs []float64, owners []int, p int) (makespan float64, perWorker []float64) {
	perWorker = make([]float64, p)
	for i, c := range costs {
		o := 0
		if i < len(owners) {
			o = owners[i]
		}
		if o < 0 || o >= p {
			o = 0
		}
		perWorker[o] += c
	}
	for _, l := range perWorker {
		if l > makespan {
			makespan = l
		}
	}
	return makespan, perWorker
}

// MasterWorkerSchedule models the master-worker dynamic load balancer the
// paper contrasts with the GA atomic task queue (§3.3): every task grab is a
// round-trip RPC to rank 0, and the master services requests serially. The
// returned makespan is the larger of the list-scheduling makespan with the
// per-task RPC overhead added and the master's total service time.
func MasterWorkerSchedule(costs []float64, p int, rpcRoundTrip, masterService float64) float64 {
	if p <= 1 {
		var sum float64
		for _, c := range costs {
			sum += c
		}
		return sum
	}
	withOverhead := make([]float64, len(costs))
	for i, c := range costs {
		withOverhead[i] = c + rpcRoundTrip
	}
	// Rank 0 both dispatches and works in the paper's master-worker
	// framing; modeling it as a dedicated master is the conventional
	// (and more favourable) variant, so use p workers.
	makespan, _ := ListSchedule(withOverhead, p)
	serial := float64(len(costs)) * masterService
	if serial > makespan {
		makespan = serial
	}
	return makespan
}
