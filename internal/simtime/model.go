// Package simtime provides a virtual-time machine model for reproducing the
// scaling behaviour of the IPDPS 2007 IN-SPIRE parallel text engine on
// hardware that differs from the paper's 48-processor Itanium/Infiniband
// cluster.
//
// Each SPMD rank owns a Clock. Computation advances the clock according to
// calibrated per-work-unit rates; communication advances it according to an
// alpha-beta (latency + 1/bandwidth) model; collectives synchronize clocks.
// Because the model charges cost per unit of *observed* work (bytes
// tokenized, postings inverted, floating point operations, message bytes),
// the resulting scaling curves depend only on the algorithm's work and
// communication structure — exactly the quantity the paper's figures report —
// and not on the host machine.
package simtime

import (
	"fmt"
	"math"
)

// Model holds the calibrated cost parameters of the modeled machine.
//
// The default profile, PNNLCluster2007, is calibrated against the one
// absolute anchor the paper's Figure 5 provides on a linear axis: the TREC
// 8.21 GB run takes ~110 minutes on 4 processors, i.e. an end-to-end
// pipeline throughput around 0.3 MB/s per processor. Absolute agreement with
// the paper is secondary; shape agreement is the goal.
type Model struct {
	// Name identifies the profile in reports.
	Name string

	// ScanBytesPerSec is the tokenization + forward-indexing throughput of
	// one processor in bytes per second.
	ScanBytesPerSec float64

	// PostingsPerSec is the inverted-file-indexing throughput of one
	// processor in posting entries per second (one FAST-INV pass).
	PostingsPerSec float64

	// Flops is the floating-point throughput of one processor in
	// operations per second, used for topicality, association matrix,
	// signature, clustering and projection arithmetic.
	Flops float64

	// TokensPerSec is the rate at which already-tokenized term streams can
	// be re-traversed (hash lookups, counting), used by stages that walk
	// the forward index.
	TokensPerSec float64

	// Latency is the one-way small-message latency in seconds (alpha).
	Latency float64

	// ByteTime is the per-byte transfer time in seconds (beta = 1/BW).
	ByteTime float64

	// AtomicCost is the cost of one remote atomic read-increment.
	AtomicCost float64

	// RPCCost is the fixed software overhead of one remote procedure call
	// beyond its message transfer costs.
	RPCCost float64

	// MemBytesPerProc is the memory available to one process in bytes.
	// When a stage's per-process working set exceeds it, compute costs are
	// multiplied by a pressure penalty (paper §4.2: the 16.44 GB PubMed run
	// on 4 processors suffers "excessive cache misses, page faults").
	MemBytesPerProc float64

	// DataScale inflates observed work and traffic to the modeled dataset
	// size. Running a 32 MB synthetic corpus with DataScale 512 models the
	// 16.44 GB corpus of the paper. DataScale never changes *what* is
	// computed, only the reported virtual durations.
	DataScale float64

	// IO models the storage subsystem feeding source scans. Nil means
	// ideal storage (reads are free; the scan stays compute-bound), the
	// regime the headline figures use; the A3 ablation compares shared-NFS
	// and Lustre profiles.
	IO *IOModel
}

// PNNLCluster2007 returns the default machine profile: dual 1.5 GHz Itanium-2
// nodes with an Infiniband interconnect, as used in the paper's evaluation.
func PNNLCluster2007() *Model {
	return &Model{
		Name:            "PNNL Itanium-2/Infiniband cluster (2007)",
		ScanBytesPerSec: 1.7e6, // tokenize + hash + forward index
		PostingsPerSec:  3.3e5, // two-pass FAST-INV effective rate
		Flops:           85e6,  // sustained, cache-unfriendly text kernels
		TokensPerSec:    9.3e5,
		Latency:         8e-6,    // Infiniband + MPI/ARMCI software stack
		ByteTime:        1.25e-9, // ~800 MB/s effective point-to-point
		AtomicCost:      12e-6,
		RPCCost:         10e-6,
		MemBytesPerProc: 4 << 30, // dual-CPU nodes with 8 GB RAM
		DataScale:       1,
	}
}

// Zero returns a model in which communication is free and compute rates are
// unit; useful in unit tests that check accounting structure rather than
// calibrated values.
func Zero() *Model {
	return &Model{
		Name:            "zero",
		ScanBytesPerSec: 1,
		PostingsPerSec:  1,
		Flops:           1,
		TokensPerSec:    1,
		MemBytesPerProc: math.MaxFloat64,
		DataScale:       1,
	}
}

// Validate reports an error when a model is not usable.
func (m *Model) Validate() error {
	switch {
	case m == nil:
		return fmt.Errorf("simtime: nil model")
	case m.ScanBytesPerSec <= 0, m.PostingsPerSec <= 0, m.Flops <= 0, m.TokensPerSec <= 0:
		return fmt.Errorf("simtime: model %q has non-positive compute rate", m.Name)
	case m.Latency < 0 || m.ByteTime < 0 || m.AtomicCost < 0 || m.RPCCost < 0:
		return fmt.Errorf("simtime: model %q has negative communication cost", m.Name)
	case m.DataScale <= 0:
		return fmt.Errorf("simtime: model %q has non-positive DataScale", m.Name)
	case m.MemBytesPerProc <= 0:
		return fmt.Errorf("simtime: model %q has non-positive memory size", m.Name)
	}
	return nil
}

// ScanCost returns the virtual seconds to tokenize and forward-index n raw
// bytes on one processor.
func (m *Model) ScanCost(bytes float64) float64 {
	return m.DataScale * bytes / m.ScanBytesPerSec
}

// InvertCost returns the virtual seconds to process n posting entries in one
// FAST-INV pass.
func (m *Model) InvertCost(postings float64) float64 {
	return m.DataScale * postings / m.PostingsPerSec
}

// TokenCost returns the virtual seconds to re-walk n term-stream tokens.
func (m *Model) TokenCost(tokens float64) float64 {
	return m.DataScale * tokens / m.TokensPerSec
}

// FlopCost returns the virtual seconds for n floating point operations.
// Flop counts scale with signature dimensionality and document count, both of
// which already reflect the scaled corpus, so DataScale applies here too.
func (m *Model) FlopCost(flops float64) float64 {
	return m.DataScale * flops / m.Flops
}

// SendCost returns the virtual seconds for a one-way message of n payload
// bytes: alpha + beta*bytes. Messages carry coordination and model state
// (topic lists, association matrices, centroid sums) whose sizes do not grow
// with the corpus, so DataScale does NOT apply here; bulk corpus data moves
// through the one-sided Global Arrays path, which is scaled.
func (m *Model) SendCost(bytes float64) float64 {
	return m.Latency + m.ByteTime*bytes
}

// OneSidedCost returns the virtual seconds charged at the origin for a
// one-sided Get/Put/Acc of n bytes against a remote shard. One-sided
// transfers carry corpus-proportional data (tokens, postings, statistics),
// so the byte volume is inflated by DataScale to the modeled corpus size.
func (m *Model) OneSidedCost(bytes float64) float64 {
	return m.Latency + m.ByteTime*m.DataScale*bytes
}

// LocalCopyCost returns the virtual seconds for an in-node memory copy of n
// bytes (charged for GA accesses that resolve locally).
func (m *Model) LocalCopyCost(bytes float64) float64 {
	const localByteTime = 0.25e-9 // ~4 GB/s memcpy
	return localByteTime * m.DataScale * bytes
}

// RPCRoundTrip returns the virtual seconds for one remote procedure call
// carrying arg and reply payloads of the given sizes.
func (m *Model) RPCRoundTrip(argBytes, replyBytes float64) float64 {
	return m.RPCCost + m.SendCost(argBytes) + m.SendCost(replyBytes)
}

// MemoryPressure returns the compute multiplier (>= 1) for a stage whose
// per-process working set is ws bytes. Below the memory size the multiplier
// is 1; above it the penalty grows quadratically with the overcommit ratio,
// reproducing the paper's off-trend 16.44 GB / 4-processor PubMed point.
func (m *Model) MemoryPressure(ws float64) float64 {
	if ws <= m.MemBytesPerProc {
		return 1
	}
	r := ws / m.MemBytesPerProc
	return r * r
}
