package simtime

// Storage model for the scanning component. The paper observes (§4.2): "The
// scanning component is I/O bound as well as computationally bound. In case
// of larger files and a large number of processors, the scanning component
// becomes I/O bound, which can be leveraged by using scalable parallel file
// systems (e.g., Lustre)." The IOModel captures the two regimes: a per-node
// link ceiling and a shared backend ceiling that P readers contend for.

// IOModel describes the storage subsystem feeding source scans.
type IOModel struct {
	// Name identifies the profile in reports.
	Name string
	// NodeBandwidth is one process's uncontended read bandwidth (bytes/s).
	NodeBandwidth float64
	// AggregateBandwidth is the backend's total bandwidth, shared by all
	// concurrent readers (bytes/s).
	AggregateBandwidth float64
}

// NFS2007 models a single shared filer over gigabit ethernet: fine for a few
// readers, saturating as processors multiply.
func NFS2007() *IOModel {
	return &IOModel{
		Name:               "shared NFS filer (2007)",
		NodeBandwidth:      60e6,
		AggregateBandwidth: 30e6,
	}
}

// Lustre2007 models a striped parallel filesystem of the era: per-node
// bandwidth is the binding constraint across the whole processor range.
func Lustre2007() *IOModel {
	return &IOModel{
		Name:               "Lustre parallel filesystem (2007)",
		NodeBandwidth:      120e6,
		AggregateBandwidth: 6e9,
	}
}

// ReadCost returns the virtual seconds for one process to read n source
// bytes while p processes share the backend: the effective bandwidth is the
// smaller of the node link and the process's fair share of the backend.
// A nil receiver (no storage model configured) reads for free, keeping the
// compute-bound default behaviour.
func (io *IOModel) ReadCost(m *Model, bytes float64, p int) float64 {
	if io == nil || bytes <= 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	eff := io.NodeBandwidth
	if share := io.AggregateBandwidth / float64(p); share < eff {
		eff = share
	}
	if eff <= 0 {
		return 0
	}
	return m.DataScale * bytes / eff
}
