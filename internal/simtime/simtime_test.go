package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelValidate(t *testing.T) {
	if err := PNNLCluster2007().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	if err := Zero().Validate(); err != nil {
		t.Fatalf("zero profile invalid: %v", err)
	}
	var nilModel *Model
	if err := nilModel.Validate(); err == nil {
		t.Fatal("nil model should be invalid")
	}
	bad := PNNLCluster2007()
	bad.Flops = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero flop rate should be invalid")
	}
	bad = PNNLCluster2007()
	bad.DataScale = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative DataScale should be invalid")
	}
	bad = PNNLCluster2007()
	bad.Latency = -1e-6
	if err := bad.Validate(); err == nil {
		t.Fatal("negative latency should be invalid")
	}
	bad = PNNLCluster2007()
	bad.MemBytesPerProc = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero memory should be invalid")
	}
}

func TestCostsScaleLinearly(t *testing.T) {
	m := PNNLCluster2007()
	if got := m.ScanCost(2 * m.ScanBytesPerSec); math.Abs(got-2) > 1e-12 {
		t.Errorf("ScanCost: got %g, want 2", got)
	}
	if got := m.InvertCost(3 * m.PostingsPerSec); math.Abs(got-3) > 1e-12 {
		t.Errorf("InvertCost: got %g, want 3", got)
	}
	if got := m.FlopCost(m.Flops); math.Abs(got-1) > 1e-12 {
		t.Errorf("FlopCost: got %g, want 1", got)
	}
	if got := m.TokenCost(m.TokensPerSec); math.Abs(got-1) > 1e-12 {
		t.Errorf("TokenCost: got %g, want 1", got)
	}
}

func TestDataScaleInflatesWork(t *testing.T) {
	m := PNNLCluster2007()
	base := m.ScanCost(1e6)
	m.DataScale = 512
	if got := m.ScanCost(1e6); math.Abs(got-512*base) > 1e-9 {
		t.Errorf("DataScale: got %g, want %g", got, 512*base)
	}
	// Latency is not scaled; only the byte term is.
	small := m.SendCost(0)
	if small != m.Latency {
		t.Errorf("SendCost(0): got %g, want latency %g", small, m.Latency)
	}
}

func TestMemoryPressure(t *testing.T) {
	m := PNNLCluster2007()
	if got := m.MemoryPressure(m.MemBytesPerProc / 2); got != 1 {
		t.Errorf("below memory: got %g, want 1", got)
	}
	if got := m.MemoryPressure(m.MemBytesPerProc); got != 1 {
		t.Errorf("at memory: got %g, want 1", got)
	}
	got := m.MemoryPressure(2 * m.MemBytesPerProc)
	if math.Abs(got-4) > 1e-12 {
		t.Errorf("2x overcommit: got %g, want 4", got)
	}
	// Monotone non-decreasing in working set.
	prev := 0.0
	for ws := 0.5; ws <= 4; ws += 0.25 {
		p := m.MemoryPressure(ws * m.MemBytesPerProc)
		if p < prev {
			t.Fatalf("pressure not monotone at %gx: %g < %g", ws, p, prev)
		}
		prev = p
	}
}

func TestClockBasics(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if got := c.Now(); got != 1.5 {
		t.Fatalf("got %g, want 1.5", got)
	}
	c.Merge(1.0) // earlier: no-op
	if got := c.Now(); got != 1.5 {
		t.Fatalf("merge backwards moved clock: %g", got)
	}
	c.Merge(2.0)
	if got := c.Now(); got != 2.0 {
		t.Fatalf("merge forwards: got %g, want 2", got)
	}
	c.Set(0.5)
	if got := c.Now(); got != 0.5 {
		t.Fatalf("set: got %g, want 0.5", got)
	}
}

func TestTimelineAndBreakdown(t *testing.T) {
	t0 := NewTimeline()
	t1 := NewTimeline()
	t0.Record("scan", 0, 10)
	t1.Record("scan", 0, 6)
	t0.Record("index", 10, 12)
	t1.Record("index", 6, 18)
	b := Collect([]*Timeline{t0, t1})
	if got := b.Max("scan"); got != 10 {
		t.Errorf("scan max: got %g, want 10", got)
	}
	if got := b.Max("index"); got != 12 {
		t.Errorf("index max: got %g, want 12", got)
	}
	if got := b.Total(); got != 22 {
		t.Errorf("total: got %g, want 22", got)
	}
	pct := b.Percentages()
	if math.Abs(pct["scan"]+pct["index"]-100) > 1e-9 {
		t.Errorf("percentages do not sum to 100: %v", pct)
	}
	// scan: loads 10 and 6 -> mean 8, max 10 -> imbalance 1.25
	if got := b.Imbalance("scan"); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("imbalance: got %g, want 1.25", got)
	}
	if len(b.Order) != 2 || b.Order[0] != "scan" || b.Order[1] != "index" {
		t.Errorf("component order wrong: %v", b.Order)
	}
}

func TestTimelineComponentTotal(t *testing.T) {
	tl := NewTimeline()
	tl.Record("a", 0, 1)
	tl.Record("a", 5, 7.5)
	tl.Record("b", 1, 5)
	if got := tl.ComponentTotal("a"); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("got %g, want 3.5", got)
	}
	if got := tl.ComponentTotal("missing"); got != 0 {
		t.Errorf("missing component: got %g, want 0", got)
	}
	// Negative spans are clamped.
	tl.Record("c", 10, 9)
	if got := tl.ComponentTotal("c"); got != 0 {
		t.Errorf("clamped span: got %g, want 0", got)
	}
}

func TestListScheduleConservesWork(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%8) + 1
		costs := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			costs[i] = float64(r) / 100
			total += costs[i]
		}
		makespan, per := ListSchedule(costs, p)
		var sum, max float64
		for _, l := range per {
			sum += l
			if l > max {
				max = l
			}
		}
		if math.Abs(sum-total) > 1e-6*(1+total) {
			return false
		}
		if math.Abs(max-makespan) > 1e-12 {
			return false
		}
		// Makespan is at least total/p and at most total.
		return makespan >= total/float64(p)-1e-9 && makespan <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestListScheduleGreedyBound(t *testing.T) {
	// Greedy list scheduling is within 2x of the lower bound
	// max(total/p, maxTask).
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := int(pRaw%16) + 1
		costs := make([]float64, len(raw))
		var total, maxTask float64
		for i, r := range raw {
			costs[i] = float64(r)/500 + 0.001
			total += costs[i]
			if costs[i] > maxTask {
				maxTask = costs[i]
			}
		}
		lower := total / float64(p)
		if maxTask > lower {
			lower = maxTask
		}
		makespan, _ := ListSchedule(costs, p)
		return makespan <= 2*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLPTNoWorseThanList(t *testing.T) {
	costs := []float64{9, 1, 1, 1, 1, 1, 8, 7}
	listM, _ := ListSchedule(costs, 3)
	lptM, _ := LPTSchedule(costs, 3)
	if lptM > listM+1e-12 {
		t.Errorf("LPT %g worse than list %g on adversarial input", lptM, listM)
	}
}

func TestStaticSchedule(t *testing.T) {
	costs := []float64{4, 1, 1, 1}
	owners := []int{0, 1, 1, 1}
	makespan, per := StaticSchedule(costs, owners, 2)
	if makespan != 4 {
		t.Errorf("makespan: got %g, want 4", makespan)
	}
	if per[0] != 4 || per[1] != 3 {
		t.Errorf("per-worker: got %v, want [4 3]", per)
	}
	// Out-of-range owners fall back to rank 0 rather than dropping work.
	_, per2 := StaticSchedule([]float64{1, 1}, []int{-1, 99}, 2)
	if per2[0] != 2 {
		t.Errorf("fallback owner: got %v", per2)
	}
}

func TestMasterWorkerSlowerThanListUnderContention(t *testing.T) {
	costs := make([]float64, 10000)
	for i := range costs {
		costs[i] = 0.0001
	}
	p := 32
	list, _ := ListSchedule(costs, p)
	mw := MasterWorkerSchedule(costs, p, 20e-6, 15e-6)
	if mw <= list {
		t.Errorf("master-worker (%g) should exceed atomic task queue (%g) on fine-grained tasks", mw, list)
	}
	// Single process: degenerate to serial sum.
	serial := MasterWorkerSchedule([]float64{1, 2, 3}, 1, 1, 1)
	if math.Abs(serial-6) > 1e-12 {
		t.Errorf("p=1: got %g, want 6", serial)
	}
}

func TestSchedulesEmptyAndDegenerate(t *testing.T) {
	if m, per := ListSchedule(nil, 4); m != 0 || len(per) != 4 {
		t.Errorf("empty: got %g, %v", m, per)
	}
	if m, per := ListSchedule([]float64{1}, 0); m != 0 || per != nil {
		t.Errorf("p=0: got %g, %v", m, per)
	}
}

func TestIOModelReadCost(t *testing.T) {
	m := PNNLCluster2007()
	var none *IOModel
	if none.ReadCost(m, 1e6, 4) != 0 {
		t.Fatal("nil IO model should read for free")
	}
	nfs := NFS2007()
	// Few readers: node bandwidth binds; many readers: aggregate binds.
	few := nfs.ReadCost(m, 1e6, 1)
	many := nfs.ReadCost(m, 1e6, 32)
	if many <= few {
		t.Fatalf("contention should slow reads: few=%g many=%g", few, many)
	}
	wantMany := 1e6 / (nfs.AggregateBandwidth / 32)
	if math.Abs(many-wantMany) > 1e-9*wantMany {
		t.Fatalf("aggregate share: got %g want %g", many, wantMany)
	}
	lustre := Lustre2007()
	// Lustre's aggregate never binds across the paper's range.
	if lustre.ReadCost(m, 1e6, 32) != 1e6/lustre.NodeBandwidth {
		t.Fatal("lustre should be node-bound at P=32")
	}
	// DataScale inflates read volume.
	m2 := PNNLCluster2007()
	m2.DataScale = 8
	if got := nfs.ReadCost(m2, 1e6, 1); math.Abs(got-8*few) > 1e-9*got {
		t.Fatalf("DataScale on reads: %g vs %g", got, 8*few)
	}
	if nfs.ReadCost(m, 0, 4) != 0 || nfs.ReadCost(m, -5, 4) != 0 {
		t.Fatal("non-positive bytes should be free")
	}
	if nfs.ReadCost(m, 100, 0) != nfs.ReadCost(m, 100, 1) {
		t.Fatal("p<1 should clamp to 1")
	}
}
