package storefile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func sampleSections() []Section {
	return []Section{
		{Name: "meta", Data: []byte("hello meta")},
		{Name: "empty", Data: nil},
		{Name: "blob_1", Data: bytes.Repeat([]byte{0xAB, 0x00, 0xFF}, 5000)},
		{Name: "nums", Data: AppendInt64s(nil, []int64{-1, 0, 1, 1 << 40})},
	}
}

// TestRoundTrip pins the canonical encoding: encode, decode, compare, and
// re-encode to the identical bytes, with every section page-aligned.
func TestRoundTrip(t *testing.T) {
	secs := sampleSections()
	enc, err := Encode(secs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections()) != len(secs) {
		t.Fatalf("%d sections, want %d", len(f.Sections()), len(secs))
	}
	for _, want := range secs {
		got, ok := f.Section(want.Name)
		if !ok {
			t.Fatalf("section %q missing", want.Name)
		}
		if !bytes.Equal(got, want.Data) {
			t.Fatalf("section %q differs", want.Name)
		}
	}
	if _, ok := f.Section("nosuch"); ok {
		t.Fatal("phantom section")
	}
	re, err := Encode(f.Sections())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatal("re-encode differs: encoding not canonical")
	}
	// Write produces the same bytes as Encode.
	var buf bytes.Buffer
	if err := Write(&buf, secs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), enc) {
		t.Fatal("Write differs from Encode")
	}
}

// TestAlignment checks every section lands on a page boundary, back to back
// with zero padding only.
func TestAlignment(t *testing.T) {
	secs := sampleSections()
	enc, err := Encode(secs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections() {
		if len(s.Data) == 0 {
			continue
		}
		// Recover the offset from the backing array positions: section
		// data aliases the encode buffer.
		var offset int64 = -1
		for i := range enc {
			if &enc[i] == &s.Data[0] {
				offset = int64(i)
				break
			}
		}
		if offset < 0 {
			t.Fatalf("section %q does not alias the buffer", s.Name)
		}
		if offset%PageSize != 0 {
			t.Fatalf("section %q at offset %d not page aligned", s.Name, offset)
		}
	}
}

// TestZeroSections: a file with no sections is just the header, and loads.
func TestZeroSections(t *testing.T) {
	enc, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections()) != 0 {
		t.Fatal("sections from empty encode")
	}
}

// TestOpen exercises the file path: mapped open and heap read agree.
func TestOpen(t *testing.T) {
	secs := sampleSections()
	path := filepath.Join(t.TempDir(), "x.store")
	if err := WriteFileAtomic(path, func(w io.Writer) error { return Write(w, secs) }); err != nil {
		t.Fatal(err)
	}
	mf, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	hf, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hf.Mapped() {
		t.Fatal("ReadFile claims mapped")
	}
	for _, want := range secs {
		got, ok := mf.Section(want.Name)
		if !ok || !bytes.Equal(got, want.Data) {
			t.Fatalf("mapped section %q differs", want.Name)
		}
		got, ok = hf.Section(want.Name)
		if !ok || !bytes.Equal(got, want.Data) {
			t.Fatalf("heap section %q differs", want.Name)
		}
	}
	if mf.Size() != hf.Size() {
		t.Fatalf("sizes differ: %d vs %d", mf.Size(), hf.Size())
	}
}

// TestEncodeRejects pins writer-side validation.
func TestEncodeRejects(t *testing.T) {
	cases := []struct {
		name string
		secs []Section
	}{
		{"duplicate name", []Section{{Name: "a", Data: nil}, {Name: "a", Data: nil}}},
		{"empty name", []Section{{Name: "", Data: nil}}},
		{"bad chars", []Section{{Name: "UPPER", Data: nil}}},
		{"space", []Section{{Name: "a b", Data: nil}}},
	}
	for _, tc := range cases {
		if _, err := Encode(tc.secs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestDecodeRejects pins reader-side validation over hand-corrupted inputs.
func TestDecodeRejects(t *testing.T) {
	valid, err := Encode(sampleSections())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mod func([]byte) []byte) {
		b := append([]byte(nil), valid...)
		b = mod(b)
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("nonzero flags", func(b []byte) []byte { b[11] = 1; return b })
	corrupt("truncated file", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("trailing byte", func(b []byte) []byte { return append(b, 0) })
	corrupt("nonzero padding", func(b []byte) []byte { b[PageSize-1] = 7; return b })
	corrupt("toc over file", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[12:], uint32(len(b)))
		return b
	})
	corrupt("header only", func(b []byte) []byte { return b[:8] })
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
}

// TestNumericSections round-trips int64/float64 vectors and exercises the
// unaligned copy fallback.
func TestNumericSections(t *testing.T) {
	ints := []int64{-5, 0, 9, 1 << 50, -(1 << 62)}
	floats := []float64{0, -1.5, 3.14159, 1e300}
	bi := AppendInt64s(nil, ints)
	bf := AppendFloat64s(nil, floats)

	gi, _, err := Int64s(bi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ints {
		if gi[i] != ints[i] {
			t.Fatalf("int64[%d] = %d, want %d", i, gi[i], ints[i])
		}
	}
	gf, _, err := Float64s(bf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range floats {
		if gf[i] != floats[i] {
			t.Fatalf("float64[%d] = %v, want %v", i, gf[i], floats[i])
		}
	}

	// Force the unaligned path: shift the buffer by one byte.
	shifted := append(make([]byte, 1, 1+len(bi)), bi...)[1:]
	gu, copied, err := Int64s(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if hostLittleEndian && !copied {
		t.Fatal("unaligned section claims aliased")
	}
	for i := range ints {
		if gu[i] != ints[i] {
			t.Fatalf("unaligned int64[%d] = %d, want %d", i, gu[i], ints[i])
		}
	}

	if _, _, err := Int64s(make([]byte, 7)); err == nil {
		t.Fatal("ragged int64 section accepted")
	}
	if _, _, err := Float64s(make([]byte, 9)); err == nil {
		t.Fatal("ragged float64 section accepted")
	}
	if got, _, err := Int64s(nil); err != nil || got != nil {
		t.Fatal("empty int64 section")
	}
	if String(nil) != "" || String([]byte("ab")) != "ab" {
		t.Fatal("String")
	}
}

// TestWriteFileAtomic is the torn-write regression test: a failing or
// crashing save must leave the previous file intact and no temp litter,
// where the old os.Create-over-target path would have truncated it.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.store")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("generation one"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A save that dies halfway through writing.
	err := WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(bytes.Repeat([]byte("torn"), 1<<16)); err != nil {
			return err
		}
		return fmt.Errorf("simulated crash mid-save")
	})
	if err == nil {
		t.Fatal("failing save reported success")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "generation one" {
		t.Fatalf("previous contents destroyed: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}

	// A successful overwrite replaces the contents completely.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("generation two"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "generation two" {
		t.Fatalf("overwrite: %q", got)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode %v err %v", fi.Mode(), err)
	}
}

// TestResident pins the accountant: budget enforcement, denial counting,
// unpinning, and the unlimited default.
func TestResident(t *testing.T) {
	var r Resident
	if !r.TryPin(1 << 40) {
		t.Fatal("unlimited budget refused a pin")
	}
	r.Unpin(1 << 40)

	r.SetBudget(100)
	if !r.TryPin(60) || !r.TryPin(40) {
		t.Fatal("pins within budget refused")
	}
	if r.TryPin(1) {
		t.Fatal("pin past budget accepted")
	}
	st := r.Stats()
	if st.PinnedBytes != 100 || st.BudgetBytes != 100 || st.PinDenials != 1 {
		t.Fatalf("stats %+v", st)
	}
	r.Unpin(40)
	if !r.TryPin(30) {
		t.Fatal("pin refused after unpin freed budget")
	}
	r.AddMapped(5000)
	r.Pin(7) // unconditional
	st = r.Stats()
	if st.MappedBytes != 5000 || st.PinnedBytes != 97 {
		t.Fatalf("stats %+v", st)
	}
}

// FuzzStoreFileRoundTrip: any input either decodes to sections that
// re-encode to the identical bytes, or is rejected without panicking.
func FuzzStoreFileRoundTrip(f *testing.F) {
	if enc, err := Encode(sampleSections()); err == nil {
		f.Add(enc)
	}
	if enc, err := Encode(nil); err == nil {
		f.Add(enc)
	}
	if enc, err := Encode([]Section{{Name: "a", Data: make([]byte, PageSize+1)}}); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(Magic))
	f.Add([]byte("INSPSTORE2\nnot this format"))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(file.Sections())
		if err != nil {
			t.Fatalf("decoded sections refuse to encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip differs: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}
