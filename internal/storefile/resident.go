package storefile

import "sync/atomic"

// Resident is the resident-set accountant for a mapped store: it tracks how
// many bytes the serving layer has pinned on heap (decoded posting lists in
// the LRUs, copy-decoded sections) against a budget, next to how many bytes
// stay evictable because they live only in the mapping and the kernel can
// reclaim them under pressure. Pinning is advisory — TryPin refuses once the
// budget is spent and the caller then serves straight from the mapped bytes
// instead of caching.
type Resident struct {
	budget atomic.Int64 // 0 means unlimited
	pinned atomic.Int64
	mapped atomic.Int64
	denied atomic.Uint64
}

// ResidentStats is a point-in-time snapshot for /stats.
type ResidentStats struct {
	BudgetBytes int64
	PinnedBytes int64
	MappedBytes int64
	PinDenials  uint64
}

// SetBudget sets the pinned-bytes budget; zero or negative means unlimited.
func (r *Resident) SetBudget(n int64) {
	if n < 0 {
		n = 0
	}
	r.budget.Store(n)
}

// AddMapped records n more bytes living evictable in the mapping.
func (r *Resident) AddMapped(n int64) { r.mapped.Add(n) }

// Pin records n heap bytes unconditionally (load-time copies that have no
// cheaper fallback).
func (r *Resident) Pin(n int64) { r.pinned.Add(n) }

// TryPin records n heap bytes if the budget allows, and reports whether it
// did. On refusal the denial counter advances and nothing is recorded.
func (r *Resident) TryPin(n int64) bool {
	budget := r.budget.Load()
	if budget <= 0 {
		r.pinned.Add(n)
		return true
	}
	for {
		cur := r.pinned.Load()
		if cur+n > budget {
			r.denied.Add(1)
			return false
		}
		if r.pinned.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Unpin releases n previously pinned bytes.
func (r *Resident) Unpin(n int64) { r.pinned.Add(-n) }

// Stats snapshots the accountant.
func (r *Resident) Stats() ResidentStats {
	return ResidentStats{
		BudgetBytes: r.budget.Load(),
		PinnedBytes: r.pinned.Load(),
		MappedBytes: r.mapped.Load(),
		PinDenials:  r.denied.Load(),
	}
}
