//go:build unix

package storefile

import (
	"fmt"
	"os"
	"syscall"
)

// openMapped maps the file read-only and shared, so physical pages are
// faulted in on demand and shared with every other process mapping the same
// file. An empty or header-only file still decodes (zero sections), but
// mmap rejects length 0, so tiny files fall back to a heap read.
func openMapped(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	info, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, fmt.Errorf("%s: storefile: empty file", path)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("%s: storefile: file too large to map", path)
	}
	data, err := syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("%s: mmap: %w", path, err)
	}
	f, err := Decode(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.mapped = true
	return f, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}
