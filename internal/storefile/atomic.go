package storefile

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file through write-to-temp + fsync + rename, so a
// crash mid-save can never leave a truncated or torn file at path: readers
// see either the complete old contents or the complete new contents. The
// write callback receives a buffered writer; the temp file lives in path's
// directory so the rename stays on one filesystem.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; match what os.Create-based savers produced.
	if err = tmp.Chmod(0o644); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
