//go:build !unix

package storefile

// openMapped degrades to a heap read where mmap is unavailable; the rest of
// the stack behaves identically, it just pays the resident copy.
func openMapped(path string) (*File, error) {
	return ReadFile(path)
}

func unmap(data []byte) error { return nil }
