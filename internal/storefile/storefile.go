// Package storefile implements the INSPSTORE4 on-disk layout: a page-aligned
// container of named byte sections behind a small directory, designed so a
// serving process can mmap the file and address every section — posting
// blobs, term dictionary, signatures, projected points, tile sidecar —
// directly in the mapped pages with no load-time copy. Pages are shared
// between processes mapping the same file, so spawning a replica costs page
// tables, not a heap.
//
// Layout:
//
//	offset 0   magic "INSPSTORE4\n"            (11 bytes)
//	offset 11  flags                           (1 byte, must be zero)
//	offset 12  TOC length                      (uint32 little-endian)
//	offset 16  TOC                             (see below)
//	...        zero padding to a page boundary
//	           section 0 bytes
//	...        zero padding to a page boundary
//	           section 1 bytes
//	...
//
// The TOC is: uvarint section count, then per section a uvarint name length,
// the name bytes, a uvarint offset and a uvarint length. Every uvarint must
// use its minimal encoding, names must be non-empty [a-z0-9_] and unique,
// and each section's offset must equal the previous section's end rounded up
// to PageSize (the first section starts at the end of the TOC rounded up).
// The file ends exactly at the last section's end and all padding bytes are
// zero, so for any valid file Encode(Decode(file)) reproduces it bit for bit
// — the encoding is canonical, which is what the round-trip fuzzer checks.
//
// Page alignment means every section is at least 8-byte aligned in the
// mapping, so fixed-width numeric sections can be aliased in place (see
// Int64s / Float64s) on little-endian hosts instead of decoded.
package storefile

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

const (
	// Magic is the 11-byte format line, same shape as the INSPSTORE1..3
	// magics so format sniffing reads a fixed prefix.
	Magic = "INSPSTORE4\n"
	// PageSize is the section alignment. 4096 matches the smallest page
	// size on every platform we serve from; mapped section starts are
	// therefore always machine-word aligned.
	PageSize = 4096

	headerSize  = len(Magic) + 1 + 4
	maxSections = 256
	maxNameLen  = 64
)

// Section is one named byte range of a store file.
type Section struct {
	Name string
	Data []byte
}

// File is a decoded store file. Section data aliases the underlying buffer,
// which is the live mapping when the file was opened with Open on a platform
// with mmap support.
type File struct {
	data   []byte
	mapped bool
	path   string
	secs   []Section
	idx    map[string]int
}

// validName reports whether a section name is well-formed.
func validName(name string) bool {
	if len(name) == 0 || len(name) > maxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// alignUp rounds n up to the next PageSize boundary.
func alignUp(n int64) int64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// checkSections validates a section list for writing: count, names, sizes.
func checkSections(sections []Section) error {
	if len(sections) > maxSections {
		return fmt.Errorf("storefile: %d sections exceeds limit %d", len(sections), maxSections)
	}
	seen := make(map[string]bool, len(sections))
	for _, s := range sections {
		if !validName(s.Name) {
			return fmt.Errorf("storefile: invalid section name %q", s.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("storefile: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// layout computes the TOC bytes and each section's assigned offset.
func layout(sections []Section) (toc []byte, offsets []int64, err error) {
	if err := checkSections(sections); err != nil {
		return nil, nil, err
	}
	// The TOC length depends on the offsets, which depend on the TOC
	// length. Offsets are monotone in the TOC length, so iterate to a
	// fixed point; two rounds always converge because a longer TOC can
	// only push the first section to the next page boundary, which can
	// only grow uvarint widths, which converges immediately after.
	offsets = make([]int64, len(sections))
	tocLen := 0
	for iter := 0; ; iter++ {
		toc = binary.AppendUvarint(toc[:0], uint64(len(sections)))
		end := int64(headerSize + tocLen)
		for i, s := range sections {
			off := alignUp(end)
			offsets[i] = off
			end = off + int64(len(s.Data))
			toc = binary.AppendUvarint(toc, uint64(len(s.Name)))
			toc = append(toc, s.Name...)
			toc = binary.AppendUvarint(toc, uint64(off))
			toc = binary.AppendUvarint(toc, uint64(len(s.Data)))
		}
		if len(toc) == tocLen {
			return toc, offsets, nil
		}
		if iter > 4 {
			return nil, nil, fmt.Errorf("storefile: TOC layout did not converge")
		}
		tocLen = len(toc)
	}
}

// Write streams the INSPSTORE4 encoding of sections to w.
func Write(w io.Writer, sections []Section) error {
	toc, offsets, err := layout(sections)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:], Magic)
	hdr[len(Magic)] = 0 // flags
	binary.LittleEndian.PutUint32(hdr[len(Magic)+1:], uint32(len(toc)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(toc); err != nil {
		return err
	}
	pad := make([]byte, PageSize)
	end := int64(headerSize + len(toc))
	for i, s := range sections {
		if gap := offsets[i] - end; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return err
			}
		}
		if _, err := w.Write(s.Data); err != nil {
			return err
		}
		end = offsets[i] + int64(len(s.Data))
	}
	return nil
}

// Encode returns the INSPSTORE4 encoding of sections.
func Encode(sections []Section) ([]byte, error) {
	toc, offsets, err := layout(sections)
	if err != nil {
		return nil, err
	}
	size := int64(headerSize + len(toc))
	if n := len(sections); n > 0 {
		size = offsets[n-1] + int64(len(sections[n-1].Data))
	}
	buf := make([]byte, size)
	copy(buf, Magic)
	binary.LittleEndian.PutUint32(buf[len(Magic)+1:], uint32(len(toc)))
	copy(buf[headerSize:], toc)
	for i, s := range sections {
		copy(buf[offsets[i]:], s.Data)
	}
	return buf, nil
}

// Sniff reports whether prefix begins with the INSPSTORE4 magic.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && string(prefix[:len(Magic)]) == Magic
}

// uvarint decodes a minimally-encoded uvarint, rejecting padded encodings so
// the format stays canonical.
func uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("storefile: truncated or oversized uvarint")
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("storefile: non-minimal uvarint")
	}
	return v, n, nil
}

// Decode parses data as an INSPSTORE4 file. Section data aliases data; the
// caller must keep data immutable for the life of the File. Decode enforces
// the canonical layout — computed offsets, zero padding, exact file length —
// so any accepted input re-encodes to itself.
func Decode(data []byte) (*File, error) {
	if !Sniff(data) {
		return nil, fmt.Errorf("storefile: bad magic")
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("storefile: truncated header")
	}
	if flags := data[len(Magic)]; flags != 0 {
		return nil, fmt.Errorf("storefile: unknown flags 0x%02x", flags)
	}
	tocLen := int64(binary.LittleEndian.Uint32(data[len(Magic)+1:]))
	if int64(headerSize)+tocLen > int64(len(data)) {
		return nil, fmt.Errorf("storefile: TOC length %d exceeds file", tocLen)
	}
	toc := data[headerSize : int64(headerSize)+tocLen]
	count, n, err := uvarint(toc)
	if err != nil {
		return nil, err
	}
	toc = toc[n:]
	if count > maxSections {
		return nil, fmt.Errorf("storefile: %d sections exceeds limit %d", count, maxSections)
	}
	f := &File{
		data: data,
		secs: make([]Section, 0, count),
		idx:  make(map[string]int, count),
	}
	end := int64(headerSize) + tocLen
	for i := uint64(0); i < count; i++ {
		nameLen, n, err := uvarint(toc)
		if err != nil {
			return nil, err
		}
		toc = toc[n:]
		if nameLen > maxNameLen || uint64(len(toc)) < nameLen {
			return nil, fmt.Errorf("storefile: section %d: bad name length %d", i, nameLen)
		}
		name := string(toc[:nameLen])
		toc = toc[nameLen:]
		if !validName(name) {
			return nil, fmt.Errorf("storefile: invalid section name %q", name)
		}
		if _, dup := f.idx[name]; dup {
			return nil, fmt.Errorf("storefile: duplicate section %q", name)
		}
		off64, n, err := uvarint(toc)
		if err != nil {
			return nil, err
		}
		toc = toc[n:]
		length64, n, err := uvarint(toc)
		if err != nil {
			return nil, err
		}
		toc = toc[n:]
		off, length := int64(off64), int64(length64)
		if off != alignUp(end) {
			return nil, fmt.Errorf("storefile: section %q at offset %d, want %d", name, off, alignUp(end))
		}
		if length < 0 || off+length > int64(len(data)) || off+length < off {
			return nil, fmt.Errorf("storefile: section %q [%d,%d) exceeds file size %d", name, off, off+length, len(data))
		}
		for _, b := range data[end:off] {
			if b != 0 {
				return nil, fmt.Errorf("storefile: nonzero padding before section %q", name)
			}
		}
		f.idx[name] = len(f.secs)
		f.secs = append(f.secs, Section{Name: name, Data: data[off : off+length : off+length]})
		end = off + length
	}
	if len(toc) != 0 {
		return nil, fmt.Errorf("storefile: %d trailing TOC bytes", len(toc))
	}
	if end != int64(len(data)) {
		return nil, fmt.Errorf("storefile: %d trailing bytes after last section", int64(len(data))-end)
	}
	return f, nil
}

// ReadFile loads path fully into heap and decodes it. The -no-mmap path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.path = path
	return f, nil
}

// Open maps path and decodes it. On platforms without mmap support it falls
// back to ReadFile. The mapping is never unmapped while any Section slice is
// reachable; Close is for tests and tools that know no references remain.
func Open(path string) (*File, error) {
	f, err := openMapped(path)
	if err != nil {
		return nil, err
	}
	f.path = path
	return f, nil
}

// Section returns the named section's bytes. The slice aliases the mapped
// file (or the decode buffer) — callers must treat it as read-only.
func (f *File) Section(name string) ([]byte, bool) {
	i, ok := f.idx[name]
	if !ok {
		return nil, false
	}
	return f.secs[i].Data, true
}

// Names returns the section names in file order.
func (f *File) Names() []string {
	names := make([]string, len(f.secs))
	for i, s := range f.secs {
		names[i] = s.Name
	}
	return names
}

// Sections returns a copy of the section directory, file order preserved.
func (f *File) Sections() []Section {
	return append([]Section(nil), f.secs...)
}

// Mapped reports whether the file bytes are a live mmap rather than heap.
func (f *File) Mapped() bool { return f.mapped }

// Size is the total file size in bytes.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Path is the file this was opened from, empty for Decode.
func (f *File) Path() string { return f.path }

// Close releases the mapping. After Close every Section slice previously
// returned is invalid; serving code never calls this (mappings live until
// process exit), it exists for tests and one-shot tools.
func (f *File) Close() error {
	data, mapped := f.data, f.mapped
	f.data, f.secs, f.idx, f.mapped = nil, nil, nil, false
	if mapped {
		return unmap(data)
	}
	return nil
}

// SortedNames returns the section names sorted, for deterministic listings.
func (f *File) SortedNames() []string {
	names := f.Names()
	sort.Strings(names)
	return names
}
