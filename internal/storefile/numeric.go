package storefile

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Fixed-width numeric sections are stored little-endian. On a little-endian
// host a page-aligned section can be reinterpreted in place — zero copies,
// zero resident growth beyond the faulted pages. Anywhere that doesn't hold
// (big-endian host, or a decode buffer whose section start landed unaligned)
// the helpers fall back to an explicit copy and report it, so the resident
// accountant can pin the heap bytes.

// hostLittleEndian is fixed at startup; every platform we serve from is
// little-endian, the copy path keeps big-endian correct.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// AppendInt64s appends v little-endian to dst.
func AppendInt64s(dst []byte, v []int64) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
	}
	return dst
}

// AppendUint64s appends v little-endian to dst. Bitmap posting words persist
// through this: fixed-width raw words, so the mapped reader can alias them.
func AppendUint64s(dst []byte, v []uint64) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, x)
	}
	return dst
}

// AppendFloat64s appends v little-endian (IEEE 754 bits) to dst.
func AppendFloat64s(dst []byte, v []float64) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// Int64s reinterprets a little-endian int64 section. copied reports whether
// the result is a fresh heap copy rather than an alias of b.
func Int64s(b []byte) (v []int64, copied bool, err error) {
	if len(b)%8 != 0 {
		return nil, false, fmt.Errorf("storefile: int64 section length %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, false, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n), false, nil
	}
	v = make([]int64, n)
	for i := range v {
		v[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v, true, nil
}

// Uint64s reinterprets a little-endian uint64 section, same contract as
// Int64s. This is the zero-copy path under the dense∧dense AND kernel: the
// word-wise intersect runs directly over the returned alias of the mapping.
func Uint64s(b []byte) (v []uint64, copied bool, err error) {
	if len(b)%8 != 0 {
		return nil, false, fmt.Errorf("storefile: uint64 section length %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, false, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n), false, nil
	}
	v = make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return v, true, nil
}

// Float64s reinterprets a little-endian float64 section, same contract as
// Int64s.
func Float64s(b []byte) (v []float64, copied bool, err error) {
	if len(b)%8 != 0 {
		return nil, false, fmt.Errorf("storefile: float64 section length %d not a multiple of 8", len(b))
	}
	n := len(b) / 8
	if n == 0 {
		return nil, false, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n), false, nil
	}
	v = make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return v, true, nil
}

// String reinterprets b as a string without copying. The file bytes are
// immutable for the life of the mapping, which is the string contract.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
