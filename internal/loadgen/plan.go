// Package loadgen is the wall-clock load harness: it materializes seeded,
// replayable mixed workloads as concrete HTTP request plans and drives them
// against the daemon's real serving surface (internal/httpd) from many
// concurrent sessions over real sockets. Where internal/bench measures the
// paper's modeled (virtual) quantities, loadgen measures what the host
// actually does: sustained queries per second, client-observed latency
// percentiles, allocations per request and GC pause totals.
//
// Determinism contract: a Plan is a pure function of its Config. The same
// seed yields byte-identical request sequences — session s3's 17th request
// is the same operation with the same arguments on every host, every run.
// The single runtime-resolved quantity is the target of a delete: document
// IDs are assigned by the server, so a planned delete carries a placeholder
// that the driver fills with the oldest ID the same session's own adds
// received. The plan never schedules a delete before the session has an
// outstanding add, so the placeholder always resolves in a clean run.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/url"
	"strconv"
)

// Config describes one replayable load plan.
type Config struct {
	// Sessions is the number of concurrent HTTP sessions. Default 100.
	Sessions int
	// OpsPerSession is the request count per session. Default 50.
	OpsPerSession int
	// Seed fixes the plan; each session derives its own stream from it.
	Seed int64
	// Terms is the query vocabulary (required). Adds compose their text from
	// it too, so planned live documents stay inside the frozen vocabulary
	// and are actually indexed.
	Terms []string
	// Docs are similarity-search targets (required).
	Docs []int64
	// Themes is the theme-ID range for /theme draws. Default 8.
	Themes int
	// MaxZoom bounds tile addresses to pyramid levels [0, MaxZoom]. Default 3.
	MaxZoom int
	// LiveFrac is the fraction of requests that mutate (add/delete).
	// Default 0.08; negative disables live traffic entirely.
	LiveFrac float64
	// SimK is the similarity top-K. Default 5.
	SimK int
	// Facets is the filter vocabulary: key=value predicates the plan attaches
	// as facet= parameters to a FilterFrac slice of the read requests, skewed
	// toward the head like the term draws. Empty disables filtered traffic.
	Facets []string
	// FilterFrac is the fraction of read requests that carry a facet filter
	// when Facets is non-empty. Default 0.2; negative disables.
	FilterFrac float64
}

func (cfg Config) withDefaults() Config {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 100
	}
	if cfg.OpsPerSession <= 0 {
		cfg.OpsPerSession = 50
	}
	if cfg.Themes <= 0 {
		cfg.Themes = 8
	}
	if cfg.MaxZoom <= 0 {
		cfg.MaxZoom = 3
	}
	if cfg.LiveFrac == 0 {
		cfg.LiveFrac = 0.08
	}
	if cfg.LiveFrac < 0 {
		cfg.LiveFrac = 0
	}
	if cfg.SimK <= 0 {
		cfg.SimK = 5
	}
	if cfg.FilterFrac == 0 {
		cfg.FilterFrac = 0.2
	}
	if cfg.FilterFrac < 0 {
		cfg.FilterFrac = 0
	}
	return cfg
}

// Request is one planned HTTP interaction. Path carries the full
// path-and-query, session parameter included, so the driver's hot loop does
// no string assembly — except for deletes, whose target document is only
// known at runtime (see the package comment).
type Request struct {
	// Op names the interaction for accounting: term, and, or, similar,
	// theme, near, tile, add, delete.
	Op string
	// Method is GET for reads, POST for mutations.
	Method string
	// Path is the materialized path and query. Empty exactly when Op is
	// "delete": the driver substitutes the session's oldest live doc ID.
	Path string
}

// Plan is a materialized workload: one request stream per session.
type Plan struct {
	Cfg      Config
	Sessions [][]Request
}

// Ops is the total request count across all sessions.
func (p *Plan) Ops() int64 {
	var n int64
	for _, s := range p.Sessions {
		n += int64(len(s))
	}
	return n
}

// pickSkewed picks an index in [0, n) biased toward 0 — the same Zipf-like
// head-revisiting analyst internal/serve's virtual workload models, so the
// wall-clock numbers exercise the caches the way the modeled ones do.
func pickSkewed(rng *rand.Rand, n int) int {
	i := int(float64(n) * math.Pow(rng.Float64(), 2.5))
	if i >= n {
		i = n - 1
	}
	return i
}

// PlanWorkload materializes the workload cfg describes. It is deterministic:
// equal configs yield equal plans.
func PlanWorkload(cfg Config) (*Plan, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Terms) == 0 {
		return nil, fmt.Errorf("loadgen: plan needs query terms")
	}
	if len(cfg.Docs) == 0 {
		return nil, fmt.Errorf("loadgen: plan needs similarity targets")
	}
	p := &Plan{Cfg: cfg, Sessions: make([][]Request, cfg.Sessions)}
	for sid := range p.Sessions {
		p.Sessions[sid] = planSession(cfg, sid)
	}
	return p, nil
}

// planSession materializes one session's stream. The op mix mirrors
// serve.Replay's analyst model with a live slice carved out in front:
// mutations happen at cfg.LiveFrac, and the remaining probability mass is
// split term 30%, and 15%, or 10%, similar 15%, theme 10%, near 8%,
// tile 12%.
func planSession(cfg Config, sid int) []Request {
	rng := rand.New(rand.NewSource(cfg.Seed<<16 + int64(sid)))
	session := fmt.Sprintf("s%d", sid)
	term := func() string { return cfg.Terms[pickSkewed(rng, len(cfg.Terms))] }
	// filtered attaches a facet predicate to a FilterFrac slice of the read
	// traffic; the draw happens unconditionally-shaped (one Float64, maybe one
	// pick) inside the slice so the stream stays a pure function of the seed.
	filtered := func(q url.Values) url.Values {
		if len(cfg.Facets) > 0 && rng.Float64() < cfg.FilterFrac {
			q.Set("facet", cfg.Facets[pickSkewed(rng, len(cfg.Facets))])
		}
		return q
	}
	get := func(op string, q url.Values) Request {
		q.Set("session", session)
		return Request{Op: op, Method: "GET", Path: "/" + op + "?" + q.Encode()}
	}
	reqs := make([]Request, 0, cfg.OpsPerSession)
	pendingAdds := 0 // plan-time model of the runtime delete FIFO
	for op := 0; op < cfg.OpsPerSession; op++ {
		p := rng.Float64()
		if p < cfg.LiveFrac {
			if pendingAdds > 0 && rng.Float64() < 0.4 {
				pendingAdds--
				reqs = append(reqs, Request{Op: "delete", Method: "POST"})
			} else {
				pendingAdds++
				text := term()
				for n := 1 + rng.Intn(2); n > 0; n-- {
					text += " " + term()
				}
				q := url.Values{"text": {text}, "session": {session}}
				reqs = append(reqs, Request{Op: "add", Method: "POST", Path: "/add?" + q.Encode()})
			}
			continue
		}
		switch q := (p - cfg.LiveFrac) / (1 - cfg.LiveFrac); {
		case q < 0.30:
			reqs = append(reqs, get("term", filtered(url.Values{"q": {term()}})))
		case q < 0.45:
			reqs = append(reqs, get("and", filtered(url.Values{"q": {term() + "," + term()}})))
		case q < 0.55:
			reqs = append(reqs, get("or", filtered(url.Values{"q": {term() + "," + term()}})))
		case q < 0.70:
			doc := cfg.Docs[pickSkewed(rng, len(cfg.Docs))]
			reqs = append(reqs, get("similar", filtered(url.Values{
				"doc": {strconv.FormatInt(doc, 10)},
				"k":   {strconv.Itoa(cfg.SimK)},
			})))
		case q < 0.80:
			reqs = append(reqs, get("theme", filtered(url.Values{"cluster": {strconv.Itoa(rng.Intn(cfg.Themes))}})))
		case q < 0.88:
			reqs = append(reqs, get("near", filtered(url.Values{
				"x": {formatFloat(rng.Float64() - 0.5)},
				"y": {formatFloat(rng.Float64() - 0.5)},
				"r": {formatFloat(0.1 + 0.2*rng.Float64())},
			})))
		default:
			z := rng.Intn(cfg.MaxZoom + 1)
			x, y := rng.Intn(1<<z), rng.Intn(1<<z)
			path := fmt.Sprintf("/tiles/%d/%d/%d?session=%s", z, x, y, session)
			if fq := filtered(url.Values{}); len(fq) > 0 {
				path += "&facet=" + url.QueryEscape(fq.Get("facet"))
			}
			reqs = append(reqs, Request{Op: "tile", Method: "GET", Path: path})
		}
	}
	return reqs
}

// formatFloat renders coordinates compactly and reproducibly.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', 4, 64)
}
