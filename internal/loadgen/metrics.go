package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// The wall-clock CI gate. Unlike the virtual gate (internal/bench), these
// numbers come from real sockets on a shared runner, so the throughput
// threshold is looser (25% vs 15%) and throughput is normalized by a
// deterministic CPU calibration score before comparing — a slow runner
// depresses the calibration and the QPS together, and their ratio survives.
// The allocation metrics need no normalization: the workload is seeded, so
// allocs/request and bytes/request are properties of the code, not the host.
const (
	// GateMaxWallQPSDrop fails the gate when calibration-normalized
	// throughput falls more than this fraction below the baseline.
	GateMaxWallQPSDrop = 0.25
	// GateMaxAllocRise fails the gate when allocations per request rise more
	// than this fraction above the baseline.
	GateMaxAllocRise = 0.25
	// GateMaxBytesRise fails the gate when allocated bytes per request rise
	// more than this fraction above the baseline.
	GateMaxBytesRise = 0.25
	// GateMinColdStartSpeedup fails the gate when the mapped INSPSTORE4 cold
	// start (exec to first successful query) is not at least this many times
	// faster than the legacy gob-decode path. This is an absolute floor, not
	// a baseline delta: the zero-copy layout's whole point is that start-up
	// cost no longer scales with decode work, and a 10x margin holds across
	// runner speeds because both sides slow down together.
	GateMinColdStartSpeedup = 10.0
	// GateMinDenseAndSpeedup fails the gate when the word-wise bitmap AND of
	// the bench corpus's densest term pair is not at least this many times
	// faster than the block-skip intersection of the same two lists. Like
	// the cold-start floor this is an absolute ratio measured within one
	// run, so it holds across runner speeds: both kernels run on the same
	// host over the same postings.
	GateMinDenseAndSpeedup = 3.0
	// GateMaxHedgedP99Ratio fails the gate when, with one replica stalled,
	// the hedged read p99 exceeds this multiple of the un-hedged p95: the
	// hedge must cut the slow replica out of the tail, not just add load.
	// Like the cold-start floor this is an absolute ratio, not a baseline
	// delta — both sides of the ratio come from the same run on the same
	// host, so it holds across runner speeds.
	GateMaxHedgedP99Ratio = 1.5
	// GateMaxOverloadDeviation fails the gate when the served QPS under a
	// saturating load deviates more than this fraction from the admission
	// limit: far below means the daemon collapsed instead of shedding, far
	// above means admission control is not enforcing the limit.
	GateMaxOverloadDeviation = 0.20
	// GateMaxFacetFilterOverhead fails the gate when the facet-filtered AND
	// p95 exceeds this multiple of the unfiltered p95 over the same term
	// stream. Like the cold-start floor this is an absolute ratio within one
	// run: predicate evaluation must ride the cached filter sets and bitmap
	// kernels, not rescan the corpus per query.
	GateMaxFacetFilterOverhead = 2.0
)

// WallMetrics are the persisted quantities of one wall-clock load run —
// the committed BENCH_WALL.json baseline and each CI run's fresh copy.
type WallMetrics struct {
	Commit        string  `json:"commit"`
	Scale         float64 `json:"scale"`
	Shards        int     `json:"shards"`
	Sessions      int     `json:"sessions"`
	OpsPerSession int     `json:"ops_per_session"`
	Seed          int64   `json:"seed"`
	// InProcess records whether the server shared the driver's process — the
	// mode in which the allocation account covers the serving path.
	InProcess bool `json:"in_process"`

	// CalibMOPS is the host CPU score: millions of calibration-loop
	// iterations per second (see Calibrate).
	CalibMOPS float64 `json:"calib_mops"`
	QPS       float64 `json:"qps"`
	// NormQPS is QPS per calibration MOPS — the host-portable throughput the
	// gate compares.
	NormQPS float64 `json:"norm_qps"`

	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`

	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	GCPauseMS   float64 `json:"gc_pause_ms"`

	HardErrors   int64 `json:"hard_errors"`
	InBandErrors int64 `json:"in_band_errors"`

	// Cold start: wall time from process exec to the first successful query,
	// best of three, measured by self-exec against a mapped INSPSTORE4 file
	// and its legacy gob-decoded twin. Zero means the run did not measure
	// cold start (e.g. -url mode has no store file to time).
	ColdStartMappedMS float64 `json:"cold_start_mapped_ms,omitempty"`
	ColdStartGobMS    float64 `json:"cold_start_gob_ms,omitempty"`
	// ColdStartSpeedup is ColdStartGobMS / ColdStartMappedMS.
	ColdStartSpeedup float64 `json:"cold_start_speedup,omitempty"`

	// Dense AND: per-intersection wall time of the adaptive bitmap kernel
	// against the block-skip path over the serving store's densest bitmap
	// term pair, both sides warm. Zero means the run did not measure it
	// (e.g. -url mode, or a store with no bitmap containers).
	DenseAndBitmapMS float64 `json:"dense_and_bitmap_ms,omitempty"`
	DenseAndBlockMS  float64 `json:"dense_and_block_ms,omitempty"`
	// DenseAndSpeedup is DenseAndBlockMS / DenseAndBitmapMS.
	DenseAndSpeedup float64 `json:"dense_and_speedup,omitempty"`

	// Replication: measured on an in-process replicated tier (Replicas > 1)
	// with one replica stalled. UnhedgedP95MS is the read p95 with hedging
	// disabled, HedgedP99MS the read p99 with hedging on — the gate requires
	// the hedged tail to beat GateMaxHedgedP99Ratio times the un-hedged
	// body. Zero Replicas means the run did not measure replication.
	Replicas      int     `json:"replicas,omitempty"`
	UnhedgedP95MS float64 `json:"unhedged_p95_ms,omitempty"`
	HedgedP99MS   float64 `json:"hedged_p99_ms,omitempty"`

	// Overload: a saturating hammer against an admission limit of
	// OverloadLimitQPS must be served at OverloadServedQPS within
	// GateMaxOverloadDeviation — excess requests shed with 429, the served
	// stream intact. Zero OverloadLimitQPS means overload was not measured.
	OverloadLimitQPS  float64 `json:"overload_limit_qps,omitempty"`
	OverloadServedQPS float64 `json:"overload_served_qps,omitempty"`

	// Facet filter: the same skewed AND stream timed twice on the serving
	// store — once unfiltered and once under a facet predicate selecting
	// about a quarter of the corpus. The gate holds the filtered p95 under
	// GateMaxFacetFilterOverhead times the plain p95. Zero FacetPlainP95MS
	// means the run did not measure it (e.g. -url mode).
	FacetPlainP95MS    float64 `json:"facet_plain_p95_ms,omitempty"`
	FacetFilteredP95MS float64 `json:"facet_filtered_p95_ms,omitempty"`
	// FacetFilterOverhead is FacetFilteredP95MS / FacetPlainP95MS.
	FacetFilterOverhead float64 `json:"facet_filter_overhead,omitempty"`
}

// FromResult folds a measured result and the host calibration into the
// persisted metrics.
func FromResult(r *Result, cfg Config, calibMOPS float64, commit string, inProcess bool) *WallMetrics {
	m := &WallMetrics{
		Commit:        commit,
		Sessions:      r.Sessions,
		OpsPerSession: cfg.OpsPerSession,
		Seed:          cfg.Seed,
		InProcess:     inProcess,
		CalibMOPS:     calibMOPS,
		QPS:           r.QPS,
		P50MS:         r.P50MS,
		P95MS:         r.P95MS,
		P99MS:         r.P99MS,
		P999MS:        r.P999MS,
		AllocsPerOp:   r.AllocsPerOp,
		BytesPerOp:    r.BytesPerOp,
		GCPauseMS:     r.GCPauseMS,
		HardErrors:    r.HardErrors,
		InBandErrors:  r.InBandErrors,
	}
	if calibMOPS > 0 {
		m.NormQPS = r.QPS / calibMOPS
	}
	return m
}

// Gate compares fresh wall metrics against a baseline and returns the
// violations, empty when the gate passes. Hard errors fail unconditionally:
// a load run that dropped requests measured the wrong thing.
func (m *WallMetrics) Gate(base *WallMetrics) []string {
	var out []string
	if m.HardErrors > 0 {
		out = append(out, fmt.Sprintf("%d hard errors during the load run (transport failures or non-200s)", m.HardErrors))
	}
	if m.Sessions != base.Sessions || m.OpsPerSession != base.OpsPerSession || m.Seed != base.Seed {
		out = append(out, fmt.Sprintf("workload mismatch: current %dx%d seed %d vs baseline %dx%d seed %d — regenerate the baseline",
			m.Sessions, m.OpsPerSession, m.Seed, base.Sessions, base.OpsPerSession, base.Seed))
		return out
	}
	if floor := (1 - GateMaxWallQPSDrop) * base.NormQPS; m.NormQPS < floor {
		out = append(out, fmt.Sprintf("normalized throughput %.2f qps/mops is >%.0f%% below the baseline %.2f",
			m.NormQPS, 100*GateMaxWallQPSDrop, base.NormQPS))
	}
	if ceil := (1 + GateMaxAllocRise) * base.AllocsPerOp; base.AllocsPerOp > 0 && m.AllocsPerOp > ceil {
		out = append(out, fmt.Sprintf("allocations %.0f/request are >%.0f%% above the baseline %.0f",
			m.AllocsPerOp, 100*GateMaxAllocRise, base.AllocsPerOp))
	}
	if ceil := (1 + GateMaxBytesRise) * base.BytesPerOp; base.BytesPerOp > 0 && m.BytesPerOp > ceil {
		out = append(out, fmt.Sprintf("allocated bytes %.0f/request are >%.0f%% above the baseline %.0f",
			m.BytesPerOp, 100*GateMaxBytesRise, base.BytesPerOp))
	}
	// Cold start gates on an absolute floor, not a baseline ratio — see
	// GateMinColdStartSpeedup. A run that silently stopped measuring cold
	// start while the baseline has it is itself a regression.
	if m.ColdStartSpeedup > 0 && m.ColdStartSpeedup < GateMinColdStartSpeedup {
		out = append(out, fmt.Sprintf("mapped cold start is only %.1fx faster than the gob path (%.2fms vs %.2fms); the floor is %.0fx",
			m.ColdStartSpeedup, m.ColdStartMappedMS, m.ColdStartGobMS, GateMinColdStartSpeedup))
	}
	if base.ColdStartSpeedup > 0 && m.ColdStartSpeedup == 0 {
		out = append(out, "baseline has a cold-start measurement but the current run has none")
	}
	// Dense AND gates on an absolute floor within the run, like cold start.
	if m.DenseAndSpeedup > 0 && m.DenseAndSpeedup < GateMinDenseAndSpeedup {
		out = append(out, fmt.Sprintf("dense bitmap AND is only %.1fx faster than the block-skip path (%.4fms vs %.4fms); the floor is %.0fx",
			m.DenseAndSpeedup, m.DenseAndBitmapMS, m.DenseAndBlockMS, GateMinDenseAndSpeedup))
	}
	if base.DenseAndSpeedup > 0 && m.DenseAndSpeedup == 0 {
		out = append(out, "baseline has a dense-AND measurement but the current run has none")
	}
	// Replication gates on absolute ratios within the current run, like cold
	// start; a run that silently dropped the measurement is a regression.
	if m.Replicas > 1 && m.UnhedgedP95MS > 0 {
		if ceil := GateMaxHedgedP99Ratio * m.UnhedgedP95MS; m.HedgedP99MS > ceil {
			out = append(out, fmt.Sprintf("hedged p99 %.2fms exceeds %.1fx the un-hedged p95 %.2fms with one slow replica",
				m.HedgedP99MS, GateMaxHedgedP99Ratio, m.UnhedgedP95MS))
		}
	}
	if base.Replicas > 1 && m.Replicas <= 1 {
		out = append(out, "baseline has a replication measurement but the current run has none")
	}
	if m.OverloadLimitQPS > 0 {
		if dev := math.Abs(m.OverloadServedQPS-m.OverloadLimitQPS) / m.OverloadLimitQPS; dev > GateMaxOverloadDeviation {
			out = append(out, fmt.Sprintf("served %.0f qps under overload deviates %.0f%% from the %.0f qps admission limit (max %.0f%%)",
				m.OverloadServedQPS, 100*dev, m.OverloadLimitQPS, 100*GateMaxOverloadDeviation))
		}
	}
	if base.OverloadLimitQPS > 0 && m.OverloadLimitQPS == 0 {
		out = append(out, "baseline has an overload measurement but the current run has none")
	}
	// Facet filtering gates on an absolute ratio within the run, like cold
	// start; silently dropping the measurement is itself a regression.
	if m.FacetFilterOverhead > GateMaxFacetFilterOverhead {
		out = append(out, fmt.Sprintf("facet-filtered AND p95 %.4fms is %.2fx the unfiltered p95 %.4fms; the ceiling is %.1fx",
			m.FacetFilteredP95MS, m.FacetFilterOverhead, m.FacetPlainP95MS, GateMaxFacetFilterOverhead))
	}
	if base.FacetFilterOverhead > 0 && m.FacetFilterOverhead == 0 {
		out = append(out, "baseline has a facet-filter measurement but the current run has none")
	}
	return out
}

// WriteJSON persists the metrics for the gate step and the committed
// baseline.
func (m *WallMetrics) WriteJSON(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadWallMetrics loads a metrics file written by WriteJSON.
func ReadWallMetrics(path string) (*WallMetrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &WallMetrics{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("loadgen: metrics %s: %w", path, err)
	}
	return m, nil
}

// calibIters is sized so one trial costs ~10-20ms on current hardware —
// cheap enough to run three times, long enough to smooth scheduler jitter.
const calibIters = 1 << 24

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// Calibrate scores the host CPU: millions of xorshift64 iterations per
// second, best of three trials (the max is the least contended trial, which
// is the quantity QPS on an idle run tracks). The loop is pure integer
// register work with a fixed start state, so the score is a property of the
// core, not of the allocator or the load.
func Calibrate() float64 {
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		x := uint64(88172645463325252)
		start := time.Now()
		for i := 0; i < calibIters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		el := time.Since(start).Seconds()
		calibSink += x
		if el > 0 {
			if score := float64(calibIters) / el / 1e6; score > best {
				best = score
			}
		}
	}
	return best
}

// trajectory is the shape of the dev/bench data artifact: a JS file
// assigning window.BENCHMARK_DATA, one entry appended per gated run, so the
// perf history of the repo accumulates as a chartable series.
type trajectory struct {
	LastUpdate int64                `json:"lastUpdate"` // unix millis of the newest entry
	Entries    map[string][]trajRun `json:"entries"`
}

type trajRun struct {
	Commit  string      `json:"commit"`
	Date    int64       `json:"date"` // unix millis
	Benches []trajBench `json:"benches"`
}

type trajBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// trajPrefix makes the artifact loadable as a plain <script src>.
const trajPrefix = "window.BENCHMARK_DATA = "

// trajSeries names the wall-clock series inside the artifact.
const trajSeries = "wall-clock serving"

// trajMaxRuns bounds the artifact; the oldest runs roll off.
const trajMaxRuns = 500

// AppendTrajectory appends one run to the JS trajectory artifact at path,
// creating it when absent. The file stays a valid script: a single
// assignment to window.BENCHMARK_DATA whose payload is the JSON trajectory.
func AppendTrajectory(path string, m *WallMetrics, now time.Time) error {
	tr := &trajectory{Entries: make(map[string][]trajRun)}
	if data, err := os.ReadFile(path); err == nil {
		payload := bytes.TrimSpace(bytes.TrimPrefix(bytes.TrimSpace(data), []byte(trajPrefix)))
		payload = bytes.TrimSuffix(payload, []byte(";"))
		if err := json.Unmarshal(payload, tr); err != nil {
			return fmt.Errorf("loadgen: trajectory %s: %w", path, err)
		}
		if tr.Entries == nil {
			tr.Entries = make(map[string][]trajRun)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	run := trajRun{
		Commit: m.Commit,
		Date:   now.UnixMilli(),
		Benches: []trajBench{
			{Name: "qps", Value: m.QPS, Unit: "req/s"},
			{Name: "norm qps", Value: m.NormQPS, Unit: "req/s per calib mops"},
			{Name: "p50 latency", Value: m.P50MS, Unit: "ms"},
			{Name: "p95 latency", Value: m.P95MS, Unit: "ms"},
			{Name: "p99 latency", Value: m.P99MS, Unit: "ms"},
			{Name: "allocs", Value: m.AllocsPerOp, Unit: "allocs/req"},
			{Name: "alloc bytes", Value: m.BytesPerOp, Unit: "B/req"},
		},
	}
	if m.ColdStartSpeedup > 0 {
		run.Benches = append(run.Benches,
			trajBench{Name: "cold start (mapped)", Value: m.ColdStartMappedMS, Unit: "ms"},
			trajBench{Name: "cold start (gob)", Value: m.ColdStartGobMS, Unit: "ms"},
			trajBench{Name: "cold start speedup", Value: m.ColdStartSpeedup, Unit: "x"},
		)
	}
	if m.DenseAndSpeedup > 0 {
		run.Benches = append(run.Benches,
			trajBench{Name: "dense AND (bitmap)", Value: m.DenseAndBitmapMS, Unit: "ms"},
			trajBench{Name: "dense AND (blocks)", Value: m.DenseAndBlockMS, Unit: "ms"},
			trajBench{Name: "dense AND speedup", Value: m.DenseAndSpeedup, Unit: "x"},
		)
	}
	if m.Replicas > 1 && m.UnhedgedP95MS > 0 {
		run.Benches = append(run.Benches,
			trajBench{Name: "unhedged p95 (slow replica)", Value: m.UnhedgedP95MS, Unit: "ms"},
			trajBench{Name: "hedged p99 (slow replica)", Value: m.HedgedP99MS, Unit: "ms"},
		)
	}
	if m.OverloadLimitQPS > 0 {
		run.Benches = append(run.Benches,
			trajBench{Name: "overload served", Value: m.OverloadServedQPS, Unit: "req/s"},
		)
	}
	if m.FacetFilterOverhead > 0 {
		run.Benches = append(run.Benches,
			trajBench{Name: "AND p95 (unfiltered)", Value: m.FacetPlainP95MS, Unit: "ms"},
			trajBench{Name: "AND p95 (facet filter)", Value: m.FacetFilteredP95MS, Unit: "ms"},
			trajBench{Name: "facet filter overhead", Value: m.FacetFilterOverhead, Unit: "x"},
		)
	}
	runs := append(tr.Entries[trajSeries], run)
	if len(runs) > trajMaxRuns {
		runs = runs[len(runs)-trajMaxRuns:]
	}
	tr.Entries[trajSeries] = runs
	tr.LastUpdate = now.UnixMilli()

	payload, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	out := append([]byte(trajPrefix), payload...)
	out = append(out, ';', '\n')
	return os.WriteFile(path, out, 0o644)
}
