package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/httpd"
	"inspire/internal/serve"
	"inspire/internal/simtime"
)

// planCfg is the reference workload of the determinism tests; no service is
// needed to materialize a plan.
func planCfg() Config {
	return Config{
		Sessions:      12,
		OpsPerSession: 60,
		Seed:          7,
		Terms:         []string{"apple", "banana", "cherry", "durian", "elder", "fig", "grape", "kiwi"},
		Docs:          []int64{0, 1, 3, 5, 7},
	}
}

// TestPlanDeterminism pins the harness's core promise: a plan is a pure
// function of its config — same seed, same byte-identical request streams;
// a different seed diverges.
func TestPlanDeterminism(t *testing.T) {
	a, err := PlanWorkload(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanWorkload(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different plans")
	}
	cfg := planCfg()
	cfg.Seed = 8
	c, err := PlanWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Sessions, c.Sessions) {
		t.Fatal("different seeds produced identical plans")
	}
	if got := a.Ops(); got != int64(12*60) {
		t.Fatalf("plan has %d requests, want %d", got, 12*60)
	}
}

// TestPlanShape pins the invariants the driver relies on: deletes only ever
// follow an unconsumed add in the same session (so the runtime FIFO always
// resolves), delete paths are the single runtime placeholder, every other
// request carries a materialized path with its session name, and a long
// enough plan exercises every op of the mix.
func TestPlanShape(t *testing.T) {
	p, err := PlanWorkload(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for sid, reqs := range p.Sessions {
		pending := 0
		for i, rq := range reqs {
			seen[rq.Op] = true
			switch rq.Op {
			case "add":
				pending++
				if rq.Method != "POST" {
					t.Fatalf("s%d[%d]: add via %s", sid, i, rq.Method)
				}
			case "delete":
				pending--
				if pending < 0 {
					t.Fatalf("s%d[%d]: delete planned before a matching add", sid, i)
				}
				if rq.Path != "" || rq.Method != "POST" {
					t.Fatalf("s%d[%d]: delete = %+v, want empty-path POST placeholder", sid, i, rq)
				}
				continue
			}
			if rq.Path == "" {
				t.Fatalf("s%d[%d]: %s has no path", sid, i, rq.Op)
			}
			if !strings.Contains(rq.Path, "session=s") {
				t.Fatalf("s%d[%d]: %s path %q has no session", sid, i, rq.Op, rq.Path)
			}
		}
	}
	for _, op := range []string{"term", "and", "or", "similar", "theme", "near", "tile", "add", "delete"} {
		if !seen[op] {
			t.Fatalf("op %q never planned in %d requests", op, planCfg().Sessions*planCfg().OpsPerSession)
		}
	}
}

// TestPlanRequiresVocabulary pins the error paths: no terms or no similarity
// targets is a planning error, not a runtime surprise.
func TestPlanRequiresVocabulary(t *testing.T) {
	cfg := planCfg()
	cfg.Terms = nil
	if _, err := PlanWorkload(cfg); err == nil {
		t.Fatal("plan without terms accepted")
	}
	cfg = planCfg()
	cfg.Docs = nil
	if _, err := PlanWorkload(cfg); err == nil {
		t.Fatal("plan without similarity targets accepted")
	}
}

// loadDocs is the driver test corpus — the same two-topic shape the httpd
// end-to-end sweep uses, big enough for themes and tiles to be non-trivial.
var loadDocs = []string{
	"apple apple banana banana cherry",
	"apple banana banana",
	"apple apple cherry cherry",
	"durian durian elder elder fig fig",
	"durian elder elder fig",
	"grape grape honeydew honeydew kiwi kiwi",
	"grape kiwi kiwi honeydew",
	"banana cherry durian grape",
}

// buildService runs the real pipeline over loadDocs and serves it.
func buildService(t *testing.T) serve.Service {
	t.Helper()
	src := corpus.FromTexts("loadgen", loadDocs)
	var st *serve.Store
	_, err := cluster.Run(2, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 100, TopicFrac: 0.5, CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := serve.Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(st, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestDriverEndToEnd drives a real plan against the real daemon handler on a
// real listener and checks the full accounting: every planned request issued
// and answered, no transport or protocol errors, live adds resolving their
// deletes, and coherent latency statistics.
func TestDriverEndToEnd(t *testing.T) {
	svc := buildService(t)
	ts := httptest.NewServer(httpd.New(svc, "").Mux())
	defer ts.Close()

	cfg := Config{
		Sessions:      16,
		OpsPerSession: 15,
		Seed:          3,
		Terms:         svc.TopTerms(context.Background(), 8),
		Docs:          svc.SampleDocs(context.Background(), 4),
		Themes:        svc.NumThemes(),
		LiveFrac:      0.12,
	}
	plan, err := PlanWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ts.URL, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != plan.Ops() {
		t.Fatalf("answered %d of %d planned requests", res.Requests, plan.Ops())
	}
	if res.HardErrors != 0 {
		t.Fatalf("%d hard errors", res.HardErrors)
	}
	if res.InBandErrors != 0 {
		t.Fatalf("%d in-band errors (the plan should only issue resolvable requests)", res.InBandErrors)
	}
	if res.QPS <= 0 || res.WallSeconds <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
	if res.P50MS <= 0 || res.P50MS > res.P95MS || res.P95MS > res.P99MS || res.P99MS > res.MaxMS {
		t.Fatalf("incoherent latency quantiles: p50 %.3f p95 %.3f p99 %.3f max %.3f",
			res.P50MS, res.P95MS, res.P99MS, res.MaxMS)
	}
	var sum int64
	for _, v := range res.OpCounts {
		sum += v
	}
	if sum != res.Requests {
		t.Fatalf("op counts sum to %d, requests %d", sum, res.Requests)
	}
	if res.OpCounts["add"] == 0 || res.OpCounts["delete"] == 0 {
		t.Fatalf("live traffic missing from the mix: %v", res.OpCounts)
	}
	if res.AllocsPerOp <= 0 || res.BytesPerOp <= 0 {
		t.Fatalf("no allocation account: %+v", res)
	}

	// The stream is replayable: a second run answers the same op mix.
	res2, err := Run(ts.URL, plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.OpCounts, res2.OpCounts) {
		t.Fatalf("replay diverged: %v vs %v", res.OpCounts, res2.OpCounts)
	}
}

// TestCalibrate pins that the CPU score is positive and roughly stable — two
// calibrations on one host agree within a factor the gate's 25% tolerance
// absorbs together with real run variance.
func TestCalibrate(t *testing.T) {
	a, b := Calibrate(), Calibrate()
	if a <= 0 || b <= 0 {
		t.Fatalf("calibration scores %f, %f", a, b)
	}
	if ratio := a / b; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("calibration unstable: %f vs %f", a, b)
	}
}

// TestWallGate walks every gate boundary table-driven: passing at the edge,
// failing just past it, and the unconditional failures.
func TestWallGate(t *testing.T) {
	base := &WallMetrics{
		Sessions: 100, OpsPerSession: 50, Seed: 1,
		NormQPS: 100, AllocsPerOp: 400, BytesPerOp: 60000,
		Replicas: 2, UnhedgedP95MS: 10, HedgedP99MS: 12,
		OverloadLimitQPS: 500, OverloadServedQPS: 480,
	}
	mod := func(f func(*WallMetrics)) *WallMetrics {
		m := *base
		f(&m)
		return &m
	}
	cases := []struct {
		name string
		m    *WallMetrics
		want int // violations
	}{
		{"identical", mod(func(m *WallMetrics) {}), 0},
		{"qps at floor", mod(func(m *WallMetrics) { m.NormQPS = 75 }), 0},
		{"qps below floor", mod(func(m *WallMetrics) { m.NormQPS = 74.9 }), 1},
		{"qps improved", mod(func(m *WallMetrics) { m.NormQPS = 200 }), 0},
		{"allocs at ceiling", mod(func(m *WallMetrics) { m.AllocsPerOp = 500 }), 0},
		{"allocs above ceiling", mod(func(m *WallMetrics) { m.AllocsPerOp = 501 }), 1},
		{"bytes at ceiling", mod(func(m *WallMetrics) { m.BytesPerOp = 75000 }), 0},
		{"bytes above ceiling", mod(func(m *WallMetrics) { m.BytesPerOp = 75001 }), 1},
		{"hard errors always fail", mod(func(m *WallMetrics) { m.HardErrors = 1 }), 1},
		{"workload mismatch", mod(func(m *WallMetrics) { m.Seed = 2 }), 1},
		{"hedged p99 at ceiling", mod(func(m *WallMetrics) { m.HedgedP99MS = 15 }), 0},
		{"hedged p99 above ceiling", mod(func(m *WallMetrics) { m.HedgedP99MS = 15.01 }), 1},
		{"replication measurement dropped", mod(func(m *WallMetrics) {
			m.Replicas, m.UnhedgedP95MS, m.HedgedP99MS = 0, 0, 0
		}), 1},
		{"overload served at floor", mod(func(m *WallMetrics) { m.OverloadServedQPS = 400 }), 0},
		{"overload collapsed", mod(func(m *WallMetrics) { m.OverloadServedQPS = 399 }), 1},
		{"overload limit not enforced", mod(func(m *WallMetrics) { m.OverloadServedQPS = 601 }), 1},
		{"overload measurement dropped", mod(func(m *WallMetrics) {
			m.OverloadLimitQPS, m.OverloadServedQPS = 0, 0
		}), 1},
		{"everything wrong", mod(func(m *WallMetrics) {
			m.NormQPS, m.AllocsPerOp, m.BytesPerOp, m.HardErrors = 1, 9999, 9e9, 3
		}), 4},
	}
	for _, tc := range cases {
		if got := tc.m.Gate(base); len(got) != tc.want {
			t.Errorf("%s: %d violations %v, want %d", tc.name, len(got), got, tc.want)
		}
	}
}

// TestMetricsRoundTrip pins the JSON persistence the CI gate step depends on.
func TestMetricsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wall.json")
	m := &WallMetrics{Commit: "abc", Sessions: 100, OpsPerSession: 50, Seed: 1, QPS: 1234.5, NormQPS: 9.8, AllocsPerOp: 321}
	if err := m.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWallMetrics(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	if _, err := ReadWallMetrics(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing metrics file read without error")
	}
}

// TestAppendTrajectory pins the perf-history artifact: appends accumulate as
// entries in a file that stays a loadable window.BENCHMARK_DATA script.
func TestAppendTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.js")
	now := time.UnixMilli(1754500000000)
	m := &WallMetrics{Commit: "c1", QPS: 1000, NormQPS: 10, P50MS: 1, P95MS: 2, P99MS: 3, AllocsPerOp: 400, BytesPerOp: 50000}
	if err := AppendTrajectory(path, m, now); err != nil {
		t.Fatal(err)
	}
	m2 := &WallMetrics{Commit: "c2", QPS: 1100, NormQPS: 11}
	if err := AppendTrajectory(path, m2, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), trajPrefix) {
		t.Fatalf("artifact is not a %s script:\n%s", trajPrefix, data)
	}
	// Parse it back the way AppendTrajectory itself does on the next run.
	m3 := &WallMetrics{Commit: "c3"}
	if err := AppendTrajectory(path, m3, now.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	payload := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(string(data), trajPrefix)), ";")
	var tr trajectory
	if err := json.Unmarshal([]byte(payload), &tr); err != nil {
		t.Fatal(err)
	}
	runs := tr.Entries[trajSeries]
	if len(runs) != 3 {
		t.Fatalf("%d runs recorded, want 3", len(runs))
	}
	if runs[0].Commit != "c1" || runs[2].Commit != "c3" {
		t.Fatalf("run order wrong: %+v", runs)
	}
	if tr.LastUpdate != now.Add(2*time.Hour).UnixMilli() {
		t.Fatalf("lastUpdate %d", tr.LastUpdate)
	}
	if len(runs[0].Benches) == 0 || runs[0].Benches[0].Name != "qps" || runs[0].Benches[0].Value != 1000 {
		t.Fatalf("benches malformed: %+v", runs[0].Benches)
	}
}
