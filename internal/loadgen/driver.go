package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"inspire/internal/httpd"
)

// Result aggregates one measured phase of a load run.
type Result struct {
	Sessions int
	Requests int64

	WallSeconds float64
	QPS         float64 // sustained host requests/sec across all sessions

	// Client-observed wall latency per request, milliseconds.
	P50MS  float64
	P95MS  float64
	P99MS  float64
	P999MS float64
	MaxMS  float64

	// HardErrors are transport failures and non-200 statuses — a clean run
	// has zero. InBandErrors are Reply envelopes that carried an error field
	// on HTTP 200 (e.g. a similarity probe against a deleted document).
	HardErrors   int64
	InBandErrors int64

	OpCounts map[string]int64

	// Process-wide allocation account over the timed phase, per request.
	// Meaningful when the server runs in the same process as the driver
	// (cmd/loadbench's default mode); against a remote -url it charges the
	// client side only.
	AllocsPerOp float64
	BytesPerOp  float64
	// GCPauseMS is the stop-the-world pause total accumulated during the
	// timed phase; NumGC the collections that contributed it.
	GCPauseMS float64
	NumGC     uint32
}

// warmupSeedSalt derives the untimed warmup plan from the measured plan's
// seed without consuming any of the measured sequence.
const warmupSeedSalt = 0x5eed

// Run drives the plan against baseURL — the daemon's mux on a real listener —
// with one goroutine per session, and measures the timed phase wall-clock.
//
// warmupOps > 0 first replays a derived untimed plan of that many requests
// per session through the same connections and named sessions, so the timed
// phase sees warm caches, established keep-alive sockets and steady scratch
// buffers. Between the phases the driver runs a full GC and snapshots
// runtime.MemStats around the timed phase, so AllocsPerOp charges the
// measured traffic only.
//
// Sessions synchronize on a start barrier, never on timers: the run is as
// fast as the host, and the request sequences stay exactly the plan's.
func Run(baseURL string, plan *Plan, warmupOps int) (*Result, error) {
	if _, err := url.Parse(baseURL); err != nil {
		return nil, fmt.Errorf("loadgen: base url: %w", err)
	}
	tr := &http.Transport{
		MaxIdleConns:        plan.Cfg.Sessions + 8,
		MaxIdleConnsPerHost: plan.Cfg.Sessions + 8,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: 60 * time.Second}

	if warmupOps > 0 {
		wcfg := plan.Cfg
		wcfg.OpsPerSession = warmupOps
		wcfg.Seed = plan.Cfg.Seed ^ warmupSeedSalt
		wplan, err := PlanWorkload(wcfg)
		if err != nil {
			return nil, err
		}
		runPhase(client, baseURL, wplan)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res := runPhase(client, baseURL, plan)
	res.WallSeconds = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)

	if res.WallSeconds > 0 {
		res.QPS = float64(res.Requests) / res.WallSeconds
	}
	if res.Requests > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(res.Requests)
		res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Requests)
	}
	res.GCPauseMS = float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6
	res.NumGC = after.NumGC - before.NumGC
	return res, nil
}

// runPhase replays every session of the plan concurrently and aggregates
// latencies and errors. It fills everything of Result except the wall-clock
// and memory fields, which belong to the caller's timed window.
func runPhase(client *http.Client, baseURL string, plan *Plan) *Result {
	var (
		mu   sync.Mutex
		res  = &Result{Sessions: len(plan.Sessions), OpCounts: make(map[string]int64)}
		lats = make([]float64, 0, plan.Ops())
	)
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	for sid, reqs := range plan.Sessions {
		wg.Add(1)
		go func(sid int, reqs []Request) {
			defer wg.Done()
			session := fmt.Sprintf("s%d", sid)
			var added []int64 // FIFO of live doc IDs this session's adds received
			local := make(map[string]int64, 9)
			slats := make([]float64, 0, len(reqs))
			var hard, inband int64
			<-barrier
			for _, rq := range reqs {
				path := rq.Path
				if rq.Op == "delete" {
					doc := int64(-1) // planned-after-add, so only a failed add leaves this
					if len(added) > 0 {
						doc, added = added[0], added[1:]
					}
					path = "/delete?doc=" + strconv.FormatInt(doc, 10) + "&session=" + session
				}
				t0 := time.Now()
				req, err := http.NewRequest(rq.Method, baseURL+path, nil)
				if err != nil {
					hard++
					continue
				}
				resp, err := client.Do(req)
				if err != nil {
					hard++
					continue
				}
				var rep httpd.Reply
				decodeErr := json.NewDecoder(resp.Body).Decode(&rep)
				resp.Body.Close()
				slats = append(slats, float64(time.Since(t0).Nanoseconds())/1e6)
				local[rq.Op]++
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					hard++
					continue
				}
				if rep.Error != "" {
					inband++
				}
				if rq.Op == "add" && rep.OK {
					added = append(added, rep.Doc)
				}
			}
			mu.Lock()
			for k, v := range local {
				res.OpCounts[k] += v
			}
			res.HardErrors += hard
			res.InBandErrors += inband
			res.Requests += int64(len(slats))
			lats = append(lats, slats...)
			mu.Unlock()
		}(sid, reqs)
	}
	close(barrier)
	wg.Wait()

	sort.Float64s(lats)
	res.P50MS = percentile(lats, 0.50)
	res.P95MS = percentile(lats, 0.95)
	res.P99MS = percentile(lats, 0.99)
	res.P999MS = percentile(lats, 0.999)
	if n := len(lats); n > 0 {
		res.MaxMS = lats[n-1]
	}
	return res
}

// percentile reads the p-quantile (nearest rank) of an ascending-sorted
// slice; 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted))*p+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String renders the result as the wall-clock scoreboard.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%d sessions, %d requests in %.2fs — %.0f req/sec over real HTTP\n"+
			"client latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms, p99.9 %.3f ms, max %.3f ms\n"+
			"allocation: %.0f allocs/req, %.0f B/req; GC: %d cycles, %.2f ms paused\n"+
			"errors: %d hard, %d in-band",
		r.Sessions, r.Requests, r.WallSeconds, r.QPS,
		r.P50MS, r.P95MS, r.P99MS, r.P999MS, r.MaxMS,
		r.AllocsPerOp, r.BytesPerOp, r.NumGC, r.GCPauseMS,
		r.HardErrors, r.InBandErrors)
}
