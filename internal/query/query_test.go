package query

import (
	"fmt"
	"reflect"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/scan"
	"inspire/internal/simtime"
)

// miniDocs is a hand corpus with known term/document structure. Terms repeat
// within documents so topicality selects them.
var miniDocs = []string{
	"apple apple banana banana cherry",        // doc 0
	"apple banana banana",                     // doc 1
	"apple apple cherry cherry",               // doc 2
	"durian durian elder elder fig fig",       // doc 3
	"durian elder elder fig",                  // doc 4
	"grape grape honeydew honeydew kiwi kiwi", // doc 5
}

// withEngine runs the pipeline over miniDocs and hands each rank a query
// engine.
func withEngine(t *testing.T, p int, body func(c *cluster.Comm, e *Engine) error) {
	t.Helper()
	src := corpus.FromTexts("mini", miniDocs)
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{
			// Select the whole vocabulary so every term is queryable
			// against major-term products too.
			TopN:      100,
			TopicFrac: 0.5,
			Tokenizer: scan.TokenizerConfig{},
		})
		if err != nil {
			return err
		}
		return body(c, New(c, res))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTermDocsMatchesCorpus(t *testing.T) {
	withEngine(t, 3, func(c *cluster.Comm, e *Engine) error {
		ps := e.TermDocs("apple")
		if len(ps) != 3 {
			return fmt.Errorf("apple in %d docs, want 3: %v", len(ps), ps)
		}
		wantFreq := map[int64]int64{0: 2, 1: 1, 2: 2}
		for _, p := range ps {
			if wantFreq[p.Doc] != p.Freq {
				return fmt.Errorf("apple in doc %d freq %d, want %d", p.Doc, p.Freq, wantFreq[p.Doc])
			}
		}
		// Case folding.
		if got := e.TermDocs("APPLE"); len(got) != 3 {
			return fmt.Errorf("case folding failed")
		}
		if got := e.TermDocs("nonexistent"); got != nil {
			return fmt.Errorf("phantom postings: %v", got)
		}
		if e.DF("banana") != 2 || e.DF("nonexistent") != 0 {
			return fmt.Errorf("df wrong")
		}
		return nil
	})
}

func TestBooleanQueries(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		if got := e.And("apple", "banana"); !reflect.DeepEqual(got, []int64{0, 1}) {
			return fmt.Errorf("apple AND banana = %v", got)
		}
		if got := e.And("apple", "durian"); got != nil {
			return fmt.Errorf("disjoint AND = %v", got)
		}
		if got := e.And("apple", "missing"); got != nil {
			return fmt.Errorf("AND with missing term = %v", got)
		}
		if got := e.And(); got != nil {
			return fmt.Errorf("empty AND = %v", got)
		}
		if got := e.Or("cherry", "fig"); !reflect.DeepEqual(got, []int64{0, 2, 3, 4}) {
			return fmt.Errorf("cherry OR fig = %v", got)
		}
		if got := e.Or(); len(got) != 0 {
			return fmt.Errorf("empty OR = %v", got)
		}
		return nil
	})
}

func TestSimilarFindsCoThematicDocs(t *testing.T) {
	withEngine(t, 3, func(c *cluster.Comm, e *Engine) error {
		// Doc 0's nearest neighbours should be docs 1 and 2 (the
		// apple/banana/cherry theme), not the durian or grape docs.
		hits, err := e.Similar(0, 2)
		if err != nil {
			return err
		}
		if len(hits) != 2 {
			return fmt.Errorf("%d hits", len(hits))
		}
		got := map[int64]bool{hits[0].Doc: true, hits[1].Doc: true}
		if !got[1] || !got[2] {
			return fmt.Errorf("neighbours of doc 0: %+v", hits)
		}
		if hits[0].Score < hits[1].Score {
			return fmt.Errorf("hits unsorted: %+v", hits)
		}
		return nil
	})
}

func TestSimilarErrors(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		if _, err := e.Similar(999, 3); err == nil {
			return fmt.Errorf("similar to missing doc should fail")
		}
		return nil
	})
}

func TestThemeDocsPartitionDocuments(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		seen := make(map[int64]int)
		totalK := e.res.Clusters.K
		for k := 0; k < totalK; k++ {
			for _, doc := range e.ThemeDocs(k) {
				seen[doc]++
			}
		}
		// Every non-null doc appears in exactly one theme.
		for doc, n := range seen {
			if n != 1 {
				return fmt.Errorf("doc %d in %d themes", doc, n)
			}
		}
		if len(seen) == 0 {
			return fmt.Errorf("no themed documents")
		}
		return nil
	})
}

func TestNearFindsProjectedDocs(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		// A huge radius catches every document.
		all := e.Near(0, 0, 1e9)
		if len(all) != len(miniDocs) {
			return fmt.Errorf("near-all found %d of %d", len(all), len(miniDocs))
		}
		// A zero radius at a specific doc's position finds at least it.
		var x, y float64
		for _, pt := range e.res.Projection.Local {
			if pt.Doc == 0 {
				x, y = pt.X, pt.Y
			}
		}
		xs := c.AllreduceSumFloat64([]float64{x, y})
		hits := e.Near(xs[0], xs[1], 1e-9)
		found := false
		for _, d := range hits {
			if d == 0 {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("doc 0 not found at its own position: %v", hits)
		}
		return nil
	})
}

func TestQueriesAgreeAcrossRanks(t *testing.T) {
	withEngine(t, 4, func(c *cluster.Comm, e *Engine) error {
		and := e.And("apple", "cherry")
		// Compare across ranks via an element-wise sum check.
		sum := c.AllreduceSumInt64(append([]int64(nil), and...))
		for i := range sum {
			if sum[i] != and[i]*int64(c.Size()) {
				return fmt.Errorf("ranks disagree on AND result")
			}
		}
		hits, err := e.Similar(3, 1)
		if err != nil {
			return err
		}
		hitSum := c.AllreduceSumInt64([]int64{hits[0].Doc})
		if hitSum[0] != hits[0].Doc*int64(c.Size()) {
			return fmt.Errorf("ranks disagree on Similar result")
		}
		return nil
	})
}

func TestVirtualLatencyCharged(t *testing.T) {
	src := corpus.FromTexts("mini", miniDocs)
	var before, after float64
	_, err := cluster.Run(2, nil, func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 100, TopicFrac: 0.5})
		if err != nil {
			return err
		}
		e := New(c, res)
		c.Barrier()
		if c.Rank() == 0 {
			before = c.Clock().Now()
			e.TermDocs("apple")
			after = c.Clock().Now()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatal("query latency not charged to the virtual clock")
	}
}

// countingSource wraps a posting source and counts fetches — the shape a
// serving cache interposes.
type countingSource struct {
	inner PostingSource
	calls int64
}

func (cs *countingSource) Postings(id int64) ([]int64, []int64) {
	cs.calls++
	return cs.inner.Postings(id)
}

func TestUsePostingsInterposesSource(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		want := e.TermDocs("apple")
		cs := &countingSource{}
		cs.inner = e.UsePostings(cs)
		if cs.inner == nil {
			return fmt.Errorf("no previous source returned")
		}
		got := e.TermDocs("apple")
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("interposed source changes results: %v vs %v", got, want)
		}
		if cs.calls != 1 {
			return fmt.Errorf("interposed source saw %d calls, want 1", cs.calls)
		}
		e.And("apple", "banana")
		if cs.calls != 3 {
			return fmt.Errorf("boolean query bypassed the source (%d calls)", cs.calls)
		}
		return nil
	})
}

// uniDocs plants non-ASCII vocabulary so normalization is exercised
// end-to-end: scan indexes the folded forms, queries must reach them.
var uniDocs = []string{
	"naïve naïve café café résumé",      // doc 0
	"naïve café café straße",            // doc 1
	"résumé résumé straße straße naïve", // doc 2
	"plain plain words words here here", // doc 3
}

func TestUnicodeTermsQueryableEndToEnd(t *testing.T) {
	src := corpus.FromTexts("uni", uniDocs)
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 100, TopicFrac: 0.5})
		if err != nil {
			return err
		}
		e := New(c, res)
		// The raw, upper-case, and connector-wrapped spellings all resolve:
		// the query fold matches the tokenizer's (scan.NormalizeTerm), not an
		// ASCII-only byte fold.
		for _, spelling := range []string{"naïve", "NAÏVE", "Naïve", "'naïve'", "naïve-"} {
			if got := e.TermDocs(spelling); len(got) != 3 {
				return fmt.Errorf("TermDocs(%q) found %d docs, want 3", spelling, len(got))
			}
		}
		if df := e.DF("CAFÉ"); df != 2 {
			return fmt.Errorf("DF(CAFÉ) = %d, want 2", df)
		}
		if got := e.And("naïve", "STRASSE"); got != nil {
			return fmt.Errorf("ASCII spelling must not match folded non-ASCII term: %v", got)
		}
		if got := e.And("naïve", "café"); !reflect.DeepEqual(got, []int64{0, 1}) {
			return fmt.Errorf("naïve AND café = %v", got)
		}
		if got := e.Or("straße", "résumé"); !reflect.DeepEqual(got, []int64{0, 1, 2}) {
			return fmt.Errorf("straße OR résumé = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAndOrdersByDFAndEarlyExits(t *testing.T) {
	withEngine(t, 2, func(c *cluster.Comm, e *Engine) error {
		cs := &countingSource{}
		cs.inner = e.UsePostings(cs)

		// A missing term dooms the conjunction before any list transfers.
		e.And("apple", "banana", "nonexistent")
		if cs.calls != 0 {
			return fmt.Errorf("And with a missing term transferred %d lists, want 0", cs.calls)
		}

		// Disjoint rare terms empty the intersection after two fetches; the
		// remaining (largest) list must never move. DFs: banana=2, durian=2,
		// apple=3 — banana ∩ durian = ∅ before apple is touched.
		cs.calls = 0
		if got := e.And("apple", "banana", "durian"); got != nil {
			return fmt.Errorf("disjoint AND = %v", got)
		}
		if cs.calls != 2 {
			return fmt.Errorf("early exit transferred %d lists, want 2", cs.calls)
		}
		return nil
	})
}

func TestIntersectSortedGallops(t *testing.T) {
	// A long strided list against a short one exercises the galloping path
	// (ratio >= gallopFactor); results must match the linear merge.
	long := make([]int64, 4096)
	for i := range long {
		long[i] = int64(3 * i)
	}
	short := []int64{0, 3, 7, 300, 301, 302, 303, 9000, 12285}
	want := []int64{0, 3, 300, 303, 9000, 12285}
	if got := IntersectSorted(short, long); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop short∩long = %v, want %v", got, want)
	}
	if got := IntersectSorted(long, short); !reflect.DeepEqual(got, want) {
		t.Fatalf("gallop long∩short = %v, want %v", got, want)
	}
	if got := IntersectSorted(nil, long); got != nil {
		t.Fatalf("empty∩long = %v", got)
	}
	if got := IntersectSorted(long, long); !reflect.DeepEqual(got, long) {
		t.Fatal("self-intersection differs")
	}
}
