package query

import "testing"

// TestIntersectSortedIntoAllocFree pins both intersect strategies — the
// linear merge and the galloping search — at zero allocations when the
// caller owns the result buffer.
func TestIntersectSortedIntoAllocFree(t *testing.T) {
	a := make([]int64, 0, 64)
	near := make([]int64, 0, 128) // comparable size: linear merge
	far := make([]int64, 0, 64*gallopFactor)
	for i := int64(0); i < 64; i++ {
		a = append(a, 4*i)
	}
	for i := int64(0); i < 128; i++ {
		near = append(near, 2*i)
	}
	for i := int64(0); i < 64*gallopFactor; i++ {
		far = append(far, i)
	}
	for _, tc := range []struct {
		name string
		b    []int64
	}{
		{"linear", near},
		{"gallop", far},
	} {
		dst := IntersectSortedInto(nil, a, tc.b) // warm to working-set size
		if len(dst) != len(a) {
			t.Fatalf("%s: intersect kept %d of %d", tc.name, len(dst), len(a))
		}
		got := testing.AllocsPerRun(100, func() {
			dst = IntersectSortedInto(dst[:0], a, tc.b)
		})
		if got != 0 {
			t.Fatalf("%s: warm IntersectSortedInto allocates %v objects/op, want 0", tc.name, got)
		}
	}
}
