// Package query implements the interactive-analysis layer the paper names
// as its next frontier: "the interactions associated with massive datasets
// within a visual analytics environment. To the best of our knowledge,
// interactions of this scale on a parallel system have never been
// attempted."
//
// Queries run SPMD over the engine's distributed products: term lookups
// resolve through the vocabulary hashmap and read postings with one-sided
// gets against the term owner; boolean queries intersect/union posting
// lists; similarity search scans local signatures and combines per-rank
// candidates with the same top-K merge collective the topicality stage uses.
// Every operation is charged to the virtual clock, so interaction latency on
// the modeled cluster is measurable.
//
// Concurrency: the point read paths — TermDocs, DF, And, Or — are safe for
// concurrent use from multiple goroutines of one rank (multiple analyst
// sessions), provided the posting source is; the global-array source is. The
// collective operations — Similar, ThemeDocs, Near — synchronize all ranks
// and must be called by exactly one session at a time. The serving layer
// (internal/serve) builds on the non-collective paths plus a gathered
// snapshot for the collective ones.
package query

import (
	"fmt"
	"math"
	"sort"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/scan"
)

// PostingSource supplies a term's posting list by dense term ID. The
// distributed inverted index (invert.Index) is the default source; a serving
// layer can interpose a caching source so repeated lookups skip the one-sided
// transfer. Implementations must be safe for concurrent use.
type PostingSource interface {
	Postings(id int64) (docs, freqs []int64)
}

// Engine wraps one rank's view of a finished pipeline run.
type Engine struct {
	c   *cluster.Comm
	res *core.Result
	src PostingSource
}

// New builds the query engine over a pipeline result. Must be called
// collectively with each rank's own result.
func New(c *cluster.Comm, res *core.Result) *Engine {
	return &Engine{c: c, res: res, src: res.Index}
}

// UsePostings replaces the engine's posting source (e.g. with a cache wrapped
// around the previous source) and returns the source it replaced. Not safe to
// call concurrently with queries; install sources before serving.
func (e *Engine) UsePostings(src PostingSource) PostingSource {
	old := e.src
	e.src = src
	return old
}

// Posting is one document hit for a term.
type Posting struct {
	Doc  int64
	Freq int64
}

// TermDocs returns the posting list of a term (sorted by document ID), or
// nil when the term is not in the vocabulary. Any rank may call it; the
// postings transfer one-sided from the term's owner.
func (e *Engine) TermDocs(term string) []Posting {
	tok := Normalize(term)
	id, ok := e.res.Vocab.DenseLookup(tok)
	if !ok {
		return nil
	}
	docs, freqs := e.src.Postings(id)
	out := make([]Posting, len(docs))
	for i := range docs {
		out[i] = Posting{Doc: docs[i], Freq: freqs[i]}
	}
	return out
}

// DF returns a term's document frequency (0 when absent).
func (e *Engine) DF(term string) int64 {
	id, ok := e.res.Vocab.DenseLookup(Normalize(term))
	if !ok {
		return 0
	}
	return e.res.Stats.DF.GetOne(id)
}

// And returns the documents containing every term, sorted by document ID.
// Document frequencies (cheap descriptor reads) are consulted before any
// posting list moves: terms are intersected rarest-first and the remaining —
// larger — lists are never transferred once the intersection is empty or a
// term is absent.
func (e *Engine) And(terms ...string) []int64 {
	if len(terms) == 0 {
		return nil
	}
	type cand struct {
		id int64
		df int64
	}
	cands := make([]cand, len(terms))
	for i, t := range terms {
		id, ok := e.res.Vocab.DenseLookup(Normalize(t))
		if !ok {
			return nil
		}
		df := e.res.Stats.DF.GetOne(id)
		if df == 0 {
			return nil
		}
		cands[i] = cand{id: id, df: df}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].df < cands[b].df })
	var acc []int64
	for i, c := range cands {
		docs, _ := e.src.Postings(c.id)
		if i == 0 {
			acc = append([]int64(nil), docs...)
		} else {
			acc = IntersectSorted(acc, docs)
		}
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// Or returns the documents containing any term, sorted by document ID.
func (e *Engine) Or(terms ...string) []int64 {
	seen := make(map[int64]bool)
	for _, t := range terms {
		for _, p := range e.TermDocs(t) {
			seen[p.Doc] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for doc := range seen {
		out = append(out, doc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Hit is one similarity-search result.
type Hit struct {
	Doc   int64
	Score float64 // cosine similarity in signature space
}

// Similar collectively finds the k documents most similar to the target
// document's knowledge signature (cosine similarity; the target itself is
// excluded). Every rank returns the same hits. Must be called by all ranks.
func (e *Engine) Similar(targetDoc int64, k int) ([]Hit, error) {
	fwd := e.res.Forward
	sigs := e.res.Signatures
	// The owner of the target broadcasts its vector via sum-allreduce.
	m := sigs.M
	target := make([]float64, m)
	found := 0.0
	for i, id := range fwd.GlobalDocIDs {
		if id == targetDoc {
			if v := sigs.Vecs[i]; v != nil {
				copy(target, v)
				found = 1
			}
		}
	}
	target = e.c.AllreduceSumFloat64(target)
	if e.c.AllreduceSum(found) == 0 {
		return nil, fmt.Errorf("query: document %d not found or has a null signature", targetDoc)
	}

	// Local scoring, global top-k merge.
	local := make([]cluster.Scored, 0, 64)
	var flops float64
	for i, v := range sigs.Vecs {
		if v == nil || fwd.GlobalDocIDs[i] == targetDoc {
			continue
		}
		local = append(local, cluster.Scored{ID: fwd.GlobalDocIDs[i], Score: Cosine(target, v)})
		flops += float64(3 * m)
	}
	e.c.Clock().Advance(e.c.Model().FlopCost(flops))
	sort.Slice(local, func(a, b int) bool {
		if local[a].Score != local[b].Score {
			return local[a].Score > local[b].Score
		}
		return local[a].ID < local[b].ID
	})
	top := e.c.MergeTopK(local, k)
	out := make([]Hit, len(top))
	for i, s := range top {
		out[i] = Hit{Doc: s.ID, Score: s.Score}
	}
	return out, nil
}

// ThemeDocs collectively returns the global document IDs assigned to a
// k-means cluster, sorted. Must be called by all ranks.
func (e *Engine) ThemeDocs(clusterID int) []int64 {
	var local []int64
	for i, a := range e.res.Clusters.Assign {
		if a == clusterID {
			local = append(local, e.res.Forward.GlobalDocIDs[i])
		}
	}
	parts := e.c.Allgather(local, float64(8*len(local)))
	var out []int64
	for _, p := range parts {
		out = append(out, p.([]int64)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Near collectively returns the documents whose 2-D projection falls within
// radius of (x, y) — the drill-down an analyst performs on a ThemeView
// mountain. Must be called by all ranks.
func (e *Engine) Near(x, y, radius float64) []int64 {
	r2 := radius * radius
	var local []int64
	for _, pt := range e.res.Projection.Local {
		dx, dy := pt.X-x, pt.Y-y
		if dx*dx+dy*dy <= r2 {
			local = append(local, pt.Doc)
		}
	}
	parts := e.c.Allgather(local, float64(8*len(local)))
	var out []int64
	for _, p := range parts {
		out = append(out, p.([]int64)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// --- helpers ---------------------------------------------------------------

// Normalize folds a query term exactly the way the tokenizer folded it at
// indexing time (scan.NormalizeTerm): Unicode lowercasing plus the '- edge
// trim. It previously byte-lowercased ASCII only, which made every indexed
// non-ASCII term (naïve, café) unreachable from every query path.
func Normalize(term string) string {
	return scan.NormalizeTerm(term)
}

// Cosine returns the cosine similarity of two non-negative vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// IntersectSorted intersects two sorted ID lists into a sorted result. When
// the lists are comparably sized it merges linearly; when one dwarfs the
// other it gallops — exponential probing then binary search in the longer
// list — so the cost is near |short| · log |long| rather than |short|+|long|.
func IntersectSorted(a, b []int64) []int64 {
	return IntersectSortedInto(nil, a, b)
}

// IntersectSortedInto is IntersectSorted with a caller-owned result buffer:
// the intersection is written over dst[:0] and the (possibly regrown) slice
// returned, so repeated intersections can reuse one scratch buffer and stay
// allocation-free once it reaches working-set size. dst must alias neither
// input.
func IntersectSortedInto(dst, a, b []int64) []int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		// dst[:0], not nil: the caller keeps its buffer for the next query.
		return dst[:0]
	}
	if len(b) >= gallopFactor*len(a) {
		return gallopIntersect(dst, a, b)
	}
	out := dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// gallopFactor is the length ratio beyond which IntersectSorted switches
// from linear merging to galloping search.
const gallopFactor = 16

// gallopIntersect intersects short a against long b by exponential probing,
// writing over dst[:0].
func gallopIntersect(dst, a, b []int64) []int64 {
	out := dst[:0]
	lo := 0
	for _, v := range a {
		// Gallop: double the step until b[lo+step] >= v, then binary search
		// the bracketed window.
		step := 1
		for lo+step < len(b) && b[lo+step] < v {
			step *= 2
		}
		hi := lo + step
		if hi > len(b) {
			hi = len(b)
		}
		w := b[lo:hi]
		k := sort.Search(len(w), func(i int) bool { return w[i] >= v })
		lo += k
		if lo >= len(b) {
			break
		}
		if b[lo] == v {
			out = append(out, v)
			lo++
		}
	}
	return out
}
