package serve

// Tests of the INSPSTORE4 zero-copy layout: round trips through the mapped
// and heap load paths, operation-for-operation equivalence between a mapped
// store and its heap twin (monolithic and sharded, idle and under concurrent
// ingest), agreement across all four persisted format versions, the
// resident-set budget, and rejection of corrupt files.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"inspire/internal/tiles"
)

// saveV4T persists st as INSPSTORE4 and returns the path.
func saveV4T(t *testing.T, st *Store, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStoreV4RoundTrip(t *testing.T) {
	st := batchStore(t, ingestSources(), 3)
	path := saveV4T(t, st, "v4.store")

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("INSPSTORE4\n")) {
		t.Fatalf("compressed store wrote magic %q", raw[:11])
	}

	mapped, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := LoadStoreFileHeap(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mapped() {
		t.Fatal("default v4 load is not mapped")
	}
	if heap.Mapped() {
		t.Fatal("heap load claims a mapping")
	}
	for name, got := range map[string]*Store{"mapped": mapped, "heap": heap} {
		if got.TotalDocs != st.TotalDocs || got.VocabSize != st.VocabSize ||
			got.K != st.K || got.SigM != st.SigM || got.P != st.P {
			t.Fatalf("%s: header fields differ: %+v", name, got)
		}
		if len(got.TermList) != len(st.TermList) || len(got.Points) != len(st.Points) {
			t.Fatalf("%s: table sizes differ", name)
		}
		for _, term := range st.TopTerms(10) {
			wantID, ok1 := st.TermID(term)
			gotID, ok2 := got.TermID(term)
			if ok1 != ok2 || wantID != gotID {
				t.Fatalf("%s: TermID(%q) = %d,%v want %d,%v", name, term, gotID, ok2, wantID, ok1)
			}
		}
		if !reflect.DeepEqual(got.DF, st.DF) {
			t.Fatalf("%s: DF differs", name)
		}
		if !reflect.DeepEqual(got.Points, st.Points) {
			t.Fatalf("%s: points differ", name)
		}
	}

	// A mapped store saves back to the legacy layout on demand — the interop
	// escape hatch — and the legacy file loads as INSPSTORE2.
	var legacy bytes.Buffer
	if err := mapped.SaveLegacy(&legacy); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(legacy.Bytes(), []byte("INSPSTORE2\n")) {
		t.Fatalf("legacy save wrote magic %q", legacy.Bytes()[:11])
	}
	back, err := LoadStore(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalDocs != st.TotalDocs || len(back.Terms) != len(st.TermList) {
		t.Fatal("legacy round trip lost the store")
	}
}

// compareQueriers drives every read operation of the Querier surface on both
// sides and requires identical answers.
func compareQueriers(t *testing.T, label string, a, b Querier, terms []string, docs []int64, themes int) {
	t.Helper()
	for _, tm := range terms {
		if got, want := a.DF(context.Background(), tm), b.DF(context.Background(), tm); got != want {
			t.Fatalf("%s: DF(%q) = %d vs %d", label, tm, got, want)
		}
		if got, want := a.TermDocs(context.Background(), tm), b.TermDocs(context.Background(), tm); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: TermDocs(%q) differ", label, tm)
		}
	}
	for i := 1; i < len(terms); i++ {
		pair := []string{terms[i-1], terms[i]}
		if got, want := a.And(context.Background(), pair...), b.And(context.Background(), pair...); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: And(%v) = %v vs %v", label, pair, got, want)
		}
		if got, want := a.Or(context.Background(), pair...), b.Or(context.Background(), pair...); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Or(%v) differ", label, pair)
		}
	}
	for _, d := range docs {
		got, gerr := a.Similar(context.Background(), d, 5)
		want, werr := b.Similar(context.Background(), d, 5)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("%s: Similar(%d) errors differ: %v vs %v", label, d, gerr, werr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Similar(%d) = %v vs %v", label, d, got, want)
		}
	}
	for c := 0; c < themes; c++ {
		if got, want := a.ThemeDocs(context.Background(), c), b.ThemeDocs(context.Background(), c); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: ThemeDocs(%d) differ", label, c)
		}
	}
	if got, want := a.Near(context.Background(), 0.5, 0.5, 10), b.Near(context.Background(), 0.5, 0.5, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Near differ: %v vs %v", label, got, want)
	}
	got, gerr := a.Tile(context.Background(), 0, 0, 0)
	want, werr := b.Tile(context.Background(), 0, 0, 0)
	if (gerr == nil) != (werr == nil) || !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: Tile(0,0,0) differ: %+v (%v) vs %+v (%v)", label, got, gerr, want, werr)
	}
	all := tiles.NewBounds(-1e9, -1e9, 1e9, 1e9)
	gr, gerr := a.TileRange(context.Background(), 1, all)
	wr, werr := b.TileRange(context.Background(), 1, all)
	if (gerr == nil) != (werr == nil) || !reflect.DeepEqual(gr, wr) {
		t.Fatalf("%s: TileRange differ", label)
	}
}

// serviceOf builds the service under test from a store: a monolithic Server
// or an n-shard Router.
func serviceOf(t *testing.T, st *Store, n int, cfg Config) Service {
	t.Helper()
	if n == 1 {
		srv, err := NewServer(st, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	shards, err := st.Shard(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMappedHeapEquivalence is the tentpole's correctness bar: every Querier
// operation answers identically from a mapped INSPSTORE4 store and its
// heap-materialized twin — monolithic and 3-shard sharded, before and after
// live mutation (add, delete, flush, compact), and after a save/reload of
// the live state. Queries also run concurrently with ingest on both sides,
// which puts the lazy fault-in paths under the race detector.
func TestMappedHeapEquivalence(t *testing.T) {
	base := batchStore(t, ingestSources(), 3)
	path := saveV4T(t, base, "eq.store")

	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mappedStore, err := LoadStoreFile(path)
			if err != nil {
				t.Fatal(err)
			}
			heapStore, err := LoadStoreFileHeap(path)
			if err != nil {
				t.Fatal(err)
			}
			if !mappedStore.Mapped() || heapStore.Mapped() {
				t.Fatal("load modes wrong")
			}
			// A small posting cache forces eviction (and resident unpinning)
			// during the sweep.
			cfg := Config{PostingCacheEntries: 8}
			ms := serviceOf(t, mappedStore, shards, cfg)
			hs := serviceOf(t, heapStore, shards, cfg)

			terms := ms.TopTerms(context.Background(), 12)
			docs := ms.SampleDocs(context.Background(), 6)
			themes := ms.NumThemes()
			if len(terms) == 0 || len(docs) == 0 {
				t.Fatal("no probe terms or docs")
			}
			compareQueriers(t, "idle", ms.NewQuerier(), hs.NewQuerier(), terms, docs, themes)

			// Concurrent exercise: readers hammer both services while the
			// same mutation stream applies to each. Answers during the race
			// are not compared (timing differs); the race detector is the
			// assertion here.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for _, svc := range []Service{ms, hs} {
				for w := 0; w < 2; w++ {
					wg.Add(1)
					go func(svc Service) {
						defer wg.Done()
						q := svc.NewQuerier()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							q.And(context.Background(), terms[i%len(terms)], terms[(i+1)%len(terms)])
							_, _ = q.Similar(context.Background(), docs[i%len(docs)], 3)
							_, _ = q.Tile(context.Background(), 0, 0, 0)
						}
					}(svc)
				}
			}
			added := make([]int64, 0, 8)
			mq, hq := ms.NewQuerier(), hs.NewQuerier()
			for i := 0; i < 8; i++ {
				text := terms[i%len(terms)] + " " + terms[(i+2)%len(terms)]
				mid, merr := mq.Add(context.Background(), text)
				hid, herr := hq.Add(context.Background(), text)
				if merr != nil || herr != nil {
					t.Fatalf("add: %v / %v", merr, herr)
				}
				if mid != hid {
					t.Fatalf("add assigned %d vs %d", mid, hid)
				}
				added = append(added, mid)
			}
			if err := mq.Delete(context.Background(), added[0]); err != nil {
				t.Fatal(err)
			}
			if err := hq.Delete(context.Background(), added[0]); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()

			for _, svc := range []Service{ms, hs} {
				l := svc.(Liver)
				if err := l.FlushLive(context.Background()); err != nil {
					t.Fatal(err)
				}
				if err := l.CompactLive(context.Background()); err != nil {
					t.Fatal(err)
				}
			}
			compareQueriers(t, "after ingest", ms.NewQuerier(), hs.NewQuerier(), terms, append(docs, added[1]), themes)

			// Save the live state from the mapped side and reload it both
			// ways. SaveLive rebases — tombstones fold into holes and DF
			// drops — so the reloads are compared against each other, not
			// against the still-live services.
			dir := t.TempDir()
			outName := "live.store"
			if shards > 1 {
				outName = "live.shards"
			}
			out := filepath.Join(dir, outName)
			if err := ms.(Liver).SaveLive(context.Background(), out); err != nil {
				t.Fatal(err)
			}
			reMapped, err := LoadServiceFile(out, Config{})
			if err != nil {
				t.Fatal(err)
			}
			reHeap, err := LoadServiceFile(out, Config{NoMmap: true})
			if err != nil {
				t.Fatal(err)
			}
			compareQueriers(t, "reloaded live", reMapped.NewQuerier(), reHeap.NewQuerier(), terms, docs, themes)
		})
	}
}

// TestFourVersionAgreement pins the compatibility sweep the issue demands:
// the same logical store persisted as INSPSTORE1 (flat), INSPSTORE2 (gob),
// INSPSTORE3 (gob with deletion holes) and INSPSTORE4 loads from every
// format and answers identically to the mapped v4 counterpart.
func TestFourVersionAgreement(t *testing.T) {
	st := batchStore(t, ingestSources(), 2)
	// Give the store holes so the v3 layout is exercised for real.
	if _, err := st.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := map[string]string{
		"v1": filepath.Join(dir, "v1.store"),
		"v3": filepath.Join(dir, "v3.store"),
		"v4": filepath.Join(dir, "v4.store"),
	}
	flat := st.FlatCopy()
	flat.Holes = nil // v1 predates holes; drop them for the flat artifact
	if err := flat.SaveLegacyFile(paths["v1"]); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveLegacyFile(paths["v3"]); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveFile(paths["v4"]); err != nil {
		t.Fatal(err)
	}
	// A holeless compressed twin exercises the v2 magic.
	noHoles := st.Fork()
	noHoles.Holes = nil
	paths["v2"] = filepath.Join(dir, "v2.store")
	if err := noHoles.SaveLegacyFile(paths["v2"]); err != nil {
		t.Fatal(err)
	}

	for name, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		wantMagic := map[string]string{
			"v1": "INSPSTORE1\n", "v2": "INSPSTORE2\n", "v3": "INSPSTORE3\n", "v4": "INSPSTORE4\n",
		}[name]
		if !bytes.HasPrefix(raw, []byte(wantMagic)) {
			t.Fatalf("%s wrote magic %q", name, raw[:11])
		}
	}

	mapped, err := LoadStoreFile(paths["v4"])
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewServer(mapped, Config{})
	if err != nil {
		t.Fatal(err)
	}
	terms := want.TopTerms(context.Background(), 10)
	docs := want.SampleDocs(context.Background(), 4)
	for _, name := range []string{"v1", "v2", "v3", "v4"} {
		svc, err := LoadServiceFile(paths[name], Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// v1 and v2 predate the holes; compare hole-independent surfaces
		// for them and the full surface for v3.
		if name == "v3" || name == "v4" {
			compareQueriers(t, name, svc.NewQuerier(), want.NewQuerier(), terms, docs, want.NumThemes())
			continue
		}
		q, wq := svc.NewQuerier(), want.NewQuerier()
		for _, tm := range terms {
			if got, wantDF := q.DF(context.Background(), tm), wq.DF(context.Background(), tm); got != wantDF {
				t.Fatalf("%s: DF(%q) = %d want %d", name, tm, got, wantDF)
			}
		}
	}
}

// TestMapBudgetPinDenials pins the resident-set accountant: a mapped server
// with a tiny budget refuses posting-cache pins (counting every refusal) but
// still answers queries correctly straight from the mapping.
func TestMapBudgetPinDenials(t *testing.T) {
	st := batchStore(t, ingestSources(), 2)
	path := saveV4T(t, st, "budget.store")

	mapped, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats, ok := mapped.ResidentStats(); !ok || stats.MappedBytes == 0 {
		t.Fatalf("mapped store has no resident accounting: %+v ok=%v", stats, ok)
	}
	srv, err := NewServer(mapped, Config{MapBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	heapSrv := newServerT(t, mustLoadHeapLegacyTwin(t, st), Config{})

	terms := srv.TopTerms(context.Background(), 8)
	q, hq := srv.NewSession(), heapSrv.NewSession()
	for i := 1; i < len(terms); i++ {
		got := q.And(context.Background(), terms[i-1], terms[i])
		want := hq.And(context.Background(), terms[i-1], terms[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("budget-starved And(%q,%q) = %v want %v", terms[i-1], terms[i], got, want)
		}
	}
	stats := srv.Stats()
	if stats.PinDenials == 0 {
		t.Fatalf("1-byte budget denied no pins: %+v", stats)
	}
	if stats.ResidentMappedBytes == 0 {
		t.Fatalf("mapped bytes not reported: %+v", stats)
	}

	// An unlimited budget pins freely: no denials, pinned bytes grow.
	free, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	freeSrv, err := NewServer(free, Config{MapBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	fq := freeSrv.NewSession()
	for i := 1; i < len(terms); i++ {
		fq.And(context.Background(), terms[i-1], terms[i])
	}
	if s := freeSrv.Stats(); s.PinDenials != 0 || s.ResidentPinnedBytes == 0 {
		t.Fatalf("unlimited budget misbehaved: %+v", s)
	}
}

// mustLoadHeapLegacyTwin round-trips st through the legacy gob layout — an
// independent decode path to compare mapped answers against.
func mustLoadHeapLegacyTwin(t *testing.T, st *Store) *Store {
	t.Helper()
	var buf bytes.Buffer
	if err := st.SaveLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	twin, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return twin
}

// TestStoreV4Rejects drives corrupt and truncated v4 files through both load
// paths: every mangling must fail loudly, never load garbage.
func TestStoreV4Rejects(t *testing.T) {
	st := buildStoreT(t, 2)
	path := saveV4T(t, st, "ok.store")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]byte{
		"truncated header":  raw[:8],
		"truncated toc":     raw[:40],
		"truncated section": raw[:len(raw)-100],
		"trailing garbage":  append(append([]byte{}, raw...), 0xFF),
		"flipped flag":      flipByte(raw, 11),
		"flipped toc":       flipByte(raw, 20),
	}
	for name, data := range cases {
		p := write(name+".store", data)
		if _, err := LoadStoreFile(p); err == nil {
			t.Errorf("%s: mapped load accepted", name)
		}
		if _, err := LoadStoreFileHeap(p); err == nil {
			t.Errorf("%s: heap load accepted", name)
		}
	}

	// The pristine file still loads after all that — the copies were the
	// problem, not the loader.
	if _, err := LoadStoreFile(path); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}
}

func flipByte(raw []byte, i int) []byte {
	out := append([]byte{}, raw...)
	out[i] ^= 0xA5
	return out
}
