package serve

import (
	"fmt"
	"reflect"
	"testing"
)

// FuzzManifestRoundTrip drives the shard-manifest codec from both ends:
// arbitrary bytes must either be rejected or decode to a manifest that
// re-encodes to a decode-identical value, and structured inputs derived from
// the fuzzer's integers must always encode and round-trip exactly.
func FuzzManifestRoundTrip(f *testing.F) {
	seed := &Manifest{
		NumShards: 2, TotalDocs: 9, VocabSize: 4, Route: RouteMod,
		Shards: []ShardInfo{{File: "r.s00", Docs: 5, Postings: 17}, {File: "r.s01", Docs: 4, Postings: 12}},
	}
	data, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	liveSeed := &Manifest{
		NumShards: 1, TotalDocs: 4, VocabSize: 3, Route: RouteMod,
		Shards: []ShardInfo{{
			File: "r.s00", Docs: 4, Postings: 9,
			Segments: []SegmentInfo{{File: "r.s00.g000", Docs: 2}},
			Tombs:    []int64{1, 5},
		}},
	}
	liveData, err := liveSeed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	// A shard whose only live state is the ID high-water mark (everything
	// ingested was deleted and compacted away) still writes v2.
	markSeed := &Manifest{
		NumShards: 1, TotalDocs: 4, VocabSize: 3, Route: RouteMod,
		Shards: []ShardInfo{{File: "r.s00", Docs: 4, Postings: 9, NextDoc: 11}},
	}
	markData, err := markSeed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data, uint8(2), uint16(9), uint16(4))
	f.Add(liveData, uint8(3), uint16(7), uint16(3))
	f.Add(markData, uint8(1), uint16(4), uint16(3))
	f.Add([]byte(manifestMagic), uint8(1), uint16(0), uint16(0))
	f.Add([]byte(manifestMagicV2), uint8(1), uint16(2), uint16(1))
	f.Add([]byte{}, uint8(0), uint16(0), uint16(0))

	f.Fuzz(func(t *testing.T, raw []byte, nShards uint8, docs, vocab uint16) {
		// Arbitrary bytes: decode either errors or yields a validated
		// manifest whose encoding decodes back to the same value.
		if m, err := DecodeManifest(raw); err == nil {
			if err := m.Validate(); err != nil {
				t.Fatalf("decoded manifest fails validation: %v", err)
			}
			re, err := m.Encode()
			if err != nil {
				t.Fatalf("decoded manifest does not re-encode: %v", err)
			}
			back, err := DecodeManifest(re)
			if err != nil {
				t.Fatalf("re-encoded manifest does not decode: %v", err)
			}
			if !reflect.DeepEqual(m, back) {
				t.Fatalf("round trip drifted: %#v != %#v", m, back)
			}
		}

		// Structured input: a synthesized valid manifest — alternating shards
		// carrying live state (segments + tombstones), so both format
		// versions fuzz — must round-trip to identity.
		n := int(nShards)%16 + 1
		m := &Manifest{NumShards: n, VocabSize: int64(vocab), Route: RouteMod}
		remaining := int64(docs)
		for i := 0; i < n; i++ {
			d := remaining / int64(n-i)
			remaining -= d
			info := ShardInfo{
				File:     fmt.Sprintf("f.s%02d", i),
				Docs:     d,
				Postings: int64(vocab) * d,
			}
			if i%2 == 1 {
				for j := 0; j < int(nShards)%3+1; j++ {
					info.Segments = append(info.Segments, SegmentInfo{
						File: fmt.Sprintf("f.s%02d.g%03d", i, j),
						Docs: int64(vocab) + int64(j),
					})
				}
				for j := int64(0); j < int64(docs)%5; j++ {
					info.Tombs = append(info.Tombs, int64(i)+j*(int64(vocab)+1))
				}
				info.NextDoc = int64(docs) % 3 * (int64(vocab) + int64(i))
			}
			m.Shards = append(m.Shards, info)
			m.TotalDocs += d
		}
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("valid manifest rejected: %v", err)
		}
		back, err := DecodeManifest(enc)
		if err != nil {
			t.Fatalf("encoded manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("structured round trip drifted: %#v != %#v", m, back)
		}
	})
}
