//go:build race

package serve

// poolAllocSlack: under the race detector sync.Pool randomly drops a
// fraction of Puts (to shake out reuse races), so a pool-backed hot path
// reallocates its buffer on some iterations and the measured average rises
// by about one object/op. The extra slack exists only in race builds; the
// plain pins stay exact.
const poolAllocSlack = 1
