package serve

// N-way shard replication: each logical shard runs a ReplicaSet of
// independent Servers over read-equivalent stores. Reads load-balance across
// live replicas with power-of-two-choices over in-flight depth, hedge to a
// second replica when the first is slow, and fail over when a replica dies
// mid-flight. Writes serialize under the set's write lock and apply to every
// live replica in the same order — replicas run identical live policies, so
// an identical write stream keeps them answer-equivalent. A dead replica
// catches back up by replaying the set's replication log: the sealed
// segments and tombstone deltas the epoch machinery already publishes
// (Store.LineageSince), shipped by reference and adopted idempotently.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"inspire/internal/segment"
)

// ReplicaState is a replica's health: Live replicas serve reads and apply
// writes; a Lagging replica is replaying catch-up; a Dead replica is out of
// rotation until revived.
type ReplicaState int32

const (
	ReplicaLive ReplicaState = iota
	ReplicaLagging
	ReplicaDead
)

func (s ReplicaState) String() string {
	switch s {
	case ReplicaLive:
		return "live"
	case ReplicaLagging:
		return "lagging"
	case ReplicaDead:
		return "dead"
	}
	return "unknown"
}

// Replica is one health-tracked Server inside a ReplicaSet. The server
// pointer is atomic because a full resync (catch-up past the log's floor)
// swaps in a freshly replicated store; sessions detect the swap and reopen.
type Replica struct {
	srv      atomic.Pointer[Server]
	state    atomic.Int32
	failed   atomic.Bool
	inflight atomic.Int64
	stallNS  atomic.Int64

	// lastApplied is the set-log sequence this replica has fully applied;
	// guarded by the owning set's wmu.
	lastApplied uint64
}

// Server returns the replica's current server.
func (rep *Replica) Server() *Server { return rep.srv.Load() }

func (rep *Replica) store() *Store { return rep.srv.Load().store }

// State returns the replica's health.
func (rep *Replica) State() ReplicaState { return ReplicaState(rep.state.Load()) }

// SetStall injects a per-read delay — the slow-replica fault the hedging
// benchmarks and tests use. Zero clears it.
func (rep *Replica) SetStall(d time.Duration) { rep.stallNS.Store(int64(d)) }

func (rep *Replica) live() bool {
	return ReplicaState(rep.state.Load()) == ReplicaLive && !rep.failed.Load()
}

// setLogEntry is one set-level replication-log record: a store-level
// seal/tombstone entry renumbered into the set's own dense sequence, so
// catch-up survives the primary changing (per-store epochs diverge across
// replicas — background compaction takes epochs nondeterministically — but
// the set sequence is single-writer under wmu).
type setLogEntry struct {
	seq  uint64
	kind viewKind
	segs []*segment.Segment
	tomb int64
}

// setLogCap bounds the set log; a replica dead for longer falls back to a
// full resync (Replicate).
const setLogCap = 1024

// ReplicaSet is one logical shard's replica group.
type ReplicaSet struct {
	reps  []*Replica
	hedge time.Duration // <= 0 disables hedged reads

	// wmu serializes writes and catch-up across the set: every mutation
	// applies primary-first, then to each live follower, in one order.
	wmu sync.Mutex

	// The set log, harvested from the current primary store's replication
	// log after every write (guarded by wmu). srcStore/srcEpoch anchor the
	// harvest; logFloor is the last sequence unavailable to catch-up.
	log      []setLogEntry
	logSeq   uint64
	logFloor uint64
	srcStore *Store
	srcEpoch uint64
}

// newReplicaSet builds the shard's replica group: the given server is
// replica 0, and each additional replica serves a Replicate() copy of its
// store (shared immutable base, identical live policy and live state).
func newReplicaSet(primary *Server, n int, cfg Config) (*ReplicaSet, error) {
	set := &ReplicaSet{hedge: cfg.HedgeAfter}
	add := func(srv *Server) {
		rep := &Replica{}
		rep.srv.Store(srv)
		set.reps = append(set.reps, rep)
	}
	add(primary)
	for i := 1; i < n; i++ {
		st, err := primary.store.Replicate()
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		srv, err := newServer(st, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: replica %d: %w", i, err)
		}
		add(srv)
	}
	return set, nil
}

// primary returns the first live replica, falling back to replica 0 when
// none is (a fully dead set still needs a stats/signature source).
func (set *ReplicaSet) primary() *Replica {
	for _, rep := range set.reps {
		if rep.live() {
			return rep
		}
	}
	return set.reps[0]
}

// p2cTick drives candidate selection without per-session rng state (scatter
// goroutines are concurrent; math/rand.Rand is not).
var p2cTick atomic.Uint64

// pick selects a read replica: power-of-two-choices by in-flight depth among
// the live replicas not yet tried, or -1 when none remain.
func (set *ReplicaSet) pick(tried []bool) int {
	var buf [8]int
	cands := buf[:0]
	for i, rep := range set.reps {
		if !tried[i] && rep.live() {
			cands = append(cands, i)
		}
	}
	switch len(cands) {
	case 0:
		return -1
	case 1:
		return cands[0]
	}
	t := p2cTick.Add(1)
	a := cands[int(t%uint64(len(cands)))]
	b := cands[int((t+1)%uint64(len(cands)))]
	if set.reps[b].inflight.Load() < set.reps[a].inflight.Load() {
		return b
	}
	return a
}

// anchorLocked re-anchors the harvest source onto st (a leadership change:
// the previous primary died); callers hold wmu. The new primary has applied
// every logged write already, so harvesting resumes from its current epoch.
func (set *ReplicaSet) anchorLocked(st *Store) {
	if set.srcStore == st {
		return
	}
	set.srcStore = st
	set.srcEpoch = st.Epoch()
}

// harvestLocked appends the primary store's seal/tombstone entries published
// since the last harvest to the set log; callers hold wmu. A cut in the
// store's log (rebase, signature swap) resets the set log — laggards past it
// fully resync.
func (set *ReplicaSet) harvestLocked(st *Store) {
	entries, ok := st.LineageSince(set.srcEpoch)
	if !ok {
		set.log = nil
		set.logFloor = set.logSeq
		set.srcEpoch = st.Epoch()
		return
	}
	for _, e := range entries {
		set.logSeq++
		if len(set.log) >= setLogCap {
			set.logFloor = set.log[0].seq
			n := copy(set.log, set.log[1:])
			set.log = set.log[:n]
		}
		set.log = append(set.log, setLogEntry{seq: set.logSeq, kind: e.kind, segs: e.segs, tomb: e.tomb})
		set.srcEpoch = e.epoch
	}
}

// apply runs one mutation against the set: primary first (its result is the
// caller's), then every live follower in the same order. A follower that
// fails a write the primary accepted has diverged and is dropped from
// rotation (catch-up revives it); a write the primary rejected is still
// offered to followers — rejections are deterministic, and any side effects
// (a delete seals the pending delta before rejecting) must converge too.
func (set *ReplicaSet) apply(fn func(st *Store) (float64, error)) (float64, error) {
	set.wmu.Lock()
	defer set.wmu.Unlock()
	p := set.primary()
	st := p.store()
	set.anchorLocked(st)
	cost, err := fn(st)
	set.harvestLocked(st)
	if err == nil {
		p.lastApplied = set.logSeq
	}
	for _, rep := range set.reps {
		if rep == p || !rep.live() {
			continue
		}
		if _, ferr := fn(rep.store()); err == nil && ferr != nil {
			rep.failed.Store(true)
			rep.state.Store(int32(ReplicaDead))
			continue
		}
		rep.lastApplied = set.logSeq
	}
	return cost, err
}

// NumReplicas returns the per-shard replica count.
func (r *Router) NumReplicas() int { return len(r.sets[0].reps) }

// Replica returns shard i's replica j, for health inspection and fault
// injection.
func (r *Router) Replica(shard, rep int) *Replica { return r.sets[shard].reps[rep] }

// KillReplica takes shard i's replica j out of rotation, failing its
// in-flight reads (they retry on a sibling) and excluding it from writes —
// the crash the chaos tests inject.
func (r *Router) KillReplica(shard, rep int) {
	re := r.sets[shard].reps[rep]
	re.failed.Store(true)
	re.state.Store(int32(ReplicaDead))
}

// ReviveReplica brings a dead replica back: under the set's write lock the
// primary's pending delta is flushed into the log, and the replica replays
// every entry past its last applied sequence — sealed segments shipped by
// reference and adopted idempotently, tombstones re-applied. When the log no
// longer covers the gap (trimmed, or cut by a rebase) the replica's server
// is rebuilt over a full Replicate() of the primary store. The replica is
// Lagging while it replays and Live after.
func (r *Router) ReviveReplica(shard, rep int) error {
	set := r.sets[shard]
	re := set.reps[rep]
	set.wmu.Lock()
	defer set.wmu.Unlock()
	p := set.primary()
	if p == re {
		return fmt.Errorf("serve: shard %d has no live replica to revive %d from", shard, rep)
	}
	re.state.Store(int32(ReplicaLagging))
	pst := p.store()
	set.anchorLocked(pst)
	if _, err := pst.Flush(); err != nil {
		re.state.Store(int32(ReplicaDead))
		return err
	}
	set.harvestLocked(pst)
	p.lastApplied = set.logSeq

	if re.lastApplied < set.logFloor {
		// The log no longer reaches back far enough: full resync.
		st, err := pst.Replicate()
		if err != nil {
			re.state.Store(int32(ReplicaDead))
			return err
		}
		srv, err := newServer(st, r.cfg)
		if err != nil {
			re.state.Store(int32(ReplicaDead))
			return err
		}
		re.srv.Store(srv)
		r.catchUps.Add(1)
	} else {
		// The replica's unsealed delta holds writes the primary has since
		// sealed; the shipped segments re-deliver every one of them.
		rst := re.store()
		rst.DiscardDelta()
		for _, e := range set.log {
			if e.seq <= re.lastApplied {
				continue
			}
			switch e.kind {
			case viewSeal:
				if err := rst.AdoptSegments(e.segs); err != nil {
					re.state.Store(int32(ReplicaDead))
					return err
				}
				r.catchUpSegs.Add(uint64(len(e.segs)))
				for _, seg := range e.segs {
					r.catchUpBytes.Add(uint64(seg.ShipBytes()))
				}
			case viewTomb:
				if err := rst.AdoptTombstone(e.tomb); err != nil {
					re.state.Store(int32(ReplicaDead))
					return err
				}
			}
		}
		rst.AdvanceNextDoc(pst.NextDocID())
		r.catchUps.Add(1)
	}
	re.lastApplied = set.logSeq
	re.failed.Store(false)
	re.state.Store(int32(ReplicaLive))
	return nil
}
