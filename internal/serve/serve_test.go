package serve

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/query"
	"inspire/internal/signature"
	"inspire/internal/simtime"
)

// miniDocs is the hand corpus with known term/document structure shared with
// the query tests.
var miniDocs = []string{
	"apple apple banana banana cherry",        // doc 0
	"apple banana banana",                     // doc 1
	"apple apple cherry cherry",               // doc 2
	"durian durian elder elder fig fig",       // doc 3
	"durian elder elder fig",                  // doc 4
	"grape grape honeydew honeydew kiwi kiwi", // doc 5
}

// buildStoreT runs the pipeline over miniDocs at P ranks and snapshots it.
func buildStoreT(t *testing.T, p int) *Store {
	t.Helper()
	src := corpus.FromTexts("mini", miniDocs)
	var st *Store
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 100, TopicFrac: 0.5})
		if err != nil {
			return err
		}
		got, err := Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			st = got
		} else if got != nil {
			return fmt.Errorf("rank %d got a non-nil store", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no store from rank 0")
	}
	return st
}

func newServerT(t *testing.T, st *Store, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestSnapshotMatchesCorpus(t *testing.T) {
	st := buildStoreT(t, 3)
	if st.TotalDocs != int64(len(miniDocs)) {
		t.Fatalf("store has %d docs, want %d", st.TotalDocs, len(miniDocs))
	}
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()

	ps := sess.TermDocs(context.Background(), "apple")
	wantFreq := map[int64]int64{0: 2, 1: 1, 2: 2}
	if len(ps) != 3 {
		t.Fatalf("apple in %d docs: %v", len(ps), ps)
	}
	for _, p := range ps {
		if wantFreq[p.Doc] != p.Freq {
			t.Fatalf("apple in doc %d freq %d, want %d", p.Doc, p.Freq, wantFreq[p.Doc])
		}
	}
	if got := sess.TermDocs(context.Background(), "APPLE"); len(got) != 3 {
		t.Fatal("case folding failed")
	}
	if got := sess.TermDocs(context.Background(), "nonexistent"); got != nil {
		t.Fatalf("phantom postings: %v", got)
	}
	if sess.DF(context.Background(), "banana") != 2 || sess.DF(context.Background(), "nonexistent") != 0 {
		t.Fatal("df wrong")
	}
	if got := sess.And(context.Background(), "apple", "banana"); !reflect.DeepEqual(got, []int64{0, 1}) {
		t.Fatalf("apple AND banana = %v", got)
	}
	if got := sess.And(context.Background(), "apple", "durian"); got != nil {
		t.Fatalf("disjoint AND = %v", got)
	}
	if got := sess.Or(context.Background(), "cherry", "fig"); !reflect.DeepEqual(got, []int64{0, 2, 3, 4}) {
		t.Fatalf("cherry OR fig = %v", got)
	}

	hits, err := sess.Similar(context.Background(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]bool{}
	for _, h := range hits {
		got[h.Doc] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("neighbours of doc 0: %+v", hits)
	}
	if _, err := sess.Similar(context.Background(), 999, 2); err == nil {
		t.Fatal("similar to missing doc should fail")
	}

	// Themes partition the documents.
	seen := map[int64]int{}
	for k := 0; k < st.K; k++ {
		for _, d := range sess.ThemeDocs(context.Background(), k) {
			seen[d]++
		}
	}
	for d, n := range seen {
		if n != 1 {
			t.Fatalf("doc %d in %d themes", d, n)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no themed documents")
	}
	if all := sess.Near(context.Background(), 0, 0, 1e9); len(all) != len(miniDocs) {
		t.Fatalf("near-all found %d of %d", len(all), len(miniDocs))
	}

	// Virtual latency is accounted per interaction.
	sst := sess.Stats()
	if sst.Ops == 0 || sst.VirtualSeconds < 0 || sst.MeanMS < 0 {
		t.Fatalf("session account broken: %+v", sst)
	}
}

func TestCachedAnswersIdenticalToCold(t *testing.T) {
	st := buildStoreT(t, 3)
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()

	cold := sess.TermDocs(context.Background(), "banana")
	warm := sess.TermDocs(context.Background(), "banana")
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached postings differ: %v vs %v", cold, warm)
	}
	coldSim, err := sess.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	warmSim, err := sess.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldSim, warmSim) {
		t.Fatalf("cached similarity differs: %v vs %v", coldSim, warmSim)
	}

	stats := srv.Stats()
	if stats.PostingMisses != 1 || stats.PostingHits != 1 {
		t.Fatalf("posting cache counters: %+v", stats)
	}
	if stats.SimMisses != 1 || stats.SimHits != 1 {
		t.Fatalf("sim cache counters: %+v", stats)
	}

	// A fresh server (cold caches) answers identically.
	srv2 := newServerT(t, st, Config{})
	sess2 := srv2.NewSession()
	if got := sess2.TermDocs(context.Background(), "banana"); !reflect.DeepEqual(got, cold) {
		t.Fatalf("fresh server differs: %v vs %v", got, cold)
	}
	got2, err := sess2.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, coldSim) {
		t.Fatalf("fresh server similarity differs")
	}

	// A cache hit is cheaper in virtual time than the remote miss was —
	// under the calibrated model, where remote transfers actually cost.
	st.Model = simtime.PNNLCluster2007()
	srv3 := newServerT(t, st, Config{FrontRank: 1})
	s3 := srv3.NewSession()
	var missCost, hitCost float64
	// Find a term owned by a rank other than the front-end so the miss pays
	// a modeled remote transfer.
	term := ""
	for _, cand := range []string{"apple", "banana", "cherry", "durian", "elder", "fig"} {
		if id, ok := st.TermID(cand); ok && st.Owner(id) != 1 {
			term = cand
			break
		}
	}
	if term == "" {
		t.Skip("every probe term owned by front-end rank")
	}
	s3.TermDocs(context.Background(), term)
	missCost = s3.Stats().LastMS
	s3.TermDocs(context.Background(), term)
	hitCost = s3.Stats().LastMS
	if hitCost >= missCost {
		t.Fatalf("cache hit (%.6f ms) not cheaper than remote miss (%.6f ms)", hitCost, missCost)
	}
}

func TestCacheEviction(t *testing.T) {
	st := buildStoreT(t, 2)
	srv := newServerT(t, st, Config{PostingCacheEntries: 2})
	sess := srv.NewSession()
	terms := []string{"apple", "banana", "cherry", "durian", "elder", "fig"}
	for _, term := range terms {
		if sess.TermDocs(context.Background(), term) == nil {
			t.Fatalf("no postings for %q", term)
		}
	}
	stats := srv.Stats()
	if stats.PostingEvictions == 0 {
		t.Fatalf("no evictions with cache cap 2 and %d terms: %+v", len(terms), stats)
	}
	if stats.PostingMisses != uint64(len(terms)) {
		t.Fatalf("expected %d misses, got %+v", len(terms), stats)
	}
	// Evicted entries still answer correctly on refetch.
	if got := sess.TermDocs(context.Background(), "apple"); len(got) != 3 {
		t.Fatalf("refetch after eviction wrong: %v", got)
	}
}

func TestCoalescingConcurrentGets(t *testing.T) {
	st := buildStoreT(t, 2)
	srv := newServerT(t, st, Config{})
	const n = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]query.Posting, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := srv.NewSession()
			<-start
			results[i] = sess.TermDocs(context.Background(), "apple")
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("concurrent sessions disagree: %v vs %v", results[i], results[0])
		}
	}
	stats := srv.Stats()
	if stats.PostingMisses != 1 {
		t.Fatalf("concurrent gets for one term issued %d transfers, want 1 (%+v)", stats.PostingMisses, stats)
	}
	if stats.PostingHits+stats.Coalesced != n-1 {
		t.Fatalf("hits %d + coalesced %d != %d", stats.PostingHits, stats.Coalesced, n-1)
	}
}

func TestConcurrentMixedWorkloadRace(t *testing.T) {
	st := buildStoreT(t, 3)
	srv := newServerT(t, st, Config{PostingCacheEntries: 4, SimCacheEntries: 2})
	rep, err := Replay(srv, WorkloadConfig{Sessions: 10, OpsPerSession: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 400 {
		t.Fatalf("replayed %d ops, want 400", rep.Ops)
	}
	if rep.Stats.Queries != 400 {
		t.Fatalf("server counted %d queries", rep.Stats.Queries)
	}
	if rep.Stats.PostingHitRate() <= 0 {
		t.Fatalf("skewed workload produced no cache hits: %+v", rep.Stats)
	}
	if rep.MeanVirtualMS <= 0 {
		t.Fatalf("no virtual latency accounted: %+v", rep)
	}
	if rep.String() == "" || rep.OpMix() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st := buildStoreT(t, 3)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a := newServerT(t, st, Config{}).NewSession()
	b := newServerT(t, loaded, Config{}).NewSession()
	if !reflect.DeepEqual(a.TermDocs(context.Background(), "apple"), b.TermDocs(context.Background(), "apple")) {
		t.Fatal("loaded store postings differ")
	}
	if !reflect.DeepEqual(a.And(context.Background(), "apple", "cherry"), b.And(context.Background(), "apple", "cherry")) {
		t.Fatal("loaded store boolean differs")
	}
	ha, err := a.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ha, hb) {
		t.Fatal("loaded store similarity differs")
	}
	if _, err := LoadStore(bytes.NewReader([]byte("not a store"))); err == nil {
		t.Fatal("garbage store loaded")
	}
}

func TestApplyPersistedSignatures(t *testing.T) {
	st := buildStoreT(t, 2)
	// Persist the snapshot's own signatures and reload them through the
	// serving load path; similarity answers must be unchanged.
	var buf bytes.Buffer
	if err := signature.Save(&buf, st.SigM, st.SigDocs, st.SigVecs); err != nil {
		t.Fatal(err)
	}
	before, err := newServerT(t, st, Config{}).NewSession().Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := signature.LoadSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(set); err != nil {
		t.Fatal(err)
	}
	after, err := newServerT(t, st, Config{}).NewSession().Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("persisted signatures change answers: %v vs %v", before, after)
	}
	if err := st.ApplySignatures(nil); err == nil {
		t.Fatal("nil signature set accepted")
	}
}

func TestTopTermsAndSampleDocs(t *testing.T) {
	st := buildStoreT(t, 2)
	top := st.TopTerms(3)
	if len(top) != 3 {
		t.Fatalf("top terms: %v", top)
	}
	// Highest-DF terms of miniDocs: apple (3 docs) leads.
	if top[0] != "apple" {
		t.Fatalf("top term %q, want apple", top[0])
	}
	docs := st.SampleDocs(4)
	if len(docs) == 0 {
		t.Fatal("no sample docs")
	}
	for i := 1; i < len(docs); i++ {
		if docs[i] <= docs[i-1] {
			t.Fatalf("sample docs unsorted: %v", docs)
		}
	}
}

func TestStoreFormatVersions(t *testing.T) {
	st := buildStoreT(t, 3)
	if !st.Compressed() {
		t.Fatal("snapshot store is not block-compressed")
	}

	// v2 round trip, magic included. (Save writes INSPSTORE4 for compressed
	// stores — see storev4_test.go; SaveLegacy keeps the gob layout.)
	var v2 bytes.Buffer
	if err := st.SaveLegacy(&v2); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v2.Bytes(), []byte("INSPSTORE2\n")) {
		t.Fatalf("compressed store wrote magic %q", v2.Bytes()[:11])
	}
	fromV2, err := LoadStore(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !fromV2.Compressed() {
		t.Fatal("v2 load lost compression")
	}

	// The flat layout persists as a v1 file a previous build could read —
	// and the compatibility loader reads it back.
	flat := st.FlatCopy()
	if flat.Compressed() {
		t.Fatal("flat copy still compressed")
	}
	var v1 bytes.Buffer
	if err := flat.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(v1.Bytes(), []byte("INSPSTORE1\n")) {
		t.Fatalf("flat store wrote magic %q", v1.Bytes()[:11])
	}
	fromV1, err := LoadStore(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.Compressed() {
		t.Fatal("v1 load claims compression")
	}

	// All four layouts answer identically.
	want := newServerT(t, st, Config{}).NewSession().And(context.Background(), "apple", "cherry")
	for name, s := range map[string]*Store{"v2 reload": fromV2, "flat": flat, "v1 reload": fromV1} {
		if got := newServerT(t, s, Config{}).NewSession().And(context.Background(), "apple", "cherry"); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s store answers %v, want %v", name, got, want)
		}
	}

	// A legacy store compresses in place (the inspired -store load path) and
	// keeps answering.
	if err := fromV1.CompressPostings(); err != nil {
		t.Fatal(err)
	}
	if got := newServerT(t, fromV1, Config{}).NewSession().And(context.Background(), "apple", "cherry"); !reflect.DeepEqual(got, want) {
		t.Fatalf("recompressed legacy store answers %v, want %v", got, want)
	}
}

func TestAndShortCircuitsDoomedQueries(t *testing.T) {
	st := buildStoreT(t, 3)
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	// A conjunction containing an unknown term must not transfer a single
	// posting list — only the vocabulary lookups made so far are charged.
	if got := sess.And(context.Background(), "apple", "nonexistent", "banana"); got != nil {
		t.Fatalf("doomed And = %v", got)
	}
	if s := srv.Stats(); s.PostingHits+s.PostingMisses+s.Coalesced+s.PartialFetches != 0 {
		t.Fatalf("doomed And moved posting lists: %+v", s)
	}
	if sess.Stats().Ops != 1 || sess.Stats().VirtualSeconds <= 0 {
		t.Fatalf("doomed And not accounted: %+v", sess.Stats())
	}
}

func TestAndBlockSkippingAgreesWithDecodedPaths(t *testing.T) {
	// A generated corpus gives the DF spread the path policy keys on: tail
	// terms (sparse candidate sets) intersect off compressed blocks, head
	// terms fetch decoded through the LRU.
	sources := corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 40_000, Sources: 4, Seed: 9, VocabSize: 1200, Topics: 4,
	})
	var st *Store
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	flat := st.FlatCopy()

	// Pick the head term and a handful of tail terms by DF.
	head := st.TopTerms(1)[0]
	var tails []string
	for id, df := range st.DF {
		if df >= 1 && df <= 2 {
			tails = append(tails, st.TermList[id])
			if len(tails) == 6 {
				break
			}
		}
	}
	if len(tails) == 0 {
		t.Fatal("corpus has no tail terms")
	}

	srvC := newServerT(t, st, Config{})
	srvF := newServerT(t, flat, Config{})
	cold := srvC.NewSession()
	for _, tail := range tails {
		q := []string{tail, head}
		want := srvF.NewSession().And(context.Background(), q...)
		if got := cold.And(context.Background(), q...); !reflect.DeepEqual(got, want) {
			t.Fatalf("compressed And(%v) = %v, flat says %v", q, got, want)
		}
	}
	s := srvC.Stats()
	if s.PartialFetches == 0 || s.BlocksDecoded == 0 {
		t.Fatalf("sparse conjunctions never intersected off compressed blocks: %+v", s)
	}
	// Warm the head list into the decoded cache: And answers must not
	// change when the cached fast path takes over.
	warm := srvC.NewSession()
	warm.TermDocs(context.Background(), head)
	for _, tail := range tails {
		q := []string{tail, head}
		want := srvF.NewSession().And(context.Background(), q...)
		if got := warm.And(context.Background(), q...); !reflect.DeepEqual(got, want) {
			t.Fatalf("warm compressed And(%v) = %v, want %v", q, got, want)
		}
	}
	// Dense conjunctions (head x head) take the full-fetch path, so repeats
	// hit the LRU instead of re-transferring compressed blocks.
	top := st.TopTerms(2)
	dense := srvC.NewSession()
	dense.And(context.Background(), top[0], top[1])
	before := srvC.Stats()
	dense.And(context.Background(), top[0], top[1])
	after := srvC.Stats()
	if after.PostingMisses != before.PostingMisses || after.PartialFetches != before.PartialFetches {
		t.Fatalf("repeated dense And re-transferred: before %+v after %+v", before, after)
	}
	if after.PostingHits <= before.PostingHits {
		t.Fatalf("repeated dense And missed the cache: before %+v after %+v", before, after)
	}
}
