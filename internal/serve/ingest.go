package serve

// Live ingestion: the mutable side of the epoch-swapped serving stack. Added
// documents accumulate in an in-memory delta (tokenized with the producing
// run's normalization and projected into signature space with its frozen
// association matrix), deltas seal into block-compressed segments, and a
// background compactor k-way-merges small segments into larger ones — each
// step publishing a new immutable view, so concurrent queries never block and
// always see a whole epoch.
//
// Every ingest interaction is charged virtual time like a query: an add pays
// the modeled tokenize (scan rate over the raw bytes), the signature
// projection flops, and the memory-rate posting append; the add that trips
// the seal threshold also pays the seal's encode pass (the visible latency
// spike a refresh costs). Compaction charges its merge bytes at memory rate
// to its own account, off every session's critical path.

import (
	"fmt"
	"sort"

	"inspire/internal/postings"
	"inspire/internal/project"
	"inspire/internal/scan"
	"inspire/internal/segment"
	"inspire/internal/signature"
)

// LivePolicy tunes a live store's ingest layer. The zero value selects the
// documented defaults.
type LivePolicy struct {
	// SealDocs is the number of buffered documents that triggers an
	// automatic seal: added documents become visible to queries when their
	// delta seals, so this bounds the refresh lag. Default 256.
	SealDocs int
	// CompactSegments is the sealed-segment count that triggers compaction.
	// Default 4.
	CompactSegments int
	// ManualCompaction disables the background compactor; callers compact
	// explicitly (deterministic tests and benchmarks do).
	ManualCompaction bool
	// Tokenizer configures ingest tokenization. The zero value selects the
	// pipeline defaults — matching the producing run is what makes an
	// ingested document index exactly like a batch-scanned one.
	Tokenizer scan.TokenizerConfig
}

func (p LivePolicy) withDefaults() LivePolicy {
	if p.SealDocs <= 0 {
		p.SealDocs = 256
	}
	if p.CompactSegments <= 0 {
		p.CompactSegments = 4
	}
	return p
}

// SetLivePolicy configures the store's ingest layer. Call before ingesting;
// changes apply to the next add.
func (st *Store) SetLivePolicy(p LivePolicy) {
	st.live.mu.Lock()
	st.live.policy = p
	st.live.mu.Unlock()
}

// livePolicy returns the effective policy; callers hold live.mu or accept a
// racy-read default (tokenization uses it outside the lock by design — the
// policy is set before ingestion starts).
func (st *Store) livePolicy() LivePolicy {
	return st.live.policy.withDefaults()
}

// prepareDoc tokenizes a document with the producing run's normalization,
// resolves tokens against the frozen vocabulary (out-of-vocabulary terms are
// dropped — the vocabulary, like the signature space, is fixed at snapshot
// time), projects the signature, and returns the modeled front-end cost:
// scan-rate tokenize plus projection flops.
func (st *Store) prepareDoc(text string) (counts map[int64]int64, sig []float64, cost float64) {
	counts = make(map[int64]int64)
	scan.ForEachToken(text, st.livePolicy().Tokenizer, func(term string) {
		if id, ok := st.lookupTerm(term); ok {
			counts[id]++
		}
	})
	cost = st.Model.ScanCost(float64(len(text)))
	if st.Proj != nil {
		var flops float64
		sig, flops = st.Proj.Project(counts)
		cost += st.Model.FlopCost(flops)
	}
	return counts, sig, cost
}

// Add ingests one document, assigning it the next document ID, and returns
// the ID and the interaction's modeled cost. The document becomes visible to
// queries when its delta seals (LivePolicy.SealDocs, or Flush).
func (st *Store) Add(text string) (int64, float64, error) {
	return st.AddMeta(text, 0, nil)
}

// AddMeta ingests one document with its metadata: an ingest timestamp
// (0 = none) and "key=value" facets (see meta.go). Filtered queries match the
// document by exactly this metadata from the epoch its delta seals.
func (st *Store) AddMeta(text string, ts int64, facets []string) (int64, float64, error) {
	facets, err := normalizeFacets(facets)
	if err != nil {
		return 0, 0, err
	}
	counts, sig, prep := st.prepareDoc(text)
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	doc := st.live.nextDoc
	cost, err := st.addLocked(doc, counts, sig, ts, facets)
	return doc, prep + cost, err
}

// AddAt ingests one document under an explicit ID — the sharded path, where
// the router assigns global IDs and routes each to shard ID mod S. The ID
// must never have been used: adds reject base documents, already-ingested or
// tombstoned IDs, everything below the retirement floor (rebased holes,
// gaps under loaded segments, persisted high-water marks), and IDs whose
// tombstones a compaction dropped. IDs above the floor may arrive out of
// order — concurrent routed sessions land on a shard that way.
func (st *Store) AddAt(doc int64, text string) (float64, error) {
	return st.AddAtMeta(doc, text, 0, nil)
}

// AddAtMeta is AddAt with document metadata (see AddMeta).
func (st *Store) AddAtMeta(doc int64, text string, ts int64, facets []string) (float64, error) {
	counts, sig, prep := st.prepareDoc(text)
	cost, err := st.AddCountsMeta(doc, counts, sig, ts, facets)
	return prep + cost, err
}

// AddCounts ingests one pre-tokenized document: its in-document term counts
// (dense IDs) and signature. The router uses this form so a routed add
// tokenizes once, at the router.
func (st *Store) AddCounts(doc int64, counts map[int64]int64, sig []float64) (float64, error) {
	return st.AddCountsMeta(doc, counts, sig, 0, nil)
}

// AddCountsMeta is AddCounts with document metadata (see AddMeta).
func (st *Store) AddCountsMeta(doc int64, counts map[int64]int64, sig []float64, ts int64, facets []string) (float64, error) {
	facets, err := normalizeFacets(facets)
	if err != nil {
		return 0, err
	}
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	return st.addLocked(doc, counts, sig, ts, facets)
}

// addLocked buffers one document in the delta, sealing when the policy's
// threshold trips; callers hold live.mu with the view initialized. facets
// arrive normalized (sorted, deduplicated, validated).
func (st *Store) addLocked(doc int64, counts map[int64]int64, sig []float64, ts int64, facets []string) (float64, error) {
	v := st.live.cur.Load()
	if doc < 0 || v.base.containsDoc(doc) {
		return 0, fmt.Errorf("serve: add: doc %d collides with the base snapshot", doc)
	}
	for _, s := range v.segs {
		if s.Contains(doc) {
			return 0, fmt.Errorf("serve: add: doc %d already ingested", doc)
		}
	}
	if v.tombs[doc] || doc < st.live.idFloor || st.live.retired[doc] {
		// Everything below the retirement floor, in the retired set, or
		// still tombstoned is in use or retired; a retired ID may have lost
		// every other trace of itself (a rebased hole, or a tombstone
		// dropped by compaction with its data). The floor and set — not the
		// rolling nextDoc — are what reject here, so routed adds landing on
		// a shard out of ID order still go through.
		return 0, fmt.Errorf("serve: add: doc %d was deleted or retired; IDs are never reused", doc)
	}
	pol := st.livePolicy()
	if st.live.delta == nil {
		st.live.delta = segment.NewDelta(st.VocabSize, st.SigM)
	}
	if err := st.live.delta.AddMeta(doc, counts, sig, ts, facets); err != nil {
		return 0, err
	}
	if doc >= st.live.nextDoc {
		st.live.nextDoc = doc + 1
	}
	st.live.adds.Add(1)
	// The append itself: one memory-rate write per (doc, freq) posting pair.
	cost := st.Model.LocalCopyCost(16 * float64(len(counts)))
	if st.live.delta.NumDocs() >= pol.SealDocs {
		sealCost, err := st.sealLocked()
		if err != nil {
			return cost, err
		}
		cost += sealCost
	}
	return cost, nil
}

// Delete tombstones a document and publishes the change immediately. The
// postings stay in place until compaction (segment documents) or Rebase
// (base documents) drops them; every query path filters the tombstone set.
// Deleting a document still buffered in the delta seals the delta first, so
// tombstones only ever target visible documents and the live-document count
// stays exact.
func (st *Store) Delete(doc int64) (float64, error) {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	v := st.initViewLocked()
	var cost float64
	if st.live.delta != nil && st.live.delta.Contains(doc) {
		sealCost, err := st.sealLocked()
		if err != nil {
			return 0, err
		}
		cost += sealCost
		v = st.live.cur.Load()
	}
	if !v.contains(doc) {
		return cost, fmt.Errorf("serve: delete: unknown document %d", doc)
	}
	tombs := make(map[int64]bool, len(v.tombs)+1)
	for d := range v.tombs {
		tombs[d] = true
	}
	tombs[doc] = true
	st.publishLocked(&view{gen: v.gen, base: v.base, segs: v.segs, tombs: tombs, sigs: v.sigs, pts: v.pts,
		kind: viewTomb, tomb: doc})
	st.live.deletes.Add(1)
	// The copy-on-write tombstone publish moves the set once at memory rate.
	return cost + st.Model.LocalCopyCost(8*float64(len(tombs))), nil
}

// Flush seals the buffered delta (if any) into a segment and publishes it,
// making every pending add visible. It returns the modeled seal cost.
func (st *Store) Flush() (float64, error) {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	return st.sealLocked()
}

// sealLocked freezes the delta into a sealed segment and publishes the new
// view; callers hold live.mu. A nil/empty delta is a no-op.
func (st *Store) sealLocked() (float64, error) {
	if st.live.delta == nil || st.live.delta.NumDocs() == 0 {
		return 0, nil
	}
	posts := st.live.delta.Postings()
	seg, err := st.live.delta.Seal()
	if err != nil {
		return 0, err
	}
	st.live.delta = nil
	v := st.live.cur.Load()
	segs := make([]*segment.Segment, len(v.segs), len(v.segs)+1)
	copy(segs, v.segs)
	segs = append(segs, seg)
	// Place the sealed documents on the ThemeView plane with the frozen
	// projection model, so spatial queries and the tile pyramid see them
	// from this epoch on.
	newPts := st.planarPoints(seg)
	pts := make([]project.Point, len(v.pts), len(v.pts)+len(newPts))
	copy(pts, v.pts)
	pts = append(pts, newPts...)
	st.publishLocked(&view{gen: v.gen, base: v.base, segs: segs, tombs: v.tombs, sigs: v.sigs, pts: pts,
		kind: viewSeal, newSegs: segs[len(segs)-1:], newPts: newPts})
	st.live.seals.Add(1)
	pol := st.livePolicy()
	if !pol.ManualCompaction && len(segs) >= pol.CompactSegments && !st.live.compacting {
		st.live.compactWG.Add(1)
		go func() {
			defer st.live.compactWG.Done()
			_, _ = st.Compact()
		}()
	}
	// The seal re-encodes every buffered posting into blocks: one read and
	// one write of the 16-byte pair at memory rate — plus the planar
	// projection of the sealed documents onto the ThemeView plane.
	cost := st.Model.LocalCopyCost(32 * float64(posts))
	if st.Planar != nil {
		cost += st.Model.FlopCost(4 * float64(len(newPts)) * float64(len(st.Planar.Mean)))
	}
	return cost, nil
}

// installLive publishes persisted live state — loaded segments and a
// tombstone list — onto a freshly loaded store (the LoadShards path). The
// store must not have live state already.
func (st *Store) installLive(segs []*segment.Segment, tombs []int64) error {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if st.hasLiveLocked() {
		return fmt.Errorf("serve: store already has live state")
	}
	v := st.initViewLocked()
	next := &view{gen: v.gen, base: v.base, segs: segs, sigs: v.sigs}
	for _, seg := range segs {
		next.pts = append(next.pts, st.planarPoints(seg)...)
	}
	if len(tombs) > 0 {
		next.tombs = make(map[int64]bool, len(tombs))
		for _, d := range tombs {
			next.tombs[d] = true
		}
	}
	for _, seg := range segs {
		if max := seg.MaxDoc() + 1; max > st.live.nextDoc {
			st.live.nextDoc = max
		}
	}
	// IDs below the loaded segments' maxes are either present (in a segment)
	// or retired gaps whose tombstones compacted away before the save; the
	// floor rejects re-adding the gaps.
	if st.live.nextDoc > st.live.idFloor {
		st.live.idFloor = st.live.nextDoc
	}
	for _, d := range tombs {
		if !v.base.containsDoc(d) && !containsAny(segs, d) {
			return fmt.Errorf("serve: tombstone %d targets no document", d)
		}
	}
	st.publishLocked(next)
	return nil
}

// AdoptSegments publishes already-sealed segments shipped from a replication
// peer onto this store — the replica catch-up path. Segments are shared by
// reference (they are immutable once sealed); ones the store already holds
// are skipped, so replaying a catch-up entry twice converges. The pending
// delta, if any, must have been discarded first (DiscardDelta): every
// document it buffered arrives inside the shipped segments, and sealing it
// too would serve duplicates.
func (st *Store) AdoptSegments(segs []*segment.Segment) error {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	v := st.initViewLocked()
	if st.live.delta != nil && st.live.delta.NumDocs() > 0 {
		return fmt.Errorf("serve: adopt: pending delta would duplicate shipped documents; discard it first")
	}
	fresh := segs[:0:0]
	for _, seg := range segs {
		have := false
		for _, s := range v.segs {
			if s == seg {
				have = true
				break
			}
		}
		if !have {
			fresh = append(fresh, seg)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	next := make([]*segment.Segment, len(v.segs), len(v.segs)+len(fresh))
	copy(next, v.segs)
	next = append(next, fresh...)
	var newPts []project.Point
	for _, seg := range fresh {
		newPts = append(newPts, st.planarPoints(seg)...)
	}
	pts := make([]project.Point, len(v.pts), len(v.pts)+len(newPts))
	copy(pts, v.pts)
	pts = append(pts, newPts...)
	st.publishLocked(&view{gen: v.gen, base: v.base, segs: next, tombs: v.tombs, sigs: v.sigs, pts: pts,
		kind: viewSeal, newSegs: next[len(next)-len(fresh):], newPts: newPts})
	for _, seg := range fresh {
		if max := seg.MaxDoc() + 1; max > st.live.nextDoc {
			st.live.nextDoc = max
		}
	}
	st.live.seals.Add(1)
	return nil
}

// AdoptTombstone applies a replicated delete idempotently: a document the
// store no longer exposes (already tombstoned by a previous application, or
// compacted away together with its tombstone before the replica died) is a
// no-op, so replaying a catch-up entry twice converges.
func (st *Store) AdoptTombstone(doc int64) error {
	if !st.viewNow().contains(doc) {
		return nil
	}
	_, err := st.Delete(doc)
	return err
}

// DiscardDelta drops the pending (unsealed) delta. Replica catch-up uses it:
// the discarded documents were replicated writes the primary has since
// sealed, so they come back inside the shipped segments.
func (st *Store) DiscardDelta() {
	st.live.mu.Lock()
	st.live.delta = nil
	st.live.mu.Unlock()
}

// Replicate builds a read-equivalent live copy of the store: the immutable
// base products are shared (a mapped base shares its pages for free), the
// live policy is copied — identical seal thresholds keep an identical write
// stream sealing at identical boundaries — and the current sealed segments,
// tombstones and ID high-water are installed. The pending delta is flushed
// first so the copy sees every write. Keep the copy current by applying the
// original's write stream, or by LineageSince catch-up.
func (st *Store) Replicate() (*Store, error) {
	if _, err := st.Flush(); err != nil {
		return nil, err
	}
	cp := st.Fork()
	cp.SetLivePolicy(st.livePolicy())
	v := st.viewNow()
	if len(v.segs) > 0 || len(v.tombs) > 0 {
		tombs := make([]int64, 0, len(v.tombs))
		for d := range v.tombs {
			tombs = append(tombs, d)
		}
		if err := cp.installLive(v.segs, tombs); err != nil {
			return nil, err
		}
	}
	cp.AdvanceNextDoc(st.NextDocID())
	return cp, nil
}

// NextDocID returns the store's document-ID high-water mark: the ID the next
// local Add would take. IDs at or above it have never been assigned; IDs
// below it are in use or retired (deleted IDs are never reused).
func (st *Store) NextDocID() int64 {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	return st.live.nextDoc
}

// AdvanceNextDoc raises the document-ID high-water mark (and the retirement
// floor) to at least n. The load path uses it to restore a persisted mark
// that the surviving data no longer implies — when the highest assigned IDs
// were deleted and compacted away, nothing else records that they were ever
// used.
func (st *Store) AdvanceNextDoc(n int64) {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	if n > st.live.nextDoc {
		st.live.nextDoc = n
	}
	if n > st.live.idFloor {
		st.live.idFloor = n
	}
}

// WaitCompaction blocks until any in-flight background compaction finishes.
// Quiesce ingestion first — a concurrent add may trigger another run.
func (st *Store) WaitCompaction() { st.live.compactWG.Wait() }

// Compact k-way merges every currently sealed segment into one, dropping the
// tombstones that point into them, and publishes the compacted view. Queries
// keep serving the old view throughout. It returns the modeled merge cost,
// which is also charged to the store's compaction account.
func (st *Store) Compact() (float64, error) {
	st.live.mu.Lock()
	v := st.initViewLocked()
	if len(v.segs) < 2 || st.live.compacting {
		st.live.mu.Unlock()
		return 0, nil
	}
	st.live.compacting = true
	input := v.segs
	tombs := v.tombs
	st.live.mu.Unlock()

	// The merge runs off the lock: ingestion and deletes continue against
	// the published view while the compactor works.
	merged, err := segment.Merge(input, func(d int64) bool { return tombs[d] })
	if err != nil {
		st.live.mu.Lock()
		st.live.compacting = false
		st.live.mu.Unlock()
		return 0, fmt.Errorf("serve: compact: %w", err)
	}
	var bytesIn int64
	var postsIn int64
	for _, s := range input {
		bytesIn += s.Posts.SizeBytes()
		postsIn += s.Postings()
	}
	cost := st.Model.LocalCopyCost(float64(bytesIn+merged.Posts.SizeBytes())) +
		st.Model.LocalCopyCost(16*float64(postsIn))

	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	cur := st.live.cur.Load()
	// The merge ran off the lock: if the segment list was rewritten under us
	// (a concurrent Rebase folded everything into the base), the input is no
	// longer a prefix of the current list — drop the merge result.
	prefix := len(cur.segs) >= len(input)
	for i := 0; prefix && i < len(input); i++ {
		prefix = cur.segs[i] == input[i]
	}
	if !prefix {
		st.live.compacting = false
		return 0, nil
	}
	// Segments sealed while we merged sit after the input prefix; keep them.
	segs := make([]*segment.Segment, 0, 1+len(cur.segs)-len(input))
	if merged.NumDocs() > 0 {
		segs = append(segs, merged)
	}
	segs = append(segs, cur.segs[len(input):]...)
	// Tombstones that pointed into the merged input are gone from the data;
	// drop them from the set. Later tombstones (including ones filed against
	// input docs during the merge) stay and keep filtering. Every dropped
	// tombstone leaves an untraceable retired ID behind; pin it in the
	// retired set — exactly it, not a floor, so a concurrently routed lower
	// ID still in flight stays addable.
	next := make(map[int64]bool, len(cur.tombs))
	var dropped map[int64]bool
	for d := range cur.tombs {
		if tombs[d] && containsAny(input, d) {
			if st.live.retired == nil {
				st.live.retired = make(map[int64]bool)
			}
			st.live.retired[d] = true
			if dropped == nil {
				dropped = make(map[int64]bool)
			}
			dropped[d] = true
			continue
		}
		next[d] = true
	}
	// A dropped tombstone leaves the published set together with its
	// document's postings and signature; the live point must go with them,
	// or a spatial query (and the tile pyramid rebuilt from this view)
	// would resurrect the deleted document.
	pts := cur.pts
	if len(dropped) > 0 && len(pts) > 0 {
		kept := make([]project.Point, 0, len(pts))
		for _, pt := range pts {
			if !dropped[pt.Doc] {
				kept = append(kept, pt)
			}
		}
		pts = kept
	}
	st.publishLocked(&view{gen: cur.gen, base: cur.base, segs: segs, tombs: next, sigs: cur.sigs, pts: pts,
		kind: viewCompact})
	st.live.compacting = false
	st.live.compactions.Add(1)
	st.live.compactVirt += cost
	return cost, nil
}

// containsAny reports whether any segment covers doc.
func containsAny(segs []*segment.Segment, doc int64) bool {
	for _, s := range segs {
		if s.Contains(doc) {
			return true
		}
	}
	return false
}

// Rebase folds the base snapshot, every sealed segment and the tombstone set
// into a fresh base — the full materialization that makes the store
// persistable as a single INSPSTORE2 file again. Pending adds are flushed
// first. The old base products are left untouched (readers holding the old
// view keep working); the store's fields and a new view (with the base
// generation advanced) are swapped in at the end.
//
// After a rebase TotalDocs is the document-ID high water, not the live count
// (deleted IDs leave holes, recorded in Store.Holes and reading as absent,
// and are never reused); Shard still assumes the dense IDs of a pure
// pipeline snapshot, so shard a store before ingesting into it, not after
// rebasing deletions.
func (st *Store) Rebase() error {
	st.WaitCompaction()
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	// Seal inside the critical section: an add landing between an unlocked
	// flush and this lock would advance nextDoc and be silently absorbed
	// into the new base range as a phantom document with no postings. (A
	// compaction our own seal spawns blocks on live.mu and no-ops after the
	// rebase empties the segment list.)
	if _, err := st.sealLocked(); err != nil {
		return err
	}
	v := st.live.cur.Load()
	// Nothing to fold only when no segments, no tombstones AND no
	// compaction-retired IDs exist: a retired set with everything else empty
	// (every ingest deleted and compacted away) still must materialize as
	// holes, or persisting the store would forget the IDs were ever used.
	if len(v.segs) == 0 && len(v.tombs) == 0 && len(st.live.retired) == 0 {
		return nil
	}

	dead := v.tombs
	var total int64
	for _, n := range v.base.df {
		total += n
	}
	for _, s := range v.segs {
		total += s.Postings()
	}
	w := postings.NewWriter(total)
	lists := make([]plist, 0, 1+len(v.segs))
	for t := int64(0); t < st.VocabSize; t++ {
		lists = lists[:0]
		if v.base.df[t] > 0 {
			d, f := v.base.postings(t)
			lists = append(lists, plist{d, f})
		}
		for _, s := range v.segs {
			if s.Posts.Count[t] > 0 {
				d, f := s.Posts.Postings(t)
				lists = append(lists, plist{d, f})
			}
		}
		docs, freqs := mergePlists(lists, dead)
		if err := w.Append(docs, freqs); err != nil {
			return fmt.Errorf("serve: rebase: %w", err)
		}
	}
	posts := w.Finish()

	// Merge the signature sets (base epoch set + per-segment slices),
	// ascending by document, dropping tombstones.
	sigDocs := make([]int64, 0, len(v.sigs.Docs))
	sigVecs := make([][]float64, 0, len(v.sigs.Docs))
	srcDocs := make([][]int64, 0, 1+len(v.segs))
	srcVecs := make([][][]float64, 0, 1+len(v.segs))
	srcDocs, srcVecs = append(srcDocs, v.sigs.Docs), append(srcVecs, v.sigs.Vecs)
	for _, s := range v.segs {
		srcDocs, srcVecs = append(srcDocs, s.Docs), append(srcVecs, s.SigVecs)
	}
	pos := make([]int, len(srcDocs))
	for {
		best := -1
		for i := range srcDocs {
			if pos[i] >= len(srcDocs[i]) {
				continue
			}
			if best < 0 || srcDocs[i][pos[i]] < srcDocs[best][pos[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if d := srcDocs[best][pos[best]]; !dead[d] {
			sigDocs = append(sigDocs, d)
			sigVecs = append(sigVecs, srcVecs[best][pos[best]])
		}
		pos[best]++
	}

	// Fold the live points into the base point set (tombstones dropped),
	// sorted by document like GatherCoords emits them — rebased ingests
	// stay on the Galaxy exactly where their seal placed them.
	points := v.base.points
	if len(dead) > 0 || len(v.pts) > 0 {
		points = make([]project.Point, 0, len(v.base.points)+len(v.pts))
		for _, pt := range v.base.points {
			if !dead[pt.Doc] {
				points = append(points, pt)
			}
		}
		for _, pt := range v.pts {
			if !dead[pt.Doc] {
				points = append(points, pt)
			}
		}
		sort.Slice(points, func(a, b int) bool { return points[a].Doc < points[b].Doc })
	}
	assignDocs, assignClusters := v.base.assignDocs, v.base.assignClusters
	if len(dead) > 0 {
		assignDocs, assignClusters = nil, nil
		for i, d := range v.base.assignDocs {
			if !dead[d] {
				assignDocs = append(assignDocs, d)
				assignClusters = append(assignClusters, v.base.assignClusters[i])
			}
		}
	}

	// Fold document metadata: surviving base rows (IDs back to strings) plus
	// the segment rows, sorted by document and re-interned into a fresh
	// dictionary — so the rebased dictionary carries no dead facets.
	var mDocs, mTimes []int64
	var mFacets [][]string
	for i, d := range v.base.metaDocs {
		if !dead[d] && v.base.containsDoc(d) {
			mDocs = append(mDocs, d)
			mTimes = append(mTimes, v.base.metaTimes[i])
			mFacets = append(mFacets, v.base.baseFacetsAt(i))
		}
	}
	for _, s := range v.segs {
		for i, d := range s.Docs {
			if dead[d] {
				continue
			}
			var ts int64
			var facets []string
			if s.Times != nil {
				ts = s.Times[i]
			}
			if s.Facets != nil {
				facets = s.Facets[i]
			}
			if ts == 0 && len(facets) == 0 {
				continue
			}
			mDocs = append(mDocs, d)
			mTimes = append(mTimes, ts)
			mFacets = append(mFacets, facets)
		}
	}
	if ord := make([]int, len(mDocs)); len(ord) > 0 {
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return mDocs[ord[a]] < mDocs[ord[b]] })
		sDocs := make([]int64, len(mDocs))
		sTimes := make([]int64, len(mDocs))
		sFacets := make([][]string, len(mDocs))
		for o, i := range ord {
			sDocs[o], sTimes[o], sFacets[o] = mDocs[i], mTimes[i], mFacets[i]
		}
		mDocs, mTimes, mFacets = sDocs, sTimes, sFacets
	}

	st.Posts, st.DF = posts, posts.Count
	st.Off, st.PostDoc, st.PostFreq = nil, nil, nil
	if len(dead) > 0 || len(st.live.retired) > 0 {
		// Deleted IDs — current tombstones and compaction-retired IDs alike
		// — become permanent holes in the rebased range: the high-water mark
		// keeps covering them (IDs are never reused), but they must read as
		// absent, not as live base documents. The three sources are disjoint
		// (retired IDs left the tombstone set, and old holes sit below the
		// previous floor).
		holes := make([]int64, 0, len(st.Holes)+len(dead)+len(st.live.retired))
		holes = append(holes, st.Holes...)
		for d := range dead {
			holes = append(holes, d)
		}
		for d := range st.live.retired {
			holes = append(holes, d)
		}
		sort.Slice(holes, func(a, b int) bool { return holes[a] < holes[b] })
		st.Holes = holes
	}
	if st.ShardCount > 0 {
		// A shard's TotalDocs is its document count; base membership stays
		// modular, so the global high water moves to cover rebased ingests.
		st.GlobalDocs = st.live.nextDoc
		st.TotalDocs = int64(len(sigDocs))
	} else {
		// Monolithic stores keep TotalDocs as the dense ID high water
		// (deleted IDs leave holes and are never reused).
		st.TotalDocs = st.live.nextDoc
	}
	// Everything below the high water is now base or hole: retire the whole
	// range, which subsumes the compaction-retired set.
	st.live.idFloor = st.live.nextDoc
	st.live.retired = nil
	st.SigM = v.sigs.M
	st.SigDocs, st.SigVecs = sigDocs, sigVecs
	st.Points = points
	st.AssignDocs, st.AssignClusters = assignDocs, assignClusters
	buildMetaTable(mDocs, mTimes, mFacets).install(st)
	set, err := signature.NewSet(st.SigM, sigDocs, sigVecs)
	if err != nil {
		return fmt.Errorf("serve: rebase: %w", err)
	}
	st.setSigSet(set)
	st.publishLocked(&view{gen: v.gen + 1, base: st.baseView(), sigs: set})
	// The base points changed: the persisted tile sidecar no longer
	// describes them, and the maintained pyramid rebuilds from the fresh
	// (lineage-cut) view on its next query.
	st.live.tileMu.Lock()
	st.live.tileSidecar, st.live.tileRaw = nil, nil
	st.live.tilePyr, st.live.tileView = nil, nil
	st.live.tileMu.Unlock()
	st.live.compactions.Add(1)
	st.live.compactVirt += st.Model.LocalCopyCost(32 * float64(total))
	return nil
}

// plist is one sorted (docs, freqs) posting list feeding a k-way merge.
type plist struct{ docs, freqs []int64 }

// mergePlists k-way merges disjoint doc-sorted posting lists, dropping docs
// in dead (nil = none). Freshly allocated; nil when nothing survives.
func mergePlists(lists []plist, dead map[int64]bool) (docs, freqs []int64) {
	pos := make([]int, len(lists))
	for {
		best := -1
		for i := range lists {
			if pos[i] >= len(lists[i].docs) {
				continue
			}
			if best < 0 || lists[i].docs[pos[i]] < lists[best].docs[pos[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		if d := lists[best].docs[pos[best]]; len(dead) == 0 || !dead[d] {
			docs = append(docs, d)
			freqs = append(freqs, lists[best].freqs[pos[best]])
		}
		pos[best]++
	}
	return docs, freqs
}
