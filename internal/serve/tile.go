package serve

// Galaxy tile serving: the multi-resolution spatial face of the store. A
// quadtree tile pyramid (internal/tiles) aggregates the ThemeView projection
// into density grids, theme histograms and exemplar documents at every zoom
// level, so a client renders any viewport from a handful of fixed-size tiles
// instead of pulling corpus-proportional point sets.
//
// The pyramid is maintained on the store's live side, synced to the serving
// epochs exactly like the incremental similarity refresh: sealed documents
// are re-binned from their seal delta (their plane coordinates come from the
// frozen Planar projection), tombstones unbin their documents, compactions
// are the identity, and a rebase (lineage cut) rebuilds from the new base.
// Because every tile aggregate is an exact, order-independent function of
// the member set, the incrementally maintained pyramid is identical to one
// rebuilt offline, and per-shard pyramids merge into exactly the monolithic
// answer — the equivalences the tile tests pin.
//
// Pyramid builds and patches are maintenance, charged to the store's
// tile-maintenance account (like compaction) rather than to the session that
// happened to trigger them; sessions pay per answered tile — a memory-rate
// scan of the tile's bins through the server's epoch-keyed tile LRU — and,
// for spatial Near queries, work proportional to the candidates the quadtree
// walk admits rather than the whole point set.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"inspire/internal/core"
	"inspire/internal/project"
	"inspire/internal/segment"
	"inspire/internal/tiles"
)

// TilesSidecarSuffix names the tile-pyramid sidecar persisted next to a
// store file: <store>.tiles.
const TilesSidecarSuffix = ".tiles"

// TileTheme is one theme's share of a tile, with its representative label
// (the theme's strongest terms).
type TileTheme struct {
	Cluster int64  `json:"cluster"`
	Docs    int64  `json:"docs"`
	Label   string `json:"label,omitempty"`
}

// TileResult is one rendered Galaxy tile: the density raster, the top theme
// histogram and the exemplar documents of everything binned under tile
// (z, x, y). Identical whether served by a single Server or merged across a
// sharded Router.
type TileResult struct {
	Z    int   `json:"z"`
	X    int   `json:"x"`
	Y    int   `json:"y"`
	Docs int64 `json:"docs"`
	// Grid is the density raster dimension; Density is Grid*Grid counts,
	// row-major with row 0 at the tile's MinY edge. Nil when the tile is
	// empty.
	Grid    int      `json:"grid"`
	Density []uint32 `json:"density,omitempty"`
	// Themes are the tile's top themes by document count (count
	// descending, cluster ascending on ties), at most Config.TileThemes.
	Themes []TileTheme `json:"themes,omitempty"`
	// Times is the tile's sparse per-day member histogram (ascending by
	// bucket; untimestamped documents count in Docs but not here).
	Times []tiles.TimeCount `json:"times,omitempty"`
	// Facets is the tile's sparse per-facet member count (ascending by
	// facet; a document counts once under each of its facets).
	Facets []tiles.FacetCount `json:"facets,omitempty"`
	// Exemplars are the smallest member document IDs, ascending.
	Exemplars []int64 `json:"exemplars,omitempty"`
}

// tileConfig resolves the pyramid configuration of this server's tiles.
func (cfg Config) tileConfig() tiles.Config {
	return tiles.Config{
		MaxZoom:   cfg.TileMaxZoom,
		Grid:      cfg.TileGrid,
		Exemplars: cfg.TileExemplars,
	}.WithDefaults()
}

// checkTileAddr validates a tile address against the pyramid configuration.
func checkTileAddr(tc tiles.Config, z, x, y int) error {
	if z < 0 || z > tc.MaxZoom {
		return fmt.Errorf("serve: tile zoom %d out of [0, %d]", z, tc.MaxZoom)
	}
	if n := 1 << z; x < 0 || x >= n || y < 0 || y >= n {
		return fmt.Errorf("serve: tile (%d, %d) outside zoom %d", x, y, z)
	}
	return nil
}

// boundsOver accumulates the bounding box of the given point sets; ok is
// false when every set is empty.
func boundsOver(sets ...[]project.Point) (r tiles.Rect, ok bool) {
	r = tiles.Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	for _, pts := range sets {
		for _, p := range pts {
			r.MinX, r.MaxX = math.Min(r.MinX, p.X), math.Max(r.MaxX, p.X)
			r.MinY, r.MaxY = math.Min(r.MinY, p.Y), math.Max(r.MaxY, p.Y)
			ok = true
		}
	}
	return r, ok
}

// pointBounds returns the padded bounding box of a point set, nil when
// empty.
func pointBounds(pts []project.Point) *tiles.Rect {
	r, ok := boundsOver(pts)
	if !ok {
		return nil
	}
	b := tiles.NewBounds(r.MinX, r.MinY, r.MaxX, r.MaxY)
	return &b
}

// planarPoints places a sealed segment's documents on the ThemeView plane
// with the store's frozen projection model — bit-for-bit what the batch
// pipeline would have computed for the same signatures. Nil when the store
// predates the Planar model.
func (st *Store) planarPoints(seg *segment.Segment) []project.Point {
	if st.Planar == nil {
		return nil
	}
	out := make([]project.Point, len(seg.Docs))
	for i, d := range seg.Docs {
		x, y := st.Planar.Project(seg.SigVecs[i])
		out[i] = project.Point{Doc: d, X: x, Y: y}
	}
	return out
}

// DataBounds returns the bounding box of every projected point the store
// currently carries (base and sealed live documents; tombstones are not
// subtracted — pruning only needs a superset), false when there are none.
func (st *Store) DataBounds() (tiles.Rect, bool) {
	v := st.viewNow()
	return boundsOver(v.base.points, v.pts)
}

// --- pyramid maintenance ---------------------------------------------------

// withPyramid runs fn with the store's tile pyramid synced to view v, under
// the tile-maintenance lock. All servers over one store share one pyramid,
// like they share one epoch stream. Maintenance cost (builds and lineage
// patches) is charged to the store's tile account, off the session's path.
func (st *Store) withPyramid(v *view, cfg tiles.Config, fn func(*tiles.Pyramid)) {
	ls := &st.live
	ls.tileMu.Lock()
	defer ls.tileMu.Unlock()
	if ls.tilePyr == nil || ls.tileView != v || ls.tilePyr.Config() != cfg {
		st.syncPyramidLocked(v, cfg)
	}
	fn(ls.tilePyr)
}

// syncPyramidLocked brings the pyramid to view v: a lineage patch when v
// descends from the view the pyramid reflects (re-binning only the epoch
// deltas, mirroring the incremental similarity refresh), a full rebuild
// otherwise. Callers hold tileMu.
func (st *Store) syncPyramidLocked(v *view, cfg tiles.Config) {
	ls := &st.live
	if ls.tilePyr != nil && ls.tileView != nil && ls.tilePyr.Config() == cfg {
		var chain []*view
		a := v
		for a != nil && a != ls.tileView {
			chain = append(chain, a)
			a = a.parent
		}
		if a == ls.tileView {
			patched := true
			var work float64
			for i := len(chain) - 1; i >= 0 && patched; i-- {
				w := chain[i]
				switch w.kind {
				case viewSeal:
					for _, pt := range w.newPts {
						ts, facets := w.docMeta(pt.Doc)
						ls.tilePyr.Add(tiles.Entry{Doc: pt.Doc, X: pt.X, Y: pt.Y, Cluster: -1, Time: ts, Facets: facets})
					}
					work += float64(len(w.newPts))
				case viewTomb:
					ls.tilePyr.Remove(w.tomb)
					work++
				case viewCompact:
					// Identity on the pyramid: the dropped documents were
					// unbinned at their tombstone epochs.
				default:
					patched = false
				}
			}
			if patched {
				ls.tileView = v
				ls.tileVirt += st.Model.LocalCopyCost(32 * work * float64(cfg.MaxZoom+1))
				return
			}
		}
	}
	ls.tilePyr = st.buildPyramidLocked(v, cfg)
	ls.tileView = v
}

// buildPyramidLocked builds the pyramid of view v from scratch — from the
// persisted sidecar plus the view's live deltas when the sidecar still
// describes the base points, from the raw points otherwise. Callers hold
// tileMu.
func (st *Store) buildPyramidLocked(v *view, cfg tiles.Config) *tiles.Pyramid {
	ls := &st.live
	box := st.tileBoundsLocked(v)
	var work float64
	defer func() {
		ls.tileVirt += st.Model.LocalCopyCost(32 * work * float64(cfg.MaxZoom+1))
	}()

	if sc := st.sidecarLocked(); sc != nil && sc.Config() == cfg && sc.Bounds() == box {
		pyr := sc.Clone()
		for _, pt := range v.pts {
			if !v.tombs[pt.Doc] {
				ts, facets := v.docMeta(pt.Doc)
				pyr.Add(tiles.Entry{Doc: pt.Doc, X: pt.X, Y: pt.Y, Cluster: -1, Time: ts, Facets: facets})
			}
		}
		for d := range v.tombs {
			pyr.Remove(d)
		}
		work = float64(pyr.NumDocs() + len(v.pts) + len(v.tombs))
		return pyr
	}

	clusters := make(map[int64]int64, len(v.base.assignDocs))
	for i, d := range v.base.assignDocs {
		clusters[d] = v.base.assignClusters[i]
	}
	pyr, err := tiles.New(cfg, box)
	if err != nil {
		// cfg was validated at server construction and box is always
		// padded; an error here is a programming bug.
		panic(err)
	}
	for _, pt := range v.base.points {
		if v.tombs[pt.Doc] || v.base.holes[pt.Doc] {
			continue
		}
		c := int64(-1)
		if cl, ok := clusters[pt.Doc]; ok {
			c = cl
		}
		ts, facets := v.docMeta(pt.Doc)
		pyr.Add(tiles.Entry{Doc: pt.Doc, X: pt.X, Y: pt.Y, Cluster: c, Time: ts, Facets: facets})
	}
	for _, pt := range v.pts {
		if !v.tombs[pt.Doc] {
			ts, facets := v.docMeta(pt.Doc)
			pyr.Add(tiles.Entry{Doc: pt.Doc, X: pt.X, Y: pt.Y, Cluster: -1, Time: ts, Facets: facets})
		}
	}
	work = float64(pyr.NumDocs())
	return pyr
}

// sidecarLocked returns the store's persisted base pyramid, decoding the
// raw bytes a mapped INSPSTORE4 store carries on first use. Anything
// corrupt or inconsistent with the base points is dropped — the pyramid
// then builds from the points, exactly like a store without a sidecar.
// Callers hold tileMu.
func (st *Store) sidecarLocked() *tiles.Pyramid {
	ls := &st.live
	if ls.tileSidecar == nil && len(ls.tileRaw) > 0 {
		raw := ls.tileRaw
		ls.tileRaw = nil
		pyr, err := tiles.DecodeAny(raw)
		if err == nil && pyr.NumDocs() == len(st.Points) &&
			st.TileBox != nil && pyr.Bounds() == *st.TileBox &&
			st.sidecarMetaConsistent(pyr) {
			ls.tileSidecar = pyr
		}
	}
	return ls.tileSidecar
}

// sidecarMetaConsistent checks a decoded sidecar pyramid against the store's
// document metadata: the root tile's time-histogram and facet-count totals
// must equal what the base metadata implies. A pre-metadata (INSPTILES1)
// sidecar decodes with zero meta everywhere, so on a faceted store this
// rejects it and the pyramid rebuilds from the points — the histograms the
// tile layer serves are then exact again.
func (st *Store) sidecarMetaConsistent(pyr *tiles.Pyramid) bool {
	var wantTimes, wantFacets int64
	for i, d := range st.MetaDocs {
		if !pyr.Contains(d) {
			continue
		}
		if st.MetaTimes[i] != 0 {
			wantTimes++
		}
		if st.MetaFacetOffs != nil {
			wantFacets += st.MetaFacetOffs[i+1] - st.MetaFacetOffs[i]
		}
	}
	var gotTimes, gotFacets int64
	if root := pyr.Tile(0, 0, 0); root != nil {
		for _, tc := range root.Times {
			gotTimes += tc.Docs
		}
		for _, fc := range root.Facets {
			gotFacets += fc.Docs
		}
	}
	return gotTimes == wantTimes && gotFacets == wantFacets
}

// tileBoundsLocked resolves the pyramid's world bounds: the store's frozen
// TileBox, or — for legacy stores without one — a box derived from the
// visible points once and memoized. Callers hold tileMu.
func (st *Store) tileBoundsLocked(v *view) tiles.Rect {
	if st.TileBox != nil {
		return *st.TileBox
	}
	if st.live.tileBox != nil {
		return *st.live.tileBox
	}
	b := tiles.NewBounds(0, 0, 1, 1)
	if r, ok := boundsOver(v.base.points, v.pts); ok {
		b = tiles.NewBounds(r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	st.live.tileBox = &b
	return b
}

// --- sidecar persistence ---------------------------------------------------

// BaseTilePyramid builds the pyramid of the store's base snapshot (its
// persisted points and cluster assignments) — what SaveTilesFile persists
// and what a loaded sidecar must reproduce.
func (st *Store) BaseTilePyramid(cfg Config) (*tiles.Pyramid, error) {
	tc := cfg.withDefaults().tileConfig()
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	box := tiles.NewBounds(0, 0, 1, 1)
	if st.TileBox != nil {
		box = *st.TileBox
	} else if b := pointBounds(st.Points); b != nil {
		box = *b
	}
	clusters := make(map[int64]int64, len(st.AssignDocs))
	for i, d := range st.AssignDocs {
		clusters[d] = st.AssignClusters[i]
	}
	pyr, err := tiles.New(tc, box)
	if err != nil {
		return nil, err
	}
	for _, pt := range st.Points {
		c := int64(-1)
		if cl, ok := clusters[pt.Doc]; ok {
			c = cl
		}
		ts, facets := st.baseMetaOf(pt.Doc)
		if !pyr.Add(tiles.Entry{Doc: pt.Doc, X: pt.X, Y: pt.Y, Cluster: c, Time: ts, Facets: facets}) {
			return nil, fmt.Errorf("serve: tile pyramid: duplicate or non-finite point for doc %d", pt.Doc)
		}
	}
	return pyr, nil
}

// SaveTilesFile persists the store's base tile pyramid as the sidecar of the
// store file at storePath (storePath + ".tiles"), so the next load serves
// tiles without rebuilding the pyramid.
func (st *Store) SaveTilesFile(storePath string, cfg Config) error {
	pyr, err := st.BaseTilePyramid(cfg)
	if err != nil {
		return err
	}
	return pyr.SaveFile(storePath + TilesSidecarSuffix)
}

// attachTilesSidecar loads the tile sidecar of the store file at path if one
// exists and still describes the store's base points; anything missing,
// corrupt or inconsistent is ignored — the pyramid then builds lazily, which
// is also how stores persisted before the tile layer serve.
func (st *Store) attachTilesSidecar(path string) {
	pyr, err := tiles.LoadFile(path + TilesSidecarSuffix)
	if err != nil {
		return
	}
	if pyr.NumDocs() != len(st.Points) {
		return
	}
	if st.TileBox == nil || pyr.Bounds() != *st.TileBox {
		return
	}
	for _, pt := range st.Points {
		if !pyr.Contains(pt.Doc) {
			return
		}
	}
	if !st.sidecarMetaConsistent(pyr) {
		return
	}
	st.live.tileMu.Lock()
	st.live.tileSidecar = pyr
	st.live.tileMu.Unlock()
}

// --- server side -----------------------------------------------------------

// tileKey keys the server's tile LRU: every published change advances the
// epoch, so stale tiles age out without any sweep — the same
// self-invalidation the similarity caches use.
type tileKey struct {
	epoch   uint64
	z, x, y int
}

// tileBytes models a tile reply's payload size.
func tileBytes(t *tiles.Tile) float64 {
	if t == nil {
		return 8
	}
	b := 4*len(t.Density) + 16*len(t.Themes) + 16*len(t.Times) + 8*len(t.Exemplars) + 32
	for _, fc := range t.Facets {
		b += len(fc.Facet) + 8
	}
	return float64(b)
}

// tileRaw answers one tile address under view v from the epoch-keyed LRU,
// falling through to the maintained pyramid on a miss. The returned tile is
// an immutable snapshot (nil = empty). The cost is the descriptor probe plus
// a memory-rate scan of the tile's bins (twice on a miss: the pyramid read
// and the reply emit).
func (s *Server) tileRaw(v *view, z, x, y int) (*tiles.Tile, float64) {
	m := s.store.Model
	key := tileKey{epoch: v.epoch, z: z, x: x, y: y}
	s.tmu.Lock()
	t, ok := s.tiles.get(key)
	s.tmu.Unlock()
	if ok {
		s.tileHits.Add(1)
		return t, m.LocalCopyCost(24 + tileBytes(t))
	}
	s.tileMisses.Add(1)
	var cp *tiles.Tile
	s.store.withPyramid(v, s.cfg.tileConfig(), func(p *tiles.Pyramid) {
		cp = p.Tile(z, x, y).Clone()
	})
	s.tmu.Lock()
	s.tiles.add(key, cp)
	s.tmu.Unlock()
	return cp, m.LocalCopyCost(24 + 2*tileBytes(cp))
}

// tileWhere answers one tile address restricted to the session filter's
// members — an exact rebuild over the matching entries, bypassing the tile
// LRU (a filtered tile is a per-session answer; caching it per filter would
// let one session's predicate evict every session's unfiltered tiles). The
// cost is the probe per member entry under the address plus the reply emit.
func (s *Server) tileWhere(v *view, fs *filterSet, z, x, y int) (*tiles.Tile, float64) {
	m := s.store.Model
	var cp *tiles.Tile
	var members float64
	s.store.withPyramid(v, s.cfg.tileConfig(), func(p *tiles.Pyramid) {
		if full := p.Tile(z, x, y); full != nil {
			members = float64(full.Docs)
		}
		cp = p.TileWhere(z, x, y, func(e tiles.Entry) bool { return fs.contains(e.Doc) })
	})
	return cp, m.FlopCost(members) + m.LocalCopyCost(24+tileBytes(cp))
}

// tileFor answers one tile address under the session's filter state: the
// epoch-keyed LRU when unfiltered, an exact filtered rebuild otherwise.
func (ss *Session) tileFor(v *view, fs *filterSet, z, x, y int) (*tiles.Tile, float64) {
	if fs == nil {
		return ss.s.tileRaw(v, z, x, y)
	}
	return ss.s.tileWhere(v, fs, z, x, y)
}

// themeLabel renders a theme's representative label: its strongest terms.
func themeLabel(themes []core.Theme, cluster int64) string {
	if cluster < 0 || cluster >= int64(len(themes)) {
		return ""
	}
	terms := themes[cluster].Terms
	if len(terms) > 3 {
		terms = terms[:3]
	}
	return strings.Join(terms, " ")
}

// renderTile trims a raw tile to the reply surface: the top themes by count
// (count descending, cluster ascending on ties) with their labels. A nil raw
// tile renders as the empty tile.
func renderTile(raw *tiles.Tile, z, x, y, grid, topThemes int, themes []core.Theme) *TileResult {
	res := &TileResult{Z: z, X: x, Y: y, Grid: grid}
	if raw == nil {
		return res
	}
	res.Docs = raw.Docs
	res.Density = append([]uint32(nil), raw.Density...)
	res.Times = append([]tiles.TimeCount(nil), raw.Times...)
	res.Facets = append([]tiles.FacetCount(nil), raw.Facets...)
	res.Exemplars = append([]int64(nil), raw.Exemplars...)
	hist := append([]tiles.ThemeCount(nil), raw.Themes...)
	sort.Slice(hist, func(a, b int) bool {
		if hist[a].Docs != hist[b].Docs {
			return hist[a].Docs > hist[b].Docs
		}
		return hist[a].Cluster < hist[b].Cluster
	})
	if len(hist) > topThemes {
		hist = hist[:topThemes]
	}
	for _, h := range hist {
		res.Themes = append(res.Themes, TileTheme{
			Cluster: h.Cluster,
			Docs:    h.Docs,
			Label:   themeLabel(themes, h.Cluster),
		})
	}
	return res
}

// Tile returns the Galaxy tile at (z, x, y): the density raster, top theme
// histogram and exemplar documents of everything the ThemeView projection
// bins there, answered from the server's epoch-keyed tile LRU.
func (ss *Session) Tile(ctx context.Context, z, x, y int) (*TileResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := ss.s
	if s.cfg.DisableTiles {
		return nil, fmt.Errorf("serve: tiles are disabled on this server")
	}
	tc := s.cfg.tileConfig()
	if err := checkTileAddr(tc, z, x, y); err != nil {
		return nil, err
	}
	v := s.store.viewNow()
	fs, fc := ss.filterFor(v)
	raw, cost := ss.tileFor(v, fs, z, x, y)
	ss.charge(cost + fc)
	return renderTile(raw, z, x, y, tc.Grid, s.cfg.TileThemes, s.store.Themes), nil
}

// TileRange returns every non-empty tile at zoom z whose extent intersects
// r, ordered by (x, y) — one call renders a viewport. The quadtree walk
// prunes subtrees outside the rect (counted in Stats.TilesPruned) and each
// admitted tile answers through the tile LRU.
func (ss *Session) TileRange(ctx context.Context, z int, r tiles.Rect) ([]*TileResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := ss.s
	if s.cfg.DisableTiles {
		return nil, fmt.Errorf("serve: tiles are disabled on this server")
	}
	tc := s.cfg.tileConfig()
	if z < 0 || z > tc.MaxZoom {
		return nil, fmt.Errorf("serve: tile zoom %d out of [0, %d]", z, tc.MaxZoom)
	}
	v := s.store.viewNow()
	fs, fc := ss.filterFor(v)
	coords, _, cost := s.tileRangeCoords(v, tc, z, r)
	out := make([]*TileResult, 0, len(coords))
	for _, c := range coords {
		raw, tcost := ss.tileFor(v, fs, z, c[0], c[1])
		cost += tcost
		if fs != nil && raw == nil {
			// Every member under the address was filtered out; a pyramid over
			// only the matching documents would not have this tile at all.
			continue
		}
		out = append(out, renderTile(raw, z, c[0], c[1], tc.Grid, s.cfg.TileThemes, s.store.Themes))
	}
	ss.charge(cost + fc)
	return out, nil
}

// tileRangeCoords walks the pyramid for the tile addresses at zoom z
// intersecting r, charging the descent and counting pruned subtrees.
func (s *Server) tileRangeCoords(v *view, tc tiles.Config, z int, r tiles.Rect) (coords [][2]int, walked int, cost float64) {
	var pruned int
	s.store.withPyramid(v, tc, func(p *tiles.Pyramid) {
		ts, pr := p.Range(z, r)
		pruned = pr
		for _, t := range ts {
			coords = append(coords, [2]int{t.X, t.Y})
		}
	})
	s.tilesPruned.Add(uint64(pruned))
	walked = len(coords) + pruned
	return coords, walked, s.store.Model.LocalCopyCost(24 * float64(walked))
}

// tileRawQ is the shard-local half of a routed tile query: it answers the
// raw (untrimmed) tile through this server's LRU and charges the
// sub-session, like any other sub-query.
func (ss *Session) tileRawQ(z, x, y int) *tiles.Tile {
	v := ss.s.store.viewNow()
	fs, fc := ss.filterFor(v)
	raw, cost := ss.tileFor(v, fs, z, x, y)
	ss.charge(cost + fc)
	return raw
}

// tileRangeRaw is the shard-local half of a routed range query: raw tiles at
// zoom z intersecting r, ordered by (x, y).
func (ss *Session) tileRangeRaw(z int, r tiles.Rect) []*tiles.Tile {
	s := ss.s
	tc := s.cfg.tileConfig()
	v := s.store.viewNow()
	fs, fc := ss.filterFor(v)
	coords, _, cost := s.tileRangeCoords(v, tc, z, r)
	out := make([]*tiles.Tile, 0, len(coords))
	for _, c := range coords {
		// tileFor answers immutable snapshots already addressed (z, x, y);
		// the merge side only reads them.
		raw, tcost := ss.tileFor(v, fs, z, c[0], c[1])
		cost += tcost
		if raw != nil {
			out = append(out, raw)
		}
	}
	ss.charge(cost + fc)
	return out
}

// --- router side -----------------------------------------------------------

// tileShards returns the shards whose data bounding box overlaps rect's
// tile window at zoom z — a shard none of whose points can bin inside the
// window is never asked. The comparison runs in bin-index space with the
// member binning arithmetic, so boundary points never mis-prune.
func (r *Router) tileShards(z int, rect tiles.Rect) []int {
	qx0, qy0, qx1, qy1, ok := tiles.BinWindow(r.tileBox, z, rect)
	if !ok {
		return nil
	}
	r.boxMu.RLock()
	defer r.boxMu.RUnlock()
	out := make([]int, 0, len(r.sets))
	for i := range r.sets {
		if !r.boxOK[i] {
			continue
		}
		sx0, sy0, sx1, sy1, _ := tiles.BinWindow(r.tileBox, z, r.boxes[i])
		if sx0 <= qx1 && qx0 <= sx1 && sy0 <= qy1 && qy0 <= sy1 {
			out = append(out, i)
		}
	}
	return out
}

// shardsForTile returns the shards whose data bounding box covers tile
// (z, x, y) in bin-index space.
func (r *Router) shardsForTile(z, x, y int) []int {
	r.boxMu.RLock()
	defer r.boxMu.RUnlock()
	out := make([]int, 0, len(r.sets))
	for i := range r.sets {
		if !r.boxOK[i] {
			continue
		}
		sx0, sy0, sx1, sy1, _ := tiles.BinWindow(r.tileBox, z, r.boxes[i])
		if x >= sx0 && x <= sx1 && y >= sy0 && y <= sy1 {
			out = append(out, i)
		}
	}
	return out
}

// expandBox grows a shard's data bounding box to cover a newly ingested
// point; boxes only ever grow, so pruning stays conservative.
func (r *Router) expandBox(shard int, x, y float64) {
	r.boxMu.Lock()
	defer r.boxMu.Unlock()
	if !r.boxOK[shard] {
		r.boxes[shard] = tiles.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}
		r.boxOK[shard] = true
		return
	}
	b := &r.boxes[shard]
	b.MinX, b.MaxX = math.Min(b.MinX, x), math.Max(b.MaxX, x)
	b.MinY, b.MaxY = math.Min(b.MinY, y), math.Max(b.MaxY, y)
}

// Tile returns the Galaxy tile at (z, x, y) merged across the shard set:
// densities and theme histograms sum, exemplar sets union and trim —
// bit-identical to the single-store answer over the unsharded snapshot.
// Shards whose bounding box misses the tile's extent are pruned before any
// request is issued.
func (rs *RouterSession) Tile(ctx context.Context, z, x, y int) (*TileResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := rs.r
	if r.cfg.DisableTiles {
		return nil, fmt.Errorf("serve: tiles are disabled on this router")
	}
	tc := r.cfg.tileConfig()
	if err := checkTileAddr(tc, z, x, y); err != nil {
		return nil, err
	}
	cost := r.model.LocalCopyCost(24)
	live := r.shardsForTile(z, x, y)
	if len(live) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(cost)
		return renderTile(nil, z, x, y, tc.Grid, r.cfg.TileThemes, r.themes), nil
	}
	parts, scCost := scatterQ(ctx, rs, live, 24,
		func(ctx context.Context, shard int, sub *Session) (*tiles.Tile, float64) {
			_ = sub.SetFilter(rs.filter)
			raw := sub.tileRawQ(z, x, y)
			return raw, tileBytes(raw)
		})
	cost += scCost
	// The merged tile is transient — renderTile deep-copies everything it
	// keeps — so the merge buffer cycles through a pool instead of allocating
	// a tile (plus density grid) per gathered request.
	buf := tileMergeBuf.Get().(*tiles.Tile)
	merged := tiles.MergeInto(buf, parts, tc.Exemplars)
	cost += r.model.LocalCopyCost(tileBytes(merged))
	res := renderTile(merged, z, x, y, tc.Grid, r.cfg.TileThemes, r.themes)
	tileMergeBuf.Put(buf)
	rs.charge(cost)
	return res, nil
}

// tileMergeBuf pools gather-merge scratch tiles. Only transient merges may
// use it: renderTile copies what it keeps, so a buffer can be returned as
// soon as its merge is rendered.
var tileMergeBuf = sync.Pool{New: func() any { return new(tiles.Tile) }}

// TileRange returns every non-empty tile at zoom z intersecting r, merged
// across the shard set and ordered by (x, y), identical to the single-store
// answer. Only shards whose bounding box intersects the rect are asked.
func (rs *RouterSession) TileRange(ctx context.Context, z int, rect tiles.Rect) ([]*TileResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := rs.r
	if r.cfg.DisableTiles {
		return nil, fmt.Errorf("serve: tiles are disabled on this router")
	}
	tc := r.cfg.tileConfig()
	if z < 0 || z > tc.MaxZoom {
		return nil, fmt.Errorf("serve: tile zoom %d out of [0, %d]", z, tc.MaxZoom)
	}
	cost := r.model.LocalCopyCost(24)
	live := r.tileShards(z, rect)
	if len(live) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(cost)
		return nil, nil
	}
	parts, scCost := scatterQ(ctx, rs, live, 40,
		func(ctx context.Context, shard int, sub *Session) ([]*tiles.Tile, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.tileRangeRaw(z, rect)
			var b float64
			for _, t := range out {
				b += tileBytes(t)
			}
			return out, b
		})
	cost += scCost
	byAddr := make(map[[2]int][]*tiles.Tile)
	for _, part := range parts {
		for _, t := range part {
			a := [2]int{t.X, t.Y}
			byAddr[a] = append(byAddr[a], t)
		}
	}
	addrs := make([][2]int, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(a, b int) bool {
		if addrs[a][0] != addrs[b][0] {
			return addrs[a][0] < addrs[b][0]
		}
		return addrs[a][1] < addrs[b][1]
	})
	out := make([]*TileResult, 0, len(addrs))
	var mergedBytes float64
	// One pooled buffer serves the whole viewport: each merge is rendered
	// (deep-copied) before the next overwrites it.
	buf := tileMergeBuf.Get().(*tiles.Tile)
	for _, a := range addrs {
		merged := tiles.MergeInto(buf, byAddr[a], tc.Exemplars)
		mergedBytes += tileBytes(merged)
		out = append(out, renderTile(merged, z, a[0], a[1], tc.Grid, r.cfg.TileThemes, r.themes))
	}
	tileMergeBuf.Put(buf)
	cost += r.model.LocalCopyCost(mergedBytes)
	rs.charge(cost)
	return out, nil
}
