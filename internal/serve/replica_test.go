package serve

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// replicatedRouter builds a live-ingest-capable store, shards it, and serves
// it behind a Router with n replicas per shard.
func replicatedRouter(t *testing.T, shards, replicas int) *Router {
	t.Helper()
	st := batchStore(t, ingestSources(), 2)
	parts, err := st.Shard(shards)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Options{Shards: parts, Config: Config{Replicas: replicas}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := svc.(*Router)
	if !ok {
		t.Fatalf("NewService(Shards) = %T, want *Router", svc)
	}
	return r
}

// assertReplicaEquivalence drives one query battery against two replica
// servers of the same shard and requires identical answers — the catch-up
// protocol's contract. DF is deliberately absent: it carries the documented
// LSM overcount for tombstoned-but-uncompacted documents, and background
// compaction runs on each replica's own clock, so two answer-equivalent
// replicas may report different DFs until both compact (the chaos test pins
// post-compaction DF equality separately).
func assertReplicaEquivalence(t *testing.T, a, b *Server, terms []string) {
	t.Helper()
	ctx := context.Background()
	sa, sb := a.NewSession(), b.NewSession()
	for _, term := range terms {
		pa, pb := sa.TermDocs(ctx, term), sb.TermDocs(ctx, term)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("TermDocs(%q) diverges: %v vs %v", term, pa, pb)
		}
	}
	for i := 0; i+1 < len(terms); i += 2 {
		da := sa.And(ctx, terms[i], terms[i+1])
		db := sb.And(ctx, terms[i], terms[i+1])
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("And(%q, %q) diverges: %v vs %v", terms[i], terms[i+1], da, db)
		}
	}
}

// TestReplicatedWritesConverge pins the primary-ordered write path: adds,
// deletes and flushes applied through the router land on every live replica,
// and the replicas answer identically afterwards.
func TestReplicatedWritesConverge(t *testing.T) {
	r := replicatedRouter(t, 2, 3)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 12)
	text := strings.Join(terms[:4], " ")

	rs := r.NewSession()
	var added []int64
	for i := 0; i < 40; i++ {
		doc, err := rs.Add(ctx, text)
		if err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		added = append(added, doc)
	}
	for i := 0; i < len(added); i += 4 {
		if err := rs.Delete(ctx, added[i]); err != nil {
			t.Fatalf("delete %d: %v", added[i], err)
		}
	}
	if err := r.FlushLive(ctx); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 2; shard++ {
		for rep := 1; rep < r.NumReplicas(); rep++ {
			assertReplicaEquivalence(t, r.Replica(shard, 0).Server(), r.Replica(shard, rep).Server(), terms)
		}
	}
}

// TestHedgedReadBeatsSlowReplica pins the hedging policy: with one replica
// stalled far past the hedge delay, reads still answer (from the sibling)
// and the hedge counters account the race.
func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	st := batchStore(t, ingestSources(), 2)
	parts, err := st.Shard(1)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(Options{Shards: parts, Config: Config{Replicas: 2, HedgeAfter: 200 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	r := svc.(*Router)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 8)

	r.Replica(0, 0).SetStall(20 * time.Millisecond)
	r.Replica(0, 1).SetStall(20 * time.Millisecond)
	// Both stalled: every read waits, so the hedge timer always fires and
	// the counters must see it.
	rs := r.NewSession()
	for i := 0; i < 8; i++ {
		if got := rs.TermDocs(ctx, terms[i%len(terms)]); len(got) == 0 {
			t.Fatalf("stalled replicas dropped the answer for %q", terms[i%len(terms)])
		}
	}
	if st := r.Stats(); st.Hedges == 0 {
		t.Fatalf("no hedged attempts accounted: %+v", st)
	}
}

// TestAllReplicasDeadStillAnswers pins the last-resort read: with every
// replica of a shard marked dead, reads force through replica 0 rather than
// erroring — a stale answer beats none.
func TestAllReplicasDeadStillAnswers(t *testing.T) {
	r := replicatedRouter(t, 1, 2)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 4)
	r.KillReplica(0, 0)
	r.KillReplica(0, 1)
	rs := r.NewSession()
	if got := rs.TermDocs(ctx, terms[0]); len(got) == 0 {
		t.Fatalf("all-dead shard dropped the answer for %q", terms[0])
	}
}

// TestReviveReplicaCatchUp pins the catch-up protocol in isolation: a dead
// replica misses sealed segments and tombstones, then revival ships the
// missing lineage — counted in CatchUpSegments/CatchUpBytes — and restores
// answer-equivalence.
func TestReviveReplicaCatchUp(t *testing.T) {
	r := replicatedRouter(t, 1, 2)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 12)
	text := strings.Join(terms[:4], " ")
	rs := r.NewSession()

	r.KillReplica(0, 1)
	var added []int64
	for i := 0; i < 30; i++ {
		doc, err := rs.Add(ctx, text)
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, doc)
	}
	if err := rs.Delete(ctx, added[3]); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushLive(ctx); err != nil {
		t.Fatal(err)
	}

	before := r.Stats()
	if err := r.ReviveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.ReplicaCatchUps != before.ReplicaCatchUps+1 {
		t.Fatalf("catch-ups %d -> %d, want +1", before.ReplicaCatchUps, after.ReplicaCatchUps)
	}
	if after.CatchUpSegments == before.CatchUpSegments && after.CatchUpBytes == before.CatchUpBytes {
		t.Fatalf("revival shipped nothing: %+v -> %+v", before, after)
	}
	if got := r.Replica(0, 1).State(); got != ReplicaLive {
		t.Fatalf("revived replica state = %v, want live", got)
	}
	assertReplicaEquivalence(t, r.Replica(0, 0).Server(), r.Replica(0, 1).Server(), terms)
}

// TestChaosKillReplicaUnderLoad is the acceptance chaos drill: 3 shards x 2
// replicas, a 100-session seeded replay, one replica crashed mid-run while a
// writer keeps ingesting. The replay must finish with zero client-visible
// errors, and the dead replica must catch up on revival — via segment
// shipping, not a full rebuild — to answer-equivalence with the survivor.
func TestChaosKillReplicaUnderLoad(t *testing.T) {
	r := replicatedRouter(t, 3, 2)
	ctx := context.Background()
	terms := r.TopTerms(ctx, 12)
	text := strings.Join(terms[:4], " ")

	type replayOut struct {
		rep *WorkloadReport
		err error
	}
	outc := make(chan replayOut, 1)
	go func() {
		rep, err := Replay(r, WorkloadConfig{Sessions: 100, OpsPerSession: 20, Seed: 42})
		outc <- replayOut{rep, err}
	}()

	// The writer ingests throughout the replay; the crash lands mid-stream
	// so in-flight reads on the dying replica must fail over.
	ws := r.NewSession()
	var added []int64
	for i := 0; i < 180; i++ {
		if i == 30 {
			r.KillReplica(0, 1)
		}
		doc, err := ws.Add(ctx, text)
		if err != nil {
			t.Fatalf("add %d during chaos: %v", i, err)
		}
		added = append(added, doc)
		if i%5 == 4 {
			if err := ws.Delete(ctx, added[i-2]); err != nil {
				t.Fatalf("delete during chaos: %v", err)
			}
		}
	}
	if err := r.FlushLive(ctx); err != nil {
		t.Fatal(err)
	}

	out := <-outc
	if out.err != nil {
		t.Fatalf("client-visible error while a replica died: %v", out.err)
	}
	if out.rep.Ops != 100*20 {
		t.Fatalf("replay completed %d ops, want %d", out.rep.Ops, 100*20)
	}
	if got := r.Replica(0, 1).State(); got != ReplicaDead {
		t.Fatalf("killed replica state = %v, want dead", got)
	}

	before := r.Stats()
	if err := r.ReviveReplica(0, 1); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.ReplicaCatchUps != before.ReplicaCatchUps+1 {
		t.Fatalf("catch-ups %d -> %d, want +1", before.ReplicaCatchUps, after.ReplicaCatchUps)
	}
	if after.CatchUpSegments == before.CatchUpSegments {
		t.Fatalf("catch-up shipped no segments (want segment shipping, not a rebuild): %+v -> %+v", before, after)
	}
	assertReplicaEquivalence(t, r.Replica(0, 0).Server(), r.Replica(0, 1).Server(), terms)

	// After compacting every replica the tombstone overcount is gone, so DF
	// must agree too.
	if err := r.CompactLive(ctx); err != nil {
		t.Fatal(err)
	}
	sa := r.Replica(0, 0).Server().NewSession()
	sb := r.Replica(0, 1).Server().NewSession()
	for _, term := range terms {
		if dfa, dfb := sa.DF(ctx, term), sb.DF(ctx, term); dfa != dfb {
			t.Fatalf("post-compaction DF(%q) diverges: %d vs %d", term, dfa, dfb)
		}
	}

	// The healed tier serves the replayed workload again, error-free.
	rep2, err := Replay(r, WorkloadConfig{Sessions: 20, OpsPerSession: 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Ops != 20*10 {
		t.Fatalf("post-heal replay completed %d ops, want %d", rep2.Ops, 20*10)
	}
}

// TestContextCancelStopsReads pins the ctx-first contract: a canceled
// context short-circuits reads to empty answers and errors, with nothing
// left in flight.
func TestContextCancelStopsReads(t *testing.T) {
	r := replicatedRouter(t, 2, 2)
	bg := context.Background()
	terms := r.TopTerms(bg, 4)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	rs := r.NewSession()
	if got := rs.TermDocs(ctx, terms[0]); got != nil {
		t.Fatalf("canceled TermDocs answered %v", got)
	}
	if _, err := rs.Similar(ctx, 0, 3); err == nil {
		t.Fatal("canceled Similar did not error")
	}
	if _, err := rs.Add(ctx, "x"); err == nil {
		t.Fatal("canceled Add did not error")
	}
	if err := r.FlushLive(ctx); err == nil {
		t.Fatal("canceled FlushLive did not error")
	}
}
