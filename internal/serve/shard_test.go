package serve

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// queryAll exercises every Querier interaction against the miniDocs corpus
// and returns the answers in a comparable shape.
func queryAll(t *testing.T, q Querier, st *Store) map[string]any {
	t.Helper()
	out := map[string]any{}
	terms := append(st.TopTerms(int(st.VocabSize)), "nonexistent")
	for _, term := range terms {
		out["term:"+term] = q.TermDocs(context.Background(), term)
		out["df:"+term] = q.DF(context.Background(), term)
	}
	pairs := [][]string{
		{"apple", "banana"}, {"apple", "durian"}, {"durian", "elder", "fig"},
		{"grape", "kiwi"}, {"apple", "nonexistent"}, {"cherry"},
	}
	for _, p := range pairs {
		key := strings.Join(p, "+")
		out["and:"+key] = q.And(context.Background(), p...)
		out["or:"+key] = q.Or(context.Background(), p...)
	}
	for _, d := range st.SampleDocs(16) {
		hits, err := q.Similar(context.Background(), d, 3)
		if err != nil {
			t.Fatalf("similar %d: %v", d, err)
		}
		out["similar:"+string(rune('0'+d))] = hits
	}
	if _, err := q.Similar(context.Background(), -1, 3); err == nil {
		t.Fatal("similar on a negative doc did not error")
	}
	for c := 0; c < st.K; c++ {
		out["theme:"+string(rune('0'+c))] = q.ThemeDocs(context.Background(), c)
	}
	out["near"] = q.Near(context.Background(), 0, 0, 0.5)
	return out
}

// TestRouterMatchesServer pins the sharding contract: a Router over any
// shard count answers every interaction identically to the monolithic Server
// over the unsharded snapshot.
func TestRouterMatchesServer(t *testing.T) {
	st := buildStoreT(t, 3)
	srv := newServerT(t, st, Config{})
	want := queryAll(t, srv.NewSession(), st)

	for _, n := range []int{1, 2, 3, 4, 6} {
		shards, err := st.Shard(n)
		if err != nil {
			t.Fatalf("shard %d: %v", n, err)
		}
		r, err := NewRouter(shards, Config{})
		if err != nil {
			t.Fatalf("router %d: %v", n, err)
		}
		got := queryAll(t, r.NewSession(), st)
		for k, w := range want {
			if !reflect.DeepEqual(got[k], w) {
				t.Fatalf("%d shards: %s = %#v, want %#v", n, k, got[k], w)
			}
		}
		// Cached similarity answers stay identical too.
		sess := r.NewSession()
		d := st.SampleDocs(1)[0]
		cold, _ := sess.Similar(context.Background(), d, 3)
		warm, _ := sess.Similar(context.Background(), d, 3)
		if !reflect.DeepEqual(cold, warm) {
			t.Fatalf("%d shards: cached similar differs", n)
		}
	}
}

// TestShardPartition checks the document partition itself: shard sizes,
// DF summaries summing to the global DF, and every product row landing on
// the shard the modulo rule names.
func TestShardPartition(t *testing.T) {
	st := buildStoreT(t, 2)
	const n = 3
	shards, err := st.Shard(n)
	if err != nil {
		t.Fatal(err)
	}
	var docs int64
	df := make([]int64, st.VocabSize)
	for i, sh := range shards {
		docs += sh.TotalDocs
		for t2, d := range sh.DF {
			df[t2] += d
		}
		for t2 := int64(0); t2 < sh.VocabSize; t2++ {
			ds, _ := sh.Postings(t2)
			for _, d := range ds {
				if ShardOf(d, n) != i {
					t.Fatalf("doc %d on shard %d, want %d", d, i, ShardOf(d, n))
				}
			}
		}
		for _, d := range sh.SigDocs {
			if ShardOf(d, n) != i {
				t.Fatalf("signature of doc %d on shard %d", d, i)
			}
		}
		for _, pt := range sh.Points {
			if ShardOf(pt.Doc, n) != i {
				t.Fatalf("point of doc %d on shard %d", pt.Doc, i)
			}
		}
	}
	if docs != st.TotalDocs {
		t.Fatalf("shards hold %d docs, want %d", docs, st.TotalDocs)
	}
	if !reflect.DeepEqual(df, st.DF) {
		t.Fatalf("shard DF summaries do not sum to the global DF")
	}
}

// TestRouterShortCircuit pins the no-fan-out paths: unknown terms, and
// conjunctions whose terms never share a shard, must be answered at the
// router without a single shard query.
func TestRouterShortCircuit(t *testing.T) {
	st := buildStoreT(t, 2)
	// One document per shard: conjunction terms from different documents
	// can never share a shard.
	shards, err := st.Shard(int(st.TotalDocs))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := r.NewSession()

	check := func(what string, empty bool) {
		t.Helper()
		s := r.Stats()
		if !empty {
			t.Fatalf("%s: got a non-empty answer, want nil", what)
		}
		if s.FanOuts != 0 || s.ShardQueries != 0 {
			t.Fatalf("%s fanned out: %d rounds, %d shard queries", what, s.FanOuts, s.ShardQueries)
		}
	}
	check("unknown term", sess.TermDocs(context.Background(), "nonexistent") == nil)
	check("unknown and", sess.And(context.Background(), "apple", "nonexistent") == nil)
	// grape lives only in doc 5, durian in docs 3 and 4: no shard holds both.
	check("disjoint-shard and", sess.And(context.Background(), "grape", "durian") == nil)
	st1 := r.Stats()
	if st1.ShortCircuits != 3 {
		t.Fatalf("ShortCircuits = %d, want 3", st1.ShortCircuits)
	}

	// Zero-DF pruning on a live query: grape's postings live on exactly one
	// shard, so one fan-out round touches one shard and prunes the rest.
	if got := sess.TermDocs(context.Background(), "grape"); len(got) != 1 {
		t.Fatalf("grape postings = %v", got)
	}
	st2 := r.Stats()
	if st2.FanOuts != 1 || st2.ShardQueries != 1 {
		t.Fatalf("grape fan-out: %d rounds, %d shard queries, want 1 and 1", st2.FanOuts, st2.ShardQueries)
	}
	if want := uint64(len(shards) - 1); st2.ShardsPruned != want {
		t.Fatalf("grape pruned %d shards, want %d", st2.ShardsPruned, want)
	}
}

// TestSaveLoadShards round-trips a sharded set through the manifest and
// checks the loaded Router serves identically.
func TestSaveLoadShards(t *testing.T) {
	st := buildStoreT(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.shards")
	if err := st.SaveShards(path, 3); err != nil {
		t.Fatal(err)
	}
	man, shards, err := LoadShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if man.NumShards != 3 || len(shards) != 3 {
		t.Fatalf("loaded %d shards, manifest says %d", len(shards), man.NumShards)
	}
	if man.TotalDocs != st.TotalDocs || man.VocabSize != st.VocabSize {
		t.Fatalf("manifest header %d docs/%d terms, want %d/%d", man.TotalDocs, man.VocabSize, st.TotalDocs, st.VocabSize)
	}
	r, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := newServerT(t, st, Config{})
	want := queryAll(t, srv.NewSession(), st)
	got := queryAll(t, r.NewSession(), st)
	for k, w := range want {
		if !reflect.DeepEqual(got[k], w) {
			t.Fatalf("reloaded shards: %s = %#v, want %#v", k, got[k], w)
		}
	}

	// A tampered manifest must not load.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	bad := filepath.Join(dir, "bad.shards")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadShards(bad); err == nil {
		t.Fatal("tampered manifest loaded")
	}
}

// TestLoadServiceFile pins the one-loader contract: a manifest serves behind
// a Router, a v2 single-store file and a legacy v1 flat file both serve
// behind a Server, all answering identically through the Service surface.
func TestLoadServiceFile(t *testing.T) {
	st := buildStoreT(t, 2)
	srv := newServerT(t, st, Config{})
	want := queryAll(t, srv.NewSession(), st)
	dir := t.TempDir()

	manifest := filepath.Join(dir, "run.shards")
	if err := st.SaveShards(manifest, 2); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "run.v2.store")
	if err := st.SaveFile(v2); err != nil {
		t.Fatal(err)
	}
	v1 := filepath.Join(dir, "run.v1.store")
	if err := st.FlatCopy().SaveFile(v1); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, path string
		router     bool
	}{
		{"manifest", manifest, true},
		{"v2 store", v2, false},
		{"legacy v1 store", v1, false},
	}
	for _, tc := range cases {
		svc, err := LoadServiceFile(tc.path, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, isRouter := svc.(*Router); isRouter != tc.router {
			t.Fatalf("%s: router=%v, want %v", tc.name, isRouter, tc.router)
		}
		got := queryAll(t, svc.NewQuerier(), st)
		for k, w := range want {
			if !reflect.DeepEqual(got[k], w) {
				t.Fatalf("%s: %s = %#v, want %#v", tc.name, k, got[k], w)
			}
		}
	}

	// A legacy flat snapshot also shards directly — the v1-through-sharding
	// path — without mutating the flat receiver.
	flat := st.FlatCopy()
	shards, err := flat.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Compressed() {
		t.Fatal("sharding compressed the flat receiver")
	}
	r, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, r.NewSession(), st)
	for k, w := range want {
		if !reflect.DeepEqual(got[k], w) {
			t.Fatalf("sharded v1: %s = %#v, want %#v", k, got[k], w)
		}
	}
}

// TestManifestCodec covers the codec's rejection paths beyond what the fuzz
// harness explores structurally.
func TestManifestCodec(t *testing.T) {
	good := &Manifest{
		NumShards: 2, TotalDocs: 10, VocabSize: 7, Route: RouteMod,
		Shards: []ShardInfo{{File: "a.s00", Docs: 5, Postings: 30}, {File: "a.s01", Docs: 5, Postings: 31}},
	}
	data, err := good.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(good, back) {
		t.Fatalf("round trip: %#v != %#v", back, good)
	}

	// The ID high-water mark alone round-trips too (and forces v2).
	marked := &Manifest{
		NumShards: 1, TotalDocs: 5, VocabSize: 7, Route: RouteMod,
		Shards: []ShardInfo{{File: "a.s00", Docs: 5, Postings: 30, NextDoc: 12}},
	}
	data, err = marked.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(manifestMagicV2)]) != manifestMagicV2 {
		t.Fatalf("marked manifest magic %q", data[:len(manifestMagicV2)])
	}
	back, err = DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(marked, back) {
		t.Fatalf("marked round trip: %#v != %#v", back, marked)
	}

	bad := []*Manifest{
		{NumShards: 0, Route: RouteMod},
		{NumShards: 1, Route: "hash", Shards: []ShardInfo{{File: "x", Docs: 0}}},
		{NumShards: 1, Route: RouteMod, Shards: []ShardInfo{{File: "x", Docs: 0, NextDoc: -1}}},
		{NumShards: 1, Route: RouteMod, Shards: []ShardInfo{{File: "../x", Docs: 0}}},
		{NumShards: 1, Route: RouteMod, Shards: []ShardInfo{{File: "sub/x", Docs: 0}}},
		{NumShards: 2, Route: RouteMod, Shards: []ShardInfo{{File: "x", Docs: 0}, {File: "x", Docs: 0}}},
		{NumShards: 1, TotalDocs: 3, Route: RouteMod, Shards: []ShardInfo{{File: "x", Docs: 2}}},
		{NumShards: 2, Route: RouteMod, Shards: []ShardInfo{{File: "x", Docs: 0}}},
	}
	for i, m := range bad {
		if _, err := m.Encode(); err == nil {
			t.Fatalf("bad manifest %d encoded", i)
		}
	}
	for _, corrupt := range [][]byte{
		nil,
		[]byte("INSPSTORE2\n"),
		data[:len(data)-1],
		append(append([]byte{}, data...), 0),
	} {
		if _, err := DecodeManifest(corrupt); err == nil {
			t.Fatalf("corrupt manifest %q decoded", corrupt)
		}
	}
}
