package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"unsafe"

	"inspire/internal/core"
	"inspire/internal/postings"
	"inspire/internal/project"
	"inspire/internal/signature"
	"inspire/internal/simtime"
	"inspire/internal/storefile"
	"inspire/internal/tiles"
)

// INSPSTORE4 (internal/storefile) is the zero-copy serving layout: every
// bulk product — posting blobs and their skip directory, the term
// dictionary, signatures, projected points, cluster assignments and the tile
// pyramid — lives as a page-aligned section addressed straight out of the
// mapped file. Loading a v4 store costs one gob decode of a small metadata
// section; everything else is faulted in by the kernel on first touch and
// stays evictable, so cold start is milliseconds where the legacy gob
// formats pay a full-heap decode, and replicas mapping the same file share
// physical pages.
const (
	secMeta           = "meta"
	secTermBlob       = "termblob"
	secTermOffs       = "termoffs"
	secTermSort       = "termsort"
	secDF             = "df"
	secPostDoc        = "postdoc"
	secPostFreq       = "postfreq"
	secPostTermDoc    = "posttermdoc"
	secPostTermFreq   = "posttermfreq"
	secPostTermBlk    = "posttermblk"
	secPostBlkMax     = "postblkmax"
	secPostBlkDocEnd  = "postblkdocend"
	secPostBlkFreqEnd = "postblkfreqend"
	// Bitmap posting containers (absent on block-only stores; absent
	// sections decode as nil, so pre-bitmap v4 files load unchanged). The
	// word section is raw fixed-width uint64s in a page-aligned section, so
	// the mapped reader aliases it in place and the dense∧dense AND kernel
	// runs straight off the page cache.
	secPostTermBit    = "posttermbit"
	secPostBitBase    = "postbitbase"
	secPostBitWords   = "postbitwords"
	secSigDocs        = "sigdocs"
	secSigOffs        = "sigoffs"
	secSigBlob        = "sigblob"
	secPoints         = "points"
	secAssignDocs     = "assigndocs"
	secAssignClusters = "assignclusters"
	secTiles          = "tiles"
	// Document metadata (see meta.go): raw int64 vectors plus the interned
	// facet dictionary as blob+offsets. All absent on metadata-free stores,
	// so their files stay byte-identical to pre-metadata builds'.
	secMetaDocs    = "metadocs"
	secMetaTimes   = "metatimes"
	secMetaFacOffs = "metafacoffs"
	secMetaFacIDs  = "metafacids"
	secFacetBlob   = "facetblob"
	secFacetOffs   = "facetoffs"
)

// pointRecordSize is the fixed on-disk record of one projected point:
// doc int64, X float64, Y float64, all little-endian.
const pointRecordSize = 24

// hostLittleEndian gates in-place aliasing of numeric sections.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// storeMetaV4 is the gob-encoded metadata section: everything a Store
// carries that is not a bulk vector. The bulk vectors live as raw sections
// so they never pass through gob.
type storeMetaV4 struct {
	Model      *simtime.Model
	P          int
	TotalDocs  int64
	VocabSize  int64
	ShardCount int
	ShardIndex int
	GlobalDocs int64
	Holes      []int64
	Prefix     []int64
	SigM       int
	Proj       *signature.Projection
	Planar     *project.Planar
	TileBox    *tiles.Rect
	K          int
	Themes     []core.Theme
}

// saveV4 writes the INSPSTORE4 layout. The store must carry the compressed
// posting layout; flat stores persist as legacy INSPSTORE1.
func (st *Store) saveV4(w io.Writer) error {
	if st.Posts == nil {
		return fmt.Errorf("serve: save v4: store carries flat postings; compress first")
	}
	V := st.VocabSize

	var metaBuf bytes.Buffer
	meta := storeMetaV4{
		Model: st.Model, P: st.P,
		TotalDocs: st.TotalDocs, VocabSize: V,
		ShardCount: st.ShardCount, ShardIndex: st.ShardIndex, GlobalDocs: st.GlobalDocs,
		Holes: st.Holes, Prefix: st.Prefix,
		SigM: st.SigM, Proj: st.Proj, Planar: st.Planar, TileBox: st.TileBox,
		K: st.K, Themes: st.Themes,
	}
	if err := gob.NewEncoder(&metaBuf).Encode(&meta); err != nil {
		return fmt.Errorf("serve: save v4 meta: %w", err)
	}

	// Term dictionary: concatenated bytes + offsets, plus the sorted
	// permutation a mapped store binary-searches instead of a heap map.
	termOffs := make([]int64, V+1)
	var blobLen int
	for _, t := range st.TermList {
		blobLen += len(t)
	}
	termBlob := make([]byte, 0, blobLen)
	for i, t := range st.TermList {
		termOffs[i] = int64(len(termBlob))
		termBlob = append(termBlob, t...)
	}
	termOffs[V] = int64(len(termBlob))
	termSort := make([]int64, V)
	for i := range termSort {
		termSort[i] = int64(i)
	}
	sort.Slice(termSort, func(a, b int) bool {
		return st.TermList[termSort[a]] < st.TermList[termSort[b]]
	})

	// Signatures: doc IDs, per-doc offsets in float units (equal adjacent
	// offsets mean a null signature), and the flat vector blob.
	sigOffs := make([]int64, len(st.SigDocs)+1)
	var nVecs int
	for i, vec := range st.SigVecs {
		sigOffs[i] = int64(nVecs)
		if vec != nil {
			if len(vec) != st.SigM {
				return fmt.Errorf("serve: save v4: signature %d has %d dims, want %d", i, len(vec), st.SigM)
			}
			nVecs += len(vec)
		}
	}
	sigOffs[len(st.SigDocs)] = int64(nVecs)
	sigBlob := make([]byte, 0, 8*nVecs)
	for _, vec := range st.SigVecs {
		sigBlob = storefile.AppendFloat64s(sigBlob, vec)
	}

	pts := make([]byte, 0, pointRecordSize*len(st.Points))
	for _, p := range st.Points {
		pts = binary.LittleEndian.AppendUint64(pts, uint64(p.Doc))
		pts = binary.LittleEndian.AppendUint64(pts, math.Float64bits(p.X))
		pts = binary.LittleEndian.AppendUint64(pts, math.Float64bits(p.Y))
	}

	secs := []storefile.Section{
		{Name: secMeta, Data: metaBuf.Bytes()},
		{Name: secTermBlob, Data: termBlob},
		{Name: secTermOffs, Data: storefile.AppendInt64s(nil, termOffs)},
		{Name: secTermSort, Data: storefile.AppendInt64s(nil, termSort)},
		{Name: secDF, Data: storefile.AppendInt64s(nil, st.DF)},
		{Name: secPostDoc, Data: st.Posts.DocBlob},
		{Name: secPostFreq, Data: st.Posts.FreqBlob},
		{Name: secPostTermDoc, Data: storefile.AppendInt64s(nil, st.Posts.TermDoc)},
		{Name: secPostTermFreq, Data: storefile.AppendInt64s(nil, st.Posts.TermFreq)},
		{Name: secPostTermBlk, Data: storefile.AppendInt64s(nil, st.Posts.TermBlk)},
		{Name: secPostBlkMax, Data: storefile.AppendInt64s(nil, st.Posts.BlkMax)},
		{Name: secPostBlkDocEnd, Data: storefile.AppendInt64s(nil, st.Posts.BlkDocEnd)},
		{Name: secPostBlkFreqEnd, Data: storefile.AppendInt64s(nil, st.Posts.BlkFreqEnd)},
		{Name: secSigDocs, Data: storefile.AppendInt64s(nil, st.SigDocs)},
		{Name: secSigOffs, Data: storefile.AppendInt64s(nil, sigOffs)},
		{Name: secSigBlob, Data: sigBlob},
		{Name: secPoints, Data: pts},
		{Name: secAssignDocs, Data: storefile.AppendInt64s(nil, st.AssignDocs)},
		{Name: secAssignClusters, Data: storefile.AppendInt64s(nil, st.AssignClusters)},
	}
	// Bitmap containers ride along only when some term uses one, keeping
	// block-only files byte-compatible with pre-bitmap readers.
	if st.Posts.HasBitmaps() {
		secs = append(secs,
			storefile.Section{Name: secPostTermBit, Data: storefile.AppendInt64s(nil, st.Posts.TermBit)},
			storefile.Section{Name: secPostBitBase, Data: storefile.AppendInt64s(nil, st.Posts.BitBase)},
			storefile.Section{Name: secPostBitWords, Data: storefile.AppendUint64s(nil, st.Posts.BitWords)},
		)
	}
	secs = appendMetaSections(secs, st.MetaDocs, st.MetaTimes, st.MetaFacetOffs, st.MetaFacetIDs, st.FacetDict)
	// Embed the base tile pyramid so a mapped load serves spatial queries
	// without a rebuild. A store whose points cannot pyramid (duplicates,
	// non-finite coordinates) persists without the section and builds
	// lazily, exactly like a legacy store without a sidecar.
	if pyr, err := st.BaseTilePyramid(Config{}); err == nil {
		secs = append(secs, storefile.Section{Name: secTiles, Data: pyr.Encode()})
	}
	return storefile.Write(w, secs)
}

// decodeStoreV4 builds a serving store over a decoded INSPSTORE4 file. Bulk
// vectors alias the file's sections wherever the host allows (little-endian,
// aligned — always true for a mapped file); anything that must be copied is
// charged to the store's resident accountant as permanently pinned heap.
func decodeStoreV4(f *storefile.File) (*Store, error) {
	res := &storefile.Resident{}
	var pinned int64
	bad := func(name string, format string, args ...any) error {
		return fmt.Errorf("serve: load store v4: section %s: %s", name, fmt.Sprintf(format, args...))
	}
	sec := func(name string) []byte {
		b, _ := f.Section(name)
		return b
	}
	ints := func(name string) ([]int64, error) {
		v, copied, err := storefile.Int64s(sec(name))
		if err != nil {
			return nil, bad(name, "%v", err)
		}
		if copied {
			pinned += int64(8 * len(v))
		}
		return v, nil
	}

	metaSec, ok := f.Section(secMeta)
	if !ok {
		return nil, bad(secMeta, "missing")
	}
	var meta storeMetaV4
	if err := gob.NewDecoder(bytes.NewReader(metaSec)).Decode(&meta); err != nil {
		return nil, bad(secMeta, "%v", err)
	}
	V := meta.VocabSize
	if V < 0 {
		return nil, bad(secMeta, "negative vocabulary size %d", V)
	}

	st := &Store{
		Model: meta.Model, P: meta.P,
		TotalDocs: meta.TotalDocs, VocabSize: V,
		ShardCount: meta.ShardCount, ShardIndex: meta.ShardIndex, GlobalDocs: meta.GlobalDocs,
		Holes: meta.Holes, Prefix: meta.Prefix,
		SigM: meta.SigM, Proj: meta.Proj, Planar: meta.Planar, TileBox: meta.TileBox,
		K: meta.K, Themes: meta.Themes,
	}

	// Term dictionary: strings alias the mapped blob, the sorted
	// permutation replaces the heap map (see lookupTerm).
	termOffs, err := ints(secTermOffs)
	if err != nil {
		return nil, err
	}
	if int64(len(termOffs)) != V+1 {
		return nil, bad(secTermOffs, "%d offsets for %d terms", len(termOffs), V)
	}
	termBlob := sec(secTermBlob)
	st.TermList = make([]string, V)
	pinned += 16 * V // string headers
	for i := int64(0); i < V; i++ {
		lo, hi := termOffs[i], termOffs[i+1]
		if lo < 0 || hi < lo || hi > int64(len(termBlob)) {
			return nil, bad(secTermOffs, "term %d bounds [%d,%d) exceed blob %d", i, lo, hi, len(termBlob))
		}
		st.TermList[i] = storefile.String(termBlob[lo:hi])
	}
	if V > 0 && termOffs[V] != int64(len(termBlob)) {
		return nil, bad(secTermBlob, "%d trailing bytes", int64(len(termBlob))-termOffs[V])
	}
	termSort, err := ints(secTermSort)
	if err != nil {
		return nil, err
	}
	if int64(len(termSort)) != V {
		return nil, bad(secTermSort, "%d entries for %d terms", len(termSort), V)
	}
	for i, id := range termSort {
		if id < 0 || id >= V {
			return nil, bad(secTermSort, "entry %d out of range: %d", i, id)
		}
		if i > 0 && st.TermList[termSort[i-1]] >= st.TermList[id] {
			return nil, bad(secTermSort, "not a strictly sorted permutation at %d", i)
		}
	}
	st.termSorted = termSort

	if st.DF, err = ints(secDF); err != nil {
		return nil, err
	}

	// Postings: blobs and directory vectors straight off the sections.
	// Posts.Count shares the DF slice — the validate invariant by
	// construction.
	posts := &postings.Store{NumTerms: V, Count: st.DF}
	posts.DocBlob = sec(secPostDoc)
	posts.FreqBlob = sec(secPostFreq)
	if posts.TermDoc, err = ints(secPostTermDoc); err != nil {
		return nil, err
	}
	if posts.TermFreq, err = ints(secPostTermFreq); err != nil {
		return nil, err
	}
	if posts.TermBlk, err = ints(secPostTermBlk); err != nil {
		return nil, err
	}
	if posts.BlkMax, err = ints(secPostBlkMax); err != nil {
		return nil, err
	}
	if posts.BlkDocEnd, err = ints(secPostBlkDocEnd); err != nil {
		return nil, err
	}
	if posts.BlkFreqEnd, err = ints(secPostBlkFreqEnd); err != nil {
		return nil, err
	}
	// Bitmap containers: absent sections decode as nil, which is exactly the
	// block-only representation. On a mapped little-endian host the word
	// array below is an alias of the file — the dense∧dense kernel then runs
	// in place over the page cache.
	if posts.TermBit, err = ints(secPostTermBit); err != nil {
		return nil, err
	}
	if posts.BitBase, err = ints(secPostBitBase); err != nil {
		return nil, err
	}
	bitWords, bitCopied, err := storefile.Uint64s(sec(secPostBitWords))
	if err != nil {
		return nil, bad(secPostBitWords, "%v", err)
	}
	if bitCopied {
		pinned += int64(8 * len(bitWords))
	}
	posts.BitWords = bitWords
	st.Posts = posts

	// Signatures: vectors are subslices of one flat float section.
	if st.SigDocs, err = ints(secSigDocs); err != nil {
		return nil, err
	}
	sigOffs, err := ints(secSigOffs)
	if err != nil {
		return nil, err
	}
	sigFloats, copied, err := storefile.Float64s(sec(secSigBlob))
	if err != nil {
		return nil, bad(secSigBlob, "%v", err)
	}
	if copied {
		pinned += int64(8 * len(sigFloats))
	}
	N := len(st.SigDocs)
	if N > 0 || len(sigOffs) > 1 {
		if len(sigOffs) != N+1 {
			return nil, bad(secSigOffs, "%d offsets for %d signatures", len(sigOffs), N)
		}
	}
	if N > 0 {
		if sigOffs[0] != 0 || sigOffs[N] != int64(len(sigFloats)) {
			return nil, bad(secSigOffs, "offsets [%d,%d] disagree with blob %d", sigOffs[0], sigOffs[N], len(sigFloats))
		}
		st.SigVecs = make([][]float64, N)
		pinned += int64(24 * N) // slice headers
		for i := 0; i < N; i++ {
			lo, hi := sigOffs[i], sigOffs[i+1]
			switch {
			case hi == lo:
				// null signature
			case hi-lo == int64(st.SigM) && hi <= int64(len(sigFloats)):
				st.SigVecs[i] = sigFloats[lo:hi:hi]
			default:
				return nil, bad(secSigOffs, "signature %d spans [%d,%d) for dimensionality %d", i, lo, hi, st.SigM)
			}
		}
	} else if len(sigFloats) > 0 {
		return nil, bad(secSigBlob, "%d floats with no signatures", len(sigFloats))
	}

	// Projected points: fixed 24-byte records, aliased in place as
	// project.Point when the host layout matches (it does on every
	// little-endian 64-bit platform).
	ptsSec := sec(secPoints)
	if len(ptsSec)%pointRecordSize != 0 {
		return nil, bad(secPoints, "length %d not a multiple of %d", len(ptsSec), pointRecordSize)
	}
	if n := len(ptsSec) / pointRecordSize; n > 0 {
		if hostLittleEndian && unsafe.Sizeof(project.Point{}) == pointRecordSize &&
			uintptr(unsafe.Pointer(&ptsSec[0]))%8 == 0 {
			st.Points = unsafe.Slice((*project.Point)(unsafe.Pointer(&ptsSec[0])), n)
		} else {
			st.Points = make([]project.Point, n)
			pinned += int64(pointRecordSize * n)
			for i := range st.Points {
				rec := ptsSec[i*pointRecordSize:]
				st.Points[i] = project.Point{
					Doc: int64(binary.LittleEndian.Uint64(rec)),
					X:   math.Float64frombits(binary.LittleEndian.Uint64(rec[8:])),
					Y:   math.Float64frombits(binary.LittleEndian.Uint64(rec[16:])),
				}
			}
		}
	}

	if st.AssignDocs, err = ints(secAssignDocs); err != nil {
		return nil, err
	}
	if st.AssignClusters, err = ints(secAssignClusters); err != nil {
		return nil, err
	}

	// Document metadata: int64 vectors and dictionary strings aliased off the
	// mapped sections; absent on metadata-free files.
	var metaPinned int64
	if st.MetaDocs, st.MetaTimes, st.MetaFacetOffs, st.MetaFacetIDs, st.FacetDict, metaPinned, err = decodeMetaSections(f); err != nil {
		return nil, err
	}
	pinned += metaPinned

	if err := st.validate(); err != nil {
		return nil, err
	}
	if st.TileBox == nil && len(st.Points) > 0 {
		st.TileBox = pointBounds(st.Points)
	}

	// The embedded tile pyramid decodes lazily on the first spatial query
	// (see sidecarLocked); keeping it as raw mapped bytes costs nothing at
	// load.
	st.live.tileRaw = sec(secTiles)

	if f.Mapped() {
		res.AddMapped(f.Size())
	} else {
		// Heap-loaded v4 (-no-mmap): the whole buffer is resident.
		res.Pin(f.Size())
	}
	res.Pin(pinned)
	st.backing = f
	st.res = res
	return st, nil
}

// lookupTerm resolves an already-normalized term to its dense ID: through
// the heap map when the store has one, or by binary search over the mapped
// sorted permutation on a v4 store — no per-term heap at all.
func (st *Store) lookupTerm(norm string) (int64, bool) {
	if st.Terms != nil {
		id, ok := st.Terms[norm]
		return id, ok
	}
	ts := st.termSorted
	i := sort.Search(len(ts), func(i int) bool { return st.TermList[ts[i]] >= norm })
	if i < len(ts) && st.TermList[ts[i]] == norm {
		return ts[i], true
	}
	return 0, false
}

// Mapped reports whether the store serves from a live file mapping rather
// than heap-resident products.
func (st *Store) Mapped() bool {
	return st.backing != nil && st.backing.Mapped()
}

// ResidentStats snapshots the store's resident-set accountant: bytes pinned
// on heap against the budget, bytes left evictable in the mapping, and how
// many cache pins the budget refused. ok is false for heap-resident legacy
// stores, which have no accountant.
func (st *Store) ResidentStats() (stats storefile.ResidentStats, ok bool) {
	if st.res == nil {
		return storefile.ResidentStats{}, false
	}
	return st.res.Stats(), true
}

// DescribeFormat names the persisted layout this store was loaded from (or
// would be saved as), for operator-facing logs: the format version plus how
// its products are resident.
func (st *Store) DescribeFormat() string {
	switch {
	case st.backing != nil && st.backing.Mapped():
		return "INSPSTORE4, memory-mapped"
	case st.backing != nil:
		return "INSPSTORE4, heap-resident"
	case !st.Compressed():
		return "INSPSTORE1, flat postings"
	case len(st.Holes) > 0:
		return fmt.Sprintf("INSPSTORE3, block-compressed postings, %d deletion holes", len(st.Holes))
	default:
		return "INSPSTORE2, block-compressed postings"
	}
}
