package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// WorkloadConfig describes a replayable mixed analyst workload: N concurrent
// sessions each issuing a deterministic stream of interactions. Term choice
// is skewed toward the head of the query vocabulary (analysts revisit the
// same themes), which is what gives caches and coalescing their traction.
type WorkloadConfig struct {
	// Sessions is the number of concurrent sessions. Default 8.
	Sessions int
	// OpsPerSession is the interaction count per session. Default 50.
	OpsPerSession int
	// Seed fixes the workload; each session derives its own stream from it.
	Seed int64
	// Terms is the query vocabulary. Empty selects the service's 48 top-DF
	// terms.
	Terms []string
	// Docs are similarity-search targets. Empty selects 16 sampled
	// documents with non-null signatures.
	Docs []int64
	// SimK is the similarity top-K. Default 5.
	SimK int
}

func (cfg WorkloadConfig) withDefaults(svc Service) WorkloadConfig {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.OpsPerSession <= 0 {
		cfg.OpsPerSession = 50
	}
	if cfg.SimK <= 0 {
		cfg.SimK = 5
	}
	if len(cfg.Terms) == 0 {
		cfg.Terms = svc.TopTerms(context.Background(), 48)
	}
	if len(cfg.Docs) == 0 {
		cfg.Docs = svc.SampleDocs(context.Background(), 16)
	}
	return cfg
}

// WorkloadReport aggregates one replay.
type WorkloadReport struct {
	Sessions int
	Ops      int64

	WallSeconds float64
	QPS         float64 // sustained host queries/sec across all sessions

	// VirtualQPS is the modeled sustained throughput: total interactions
	// over the mean session's virtual seconds — sessions run concurrently in
	// virtual time, each as its own sequential stream, so with balanced
	// streams the service completes Sessions interactions per mean
	// interaction latency. (The busiest session is not used: which session
	// draws the cold similarity scans is interleaving luck, and one 5-second
	// outlier would swamp the steady-state number.)
	VirtualQPS float64

	MeanVirtualMS float64 // mean per-interaction virtual latency
	P50VirtualMS  float64 // median per-interaction virtual latency
	P95VirtualMS  float64 // body-tail per-interaction virtual latency
	P99VirtualMS  float64 // tail per-interaction virtual latency
	MaxVirtualMS  float64 // worst single interaction (a cold similarity scan)

	OpCounts map[string]int64
	Stats    Stats // service counters accumulated during the replay
}

// String renders the report as the serving scoreboard.
func (r *WorkloadReport) String() string {
	s := fmt.Sprintf(
		"%d sessions, %d interactions in %.2fs host time (%.0f queries/sec)\n"+
			"modeled throughput %.0f queries/sec; per-interaction virtual latency: mean %.3f ms, p50 %.3f ms, p99 %.3f ms, max %.3f ms\n"+
			"posting cache: %.1f%% hit rate (%d hits + %d coalesced / %d misses, %d evictions, %d remote gets)\n"+
			"block skipping: %d partial fetches (%d blocks decoded, %d ruled out)\n"+
			"similarity cache: %.1f%% hit rate (%d hits / %d misses)",
		r.Sessions, r.Ops, r.WallSeconds, r.QPS,
		r.VirtualQPS, r.MeanVirtualMS, r.P50VirtualMS, r.P99VirtualMS, r.MaxVirtualMS,
		100*r.Stats.PostingHitRate(), r.Stats.PostingHits, r.Stats.Coalesced,
		r.Stats.PostingMisses, r.Stats.PostingEvictions, r.Stats.RemoteGets,
		r.Stats.PartialFetches, r.Stats.BlocksDecoded, r.Stats.BlocksSkipped,
		100*r.Stats.SimHitRate(), r.Stats.SimHits, r.Stats.SimMisses)
	if r.Stats.TileHits+r.Stats.TileMisses+r.Stats.TilesPruned > 0 {
		s += fmt.Sprintf("\ntiles: %d served from the LRU, %d pyramid reads, %d subtrees pruned by spatial walks (%.1f ms maintenance)",
			r.Stats.TileHits, r.Stats.TileMisses, r.Stats.TilesPruned, r.Stats.TileMaintVirtMS)
	}
	if r.Stats.FanOuts > 0 || r.Stats.ShortCircuits > 0 {
		s += fmt.Sprintf("\nscatter-gather: %d fan-outs into %d shard queries (%d pruned by DF summaries, %d short-circuited at the router)",
			r.Stats.FanOuts, r.Stats.ShardQueries, r.Stats.ShardsPruned, r.Stats.ShortCircuits)
	}
	if r.Stats.Adds > 0 || r.Stats.Deletes > 0 {
		s += fmt.Sprintf("\nlive ingest: %d adds, %d deletes, %d seals, %d compactions, %d segment fetches, %d sim refreshes",
			r.Stats.Adds, r.Stats.Deletes, r.Stats.Seals, r.Stats.Compactions,
			r.Stats.SegmentFetches, r.Stats.SimRefreshes)
	}
	return s
}

// pickSkewed picks an index in [0, n) biased toward 0 — a Zipf-like analyst
// revisiting head terms.
func pickSkewed(rng *rand.Rand, n int) int {
	i := int(float64(n) * math.Pow(rng.Float64(), 2.5))
	if i >= n {
		i = n - 1
	}
	return i
}

// Replay runs the workload against a Service — a single-store Server or a
// sharded Router, behind the same session API — and aggregates the outcome.
// The interaction streams are deterministic in cfg.Seed; only host timing and
// the interleaving-dependent cache/coalescing counters vary between runs.
func Replay(svc Service, cfg WorkloadConfig) (*WorkloadReport, error) {
	cfg = cfg.withDefaults(svc)
	if len(cfg.Terms) == 0 {
		return nil, fmt.Errorf("serve: workload has no query terms")
	}
	if len(cfg.Docs) == 0 {
		return nil, fmt.Errorf("serve: workload has no similarity targets")
	}
	before := svc.Stats()
	themes := svc.NumThemes()

	var (
		mu       sync.Mutex
		opCounts = make(map[string]int64)
		firstErr error
		virtSum  float64
		virtMax  float64
		totalOps int64
		allLats  []float64 // every interaction's virtual ms
	)
	start := time.Now()
	var wg sync.WaitGroup
	for sid := 0; sid < cfg.Sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed<<16 + int64(sid)))
			ctx := context.Background()
			sess := svc.NewQuerier()
			local := make(map[string]int64)
			lats := make([]float64, 0, cfg.OpsPerSession)
			term := func() string { return cfg.Terms[pickSkewed(rng, len(cfg.Terms))] }
			for op := 0; op < cfg.OpsPerSession; op++ {
				switch p := rng.Float64(); {
				case p < 0.40:
					sess.TermDocs(ctx, term())
					local["term"]++
				case p < 0.55:
					sess.And(ctx, term(), term())
					local["and"]++
				case p < 0.70:
					sess.Or(ctx, term(), term())
					local["or"]++
				case p < 0.85:
					doc := cfg.Docs[pickSkewed(rng, len(cfg.Docs))]
					if _, err := sess.Similar(ctx, doc, cfg.SimK); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					local["similar"]++
				case p < 0.93:
					sess.ThemeDocs(ctx, rng.Intn(max(1, themes)))
					local["theme"]++
				default:
					sess.Near(ctx, rng.Float64()-0.5, rng.Float64()-0.5, 0.2)
					local["near"]++
				}
				lats = append(lats, sess.Stats().LastMS)
			}
			st := sess.Stats()
			mu.Lock()
			for k, v := range local {
				opCounts[k] += v
			}
			virtSum += st.VirtualSeconds
			if st.MaxMS/1000 > virtMax {
				virtMax = st.MaxMS / 1000
			}
			totalOps += st.Ops
			allLats = append(allLats, lats...)
			mu.Unlock()
		}(sid)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return nil, firstErr
	}

	after := svc.Stats()
	rep := &WorkloadReport{
		Sessions:    cfg.Sessions,
		Ops:         totalOps,
		WallSeconds: wall,
		OpCounts:    opCounts,
		Stats:       diffStats(before, after),
	}
	if wall > 0 {
		rep.QPS = float64(totalOps) / wall
	}
	if virtSum > 0 {
		rep.VirtualQPS = float64(totalOps) / (virtSum / float64(cfg.Sessions))
	}
	if totalOps > 0 {
		rep.MeanVirtualMS = virtSum / float64(totalOps) * 1000
	}
	sort.Float64s(allLats)
	rep.P50VirtualMS = percentile(allLats, 0.50)
	rep.P95VirtualMS = percentile(allLats, 0.95)
	rep.P99VirtualMS = percentile(allLats, 0.99)
	rep.MaxVirtualMS = virtMax * 1000
	return rep, nil
}

// percentile reads the p-quantile (nearest-rank) of an ascending-sorted
// slice; 0 when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// diffStats subtracts counter snapshots so repeated replays on one service
// report only their own traffic.
func diffStats(before, after Stats) Stats {
	return Stats{
		Queries:          after.Queries - before.Queries,
		PostingHits:      after.PostingHits - before.PostingHits,
		PostingMisses:    after.PostingMisses - before.PostingMisses,
		PostingEvictions: after.PostingEvictions - before.PostingEvictions,
		Coalesced:        after.Coalesced - before.Coalesced,
		RemoteGets:       after.RemoteGets - before.RemoteGets,
		PartialFetches:   after.PartialFetches - before.PartialFetches,
		BlocksDecoded:    after.BlocksDecoded - before.BlocksDecoded,
		BlocksSkipped:    after.BlocksSkipped - before.BlocksSkipped,
		SegmentFetches:   after.SegmentFetches - before.SegmentFetches,
		SimHits:          after.SimHits - before.SimHits,
		SimMisses:        after.SimMisses - before.SimMisses,
		SimRefreshes:     after.SimRefreshes - before.SimRefreshes,
		SimEvictions:     after.SimEvictions - before.SimEvictions,
		TileHits:         after.TileHits - before.TileHits,
		TileMisses:       after.TileMisses - before.TileMisses,
		TilesPruned:      after.TilesPruned - before.TilesPruned,
		CompactVirtMS:    after.CompactVirtMS - before.CompactVirtMS,
		TileMaintVirtMS:  after.TileMaintVirtMS - before.TileMaintVirtMS,
		FanOuts:          after.FanOuts - before.FanOuts,
		ShardQueries:     after.ShardQueries - before.ShardQueries,
		ShardsPruned:     after.ShardsPruned - before.ShardsPruned,
		ShortCircuits:    after.ShortCircuits - before.ShortCircuits,
		Adds:             after.Adds - before.Adds,
		Deletes:          after.Deletes - before.Deletes,
		Seals:            after.Seals - before.Seals,
		Compactions:      after.Compactions - before.Compactions,
		Hedges:           after.Hedges - before.Hedges,
		HedgeWins:        after.HedgeWins - before.HedgeWins,
		Failovers:        after.Failovers - before.Failovers,
		ReplicaCatchUps:  after.ReplicaCatchUps - before.ReplicaCatchUps,
		CatchUpSegments:  after.CatchUpSegments - before.CatchUpSegments,
		CatchUpBytes:     after.CatchUpBytes - before.CatchUpBytes,
	}
}

// OpMix renders the op counts deterministically, e.g. "and=12 near=3 term=25".
func (r *WorkloadReport) OpMix() string {
	names := make([]string, 0, len(r.OpCounts))
	for k := range r.OpCounts {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for i, k := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", k, r.OpCounts[k])
	}
	return out
}
