package serve

import (
	"context"
	"testing"
)

// Allocation pins for the serving hot paths the wall-clock profiles
// surfaced. Each bound is the measured steady-state count with a little
// slack removed from nothing — before the scratch-buffer rework the same
// paths measured 10 (Session.And), 32 (RouterSession.And), 31
// (RouterSession.Tile) and 2 (mergeDocs) allocations per warm call, so a
// regression past these bounds means a reuse path silently fell off.

// TestAndAllocSteady pins the single-store conjunction: with the posting
// cache warm, the only allocation left is the freshly merged result slice.
func TestAndAllocSteady(t *testing.T) {
	st := buildStoreT(t, 2)
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	want := sess.And(context.Background(), "apple", "banana")
	if len(want) != 2 {
		t.Fatalf("And(apple, banana) = %v", want)
	}
	sess.And(context.Background(), "apple", "banana") // second warm pass settles the scratch sizes
	got := testing.AllocsPerRun(200, func() { sess.And(context.Background(), "apple", "banana") })
	if got > 1 {
		t.Fatalf("warm Session.And allocates %v objects/op, want <= 1 (the result)", got)
	}
}

// TestMergeSortedAllocSteady pins the gather merge at one allocation — the
// output — for any shard count a router realistically fronts (the cursor
// vector lives on the stack up to 16 parts).
func TestMergeSortedAllocSteady(t *testing.T) {
	parts := [][]int64{{1, 4, 9}, {2, 5}, {3, 6, 8}, {7}}
	got := testing.AllocsPerRun(200, func() { mergeDocs(parts) })
	if got > 1 {
		t.Fatalf("mergeDocs allocates %v objects/op, want <= 1 (the output)", got)
	}
}

// TestRouterAndAllocSteady pins the routed conjunction. The scatter's
// per-shard goroutines are inherent (three live shards cost ~2 objects
// each), each shard's sub-And contributes its one result, the gather merge
// one more, and the replica-aware scatter one typed results slice (the
// per-shard cost/bytes vectors ride session scratch; the []T gather cannot
// — its element type changes per query kind). The bound allows exactly that
// and no rebuilt tables.
func TestRouterAndAllocSteady(t *testing.T) {
	st := buildStoreT(t, 2)
	shards, err := st.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs := r.NewSession()
	want := rs.And(context.Background(), "apple", "banana")
	if len(want) != 2 {
		t.Fatalf("routed And(apple, banana) = %v", want)
	}
	rs.And(context.Background(), "apple", "banana")
	got := testing.AllocsPerRun(200, func() { rs.And(context.Background(), "apple", "banana") })
	if got > 13 {
		t.Fatalf("warm RouterSession.And allocates %v objects/op, want <= 13 (was 32 before scratch reuse)", got)
	}
}

// TestRouterTileAllocSteady pins the routed tile gather: the merge buffer
// cycles through the pool, so what remains is the scatter goroutines, the
// replica scatter's typed parts slice, and the rendered copy the caller
// keeps.
func TestRouterTileAllocSteady(t *testing.T) {
	st := buildStoreT(t, 2)
	shards, err := st.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rs := r.NewSession()
	res, err := rs.Tile(context.Background(), 0, 0, 0)
	if err != nil || res.Docs == 0 {
		t.Fatalf("root tile = %+v, %v", res, err)
	}
	rs.Tile(context.Background(), 0, 0, 0)
	bound := float64(23 + poolAllocSlack)
	got := testing.AllocsPerRun(200, func() { rs.Tile(context.Background(), 0, 0, 0) })
	if got > bound {
		t.Fatalf("warm RouterSession.Tile allocates %v objects/op, want <= %v (was 31 before the merge pool)", got, bound)
	}
}
