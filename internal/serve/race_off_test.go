//go:build !race

package serve

// poolAllocSlack widens pool-backed allocation pins under the race
// detector only — see race_on_test.go. Without -race the pins are exact.
const poolAllocSlack = 0
