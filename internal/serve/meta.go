package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"inspire/internal/postings"
	"inspire/internal/storefile"
)

// Document metadata: an optional ingest timestamp and a set of categorical
// "key=value" facets per document, threaded through every query layer so an
// analyst can restrict any interaction — boolean retrieval, similarity,
// spatial tiles — to a time window or an attribute slice of the corpus.
//
// The base snapshot stores metadata as sparse sorted parallel vectors over
// document IDs, with facet strings interned into one dictionary (see the
// Store fields MetaDocs..FacetDict); sealed segments carry their rows as
// plain strings. A Filter compiles against a view once, and dense selections
// become packed bitmaps (postings.Bits) that the word-wise AND kernels
// consume directly.

// Facet bounds enforced at ingest, comfortably inside the tile codec's
// decode limits so every facet a store accepts round-trips the sidecar.
const (
	maxDocFacets = 64
	maxFacetLen  = 256
)

// Filter restricts a session's queries to documents matching every listed
// predicate. The zero Filter matches everything. Time bounds are inclusive
// [After, Before] on the ingest timestamp; a bound of 0 is open. A document
// with no timestamp (0) fails any time-bounded filter, and every facet
// listed must be present on the document. Semantics are exactly "post-filter
// the unfiltered answer": a filtered query returns the unfiltered result
// with non-matching documents removed.
type Filter struct {
	After  int64    `json:"after,omitempty"`
	Before int64    `json:"before,omitempty"`
	Facets []string `json:"facets,omitempty"`
}

// Empty reports whether the filter matches every document.
func (f Filter) Empty() bool {
	return f.After == 0 && f.Before == 0 && len(f.Facets) == 0
}

// timeOK applies the inclusive time window to an ingest timestamp.
func (f Filter) timeOK(ts int64) bool {
	if f.After == 0 && f.Before == 0 {
		return true
	}
	if ts == 0 {
		return false
	}
	if f.After != 0 && ts < f.After {
		return false
	}
	if f.Before != 0 && ts > f.Before {
		return false
	}
	return true
}

// normalized returns the filter with its facet list validated, sorted and
// deduplicated — the canonical form every serving path works with.
func (f Filter) normalized() (Filter, error) {
	facets, err := normalizeFacets(f.Facets)
	if err != nil {
		return Filter{}, err
	}
	f.Facets = facets
	return f, nil
}

// cacheKey canonically serializes the (normalized) filter for cache keying.
func (f Filter) cacheKey() string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatInt(f.After, 10))
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatInt(f.Before, 10))
	for _, s := range f.Facets {
		sb.WriteByte('|')
		sb.WriteString(s)
	}
	return sb.String()
}

// normalizeFacets validates a facet list ("key=value", bounded) and returns
// it sorted and deduplicated, nil when empty — the canonical row form shared
// by ingest and filters.
func normalizeFacets(facets []string) ([]string, error) {
	if len(facets) == 0 {
		return nil, nil
	}
	if len(facets) > maxDocFacets {
		return nil, fmt.Errorf("serve: %d facets (max %d)", len(facets), maxDocFacets)
	}
	out := make([]string, len(facets))
	copy(out, facets)
	for _, f := range out {
		if len(f) > maxFacetLen {
			return nil, fmt.Errorf("serve: facet %q exceeds %d bytes", f[:32]+"…", maxFacetLen)
		}
		if eq := strings.IndexByte(f, '='); eq <= 0 {
			return nil, fmt.Errorf("serve: facet %q is not key=value", f)
		}
	}
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w], nil
}

// facetSubset reports whether every facet in want appears in have; both are
// sorted ascending.
func facetSubset(want, have []string) bool {
	j := 0
	for _, w := range want {
		for j < len(have) && have[j] < w {
			j++
		}
		if j >= len(have) || have[j] != w {
			return false
		}
	}
	return true
}

// metaPred is a Filter compiled against one view: the wanted facets resolved
// to base-dictionary IDs once, so matching a base row is a scan over small
// int64 rows with no string work. A wanted facet absent from the dictionary
// (baseIDs[i] == -1) can never match a base row.
type metaPred struct {
	f       Filter
	baseIDs []int64
}

func compilePred(b *baseView, f Filter) *metaPred {
	p := &metaPred{f: f}
	if len(f.Facets) > 0 {
		p.baseIDs = make([]int64, len(f.Facets))
		for i, s := range f.Facets {
			id, ok := b.facetIDs[s]
			if !ok {
				id = -1
			}
			p.baseIDs[i] = id
		}
	}
	return p
}

// matchBase tests base metadata row i. Rows hold at most maxDocFacets IDs,
// so membership is a linear scan.
func (p *metaPred) matchBase(b *baseView, i int) bool {
	if !p.f.timeOK(b.metaTimes[i]) {
		return false
	}
	if len(p.baseIDs) == 0 {
		return true
	}
	if len(b.metaFacetOffs) == 0 {
		return false
	}
	row := b.metaFacetIDs[b.metaFacetOffs[i]:b.metaFacetOffs[i+1]]
	for _, want := range p.baseIDs {
		if want < 0 {
			return false
		}
		found := false
		for _, id := range row {
			if id == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// matchMeta tests a raw (timestamp, sorted facet strings) pair — the segment
// row form, and the form for documents with no metadata at all (0, nil).
func (p *metaPred) matchMeta(ts int64, have []string) bool {
	if !p.f.timeOK(ts) {
		return false
	}
	return facetSubset(p.f.Facets, have)
}

// matchDoc resolves doc's metadata in the view and tests it. A document with
// no metadata row anywhere matches only the predicates a bare document can:
// no time bounds, no facets.
func (p *metaPred) matchDoc(v *view, doc int64) bool {
	if i := v.base.metaIndex(doc); i >= 0 {
		return p.matchBase(v.base, i)
	}
	for _, s := range v.segs {
		if ts, facets, ok := s.Meta(doc); ok {
			return p.matchMeta(ts, facets)
		}
	}
	return p.matchMeta(0, nil)
}

// filterSet is the materialized document set of one (view, filter) pair.
// Dense selections pack into a postings.Bits sharing the bitmap containers'
// word grid, so a filtered AND runs the same word-wise kernels as a dense
// posting intersection; sparse selections keep a sorted ID list and filter
// by merge-walk. Built once per (epoch, filter) and cached on the Server.
type filterSet struct {
	pred *metaPred
	bits *postings.Bits
	docs []int64 // sorted; nil when bits != nil
	n    int64   // member count
	// scanned is the number of metadata rows walked by the build — the
	// modeled cost of constructing the set.
	scanned int64
}

// filterDensity is the span-per-member threshold below which a filter set
// packs into a bitmap: at least one member per 64-ID word on average means
// the word-wise kernels beat a merge-walk.
const filterDensity = 64

// buildFilterSet enumerates the documents of v matching f, walking the base
// metadata vectors and every segment's rows once.
func buildFilterSet(v *view, f Filter) *filterSet {
	b := v.base
	pred := compilePred(b, f)
	fs := &filterSet{pred: pred}
	var docs []int64
	for i, doc := range b.metaDocs {
		if pred.matchBase(b, i) && b.containsDoc(doc) {
			docs = append(docs, doc)
		}
	}
	fs.scanned = int64(len(b.metaDocs))
	for _, s := range v.segs {
		for i, doc := range s.Docs {
			var ts int64
			var facets []string
			if s.Times != nil {
				ts = s.Times[i]
			}
			if s.Facets != nil {
				facets = s.Facets[i]
			}
			if pred.matchMeta(ts, facets) {
				docs = append(docs, doc)
			}
		}
		fs.scanned += int64(len(s.Docs))
	}
	sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
	fs.n = int64(len(docs))
	if n := int64(len(docs)); n > 0 {
		if span := docs[n-1] - docs[0] + 1; span/n < filterDensity {
			bits := postings.NewBits(docs[0], docs[n-1]+1)
			for _, d := range docs {
				bits.Set(d)
			}
			fs.bits = bits
			return fs
		}
	}
	fs.docs = docs
	return fs
}

// contains reports membership — one word probe for a dense set, a binary
// search for a sparse one.
func (fs *filterSet) contains(doc int64) bool {
	if fs.bits != nil {
		return fs.bits.Contains(doc)
	}
	i := sort.Search(len(fs.docs), func(i int) bool { return fs.docs[i] >= doc })
	return i < len(fs.docs) && fs.docs[i] == doc
}

// filterDocs filters an ascending candidate list in place, returning the
// kept prefix of docs' backing array.
func (fs *filterSet) filterDocs(docs []int64) []int64 {
	if len(docs) == 0 {
		return docs
	}
	if fs.bits != nil {
		out, _ := fs.bits.FilterInto(docs[:0], docs)
		return out
	}
	out := docs[:0]
	j := 0
	for _, d := range docs {
		for j < len(fs.docs) && fs.docs[j] < d {
			j++
		}
		if j < len(fs.docs) && fs.docs[j] == d {
			out = append(out, d)
		}
	}
	return out
}

// metaIndex returns doc's row in the base metadata vectors, -1 when absent.
func (b *baseView) metaIndex(doc int64) int {
	i := sort.Search(len(b.metaDocs), func(i int) bool { return b.metaDocs[i] >= doc })
	if i < len(b.metaDocs) && b.metaDocs[i] == doc {
		return i
	}
	return -1
}

// baseFacetsAt materializes base row i's facet IDs as dictionary strings —
// ascending by string, because rows are interned in string order.
func (b *baseView) baseFacetsAt(i int) []string {
	if len(b.metaFacetOffs) == 0 {
		return nil
	}
	row := b.metaFacetIDs[b.metaFacetOffs[i]:b.metaFacetOffs[i+1]]
	if len(row) == 0 {
		return nil
	}
	out := make([]string, len(row))
	for j, id := range row {
		out[j] = b.facetDict[id]
	}
	return out
}

// docMeta resolves doc's ingest metadata in the view — base row or segment
// row — as (timestamp, sorted facet strings); (0, nil) when the document has
// none. Tile-pyramid maintenance uses it to stamp entries.
func (v *view) docMeta(doc int64) (int64, []string) {
	if i := v.base.metaIndex(doc); i >= 0 {
		return v.base.metaTimes[i], v.base.baseFacetsAt(i)
	}
	for _, s := range v.segs {
		if ts, facets, ok := s.Meta(doc); ok {
			return ts, facets
		}
	}
	return 0, nil
}

// baseMetaOf resolves doc's metadata from the store's base vectors alone —
// the pre-view form BaseTilePyramid needs.
func (st *Store) baseMetaOf(doc int64) (int64, []string) {
	i := sort.Search(len(st.MetaDocs), func(i int) bool { return st.MetaDocs[i] >= doc })
	if i >= len(st.MetaDocs) || st.MetaDocs[i] != doc {
		return 0, nil
	}
	ts := st.MetaTimes[i]
	if len(st.MetaFacetOffs) == 0 {
		return ts, nil
	}
	row := st.MetaFacetIDs[st.MetaFacetOffs[i]:st.MetaFacetOffs[i+1]]
	if len(row) == 0 {
		return ts, nil
	}
	facets := make([]string, len(row))
	for j, id := range row {
		facets[j] = st.FacetDict[id]
	}
	return ts, facets
}

// facetInterner builds a facet dictionary incrementally, mapping sorted
// string rows to ID rows that stay ascending by dictionary string.
type facetInterner struct {
	dict []string
	ids  map[string]int64
}

func newFacetInterner(dict []string) *facetInterner {
	in := &facetInterner{dict: dict, ids: make(map[string]int64, len(dict))}
	for i, s := range dict {
		in.ids[s] = int64(i)
	}
	return in
}

// intern maps one sorted facet row to dictionary IDs, extending the
// dictionary with unseen strings. The ID row preserves the input (string)
// order, so converting back yields a sorted row.
func (in *facetInterner) intern(facets []string) []int64 {
	if len(facets) == 0 {
		return nil
	}
	row := make([]int64, len(facets))
	for i, s := range facets {
		id, ok := in.ids[s]
		if !ok {
			id = int64(len(in.dict))
			in.dict = append(in.dict, s)
			in.ids[s] = id
		}
		row[i] = id
	}
	return row
}

// metaTable is the base metadata vectors in transit: built by a fold
// (SetBaseMeta, Rebase) and assigned onto a Store wholesale.
type metaTable struct {
	docs, times []int64
	facetOffs   []int64
	facetIDs    []int64
	dict        []string
}

// buildMetaTable interns per-document rows (sorted by doc, facets
// normalized) into the sparse base form. Rows with zero time and no facets
// are dropped — absence of metadata is the canonical encoding of "none".
func buildMetaTable(docs, times []int64, facets [][]string) metaTable {
	var t metaTable
	in := newFacetInterner(nil)
	var ids []int64
	offs := []int64{0}
	hasFacets := false
	for i, doc := range docs {
		if times[i] == 0 && len(facets[i]) == 0 {
			continue
		}
		t.docs = append(t.docs, doc)
		t.times = append(t.times, times[i])
		row := in.intern(facets[i])
		ids = append(ids, row...)
		offs = append(offs, int64(len(ids)))
		if len(row) > 0 {
			hasFacets = true
		}
	}
	if hasFacets {
		t.facetOffs = offs
		t.facetIDs = ids
		t.dict = in.dict
	}
	return t
}

// install assigns the table onto the store's base fields.
func (t metaTable) install(st *Store) {
	st.MetaDocs = t.docs
	st.MetaTimes = t.times
	st.MetaFacetOffs = t.facetOffs
	st.MetaFacetIDs = t.facetIDs
	st.FacetDict = t.dict
}

// SetBaseMeta installs document metadata directly on the base snapshot —
// the bulk path for attaching timestamps and facets to an already-indexed
// corpus (benchmark fixtures, offline backfills). docs, times and facets are
// parallel; rows are validated and normalized exactly like ingest-time
// metadata. It rewrites the base layout, so like CompressPostings it refuses
// once live data exists.
func (st *Store) SetBaseMeta(docs []int64, times []int64, facets [][]string) error {
	if len(times) != len(docs) || len(facets) != len(docs) {
		return fmt.Errorf("serve: set base meta: %d docs, %d times, %d facet rows", len(docs), len(times), len(facets))
	}
	order := make([]int, len(docs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return docs[order[a]] < docs[order[b]] })
	sDocs := make([]int64, len(docs))
	sTimes := make([]int64, len(docs))
	sFacets := make([][]string, len(docs))
	for o, i := range order {
		doc := docs[i]
		if doc < 0 {
			return fmt.Errorf("serve: set base meta: negative doc ID %d", doc)
		}
		if o > 0 && sDocs[o-1] == doc {
			return fmt.Errorf("serve: set base meta: duplicate doc ID %d", doc)
		}
		norm, err := normalizeFacets(facets[i])
		if err != nil {
			return err
		}
		sDocs[o], sTimes[o], sFacets[o] = doc, times[i], norm
	}
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if st.hasLiveLocked() {
		return fmt.Errorf("serve: set base meta: store has live segments or tombstones; Rebase first")
	}
	buildMetaTable(sDocs, sTimes, sFacets).install(st)
	st.resetViewLocked()
	return nil
}

// validateMeta checks the structural invariants of the base metadata
// vectors; part of Store.validate.
func (st *Store) validateMeta() error {
	n := len(st.MetaDocs)
	if len(st.MetaTimes) != n {
		return fmt.Errorf("serve: store has %d metadata times for %d docs", len(st.MetaTimes), n)
	}
	for i, d := range st.MetaDocs {
		if d < 0 || (i > 0 && d <= st.MetaDocs[i-1]) {
			return fmt.Errorf("serve: store metadata docs not strictly ascending at %d", i)
		}
	}
	seen := make(map[string]bool, len(st.FacetDict))
	for i, s := range st.FacetDict {
		if s == "" {
			return fmt.Errorf("serve: store facet dictionary entry %d empty", i)
		}
		if seen[s] {
			return fmt.Errorf("serve: store facet dictionary entry %q duplicated", s)
		}
		seen[s] = true
	}
	offs := st.MetaFacetOffs
	if len(offs) == 0 {
		if len(st.MetaFacetIDs) > 0 || len(st.FacetDict) > 0 {
			return fmt.Errorf("serve: store facet vectors present without row offsets")
		}
		return nil
	}
	if len(offs) != n+1 {
		return fmt.Errorf("serve: store has %d facet offsets for %d metadata rows", len(offs), n)
	}
	if offs[0] != 0 || offs[n] != int64(len(st.MetaFacetIDs)) {
		return fmt.Errorf("serve: store facet offsets [%d,%d] disagree with %d IDs", offs[0], offs[n], len(st.MetaFacetIDs))
	}
	for i := 0; i < n; i++ {
		lo, hi := offs[i], offs[i+1]
		if hi < lo {
			return fmt.Errorf("serve: store facet offsets decrease at row %d", i)
		}
		if hi-lo > maxDocFacets {
			return fmt.Errorf("serve: store metadata row %d has %d facets (max %d)", i, hi-lo, maxDocFacets)
		}
		for j := lo; j < hi; j++ {
			id := st.MetaFacetIDs[j]
			if id < 0 || id >= int64(len(st.FacetDict)) {
				return fmt.Errorf("serve: store metadata row %d references facet %d of %d", i, id, len(st.FacetDict))
			}
			if j > lo && st.FacetDict[id] <= st.FacetDict[st.MetaFacetIDs[j-1]] {
				return fmt.Errorf("serve: store metadata row %d facets not ascending", i)
			}
		}
	}
	return nil
}

// appendMetaSections appends the INSPSTORE4 sections carrying the base
// metadata vectors. A store with no metadata appends nothing, keeping its
// file byte-identical to a pre-metadata build's.
func appendMetaSections(secs []storefile.Section, docs, times, offs, ids []int64, dict []string) []storefile.Section {
	if len(docs) == 0 {
		return secs
	}
	secs = append(secs,
		storefile.Section{Name: secMetaDocs, Data: storefile.AppendInt64s(nil, docs)},
		storefile.Section{Name: secMetaTimes, Data: storefile.AppendInt64s(nil, times)},
	)
	if len(offs) == 0 {
		return secs
	}
	var blobLen int
	for _, s := range dict {
		blobLen += len(s)
	}
	blob := make([]byte, 0, blobLen)
	facetOffs := make([]int64, len(dict)+1)
	for i, s := range dict {
		facetOffs[i] = int64(len(blob))
		blob = append(blob, s...)
	}
	facetOffs[len(dict)] = int64(len(blob))
	return append(secs,
		storefile.Section{Name: secMetaFacOffs, Data: storefile.AppendInt64s(nil, offs)},
		storefile.Section{Name: secMetaFacIDs, Data: storefile.AppendInt64s(nil, ids)},
		storefile.Section{Name: secFacetBlob, Data: blob},
		storefile.Section{Name: secFacetOffs, Data: storefile.AppendInt64s(nil, facetOffs)},
	)
}

// decodeMetaSections reads the metadata sections back, aliasing the int64
// vectors and dictionary strings into the (mapped) file wherever the host
// allows. pinned is the heap bytes any forced copies cost. Structural
// validation is validateMeta's, run by Store.validate afterwards; only what
// must hold to slice the blob safely is checked here.
func decodeMetaSections(f *storefile.File) (docs, times, offs, ids []int64, dict []string, pinned int64, err error) {
	sec := func(name string) []byte {
		b, _ := f.Section(name)
		return b
	}
	ints := func(name string) ([]int64, error) {
		v, copied, err := storefile.Int64s(sec(name))
		if err != nil {
			return nil, fmt.Errorf("serve: load store v4: section %s: %v", name, err)
		}
		if copied {
			pinned += int64(8 * len(v))
		}
		return v, nil
	}
	if docs, err = ints(secMetaDocs); err != nil {
		return
	}
	if times, err = ints(secMetaTimes); err != nil {
		return
	}
	if offs, err = ints(secMetaFacOffs); err != nil {
		return
	}
	if ids, err = ints(secMetaFacIDs); err != nil {
		return
	}
	var facetOffs []int64
	if facetOffs, err = ints(secFacetOffs); err != nil {
		return
	}
	blob := sec(secFacetBlob)
	if len(facetOffs) == 0 {
		if len(blob) > 0 {
			err = fmt.Errorf("serve: load store v4: section %s: blob without offsets", secFacetBlob)
		}
		return
	}
	nDict := len(facetOffs) - 1
	dict = make([]string, nDict)
	pinned += int64(16 * nDict)
	for i := 0; i < nDict; i++ {
		lo, hi := facetOffs[i], facetOffs[i+1]
		if lo < 0 || hi < lo || hi > int64(len(blob)) {
			err = fmt.Errorf("serve: load store v4: section %s: entry %d bounds [%d,%d) exceed blob %d", secFacetOffs, i, lo, hi, len(blob))
			return
		}
		dict[i] = storefile.String(blob[lo:hi])
	}
	if facetOffs[nDict] != int64(len(blob)) {
		err = fmt.Errorf("serve: load store v4: section %s: %d trailing bytes", secFacetBlob, int64(len(blob))-facetOffs[nDict])
	}
	return
}
