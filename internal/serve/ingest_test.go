package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/signature"
	"inspire/internal/simtime"
)

// ingestSources is the generated corpus shared by the equivalence tests: big
// enough for a real vocabulary spread, small enough to index in milliseconds.
func ingestSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 30_000, Sources: 3, Seed: 17, VocabSize: 900, Topics: 4,
	})
}

// batchStore indexes sources in one pipeline run and snapshots it.
func batchStore(t *testing.T, sources []*corpus.Source, p int) *Store {
	t.Helper()
	var st *Store
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Proj == nil {
		t.Fatal("snapshot carries no signature projection")
	}
	return st
}

// recordTexts returns every record's whole text in global document-ID order
// (sources sorted by name, records in source order — exactly how
// AssignGlobalDocIDs numbers them).
func recordTexts(t *testing.T, sources []*corpus.Source) []string {
	t.Helper()
	sorted := append([]*corpus.Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var texts []string
	for _, src := range sorted {
		recs, err := corpus.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			texts = append(texts, recs[i].Text())
		}
	}
	return texts
}

// queryTerms picks a deterministic probe vocabulary: head terms, tail terms
// and misses.
func queryTerms(st *Store) []string {
	terms := st.TopTerms(12)
	var tails int
	for id, df := range st.DF {
		if df >= 1 && df <= 2 {
			terms = append(terms, st.TermList[id])
			if tails++; tails == 12 {
				break
			}
		}
	}
	return append(terms, "zzz-missing", "absent")
}

// agreeQueries fails the test unless both queriers answer an identical mixed
// stream of DF/TermDocs/And/Or/Similar queries identically.
func agreeQueries(t *testing.T, label string, want, got Querier, terms []string, simDocs []int64) {
	t.Helper()
	for _, term := range terms {
		if a, b := want.DF(term), got.DF(term); a != b {
			t.Fatalf("%s: DF(%q) = %d, want %d", label, term, b, a)
		}
		if a, b := want.TermDocs(term), got.TermDocs(term); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: TermDocs(%q) = %v, want %v", label, term, b, a)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(3)
		q := make([]string, n)
		for j := range q {
			q[j] = terms[rng.Intn(len(terms))]
		}
		if a, b := want.And(q...), got.And(q...); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: And(%v) = %v, want %v", label, q, b, a)
		}
		if a, b := want.Or(q...), got.Or(q...); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Or(%v) = %v, want %v", label, q, b, a)
		}
	}
	for _, doc := range simDocs {
		a, errA := want.Similar(doc, 5)
		b, errB := got.Similar(doc, 5)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Similar(%d) errors disagree: %v vs %v", label, doc, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Similar(%d) = %v, want %v", label, doc, b, a)
		}
	}
}

// TestIngestedEqualsBatchSingle is the offline-vs-ingested equivalence check
// on a single store: indexing a corpus in one batch and ingesting the same
// records doc-by-doc into an EmptyCopy must answer And/Or/DF/TermDocs/
// Similar identically — while the ingested store still serves from multiple
// sealed segments, after compaction, and after a full rebase.
func TestIngestedEqualsBatchSingle(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3)
	texts := recordTexts(t, sources)
	if int64(len(texts)) != st.TotalDocs {
		t.Fatalf("parsed %d records for %d docs", len(texts), st.TotalDocs)
	}

	live := st.EmptyCopy()
	live.SetLivePolicy(LivePolicy{SealDocs: 7, CompactSegments: 3, ManualCompaction: true})
	for i, text := range texts {
		doc, cost, err := live.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		if doc != int64(i) {
			t.Fatalf("add %d assigned doc %d", i, doc)
		}
		if cost <= 0 {
			t.Fatalf("add %d cost %g", i, cost)
		}
	}
	if _, err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	if live.LiveDocs() != st.TotalDocs {
		t.Fatalf("live store sees %d docs, want %d", live.LiveDocs(), st.TotalDocs)
	}
	if live.LiveSegments() < 2 {
		t.Fatalf("expected multiple segments, got %d", live.LiveSegments())
	}

	terms := queryTerms(st)
	simDocs := append(st.SampleDocs(6), 1<<40) // including a miss
	batchSrv := newServerT(t, st, Config{})
	check := func(label string) {
		t.Helper()
		agreeQueries(t, label, batchSrv.NewSession(), newServerT(t, live, Config{}).NewSession(), terms, simDocs)
	}
	check("segmented")

	if _, err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	if live.LiveSegments() != 1 {
		t.Fatalf("compaction left %d segments", live.LiveSegments())
	}
	check("compacted")

	if err := live.Rebase(); err != nil {
		t.Fatal(err)
	}
	if live.LiveSegments() != 0 || live.TotalDocs != st.TotalDocs {
		t.Fatalf("rebase left %d segments, %d docs", live.LiveSegments(), live.TotalDocs)
	}
	check("rebased")

	if s := newServerT(t, live, Config{}).Stats(); s.Adds != uint64(len(texts)) || s.Seals == 0 || s.Compactions == 0 {
		t.Fatalf("ingest counters: %+v", s)
	}
}

// TestIngestedEqualsBatchSharded runs the same equivalence through the
// Router: a batch-built 3-shard set versus an empty 3-shard set ingested
// entirely through routed adds (which tokenize at the router and land on
// shard doc mod S).
func TestIngestedEqualsBatchSharded(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3)
	texts := recordTexts(t, sources)

	batchShards, err := st.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	batchRouter, err := NewRouter(batchShards, Config{})
	if err != nil {
		t.Fatal(err)
	}

	emptyShards, err := st.EmptyCopy().Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range emptyShards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 5, CompactSegments: 3, ManualCompaction: true})
	}
	liveRouter, err := NewRouter(emptyShards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := liveRouter.NewSession()
	for i, text := range texts {
		doc, err := sess.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		if doc != int64(i) {
			t.Fatalf("routed add %d assigned doc %d", i, doc)
		}
	}
	if err := liveRouter.FlushLive(); err != nil {
		t.Fatal(err)
	}

	terms := queryTerms(st)
	simDocs := append(st.SampleDocs(6), 1<<40)
	agreeQueries(t, "routed segmented", batchRouter.NewSession(), liveRouter.NewSession(), terms, simDocs)

	if err := liveRouter.CompactLive(); err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "routed compacted", batchRouter.NewSession(), liveRouter.NewSession(), terms, simDocs)

	// The routed set also agrees with the monolithic batch server.
	agreeQueries(t, "routed vs single", newServerT(t, st, Config{}).NewSession(), liveRouter.NewSession(), terms, simDocs)

	if s := liveRouter.Stats(); s.Adds != uint64(len(texts)) || s.Seals == 0 {
		t.Fatalf("routed ingest counters: %+v", s)
	}
}

// TestDeleteTombstones checks the delete path end to end: tombstoned
// documents vanish from every query immediately, DF overcounts until the
// postings are physically dropped, and Rebase makes the counts exact again.
func TestDeleteTombstones(t *testing.T) {
	st := buildStoreT(t, 3).Fork()
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()

	dfBefore := sess.DF("apple")
	if got := sess.And("apple", "banana"); !reflect.DeepEqual(got, []int64{0, 1}) {
		t.Fatalf("precondition: %v", got)
	}
	if err := sess.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := sess.And("apple", "banana"); !reflect.DeepEqual(got, []int64{0}) {
		t.Fatalf("And after delete = %v", got)
	}
	if got := sess.Or("banana"); !reflect.DeepEqual(got, []int64{0}) {
		t.Fatalf("Or after delete = %v", got)
	}
	for _, p := range sess.TermDocs("banana") {
		if p.Doc == 1 {
			t.Fatal("tombstoned doc in TermDocs")
		}
	}
	if _, err := sess.Similar(1, 3); err == nil {
		t.Fatal("Similar to a deleted doc should fail")
	}
	hits, err := sess.Similar(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == 1 {
			t.Fatal("tombstoned doc in Similar results")
		}
	}
	for k := 0; k < st.K; k++ {
		for _, d := range sess.ThemeDocs(k) {
			if d == 1 {
				t.Fatal("tombstoned doc in ThemeDocs")
			}
		}
	}
	for _, d := range sess.Near(0, 0, 1e9) {
		if d == 1 {
			t.Fatal("tombstoned doc in Near")
		}
	}
	// DF keeps counting the tombstoned doc until the postings drop.
	if got := sess.DF("apple"); got != dfBefore {
		t.Fatalf("DF before rebase = %d, want the overcount %d", got, dfBefore)
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NewSession().DF("apple"); got != dfBefore-1 {
		t.Fatalf("DF after rebase = %d, want %d", got, dfBefore-1)
	}

	if err := srv.NewSession().Delete(999); err == nil {
		t.Fatal("deleting an unknown doc should fail")
	}
	if _, err := st.AddAt(1, "resurrection"); err == nil {
		t.Fatal("re-adding a base doc ID should fail")
	}
}

// TestIngestVisibilityFollowsSeals checks the refresh-lag contract: buffered
// adds are invisible until the delta seals (threshold or Flush), and every
// interaction after the swap sees them.
func TestIngestVisibilityFollowsSeals(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 3, CompactSegments: 100, ManualCompaction: true})
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	base := sess.DF("apple")

	if _, _, err := st.Add("apple apple kiwi quarterly"); err != nil {
		t.Fatal(err)
	}
	if st.PendingDocs() != 1 {
		t.Fatalf("pending %d", st.PendingDocs())
	}
	if got := sess.DF("apple"); got != base {
		t.Fatalf("buffered add already visible: DF %d", got)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sess.DF("apple"); got != base+1 {
		t.Fatalf("flushed add invisible: DF %d, want %d", got, base+1)
	}
	// The new doc answers boolean queries merged with the base: apple lives
	// in base docs {0,1,2} and kiwi only in base doc 5, so the conjunction
	// can only be satisfied inside the ingested segment.
	docs := sess.And("apple", "kiwi")
	if len(docs) != 1 || docs[0] != st.TotalDocs {
		t.Fatalf("And over base+segment = %v", docs)
	}
	// Out-of-vocabulary terms ("quarterly" is not in the mini vocabulary)
	// are dropped, not indexed: the vocabulary is frozen at snapshot time.
	if got := sess.DF("quarterly"); got != 0 {
		t.Fatalf("OOV term got DF %d", got)
	}

	// Auto-seal at the threshold: the third add trips it.
	for i := 0; i < 3; i++ {
		if _, _, err := st.Add(fmt.Sprintf("banana cargo %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.PendingDocs() != 0 {
		t.Fatalf("auto-seal did not fire: pending %d", st.PendingDocs())
	}
	if got, want := sess.DF("banana"), int64(2+3); got != want {
		t.Fatalf("DF after auto-seal = %d, want %d", got, want)
	}
}

// TestDeletePendingDocSealsFirst pins the delete-of-a-buffered-doc contract:
// the delta seals so the tombstone targets a visible document, and the live
// document count stays exact.
func TestDeletePendingDocSealsFirst(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 100, CompactSegments: 100, ManualCompaction: true})
	base := st.LiveDocs()
	doc, _, err := st.Add("apple banana transient")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(doc); err != nil {
		t.Fatal(err)
	}
	if st.PendingDocs() != 0 {
		t.Fatalf("delete left %d pending docs", st.PendingDocs())
	}
	if got := st.LiveDocs(); got != base {
		t.Fatalf("LiveDocs = %d, want %d", got, base)
	}
	if _, err := st.Delete(doc); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestApplySignaturesRejectsDimMismatchWithLiveState pins the dimensionality
// guard: a set of a different M cannot land while segments carry vectors of
// the old dimensionality, or while the ingest projection maps into it.
func TestApplySignaturesRejectsDimMismatchWithLiveState(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 1, CompactSegments: 100, ManualCompaction: true})
	if _, _, err := st.Add("apple banana"); err != nil {
		t.Fatal(err)
	}
	other, err := signature.NewSet(st.SigM+3, []int64{0}, [][]float64{make([]float64, st.SigM+3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(other); err == nil {
		t.Fatal("dimensionality change accepted over live segments")
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	// Even rebased, the frozen projection still maps into the old space.
	if st.Proj != nil {
		if err := st.ApplySignatures(other); err == nil {
			t.Fatal("dimensionality change accepted despite the ingest projection")
		}
	}
}

// TestApplySignaturesReachesRunningServers locks in the epoch-swap fix: a
// signature set applied to the store is visible to servers built before the
// swap, on their very next interaction, and the similarity caches cannot
// serve stale merges across it.
func TestApplySignaturesReachesRunningServers(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	before, err := sess.Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// A permuted set: every doc gets the signature of the next signed doc,
	// so the nearest-neighbour structure genuinely changes.
	docs := append([]int64(nil), st.SigDocs...)
	vecs := make([][]float64, len(st.SigVecs))
	var signed []int
	for i, v := range st.SigVecs {
		if v != nil {
			signed = append(signed, i)
		}
	}
	if len(signed) < 2 {
		t.Skip("not enough signed docs to permute")
	}
	for j, i := range signed {
		vecs[i] = st.SigVecs[signed[(j+1)%len(signed)]]
	}
	permuted, err := signature.NewSet(st.SigM, docs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(permuted); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatal("running server still answers from the old signature set")
	}
	// A fresh server agrees with the running one — no construction-time
	// capture anymore.
	fresh, err := newServerT(t, st, Config{}).NewSession().Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, fresh) {
		t.Fatalf("running server %v, fresh server %v", after, fresh)
	}
}

// TestApplySignaturesConcurrentWithSimilar races signature swaps against
// similarity queries (run under -race in CI): every answer must equal the
// result of one of the two sets — never a blend — and nothing may error.
func TestApplySignaturesConcurrentWithSimilar(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	setA := st.Signatures()
	docs := append([]int64(nil), setA.Docs...)
	vecs := make([][]float64, len(setA.Vecs))
	var signed []int
	for i, v := range setA.Vecs {
		if v != nil {
			signed = append(signed, i)
		}
	}
	for j, i := range signed {
		vecs[i] = setA.Vecs[signed[(j+1)%len(signed)]]
	}
	setB, err := signature.NewSet(st.SigM, docs, vecs)
	if err != nil {
		t.Fatal(err)
	}

	srv := newServerT(t, st, Config{})
	wantA, err := srv.NewSession().Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(setB); err != nil {
		t.Fatal(err)
	}
	wantB, err := srv.NewSession().Similar(0, 3)
	if err != nil {
		t.Fatal(err)
	}

	var appliers, queriers sync.WaitGroup
	stop := make(chan struct{})
	appliers.Add(1)
	go func() {
		defer appliers.Done()
		sets := []*signature.Set{setA, setB}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.ApplySignatures(sets[i%2]); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			sess := srv.NewSession()
			for i := 0; i < 200; i++ {
				got, err := sess.Similar(0, 3)
				if err != nil {
					t.Errorf("similar: %v", err)
					return
				}
				if !reflect.DeepEqual(got, wantA) && !reflect.DeepEqual(got, wantB) {
					t.Errorf("blended answer: %v", got)
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	appliers.Wait()
}

// TestBackgroundCompactionKeepsServing exercises the auto-seal +
// background-compaction path under concurrent queries (meaningful under
// -race): ingestion proceeds, queries never block or err, and the segment
// count stays bounded.
func TestBackgroundCompactionKeepsServing(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 2)
	texts := recordTexts(t, sources)

	live := st.EmptyCopy()
	live.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 3})
	srv := newServerT(t, live, Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.NewSession()
			terms := queryTerms(st)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess.DF(terms[i%len(terms)])
				sess.And(terms[i%len(terms)], terms[(i+3)%len(terms)])
				sess.Or(terms[i%len(terms)], terms[(i+7)%len(terms)])
			}
		}(g)
	}
	ingester := srv.NewSession()
	for _, text := range texts {
		if _, err := ingester.Add(text); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	live.WaitCompaction()

	s := srv.Stats()
	if s.Seals == 0 || s.Compactions == 0 {
		t.Fatalf("background machinery idle: %+v", s)
	}
	// After a final explicit compaction the store agrees with the batch run.
	if _, err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "post-compaction", newServerT(t, st, Config{}).NewSession(),
		srv.NewSession(), queryTerms(st), st.SampleDocs(4))
}

// TestLiveSetPersistence round-trips live state through disk: a sharded set
// with sealed segments and tombstones saves behind an INSPSHARDS2 manifest
// and reloads answering identically; a single live store rebases into an
// ordinary INSPSTORE2 file.
func TestLiveSetPersistence(t *testing.T) {
	sources := ingestSources()
	sort.Slice(sources, func(i, j int) bool { return sources[i].Name < sources[j].Name })
	st := batchStore(t, sources, 2)
	texts := recordTexts(t, sources)
	dir := t.TempDir()

	// Sharded: batch-index a name-ordered prefix of the corpus as the base,
	// ingest the rest through the router, delete a few docs, save, reload.
	baseSt := batchStore(t, sources[:2], 2)
	half := len(recordTexts(t, sources[:2]))
	shards, err := baseSt.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 100, ManualCompaction: true})
	}
	router, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := router.NewSession()
	for i := half; i < len(texts); i++ {
		if _, err := sess.Add(texts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Delete(int64(half) + 1); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(0); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "set.live")
	if err := router.SaveLive(manifest); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("INSPSHARDS2\n")) {
		t.Fatalf("live manifest magic %q", data[:12])
	}

	_, loaded, err := LoadShards(manifest)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewRouter(loaded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	terms := queryTerms(st)
	simDocs := baseSt.SampleDocs(4)
	agreeQueries(t, "reloaded live set", router.NewSession(), reloaded.NewSession(), terms, simDocs)

	// The generic service loader serves it too.
	svc, err := LoadServiceFile(manifest, Config{})
	if err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "LoadServiceFile live set", router.NewSession(), svc.NewQuerier(), terms, simDocs)

	// Single store: ingest, delete, SaveLive rebases to one INSPSTORE2 file.
	single := baseSt.Fork()
	single.SetLivePolicy(LivePolicy{SealDocs: 8, CompactSegments: 100, ManualCompaction: true})
	srv := newServerT(t, single, Config{})
	s2 := srv.NewSession()
	for i := half; i < len(texts); i++ {
		if _, err := s2.Add(texts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Delete(int64(half) + 1); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "single.store")
	if err := srv.SaveLive(file); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStoreFile(file)
	if err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "rebased single store", srv.NewSession(),
		newServerT(t, back, Config{}).NewSession(), terms, simDocs)
}
