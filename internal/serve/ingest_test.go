package serve

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/signature"
	"inspire/internal/simtime"
)

// ingestSources is the generated corpus shared by the equivalence tests: big
// enough for a real vocabulary spread, small enough to index in milliseconds.
func ingestSources() []*corpus.Source {
	return corpus.Generate(corpus.GenSpec{
		Format: corpus.FormatPubMed, TargetBytes: 30_000, Sources: 3, Seed: 17, VocabSize: 900, Topics: 4,
	})
}

// batchStore indexes sources in one pipeline run and snapshots it.
func batchStore(t *testing.T, sources []*corpus.Source, p int) *Store {
	t.Helper()
	var st *Store
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, sources, core.Config{CollectSignatures: true})
		if err != nil {
			return err
		}
		got, err := Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Proj == nil {
		t.Fatal("snapshot carries no signature projection")
	}
	return st
}

// recordTexts returns every record's whole text in global document-ID order
// (sources sorted by name, records in source order — exactly how
// AssignGlobalDocIDs numbers them).
func recordTexts(t *testing.T, sources []*corpus.Source) []string {
	t.Helper()
	sorted := append([]*corpus.Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var texts []string
	for _, src := range sorted {
		recs, err := corpus.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			texts = append(texts, recs[i].Text())
		}
	}
	return texts
}

// queryTerms picks a deterministic probe vocabulary: head terms, tail terms
// and misses.
func queryTerms(st *Store) []string {
	terms := st.TopTerms(12)
	var tails int
	for id, df := range st.DF {
		if df >= 1 && df <= 2 {
			terms = append(terms, st.TermList[id])
			if tails++; tails == 12 {
				break
			}
		}
	}
	return append(terms, "zzz-missing", "absent")
}

// agreeQueries fails the test unless both queriers answer an identical mixed
// stream of DF/TermDocs/And/Or/Similar queries identically.
func agreeQueries(t *testing.T, label string, want, got Querier, terms []string, simDocs []int64) {
	t.Helper()
	for _, term := range terms {
		if a, b := want.DF(context.Background(), term), got.DF(context.Background(), term); a != b {
			t.Fatalf("%s: DF(%q) = %d, want %d", label, term, b, a)
		}
		if a, b := want.TermDocs(context.Background(), term), got.TermDocs(context.Background(), term); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: TermDocs(%q) = %v, want %v", label, term, b, a)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		n := 1 + rng.Intn(3)
		q := make([]string, n)
		for j := range q {
			q[j] = terms[rng.Intn(len(terms))]
		}
		if a, b := want.And(context.Background(), q...), got.And(context.Background(), q...); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: And(%v) = %v, want %v", label, q, b, a)
		}
		if a, b := want.Or(context.Background(), q...), got.Or(context.Background(), q...); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Or(%v) = %v, want %v", label, q, b, a)
		}
	}
	for _, doc := range simDocs {
		a, errA := want.Similar(context.Background(), doc, 5)
		b, errB := got.Similar(context.Background(), doc, 5)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: Similar(%d) errors disagree: %v vs %v", label, doc, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Similar(%d) = %v, want %v", label, doc, b, a)
		}
	}
	// Spatial probes: ingested documents land on the ThemeView plane via the
	// frozen Planar model, bit-for-bit where the batch run projected them,
	// so region queries must agree at every radius.
	for i := 0; i < 30; i++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		r := rng.Float64() * 0.7
		if a, b := want.Near(context.Background(), x, y, r), got.Near(context.Background(), x, y, r); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Near(%g,%g,%g) = %v, want %v", label, x, y, r, b, a)
		}
	}
	if a, b := want.Near(context.Background(), 0, 0, 1e9), got.Near(context.Background(), 0, 0, 1e9); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: Near(all) = %d docs, want %d", label, len(b), len(a))
	}
}

// TestIngestedEqualsBatchSingle is the offline-vs-ingested equivalence check
// on a single store: indexing a corpus in one batch and ingesting the same
// records doc-by-doc into an EmptyCopy must answer And/Or/DF/TermDocs/
// Similar identically — while the ingested store still serves from multiple
// sealed segments, after compaction, and after a full rebase.
func TestIngestedEqualsBatchSingle(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3)
	texts := recordTexts(t, sources)
	if int64(len(texts)) != st.TotalDocs {
		t.Fatalf("parsed %d records for %d docs", len(texts), st.TotalDocs)
	}

	live := st.EmptyCopy()
	live.SetLivePolicy(LivePolicy{SealDocs: 7, CompactSegments: 3, ManualCompaction: true})
	for i, text := range texts {
		doc, cost, err := live.Add(text)
		if err != nil {
			t.Fatal(err)
		}
		if doc != int64(i) {
			t.Fatalf("add %d assigned doc %d", i, doc)
		}
		if cost <= 0 {
			t.Fatalf("add %d cost %g", i, cost)
		}
	}
	if _, err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	if live.LiveDocs() != st.TotalDocs {
		t.Fatalf("live store sees %d docs, want %d", live.LiveDocs(), st.TotalDocs)
	}
	if live.LiveSegments() < 2 {
		t.Fatalf("expected multiple segments, got %d", live.LiveSegments())
	}

	terms := queryTerms(st)
	simDocs := append(st.SampleDocs(6), 1<<40) // including a miss
	batchSrv := newServerT(t, st, Config{})
	check := func(label string) {
		t.Helper()
		agreeQueries(t, label, batchSrv.NewSession(), newServerT(t, live, Config{}).NewSession(), terms, simDocs)
	}
	check("segmented")

	if _, err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	if live.LiveSegments() != 1 {
		t.Fatalf("compaction left %d segments", live.LiveSegments())
	}
	check("compacted")

	if err := live.Rebase(); err != nil {
		t.Fatal(err)
	}
	if live.LiveSegments() != 0 || live.TotalDocs != st.TotalDocs {
		t.Fatalf("rebase left %d segments, %d docs", live.LiveSegments(), live.TotalDocs)
	}
	check("rebased")

	if s := newServerT(t, live, Config{}).Stats(); s.Adds != uint64(len(texts)) || s.Seals == 0 || s.Compactions == 0 {
		t.Fatalf("ingest counters: %+v", s)
	}
}

// TestIngestedEqualsBatchSharded runs the same equivalence through the
// Router: a batch-built 3-shard set versus an empty 3-shard set ingested
// entirely through routed adds (which tokenize at the router and land on
// shard doc mod S).
func TestIngestedEqualsBatchSharded(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3)
	texts := recordTexts(t, sources)

	batchShards, err := st.Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	batchRouter, err := NewRouter(batchShards, Config{})
	if err != nil {
		t.Fatal(err)
	}

	emptyShards, err := st.EmptyCopy().Shard(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range emptyShards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 5, CompactSegments: 3, ManualCompaction: true})
	}
	liveRouter, err := NewRouter(emptyShards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := liveRouter.NewSession()
	for i, text := range texts {
		doc, err := sess.Add(context.Background(), text)
		if err != nil {
			t.Fatal(err)
		}
		if doc != int64(i) {
			t.Fatalf("routed add %d assigned doc %d", i, doc)
		}
	}
	if err := liveRouter.FlushLive(context.Background()); err != nil {
		t.Fatal(err)
	}

	terms := queryTerms(st)
	simDocs := append(st.SampleDocs(6), 1<<40)
	agreeQueries(t, "routed segmented", batchRouter.NewSession(), liveRouter.NewSession(), terms, simDocs)

	if err := liveRouter.CompactLive(context.Background()); err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "routed compacted", batchRouter.NewSession(), liveRouter.NewSession(), terms, simDocs)

	// The routed set also agrees with the monolithic batch server.
	agreeQueries(t, "routed vs single", newServerT(t, st, Config{}).NewSession(), liveRouter.NewSession(), terms, simDocs)

	if s := liveRouter.Stats(); s.Adds != uint64(len(texts)) || s.Seals == 0 {
		t.Fatalf("routed ingest counters: %+v", s)
	}
}

// TestDeleteTombstones checks the delete path end to end: tombstoned
// documents vanish from every query immediately, DF overcounts until the
// postings are physically dropped, and Rebase makes the counts exact again.
func TestDeleteTombstones(t *testing.T) {
	st := buildStoreT(t, 3).Fork()
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()

	dfBefore := sess.DF(context.Background(), "apple")
	if got := sess.And(context.Background(), "apple", "banana"); !reflect.DeepEqual(got, []int64{0, 1}) {
		t.Fatalf("precondition: %v", got)
	}
	if err := sess.Delete(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := sess.And(context.Background(), "apple", "banana"); !reflect.DeepEqual(got, []int64{0}) {
		t.Fatalf("And after delete = %v", got)
	}
	if got := sess.Or(context.Background(), "banana"); !reflect.DeepEqual(got, []int64{0}) {
		t.Fatalf("Or after delete = %v", got)
	}
	for _, p := range sess.TermDocs(context.Background(), "banana") {
		if p.Doc == 1 {
			t.Fatal("tombstoned doc in TermDocs")
		}
	}
	if _, err := sess.Similar(context.Background(), 1, 3); err == nil {
		t.Fatal("Similar to a deleted doc should fail")
	}
	hits, err := sess.Similar(context.Background(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == 1 {
			t.Fatal("tombstoned doc in Similar results")
		}
	}
	for k := 0; k < st.K; k++ {
		for _, d := range sess.ThemeDocs(context.Background(), k) {
			if d == 1 {
				t.Fatal("tombstoned doc in ThemeDocs")
			}
		}
	}
	for _, d := range sess.Near(context.Background(), 0, 0, 1e9) {
		if d == 1 {
			t.Fatal("tombstoned doc in Near")
		}
	}
	// DF keeps counting the tombstoned doc until the postings drop.
	if got := sess.DF(context.Background(), "apple"); got != dfBefore {
		t.Fatalf("DF before rebase = %d, want the overcount %d", got, dfBefore)
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	if got := srv.NewSession().DF(context.Background(), "apple"); got != dfBefore-1 {
		t.Fatalf("DF after rebase = %d, want %d", got, dfBefore-1)
	}

	if err := srv.NewSession().Delete(context.Background(), 999); err == nil {
		t.Fatal("deleting an unknown doc should fail")
	}
	if _, err := st.AddAt(1, "resurrection"); err == nil {
		t.Fatal("re-adding a base doc ID should fail")
	}
}

// TestRefreshSimilarDropsCompactedTombstones pins the lineage-walk filter of
// the incremental similarity refresh: a document sealed into a segment,
// deleted, and then compacted away loses its tombstone from the published
// view (the data went with it), but the lineage segments a cached top-K is
// patched forward across still carry its signature — the refresh must filter
// the tombstones walked along the lineage, not just the view's set, or it
// resurrects the deleted document.
func TestRefreshSimilarDropsCompactedTombstones(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 100, CompactSegments: 100, ManualCompaction: true})
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	k := int(st.TotalDocs) + 4 // large enough that every visible doc ranks

	// Prime the similarity cache at the base epoch.
	if _, err := sess.Similar(context.Background(), 0, k); err != nil {
		t.Fatal(err)
	}

	// Seal doc x (a duplicate of doc 0's text, so it scores at the top) into
	// its own segment, then a second segment so compaction has work to do.
	x, _, err := st.Add(miniDocs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Add(miniDocs[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if vec, ok := st.SignatureOf(x); !ok || vec == nil {
		t.Fatal("ingested doc has no signature; the scenario needs a scorable one")
	}
	if _, err := st.Delete(x); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if v := st.viewNow(); v.tombs[x] {
		t.Fatal("compaction kept the tombstone; the regression needs it dropped")
	}

	hits, err := sess.Similar(context.Background(), 0, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hits {
		if h.Doc == x {
			t.Fatalf("deleted doc %d resurrected by the incremental refresh: %v", x, hits)
		}
	}
	if srv.Stats().SimRefreshes == 0 {
		t.Fatal("a full rescan answered the query; the refresh path was not exercised")
	}
	// The patched answer equals a cold full scan.
	cold, err := newServerT(t, st, Config{}).NewSession().Similar(context.Background(), 0, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hits, cold) {
		t.Fatalf("refreshed answer %v differs from cold scan %v", hits, cold)
	}
}

// TestPersistedNextDocNeverReusesIDs pins the ID high-water mark across
// persistence: delete every ingested document and compact, and the segments
// and tombstones that recorded the assigned IDs are all gone — only the
// manifest's NextDoc mark keeps a reloaded set from re-assigning them.
func TestPersistedNextDocNeverReusesIDs(t *testing.T) {
	st := buildStoreT(t, 2)
	shards, err := st.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 2, CompactSegments: 100, ManualCompaction: true})
	}
	router, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := router.NewSession()
	first, last := int64(-1), int64(-1)
	for i := 0; i < 8; i++ {
		doc, err := sess.Add(context.Background(), fmt.Sprintf("apple banana %d", i))
		if err != nil {
			t.Fatal(err)
		}
		if first < 0 {
			first = doc
		}
		last = doc
	}
	if err := router.FlushLive(context.Background()); err != nil {
		t.Fatal(err)
	}
	for d := first; d <= last; d++ {
		if err := sess.Delete(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.CompactLive(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		if sh.LiveSegments() != 0 || len(sh.viewNow().tombs) != 0 {
			t.Fatalf("shard %d still carries segments/tombstones; the scenario needs them compacted away", i)
		}
	}

	dir := t.TempDir()
	manifest := filepath.Join(dir, "set.live")
	if err := router.SaveLive(context.Background(), manifest); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing but the mark is live, and the mark alone must force v2.
	if !bytes.HasPrefix(data, []byte(manifestMagicV2)) {
		t.Fatalf("manifest magic %q: the ID high-water mark was not persisted", data[:12])
	}

	_, loaded, err := LoadShards(manifest)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewRouter(loaded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := reloaded.NewSession().Add(context.Background(), "apple fresh")
	if err != nil {
		t.Fatal(err)
	}
	if doc != last+1 {
		t.Fatalf("reloaded router assigned doc %d, want %d (deleted IDs are never reused)", doc, last+1)
	}
}

// TestOutOfOrderAddsAndRetiredIDs pins the retirement-floor semantics: the
// router assigns global IDs atomically but concurrent sessions' appends can
// reach a shard out of ID order, so a later-assigned ID landing first must
// not retire an earlier one still in flight — while genuinely retired IDs
// (tombstones dropped by compaction together with their data) reject
// forever.
func TestOutOfOrderAddsAndRetiredIDs(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 2, CompactSegments: 100, ManualCompaction: true})
	base := st.TotalDocs
	// The later-assigned ID lands first (the concurrent routed-add shape).
	if _, err := st.AddCounts(base+3, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddCounts(base, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatalf("out-of-order add below the rolling high-water rejected: %v", err)
	}
	if _, err := st.AddCounts(base+1, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddCounts(base+2, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddCounts(base, map[int64]int64{0: 1}, nil); err == nil {
		t.Fatal("duplicate ingested ID accepted")
	}
	if st.LiveSegments() != 2 {
		t.Fatalf("expected 2 sealed segments, got %d", st.LiveSegments())
	}
	// Delete the highest ID and compact it away: the tombstone drops with
	// the data, and the retired set must remember exactly that ID — while a
	// lower, never-used ID whose routed add is still in flight stays
	// addable.
	if _, err := st.Delete(base + 3); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if len(st.viewNow().tombs) != 0 {
		t.Fatal("compaction kept the tombstone; the scenario needs it dropped")
	}
	if _, err := st.AddCounts(base+3, map[int64]int64{0: 1}, nil); err == nil {
		t.Fatal("compacted-away retired ID reused")
	}
	doc, _, err := st.Add("apple fresh")
	if err != nil {
		t.Fatal(err)
	}
	if doc != base+4 {
		t.Fatalf("next self-assigned add got %d, want %d", doc, base+4)
	}
	// The in-flight shape again, past a retired ID: a routed add assigned
	// base+5 lands after base+6 was already ingested, deleted and compacted
	// away on this shard — base+5 must still go through.
	if _, err := st.AddCounts(base+6, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(base + 6); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddCounts(base+5, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatalf("in-flight ID below a compaction-retired one rejected: %v", err)
	}
	if _, err := st.AddCounts(base+6, map[int64]int64{0: 1}, nil); err == nil {
		t.Fatal("compacted-away retired ID reused after later adds")
	}

	// A rebase folds the retired IDs into persistent holes.
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	for _, hole := range []int64{base + 3, base + 6} {
		found := false
		for _, d := range st.Holes {
			if d == hole {
				found = true
			}
		}
		if !found {
			t.Fatalf("retired ID %d not folded into holes %v", hole, st.Holes)
		}
	}
}

// TestRebaseLeavesHolesAbsent pins the hole semantics of a rebase that
// dropped deletions: the retired IDs stay covered by the high-water mark
// (never reused) but must read as absent — not as live base documents that
// inflate LiveDocs, accept a second Delete, or shard.
func TestRebaseLeavesHolesAbsent(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 100, CompactSegments: 100, ManualCompaction: true})
	base := st.LiveDocs()
	doc, _, err := st.Add("apple banana transient")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(doc); err != nil {
		t.Fatal(err)
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	if got := st.LiveDocs(); got != base {
		t.Fatalf("LiveDocs after rebase = %d, want %d (hole counted as live)", got, base)
	}
	if _, err := st.Delete(doc); err == nil {
		t.Fatal("deleting a rebased-away hole accepted")
	}
	if _, err := st.AddAt(doc, "resurrection"); err == nil {
		t.Fatal("hole ID reused")
	}
	if _, err := st.Shard(2); err == nil {
		t.Fatal("holey store sharded")
	}
	next, _, err := st.Add("apple fresh")
	if err != nil {
		t.Fatal(err)
	}
	if next != doc+1 {
		t.Fatalf("next add assigned %d, want %d", next, doc+1)
	}

	// The holes persist: flush, rebase again, save, reload.
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "holey.store")
	if err := st.SaveLegacyFile(file); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	// In the legacy gob layout a hole-carrying store bumps the magic so
	// earlier builds reject it loudly instead of gob-dropping Holes and
	// resurrecting the deletions.
	if !bytes.HasPrefix(raw, []byte("INSPSTORE3\n")) {
		t.Fatalf("holey store wrote magic %q", raw[:11])
	}
	back, err := LoadStoreFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.LiveDocs(); got != base+1 {
		t.Fatalf("reloaded LiveDocs = %d, want %d", got, base+1)
	}
	if _, err := back.Delete(doc); err == nil {
		t.Fatal("reloaded store accepted deleting a hole")
	}
	if _, err := back.Delete(next); err != nil {
		t.Fatalf("reloaded store rejects a real document: %v", err)
	}
}

// TestLoadShardsBackfillsLegacyRoutingMetadata pins the legacy-set upgrade
// path: shard stores persisted before the live layer carry no routing
// metadata (ShardCount/ShardIndex/GlobalDocs gob-decode zero), so LoadShards
// must backfill it from the manifest — otherwise live ingestion into a
// reloaded legacy set assigns IDs colliding with base documents and deletes
// of high base IDs fail as unknown.
func TestLoadShardsBackfillsLegacyRoutingMetadata(t *testing.T) {
	st := buildStoreT(t, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.shards")
	if err := st.SaveShards(path, 2); err != nil {
		t.Fatal(err)
	}
	// Rewrite each shard file without the routing metadata, exactly as the
	// pre-live release persisted them.
	man, _, err := LoadShards(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range man.Shards {
		sh, err := LoadStoreFile(filepath.Join(dir, info.File))
		if err != nil {
			t.Fatal(err)
		}
		sh.ShardCount, sh.ShardIndex, sh.GlobalDocs = 0, 0, 0
		if err := sh.SaveFile(filepath.Join(dir, info.File)); err != nil {
			t.Fatal(err)
		}
	}

	_, loaded, err := LoadShards(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range loaded {
		if sh.ShardCount != 2 || sh.ShardIndex != i || sh.GlobalDocs != st.TotalDocs {
			t.Fatalf("shard %d routing metadata not backfilled: count=%d index=%d global=%d",
				i, sh.ShardCount, sh.ShardIndex, sh.GlobalDocs)
		}
	}
	router, err := NewRouter(loaded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := router.NewSession()
	doc, err := sess.Add(context.Background(), "apple banana legacy")
	if err != nil {
		t.Fatal(err)
	}
	if doc != st.TotalDocs {
		t.Fatalf("legacy set assigned doc %d, want %d (must not collide with base documents)", doc, st.TotalDocs)
	}
	// The highest base doc is deletable (the dense per-shard rule would call
	// any base ID >= the shard's own count unknown).
	if err := sess.Delete(context.Background(), st.TotalDocs-1); err != nil {
		t.Fatal(err)
	}

	// A store whose recorded partition disagrees with the manifest is
	// rejected rather than silently misrouted.
	bad, err := LoadStoreFile(filepath.Join(dir, man.Shards[0].File))
	if err != nil {
		t.Fatal(err)
	}
	bad.ShardCount, bad.ShardIndex, bad.GlobalDocs = 3, 0, st.TotalDocs
	if err := bad.SaveFile(filepath.Join(dir, man.Shards[0].File)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadShards(path); err == nil {
		t.Fatal("mismatched shard-count metadata accepted")
	}
}

// TestIngestVisibilityFollowsSeals checks the refresh-lag contract: buffered
// adds are invisible until the delta seals (threshold or Flush), and every
// interaction after the swap sees them.
func TestIngestVisibilityFollowsSeals(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 3, CompactSegments: 100, ManualCompaction: true})
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	base := sess.DF(context.Background(), "apple")

	if _, _, err := st.Add("apple apple kiwi quarterly"); err != nil {
		t.Fatal(err)
	}
	if st.PendingDocs() != 1 {
		t.Fatalf("pending %d", st.PendingDocs())
	}
	if got := sess.DF(context.Background(), "apple"); got != base {
		t.Fatalf("buffered add already visible: DF %d", got)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sess.DF(context.Background(), "apple"); got != base+1 {
		t.Fatalf("flushed add invisible: DF %d, want %d", got, base+1)
	}
	// The new doc answers boolean queries merged with the base: apple lives
	// in base docs {0,1,2} and kiwi only in base doc 5, so the conjunction
	// can only be satisfied inside the ingested segment.
	docs := sess.And(context.Background(), "apple", "kiwi")
	if len(docs) != 1 || docs[0] != st.TotalDocs {
		t.Fatalf("And over base+segment = %v", docs)
	}
	// Out-of-vocabulary terms ("quarterly" is not in the mini vocabulary)
	// are dropped, not indexed: the vocabulary is frozen at snapshot time.
	if got := sess.DF(context.Background(), "quarterly"); got != 0 {
		t.Fatalf("OOV term got DF %d", got)
	}

	// Auto-seal at the threshold: the third add trips it.
	for i := 0; i < 3; i++ {
		if _, _, err := st.Add(fmt.Sprintf("banana cargo %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.PendingDocs() != 0 {
		t.Fatalf("auto-seal did not fire: pending %d", st.PendingDocs())
	}
	if got, want := sess.DF(context.Background(), "banana"), int64(2+3); got != want {
		t.Fatalf("DF after auto-seal = %d, want %d", got, want)
	}
}

// TestDeletePendingDocSealsFirst pins the delete-of-a-buffered-doc contract:
// the delta seals so the tombstone targets a visible document, and the live
// document count stays exact.
func TestDeletePendingDocSealsFirst(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 100, CompactSegments: 100, ManualCompaction: true})
	base := st.LiveDocs()
	doc, _, err := st.Add("apple banana transient")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Delete(doc); err != nil {
		t.Fatal(err)
	}
	if st.PendingDocs() != 0 {
		t.Fatalf("delete left %d pending docs", st.PendingDocs())
	}
	if got := st.LiveDocs(); got != base {
		t.Fatalf("LiveDocs = %d, want %d", got, base)
	}
	if _, err := st.Delete(doc); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestApplySignaturesRejectsDimMismatchWithLiveState pins the dimensionality
// guard: a set of a different M cannot land while segments carry vectors of
// the old dimensionality, or while the ingest projection maps into it.
func TestApplySignaturesRejectsDimMismatchWithLiveState(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	st.SetLivePolicy(LivePolicy{SealDocs: 1, CompactSegments: 100, ManualCompaction: true})
	if _, _, err := st.Add("apple banana"); err != nil {
		t.Fatal(err)
	}
	other, err := signature.NewSet(st.SigM+3, []int64{0}, [][]float64{make([]float64, st.SigM+3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(other); err == nil {
		t.Fatal("dimensionality change accepted over live segments")
	}
	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	// Even rebased, the frozen projection still maps into the old space.
	if st.Proj != nil {
		if err := st.ApplySignatures(other); err == nil {
			t.Fatal("dimensionality change accepted despite the ingest projection")
		}
	}
}

// TestApplySignaturesReachesRunningServers locks in the epoch-swap fix: a
// signature set applied to the store is visible to servers built before the
// swap, on their very next interaction, and the similarity caches cannot
// serve stale merges across it.
func TestApplySignaturesReachesRunningServers(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()
	before, err := sess.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// A permuted set: every doc gets the signature of the next signed doc,
	// so the nearest-neighbour structure genuinely changes.
	docs := append([]int64(nil), st.SigDocs...)
	vecs := make([][]float64, len(st.SigVecs))
	var signed []int
	for i, v := range st.SigVecs {
		if v != nil {
			signed = append(signed, i)
		}
	}
	if len(signed) < 2 {
		t.Skip("not enough signed docs to permute")
	}
	for j, i := range signed {
		vecs[i] = st.SigVecs[signed[(j+1)%len(signed)]]
	}
	permuted, err := signature.NewSet(st.SigM, docs, vecs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(permuted); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatal("running server still answers from the old signature set")
	}
	// A fresh server agrees with the running one — no construction-time
	// capture anymore.
	fresh, err := newServerT(t, st, Config{}).NewSession().Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, fresh) {
		t.Fatalf("running server %v, fresh server %v", after, fresh)
	}
}

// TestApplySignaturesConcurrentWithSimilar races signature swaps against
// similarity queries (run under -race in CI): every answer must equal the
// result of one of the two sets — never a blend — and nothing may error.
func TestApplySignaturesConcurrentWithSimilar(t *testing.T) {
	st := buildStoreT(t, 2).Fork()
	setA := st.Signatures()
	docs := append([]int64(nil), setA.Docs...)
	vecs := make([][]float64, len(setA.Vecs))
	var signed []int
	for i, v := range setA.Vecs {
		if v != nil {
			signed = append(signed, i)
		}
	}
	for j, i := range signed {
		vecs[i] = setA.Vecs[signed[(j+1)%len(signed)]]
	}
	setB, err := signature.NewSet(st.SigM, docs, vecs)
	if err != nil {
		t.Fatal(err)
	}

	srv := newServerT(t, st, Config{})
	wantA, err := srv.NewSession().Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ApplySignatures(setB); err != nil {
		t.Fatal(err)
	}
	wantB, err := srv.NewSession().Similar(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	var appliers, queriers sync.WaitGroup
	stop := make(chan struct{})
	appliers.Add(1)
	go func() {
		defer appliers.Done()
		sets := []*signature.Set{setA, setB}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.ApplySignatures(sets[i%2]); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			sess := srv.NewSession()
			for i := 0; i < 200; i++ {
				got, err := sess.Similar(context.Background(), 0, 3)
				if err != nil {
					t.Errorf("similar: %v", err)
					return
				}
				if !reflect.DeepEqual(got, wantA) && !reflect.DeepEqual(got, wantB) {
					t.Errorf("blended answer: %v", got)
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	appliers.Wait()
}

// TestBackgroundCompactionKeepsServing exercises the auto-seal +
// background-compaction path under concurrent queries (meaningful under
// -race): ingestion proceeds, queries never block or err, and the segment
// count stays bounded.
func TestBackgroundCompactionKeepsServing(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 2)
	texts := recordTexts(t, sources)

	live := st.EmptyCopy()
	live.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 3})
	srv := newServerT(t, live, Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess := srv.NewSession()
			terms := queryTerms(st)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess.DF(context.Background(), terms[i%len(terms)])
				sess.And(context.Background(), terms[i%len(terms)], terms[(i+3)%len(terms)])
				sess.Or(context.Background(), terms[i%len(terms)], terms[(i+7)%len(terms)])
			}
		}(g)
	}
	ingester := srv.NewSession()
	for _, text := range texts {
		if _, err := ingester.Add(context.Background(), text); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	live.WaitCompaction()

	s := srv.Stats()
	if s.Seals == 0 || s.Compactions == 0 {
		t.Fatalf("background machinery idle: %+v", s)
	}
	// After a final explicit compaction the store agrees with the batch run.
	if _, err := live.Compact(); err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "post-compaction", newServerT(t, st, Config{}).NewSession(),
		srv.NewSession(), queryTerms(st), st.SampleDocs(4))
}

// TestLiveSetPersistence round-trips live state through disk: a sharded set
// with sealed segments and tombstones saves behind an INSPSHARDS2 manifest
// and reloads answering identically; a single live store rebases into an
// ordinary INSPSTORE2 file.
func TestLiveSetPersistence(t *testing.T) {
	sources := ingestSources()
	sort.Slice(sources, func(i, j int) bool { return sources[i].Name < sources[j].Name })
	st := batchStore(t, sources, 2)
	texts := recordTexts(t, sources)
	dir := t.TempDir()

	// Sharded: batch-index a name-ordered prefix of the corpus as the base,
	// ingest the rest through the router, delete a few docs, save, reload.
	baseSt := batchStore(t, sources[:2], 2)
	half := len(recordTexts(t, sources[:2]))
	shards, err := baseSt.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 100, ManualCompaction: true})
	}
	router, err := NewRouter(shards, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sess := router.NewSession()
	for i := half; i < len(texts); i++ {
		if _, err := sess.Add(context.Background(), texts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Delete(context.Background(), int64(half)+1); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "set.live")
	if err := router.SaveLive(context.Background(), manifest); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("INSPSHARDS2\n")) {
		t.Fatalf("live manifest magic %q", data[:12])
	}

	_, loaded, err := LoadShards(manifest)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewRouter(loaded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	terms := queryTerms(st)
	simDocs := baseSt.SampleDocs(4)
	agreeQueries(t, "reloaded live set", router.NewSession(), reloaded.NewSession(), terms, simDocs)

	// The generic service loader serves it too.
	svc, err := LoadServiceFile(manifest, Config{})
	if err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "LoadServiceFile live set", router.NewSession(), svc.NewQuerier(), terms, simDocs)

	// Single store: ingest, delete, SaveLive rebases to one INSPSTORE2 file.
	single := baseSt.Fork()
	single.SetLivePolicy(LivePolicy{SealDocs: 8, CompactSegments: 100, ManualCompaction: true})
	srv := newServerT(t, single, Config{})
	s2 := srv.NewSession()
	for i := half; i < len(texts); i++ {
		if _, err := s2.Add(context.Background(), texts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Delete(context.Background(), int64(half)+1); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "single.store")
	if err := srv.SaveLive(context.Background(), file); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStoreFile(file)
	if err != nil {
		t.Fatal(err)
	}
	agreeQueries(t, "rebased single store", srv.NewSession(),
		newServerT(t, back, Config{}).NewSession(), terms, simDocs)
}
