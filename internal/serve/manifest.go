package serve

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// manifestMagic heads the sidecar manifest of a sharded serving set. The
// shard stores themselves stay ordinary INSPSTORE2 files; the manifest is
// what makes them a set.
const manifestMagic = "INSPSHARDS1\n"

// RouteMod names the modulo document-partitioning rule (ShardOf). It is the
// only rule this version writes; the field exists so a future rule can be
// introduced without a magic bump.
const RouteMod = "mod"

// manifest codec bounds: decode rejects anything larger, so corrupt or
// adversarial inputs cannot demand huge allocations.
const (
	maxManifestShards = 1 << 12
	maxManifestString = 1 << 12
)

// Manifest describes a sharded serving set: how many document partitions,
// which rule routes a document to its shard, and the per-shard store files
// with their summary counts (cross-checked at load).
type Manifest struct {
	NumShards int
	TotalDocs int64
	VocabSize int64
	Route     string
	Shards    []ShardInfo
}

// ShardInfo names one shard's store file (relative to the manifest) and its
// summary counts.
type ShardInfo struct {
	File     string
	Docs     int64
	Postings int64
}

// Validate checks the structural invariants a manifest must satisfy before
// its shard files are touched.
func (m *Manifest) Validate() error {
	switch {
	case m.NumShards <= 0 || m.NumShards > maxManifestShards:
		return fmt.Errorf("serve: manifest has %d shards", m.NumShards)
	case len(m.Shards) != m.NumShards:
		return fmt.Errorf("serve: manifest lists %d shards, header says %d", len(m.Shards), m.NumShards)
	case m.TotalDocs < 0 || m.VocabSize < 0:
		return fmt.Errorf("serve: manifest has negative counts")
	case m.Route != RouteMod:
		return fmt.Errorf("serve: manifest has unknown partition rule %q", m.Route)
	}
	var docs int64
	files := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		switch {
		case s.File == "" || len(s.File) > maxManifestString:
			return fmt.Errorf("serve: manifest shard %d has a bad file name", i)
		case strings.ContainsAny(s.File, "/\\") || s.File == "." || s.File == "..":
			// Shard files live next to the manifest; anything else would let
			// a manifest reach outside its own directory.
			return fmt.Errorf("serve: manifest shard %d file %q is not a plain name", i, s.File)
		case files[s.File]:
			// A repeated file would serve its documents twice, breaking the
			// disjointness every gather merge relies on.
			return fmt.Errorf("serve: manifest shard %d repeats file %q", i, s.File)
		case s.Docs < 0 || s.Postings < 0:
			return fmt.Errorf("serve: manifest shard %d has negative counts", i)
		}
		files[s.File] = true
		docs += s.Docs
	}
	if docs != m.TotalDocs {
		return fmt.Errorf("serve: manifest shards sum to %d docs, header says %d", docs, m.TotalDocs)
	}
	return nil
}

// Encode serializes the manifest: magic, then uvarint counts and
// length-prefixed strings. The format is versioned by the magic alone.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	buf := []byte(manifestMagic)
	buf = binary.AppendUvarint(buf, uint64(m.NumShards))
	buf = binary.AppendUvarint(buf, uint64(m.TotalDocs))
	buf = binary.AppendUvarint(buf, uint64(m.VocabSize))
	buf = appendString(buf, m.Route)
	for _, s := range m.Shards {
		buf = appendString(buf, s.File)
		buf = binary.AppendUvarint(buf, uint64(s.Docs))
		buf = binary.AppendUvarint(buf, uint64(s.Postings))
	}
	return buf, nil
}

// DecodeManifest parses and validates a manifest written by Encode.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(manifestMagic) || string(data[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("serve: not a shard manifest")
	}
	r := &byteReader{buf: data[len(manifestMagic):]}
	m := &Manifest{}
	m.NumShards = int(r.uvarint())
	m.TotalDocs = int64(r.uvarint())
	m.VocabSize = int64(r.uvarint())
	m.Route = r.string()
	if r.err == nil && (m.NumShards < 0 || m.NumShards > maxManifestShards) {
		return nil, fmt.Errorf("serve: manifest has %d shards", m.NumShards)
	}
	if r.err == nil {
		m.Shards = make([]ShardInfo, m.NumShards)
		for i := range m.Shards {
			m.Shards[i].File = r.string()
			m.Shards[i].Docs = int64(r.uvarint())
			m.Shards[i].Postings = int64(r.uvarint())
		}
	}
	switch {
	case r.err != nil:
		return nil, fmt.Errorf("serve: corrupt manifest: %w", r.err)
	case len(r.buf) != 0:
		return nil, fmt.Errorf("serve: manifest has %d trailing bytes", len(r.buf))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// appendString appends a uvarint length prefix and the bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// byteReader cursors over the manifest body, latching the first error so the
// decode loop stays linear.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxManifestString || n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("string length %d out of bounds", n)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}
