package serve

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// The manifest magics head the sidecar manifest of a sharded serving set.
// The shard stores themselves stay ordinary INSPSTORE2 files; the manifest
// is what makes them a set. Version 1 describes a frozen partition; version
// 2 extends each shard with its live state — the sealed ingest segments
// (sidecar INSPSEG1 files), the tombstone set and the document-ID high-water
// mark — so a live set persists and reloads mid-stream. Encode writes v1
// bytes whenever no shard carries live state, so frozen sets stay loadable
// by earlier builds.
const (
	manifestMagic   = "INSPSHARDS1\n"
	manifestMagicV2 = "INSPSHARDS2\n"
)

// RouteMod names the modulo document-partitioning rule (ShardOf). It is the
// only rule this version writes; the field exists so a future rule can be
// introduced without a magic bump.
const RouteMod = "mod"

// manifest codec bounds: decode rejects anything larger, so corrupt or
// adversarial inputs cannot demand huge allocations.
const (
	maxManifestShards   = 1 << 12
	maxManifestString   = 1 << 12
	maxManifestSegments = 1 << 10
	maxManifestTombs    = 1 << 22
)

// Manifest describes a sharded serving set: how many document partitions,
// which rule routes a document to its shard, and the per-shard store files
// with their summary counts (cross-checked at load).
type Manifest struct {
	NumShards int
	TotalDocs int64
	VocabSize int64
	Route     string
	Shards    []ShardInfo
}

// ShardInfo names one shard's store file (relative to the manifest) and its
// summary counts, plus — in a v2 manifest — the shard's live state: its
// sealed ingest segments and tombstoned document IDs.
type ShardInfo struct {
	File     string
	Docs     int64 // base-store document count
	Postings int64 // base-store posting count

	// Segments lists the shard's sealed ingest segments (sidecar files next
	// to the manifest), oldest first. Empty for a frozen shard.
	Segments []SegmentInfo
	// Tombs lists the shard's tombstoned document IDs, strictly ascending.
	Tombs []int64
	// NextDoc persists the shard's document-ID high-water mark when the
	// surviving data no longer implies it — after the highest assigned IDs
	// were deleted and compacted away, their tombstones drop with the data,
	// and without this mark a reloaded set would re-assign them (IDs are
	// never reused). Zero means "derive from the base bound and segments",
	// which is exact whenever the highest ID is still present.
	NextDoc int64
}

// SegmentInfo names one sealed segment file and its document count.
type SegmentInfo struct {
	File string
	Docs int64
}

// liveState reports whether any shard carries live state — segments,
// tombstones or an explicit ID high-water mark — which decides the manifest
// version written.
func (m *Manifest) liveState() bool {
	for _, s := range m.Shards {
		if len(s.Segments) > 0 || len(s.Tombs) > 0 || s.NextDoc > 0 {
			return true
		}
	}
	return false
}

// Validate checks the structural invariants a manifest must satisfy before
// its shard files are touched.
func (m *Manifest) Validate() error {
	switch {
	case m.NumShards <= 0 || m.NumShards > maxManifestShards:
		return fmt.Errorf("serve: manifest has %d shards", m.NumShards)
	case len(m.Shards) != m.NumShards:
		return fmt.Errorf("serve: manifest lists %d shards, header says %d", len(m.Shards), m.NumShards)
	case m.TotalDocs < 0 || m.VocabSize < 0:
		return fmt.Errorf("serve: manifest has negative counts")
	case m.Route != RouteMod:
		return fmt.Errorf("serve: manifest has unknown partition rule %q", m.Route)
	}
	var docs int64
	files := make(map[string]bool, len(m.Shards))
	plainName := func(name string) bool {
		return name != "" && len(name) <= maxManifestString &&
			!strings.ContainsAny(name, "/\\") && name != "." && name != ".."
	}
	for i, s := range m.Shards {
		switch {
		case !plainName(s.File):
			// Shard files live next to the manifest; anything else would let
			// a manifest reach outside its own directory.
			return fmt.Errorf("serve: manifest shard %d has a bad file name", i)
		case files[s.File]:
			// A repeated file would serve its documents twice, breaking the
			// disjointness every gather merge relies on.
			return fmt.Errorf("serve: manifest shard %d repeats file %q", i, s.File)
		case s.Docs < 0 || s.Postings < 0:
			return fmt.Errorf("serve: manifest shard %d has negative counts", i)
		case len(s.Segments) > maxManifestSegments:
			return fmt.Errorf("serve: manifest shard %d has %d segments", i, len(s.Segments))
		case len(s.Tombs) > maxManifestTombs:
			return fmt.Errorf("serve: manifest shard %d has %d tombstones", i, len(s.Tombs))
		case s.NextDoc < 0:
			return fmt.Errorf("serve: manifest shard %d has negative next-doc mark", i)
		}
		files[s.File] = true
		docs += s.Docs
		for j, seg := range s.Segments {
			switch {
			case !plainName(seg.File):
				return fmt.Errorf("serve: manifest shard %d segment %d has a bad file name", i, j)
			case files[seg.File]:
				return fmt.Errorf("serve: manifest shard %d repeats file %q", i, seg.File)
			case seg.Docs < 0:
				return fmt.Errorf("serve: manifest shard %d segment %d has negative docs", i, j)
			}
			files[seg.File] = true
		}
		for j, d := range s.Tombs {
			if d < 0 || (j > 0 && d <= s.Tombs[j-1]) {
				return fmt.Errorf("serve: manifest shard %d tombstones not strictly ascending at %d", i, j)
			}
		}
	}
	if docs != m.TotalDocs {
		return fmt.Errorf("serve: manifest shards sum to %d docs, header says %d", docs, m.TotalDocs)
	}
	return nil
}

// Encode serializes the manifest: magic, then uvarint counts and
// length-prefixed strings. The format is versioned by the magic alone: v1
// bytes when no shard carries live state (identical to what earlier builds
// wrote and read), v2 otherwise, which appends each shard's segment list and
// delta-coded tombstone IDs.
func (m *Manifest) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	live := m.liveState()
	magic := manifestMagic
	if live {
		magic = manifestMagicV2
	}
	buf := []byte(magic)
	buf = binary.AppendUvarint(buf, uint64(m.NumShards))
	buf = binary.AppendUvarint(buf, uint64(m.TotalDocs))
	buf = binary.AppendUvarint(buf, uint64(m.VocabSize))
	buf = appendString(buf, m.Route)
	for _, s := range m.Shards {
		buf = appendString(buf, s.File)
		buf = binary.AppendUvarint(buf, uint64(s.Docs))
		buf = binary.AppendUvarint(buf, uint64(s.Postings))
		if !live {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.Segments)))
		for _, seg := range s.Segments {
			buf = appendString(buf, seg.File)
			buf = binary.AppendUvarint(buf, uint64(seg.Docs))
		}
		buf = binary.AppendUvarint(buf, uint64(len(s.Tombs)))
		prev := int64(0)
		for _, d := range s.Tombs {
			buf = binary.AppendUvarint(buf, uint64(d-prev))
			prev = d
		}
		buf = binary.AppendUvarint(buf, uint64(s.NextDoc))
	}
	return buf, nil
}

// DecodeManifest parses and validates a manifest written by Encode, either
// version.
func DecodeManifest(data []byte) (*Manifest, error) {
	live := false
	switch {
	case len(data) >= len(manifestMagic) && string(data[:len(manifestMagic)]) == manifestMagic:
	case len(data) >= len(manifestMagicV2) && string(data[:len(manifestMagicV2)]) == manifestMagicV2:
		live = true
	default:
		return nil, fmt.Errorf("serve: not a shard manifest")
	}
	r := &byteReader{buf: data[len(manifestMagic):]}
	m := &Manifest{}
	m.NumShards = int(r.uvarint())
	m.TotalDocs = int64(r.uvarint())
	m.VocabSize = int64(r.uvarint())
	m.Route = r.string()
	if r.err == nil && (m.NumShards < 0 || m.NumShards > maxManifestShards) {
		return nil, fmt.Errorf("serve: manifest has %d shards", m.NumShards)
	}
	if r.err == nil {
		m.Shards = make([]ShardInfo, m.NumShards)
		for i := range m.Shards {
			s := &m.Shards[i]
			s.File = r.string()
			s.Docs = int64(r.uvarint())
			s.Postings = int64(r.uvarint())
			if !live || r.err != nil {
				continue
			}
			nSegs := r.uvarint()
			if nSegs > maxManifestSegments {
				return nil, fmt.Errorf("serve: manifest shard %d has %d segments", i, nSegs)
			}
			for j := uint64(0); j < nSegs && r.err == nil; j++ {
				s.Segments = append(s.Segments, SegmentInfo{File: r.string(), Docs: int64(r.uvarint())})
			}
			nTombs := r.uvarint()
			if nTombs > maxManifestTombs {
				return nil, fmt.Errorf("serve: manifest shard %d has %d tombstones", i, nTombs)
			}
			prev := int64(0)
			for j := uint64(0); j < nTombs && r.err == nil; j++ {
				prev += int64(r.uvarint())
				s.Tombs = append(s.Tombs, prev)
			}
			s.NextDoc = int64(r.uvarint())
		}
	}
	// A v2 manifest without live state would re-encode as v1; reject it so
	// encode(decode(x)) stays the identity on every accepted input.
	if r.err == nil && live && !m.liveState() {
		return nil, fmt.Errorf("serve: v2 manifest carries no live state")
	}
	switch {
	case r.err != nil:
		return nil, fmt.Errorf("serve: corrupt manifest: %w", r.err)
	case len(r.buf) != 0:
		return nil, fmt.Errorf("serve: manifest has %d trailing bytes", len(r.buf))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// appendString appends a uvarint length prefix and the bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// byteReader cursors over the manifest body, latching the first error so the
// decode loop stays linear.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *byteReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxManifestString || n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("string length %d out of bounds", n)
		return ""
	}
	s := string(r.buf[:n])
	r.buf = r.buf[n:]
	return s
}
