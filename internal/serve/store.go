// Package serve is the concurrent query-serving layer over a finished
// pipeline run — the "heavy traffic" axis the paper leaves open after naming
// interactive analysis of massive datasets as its next frontier. A Store is
// a front-end snapshot of a run's distributed products (vocabulary, inverted
// index, knowledge signatures, clusters and ThemeView projection); a Server
// answers many concurrent analyst Sessions against one Store with an LRU
// posting-list cache, a top-K similarity cache, and request coalescing that
// batches concurrent gets for the same term owner into one modeled transfer.
//
// Serving keeps the engine's virtual-time discipline: every interaction is
// charged the latency it would cost on the modeled cluster — remote one-sided
// transfers for cache misses against the distributed index, front-end memory
// copies for hits — so sustained queries/sec and per-interaction latency are
// measurable for workloads far larger than the host.
package serve

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/ga"
	"inspire/internal/postings"
	"inspire/internal/project"
	"inspire/internal/scan"
	"inspire/internal/signature"
	"inspire/internal/simtime"
	"inspire/internal/storefile"
	"inspire/internal/tiles"
)

// Store is the serving form of one finished pipeline run: an immutable base
// snapshot plus a live side — sealed delta segments, tombstones and an
// in-memory ingest delta — published to readers as atomically swapped epoch
// views (see view.go and ingest.go). The exported fields are the base
// snapshot; they change only under explicit whole-layout operations
// (CompressPostings/DecompressPostings before serving starts, Rebase), each
// of which publishes a fresh view rather than mutating slices a concurrent
// reader may hold. Every method is safe for concurrent use.
//
// The posting lists keep their distributed layout metadata (Prefix: the
// dense-term ownership bounds of the producing run), so the serving cost
// model can distinguish front-end-local reads from modeled remote one-sided
// gets against a term's owner.
type Store struct {
	// Model is the machine model of the producing run; serving costs are
	// charged against it.
	Model *simtime.Model
	// P is the world size of the producing run.
	P int

	TotalDocs int64
	VocabSize int64

	// ShardCount/ShardIndex/GlobalDocs describe a shard store's slice of the
	// document space: base document d lives here iff d < GlobalDocs and
	// d mod ShardCount == ShardIndex. ShardCount 0 is a monolithic store
	// with the dense base [0, TotalDocs). The live layer needs this to tell
	// "base document" from "unknown" on a shard.
	ShardCount int
	ShardIndex int
	GlobalDocs int64

	// Holes lists, strictly ascending, the base-range document IDs whose
	// documents were deleted and then rebased away: the dense range keeps
	// covering them (TotalDocs — GlobalDocs on a shard — stays the ID
	// high-water mark, because IDs are never reused), but they must read as
	// absent. Nil for stores with no rebased deletions.
	Holes []int64

	// Terms maps a normalized term to its dense ID; TermList is the inverse.
	Terms    map[string]int64
	TermList []string
	// Prefix holds the dense-ID ownership bounds of the producing run
	// (len P+1); term t is owned by the rank r with Prefix[r] <= t < Prefix[r+1].
	Prefix []int64

	// DF[t] is term t's document frequency.
	DF []int64

	// Posts holds the postings in the serving format: block-compressed
	// delta+varint doc/freq lists with a skip directory (INSPSTORE2). When
	// nil the store carries the legacy flat layout below instead.
	Posts *postings.Store

	// Legacy flat layout (INSPSTORE1, and the transient form Snapshot drains
	// into before compressing): Off[t] is the start of term t's postings in
	// the concatenated PostDoc/PostFreq arrays.
	Off      []int64
	PostDoc  []int64
	PostFreq []int64

	// Knowledge signatures, sorted by document ID (nil = null signature).
	// Read them through Signatures(), which returns a consistent indexed
	// snapshot even across ApplySignatures.
	SigM    int
	SigDocs []int64
	SigVecs [][]float64

	// Proj is the frozen signature-projection model of the producing run
	// (the association-matrix rows of the major terms). Live ingestion uses
	// it to give added documents the exact signature the batch pipeline
	// would have computed; nil on stores persisted before it existed, in
	// which case ingested documents get null signatures.
	Proj *signature.Projection

	// Planar is the frozen 2-D projection model (centroid mean + leading
	// principal components): live ingestion uses it to place added
	// documents on the ThemeView plane exactly as the batch run would
	// have. Nil on stores persisted before it existed, in which case
	// ingested documents stay off the Galaxy until an offline re-run.
	Planar *project.Planar

	// TileBox is the frozen world bounds of the Galaxy tile pyramid, fixed
	// at snapshot time from the projected points and replicated to every
	// shard so tile (z, x, y) addresses the same world rectangle on every
	// server of a set. Documents projected outside it (late ingests) clamp
	// into the edge tiles. Nil on legacy stores; derived from the points
	// at load.
	TileBox *tiles.Rect

	// ThemeView products.
	Points         []project.Point
	AssignDocs     []int64
	AssignClusters []int64
	K              int
	Themes         []core.Theme

	// Document metadata (see meta.go): sparse sorted parallel vectors over
	// base document IDs. MetaDocs lists, strictly ascending, the base
	// documents carrying any metadata; MetaTimes their ingest timestamps
	// (0 = none). MetaFacetOffs/MetaFacetIDs are the row-offset form of the
	// per-document facet sets, as IDs into FacetDict, each row ascending by
	// dictionary string; MetaFacetOffs is nil when no document has facets.
	// Exported so the legacy gob formats persist them; earlier builds drop
	// the unknown fields and serve the corpus unfaceted.
	MetaDocs      []int64
	MetaTimes     []int64
	MetaFacetOffs []int64
	MetaFacetIDs  []int64
	FacetDict     []string

	sigMu  sync.Mutex
	sigSet *signature.Set

	// backing is the decoded INSPSTORE4 file this store serves from, nil
	// for heap-resident (legacy or freshly indexed) stores. Base vectors
	// alias its sections; it is never unmapped while the store lives.
	backing *storefile.File
	// res is the resident-set accountant of a v4 store: decoded posting
	// lists pin heap bytes against its budget, everything else stays
	// evictable in the mapping. Nil for heap-resident stores.
	res *storefile.Resident
	// termSorted is the permutation of TermList in ascending term order —
	// the mapped replacement for the Terms map (nil on v4 loads). See
	// lookupTerm.
	termSorted []int64

	// live is the mutable serving state: the current epoch view, the ingest
	// delta and the compaction bookkeeping. Never persisted; see view.go.
	live liveState
}

// snapshotStreams is the number of concurrent one-sided streams Snapshot uses
// to drain the posting arrays (cluster.Comm.Fork + ga.Array.On).
const snapshotStreams = 4

// Snapshot collectively exports a finished run into a serving store. Every
// rank must call it with its own result; rank 0 returns the store, all other
// ranks return (nil, nil). The export is charged to the virtual clocks like
// any other post-pipeline step: rank 0 drains the distributed index with
// overlapped one-sided gets and replicates the vocabulary tables.
func Snapshot(c *cluster.Comm, res *core.Result) (*Store, error) {
	if res == nil || res.Index == nil || res.Clusters == nil {
		return nil, fmt.Errorf("serve: snapshot needs a finished pipeline result")
	}

	// Signatures may already be gathered (Config.CollectSignatures); if not,
	// gather them now. Only rank 0 holds them, so agree collectively.
	have := 0.0
	if res.SigDocIDs != nil {
		have = 1
	}
	if c.AllreduceSum(have) == 0 {
		core.GatherSignatures(c, res)
	}

	// Gather (doc, cluster) assignment pairs at rank 0.
	local := res.Clusters.Assign
	docs := make([]int64, len(local))
	asg := make([]int64, len(local))
	for i, a := range local {
		docs[i] = res.Forward.GlobalDocIDs[i]
		asg[i] = int64(a)
	}
	docParts := c.GatherInt64s(0, docs)
	asgParts := c.GatherInt64s(0, asg)

	var st *Store
	if c.Rank() == 0 {
		st = buildStore(c, res, docParts, asgParts)
	}
	c.Barrier()
	return st, nil
}

// buildStore runs on rank 0 only: it drains the distributed products into
// front-end memory.
func buildStore(c *cluster.Comm, res *core.Result, docParts, asgParts [][]int64) *Store {
	m := c.Model()
	V := res.VocabSize
	st := &Store{
		Model:     m,
		P:         c.Size(),
		TotalDocs: res.TotalDocs,
		VocabSize: V,
		SigM:      res.TopM,
		SigDocs:   res.SigDocIDs,
		SigVecs:   res.SigVecs,
		Points:    res.Coords,
		K:         res.Clusters.K,
		Themes:    res.Themes,
		Proj:      signature.NewProjection(res.AM),
		Planar:    project.NewPlanar(res.Projection),
		TileBox:   pointBounds(res.Coords),
	}

	// Ownership bounds and the replicated vocabulary.
	st.Prefix = make([]int64, c.Size()+1)
	for r := 0; r < c.Size(); r++ {
		lo, hi := res.Vocab.DenseRange(r)
		st.Prefix[r] = lo
		st.Prefix[r+1] = hi
	}
	st.Terms = make(map[string]int64, V)
	st.TermList = make([]string, V)
	var remoteBytes float64
	for id := int64(0); id < V; id++ {
		t := res.Vocab.Term(id)
		st.TermList[id] = t
		st.Terms[t] = id
		if st.Owner(id) != c.Rank() {
			remoteBytes += float64(len(t) + 8)
		}
	}
	c.Clock().Advance(m.OneSidedCost(remoteBytes))

	// Term statistics and posting offsets.
	st.DF = make([]int64, V)
	st.Off = make([]int64, V)
	if V > 0 {
		res.Index.Counts.Get(0, st.DF)
		res.Index.Off.Get(0, st.Off)
	}
	total := res.Index.PostDoc.N()
	st.PostDoc = make([]int64, total)
	st.PostFreq = make([]int64, total)

	// Drain the posting arrays with overlapped one-sided streams: each fork
	// owns a private clock, so the cost of the concurrent gets folds back in
	// as their maximum, not their sum.
	if total > 0 {
		streams := snapshotStreams
		if total < int64(streams) {
			streams = 1
		}
		chunk := (total + int64(streams) - 1) / int64(streams)
		forks := make([]*cluster.Comm, streams)
		var wg sync.WaitGroup
		for i := range forks {
			forks[i] = c.Fork()
			lo := int64(i) * chunk
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			if lo >= hi {
				continue
			}
			pd := res.Index.PostDoc.On(forks[i])
			pf := res.Index.PostFreq.On(forks[i])
			wg.Add(1)
			go func(lo, hi int64, pd, pf *ga.Array[int64]) {
				defer wg.Done()
				pd.Get(lo, st.PostDoc[lo:hi])
				pf.Get(lo, st.PostFreq[lo:hi])
			}(lo, hi, pd, pf)
		}
		wg.Wait()
		c.Join(forks...)
	}

	// Flatten the gathered cluster assignments.
	for r := range docParts {
		st.AssignDocs = append(st.AssignDocs, docParts[r]...)
		st.AssignClusters = append(st.AssignClusters, asgParts[r]...)
	}

	// Compress into the serving format; the drained flat arrays were only
	// ever transient. One front-end pass: charged as a local re-encode.
	if err := st.CompressPostings(); err != nil {
		panic(fmt.Sprintf("serve: snapshot compression: %v", err))
	}
	c.Clock().Advance(m.LocalCopyCost(16*float64(total)) + m.FlopCost(4*float64(total)))
	return st
}

// TermID resolves a query term (normalized exactly like the tokenizer, via
// the shared scan.NormalizeTerm fold) to its dense ID.
func (st *Store) TermID(term string) (int64, bool) {
	return st.lookupTerm(scan.NormalizeTerm(term))
}

// Owner returns the producing-run rank that owned dense term ID t.
func (st *Store) Owner(t int64) int {
	return sort.Search(st.P, func(r int) bool { return st.Prefix[r+1] > t })
}

// Postings returns term t's posting list (sorted by document ID). For a
// compressed store the list is decoded into fresh slices; for the flat
// layout the returned slices are shared views and must not be mutated.
func (st *Store) Postings(t int64) (docs, freqs []int64) {
	if st.Posts != nil {
		return st.Posts.Postings(t)
	}
	n := st.DF[t]
	if n == 0 {
		return nil, nil
	}
	off := st.Off[t]
	return st.PostDoc[off : off+n], st.PostFreq[off : off+n]
}

// Compressed reports whether the store carries the block-compressed posting
// layout (INSPSTORE2) rather than the legacy flat arrays.
func (st *Store) Compressed() bool { return st.Posts != nil }

// CompressPostings re-encodes the flat posting arrays into the block
// format and drops them; a no-op when already compressed. The serving paths
// work on either layout, so this is a pure space/latency trade. Like
// DecompressPostings it rewrites the base layout, so it refuses once live
// data (ingested segments, tombstones) exists — rebase or re-load first.
func (st *Store) CompressPostings() error {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if st.Posts != nil {
		return nil
	}
	if st.hasLiveLocked() {
		return fmt.Errorf("serve: compress postings: store has live segments or tombstones")
	}
	w := postings.NewWriter(int64(len(st.PostDoc)))
	for t := int64(0); t < st.VocabSize; t++ {
		n := st.DF[t]
		var docs, freqs []int64
		if n > 0 {
			off := st.Off[t]
			docs, freqs = st.PostDoc[off:off+n], st.PostFreq[off:off+n]
		}
		if err := w.Append(docs, freqs); err != nil {
			return fmt.Errorf("serve: compress postings: %w", err)
		}
	}
	st.Posts = w.Finish()
	st.Off, st.PostDoc, st.PostFreq = nil, nil, nil
	st.resetViewLocked()
	return nil
}

// DecompressPostings expands the block format back into the flat layout —
// the v1 baseline the bench figure compares against; a no-op when already
// flat. Panics if live data exists (it is a pre-serving/bench operation).
func (st *Store) DecompressPostings() {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if st.Posts == nil {
		return
	}
	if st.hasLiveLocked() {
		panic("serve: DecompressPostings on a store with live segments or tombstones")
	}
	var total int64
	for _, n := range st.Posts.Count {
		total += n
	}
	st.Off = make([]int64, st.VocabSize)
	st.PostDoc = make([]int64, 0, total)
	st.PostFreq = make([]int64, 0, total)
	for t := int64(0); t < st.VocabSize; t++ {
		st.Off[t] = int64(len(st.PostDoc))
		docs, freqs := st.Posts.Postings(t)
		st.PostDoc = append(st.PostDoc, docs...)
		st.PostFreq = append(st.PostFreq, freqs...)
	}
	st.Posts = nil
	st.resetViewLocked()
}

// FlatCopy returns a copy of the store that serves from the flat posting
// layout, sharing every other product with the receiver. The compressed-vs-
// flat bench figure serves both from one snapshot this way.
func (st *Store) FlatCopy() *Store {
	cp := &Store{
		Model: st.Model, P: st.P,
		TotalDocs: st.TotalDocs, VocabSize: st.VocabSize,
		ShardCount: st.ShardCount, ShardIndex: st.ShardIndex, GlobalDocs: st.GlobalDocs,
		Holes: st.Holes,
		Terms: st.Terms, TermList: st.TermList, Prefix: st.Prefix,
		DF: st.DF, Posts: st.Posts,
		Off: st.Off, PostDoc: st.PostDoc, PostFreq: st.PostFreq,
		SigM: st.SigM, SigDocs: st.SigDocs, SigVecs: st.SigVecs, Proj: st.Proj,
		Planar: st.Planar, TileBox: st.TileBox,
		Points: st.Points, AssignDocs: st.AssignDocs, AssignClusters: st.AssignClusters,
		K: st.K, Themes: st.Themes,
		MetaDocs: st.MetaDocs, MetaTimes: st.MetaTimes,
		MetaFacetOffs: st.MetaFacetOffs, MetaFacetIDs: st.MetaFacetIDs, FacetDict: st.FacetDict,
		backing: st.backing, res: st.res, termSorted: st.termSorted,
	}
	cp.DecompressPostings()
	return cp
}

// Fork returns a copy of the store with fresh live state: it shares every
// immutable base product with the receiver but ingests, tombstones and
// compacts independently. Benchmarks and tests fork a cached snapshot so
// ingestion never leaks into other users of the original.
func (st *Store) Fork() *Store {
	return &Store{
		Model: st.Model, P: st.P,
		TotalDocs: st.TotalDocs, VocabSize: st.VocabSize,
		ShardCount: st.ShardCount, ShardIndex: st.ShardIndex, GlobalDocs: st.GlobalDocs,
		Holes: st.Holes,
		Terms: st.Terms, TermList: st.TermList, Prefix: st.Prefix,
		DF: st.DF, Posts: st.Posts,
		Off: st.Off, PostDoc: st.PostDoc, PostFreq: st.PostFreq,
		SigM: st.SigM, SigDocs: st.SigDocs, SigVecs: st.SigVecs, Proj: st.Proj,
		Planar: st.Planar, TileBox: st.TileBox,
		Points: st.Points, AssignDocs: st.AssignDocs, AssignClusters: st.AssignClusters,
		K: st.K, Themes: st.Themes,
		MetaDocs: st.MetaDocs, MetaTimes: st.MetaTimes,
		MetaFacetOffs: st.MetaFacetOffs, MetaFacetIDs: st.MetaFacetIDs, FacetDict: st.FacetDict,
		backing: st.backing, res: st.res, termSorted: st.termSorted,
	}
}

// EmptyCopy returns a store with the receiver's frozen model — vocabulary,
// ownership bounds, machine model, themes and signature projection — but no
// documents at all: no postings, signatures, points or assignments. It is
// the ingest-from-scratch starting point (and what the offline-vs-ingested
// equivalence tests build on): every document is then added through the live
// path against the same vocabulary and projection the batch run produced.
func (st *Store) EmptyCopy() *Store {
	w := postings.NewWriter(0)
	for t := int64(0); t < st.VocabSize; t++ {
		if err := w.Append(nil, nil); err != nil {
			panic(err) // empty appends cannot fail
		}
	}
	posts := w.Finish()
	return &Store{
		Model: st.Model, P: st.P,
		TotalDocs: 0, VocabSize: st.VocabSize,
		Terms: st.Terms, TermList: st.TermList, Prefix: st.Prefix,
		DF: posts.Count, Posts: posts,
		SigM: st.SigM, Proj: st.Proj,
		Planar: st.Planar, TileBox: st.TileBox,
		K: st.K, Themes: st.Themes,
		backing: st.backing, res: st.res, termSorted: st.termSorted,
	}
}

// Signatures returns the store's base signature set as one consistent,
// indexed snapshot (the slices and index always belong together, even if
// ApplySignatures swaps the set concurrently).
func (st *Store) Signatures() *signature.Set {
	st.sigMu.Lock()
	defer st.sigMu.Unlock()
	if st.sigSet == nil {
		set, err := signature.NewSet(st.SigM, st.SigDocs, st.SigVecs)
		if err != nil {
			// validate() rejects mismatched lengths at load; a hand-built
			// store that skipped validation fails loudly here.
			panic(err)
		}
		st.sigSet = set
	}
	return st.sigSet
}

// setSigSet installs a signature set as the store's base set, keeping the
// persisted fields in step; callers hold live.mu (or own the store).
func (st *Store) setSigSet(set *signature.Set) {
	st.sigMu.Lock()
	st.SigM = set.M
	st.SigDocs = set.Docs
	st.SigVecs = set.Vecs
	st.sigSet = set
	st.sigMu.Unlock()
}

// SignatureOf returns the knowledge signature of a document in the current
// view — base set or ingested segments: (nil, true) for a present null
// signature, (nil, false) for an unknown or deleted document.
func (st *Store) SignatureOf(doc int64) ([]float64, bool) {
	return st.viewNow().sigVec(doc)
}

// ApplySignatures replaces the store's base signatures with a persisted set —
// the serving load path for signatures regenerated offline (e.g. by an
// adaptive-dimensionality rerun) without re-indexing. The swap rides the
// epoch mechanism: a new view is published with the new set, so every server
// over this store — including ones already running — answers its next
// Similar from the new signatures, and the epoch-keyed similarity caches
// invalidate themselves. Safe to call concurrently with queries.
func (st *Store) ApplySignatures(set *signature.Set) error {
	if set == nil || set.Len() == 0 {
		return fmt.Errorf("serve: empty signature set")
	}
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if set.M != st.SigM {
		// The signature space is changing dimensionality. Live segments (and
		// buffered adds) carry vectors of the old dimensionality, and the
		// frozen ingest projection maps into the old space — mixing them
		// would score mismatched vectors.
		if st.hasLiveLocked() {
			return fmt.Errorf("serve: signature set has dimensionality %d but live segments carry %d; flush and Rebase first",
				set.M, st.SigM)
		}
		if st.Proj != nil && st.Proj.M != set.M {
			return fmt.Errorf("serve: signature set dimensionality %d disagrees with the store's ingest projection (%d); re-snapshot to change the signature space",
				set.M, st.Proj.M)
		}
	}
	st.setSigSet(set)
	if v := st.live.cur.Load(); v != nil {
		st.publishLocked(&view{gen: v.gen, base: v.base, segs: v.segs, tombs: v.tombs, sigs: set, pts: v.pts})
	}
	return nil
}

// TopTerms returns up to n terms ordered by descending document frequency
// (ties alphabetically) — the natural query vocabulary for workload replay.
func (st *Store) TopTerms(n int) []string { return topTerms(st.DF, st.TermList, n) }

// topTerms ranks a DF vector; the Router reuses it over its global
// (shard-summed) document frequencies.
func topTerms(df []int64, termList []string, n int) []string {
	ids := make([]int64, 0, len(df))
	for t, d := range df {
		if d > 0 {
			ids = append(ids, int64(t))
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if df[ids[a]] != df[ids[b]] {
			return df[ids[a]] > df[ids[b]]
		}
		return termList[ids[a]] < termList[ids[b]]
	})
	if len(ids) > n {
		ids = ids[:n]
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = termList[id]
	}
	return out
}

// SampleDocs returns up to n document IDs with non-null signatures, in
// ascending ID order — deterministic similarity-search targets.
func (st *Store) SampleDocs(n int) []int64 {
	set := st.Signatures()
	out := make([]int64, 0, n)
	for i, d := range set.Docs {
		if set.Vecs[i] == nil {
			continue
		}
		out = append(out, d)
		if len(out) == n {
			break
		}
	}
	return out
}

// validate checks the structural invariants a loaded store must satisfy.
func (st *Store) validate() error {
	V := st.VocabSize
	switch {
	case st.Model == nil:
		return fmt.Errorf("serve: store has no machine model")
	case st.P <= 0 || int64(len(st.Prefix)) != int64(st.P)+1:
		return fmt.Errorf("serve: store ownership bounds malformed (P=%d, len=%d)", st.P, len(st.Prefix))
	case int64(len(st.DF)) != V || int64(len(st.TermList)) != V:
		return fmt.Errorf("serve: store term vectors disagree with vocabulary size %d", V)
	case len(st.SigDocs) != len(st.SigVecs):
		return fmt.Errorf("serve: store has %d signature ids for %d vectors", len(st.SigDocs), len(st.SigVecs))
	case len(st.AssignDocs) != len(st.AssignClusters):
		return fmt.Errorf("serve: store assignment vectors disagree")
	case len(st.PostDoc) != len(st.PostFreq):
		return fmt.Errorf("serve: store has %d posting docs for %d frequencies", len(st.PostDoc), len(st.PostFreq))
	}
	if err := st.Model.Validate(); err != nil {
		return err
	}
	for i, d := range st.Holes {
		if d < 0 || (i > 0 && d <= st.Holes[i-1]) {
			return fmt.Errorf("serve: store holes not strictly ascending at %d", i)
		}
	}
	if st.Proj != nil {
		if err := st.Proj.Validate(); err != nil {
			return err
		}
	}
	if st.Planar != nil {
		if err := st.Planar.Validate(); err != nil {
			return err
		}
	}
	if st.TileBox != nil {
		if err := st.TileBox.Validate(); err != nil {
			return err
		}
	}
	if err := st.validateMeta(); err != nil {
		return err
	}
	if st.Posts != nil {
		if err := st.Posts.Validate(); err != nil {
			return err
		}
		if st.Posts.NumTerms != V {
			return fmt.Errorf("serve: compressed postings cover %d of %d terms", st.Posts.NumTerms, V)
		}
		for t := int64(0); t < V; t++ {
			if st.Posts.Count[t] != st.DF[t] {
				return fmt.Errorf("serve: term %d has %d compressed postings for DF %d", t, st.Posts.Count[t], st.DF[t])
			}
		}
		return nil
	}
	if int64(len(st.Off)) != V {
		return fmt.Errorf("serve: flat store has %d offsets for %d terms", len(st.Off), V)
	}
	for t := int64(0); t < V; t++ {
		if n := st.DF[t]; n > 0 {
			if off := st.Off[t]; off < 0 || off+n > int64(len(st.PostDoc)) {
				return fmt.Errorf("serve: store postings of term %d out of bounds", t)
			}
		}
	}
	return nil
}

// The store file magics version the format: v1 carries flat posting arrays,
// v2 the block-compressed layout, v3 adds rebased deletion holes; all three
// are a magic line over one gob body. v4 (INSPSTORE4, internal/storefile) is
// the page-aligned zero-copy layout compressed stores persist as today. All
// headers are the same length, and the loader accepts any of them. The v3
// bump is what makes an earlier build reject a hole-carrying file loudly
// instead of gob-dropping the unknown field and silently resurrecting the
// deleted documents.
const (
	storeMagicV1 = "INSPSTORE1\n"
	storeMagicV2 = "INSPSTORE2\n"
	storeMagicV3 = "INSPSTORE3\n"
)

// Save writes the store in its persistent format, enabling index-once/
// serve-many across process restarts. A compressed store writes the
// page-aligned INSPSTORE4 layout that later loads serve straight from an
// mmap; a flat store writes the legacy INSPSTORE1 gob, byte-for-byte
// loadable by previous builds. SaveLegacy keeps the v1/v2/v3 writers
// reachable for compatibility tooling.
func (st *Store) Save(w io.Writer) error {
	if st.Posts != nil {
		return st.saveV4(w)
	}
	return st.SaveLegacy(w)
}

// SaveLegacy writes the pre-v4 persistent format (magic header + gob body):
// INSPSTORE2 for a compressed store — INSPSTORE3 when rebased deletions left
// ID holes — and INSPSTORE1 for a flat store. Builds that predate INSPSTORE4
// load these byte-for-byte; the gob body fully materializes on load, so
// serving prefers Save's v4 layout. Bitmap posting containers are re-encoded
// into varint blocks here — the legacy formats promise loadability by
// previous builds, whose Validate would (correctly, loudly) reject a
// bitmap-carrying directory.
func (st *Store) SaveLegacy(w io.Writer) error {
	enc := st
	if st.Terms == nil && len(st.TermList) > 0 {
		// A mapped v4 store carries no term map; the gob formats do. Encode
		// a shallow fork with the map rebuilt so the legacy file is
		// self-contained.
		cp := st.Fork()
		cp.Terms = make(map[string]int64, len(st.TermList))
		for i, t := range st.TermList {
			cp.Terms[t] = int64(i)
		}
		enc = cp
	}
	if enc.Posts != nil && enc.Posts.HasBitmaps() {
		bw := postings.NewWriter(int64(len(enc.Posts.DocBlob)))
		bw.ForceBlocks()
		for t := int64(0); t < enc.VocabSize; t++ {
			docs, freqs := enc.Posts.Postings(t)
			if err := bw.Append(docs, freqs); err != nil {
				return fmt.Errorf("serve: save legacy store: %w", err)
			}
		}
		cp := enc.Fork()
		cp.Posts = bw.Finish()
		enc = cp
	}
	magic := storeMagicV1
	if enc.Posts != nil {
		magic = storeMagicV2
	}
	if len(enc.Holes) > 0 {
		magic = storeMagicV3
	}
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, magic); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(enc); err != nil {
		return fmt.Errorf("serve: save store: %w", err)
	}
	return bw.Flush()
}

// SaveFile persists the store to a file. The write is atomic (temp + fsync
// + rename): a crash mid-save leaves the previous file intact.
func (st *Store) SaveFile(path string) error {
	return storefile.WriteFileAtomic(path, st.Save)
}

// SaveLegacyFile persists the pre-v4 format to a file, atomically.
func (st *Store) SaveLegacyFile(path string) error {
	return storefile.WriteFileAtomic(path, st.SaveLegacy)
}

// LoadStore reads a store written by Save — any format version — and
// validates its invariants. v4 bodies decode over a heap copy of the stream
// (the file loaders map instead); the gob formats materialize as always.
// INSPSTORE1 files load into the flat layout and keep serving; callers that
// want them in the compressed format follow up with CompressPostings.
func LoadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(storeMagicV1))
	if err != nil {
		return nil, fmt.Errorf("serve: load store: %w", err)
	}
	if storefile.Sniff(magic) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("serve: load store: %w", err)
		}
		f, err := storefile.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("serve: load store: %w", err)
		}
		return decodeStoreV4(f)
	}
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("serve: load store: %w", err)
	}
	if string(magic) != storeMagicV1 && string(magic) != storeMagicV2 && string(magic) != storeMagicV3 {
		return nil, fmt.Errorf("serve: load store: bad magic %q", magic)
	}
	st := &Store{}
	if err := gob.NewDecoder(br).Decode(st); err != nil {
		return nil, fmt.Errorf("serve: load store: %w", err)
	}
	switch {
	case string(magic) == storeMagicV2 && st.Posts == nil:
		return nil, fmt.Errorf("serve: load store: v2 file carries no compressed postings")
	case string(magic) == storeMagicV1 && st.Posts != nil:
		return nil, fmt.Errorf("serve: load store: v1 file carries compressed postings")
	case string(magic) != storeMagicV3 && len(st.Holes) > 0:
		return nil, fmt.Errorf("serve: load store: %q file carries deletion holes", magic[:10])
	case string(magic) == storeMagicV3 && len(st.Holes) == 0:
		return nil, fmt.Errorf("serve: load store: v3 file carries no deletion holes")
	}
	if st.Terms == nil && len(st.TermList) > 0 {
		// Defensive: a legacy body should always carry its term map, but a
		// rebuilt one serves identically.
		st.Terms = make(map[string]int64, len(st.TermList))
		for i, t := range st.TermList {
			st.Terms[t] = int64(i)
		}
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	// Legacy stores predate the frozen tile bounds; derive them from the
	// persisted points so the pyramid the server builds lazily addresses
	// the same world grid a re-saved store would.
	if st.TileBox == nil && len(st.Points) > 0 {
		st.TileBox = pointBounds(st.Points)
	}
	return st, nil
}

// LoadStoreFile reads a persisted store by path. An INSPSTORE4 file is
// mapped: the store serves straight from the file's pages with no load-time
// copy (pass through LoadStoreFileHeap to opt out). Legacy gob formats
// materialize to heap as always, attaching the tile-pyramid sidecar
// (path + ".tiles") when one is present and consistent; stores without one
// build their pyramid lazily on first spatial query.
func LoadStoreFile(path string) (*Store, error) {
	return loadStoreFile(path, false)
}

// LoadStoreFileHeap reads a persisted store by path entirely into heap —
// the -no-mmap escape hatch. v4 sections then alias one heap buffer instead
// of a mapping; every query answers identically to the mapped load.
func LoadStoreFileHeap(path string) (*Store, error) {
	return loadStoreFile(path, true)
}

func loadStoreFile(path string, noMmap bool) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	magic := make([]byte, len(storeMagicV1))
	_, rerr := io.ReadFull(f, magic)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return nil, fmt.Errorf("serve: load store %s: %w", path, rerr)
	}
	if storefile.Sniff(magic) {
		var sf *storefile.File
		if noMmap {
			sf, err = storefile.ReadFile(path)
		} else {
			sf, err = storefile.Open(path)
		}
		if err != nil {
			return nil, err
		}
		st, err := decodeStoreV4(sf)
		if err != nil {
			sf.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return st, nil
	}
	g, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, lerr := LoadStore(g)
	if cerr := g.Close(); lerr == nil {
		lerr = cerr
	}
	if lerr != nil {
		return nil, lerr
	}
	st.attachTilesSidecar(path)
	return st, nil
}
