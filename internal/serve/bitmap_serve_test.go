package serve

// Acceptance tests for adaptive bitmap posting containers at the serving
// layer: a dense∧dense conjunction on a mapped INSPSTORE4 store must run
// word-wise over the aliased bitmap words — zero posting decodes, zero LRU
// traffic, at most the one result allocation — and every container-aware
// path must answer byte-identically to the block-skip reference across all
// store kinds (monolithic, sharded, mapped, heap, legacy).

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/simtime"
)

// denseCorpusDocs builds a corpus whose heavy terms exceed the bitmap
// density threshold: alphadense appears in every document, betadense in all
// but every 16th, while gammasparse and the filler terms stay well under
// BlockSize occurrences and remain block-coded. Mixed containers in one
// store is the point — conjunctions cross the representation boundary.
func denseCorpusDocs() []string {
	docs := make([]string, 200)
	for i := range docs {
		var sb strings.Builder
		sb.WriteString("alphadense")
		if i%16 != 0 {
			sb.WriteString(" betadense")
		}
		if i%40 == 0 {
			sb.WriteString(" gammasparse")
		}
		// Mid-frequency topical terms keep the signature/clustering stages
		// fed; the ubiquitous dense terms alone carry no thematic signal.
		fmt.Fprintf(&sb, " topic%d topic%d topic%d filler%d uniq%d", i%4, i%4, (i/50)%4, i%7, i)
		docs[i] = sb.String()
	}
	return docs
}

// buildDenseStoreT indexes the dense corpus and verifies the writer's
// container choices before handing the store to a test.
func buildDenseStoreT(t *testing.T, p int) *Store {
	t.Helper()
	src := corpus.FromTexts("dense", denseCorpusDocs())
	var st *Store
	_, err := cluster.Run(p, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{})
		if err != nil {
			return err
		}
		got, err := Snapshot(c, res)
		if c.Rank() == 0 {
			st = got
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no store from rank 0")
	}
	if !st.Posts.HasBitmaps() {
		t.Fatal("dense corpus produced no bitmap containers")
	}
	for _, term := range []string{"alphadense", "betadense"} {
		id, ok := st.TermID(term)
		if !ok || !st.Posts.IsBitmap(id) {
			t.Fatalf("%q did not land in a bitmap container", term)
		}
	}
	if id, ok := st.TermID("gammasparse"); !ok || st.Posts.IsBitmap(id) {
		t.Fatal("gammasparse should stay block-coded")
	}
	return st
}

// TestDenseAndBitmapKernelOnMappedStore pins the acceptance bar: dense∧dense
// AND on a mapped store executes the word-wise kernel with zero posting
// decodes, zero cache misses, and at most one allocation per warm call.
func TestDenseAndBitmapKernelOnMappedStore(t *testing.T) {
	st := buildDenseStoreT(t, 2)
	path := saveV4T(t, st, "dense.store")
	mapped, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Mapped() {
		t.Fatal("v4 load is not mapped")
	}
	if !mapped.Posts.HasBitmaps() {
		t.Fatal("mapped store lost the bitmap containers")
	}
	srv := newServerT(t, mapped, Config{})
	sess := srv.NewSession()

	before := srv.Stats()
	got := sess.And(context.Background(), "alphadense", "betadense")
	after := srv.Stats()

	var want []int64
	for i := int64(0); i < 200; i++ {
		if i%16 != 0 {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dense And answered %d docs, want %d: %v", len(got), len(want), got)
	}
	if after.BitmapAnds != before.BitmapAnds+1 {
		t.Fatalf("BitmapAnds went %d -> %d, want +1", before.BitmapAnds, after.BitmapAnds)
	}
	if after.PostingMisses != before.PostingMisses {
		t.Fatalf("dense And fetched postings: misses %d -> %d", before.PostingMisses, after.PostingMisses)
	}
	if after.BlocksDecoded != before.BlocksDecoded || after.PartialFetches != before.PartialFetches {
		t.Fatalf("dense And decoded blocks: decoded %d -> %d, partial %d -> %d",
			before.BlocksDecoded, after.BlocksDecoded, before.PartialFetches, after.PartialFetches)
	}

	sess.And(context.Background(), "alphadense", "betadense") // settle scratch sizes
	allocs := testing.AllocsPerRun(200, func() { sess.And(context.Background(), "alphadense", "betadense") })
	if allocs > 1 {
		t.Fatalf("warm dense And allocates %v objects/op, want <= 1 (the result)", allocs)
	}
	final := srv.Stats()
	if final.BlocksDecoded != before.BlocksDecoded {
		t.Fatalf("steady-state dense And decoded %d blocks", final.BlocksDecoded-before.BlocksDecoded)
	}
	if final.BitmapAnds < after.BitmapAnds+200 {
		t.Fatalf("steady-state And left the bitmap kernel: %d kernels for 200+ calls", final.BitmapAnds-after.BitmapAnds)
	}
}

// TestBitmapProbeStatsOnMixedQuery pins the dense∧sparse path: the sparse
// side seeds the accumulator and the dense side is answered by per-doc bit
// probes, never a decode of the bitmap term.
func TestBitmapProbeStatsOnMixedQuery(t *testing.T) {
	st := buildDenseStoreT(t, 2)
	srv := newServerT(t, st, Config{})
	sess := srv.NewSession()

	before := srv.Stats()
	got := sess.And(context.Background(), "gammasparse", "betadense")
	after := srv.Stats()

	var want []int64
	for i := int64(0); i < 200; i += 40 {
		if i%16 != 0 {
			want = append(want, i)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed And = %v, want %v", got, want)
	}
	if after.BitmapProbes == before.BitmapProbes {
		t.Fatal("mixed And never bit-probed the dense term")
	}
	if after.BitmapAnds != before.BitmapAnds {
		t.Fatal("mixed And should not run the dense∧dense kernel")
	}
}

// TestBitmapAnswersAgreeAcrossStoreKinds is the correctness half of the
// acceptance bar: And/Or answers from every bitmap-carrying store kind are
// byte-identical to the block-skip reference (the same postings re-encoded
// block-only through the legacy save path).
func TestBitmapAnswersAgreeAcrossStoreKinds(t *testing.T) {
	st := buildDenseStoreT(t, 2)

	var legacy bytes.Buffer
	if err := st.SaveLegacy(&legacy); err != nil {
		t.Fatal(err)
	}
	blockStore, err := LoadStore(bytes.NewReader(legacy.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if blockStore.Posts.HasBitmaps() {
		t.Fatal("legacy save must re-encode block-only")
	}
	ref := newServerT(t, blockStore, Config{}).NewQuerier()

	path := saveV4T(t, st, "dense.store")
	mapped, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := LoadStoreFileHeap(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.Posts.HasBitmaps() || !heap.Posts.HasBitmaps() {
		t.Fatal("v4 round trip lost the bitmap containers")
	}

	services := map[string]Service{
		"monolithic": serviceOf(t, st, 1, Config{}),
		"sharded":    serviceOf(t, st, 3, Config{}),
		"mapped":     serviceOf(t, mapped, 1, Config{}),
		"heap":       serviceOf(t, heap, 1, Config{}),
		"legacy":     serviceOf(t, blockStore, 1, Config{}),
	}
	queries := [][]string{
		{"alphadense", "betadense"},
		{"betadense", "alphadense"},
		{"alphadense", "gammasparse"},
		{"gammasparse", "betadense"},
		{"filler0", "alphadense"},
		{"alphadense", "betadense", "gammasparse"},
		{"alphadense", "filler1", "betadense"},
		{"alphadense", "missingterm"},
		{"gammasparse", "filler2"},
	}
	for label, svc := range services {
		q := svc.NewQuerier()
		for _, qs := range queries {
			if got, want := q.And(context.Background(), qs...), ref.And(context.Background(), qs...); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: And(%v) = %v, block reference %v", label, qs, got, want)
			}
			if got, want := q.Or(context.Background(), qs...), ref.Or(context.Background(), qs...); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Or(%v) = %v, block reference %v", label, qs, got, want)
			}
		}
		for _, term := range []string{"alphadense", "betadense", "gammasparse"} {
			if got, want := q.TermDocs(context.Background(), term), ref.TermDocs(context.Background(), term); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: TermDocs(%q) differ from block reference", label, term)
			}
		}
	}

	// Dense And on the bitmap-carrying monolith actually produced a non-empty
	// answer — the equivalence above is not vacuous.
	if got := services["monolithic"].NewQuerier().And(context.Background(), "alphadense", "betadense"); len(got) != 187 {
		t.Fatalf("dense And found %d docs, want 187", len(got))
	}
}
