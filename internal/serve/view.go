package serve

import (
	"sync"
	"sync/atomic"

	"inspire/internal/postings"
	"inspire/internal/project"
	"inspire/internal/segment"
	"inspire/internal/signature"
	"inspire/internal/tiles"
)

// view is one immutable serving epoch of a live store: the base snapshot's
// products, the sealed delta segments ingested since, the tombstone set, and
// the signature set bound to this epoch. Sessions resolve the current view
// once per interaction and work against it unperturbed while ingestion,
// compaction or a signature swap publishes the next epoch — readers never
// block and never see a half-applied change.
type view struct {
	// epoch increments on every published change (seal, delete, compaction,
	// rebase, signature swap); it keys the similarity caches so stale merged
	// answers age out naturally.
	epoch uint64
	// gen increments only when the base layout itself is rewritten (Rebase,
	// CompressPostings/DecompressPostings); it keys the posting LRU, so the
	// decoded base lists survive every epoch swap that leaves the base alone.
	gen  uint64
	base *baseView
	// segs are the sealed delta segments, disjoint in documents; every
	// ingested document lives in exactly one.
	segs []*segment.Segment
	// tombs marks deleted documents. The map is copy-on-write: published
	// views never mutate it.
	tombs map[int64]bool
	// sigs is the base signature set of this epoch (segments carry their
	// own); ApplySignatures publishes a new view with a new set.
	sigs *signature.Set
	// pts are the ThemeView points of the ingested (sealed) documents,
	// computed from their signatures with the store's frozen Planar model
	// at seal time; nil when the store has no Planar. Like segs the slice
	// is copy-on-write: seals append to a fresh copy, compaction filters
	// out points whose documents (and tombstones) it dropped, and Rebase
	// folds them into the base points.
	pts []project.Point

	// Incremental-similarity lineage: what changed from the parent epoch.
	// A cached top-K at an ancestor epoch can be patched forward across
	// seal deltas (scan only the appended segments) and compactions
	// (identity on visible documents) instead of rescanning every
	// signature; tombstone deltas patch forward unless they hit a cached
	// result. Signature swaps, rebases and layout resets cut the chain
	// (parent nil), as does depth reaching maxSimChain, which also bounds
	// how many retired views a live chain keeps reachable.
	parent  *view
	depth   int
	kind    viewKind
	newSegs []*segment.Segment // kind == viewSeal: the appended segments
	newPts  []project.Point    // kind == viewSeal: the appended points
	tomb    int64              // kind == viewTomb: the deleted document
}

// viewKind classifies the change a view introduced over its parent.
type viewKind uint8

const (
	viewCut     viewKind = iota // no usable lineage (initial, swap, rebase)
	viewSeal                    // segments appended
	viewTomb                    // one document tombstoned
	viewCompact                 // segments merged; visible answers unchanged
)

// maxSimChain bounds the lineage walked (and retained) for incremental
// similarity refresh.
const maxSimChain = 32

// baseView freezes the base snapshot's per-document products. Rebase builds a
// fresh baseView rather than mutating slices a concurrent reader may hold.
type baseView struct {
	totalDocs int64
	// Shard routing metadata (see Store.ShardCount): base membership on a
	// shard is modular, not dense.
	shardCount, shardIndex int
	globalDocs             int64

	// holes are IDs inside the base range whose documents were deleted and
	// rebased away (Store.Holes); they read as absent. live is the number of
	// base documents actually present — totalDocs minus the holes for a
	// monolithic store, while a shard's TotalDocs already counts survivors.
	holes map[int64]bool
	live  int64

	df    []int64
	posts *postings.Store
	// Legacy flat layout, populated when posts is nil.
	off, postDoc, postFreq []int64

	points         []project.Point
	assignDocs     []int64
	assignClusters []int64

	// Document metadata (Store.MetaDocs..FacetDict, see meta.go), plus the
	// reverse facet map filters compile against. All immutable once built.
	metaDocs      []int64
	metaTimes     []int64
	metaFacetOffs []int64
	metaFacetIDs  []int64
	facetDict     []string
	facetIDs      map[string]int64
}

// containsDoc reports whether doc is a base document of this store.
func (b *baseView) containsDoc(doc int64) bool {
	if doc < 0 || b.holes[doc] {
		return false
	}
	if b.shardCount > 0 {
		return doc < b.globalDocs && int(doc%int64(b.shardCount)) == b.shardIndex
	}
	return doc < b.totalDocs
}

// postings returns term t's base posting list, decoding the compressed
// layout or slicing the flat one (shared views; do not mutate).
func (b *baseView) postings(t int64) (docs, freqs []int64) {
	if b.posts != nil {
		return b.posts.Postings(t)
	}
	n := b.df[t]
	if n == 0 {
		return nil, nil
	}
	off := b.off[t]
	return b.postDoc[off : off+n], b.postFreq[off : off+n]
}

// df returns the live document frequency of term t in the view: base DF plus
// every segment's DF summary. Tombstoned documents are still counted until
// compaction (or Rebase) drops them — the standard LSM overcount, documented
// on Session.DF.
func (v *view) df(t int64) int64 {
	n := v.base.df[t]
	for _, s := range v.segs {
		n += s.Posts.Count[t]
	}
	return n
}

// liveDocs returns the number of visible documents: present base docs (holes
// excluded) + sealed segments − tombstones. Documents still buffered in the
// mutable delta are not visible.
func (v *view) liveDocs() int64 {
	n := v.base.live
	for _, s := range v.segs {
		n += s.NumDocs()
	}
	return n - int64(len(v.tombs))
}

// contains reports whether doc exists in the view (tombstoned documents do
// not).
func (v *view) contains(doc int64) bool {
	if v.tombs[doc] {
		return false
	}
	if v.base.containsDoc(doc) {
		return true
	}
	for _, s := range v.segs {
		if s.Contains(doc) {
			return true
		}
	}
	return false
}

// sigVec resolves doc's knowledge signature in the view: the base set first,
// then the segments. (nil, true) is a present null signature; tombstoned and
// unknown documents report (nil, false).
func (v *view) sigVec(doc int64) ([]float64, bool) {
	if v.tombs[doc] {
		return nil, false
	}
	if vec, ok := v.sigs.Vec(doc); ok {
		return vec, true
	}
	for _, s := range v.segs {
		if vec, ok := s.SigVec(doc); ok {
			return vec, true
		}
	}
	return nil, false
}

// liveState is the mutable side of a live store: the current published view,
// the in-memory delta, and the ingest/compaction bookkeeping. It lives on the
// Store (unexported, never persisted) so every Server over one store shares
// one epoch stream.
type liveState struct {
	cur atomic.Pointer[view]

	// mu serializes publishers: ingest, seal, delete, compaction publish,
	// signature swaps and rebase. Readers only load cur.
	mu      sync.Mutex
	delta   *segment.Delta
	nextDoc int64
	// idFloor is the retirement floor: every ID below it is in use or
	// retired with possibly no surviving trace (a rebased hole, a gap under
	// a loaded segment), so adds reject it outright. Unlike the rolling
	// nextDoc it does NOT advance on ordinary appends — routed adds from
	// concurrent sessions may land on a shard out of ID order, and a
	// later-assigned ID must not retire an earlier one still in flight. It
	// rises only at load (base bound, segment maxes, persisted mark) and on
	// rebase.
	idFloor int64
	// retired pins the exact IDs above the floor whose tombstones a
	// compaction dropped together with their data — nothing else records
	// that they were ever used. A set, not a watermark, so in-flight lower
	// IDs stay addable. Rebase folds it into holes and clears it.
	retired map[int64]bool
	policy  LivePolicy

	compacting  bool
	compactWG   sync.WaitGroup
	compactVirt float64 // virtual seconds charged to the background compactor

	// Tile-pyramid maintenance state (see tile.go): the pyramid synced to
	// tileView, the sidecar loaded alongside the store (nil once invalid),
	// the derived world bounds of a legacy store, and the virtual seconds
	// charged to pyramid builds and patches — maintenance, like
	// compaction, off every session's critical path. Guarded by tileMu;
	// publishers holding mu may take tileMu (never the reverse).
	tileMu      sync.Mutex
	tilePyr     *tiles.Pyramid
	tileView    *view
	tileSidecar *tiles.Pyramid
	// tileRaw is the still-encoded pyramid embedded in a mapped INSPSTORE4
	// store, decoded into tileSidecar on the first spatial query (see
	// sidecarLocked) so a cold load never pays the decode.
	tileRaw  []byte
	tileBox  *tiles.Rect
	tileVirt float64

	adds, deletes, seals, compactions atomic.Uint64

	// Replication log: the recent seal/tombstone entries in publish order,
	// appended by publishLocked and consumed by replica catch-up
	// (LineageSince). Compactions are answer-invariant and are not logged;
	// lineage cuts (rebase, layout reset, signature swap) and ring trims
	// advance logFloor, past which only a full resync can catch a replica
	// up. Guarded by mu.
	replog   []logEntry
	logFloor uint64
}

// logEntry is one replication-log record: a batch of sealed segments or one
// tombstone, at the epoch that published it. Segments are shared by
// reference — they are immutable once sealed.
type logEntry struct {
	epoch uint64
	kind  viewKind // viewSeal or viewTomb
	segs  []*segment.Segment
	tomb  int64
}

// replogCap bounds the replication log. A trim advances logFloor, so a
// replica dead for longer than the ring covers falls back to a full resync.
const replogCap = 4096

// viewNow returns the store's current view, initializing epoch 1 from the
// base snapshot on first use.
func (st *Store) viewNow() *view {
	if v := st.live.cur.Load(); v != nil {
		return v
	}
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	return st.initViewLocked()
}

// initViewLocked builds (or returns) the current view; callers hold live.mu.
func (st *Store) initViewLocked() *view {
	if v := st.live.cur.Load(); v != nil {
		return v
	}
	v := &view{epoch: 1, gen: 1, base: st.baseView(), sigs: st.Signatures()}
	st.live.nextDoc = st.TotalDocs
	if st.GlobalDocs > st.live.nextDoc {
		st.live.nextDoc = st.GlobalDocs
	}
	st.live.idFloor = st.live.nextDoc
	st.live.cur.Store(v)
	return v
}

// baseView snapshots the store's base products into an immutable baseView.
func (st *Store) baseView() *baseView {
	b := &baseView{
		totalDocs:      st.TotalDocs,
		shardCount:     st.ShardCount,
		shardIndex:     st.ShardIndex,
		globalDocs:     st.GlobalDocs,
		live:           st.TotalDocs,
		df:             st.DF,
		posts:          st.Posts,
		off:            st.Off,
		postDoc:        st.PostDoc,
		postFreq:       st.PostFreq,
		points:         st.Points,
		assignDocs:     st.AssignDocs,
		assignClusters: st.AssignClusters,
		metaDocs:       st.MetaDocs,
		metaTimes:      st.MetaTimes,
		metaFacetOffs:  st.MetaFacetOffs,
		metaFacetIDs:   st.MetaFacetIDs,
		facetDict:      st.FacetDict,
	}
	if len(st.FacetDict) > 0 {
		b.facetIDs = make(map[string]int64, len(st.FacetDict))
		for i, s := range st.FacetDict {
			b.facetIDs[s] = int64(i)
		}
	}
	if len(st.Holes) > 0 {
		b.holes = make(map[int64]bool, len(st.Holes))
		for _, d := range st.Holes {
			b.holes[d] = true
		}
		if st.ShardCount == 0 {
			// A monolithic TotalDocs is the ID high-water mark after a
			// rebase; a shard's TotalDocs already counts survivors.
			b.live -= int64(len(st.Holes))
		}
	}
	return b
}

// publishLocked installs next as the current view with the epoch advanced,
// linking the similarity lineage unless next cuts it; callers hold live.mu
// and must have derived next from the current view.
func (st *Store) publishLocked(next *view) {
	cur := st.initViewLocked()
	next.epoch = cur.epoch + 1
	if next.gen == 0 {
		next.gen = cur.gen
	}
	if next.kind != viewCut && cur.depth < maxSimChain {
		next.parent = cur
		next.depth = cur.depth + 1
	}
	switch next.kind {
	case viewSeal:
		st.appendLogLocked(logEntry{epoch: next.epoch, kind: viewSeal, segs: next.newSegs})
	case viewTomb:
		st.appendLogLocked(logEntry{epoch: next.epoch, kind: viewTomb, tomb: next.tomb})
	case viewCompact:
		// Answer-invariant: a replica replaying the log converges without it.
	default:
		// A cut (rebase, signature swap) is not expressible as a seal/tomb
		// delta; replicas behind it must fully resync.
		st.live.replog = nil
		st.live.logFloor = next.epoch
	}
	st.live.cur.Store(next)
}

// appendLogLocked records one replication-log entry, trimming the oldest past
// replogCap; callers hold live.mu.
func (st *Store) appendLogLocked(e logEntry) {
	if len(st.live.replog) >= replogCap {
		// Replicas at exactly the dropped epoch no longer need it; anything
		// older falls to a full resync.
		st.live.logFloor = st.live.replog[0].epoch
		n := copy(st.live.replog, st.live.replog[1:])
		st.live.replog = st.live.replog[:n]
	}
	st.live.replog = append(st.live.replog, e)
}

// LineageSince returns the seal/tombstone entries published after epoch
// since, in publish order — the catch-up delta a replica at that epoch needs.
// ok is false when the log cannot cover the gap (a lineage cut or ring trim
// landed past since); the replica must then fully resync (Replicate).
func (st *Store) LineageSince(since uint64) (entries []logEntry, ok bool) {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	st.initViewLocked()
	if since < st.live.logFloor {
		return nil, false
	}
	for _, e := range st.live.replog {
		if e.epoch > since {
			entries = append(entries, e)
		}
	}
	return entries, true
}

// hasLiveLocked reports whether live data — sealed segments, tombstones or a
// buffered delta — exists; callers hold live.mu. Whole-layout rewrites
// (CompressPostings/DecompressPostings) refuse while it does.
func (st *Store) hasLiveLocked() bool {
	if st.live.delta != nil && st.live.delta.NumDocs() > 0 {
		return true
	}
	v := st.live.cur.Load()
	return v != nil && (len(v.segs) > 0 || len(v.tombs) > 0)
}

// resetViewLocked republishes the view from the store fields after a
// whole-layout rewrite, advancing the base generation so posting-cache keys
// from the old layout can never alias the new one; callers hold live.mu and
// have checked hasLiveLocked. A no-op when no view was ever published.
func (st *Store) resetViewLocked() {
	v := st.live.cur.Load()
	if v == nil {
		return
	}
	st.live.replog = nil
	st.live.logFloor = v.epoch + 1
	st.live.cur.Store(&view{epoch: v.epoch + 1, gen: v.gen + 1, base: st.baseView(), sigs: v.sigs, pts: v.pts})
}

// maintVirtMS snapshots the store's maintenance accounts as virtual
// milliseconds: background compaction/rebase merges and tile-pyramid builds
// and patches — modeled work kept off every session's critical path.
func (st *Store) maintVirtMS() (compact, tile float64) {
	st.live.mu.Lock()
	compact = st.live.compactVirt * 1000
	st.live.mu.Unlock()
	st.live.tileMu.Lock()
	tile = st.live.tileVirt * 1000
	st.live.tileMu.Unlock()
	return compact, tile
}

// Epoch returns the store's current serving epoch; it advances on every
// published change (seal, delete, compaction, rebase, signature swap).
func (st *Store) Epoch() uint64 { return st.viewNow().epoch }

// LiveDocs returns the number of documents visible to queries right now:
// base + sealed segments − tombstones. Adds still buffered in the delta are
// not yet visible (see LivePolicy.SealDocs).
func (st *Store) LiveDocs() int64 { return st.viewNow().liveDocs() }

// LiveSegments returns the number of sealed, uncompacted delta segments.
func (st *Store) LiveSegments() int { return len(st.viewNow().segs) }

// PendingDocs returns the number of added documents buffered in the mutable
// delta, not yet visible to queries.
func (st *Store) PendingDocs() int {
	st.live.mu.Lock()
	defer st.live.mu.Unlock()
	if st.live.delta == nil {
		return 0
	}
	return st.live.delta.NumDocs()
}
