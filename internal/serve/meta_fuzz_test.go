package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"inspire/internal/storefile"
)

// fuzzMetaTable derives a normalized metadata table from a seed: ascending
// unique doc IDs, a mix of zero and non-zero timestamps, and facet rows drawn
// from a small key=value alphabet (empty rows included).
func fuzzMetaTable(seed int64, n int) metaTable {
	rng := rand.New(rand.NewSource(seed))
	docs := make([]int64, n)
	times := make([]int64, n)
	rows := make([][]string, n)
	next := int64(rng.Intn(3))
	for i := 0; i < n; i++ {
		docs[i] = next
		next += 1 + int64(rng.Intn(5))
		if rng.Intn(3) > 0 {
			times[i] = 1 + rng.Int63n(1_000_000)
		}
		var row []string
		for k := rng.Intn(4); k > 0; k-- {
			row = append(row, fmt.Sprintf("k%d=v%d", rng.Intn(3), rng.Intn(4)))
		}
		rows[i], _ = normalizeFacets(row)
	}
	return buildMetaTable(docs, times, rows)
}

// metaSectionPayloads extracts the raw per-section payloads of a table's
// encoding — the fuzzer's seed form, small enough to mutate productively
// (whole INSPSTORE4 files are page-aligned, so they make poor fuzz inputs;
// the container itself is FuzzStoreFileRoundTrip's job in internal/storefile).
func metaSectionPayloads(tbl metaTable) (docsB, timesB, offsB, idsB, blob, facetOffsB []byte) {
	for _, s := range appendMetaSections(nil, tbl.docs, tbl.times, tbl.facetOffs, tbl.facetIDs, tbl.dict) {
		switch s.Name {
		case secMetaDocs:
			docsB = s.Data
		case secMetaTimes:
			timesB = s.Data
		case secMetaFacOffs:
			offsB = s.Data
		case secMetaFacIDs:
			idsB = s.Data
		case secFacetBlob:
			blob = s.Data
		case secFacetOffs:
			facetOffsB = s.Data
		}
	}
	return
}

// FuzzFacetSectionRoundTrip drives the INSPSTORE4 metadata sections from
// both ends. Arbitrary section payloads assembled into a well-formed
// container must either be rejected by the section decoder or the metadata
// validator, or decode to vectors that re-encode to decode-identical
// sections — no payload may load as silent garbage. And structured tables
// derived from the fuzzer's integers must encode, survive a full
// encode-decode round trip exactly, and validate.
func FuzzFacetSectionRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 7, 42} {
		d, tm, o, i, b, fo := metaSectionPayloads(fuzzMetaTable(seed, 16))
		f.Add(d, tm, o, i, b, fo, seed, uint8(16))
	}
	f.Add([]byte{}, []byte{}, []byte{}, []byte{}, []byte{}, []byte{}, int64(0), uint8(0))
	f.Add([]byte{1}, []byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{}, []byte{}, []byte("k=v"), []byte{}, int64(3), uint8(5))

	f.Fuzz(func(t *testing.T, docsB, timesB, offsB, idsB, blob, facetOffsB []byte, seed int64, n uint8) {
		// Arbitrary payloads: assemble a valid container around them, then
		// reject or round-trip.
		var secs []storefile.Section
		add := func(name string, b []byte) {
			if len(b) > 0 {
				secs = append(secs, storefile.Section{Name: name, Data: b})
			}
		}
		add(secMetaDocs, docsB)
		add(secMetaTimes, timesB)
		add(secMetaFacOffs, offsB)
		add(secMetaFacIDs, idsB)
		add(secFacetBlob, blob)
		add(secFacetOffs, facetOffsB)
		if data, err := storefile.Encode(secs); err == nil && len(secs) > 0 {
			sf, err := storefile.Decode(data)
			if err != nil {
				t.Fatalf("assembled container does not decode: %v", err)
			}
			docs, times, offs, ids, dict, _, err := decodeMetaSections(sf)
			if err == nil {
				shell := &Store{MetaDocs: docs, MetaTimes: times, MetaFacetOffs: offs, MetaFacetIDs: ids, FacetDict: dict}
				if shell.validateMeta() == nil && len(docs) > 0 {
					re := appendMetaSections(nil, docs, times, offs, ids, dict)
					data2, err := storefile.Encode(re)
					if err != nil {
						t.Fatalf("validated metadata does not re-encode: %v", err)
					}
					sf2, err := storefile.Decode(data2)
					if err != nil {
						t.Fatalf("re-encoded metadata does not decode: %v", err)
					}
					d2, t2, o2, i2, dict2, _, err := decodeMetaSections(sf2)
					if err != nil {
						t.Fatalf("re-encoded metadata sections do not decode: %v", err)
					}
					if !reflect.DeepEqual(docs, d2) || !reflect.DeepEqual(times, t2) ||
						!sameInt64s(offs, o2) || !sameInt64s(ids, i2) || !sameStrings(dict, dict2) {
						t.Fatal("metadata sections changed across re-encode")
					}
				}
			}
		}

		// Structured direction: a well-formed table round-trips exactly.
		tbl := fuzzMetaTable(seed, int(n%48))
		tsecs := appendMetaSections(nil, tbl.docs, tbl.times, tbl.facetOffs, tbl.facetIDs, tbl.dict)
		if len(tbl.docs) == 0 {
			if len(tsecs) != 0 {
				t.Fatalf("empty table emitted %d sections", len(tsecs))
			}
			return
		}
		data, err := storefile.Encode(tsecs)
		if err != nil {
			t.Fatalf("structured table does not encode: %v", err)
		}
		sf, err := storefile.Decode(data)
		if err != nil {
			t.Fatalf("structured table does not decode: %v", err)
		}
		docs, times, offs, ids, dict, _, err := decodeMetaSections(sf)
		if err != nil {
			t.Fatalf("structured table sections do not decode: %v", err)
		}
		if !reflect.DeepEqual(docs, tbl.docs) || !reflect.DeepEqual(times, tbl.times) {
			t.Fatalf("doc/time vectors changed: %v/%v vs %v/%v", docs, times, tbl.docs, tbl.times)
		}
		if !sameInt64s(offs, tbl.facetOffs) || !sameInt64s(ids, tbl.facetIDs) || !sameStrings(dict, tbl.dict) {
			t.Fatalf("facet vectors changed: offs %v vs %v, ids %v vs %v, dict %v vs %v",
				offs, tbl.facetOffs, ids, tbl.facetIDs, dict, tbl.dict)
		}
		shell := &Store{MetaDocs: docs, MetaTimes: times, MetaFacetOffs: offs, MetaFacetIDs: ids, FacetDict: dict}
		if err := shell.validateMeta(); err != nil {
			t.Fatalf("round-tripped table fails validation: %v", err)
		}
	})
}

// sameInt64s and sameStrings treat nil and empty as equal: an absent section
// decodes to nil where the in-memory builder may hold an empty slice.
func sameInt64s(a, b []int64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func sameStrings(a, b []string) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
