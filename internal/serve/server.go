package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"inspire/internal/core"
	"inspire/internal/postings"
	"inspire/internal/query"
	"inspire/internal/signature"
)

// Config tunes the server. The zero value selects documented defaults.
type Config struct {
	// PostingCacheEntries bounds the LRU posting-list cache. Default 4096.
	PostingCacheEntries int
	// SimCacheEntries bounds the top-K similarity result cache. Default 512.
	SimCacheEntries int
	// FrontRank is the producing-run rank modeled as hosting the serving
	// front-end: postings owned by it are local memory reads, everything
	// else is a modeled remote one-sided get. Default 0.
	FrontRank int
}

func (cfg Config) withDefaults() Config {
	if cfg.PostingCacheEntries <= 0 {
		cfg.PostingCacheEntries = 4096
	}
	if cfg.SimCacheEntries <= 0 {
		cfg.SimCacheEntries = 512
	}
	return cfg
}

// Stats is a snapshot of the server-wide counters. The fan-out block is
// populated only by a Router over a sharded store set; a single-store Server
// leaves it zero.
type Stats struct {
	Queries uint64 // interactions served across all sessions

	PostingHits      uint64 // posting fetches answered from the LRU cache
	PostingMisses    uint64 // posting fetches that went to the (modeled) index
	PostingEvictions uint64 // LRU entries displaced
	Coalesced        uint64 // fetches that joined an in-flight get for the same term
	RemoteGets       uint64 // misses whose term owner was not the front-end rank

	PartialFetches uint64 // And intersections served straight off compressed blocks
	BlocksDecoded  uint64 // posting blocks decoded during partial fetches
	BlocksSkipped  uint64 // posting blocks the skip directory ruled out untouched

	SimHits      uint64 // similarity queries answered from the result cache
	SimMisses    uint64 // similarity queries that scanned the signatures
	SimEvictions uint64

	FanOuts       uint64 // router scatter rounds issued
	ShardQueries  uint64 // sub-queries executed on shard servers
	ShardsPruned  uint64 // shard sub-queries skipped by zero-DF pruning
	ShortCircuits uint64 // router queries answered with no fan-out at all
}

// PostingHitRate returns hits/(hits+misses), counting coalesced joins as
// hits: they were answered without a new transfer.
func (s Stats) PostingHitRate() float64 {
	total := s.PostingHits + s.Coalesced + s.PostingMisses
	if total == 0 {
		return 0
	}
	return float64(s.PostingHits+s.Coalesced) / float64(total)
}

// SimHitRate returns the similarity-cache hit rate.
func (s Stats) SimHitRate() float64 {
	if s.SimHits+s.SimMisses == 0 {
		return 0
	}
	return float64(s.SimHits) / float64(s.SimHits+s.SimMisses)
}

// postingVal is one cached posting list (views into the store, immutable).
type postingVal struct {
	docs, freqs []int64
}

// flight is one in-progress posting fetch; concurrent requests for the same
// term coalesce onto it and share its single modeled transfer.
type flight struct {
	done chan struct{}
	val  postingVal
	cost float64
}

// simKey keys the similarity cache.
type simKey struct {
	doc int64
	k   int
}

// Querier is the session surface shared by single-store Sessions and sharded
// RouterSessions: one analyst's sequential interaction stream with its own
// virtual-latency account. A Querier's methods must be called from one
// goroutine at a time; distinct Queriers are fully concurrent.
type Querier interface {
	TermDocs(term string) []query.Posting
	DF(term string) int64
	And(terms ...string) []int64
	Or(terms ...string) []int64
	Similar(doc int64, k int) ([]query.Hit, error)
	ThemeDocs(cluster int) []int64
	Near(x, y, radius float64) []int64
	Stats() SessionStats
}

// Service is what serves analyst sessions: a single-store Server or a
// sharded Router. Workload replay and the daemon front-end run against this
// surface, so a sharded set serves transparently behind the session API.
type Service interface {
	NewQuerier() Querier
	Stats() Stats
	TopTerms(n int) []string
	SampleDocs(n int) []int64
	NumThemes() int
	Themes() []core.Theme
}

// Server answers concurrent sessions against one Store. All methods are safe
// for concurrent use. The signature set is captured at construction: a
// Store.ApplySignatures after NewServer affects only servers built later, so
// one server's similarity answers and cache always agree.
type Server struct {
	store *Store
	cfg   Config
	sigs  *signature.Set

	pmu      sync.Mutex
	postings *lru[int64, postingVal]
	flights  map[int64]*flight

	smu  sync.Mutex
	sims *lru[simKey, []query.Hit]

	queries          atomic.Uint64
	postingHits      atomic.Uint64
	postingMisses    atomic.Uint64
	postingEvictions atomic.Uint64
	coalesced        atomic.Uint64
	remoteGets       atomic.Uint64
	partialFetches   atomic.Uint64
	blocksDecoded    atomic.Uint64
	blocksSkipped    atomic.Uint64
	simHits          atomic.Uint64
	simMisses        atomic.Uint64
	simEvictions     atomic.Uint64

	nextSession atomic.Int64
}

// NewServer builds a server over a store.
func NewServer(st *Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		store:    st,
		cfg:      cfg,
		sigs:     st.Signatures(),
		postings: newLRU[int64, postingVal](cfg.PostingCacheEntries),
		flights:  make(map[int64]*flight),
		sims:     newLRU[simKey, []query.Hit](cfg.SimCacheEntries),
	}, nil
}

// Store returns the underlying snapshot.
func (s *Server) Store() *Store { return s.store }

// NewQuerier opens a session; it is NewSession behind the Service surface.
func (s *Server) NewQuerier() Querier { return s.NewSession() }

// TopTerms returns the store's query vocabulary head, for workload defaults.
func (s *Server) TopTerms(n int) []string { return s.store.TopTerms(n) }

// SampleDocs returns deterministic similarity targets from the store.
func (s *Server) SampleDocs(n int) []int64 { return s.store.SampleDocs(n) }

// NumThemes returns the store's k-means cluster count.
func (s *Server) NumThemes() int { return s.store.K }

// Themes returns the store's discovered themes.
func (s *Server) Themes() []core.Theme { return s.store.Themes }

// signature returns the signature vector the server captured for doc.
func (s *Server) signature(doc int64) ([]float64, bool) {
	return s.sigs.Vec(doc)
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:          s.queries.Load(),
		PostingHits:      s.postingHits.Load(),
		PostingMisses:    s.postingMisses.Load(),
		PostingEvictions: s.postingEvictions.Load(),
		Coalesced:        s.coalesced.Load(),
		RemoteGets:       s.remoteGets.Load(),
		PartialFetches:   s.partialFetches.Load(),
		BlocksDecoded:    s.blocksDecoded.Load(),
		BlocksSkipped:    s.blocksSkipped.Load(),
		SimHits:          s.simHits.Load(),
		SimMisses:        s.simMisses.Load(),
		SimEvictions:     s.simEvictions.Load(),
	}
}

// NewSession opens an analyst session. Sessions are cheap; each accumulates
// its own virtual-latency account. A session's methods must be called from
// one goroutine at a time; different sessions are fully concurrent.
func (s *Server) NewSession() *Session {
	return &Session{s: s, ID: s.nextSession.Add(1)}
}

// --- posting fetch path ---------------------------------------------------

// wireCost models one uncached posting fetch: two descriptor reads (count,
// offset) plus the posting payload, one-sided against the owner or local
// memory copies when the front-end owns the term. A compressed store moves
// the block-coded bytes — several times fewer — and the front-end pays the
// varint+delta decode in flops.
func (s *Server) wireCost(t int64, n int64) float64 {
	m := s.store.Model
	remote := s.store.Owner(t) != s.cfg.FrontRank
	if ps := s.store.Posts; ps != nil {
		docB, freqB := ps.TermBytes(t)
		payload := float64(docB + freqB)
		// Varint+delta decode streams at memory rate: charged as writing
		// the decoded int64 pairs, like the block decoders it models.
		decode := m.LocalCopyCost(16 * float64(n))
		if remote {
			return 2*m.OneSidedCost(8) + m.OneSidedCost(payload) + decode
		}
		return 2*m.LocalCopyCost(8) + m.LocalCopyCost(payload) + decode
	}
	if remote {
		return 2*m.OneSidedCost(8) + 2*m.OneSidedCost(8*float64(n))
	}
	return 2*m.LocalCopyCost(8) + 2*m.LocalCopyCost(8*float64(n))
}

// partialCost models a block-skipping intersection against term t's
// compressed list: the skip-directory probe plus only the decoded doc blocks
// move (ruled-out blocks cost nothing), decode runs at memory rate over the
// decoded blocks, and the merge walk covers the candidates plus the decoded
// postings.
func (s *Server) partialCost(t int64, accLen int, ist postings.IntersectStats) float64 {
	m := s.store.Model
	dir := 8 + 24*float64(ist.BlocksDecoded+ist.BlocksSkipped)
	payload := float64(ist.BytesDecoded)
	decoded := float64(ist.PostingsDecoded)
	work := m.LocalCopyCost(8*decoded) + m.FlopCost(2*(float64(accLen)+decoded))
	if s.store.Owner(t) != s.cfg.FrontRank {
		return m.OneSidedCost(dir) + m.OneSidedCost(payload) + work
	}
	return m.LocalCopyCost(dir) + m.LocalCopyCost(payload) + work
}

// hitCost models a cache hit: a front-end memory copy of the list.
func (s *Server) hitCost(n int) float64 {
	return s.store.Model.LocalCopyCost(16 * float64(n))
}

// getPostings returns term t's postings and the virtual cost of obtaining
// them, consulting the LRU cache and coalescing concurrent misses for the
// same term into one modeled transfer.
func (s *Server) getPostings(t int64) (postingVal, float64) {
	s.pmu.Lock()
	if v, ok := s.postings.get(t); ok {
		s.pmu.Unlock()
		s.postingHits.Add(1)
		return v, s.hitCost(len(v.docs))
	}
	if f, ok := s.flights[t]; ok {
		s.pmu.Unlock()
		s.coalesced.Add(1)
		<-f.done
		// The joiner shares the in-flight transfer: same arrival, no new
		// traffic charged to the term owner.
		return f.val, f.cost
	}
	f := &flight{done: make(chan struct{})}
	s.flights[t] = f
	s.pmu.Unlock()

	s.postingMisses.Add(1)
	docs, freqs := s.store.Postings(t)
	f.val = postingVal{docs: docs, freqs: freqs}
	f.cost = s.wireCost(t, int64(len(docs)))
	if s.store.Owner(t) != s.cfg.FrontRank {
		s.remoteGets.Add(1)
	}

	s.pmu.Lock()
	if s.postings.add(t, f.val) {
		s.postingEvictions.Add(1)
	}
	delete(s.flights, t)
	s.pmu.Unlock()
	close(f.done)
	return f.val, f.cost
}

// cachedPostings peeks the LRU without fetching on a miss. The And path uses
// it so cache hits keep their decoded fast path while misses intersect
// straight off the compressed blocks instead of decoding whole lists.
func (s *Server) cachedPostings(t int64) (postingVal, float64, bool) {
	s.pmu.Lock()
	v, ok := s.postings.get(t)
	s.pmu.Unlock()
	if !ok {
		return postingVal{}, 0, false
	}
	s.postingHits.Add(1)
	return v, s.hitCost(len(v.docs)), true
}

// --- Session --------------------------------------------------------------

// Session is one analyst's connection: a sequential stream of interactions
// with its own virtual-latency account. Concurrent sessions share the
// server's caches and coalesce their index traffic.
type Session struct {
	s    *Server
	ID   int64
	acct account
}

// SessionStats is a snapshot of one session's account.
type SessionStats struct {
	Ops            int64
	VirtualSeconds float64
	MeanMS         float64 // mean per-interaction virtual latency
	MaxMS          float64
	LastMS         float64
}

// account is one querier's virtual-latency ledger, shared by single-store
// Sessions and sharded RouterSessions.
type account struct {
	mu     sync.Mutex
	ops    int64
	virt   float64 // accumulated virtual seconds
	maxOp  float64
	lastOp float64
}

// add records one completed interaction.
func (a *account) add(cost float64) {
	a.mu.Lock()
	a.ops++
	a.virt += cost
	a.lastOp = cost
	if cost > a.maxOp {
		a.maxOp = cost
	}
	a.mu.Unlock()
}

// last returns the cost of the most recent interaction in virtual seconds.
func (a *account) last() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastOp
}

// snapshot renders the ledger as SessionStats.
func (a *account) snapshot() SessionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := SessionStats{
		Ops:            a.ops,
		VirtualSeconds: a.virt,
		MaxMS:          a.maxOp * 1000,
		LastMS:         a.lastOp * 1000,
	}
	if a.ops > 0 {
		st.MeanMS = a.virt / float64(a.ops) * 1000
	}
	return st
}

// Stats snapshots the session account.
func (ss *Session) Stats() SessionStats { return ss.acct.snapshot() }

// charge records one completed interaction.
func (ss *Session) charge(cost float64) {
	ss.acct.add(cost)
	ss.s.queries.Add(1)
}

// lookupCost models the front-end vocabulary probe (the dense map is
// replicated to the front-end at snapshot time).
func (ss *Session) lookupCost(term string) float64 {
	return ss.s.store.Model.LocalCopyCost(float64(len(term) + 8))
}

// TermDocs returns the posting list of a term (sorted by document ID), or
// nil when the term is unknown.
func (ss *Session) TermDocs(term string) []query.Posting {
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok {
		ss.charge(cost)
		return nil
	}
	v, fetchCost := ss.s.getPostings(t)
	ss.charge(cost + fetchCost)
	out := make([]query.Posting, len(v.docs))
	for i := range v.docs {
		out[i] = query.Posting{Doc: v.docs[i], Freq: v.freqs[i]}
	}
	return out
}

// DF returns a term's document frequency (0 when absent).
func (ss *Session) DF(term string) int64 {
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok {
		ss.charge(cost)
		return 0
	}
	// DF is replicated to the front-end at snapshot time, like the
	// vocabulary: a local read regardless of the term's producing owner.
	cost += ss.s.store.Model.LocalCopyCost(8)
	ss.charge(cost)
	return ss.s.store.DF[t]
}

// And returns the documents containing every term, sorted by document ID.
//
// The conjunction is doomed the moment any term is unknown or empty, so the
// vocabulary and DF descriptors are consulted for every term before a single
// posting list moves — a doomed And costs only those lookups. Live terms are
// intersected rarest-first: the rarest list is fetched decoded (through the
// LRU), and each larger list is then intersected in place — from the decoded
// cache on a hit; block-skippingly against the compressed store when the
// candidate set is sparse relative to the list (never decoding the blocks
// the skip directory rules out); through a full cached-and-coalesced fetch
// when it is dense and would decode most blocks anyway. The loop exits
// before touching the remaining (larger) lists once the intersection empties.
func (ss *Session) And(terms ...string) []int64 {
	if len(terms) == 0 {
		return nil
	}
	st := ss.s.store
	m := st.Model
	type cand struct{ id, df int64 }
	cands := make([]cand, 0, len(terms))
	var cost float64
	for _, term := range terms {
		cost += ss.lookupCost(term)
		t, found := st.TermID(term)
		if found { // DF is front-end local, like the vocabulary
			cost += m.LocalCopyCost(8)
		}
		if !found || st.DF[t] == 0 {
			ss.charge(cost)
			return nil
		}
		cands = append(cands, cand{id: t, df: st.DF[t]})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].df < cands[b].df })

	v, c := ss.s.getPostings(cands[0].id)
	cost += c
	acc := append([]int64(nil), v.docs...)
	var flops float64
	for _, cd := range cands[1:] {
		if len(acc) == 0 {
			break
		}
		if v, c, ok := ss.s.cachedPostings(cd.id); ok {
			cost += c
			flops += 2 * float64(len(acc)+len(v.docs))
			acc = query.IntersectSorted(acc, v.docs)
			continue
		}
		// A sparse candidate set admits few blocks, so intersecting off the
		// compressed store wins; a dense one would decode most blocks
		// anyway, and the full fetch keeps the LRU warm and the transfer
		// coalesced for the next session asking about the same term.
		if ps := st.Posts; ps != nil && int64(len(acc)) < cd.df/4 {
			res, ist := ps.Intersect(acc, cd.id)
			cost += ss.s.partialCost(cd.id, len(acc), ist)
			ss.s.partialFetches.Add(1)
			ss.s.blocksDecoded.Add(uint64(ist.BlocksDecoded))
			ss.s.blocksSkipped.Add(uint64(ist.BlocksSkipped))
			acc = res
			continue
		}
		v, c := ss.s.getPostings(cd.id)
		cost += c
		flops += 2 * float64(len(acc)+len(v.docs))
		acc = query.IntersectSorted(acc, v.docs)
	}
	if len(acc) == 0 {
		acc = nil
	}
	ss.charge(cost + m.FlopCost(flops))
	return acc
}

// Or returns the documents containing any of the terms, sorted. Unknown and
// empty terms contribute nothing; every live list must transfer.
func (ss *Session) Or(terms ...string) []int64 {
	var cost float64
	seen := make(map[int64]bool)
	var merged float64
	for _, term := range terms {
		cost += ss.lookupCost(term)
		t, found := ss.s.store.TermID(term)
		if !found {
			continue
		}
		v, c := ss.s.getPostings(t)
		cost += c
		merged += float64(len(v.docs))
		for _, d := range v.docs {
			seen[d] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(cost + ss.s.store.Model.FlopCost(2*merged))
	return out
}

// Similar returns the k documents most similar to the target document's
// knowledge signature (cosine similarity, the target excluded), consulting
// the top-K result cache. Identical queries return identical results whether
// served cold or cached.
func (ss *Session) Similar(doc int64, k int) ([]query.Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("serve: similar: k must be positive")
	}
	key := simKey{doc: doc, k: k}
	ss.s.smu.Lock()
	hits, ok := ss.s.sims.get(key)
	ss.s.smu.Unlock()
	m := ss.s.store.Model
	if ok {
		ss.s.simHits.Add(1)
		ss.charge(m.LocalCopyCost(16 * float64(len(hits))))
		return hits, nil
	}
	ss.s.simMisses.Add(1)

	sigs := ss.s.sigs
	target, found := sigs.Vec(doc)
	if !found || target == nil {
		ss.charge(m.LocalCopyCost(8))
		return nil, fmt.Errorf("serve: document %d not found or has a null signature", doc)
	}
	scored, flops := ss.s.scanSimilar(target, doc, k)
	hits = append([]query.Hit(nil), scored...)

	ss.s.smu.Lock()
	if ss.s.sims.add(key, hits) {
		ss.s.simEvictions.Add(1)
	}
	ss.s.smu.Unlock()
	ss.charge(m.FlopCost(flops) + m.LocalCopyCost(16*float64(len(hits))))
	return hits, nil
}

// scanSimilar scores the server's captured signatures against a target
// vector, excluding one document, and returns the top k hits (score
// descending, document ascending on ties) plus the flops the scan cost.
func (s *Server) scanSimilar(target []float64, exclude int64, k int) ([]query.Hit, float64) {
	sigs := s.sigs
	scored := make([]query.Hit, 0, len(sigs.Vecs))
	var flops float64
	for i, v := range sigs.Vecs {
		if v == nil || sigs.Docs[i] == exclude {
			continue
		}
		scored = append(scored, query.Hit{Doc: sigs.Docs[i], Score: query.Cosine(target, v)})
		flops += float64(3 * sigs.M)
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Doc < scored[b].Doc
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored, flops
}

// similarTo is the shard-local half of a routed similarity query: it scores
// this server's signature slice against an externally supplied target vector.
// It bypasses the per-server result cache — the router caches the merged
// answer, and the sim counters with it — and charges the session the scan
// plus the reply copy.
func (ss *Session) similarTo(target []float64, exclude int64, k int) []query.Hit {
	m := ss.s.store.Model
	scored, flops := ss.s.scanSimilar(target, exclude, k)
	hits := append([]query.Hit(nil), scored...)
	ss.charge(m.FlopCost(flops) + m.LocalCopyCost(16*float64(len(hits))))
	return hits
}

// ThemeDocs returns the document IDs assigned to a k-means cluster, sorted.
func (ss *Session) ThemeDocs(cluster int) []int64 {
	st := ss.s.store
	var out []int64
	for i, c := range st.AssignClusters {
		if c == int64(cluster) {
			out = append(out, st.AssignDocs[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(st.Model.FlopCost(float64(len(st.AssignClusters))))
	return out
}

// Near returns the documents whose ThemeView projection falls within radius
// of (x, y), sorted — the analyst's terrain drill-down.
func (ss *Session) Near(x, y, radius float64) []int64 {
	st := ss.s.store
	r2 := radius * radius
	var out []int64
	for _, pt := range st.Points {
		dx, dy := pt.X-x, pt.Y-y
		if dx*dx+dy*dy <= r2 {
			out = append(out, pt.Doc)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(st.Model.FlopCost(3 * float64(len(st.Points))))
	return out
}
