package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"inspire/internal/query"
	"inspire/internal/signature"
)

// Config tunes the server. The zero value selects documented defaults.
type Config struct {
	// PostingCacheEntries bounds the LRU posting-list cache. Default 4096.
	PostingCacheEntries int
	// SimCacheEntries bounds the top-K similarity result cache. Default 512.
	SimCacheEntries int
	// FrontRank is the producing-run rank modeled as hosting the serving
	// front-end: postings owned by it are local memory reads, everything
	// else is a modeled remote one-sided get. Default 0.
	FrontRank int
}

func (cfg Config) withDefaults() Config {
	if cfg.PostingCacheEntries <= 0 {
		cfg.PostingCacheEntries = 4096
	}
	if cfg.SimCacheEntries <= 0 {
		cfg.SimCacheEntries = 512
	}
	return cfg
}

// Stats is a snapshot of the server-wide counters.
type Stats struct {
	Queries uint64 // interactions served across all sessions

	PostingHits      uint64 // posting fetches answered from the LRU cache
	PostingMisses    uint64 // posting fetches that went to the (modeled) index
	PostingEvictions uint64 // LRU entries displaced
	Coalesced        uint64 // fetches that joined an in-flight get for the same term
	RemoteGets       uint64 // misses whose term owner was not the front-end rank

	SimHits      uint64 // similarity queries answered from the result cache
	SimMisses    uint64 // similarity queries that scanned the signatures
	SimEvictions uint64
}

// PostingHitRate returns hits/(hits+misses), counting coalesced joins as
// hits: they were answered without a new transfer.
func (s Stats) PostingHitRate() float64 {
	total := s.PostingHits + s.Coalesced + s.PostingMisses
	if total == 0 {
		return 0
	}
	return float64(s.PostingHits+s.Coalesced) / float64(total)
}

// SimHitRate returns the similarity-cache hit rate.
func (s Stats) SimHitRate() float64 {
	if s.SimHits+s.SimMisses == 0 {
		return 0
	}
	return float64(s.SimHits) / float64(s.SimHits+s.SimMisses)
}

// postingVal is one cached posting list (views into the store, immutable).
type postingVal struct {
	docs, freqs []int64
}

// flight is one in-progress posting fetch; concurrent requests for the same
// term coalesce onto it and share its single modeled transfer.
type flight struct {
	done chan struct{}
	val  postingVal
	cost float64
}

// simKey keys the similarity cache.
type simKey struct {
	doc int64
	k   int
}

// Server answers concurrent sessions against one Store. All methods are safe
// for concurrent use. The signature set is captured at construction: a
// Store.ApplySignatures after NewServer affects only servers built later, so
// one server's similarity answers and cache always agree.
type Server struct {
	store *Store
	cfg   Config
	sigs  *signature.Set

	pmu      sync.Mutex
	postings *lru[int64, postingVal]
	flights  map[int64]*flight

	smu  sync.Mutex
	sims *lru[simKey, []query.Hit]

	queries          atomic.Uint64
	postingHits      atomic.Uint64
	postingMisses    atomic.Uint64
	postingEvictions atomic.Uint64
	coalesced        atomic.Uint64
	remoteGets       atomic.Uint64
	simHits          atomic.Uint64
	simMisses        atomic.Uint64
	simEvictions     atomic.Uint64

	nextSession atomic.Int64
}

// NewServer builds a server over a store.
func NewServer(st *Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		store:    st,
		cfg:      cfg,
		sigs:     st.Signatures(),
		postings: newLRU[int64, postingVal](cfg.PostingCacheEntries),
		flights:  make(map[int64]*flight),
		sims:     newLRU[simKey, []query.Hit](cfg.SimCacheEntries),
	}, nil
}

// Store returns the underlying snapshot.
func (s *Server) Store() *Store { return s.store }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Queries:          s.queries.Load(),
		PostingHits:      s.postingHits.Load(),
		PostingMisses:    s.postingMisses.Load(),
		PostingEvictions: s.postingEvictions.Load(),
		Coalesced:        s.coalesced.Load(),
		RemoteGets:       s.remoteGets.Load(),
		SimHits:          s.simHits.Load(),
		SimMisses:        s.simMisses.Load(),
		SimEvictions:     s.simEvictions.Load(),
	}
}

// NewSession opens an analyst session. Sessions are cheap; each accumulates
// its own virtual-latency account. A session's methods must be called from
// one goroutine at a time; different sessions are fully concurrent.
func (s *Server) NewSession() *Session {
	return &Session{s: s, ID: s.nextSession.Add(1)}
}

// --- posting fetch path ---------------------------------------------------

// wireCost models one uncached posting fetch: two descriptor reads (count,
// offset) plus the two posting vectors, one-sided against the owner or local
// memory copies when the front-end owns the term.
func (s *Server) wireCost(t int64, n int64) float64 {
	m := s.store.Model
	if s.store.Owner(t) != s.cfg.FrontRank {
		return 2*m.OneSidedCost(8) + 2*m.OneSidedCost(8*float64(n))
	}
	return 2*m.LocalCopyCost(8) + 2*m.LocalCopyCost(8*float64(n))
}

// hitCost models a cache hit: a front-end memory copy of the list.
func (s *Server) hitCost(n int) float64 {
	return s.store.Model.LocalCopyCost(16 * float64(n))
}

// getPostings returns term t's postings and the virtual cost of obtaining
// them, consulting the LRU cache and coalescing concurrent misses for the
// same term into one modeled transfer.
func (s *Server) getPostings(t int64) (postingVal, float64) {
	s.pmu.Lock()
	if v, ok := s.postings.get(t); ok {
		s.pmu.Unlock()
		s.postingHits.Add(1)
		return v, s.hitCost(len(v.docs))
	}
	if f, ok := s.flights[t]; ok {
		s.pmu.Unlock()
		s.coalesced.Add(1)
		<-f.done
		// The joiner shares the in-flight transfer: same arrival, no new
		// traffic charged to the term owner.
		return f.val, f.cost
	}
	f := &flight{done: make(chan struct{})}
	s.flights[t] = f
	s.pmu.Unlock()

	s.postingMisses.Add(1)
	docs, freqs := s.store.Postings(t)
	f.val = postingVal{docs: docs, freqs: freqs}
	f.cost = s.wireCost(t, int64(len(docs)))
	if s.store.Owner(t) != s.cfg.FrontRank {
		s.remoteGets.Add(1)
	}

	s.pmu.Lock()
	if s.postings.add(t, f.val) {
		s.postingEvictions.Add(1)
	}
	delete(s.flights, t)
	s.pmu.Unlock()
	close(f.done)
	return f.val, f.cost
}

// --- Session --------------------------------------------------------------

// Session is one analyst's connection: a sequential stream of interactions
// with its own virtual-latency account. Concurrent sessions share the
// server's caches and coalesce their index traffic.
type Session struct {
	s  *Server
	ID int64

	mu     sync.Mutex
	ops    int64
	virt   float64 // accumulated virtual seconds
	maxOp  float64
	lastOp float64
}

// SessionStats is a snapshot of one session's account.
type SessionStats struct {
	Ops            int64
	VirtualSeconds float64
	MeanMS         float64 // mean per-interaction virtual latency
	MaxMS          float64
	LastMS         float64
}

// Stats snapshots the session account.
func (ss *Session) Stats() SessionStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := SessionStats{
		Ops:            ss.ops,
		VirtualSeconds: ss.virt,
		MaxMS:          ss.maxOp * 1000,
		LastMS:         ss.lastOp * 1000,
	}
	if ss.ops > 0 {
		st.MeanMS = ss.virt / float64(ss.ops) * 1000
	}
	return st
}

// charge records one completed interaction.
func (ss *Session) charge(cost float64) {
	ss.mu.Lock()
	ss.ops++
	ss.virt += cost
	ss.lastOp = cost
	if cost > ss.maxOp {
		ss.maxOp = cost
	}
	ss.mu.Unlock()
	ss.s.queries.Add(1)
}

// lookupCost models the front-end vocabulary probe (the dense map is
// replicated to the front-end at snapshot time).
func (ss *Session) lookupCost(term string) float64 {
	return ss.s.store.Model.LocalCopyCost(float64(len(term) + 8))
}

// TermDocs returns the posting list of a term (sorted by document ID), or
// nil when the term is unknown.
func (ss *Session) TermDocs(term string) []query.Posting {
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok {
		ss.charge(cost)
		return nil
	}
	v, fetchCost := ss.s.getPostings(t)
	ss.charge(cost + fetchCost)
	out := make([]query.Posting, len(v.docs))
	for i := range v.docs {
		out[i] = query.Posting{Doc: v.docs[i], Freq: v.freqs[i]}
	}
	return out
}

// DF returns a term's document frequency (0 when absent).
func (ss *Session) DF(term string) int64 {
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok {
		ss.charge(cost)
		return 0
	}
	m := ss.s.store.Model
	if ss.s.store.Owner(t) != ss.s.cfg.FrontRank {
		cost += m.OneSidedCost(8)
	} else {
		cost += m.LocalCopyCost(8)
	}
	ss.charge(cost)
	return ss.s.store.DF[t]
}

// fetchLists resolves every term to its posting docs, charging lookups and
// fetches; ok is false when any term is unknown or empty.
func (ss *Session) fetchLists(terms []string) (lists [][]int64, cost float64, ok bool) {
	lists = make([][]int64, 0, len(terms))
	ok = true
	for _, term := range terms {
		cost += ss.lookupCost(term)
		t, found := ss.s.store.TermID(term)
		if !found {
			ok = false
			continue
		}
		v, c := ss.s.getPostings(t)
		cost += c
		if len(v.docs) == 0 {
			ok = false
			continue
		}
		lists = append(lists, v.docs)
	}
	return lists, cost, ok
}

// And returns the documents containing every term, sorted by document ID.
func (ss *Session) And(terms ...string) []int64 {
	if len(terms) == 0 {
		return nil
	}
	lists, cost, ok := ss.fetchLists(terms)
	if !ok {
		ss.charge(cost)
		return nil
	}
	// Intersect smallest-first so intermediate results stay small.
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	acc := append([]int64(nil), lists[0]...)
	var merged float64
	for _, l := range lists[1:] {
		merged += float64(len(acc) + len(l))
		acc = query.IntersectSorted(acc, l)
		if len(acc) == 0 {
			acc = nil
			break
		}
	}
	ss.charge(cost + ss.s.store.Model.FlopCost(2*merged))
	return acc
}

// Or returns the documents containing any of the terms, sorted.
func (ss *Session) Or(terms ...string) []int64 {
	lists, cost, _ := ss.fetchLists(terms)
	seen := make(map[int64]bool)
	var merged float64
	for _, l := range lists {
		merged += float64(len(l))
		for _, d := range l {
			seen[d] = true
		}
	}
	out := make([]int64, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(cost + ss.s.store.Model.FlopCost(2*merged))
	return out
}

// Similar returns the k documents most similar to the target document's
// knowledge signature (cosine similarity, the target excluded), consulting
// the top-K result cache. Identical queries return identical results whether
// served cold or cached.
func (ss *Session) Similar(doc int64, k int) ([]query.Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("serve: similar: k must be positive")
	}
	key := simKey{doc: doc, k: k}
	ss.s.smu.Lock()
	hits, ok := ss.s.sims.get(key)
	ss.s.smu.Unlock()
	m := ss.s.store.Model
	if ok {
		ss.s.simHits.Add(1)
		ss.charge(m.LocalCopyCost(16 * float64(len(hits))))
		return hits, nil
	}
	ss.s.simMisses.Add(1)

	sigs := ss.s.sigs
	target, found := sigs.Vec(doc)
	if !found || target == nil {
		ss.charge(m.LocalCopyCost(8))
		return nil, fmt.Errorf("serve: document %d not found or has a null signature", doc)
	}
	scored := make([]query.Hit, 0, len(sigs.Vecs))
	var flops float64
	for i, v := range sigs.Vecs {
		if v == nil || sigs.Docs[i] == doc {
			continue
		}
		scored = append(scored, query.Hit{Doc: sigs.Docs[i], Score: query.Cosine(target, v)})
		flops += float64(3 * sigs.M)
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Doc < scored[b].Doc
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	hits = append([]query.Hit(nil), scored...)

	ss.s.smu.Lock()
	if ss.s.sims.add(key, hits) {
		ss.s.simEvictions.Add(1)
	}
	ss.s.smu.Unlock()
	ss.charge(m.FlopCost(flops) + m.LocalCopyCost(16*float64(len(hits))))
	return hits, nil
}

// ThemeDocs returns the document IDs assigned to a k-means cluster, sorted.
func (ss *Session) ThemeDocs(cluster int) []int64 {
	st := ss.s.store
	var out []int64
	for i, c := range st.AssignClusters {
		if c == int64(cluster) {
			out = append(out, st.AssignDocs[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(st.Model.FlopCost(float64(len(st.AssignClusters))))
	return out
}

// Near returns the documents whose ThemeView projection falls within radius
// of (x, y), sorted — the analyst's terrain drill-down.
func (ss *Session) Near(x, y, radius float64) []int64 {
	st := ss.s.store
	r2 := radius * radius
	var out []int64
	for _, pt := range st.Points {
		dx, dy := pt.X-x, pt.Y-y
		if dx*dx+dy*dy <= r2 {
			out = append(out, pt.Doc)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(st.Model.FlopCost(3 * float64(len(st.Points))))
	return out
}
