package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"inspire/internal/core"
	"inspire/internal/postings"
	"inspire/internal/project"
	"inspire/internal/query"
	"inspire/internal/segment"
	"inspire/internal/storefile"
	"inspire/internal/tiles"
)

// Config tunes the server. The zero value selects documented defaults.
type Config struct {
	// PostingCacheEntries bounds the LRU posting-list cache. Default 4096.
	PostingCacheEntries int
	// SimCacheEntries bounds the top-K similarity result cache. Default 512.
	SimCacheEntries int
	// FrontRank is the producing-run rank modeled as hosting the serving
	// front-end: postings owned by it are local memory reads, everything
	// else is a modeled remote one-sided get. Default 0.
	FrontRank int

	// TileMaxZoom is the deepest zoom level of the Galaxy tile pyramid
	// (levels 0..TileMaxZoom). Default 6.
	TileMaxZoom int
	// TileGrid is the per-tile density raster dimension; must be a power
	// of two. Default 8.
	TileGrid int
	// TileThemes is the number of top themes reported per tile. Default 4.
	TileThemes int
	// TileExemplars is the number of exemplar documents kept per tile.
	// Default 4.
	TileExemplars int
	// TileCacheEntries bounds the epoch-keyed tile result LRU. Default
	// 1024.
	TileCacheEntries int
	// DisableTiles turns the tile pyramid off: Tile/TileRange error and
	// Near falls back to the full point scan — the pre-tiles behaviour the
	// Fig S5 baseline measures.
	DisableTiles bool

	// MapBudgetBytes caps the heap bytes a mapped (INSPSTORE4) store may
	// pin for decoded posting lists; past it the cache stops admitting and
	// queries decode from the mapped pages per request. Default 512 MiB;
	// negative means unlimited. Heap-resident stores ignore it.
	MapBudgetBytes int64
	// NoMmap makes LoadServiceFile materialize INSPSTORE4 files to heap
	// instead of mapping them — the cmd/inspired -no-mmap escape hatch.
	NoMmap bool

	// Replicas is the per-shard replica count a Router maintains. Each
	// replica serves reads independently; writes apply to every live
	// replica in primary order. Default 1 (no replication).
	Replicas int
	// HedgeAfter is how long a routed read waits on its first replica
	// before hedging the sub-query to a second one (tail-latency cover
	// for a slow-but-alive replica). Zero selects the 1ms default;
	// negative disables hedging. Ignored without replication.
	HedgeAfter time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.PostingCacheEntries <= 0 {
		cfg.PostingCacheEntries = 4096
	}
	if cfg.SimCacheEntries <= 0 {
		cfg.SimCacheEntries = 512
	}
	if cfg.TileThemes <= 0 {
		cfg.TileThemes = 4
	}
	if cfg.TileCacheEntries <= 0 {
		cfg.TileCacheEntries = 1024
	}
	if cfg.MapBudgetBytes == 0 {
		cfg.MapBudgetBytes = 512 << 20
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = time.Millisecond
	}
	return cfg
}

// Options configures NewService, the single construction entry point for the
// serving tier. Exactly one of Store (single-store Server) or Shards (sharded
// scatter-gather Router) must be set; Config tunes caches, tiles, replication
// and hedging for whichever is built.
type Options struct {
	// Store serves a single store behind a Server.
	Store *Store
	// Shards serves a sharded store set behind a Router. Mutually
	// exclusive with Store.
	Shards []*Store
	// Config tunes the serving tier; the zero value selects documented
	// defaults. Config.Replicas > 1 makes the Router replicate each shard.
	Config Config
}

// NewService builds the serving tier from Options: a Server over
// Options.Store, or a Router over Options.Shards (replicated per
// Config.Replicas). This replaces the positional NewServer/NewRouter
// constructors, which remain as deprecated wrappers.
func NewService(opts Options) (Service, error) {
	switch {
	case opts.Store != nil && len(opts.Shards) > 0:
		return nil, fmt.Errorf("serve: Options.Store and Options.Shards are mutually exclusive")
	case opts.Store != nil:
		if opts.Config.Replicas > 1 {
			// Replication lives in the Router's replica sets; a single
			// store replicates behind a one-shard router.
			return newRouter([]*Store{opts.Store}, opts.Config)
		}
		return newServer(opts.Store, opts.Config)
	case len(opts.Shards) > 0:
		return newRouter(opts.Shards, opts.Config)
	default:
		return nil, fmt.Errorf("serve: Options needs a Store or Shards")
	}
}

// Stats is a snapshot of the server-wide counters. The fan-out block is
// populated only by a Router over a sharded store set; a single-store Server
// leaves it zero. The ingest block counts live-ingestion activity on the
// underlying store(s).
type Stats struct {
	Queries uint64 // interactions served across all sessions

	PostingHits      uint64 // posting fetches answered from the LRU cache
	PostingMisses    uint64 // posting fetches that went to the (modeled) index
	PostingEvictions uint64 // LRU entries displaced
	Coalesced        uint64 // fetches that joined an in-flight get for the same term
	RemoteGets       uint64 // misses whose term owner was not the front-end rank

	PartialFetches uint64 // And intersections served straight off compressed blocks
	BlocksDecoded  uint64 // posting blocks decoded during partial fetches
	BlocksSkipped  uint64 // posting blocks the skip directory ruled out untouched
	SegmentFetches uint64 // posting reads answered from sealed delta segments

	// Bitmap-container accounts. Dense∧dense conjunctions run word-wise over
	// the container itself (in place on a mapped store) — no posting decode,
	// no LRU entry, no pin. Probes are dense∧sparse accumulator checks, one
	// bit test per candidate doc; serves count full enumerations (Or,
	// TermDocs, cache fills) answered by popcount walks instead of varint
	// decode.
	BitmapAnds   uint64 // dense∧dense AND kernels executed
	BitmapProbes uint64 // accumulator docs bit-probed against a bitmap term
	BitmapServes uint64 // full bitmap enumerations (unions, seeds, cache fills)

	SimHits      uint64 // similarity queries answered from the result cache
	SimMisses    uint64 // similarity queries that scanned the signatures
	SimRefreshes uint64 // misses patched forward from an older epoch's answer
	SimEvictions uint64

	FilterBuilds uint64 // (epoch, filter) document sets materialized
	FilterHits   uint64 // filtered interactions served from a cached set

	TileHits    uint64 // tile queries answered from the epoch-keyed tile LRU
	TileMisses  uint64 // tile queries that read the maintained pyramid
	TilesPruned uint64 // quadtree subtrees ruled out by spatial walks untouched

	// Maintenance accounts: modeled virtual milliseconds charged to work
	// kept off every session's critical path.
	CompactVirtMS   float64 // background compaction and rebase merges
	TileMaintVirtMS float64 // tile-pyramid builds and lineage patches

	FanOuts       uint64 // router scatter rounds issued
	ShardQueries  uint64 // sub-queries executed on shard servers
	ShardsPruned  uint64 // shard sub-queries skipped by zero-DF pruning
	ShortCircuits uint64 // router queries answered with no fan-out at all

	// Replication accounts, populated only by a Router with Replicas > 1.
	Hedges          uint64 // hedged sub-queries launched for tail-latency cover
	HedgeWins       uint64 // hedges that answered before the first attempt
	Failovers       uint64 // read attempts retried on another replica after a failure
	ReplicaCatchUps uint64 // replica catch-up rounds completed (revive or resync)
	CatchUpSegments uint64 // sealed segments shipped to lagging replicas
	CatchUpBytes    uint64 // posting payload bytes shipped during catch-up

	Adds        uint64 // documents ingested through the live path
	Deletes     uint64 // documents tombstoned
	Seals       uint64 // deltas sealed into segments
	Compactions uint64 // segment merges (and rebases) completed

	// Resident-set accounting of mapped (INSPSTORE4) stores; all zero for
	// heap-resident stores. Pinned bytes are heap the serving layer holds
	// (decoded posting lists in the cache, load-time copies) against the
	// MapBudgetBytes budget; mapped bytes stay evictable in the file
	// mapping. PinDenials counts cache admissions the budget refused.
	ResidentPinnedBytes int64
	ResidentMappedBytes int64
	PinDenials          uint64
}

// PostingHitRate returns hits/(hits+misses), counting coalesced joins as
// hits: they were answered without a new transfer.
func (s Stats) PostingHitRate() float64 {
	total := s.PostingHits + s.Coalesced + s.PostingMisses
	if total == 0 {
		return 0
	}
	return float64(s.PostingHits+s.Coalesced) / float64(total)
}

// SimHitRate returns the similarity-cache hit rate.
func (s Stats) SimHitRate() float64 {
	if s.SimHits+s.SimMisses == 0 {
		return 0
	}
	return float64(s.SimHits) / float64(s.SimHits+s.SimMisses)
}

// postingVal is one cached base posting list (views into the store,
// immutable).
type postingVal struct {
	docs, freqs []int64
}

// pinBytes is the heap the cached entry holds resident: the decoded doc and
// freq slices. What the posting cache pins against a mapped store's budget.
func (v postingVal) pinBytes() int64 {
	return int64(8*len(v.docs) + 8*len(v.freqs))
}

// postKey keys the posting cache: the base generation plus the term. Epoch
// swaps (seals, deletes, signature swaps, compactions) leave the base alone,
// so cached decoded lists survive them; only a base rewrite (Rebase) bumps
// the generation and retires the old entries.
type postKey struct {
	gen uint64
	t   int64
}

// flight is one in-progress posting fetch; concurrent requests for the same
// term coalesce onto it and share its single modeled transfer.
type flight struct {
	done chan struct{}
	val  postingVal
	cost float64
}

// simKey keys the similarity caches. The epoch makes every published change
// (ingest seal, delete, signature swap) a natural invalidation: old-epoch
// entries simply age out of the LRU.
type simKey struct {
	epoch uint64
	doc   int64
	k     int
}

// filterKey keys the materialized filter-set cache: the view epoch plus the
// canonical filter serialization. Epoch keying invalidates on every published
// change, exactly like the similarity caches.
type filterKey struct {
	epoch uint64
	key   string
}

// filterCacheEntries bounds the filter-set LRU. Analyst sessions reuse a
// handful of active filters; each set is one bitmap or ID list per epoch.
const filterCacheEntries = 64

// Querier is the session surface shared by single-store Sessions and sharded
// RouterSessions: one analyst's sequential interaction stream with its own
// virtual-latency account, including the live-ingestion verbs. A Querier's
// methods must be called from one goroutine at a time; distinct Queriers are
// fully concurrent.
//
// Every interaction takes a context as its first parameter: cancellation
// (client disconnect, admission deadline, a hedged request losing its race)
// stops the interaction early — error-returning ops surface ctx.Err(),
// slice-returning ops return nil. Stats is a pure accessor and stays
// context-free.
type Querier interface {
	TermDocs(ctx context.Context, term string) []query.Posting
	DF(ctx context.Context, term string) int64
	And(ctx context.Context, terms ...string) []int64
	Or(ctx context.Context, terms ...string) []int64
	Similar(ctx context.Context, doc int64, k int) ([]query.Hit, error)
	ThemeDocs(ctx context.Context, cluster int) []int64
	Near(ctx context.Context, x, y, radius float64) []int64
	Tile(ctx context.Context, z, x, y int) (*TileResult, error)
	TileRange(ctx context.Context, z int, r tiles.Rect) ([]*TileResult, error)
	Add(ctx context.Context, text string) (int64, error)
	AddDoc(ctx context.Context, text string, ts int64, facets []string) (int64, error)
	Delete(ctx context.Context, doc int64) error
	// SetFilter restricts every subsequent query on this querier to documents
	// matching f (see Filter); the zero Filter clears it. A filtered query
	// returns exactly the unfiltered answer with non-matching documents
	// removed. DF is a descriptor read and stays unfiltered.
	SetFilter(f Filter) error
	Stats() SessionStats
}

// Service is what serves analyst sessions: a single-store Server or a
// sharded Router. Workload replay and the daemon front-end run against this
// surface, so a sharded set serves transparently behind the session API.
// TopTerms and SampleDocs scan the corpus and take a context; NewQuerier,
// Stats, NumThemes and Themes are pure accessors and stay context-free.
type Service interface {
	NewQuerier() Querier
	Stats() Stats
	TopTerms(ctx context.Context, n int) []string
	SampleDocs(ctx context.Context, n int) []int64
	NumThemes() int
	Themes() []core.Theme
}

// Liver is the live-maintenance surface of a Service: making pending adds
// visible, compacting segments, and persisting the live state. The daemon
// exposes these as operator commands.
type Liver interface {
	FlushLive(ctx context.Context) error
	CompactLive(ctx context.Context) error
	SaveLive(ctx context.Context, path string) error
}

// Server answers concurrent sessions against one Store. All methods are safe
// for concurrent use. Sessions resolve the store's current epoch view once
// per interaction, so ingestion, deletes, compaction and signature swaps
// published through the store become visible between interactions — never in
// the middle of one.
type Server struct {
	store *Store
	cfg   Config

	pmu      sync.Mutex
	postings *lru[postKey, postingVal]
	flights  map[postKey]*flight

	smu  sync.Mutex
	sims *lru[simKey, []query.Hit]

	fmu     sync.Mutex
	filters *lru[filterKey, *filterSet]

	tmu   sync.Mutex
	tiles *lru[tileKey, *tiles.Tile]

	queries          atomic.Uint64
	postingHits      atomic.Uint64
	postingMisses    atomic.Uint64
	postingEvictions atomic.Uint64
	coalesced        atomic.Uint64
	remoteGets       atomic.Uint64
	partialFetches   atomic.Uint64
	blocksDecoded    atomic.Uint64
	blocksSkipped    atomic.Uint64
	segmentFetches   atomic.Uint64
	bitmapAnds       atomic.Uint64
	bitmapProbes     atomic.Uint64
	bitmapServes     atomic.Uint64
	simHits          atomic.Uint64
	simMisses        atomic.Uint64
	simRefreshes     atomic.Uint64
	simEvictions     atomic.Uint64
	filterBuilds     atomic.Uint64
	filterHits       atomic.Uint64
	tileHits         atomic.Uint64
	tileMisses       atomic.Uint64
	tilesPruned      atomic.Uint64

	nextSession atomic.Int64
}

// NewServer builds a server over a store.
//
// Deprecated: use NewService with Options{Store: st, Config: cfg}; this
// wrapper remains for existing callers.
func NewServer(st *Store, cfg Config) (*Server, error) { return newServer(st, cfg) }

func newServer(st *Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.tileConfig().Validate(); err != nil {
		return nil, err
	}
	if st.res != nil {
		st.res.SetBudget(cfg.MapBudgetBytes)
	}
	return &Server{
		store:    st,
		cfg:      cfg,
		postings: newLRU[postKey, postingVal](cfg.PostingCacheEntries),
		flights:  make(map[postKey]*flight),
		sims:     newLRU[simKey, []query.Hit](cfg.SimCacheEntries),
		filters:  newLRU[filterKey, *filterSet](filterCacheEntries),
		tiles:    newLRU[tileKey, *tiles.Tile](cfg.TileCacheEntries),
	}, nil
}

// Store returns the underlying store.
func (s *Server) Store() *Store { return s.store }

// NewQuerier opens a session; it is NewSession behind the Service surface.
func (s *Server) NewQuerier() Querier { return s.NewSession() }

// TopTerms returns the store's query vocabulary head, for workload defaults.
func (s *Server) TopTerms(ctx context.Context, n int) []string {
	if ctx.Err() != nil {
		return nil
	}
	return s.store.TopTerms(n)
}

// SampleDocs returns deterministic similarity targets from the store.
func (s *Server) SampleDocs(ctx context.Context, n int) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	return s.store.SampleDocs(n)
}

// NumThemes returns the store's k-means cluster count.
func (s *Server) NumThemes() int { return s.store.K }

// Themes returns the store's discovered themes.
func (s *Server) Themes() []core.Theme { return s.store.Themes }

// FlushLive makes every pending add visible (Store.Flush).
func (s *Server) FlushLive(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := s.store.Flush()
	return err
}

// CompactLive merges the store's sealed segments now (Store.Compact).
func (s *Server) CompactLive(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := s.store.Compact()
	return err
}

// SaveLive persists the store with its live state folded in: pending adds
// are flushed, compaction drained, the segments and tombstones rebased into
// the base, and the result written as a single INSPSTORE4 file — tile
// pyramid embedded — that the next process serves straight from an mmap.
func (s *Server) SaveLive(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := s.store.Rebase(); err != nil {
		return err
	}
	return s.store.SaveFile(path)
}

// signature returns the signature vector of doc in the store's current view.
func (s *Server) signature(doc int64) ([]float64, bool) {
	return s.store.viewNow().sigVec(doc)
}

// Stats snapshots the server counters plus the store's ingest counters.
func (s *Server) Stats() Stats {
	live := &s.store.live
	compactMS, tileMS := s.store.maintVirtMS()
	var rs storefile.ResidentStats
	if s.store.res != nil {
		rs = s.store.res.Stats()
	}
	return Stats{
		Queries:          s.queries.Load(),
		PostingHits:      s.postingHits.Load(),
		PostingMisses:    s.postingMisses.Load(),
		PostingEvictions: s.postingEvictions.Load(),
		Coalesced:        s.coalesced.Load(),
		RemoteGets:       s.remoteGets.Load(),
		PartialFetches:   s.partialFetches.Load(),
		BlocksDecoded:    s.blocksDecoded.Load(),
		BlocksSkipped:    s.blocksSkipped.Load(),
		SegmentFetches:   s.segmentFetches.Load(),
		BitmapAnds:       s.bitmapAnds.Load(),
		BitmapProbes:     s.bitmapProbes.Load(),
		BitmapServes:     s.bitmapServes.Load(),
		SimHits:          s.simHits.Load(),
		SimMisses:        s.simMisses.Load(),
		SimRefreshes:     s.simRefreshes.Load(),
		SimEvictions:     s.simEvictions.Load(),
		FilterBuilds:     s.filterBuilds.Load(),
		FilterHits:       s.filterHits.Load(),
		TileHits:         s.tileHits.Load(),
		TileMisses:       s.tileMisses.Load(),
		TilesPruned:      s.tilesPruned.Load(),
		Adds:             live.adds.Load(),
		Deletes:          live.deletes.Load(),
		Seals:            live.seals.Load(),
		Compactions:      live.compactions.Load(),
		CompactVirtMS:    compactMS,
		TileMaintVirtMS:  tileMS,

		ResidentPinnedBytes: rs.PinnedBytes,
		ResidentMappedBytes: rs.MappedBytes,
		PinDenials:          rs.PinDenials,
	}
}

// NewSession opens an analyst session. Sessions are cheap; each accumulates
// its own virtual-latency account. A session's methods must be called from
// one goroutine at a time; different sessions are fully concurrent.
func (s *Server) NewSession() *Session {
	return &Session{s: s, ID: s.nextSession.Add(1)}
}

// --- posting fetch path ---------------------------------------------------

// wireCost models one uncached base posting fetch: two descriptor reads
// (count, offset) plus the posting payload, one-sided against the owner or
// local memory copies when the front-end owns the term. A compressed store
// moves the block-coded bytes — several times fewer — and the front-end pays
// the varint+delta decode in flops.
func (s *Server) wireCost(b *baseView, t int64, n int64) float64 {
	m := s.store.Model
	remote := s.store.Owner(t) != s.cfg.FrontRank
	if ps := b.posts; ps != nil {
		docB, freqB := ps.TermBytes(t)
		payload := float64(docB + freqB)
		// Varint+delta decode streams at memory rate: charged as writing
		// the decoded int64 pairs, like the block decoders it models.
		decode := m.LocalCopyCost(16 * float64(n))
		if remote {
			return 2*m.OneSidedCost(8) + m.OneSidedCost(payload) + decode
		}
		return 2*m.LocalCopyCost(8) + m.LocalCopyCost(payload) + decode
	}
	if remote {
		return 2*m.OneSidedCost(8) + 2*m.OneSidedCost(8*float64(n))
	}
	return 2*m.LocalCopyCost(8) + 2*m.LocalCopyCost(8*float64(n))
}

// partialCost models a block-skipping intersection against term t's
// compressed base list: the skip-directory probe plus only the decoded doc
// blocks move (ruled-out blocks cost nothing), decode runs at memory rate
// over the decoded blocks, and the merge walk covers the candidates plus the
// decoded postings.
func (s *Server) partialCost(t int64, accLen int, ist postings.IntersectStats) float64 {
	m := s.store.Model
	dir := 8 + 24*float64(ist.BlocksDecoded+ist.BlocksSkipped)
	payload := float64(ist.BytesDecoded)
	decoded := float64(ist.PostingsDecoded)
	work := m.LocalCopyCost(8*decoded) + m.FlopCost(2*(float64(accLen)+decoded))
	if s.store.Owner(t) != s.cfg.FrontRank {
		return m.OneSidedCost(dir) + m.OneSidedCost(payload) + work
	}
	return m.LocalCopyCost(dir) + m.LocalCopyCost(payload) + work
}

// hitCost models a cache hit: a front-end memory copy of the list.
func (s *Server) hitCost(n int) float64 {
	return s.store.Model.LocalCopyCost(16 * float64(n))
}

// bitmapTouchCost models streaming n bytes of term t's bitmap words:
// one-sided when the term's owner is remote, a memory read otherwise. On a
// mapped store those bytes are the file's own pages — nothing is decoded or
// staged, so this is the whole transfer.
func (s *Server) bitmapTouchCost(t int64, bytes float64) float64 {
	m := s.store.Model
	if s.store.Owner(t) != s.cfg.FrontRank {
		return m.OneSidedCost(bytes)
	}
	return m.LocalCopyCost(bytes)
}

// bitmapAndCost models the dense∧dense kernel: both operands' overlapping
// words stream through one AND per 64 candidate docs, then the surviving doc
// IDs write out at memory rate.
func (s *Server) bitmapAndCost(a, b int64, ist postings.IntersectStats, outLen int) float64 {
	m := s.store.Model
	words := float64(ist.WordsScanned)
	return s.bitmapTouchCost(a, 8*words) + s.bitmapTouchCost(b, 8*words) +
		m.FlopCost(words) + m.LocalCopyCost(8*float64(outLen))
}

// bitmapProbeCost models the dense∧sparse kernel: one word read and one bit
// test per accumulator doc.
func (s *Server) bitmapProbeCost(t int64, ist postings.IntersectStats) float64 {
	probes := float64(ist.BitProbes)
	return s.bitmapTouchCost(t, 8*probes) + s.store.Model.FlopCost(probes)
}

// bitmapSeedCost models enumerating a bitmap term to seed an accumulator:
// the words stream in and the doc IDs write out at memory rate.
func (s *Server) bitmapSeedCost(ps *postings.Store, t int64, outLen int) float64 {
	docB, _ := ps.TermBytes(t)
	return s.bitmapTouchCost(t, float64(docB)) +
		s.store.Model.LocalCopyCost(8*float64(outLen))
}

// segCost models reading term t's postings from a sealed segment: segments
// live in front-end memory, so the compressed bytes move and decode at
// memory rate.
func (s *Server) segCost(seg *segment.Segment, t int64, n int64) float64 {
	m := s.store.Model
	docB, freqB := seg.Posts.TermBytes(t)
	return m.LocalCopyCost(float64(docB+freqB)) + m.LocalCopyCost(16*float64(n))
}

// getPostings returns term t's base postings under the view's generation and
// the virtual cost of obtaining them, consulting the LRU cache and
// coalescing concurrent misses for the same term into one modeled transfer.
func (s *Server) getPostings(v *view, t int64) (postingVal, float64) {
	key := postKey{gen: v.gen, t: t}
	s.pmu.Lock()
	if val, ok := s.postings.get(key); ok {
		s.pmu.Unlock()
		s.postingHits.Add(1)
		return val, s.hitCost(len(val.docs))
	}
	if f, ok := s.flights[key]; ok {
		s.pmu.Unlock()
		s.coalesced.Add(1)
		<-f.done
		// The joiner shares the in-flight transfer: same arrival, no new
		// traffic charged to the term owner.
		return f.val, f.cost
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.pmu.Unlock()

	s.postingMisses.Add(1)
	docs, freqs := v.base.postings(t)
	f.val = postingVal{docs: docs, freqs: freqs}
	f.cost = s.wireCost(v.base, t, int64(len(docs)))
	if ps := v.base.posts; ps != nil && ps.IsBitmap(t) {
		// A bitmap term materializes by popcount enumeration, not varint
		// decode (wireCost already moves its word bytes via TermBytes). The
		// And path never gets here for bitmap terms; Or/TermDocs do, and the
		// list is cached like any other.
		s.bitmapServes.Add(1)
	}
	if s.store.Owner(t) != s.cfg.FrontRank {
		s.remoteGets.Add(1)
	}

	s.pmu.Lock()
	// A mapped store pins decoded lists against its resident budget; once
	// spent, the list is returned uncached and later queries decode from
	// the mapped pages again — memory bounded, mapping evictable.
	res := s.store.res
	if res == nil || res.TryPin(f.val.pinBytes()) {
		if old, evicted := s.postings.add(key, f.val); evicted {
			s.postingEvictions.Add(1)
			if res != nil {
				res.Unpin(old.pinBytes())
			}
		}
	}
	delete(s.flights, key)
	s.pmu.Unlock()
	close(f.done)
	return f.val, f.cost
}

// cachedPostings peeks the LRU without fetching on a miss. The And path uses
// it so cache hits keep their decoded fast path while misses intersect
// straight off the compressed blocks instead of decoding whole lists.
func (s *Server) cachedPostings(v *view, t int64) (postingVal, float64, bool) {
	s.pmu.Lock()
	val, ok := s.postings.get(postKey{gen: v.gen, t: t})
	s.pmu.Unlock()
	if !ok {
		return postingVal{}, 0, false
	}
	s.postingHits.Add(1)
	return val, s.hitCost(len(val.docs)), true
}

// filterSetFor resolves the materialized document set of (v's epoch, f),
// building and caching it on a miss. The returned cost is the modeled price
// of obtaining the set: a descriptor probe on a hit, the metadata walk plus
// the member write-out on a build.
func (s *Server) filterSetFor(v *view, f Filter) (*filterSet, float64) {
	m := s.store.Model
	key := filterKey{epoch: v.epoch, key: f.cacheKey()}
	s.fmu.Lock()
	fs, ok := s.filters.get(key)
	s.fmu.Unlock()
	if ok {
		s.filterHits.Add(1)
		return fs, m.LocalCopyCost(8)
	}
	fs = buildFilterSet(v, f)
	s.filterBuilds.Add(1)
	s.fmu.Lock()
	s.filters.add(key, fs)
	s.fmu.Unlock()
	return fs, m.LocalCopyCost(8*float64(fs.scanned)) + m.LocalCopyCost(8*float64(fs.n))
}

// segPostings reads term t's postings from one segment, counting and
// charging the fetch.
func (s *Server) segPostings(seg *segment.Segment, t int64) (docs, freqs []int64, cost float64) {
	docs, freqs = seg.Posts.Postings(t)
	s.segmentFetches.Add(1)
	return docs, freqs, s.segCost(seg, t, int64(len(docs)))
}

// --- Session --------------------------------------------------------------

// Session is one analyst's connection: a sequential stream of interactions
// with its own virtual-latency account. Concurrent sessions share the
// server's caches and coalesce their index traffic. Each interaction
// resolves the store's current epoch view once and answers entirely from it.
type Session struct {
	s    *Server
	ID   int64
	acct account

	// filter restricts every query on this session (SetFilter); always held
	// in normalized form. The zero Filter means unfiltered.
	filter Filter

	// Query scratch reused across interactions. A session is a sequential
	// stream — one goroutine at a time (the HTTP layer serializes named
	// sessions with a mutex) — so the buffers are never contended, and
	// nothing scratch-backed escapes: And always returns a freshly merged
	// slice (mergeSorted copies even a single part).
	scratchCands []andCand
	scratchA     []int64
	scratchB     []int64
	scratchParts [][]int64
}

// andCand is one conjunction term's descriptor during And's planning pass.
type andCand struct{ id, baseDF, liveDF int64 }

// SessionStats is a snapshot of one session's account.
type SessionStats struct {
	Ops            int64
	VirtualSeconds float64
	MeanMS         float64 // mean per-interaction virtual latency
	MaxMS          float64
	LastMS         float64
}

// account is one querier's virtual-latency ledger, shared by single-store
// Sessions and sharded RouterSessions.
type account struct {
	mu     sync.Mutex
	ops    int64
	virt   float64 // accumulated virtual seconds
	maxOp  float64
	lastOp float64
}

// add records one completed interaction.
func (a *account) add(cost float64) {
	a.mu.Lock()
	a.ops++
	a.virt += cost
	a.lastOp = cost
	if cost > a.maxOp {
		a.maxOp = cost
	}
	a.mu.Unlock()
}

// last returns the cost of the most recent interaction in virtual seconds.
func (a *account) last() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastOp
}

// snapshot renders the ledger as SessionStats.
func (a *account) snapshot() SessionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := SessionStats{
		Ops:            a.ops,
		VirtualSeconds: a.virt,
		MaxMS:          a.maxOp * 1000,
		LastMS:         a.lastOp * 1000,
	}
	if a.ops > 0 {
		st.MeanMS = a.virt / float64(a.ops) * 1000
	}
	return st
}

// Stats snapshots the session account.
func (ss *Session) Stats() SessionStats { return ss.acct.snapshot() }

// SetFilter restricts every subsequent query on this session to documents
// matching f; the zero Filter clears it (see Querier.SetFilter).
func (ss *Session) SetFilter(f Filter) error {
	nf, err := f.normalized()
	if err != nil {
		return err
	}
	ss.filter = nf
	return nil
}

// filterFor resolves the session's filter set against the view; (nil, 0)
// when the session is unfiltered.
func (ss *Session) filterFor(v *view) (*filterSet, float64) {
	if ss.filter.Empty() {
		return nil, 0
	}
	return ss.s.filterSetFor(v, ss.filter)
}

// applyFilterHits post-filters a top-k hit list (a cached answer or a fresh
// copy — never mutated) against the session filter, returning the kept hits
// and the modeled probe cost.
func (ss *Session) applyFilterHits(v *view, hits []query.Hit) ([]query.Hit, float64) {
	fs, cost := ss.filterFor(v)
	if fs == nil {
		return hits, 0
	}
	kept := make([]query.Hit, 0, len(hits))
	for _, h := range hits {
		if fs.contains(h.Doc) {
			kept = append(kept, h)
		}
	}
	return kept, cost + ss.s.store.Model.FlopCost(float64(len(hits)))
}

// charge records one completed interaction.
func (ss *Session) charge(cost float64) {
	ss.acct.add(cost)
	ss.s.queries.Add(1)
}

// lookupCost models the front-end vocabulary probe (the dense map is
// replicated to the front-end at snapshot time).
func (ss *Session) lookupCost(term string) float64 {
	return ss.s.store.Model.LocalCopyCost(float64(len(term) + 8))
}

// dfCost models reading a term's DF descriptors: the replicated base DF plus
// one summary probe per sealed segment.
func (ss *Session) dfCost(v *view) float64 {
	return ss.s.store.Model.LocalCopyCost(8 * float64(1+len(v.segs)))
}

// filterTombs drops tombstoned docs in place; nil when nothing survives.
func filterTombs(docs []int64, tombs map[int64]bool) []int64 {
	if len(tombs) == 0 || len(docs) == 0 {
		return docs
	}
	out := docs[:0]
	for _, d := range docs {
		if !tombs[d] {
			out = append(out, d)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// TermDocs returns the posting list of a term (sorted by document ID), or
// nil when the term is unknown or fully deleted — base and ingested-segment
// postings merged, tombstones filtered.
func (ss *Session) TermDocs(ctx context.Context, term string) []query.Posting {
	if ctx.Err() != nil {
		return nil
	}
	v := ss.s.store.viewNow()
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok || v.df(t) == 0 {
		ss.charge(cost)
		return nil
	}
	cost += ss.dfCost(v)
	lists := make([]plist, 0, 1+len(v.segs))
	if v.base.df[t] > 0 {
		val, c := ss.s.getPostings(v, t)
		cost += c
		lists = append(lists, plist{val.docs, val.freqs})
	}
	for _, seg := range v.segs {
		if seg.Posts.Count[t] == 0 {
			continue
		}
		d, f, c := ss.s.segPostings(seg, t)
		cost += c
		lists = append(lists, plist{d, f})
	}
	var docs, freqs []int64
	if len(lists) == 1 && len(v.tombs) == 0 {
		docs, freqs = lists[0].docs, lists[0].freqs
	} else {
		docs, freqs = mergePlists(lists, v.tombs)
		cost += ss.s.store.Model.LocalCopyCost(16 * float64(len(docs)))
	}
	// The session filter applies while building the reply postings: docs may
	// be a shared store slice, so it is never filtered in place.
	fs, fc := ss.filterFor(v)
	if fs != nil {
		cost += fc + ss.s.store.Model.FlopCost(float64(len(docs)))
	}
	ss.charge(cost)
	if len(docs) == 0 {
		return nil
	}
	out := make([]query.Posting, 0, len(docs))
	for i := range docs {
		if fs != nil && !fs.contains(docs[i]) {
			continue
		}
		out = append(out, query.Posting{Doc: docs[i], Freq: freqs[i]})
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// DF returns a term's document frequency (0 when absent): the base DF plus
// every sealed segment's summary. Tombstoned documents stay counted until
// compaction or Rebase drops their postings — the standard LSM overcount.
func (ss *Session) DF(ctx context.Context, term string) int64 {
	if ctx.Err() != nil {
		return 0
	}
	v := ss.s.store.viewNow()
	cost := ss.lookupCost(term)
	t, ok := ss.s.store.TermID(term)
	if !ok {
		ss.charge(cost)
		return 0
	}
	ss.charge(cost + ss.dfCost(v))
	return v.df(t)
}

// And returns the documents containing every term, sorted by document ID.
//
// The conjunction is doomed the moment any term is unknown or empty in the
// whole view, so the vocabulary and DF descriptors are consulted for every
// term before a single posting list moves — a doomed And costs only those
// lookups. Every document lives either in the base or in exactly one sealed
// segment, so the conjunction decomposes: the base part intersects
// rarest-first with the block-skipping machinery (see below), each segment
// whose DF summary admits every term intersects its own small lists, and the
// disjoint results merge, tombstones filtered.
//
// Base part: the rarest list is fetched decoded (through the LRU), and each
// larger list is then intersected in place — from the decoded cache on a
// hit; block-skippingly against the compressed store when the candidate set
// is sparse relative to the list (never decoding the blocks the skip
// directory rules out); through a full cached-and-coalesced fetch when it is
// dense and would decode most blocks anyway. The loop exits before touching
// the remaining (larger) lists once the intersection empties.
func (ss *Session) And(ctx context.Context, terms ...string) []int64 {
	if len(terms) == 0 || ctx.Err() != nil {
		return nil
	}
	st := ss.s.store
	v := st.viewNow()
	m := st.Model
	cands := ss.scratchCands[:0]
	var cost float64
	for _, term := range terms {
		cost += ss.lookupCost(term)
		t, found := st.TermID(term)
		var live int64
		if found { // DF descriptors are front-end local, like the vocabulary
			cost += ss.dfCost(v)
			live = v.df(t)
		}
		if !found || live == 0 {
			ss.scratchCands = cands[:0]
			ss.charge(cost)
			return nil
		}
		cands = append(cands, andCand{id: t, baseDF: v.base.df[t], liveDF: live})
	}
	ss.scratchCands = cands
	// The session filter resolves after the doomed-query exits: a conjunction
	// with an unknown term never pays the filter-set build.
	fs, fc := ss.filterFor(v)
	cost += fc
	// Rarest-first must follow the base lists the base pass actually fetches:
	// ordering by live DF would seed the accumulator with a huge base list
	// whenever a term's postings concentrate in ingested segments (live DF
	// small overall but base DF large is impossible; the inverse — base-rare,
	// segment-heavy — is exactly a trending ingested term). Live DF already
	// served its purpose in the doomed-query exit above. Insertion sort: a
	// conjunction has a handful of terms, and unlike sort.Slice there is no
	// closure to allocate.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j], cands[j-1]
			if a.baseDF > b.baseDF || (a.baseDF == b.baseDF && a.liveDF >= b.liveDF) {
				break
			}
			cands[j], cands[j-1] = b, a
		}
	}

	// Base intersection: only possible when every term has base postings.
	// The accumulator ping-pongs between two session scratch buffers, so a
	// warm And allocates nothing until the final merge.
	bufA, bufB := ss.scratchA, ss.scratchB
	var acc []int64
	var flops float64
	baseLive := true
	for _, cd := range cands {
		if cd.baseDF == 0 {
			baseLive = false
			break
		}
	}
	if baseLive {
		ps := v.base.posts
		i0 := 1
		switch {
		case ps != nil && ps.IsBitmap(cands[0].id) && len(cands) > 1 && ps.IsBitmap(cands[1].id):
			// Dense∧dense: one word-wise AND straight over the containers —
			// on a mapped store these are the file's own pages, so nothing is
			// decoded, copied or cached.
			var ist postings.IntersectStats
			bufA, ist = ps.AndBitmapsInto(bufA[:0], cands[0].id, cands[1].id)
			acc = bufA
			cost += ss.s.bitmapAndCost(cands[0].id, cands[1].id, ist, len(acc))
			ss.s.bitmapAnds.Add(1)
			i0 = 2
		case ps != nil && ps.IsBitmap(cands[0].id) && fs != nil && fs.bits != nil:
			// Dense term under a dense filter: seed the accumulator with one
			// word-wise AND of the container against the filter's bitmap —
			// sound for a conjunction (the final post-filter is idempotent),
			// and every later operand intersects a pre-thinned set.
			var ist postings.IntersectStats
			bufA, ist = ps.AndBitsInto(bufA[:0], cands[0].id, fs.bits)
			acc = bufA
			words := float64(ist.WordsScanned)
			cost += ss.s.bitmapTouchCost(cands[0].id, 8*words) +
				m.LocalCopyCost(8*words) + m.FlopCost(words) +
				m.LocalCopyCost(8*float64(len(acc)))
			ss.s.bitmapAnds.Add(1)
		case ps != nil && ps.IsBitmap(cands[0].id):
			// Dense seed: enumerate the bitmap into session scratch instead
			// of decoding a list through the LRU.
			bufA = ps.BitmapDocsInto(bufA[:0], cands[0].id)
			acc = bufA
			cost += ss.s.bitmapSeedCost(ps, cands[0].id, len(acc))
			ss.s.bitmapServes.Add(1)
		default:
			val, c := ss.s.getPostings(v, cands[0].id)
			cost += c
			bufA = append(bufA[:0], val.docs...)
			acc = bufA
		}
		for _, cd := range cands[i0:] {
			if len(acc) == 0 {
				break
			}
			if ps != nil && ps.IsBitmap(cd.id) {
				// Dense operand against any accumulator: per-doc bit probes
				// beat every decoded-list merge and touch neither the varint
				// decoder nor the posting LRU.
				var ist postings.IntersectStats
				bufB, ist = ps.IntersectInto(bufB[:0], acc, cd.id)
				acc = bufB
				cost += ss.s.bitmapProbeCost(cd.id, ist)
				ss.s.bitmapProbes.Add(uint64(ist.BitProbes))
				bufA, bufB = bufB, bufA
				continue
			}
			if val, c, ok := ss.s.cachedPostings(v, cd.id); ok {
				cost += c
				flops += 2 * float64(len(acc)+len(val.docs))
				bufB = query.IntersectSortedInto(bufB[:0], acc, val.docs)
				acc = bufB
				bufA, bufB = bufB, bufA
				continue
			}
			// A sparse candidate set admits few blocks, so intersecting off
			// the compressed store wins; a dense one would decode most blocks
			// anyway, and the full fetch keeps the LRU warm and the transfer
			// coalesced for the next session asking about the same term.
			if ps := v.base.posts; ps != nil && int64(len(acc)) < cd.baseDF/4 {
				res, ist := ps.IntersectInto(bufB[:0], acc, cd.id)
				cost += ss.s.partialCost(cd.id, len(acc), ist)
				ss.s.partialFetches.Add(1)
				ss.s.blocksDecoded.Add(uint64(ist.BlocksDecoded))
				ss.s.blocksSkipped.Add(uint64(ist.BlocksSkipped))
				bufB = res
				acc = res
				bufA, bufB = bufB, bufA
				continue
			}
			val, c := ss.s.getPostings(v, cd.id)
			cost += c
			flops += 2 * float64(len(acc)+len(val.docs))
			bufB = query.IntersectSortedInto(bufB[:0], acc, val.docs)
			acc = bufB
			bufA, bufB = bufB, bufA
		}
	}
	ss.scratchA, ss.scratchB = bufA, bufB

	// Segment intersections: a segment can only contribute documents if its
	// DF summary admits every term.
	parts := ss.scratchParts[:0]
	if len(acc) > 0 {
		parts = append(parts, acc)
	}
	for _, seg := range v.segs {
		admit := true
		for _, cd := range cands {
			if seg.Posts.Count[cd.id] == 0 {
				admit = false
				break
			}
		}
		if !admit {
			continue
		}
		var segAcc []int64
		for i, cd := range cands {
			d, _, c := ss.s.segPostings(seg, cd.id)
			cost += c
			if i == 0 {
				segAcc = d
				continue
			}
			flops += 2 * float64(len(segAcc)+len(d))
			segAcc = query.IntersectSorted(segAcc, d)
			if len(segAcc) == 0 {
				break
			}
		}
		if len(segAcc) > 0 {
			parts = append(parts, segAcc)
		}
	}
	out := filterTombs(mergeDocs(parts), v.tombs)
	if len(parts) > 1 {
		cost += m.LocalCopyCost(8 * float64(len(out)))
	}
	if fs != nil {
		// The filter applies to the final merged conjunction (idempotent over
		// the pre-filtered dense seed): one membership probe per survivor.
		cost += m.FlopCost(float64(len(out)))
		out = fs.filterDocs(out)
	}
	ss.scratchParts = parts
	ss.charge(cost + m.FlopCost(flops))
	if len(out) == 0 {
		return nil
	}
	return out
}

// Or returns the documents containing any of the terms, sorted. Unknown and
// empty terms contribute nothing; every live list must transfer. The union
// is a k-way merge over the already-sorted posting lists (base and segment),
// deduplicating as it streams — no scratch map, no re-sort.
func (ss *Session) Or(ctx context.Context, terms ...string) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	st := ss.s.store
	v := st.viewNow()
	var cost float64
	lists := make([][]int64, 0, len(terms))
	var merged float64
	for _, term := range terms {
		cost += ss.lookupCost(term)
		t, found := st.TermID(term)
		if !found {
			continue
		}
		if v.base.df[t] > 0 {
			val, c := ss.s.getPostings(v, t)
			cost += c
			merged += float64(len(val.docs))
			lists = append(lists, val.docs)
		}
		for _, seg := range v.segs {
			if seg.Posts.Count[t] == 0 {
				continue
			}
			d, _, c := ss.s.segPostings(seg, t)
			cost += c
			merged += float64(len(d))
			lists = append(lists, d)
		}
	}
	out := filterTombs(unionSorted(lists), v.tombs)
	if fs, fc := ss.filterFor(v); fs != nil {
		cost += fc + st.Model.FlopCost(float64(len(out)))
		out = fs.filterDocs(out)
	}
	ss.charge(cost + st.Model.FlopCost(2*merged))
	if out == nil {
		out = []int64{} // query.Engine.Or returns an empty, non-nil union
	}
	return out
}

// unionSorted k-way merges ascending document lists into their deduplicated
// union (the shared mergeSorted selection merge, then an in-place dedup pass
// — distinct query terms share documents, so the merged stream repeats
// them). nil when empty.
func unionSorted(lists [][]int64) []int64 {
	merged := mergeSorted(lists, func(a, b int64) bool { return a < b }, -1)
	if merged == nil {
		return nil
	}
	out := merged[:0]
	for _, d := range merged {
		if n := len(out); n == 0 || out[n-1] != d {
			out = append(out, d)
		}
	}
	return out
}

// Similar returns the k documents most similar to the target document's
// knowledge signature (cosine similarity, the target excluded), consulting
// the top-K result cache. Identical queries return identical results whether
// served cold or cached; the cache key carries the view epoch, so every
// published change (ingest seal, delete, signature swap) invalidates stale
// answers without any sweep.
func (ss *Session) Similar(ctx context.Context, doc int64, k int) ([]query.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: similar: k must be positive")
	}
	v := ss.s.store.viewNow()
	key := simKey{epoch: v.epoch, doc: doc, k: k}
	ss.s.smu.Lock()
	hits, ok := ss.s.sims.get(key)
	ss.s.smu.Unlock()
	m := ss.s.store.Model
	if ok {
		ss.s.simHits.Add(1)
		hits, fc := ss.applyFilterHits(v, hits)
		ss.charge(m.LocalCopyCost(16*float64(len(hits))) + fc)
		return hits, nil
	}
	ss.s.simMisses.Add(1)

	target, found := v.sigVec(doc)
	if !found || target == nil {
		ss.charge(m.LocalCopyCost(8))
		return nil, fmt.Errorf("serve: document %d not found or has a null signature", doc)
	}
	scored, flops, refreshed := ss.s.refreshSimilar(v, target, doc, k)
	if !refreshed {
		scored, flops = ss.s.scanSimilar(v, target, doc, k)
	}
	hits = append([]query.Hit(nil), scored...)

	ss.s.smu.Lock()
	if _, evicted := ss.s.sims.add(key, hits); evicted {
		ss.s.simEvictions.Add(1)
	}
	ss.s.smu.Unlock()
	// The cache stores the unfiltered answer — a later session with a
	// different (or no) filter must see the same hits — so the session's
	// filter applies to a copy, after the add.
	hits, fc := ss.applyFilterHits(v, hits)
	ss.charge(m.FlopCost(flops) + m.LocalCopyCost(16*float64(len(hits))) + fc)
	return hits, nil
}

// refreshSimilar patches a cached top-K forward along the view lineage
// instead of rescanning every signature: walking back from v, a cached
// answer at an ancestor epoch stays a valid candidate set across seal deltas
// (new documents can only displace, never promote) and compactions (identity
// on visible documents), so only the segments appended since the ancestor
// need scoring. A tombstone delta is safe exactly when it did not hit the
// cached hits (removing a non-member cannot change the top K); otherwise —
// or when the chain was cut by a signature swap or rebase — the caller falls
// back to the full scan.
func (s *Server) refreshSimilar(v *view, target []float64, exclude int64, k int) ([]query.Hit, float64, bool) {
	var segs []*segment.Segment
	var tombs []int64
	for a := v; a.parent != nil; a = a.parent {
		switch a.kind {
		case viewSeal:
			segs = append(segs, a.newSegs...)
		case viewTomb:
			tombs = append(tombs, a.tomb)
		case viewCompact:
		default:
			return nil, 0, false
		}
		s.smu.Lock()
		hits, ok := s.sims.get(simKey{epoch: a.parent.epoch, doc: exclude, k: k})
		s.smu.Unlock()
		if !ok {
			continue
		}
		// Tombstones filed along the walked lineage must filter the appended
		// segments too, not just v.tombs: a compaction drops a tombstone from
		// the published set together with the doc's postings, but a lineage
		// segment sealed before the delete still carries the doc's signature.
		dead := make(map[int64]bool, len(tombs))
		for _, d := range tombs {
			dead[d] = true
		}
		for _, h := range hits {
			if dead[h.Doc] {
				return nil, 0, false // a cached hit died: full rescan
			}
		}
		scored := append([]query.Hit(nil), hits...)
		var flops float64
		for _, seg := range segs {
			for i, vec := range seg.SigVecs {
				d := seg.Docs[i]
				if vec == nil || d == exclude || v.tombs[d] || dead[d] {
					continue
				}
				scored = append(scored, query.Hit{Doc: d, Score: query.Cosine(target, vec)})
				flops += float64(3 * seg.SigM)
			}
		}
		sort.Slice(scored, func(a, b int) bool {
			if scored[a].Score != scored[b].Score {
				return scored[a].Score > scored[b].Score
			}
			return scored[a].Doc < scored[b].Doc
		})
		if len(scored) > k {
			scored = scored[:k]
		}
		s.simRefreshes.Add(1)
		return scored, flops, true
	}
	return nil, 0, false
}

// scanSimilar scores the view's signatures — base set and ingested segments,
// tombstones excluded — against a target vector, excluding one document, and
// returns the top k hits (score descending, document ascending on ties) plus
// the flops the scan cost.
func (s *Server) scanSimilar(v *view, target []float64, exclude int64, k int) ([]query.Hit, float64) {
	sigs := v.sigs
	scored := make([]query.Hit, 0, len(sigs.Vecs))
	var flops float64
	for i, vec := range sigs.Vecs {
		d := sigs.Docs[i]
		if vec == nil || d == exclude || v.tombs[d] {
			continue
		}
		scored = append(scored, query.Hit{Doc: d, Score: query.Cosine(target, vec)})
		flops += float64(3 * sigs.M)
	}
	for _, seg := range v.segs {
		for i, vec := range seg.SigVecs {
			d := seg.Docs[i]
			if vec == nil || d == exclude || v.tombs[d] {
				continue
			}
			scored = append(scored, query.Hit{Doc: d, Score: query.Cosine(target, vec)})
			flops += float64(3 * seg.SigM)
		}
	}
	sort.Slice(scored, func(a, b int) bool {
		if scored[a].Score != scored[b].Score {
			return scored[a].Score > scored[b].Score
		}
		return scored[a].Doc < scored[b].Doc
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored, flops
}

// similarTo is the shard-local half of a routed similarity query: it scores
// this server's view against an externally supplied target vector. It
// bypasses the per-server result cache — the router caches the merged
// answer, and the sim counters with it — and charges the session the scan
// plus the reply copy.
func (ss *Session) similarTo(target []float64, exclude int64, k int) []query.Hit {
	m := ss.s.store.Model
	v := ss.s.store.viewNow()
	scored, flops := ss.s.scanSimilar(v, target, exclude, k)
	hits := append([]query.Hit(nil), scored...)
	ss.charge(m.FlopCost(flops) + m.LocalCopyCost(16*float64(len(hits))))
	return hits
}

// ThemeDocs returns the document IDs assigned to a k-means cluster, sorted.
// Documents ingested after the snapshot carry no cluster assignment until an
// offline re-clustering; deleted documents are filtered.
func (ss *Session) ThemeDocs(ctx context.Context, cluster int) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	st := ss.s.store
	v := st.viewNow()
	fs, fc := ss.filterFor(v)
	var out []int64
	for i, c := range v.base.assignClusters {
		if c == int64(cluster) && !v.tombs[v.base.assignDocs[i]] &&
			(fs == nil || fs.contains(v.base.assignDocs[i])) {
			out = append(out, v.base.assignDocs[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(fc + st.Model.FlopCost(float64(len(v.base.assignClusters))))
	return out
}

// Near returns the documents whose ThemeView projection falls within radius
// of (x, y), sorted — the analyst's terrain drill-down. Documents ingested
// on a store with the frozen Planar model are on the plane from the epoch
// their delta seals; deleted ones are filtered.
//
// With tiles enabled (the default) the query descends the tile pyramid:
// quadtree subtrees outside the query box are pruned untouched (counted in
// Stats.TilesPruned) and virtual time is charged for the walk plus the
// candidates actually examined — not, as the naive scan this replaced did,
// for the whole point set on every call. Config.DisableTiles restores the
// full scan, which Fig S5 uses as its baseline.
func (ss *Session) Near(ctx context.Context, x, y, radius float64) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	st := ss.s.store
	v := st.viewNow()
	m := st.Model
	r2 := radius * radius
	fs, fc := ss.filterFor(v)
	var out []int64
	if ss.s.cfg.DisableTiles {
		for _, pts := range [][]project.Point{v.base.points, v.pts} {
			for _, pt := range pts {
				dx, dy := pt.X-x, pt.Y-y
				if dx*dx+dy*dy <= r2 && !v.tombs[pt.Doc] &&
					(fs == nil || fs.contains(pt.Doc)) {
					out = append(out, pt.Doc)
				}
			}
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		ss.charge(fc + m.FlopCost(3*float64(len(v.base.points)+len(v.pts))))
		return out
	}
	// The squared-distance test makes the radius sign-insensitive; the
	// query box must agree. The pyramid's bin windows clamp the box with
	// the member binning arithmetic, so out-of-bounds points (late ingests
	// binned into edge tiles) stay findable.
	rad := math.Abs(radius)
	rect := tiles.Rect{MinX: x - rad, MinY: y - rad, MaxX: x + rad, MaxY: y + rad}
	var cands []tiles.Entry
	var visited, pruned int
	st.withPyramid(v, ss.s.cfg.tileConfig(), func(p *tiles.Pyramid) {
		cands, visited, pruned = p.Search(rect)
	})
	ss.s.tilesPruned.Add(uint64(pruned))
	for _, e := range cands {
		dx, dy := e.X-x, e.Y-y
		if dx*dx+dy*dy <= r2 && !v.tombs[e.Doc] &&
			(fs == nil || fs.contains(e.Doc)) {
			out = append(out, e.Doc)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	ss.charge(fc + m.LocalCopyCost(24*float64(visited+pruned)) +
		m.FlopCost(3*float64(len(cands))) +
		m.LocalCopyCost(8*float64(len(out))))
	return out
}

// Add ingests one document through the live path, charging the session the
// modeled tokenize + projection + append (and, for the add that trips the
// seal threshold, the seal's encode pass). The document becomes visible to
// queries when its delta seals.
func (ss *Session) Add(ctx context.Context, text string) (int64, error) {
	return ss.AddDoc(ctx, text, 0, nil)
}

// AddDoc ingests one document with its metadata — a Unix-seconds timestamp
// (0 = untimestamped) and "key=value" facet labels — through the same live
// path as Add. The metadata becomes filterable the moment the document
// becomes visible.
func (ss *Session) AddDoc(ctx context.Context, text string, ts int64, facets []string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	doc, cost, err := ss.s.store.AddMeta(text, ts, facets)
	ss.charge(cost)
	if err != nil {
		return 0, err
	}
	return doc, nil
}

// Delete tombstones a document; the change is visible to the very next
// interaction on any session.
func (ss *Session) Delete(ctx context.Context, doc int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cost, err := ss.s.store.Delete(doc)
	ss.charge(cost)
	return err
}
