package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"inspire/internal/core"
	"inspire/internal/query"
	"inspire/internal/scan"
	"inspire/internal/simtime"
	"inspire/internal/tiles"
)

// Router serves analyst sessions over a document-partitioned shard set — the
// scatter-gather front-end that lifts the single-store throughput ceiling of
// Fig S1. Each shard runs behind its own Server (its own posting/similarity
// caches and coalescing); the router replicates the vocabulary and the
// global document frequencies, prunes fan-out with the per-shard DF
// summaries (a shard whose DF is zero for a query's terms is never asked),
// and k-way merges the per-shard answers. Queries whose terms are unknown or
// absent from every shard short-circuit at the router without any fan-out.
//
// Virtual-time discipline carries over: a routed interaction is charged the
// router-side lookups, one RPC round trip per participating shard, the
// slowest shard's sub-query (the scatter runs in parallel on the modeled
// shard servers, and on host goroutines), and the gather merge.
//
// Live ingestion routes through the router too: an add is tokenized and
// signature-projected once at the router (the vocabulary and projection are
// replicated), assigned the next global document ID, and shipped to shard
// ID mod S; the router folds the new terms into its replicated DF tables so
// fan-out pruning stays exact for ingested documents. Deletes route to the
// owning shard by the same rule.
type Router struct {
	// sets holds one replica group per logical shard (Config.Replicas
	// servers each; one without replication). Reads pick a live replica
	// per sub-query; writes apply to every live replica in order.
	sets  []*ReplicaSet
	model *simtime.Model
	cfg   Config

	// Replicated router-side tables, guarded by dfMu: the query vocabulary
	// (vocab resolves terms through shard 0's store, so mapped stores
	// binary-search their dictionary section instead of needing a heap
	// map; immutable), the global DF (element-wise sum of the shard DFs
	// plus everything ingested), each shard's base DF summary, and the
	// per-shard live DF overlay maintained as adds route through. Deleted
	// documents stay counted until an offline rebase — pruning only needs
	// "may hold postings", so the overcount is always safe.
	vocab    *Store
	termList []string
	dfMu     sync.RWMutex
	df       []int64
	shardDF  [][]int64
	liveDF   []map[int64]int64

	totalDocs int64
	nextDoc   atomic.Int64
	k         int
	themes    []core.Theme

	// tileBox is the shared tile-grid frame (every shard addresses the
	// same world rectangle); boxes[i] is shard i's data bounding box,
	// grown as adds route through, so spatial queries and tile fan-outs
	// prune shards that cannot contribute. Guarded by boxMu.
	tileBox tiles.Rect
	boxMu   sync.RWMutex
	boxes   []tiles.Rect
	boxOK   []bool

	// The similarity cache lives at the router: a routed top-K answer is a
	// merge across shards, so caching merged results short-circuits the whole
	// fan-out on a hit.
	smu  sync.Mutex
	sims *lru[simKey, []query.Hit]

	queries       atomic.Uint64
	fanOuts       atomic.Uint64
	shardQueries  atomic.Uint64
	shardsPruned  atomic.Uint64
	shortCircuits atomic.Uint64
	simHits       atomic.Uint64
	simMisses     atomic.Uint64
	simEvictions  atomic.Uint64
	hedges        atomic.Uint64
	hedgeWins     atomic.Uint64
	failovers     atomic.Uint64
	catchUps      atomic.Uint64
	catchUpSegs   atomic.Uint64
	catchUpBytes  atomic.Uint64

	nextSession atomic.Int64
}

// NewRouter builds a scatter-gather router over the shard stores of one
// sharded set (Store.Shard or LoadShards). Each shard gets its own Server
// with the given per-shard cache configuration.
//
// Deprecated: use NewService with Options{Shards: shards, Config: cfg}; this
// wrapper remains for existing callers.
func NewRouter(shards []*Store, cfg Config) (*Router, error) { return newRouter(shards, cfg) }

func newRouter(shards []*Store, cfg Config) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("serve: router needs at least one shard")
	}
	cfg = cfg.withDefaults()
	first := shards[0]
	r := &Router{
		sets:     make([]*ReplicaSet, len(shards)),
		model:    first.Model,
		cfg:      cfg,
		vocab:    first,
		termList: first.TermList,
		df:       make([]int64, first.VocabSize),
		shardDF:  make([][]int64, len(shards)),
		liveDF:   make([]map[int64]int64, len(shards)),
		k:        first.K,
		themes:   first.Themes,
		sims:     newLRU[simKey, []query.Hit](cfg.SimCacheEntries),
	}
	// Unify the tile-grid frame before any server is built: tile (z, x, y)
	// must address the same world rectangle on every shard, or the gather
	// merges would sum unrelated rectangles. Shards split from one
	// snapshot already share the frozen box; legacy sets (per-shard
	// derived boxes) get the union, which is exactly the box the
	// unsharded snapshot would derive.
	var box *tiles.Rect
	same := true
	for _, st := range shards {
		switch {
		case st.TileBox == nil:
			same = false
		case box == nil:
			box = st.TileBox
		case *box != *st.TileBox:
			same = false
		}
	}
	if !same || box == nil {
		minX, minY := math.Inf(1), math.Inf(1)
		maxX, maxY := math.Inf(-1), math.Inf(-1)
		have := false
		for _, st := range shards {
			if st.TileBox == nil {
				continue
			}
			minX, maxX = math.Min(minX, st.TileBox.MinX), math.Max(maxX, st.TileBox.MaxX)
			minY, maxY = math.Min(minY, st.TileBox.MinY), math.Max(maxY, st.TileBox.MaxY)
			have = true
		}
		u := tiles.NewBounds(0, 0, 1, 1)
		if have {
			u = tiles.NewBounds(minX, minY, maxX, maxY)
		}
		box = &u
		for _, st := range shards {
			st.TileBox = box
		}
	}
	r.tileBox = *box
	r.boxes = make([]tiles.Rect, len(shards))
	r.boxOK = make([]bool, len(shards))

	nextDoc := int64(0)
	for i, st := range shards {
		if st.VocabSize != first.VocabSize {
			return nil, fmt.Errorf("serve: shard %d vocabulary %d differs from shard 0's %d", i, st.VocabSize, first.VocabSize)
		}
		r.boxes[i], r.boxOK[i] = st.DataBounds()
		srv, err := newServer(st, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		set, err := newReplicaSet(srv, cfg.Replicas, cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		r.sets[i] = set
		r.shardDF[i] = st.DF
		r.liveDF[i] = make(map[int64]int64)
		for t, d := range st.DF {
			r.df[t] += d
		}
		r.totalDocs += st.TotalDocs
		// A shard loaded with live segments (a persisted live set) feeds its
		// segment DF summaries into the router tables, exactly as if the
		// adds had routed through this router.
		v := st.viewNow()
		for _, seg := range v.segs {
			for t, c := range seg.Posts.Count {
				if c > 0 {
					r.liveDF[i][int64(t)] += c
					r.df[t] += c
				}
			}
		}
		// Document IDs are global: the next ID is the highest mark any shard
		// records (base bound, segment maxes, or a persisted high-water mark
		// covering IDs whose data was deleted and compacted away). Counting
		// surviving docs instead would re-assign retired IDs.
		if next := st.NextDocID(); next > nextDoc {
			nextDoc = next
		}
	}
	r.nextDoc.Store(nextDoc)
	return r, nil
}

// termID resolves a query term against the replicated vocabulary, folded
// exactly like the tokenizer (and Store.TermID).
func (r *Router) termID(term string) (int64, bool) {
	return r.vocab.lookupTerm(scan.NormalizeTerm(term))
}

// NumShards returns the partition count.
func (r *Router) NumShards() int { return len(r.sets) }

// Shard returns shard i's replica-0 server, for inspection.
func (r *Router) Shard(i int) *Server { return r.sets[i].reps[0].Server() }

// primaryStore returns shard i's current primary store (the first live
// replica's — the write-order source).
func (r *Router) primaryStore(i int) *Store { return r.sets[i].primary().store() }

// NewQuerier opens a routed session behind the Service surface.
func (r *Router) NewQuerier() Querier { return r.NewSession() }

// NewSession opens a routed analyst session: one sub-session per shard
// replica plus the router-side virtual-latency account. Like Session, a
// RouterSession's methods must be called from one goroutine at a time;
// distinct sessions are fully concurrent (hedged sub-queries inside one
// interaction serialize per replica on the sub's own lock).
func (r *Router) NewSession() *RouterSession {
	subs := make([][]*replicaSub, len(r.sets))
	for i, set := range r.sets {
		subs[i] = make([]*replicaSub, len(set.reps))
		for j, rep := range set.reps {
			srv := rep.Server()
			subs[i][j] = &replicaSub{rep: rep, srv: srv, sess: srv.NewSession()}
		}
	}
	return &RouterSession{r: r, ID: r.nextSession.Add(1), subs: subs}
}

// Stats aggregates the shard primaries' cache/traffic/ingest counters and
// adds the router's fan-out and replication blocks. Queries counts routed
// interactions; the shard sub-queries they scattered into are ShardQueries.
// Only the current primary of each set is counted — replicas share the write
// stream, so summing them would multiply the ingest counters.
func (r *Router) Stats() Stats {
	var out Stats
	for _, set := range r.sets {
		st := set.primary().Server().Stats()
		out.PostingHits += st.PostingHits
		out.PostingMisses += st.PostingMisses
		out.PostingEvictions += st.PostingEvictions
		out.Coalesced += st.Coalesced
		out.RemoteGets += st.RemoteGets
		out.PartialFetches += st.PartialFetches
		out.BlocksDecoded += st.BlocksDecoded
		out.BlocksSkipped += st.BlocksSkipped
		out.SegmentFetches += st.SegmentFetches
		out.BitmapAnds += st.BitmapAnds
		out.BitmapProbes += st.BitmapProbes
		out.BitmapServes += st.BitmapServes
		out.SimRefreshes += st.SimRefreshes
		out.TileHits += st.TileHits
		out.TileMisses += st.TileMisses
		out.TilesPruned += st.TilesPruned
		out.CompactVirtMS += st.CompactVirtMS
		out.TileMaintVirtMS += st.TileMaintVirtMS
		out.Adds += st.Adds
		out.Deletes += st.Deletes
		out.Seals += st.Seals
		out.Compactions += st.Compactions
		out.ResidentPinnedBytes += st.ResidentPinnedBytes
		out.ResidentMappedBytes += st.ResidentMappedBytes
		out.PinDenials += st.PinDenials
	}
	out.Queries = r.queries.Load()
	out.FanOuts = r.fanOuts.Load()
	out.ShardQueries = r.shardQueries.Load()
	out.ShardsPruned = r.shardsPruned.Load()
	out.ShortCircuits = r.shortCircuits.Load()
	out.SimHits = r.simHits.Load()
	out.SimMisses = r.simMisses.Load()
	out.SimEvictions = r.simEvictions.Load()
	out.Hedges = r.hedges.Load()
	out.HedgeWins = r.hedgeWins.Load()
	out.Failovers = r.failovers.Load()
	out.ReplicaCatchUps = r.catchUps.Load()
	out.CatchUpSegments = r.catchUpSegs.Load()
	out.CatchUpBytes = r.catchUpBytes.Load()
	return out
}

// TopTerms ranks the global (shard-summed plus ingested) document
// frequencies.
func (r *Router) TopTerms(ctx context.Context, n int) []string {
	if ctx.Err() != nil {
		return nil
	}
	r.dfMu.RLock()
	df := append([]int64(nil), r.df...)
	r.dfMu.RUnlock()
	return topTerms(df, r.termList, n)
}

// globalDF reads one term's replicated global DF.
func (r *Router) globalDF(t int64) int64 {
	r.dfMu.RLock()
	defer r.dfMu.RUnlock()
	return r.df[t]
}

// SampleDocs merges the shards' deterministic similarity targets in
// ascending document order.
func (r *Router) SampleDocs(ctx context.Context, n int) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	parts := make([][]int64, len(r.sets))
	for i, set := range r.sets {
		parts[i] = set.primary().Server().SampleDocs(ctx, n)
	}
	out := mergeDocs(parts)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// TotalDocs returns the document count across all shards.
func (r *Router) TotalDocs() int64 { return r.totalDocs }

// NumThemes returns the k-means cluster count of the producing run.
func (r *Router) NumThemes() int { return r.k }

// Themes returns the discovered themes (replicated to every shard).
func (r *Router) Themes() []core.Theme { return r.themes }

// --- RouterSession --------------------------------------------------------

// RouterSession is one analyst's connection through the router: a sequential
// stream of interactions whose account charges the scatter-gather cost model.
// It holds one sub-session per shard replica so shard-side work is accounted
// (and cached, coalesced) exactly like directly-served sessions.
type RouterSession struct {
	r    *Router
	ID   int64
	subs [][]*replicaSub // [shard][replica]
	acct account

	// filter is the session's sticky metadata predicate (SetFilter). The
	// shards partition the document space, so per-shard filtering commutes
	// with the disjoint gather merges; scatter closures push the filter onto
	// each sub-session before issuing the sub-query.
	filter Filter

	// Scatter scratch reused across interactions. A routed session is a
	// sequential stream (one goroutine at a time), and every gather merge
	// copies into a fresh output slice — so nothing scratch-backed escapes
	// an interaction.
	scratchShards []int
	scratchIDs    []int64
	scratchCosts  []float64
	scratchBytes  []float64
}

// replicaSub is one session's connection to one replica. Its lock serializes
// the replica's sub-session (a Session is one-goroutine-at-a-time, but a
// hedge can race a sibling attempt on the same interaction, and a hedge
// loser can outlive its interaction); the srv field detects a full-resync
// server swap, reopening the session on the fresh server.
type replicaSub struct {
	rep  *Replica
	mu   sync.Mutex
	srv  *Server
	sess *Session
}

// session returns the sub's current session; callers hold sub.mu.
func (sub *replicaSub) session() *Session {
	if srv := sub.rep.Server(); srv != sub.srv {
		sub.srv, sub.sess = srv, srv.NewSession()
	}
	return sub.sess
}

// Stats snapshots the routed session's account.
func (rs *RouterSession) Stats() SessionStats { return rs.acct.snapshot() }

// SetFilter installs (or, with the zero Filter, clears) the session's sticky
// metadata predicate. Later query interactions return only matching
// documents, with exactly the answers the unfiltered query would return
// minus the non-matching documents — identical to a filtered single-store
// session over the unsharded corpus.
func (rs *RouterSession) SetFilter(f Filter) error {
	nf, err := f.normalized()
	if err != nil {
		return err
	}
	rs.filter = nf
	return nil
}

// applyFilterHits post-filters a merged top-K hit list against the session
// filter at the router, resolving each hit's metadata from its owning
// shard's primary — the per-shard scans stay unfiltered so the merged cache
// entry serves every session, filtered or not. Returns the kept hits (a
// fresh slice; the input is never mutated) and the modeled probe cost.
func (rs *RouterSession) applyFilterHits(hits []query.Hit) ([]query.Hit, float64) {
	if rs.filter.Empty() {
		return hits, 0
	}
	r := rs.r
	kept := make([]query.Hit, 0, len(hits))
	for _, h := range hits {
		st := r.primaryStore(ShardOf(h.Doc, len(r.sets)))
		ts, facets := st.viewNow().docMeta(h.Doc)
		if rs.filter.timeOK(ts) && facetSubset(rs.filter.Facets, facets) {
			kept = append(kept, h)
		}
	}
	return kept, r.model.FlopCost(float64(len(hits))) +
		r.model.RPCRoundTrip(8*float64(len(hits)), 16*float64(len(hits)))
}

func (rs *RouterSession) charge(cost float64) {
	rs.acct.add(cost)
	rs.r.queries.Add(1)
}

// lookupCost models the router-side vocabulary probe (the dense map is
// replicated to the router, like to the single-store front-end).
func (rs *RouterSession) lookupCost(term string) float64 {
	return rs.r.model.LocalCopyCost(float64(len(term) + 8))
}

// mergeCost models the gather-side k-way merge: a streaming pass that moves
// every merged item through router memory once. The per-item comparisons ride
// inside the stream (the shard count is small and the lists are disjoint), so
// the merge is memory-rate like the decode and hit paths it sits between —
// charging it at the flop rate would make gathering a list cost several times
// more than decoding it.
func (r *Router) mergeCost(items, width float64) float64 {
	return r.model.LocalCopyCost(width * items)
}

// attemptOut is one replica attempt's outcome inside a scatter.
type attemptOut[T any] struct {
	val   T
	bytes float64
	cost  float64
	ok    bool
	hedge bool
}

// scatterQ fans one sub-interaction out to the listed shards and gathers the
// typed replies (in ids order) plus the modeled cost of the round: one RPC
// round trip per participating shard (the router issues requests and
// collects replies serially) plus the slowest shard's sub-query — the shard
// servers work in parallel, on host goroutines too. Each shard's sub-query
// runs on a live replica picked by power-of-two-choices over in-flight
// depth, hedges to a second replica past the set's hedge delay, and fails
// over when a replica dies mid-flight. fn must issue exactly one interaction
// on the sub-session it is handed and return the reply payload bytes.
//
// A free function, not a method: Go methods cannot take type parameters, and
// the per-shard winner-takes-result channel is what lets hedged attempts
// race without two goroutines ever writing one results slot.
// growFloats resizes a session scratch slice to n, reallocating only when the
// fan-out widens past every earlier round.
func growFloats(scratch *[]float64, n int) []float64 {
	if cap(*scratch) < n {
		*scratch = make([]float64, n)
	}
	s := (*scratch)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func scatterQ[T any](ctx context.Context, rs *RouterSession, ids []int, reqBytes float64,
	fn func(ctx context.Context, shard int, sub *Session) (T, float64)) ([]T, float64) {
	r := rs.r
	r.fanOuts.Add(1)
	r.shardQueries.Add(uint64(len(ids)))
	r.shardsPruned.Add(uint64(len(r.sets) - len(ids)))
	results := make([]T, len(ids))
	costs := growFloats(&rs.scratchCosts, len(ids))
	bytes := growFloats(&rs.scratchBytes, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			out := replicaRead(ctx, rs, id, fn)
			results[i], bytes[i], costs[i] = out.val, out.bytes, out.cost
		}(i, id)
	}
	wg.Wait()
	var rpc, slowest float64
	for i := range ids {
		rpc += r.model.RPCRoundTrip(reqBytes, bytes[i])
		if costs[i] > slowest {
			slowest = costs[i]
		}
	}
	return results, rpc + slowest
}

// replicaRead runs one shard sub-query against the shard's replica set:
// first attempt on the P2C-picked live replica, a hedged second attempt past
// the hedge delay, failover to untried live replicas when an attempt comes
// back failed, and — when every replica is dead — a forced read of replica 0
// (a stale answer beats none; the primary-ordered write path guarantees a
// live replica is never stale). The winner's reply is the answer; losers
// finish on their own sub locks and are discarded.
func replicaRead[T any](ctx context.Context, rs *RouterSession, shard int,
	fn func(ctx context.Context, shard int, sub *Session) (T, float64)) attemptOut[T] {
	subs := rs.subs[shard]
	set := rs.r.sets[shard]

	attempt := func(sub *replicaSub, force bool) (out attemptOut[T]) {
		rep := sub.rep
		rep.inflight.Add(1)
		defer rep.inflight.Add(-1)
		sub.mu.Lock()
		defer sub.mu.Unlock()
		if !force && !rep.live() {
			return out
		}
		if d := rep.stallNS.Load(); d > 0 {
			t := time.NewTimer(time.Duration(d))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return out
			}
		}
		sess := sub.session()
		out.val, out.bytes = fn(ctx, shard, sess)
		out.cost = sess.acct.last()
		// A kill that landed while the attempt ran means the reply may be
		// from a half-dead replica: discard and let the caller fail over.
		out.ok = force || (rep.live() && ctx.Err() == nil)
		return out
	}

	if len(subs) == 1 {
		// Unreplicated: the pre-replication fast path, no channel or timer.
		return attempt(subs[0], true)
	}

	ch := make(chan attemptOut[T], len(subs))
	tried := make([]bool, len(subs))
	pending := 0
	launch := func(i int, hedge bool) bool {
		if i < 0 {
			return false
		}
		tried[i] = true
		pending++
		go func() {
			out := attempt(subs[i], false)
			out.hedge = hedge
			ch <- out
		}()
		return true
	}
	launch(set.pick(tried), false)
	var hedgeC <-chan time.Time
	if set.hedge > 0 {
		t := time.NewTimer(set.hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	for pending > 0 {
		select {
		case out := <-ch:
			pending--
			if out.ok {
				if out.hedge {
					rs.r.hedgeWins.Add(1)
				}
				return out
			}
			if launch(set.pick(tried), false) {
				rs.r.failovers.Add(1)
			}
		case <-hedgeC:
			hedgeC = nil
			if launch(set.pick(tried), true) {
				rs.r.hedges.Add(1)
			}
		case <-ctx.Done():
			return attemptOut[T]{}
		}
	}
	return attempt(subs[0], true)
}

// liveShards returns the shards whose DF summary — base or live overlay —
// admits the term, written over dst[:0].
func (r *Router) liveShards(dst []int, t int64) []int {
	r.dfMu.RLock()
	defer r.dfMu.RUnlock()
	out := dst[:0]
	for i := range r.sets {
		if r.shardDF[i][t] > 0 || r.liveDF[i][t] > 0 {
			out = append(out, i)
		}
	}
	return out
}

// andShards returns the shards whose DF summaries admit every term — a
// document can only satisfy a conjunction on a shard holding postings for
// all of them. Written over dst[:0].
func (r *Router) andShards(dst []int, ids []int64) []int {
	r.dfMu.RLock()
	defer r.dfMu.RUnlock()
	out := dst[:0]
	for i := range r.sets {
		all := true
		for _, t := range ids {
			if r.shardDF[i][t] == 0 && r.liveDF[i][t] == 0 {
				all = false
				break
			}
		}
		if all {
			out = append(out, i)
		}
	}
	return out
}

// orShards returns the shards where at least one term may have postings,
// written over dst[:0].
func (r *Router) orShards(dst []int, ids []int64) []int {
	r.dfMu.RLock()
	defer r.dfMu.RUnlock()
	out := dst[:0]
	for i := range r.sets {
		for _, t := range ids {
			if r.shardDF[i][t] > 0 || r.liveDF[i][t] > 0 {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// epochSum sums the shard primaries' serving epochs; it strictly grows on
// every published change anywhere in the set, so it versions the router's
// merged similarity cache. Primaries, not replica 0: a dead replica's epoch
// is frozen, and a frozen summand would let the cache serve stale merges
// after writes land on the survivors.
func (r *Router) epochSum() uint64 {
	var sum uint64
	for _, set := range r.sets {
		sum += set.primary().store().viewNow().epoch
	}
	return sum
}

// allShards lists every shard, for interactions partitioning cannot prune.
// Written over dst[:0].
func (r *Router) allShards(dst []int) []int {
	out := dst[:0]
	for i := range r.sets {
		out = append(out, i)
	}
	return out
}

// reqBytes models a scatter request payload carrying the query terms.
func reqBytes(terms []string) float64 {
	b := 8.0
	for _, t := range terms {
		b += float64(len(t) + 8)
	}
	return b
}

// TermDocs returns the posting list of a term across all shards (sorted by
// document ID), or nil when the term is unknown — answered at the router
// with no fan-out, like any term absent from every shard's DF summary.
func (rs *RouterSession) TermDocs(ctx context.Context, term string) []query.Posting {
	if ctx.Err() != nil {
		return nil
	}
	r := rs.r
	cost := rs.lookupCost(term)
	t, ok := r.termID(term)
	if ok {
		cost += r.model.LocalCopyCost(8)
	}
	if !ok || r.globalDF(t) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(cost)
		return nil
	}
	live := r.liveShards(rs.scratchShards[:0], t)
	rs.scratchShards = live
	parts, scCost := scatterQ(ctx, rs, live, reqBytes([]string{term}),
		func(ctx context.Context, shard int, sub *Session) ([]query.Posting, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.TermDocs(ctx, term)
			return out, 16 * float64(len(out))
		})
	cost += scCost
	out := mergePostings(parts)
	cost += r.mergeCost(float64(len(out)), 16)
	rs.charge(cost)
	return out
}

// DF returns a term's global document frequency (0 when absent) — a
// router-local read of the replicated shard-summed DF vector (live ingests
// included), never a fan-out. Like the single-store DF, deleted documents
// stay counted until their postings are actually dropped.
func (rs *RouterSession) DF(ctx context.Context, term string) int64 {
	if ctx.Err() != nil {
		return 0
	}
	r := rs.r
	cost := rs.lookupCost(term)
	t, ok := r.termID(term)
	if !ok {
		rs.charge(cost)
		return 0
	}
	rs.charge(cost + r.model.LocalCopyCost(8))
	return r.globalDF(t)
}

// And returns the documents containing every term, sorted by document ID.
// The router resolves every term against its replicated vocabulary and DF
// first — an unknown or globally-empty term dooms the conjunction with no
// fan-out at all — then scatters only to shards whose DF summary is non-zero
// for every term: a document can only satisfy the conjunction on a shard
// holding postings for all of them. Each shard runs its own rarest-first
// block-skipping intersection.
func (rs *RouterSession) And(ctx context.Context, terms ...string) []int64 {
	if ctx.Err() != nil || len(terms) == 0 {
		return nil
	}
	r := rs.r
	var cost float64
	ids := rs.scratchIDs[:0]
	for _, term := range terms {
		cost += rs.lookupCost(term)
		t, ok := r.termID(term)
		if ok {
			cost += r.model.LocalCopyCost(8)
		}
		if !ok || r.globalDF(t) == 0 {
			r.shortCircuits.Add(1)
			rs.scratchIDs = ids[:0]
			rs.charge(cost)
			return nil
		}
		ids = append(ids, t)
	}
	rs.scratchIDs = ids
	// Per-shard pruning costs one summary probe per (term, shard).
	cost += r.model.LocalCopyCost(8 * float64(len(ids)*len(r.sets)))
	live := r.andShards(rs.scratchShards[:0], ids)
	rs.scratchShards = live
	if len(live) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(cost)
		return nil
	}
	parts, scCost := scatterQ(ctx, rs, live, reqBytes(terms),
		func(ctx context.Context, shard int, sub *Session) ([]int64, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.And(ctx, terms...)
			return out, 8 * float64(len(out))
		})
	cost += scCost
	out := mergeDocs(parts)
	cost += r.mergeCost(float64(len(out)), 8)
	rs.charge(cost)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Or returns the documents containing any of the terms, sorted. Shards where
// no query term has postings are pruned; if that is every shard, the router
// answers empty with no fan-out.
func (rs *RouterSession) Or(ctx context.Context, terms ...string) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	r := rs.r
	var cost float64
	ids := rs.scratchIDs[:0]
	for _, term := range terms {
		cost += rs.lookupCost(term)
		t, ok := r.termID(term)
		if !ok {
			continue
		}
		cost += r.model.LocalCopyCost(8)
		if r.globalDF(t) > 0 {
			ids = append(ids, t)
		}
	}
	rs.scratchIDs = ids
	cost += r.model.LocalCopyCost(8 * float64(len(ids)*len(r.sets)))
	live := r.orShards(rs.scratchShards[:0], ids)
	rs.scratchShards = live
	if len(live) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(cost)
		return []int64{} // query.Engine.Or returns an empty, non-nil union
	}
	parts, scCost := scatterQ(ctx, rs, live, reqBytes(terms),
		func(ctx context.Context, shard int, sub *Session) ([]int64, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.Or(ctx, terms...)
			return out, 8 * float64(len(out))
		})
	cost += scCost
	out := mergeDocs(parts)
	cost += r.mergeCost(float64(len(out)), 8)
	rs.charge(cost)
	if out == nil {
		out = []int64{}
	}
	return out
}

// Similar returns the k documents most similar to the target document's
// knowledge signature across all shards, consulting the router's merged
// result cache. On a miss the target vector is fetched from its owning shard
// (modulo routing locates it without a lookup round), every shard scores its
// own signature slice against it in parallel, and the per-shard top-K lists
// k-way merge into the global top-K — identical to the single-store answer.
func (rs *RouterSession) Similar(ctx context.Context, doc int64, k int) ([]query.Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: similar: k must be positive")
	}
	r := rs.r
	m := r.model
	// The merged-answer cache versions itself on the sum of the shard
	// epochs: any seal, delete or signature swap anywhere in the set moves
	// the sum, so stale merges age out like single-store entries.
	key := simKey{epoch: r.epochSum(), doc: doc, k: k}
	r.smu.Lock()
	hits, ok := r.sims.get(key)
	r.smu.Unlock()
	if ok {
		r.simHits.Add(1)
		hits, fc := rs.applyFilterHits(hits)
		rs.charge(m.LocalCopyCost(16*float64(len(hits))) + fc)
		return hits, nil
	}
	r.simMisses.Add(1)

	owner := 0
	if doc >= 0 {
		owner = ShardOf(doc, len(r.sets))
	}
	// The target signature comes from the owner's primary — a dead replica's
	// frozen slice could miss a signature swap the survivors published.
	target, found := r.sets[owner].primary().Server().signature(doc)
	cost := m.RPCRoundTrip(8, 8*float64(len(target)))
	if !found || target == nil {
		rs.charge(cost)
		return nil, fmt.Errorf("serve: document %d not found or has a null signature", doc)
	}
	all := r.allShards(rs.scratchShards[:0])
	rs.scratchShards = all
	parts, scCost := scatterQ(ctx, rs, all, 8*float64(len(target))+16,
		func(ctx context.Context, shard int, sub *Session) ([]query.Hit, float64) {
			// The shard scans stay unfiltered (the merged answer is cached for
			// every session); clear any filter an earlier routed query pushed.
			_ = sub.SetFilter(Filter{})
			out := sub.similarTo(target, doc, k)
			return out, 16 * float64(len(out))
		})
	cost += scCost
	hits = mergeHits(parts, k)
	cost += r.mergeCost(float64(len(hits)), 16)

	// The shards resolved their views after the key's sum was read, so under
	// concurrent ingest the merged answer can reflect newer epochs than the
	// key claims. Cache only when the sum is unchanged — every published
	// change strictly grows it, so equality means no shard moved.
	if r.epochSum() == key.epoch {
		r.smu.Lock()
		if _, evicted := r.sims.add(key, hits); evicted {
			r.simEvictions.Add(1)
		}
		r.smu.Unlock()
	}
	// The cache holds the unfiltered merge; the session's filter applies to
	// a copy after the add, exactly like the single-store session.
	hits, fc := rs.applyFilterHits(hits)
	rs.charge(cost + fc)
	return hits, nil
}

// ThemeDocs returns the document IDs assigned to a k-means cluster, sorted —
// every shard holds its own documents' assignments, so the drill-down fans
// out everywhere and merges.
func (rs *RouterSession) ThemeDocs(ctx context.Context, cluster int) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	r := rs.r
	all := r.allShards(rs.scratchShards[:0])
	rs.scratchShards = all
	parts, cost := scatterQ(ctx, rs, all, 16,
		func(ctx context.Context, shard int, sub *Session) ([]int64, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.ThemeDocs(ctx, cluster)
			return out, 8 * float64(len(out))
		})
	out := mergeDocs(parts)
	cost += r.mergeCost(float64(len(out)), 8)
	rs.charge(cost)
	return out
}

// Add ingests one document through the router: tokenized and
// signature-projected once at the router against the replicated vocabulary
// and projection, assigned the next global document ID, and routed to shard
// ID mod S. The interaction is charged the router-side prepare, the RPC
// round trip, and the shard's append (the shard sub-session accounts it
// too, like any other sub-query). The router folds the document's terms into
// its replicated DF tables so later pruning sees them.
func (rs *RouterSession) Add(ctx context.Context, text string) (int64, error) {
	return rs.AddDoc(ctx, text, 0, nil)
}

// AddDoc ingests one document with its metadata (Unix-seconds timestamp,
// "key=value" facets) through the routed write path; the metadata lands on
// the owning shard alongside the postings.
func (rs *RouterSession) AddDoc(ctx context.Context, text string, ts int64, facets []string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	nf, err := normalizeFacets(facets)
	if err != nil {
		return 0, err
	}
	r := rs.r
	st := r.vocab
	counts, sig, prep := st.prepareDoc(text)
	doc := r.nextDoc.Add(1) - 1
	shard := ShardOf(doc, len(r.sets))
	// Fold the document's terms into the replicated DF tables before the
	// shard append: AddCounts may seal and publish the batch, and a query
	// pruned by a still-zero summary in that window would miss documents
	// already visible on the shard. Folding first only ever over-admits a
	// fan-out, which is safe (deletes leave the tables overcounted too).
	r.dfMu.Lock()
	for t := range counts {
		r.liveDF[shard][t]++
		r.df[t]++
	}
	r.dfMu.Unlock()
	// Grow the shard's data bounding box to cover where the document will
	// land on the plane (its seal places it there), so spatial pruning
	// stays conservative for ingested documents. Growing before the append
	// only ever over-admits a fan-out, which is safe.
	if pl := st.Planar; pl != nil {
		px, py := pl.Project(sig)
		r.expandBox(shard, px, py)
	}
	appendCost, err := r.sets[shard].apply(func(s *Store) (float64, error) {
		return s.AddCountsMeta(doc, counts, sig, ts, nf)
	})
	rs.chargeShard(shard, appendCost)
	cost := prep + r.model.RPCRoundTrip(float64(len(text))+8, 8) + appendCost
	rs.charge(cost)
	if err != nil {
		r.dfMu.Lock()
		for t := range counts {
			r.liveDF[shard][t]--
			r.df[t]--
		}
		r.dfMu.Unlock()
		return 0, err
	}
	return doc, nil
}

// chargeShard books a routed write's shard-side cost on the primary
// replica's sub-session, so shard accounts see routed ingest exactly like
// directly-served sessions do.
func (rs *RouterSession) chargeShard(shard int, cost float64) {
	p := rs.r.sets[shard].primary()
	sub := rs.subs[shard][0]
	for _, s := range rs.subs[shard] {
		if s.rep == p {
			sub = s
			break
		}
	}
	sub.mu.Lock()
	sub.session().charge(cost)
	sub.mu.Unlock()
}

// Delete tombstones a document on its owning shard (ID mod S). The
// replicated DF tables are left alone — deleted documents stay counted until
// an offline rebase, which only ever over-admits a shard to a fan-out.
func (rs *RouterSession) Delete(ctx context.Context, doc int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r := rs.r
	if doc < 0 {
		return fmt.Errorf("serve: delete: unknown document %d", doc)
	}
	shard := ShardOf(doc, len(r.sets))
	cost, err := r.sets[shard].apply(func(s *Store) (float64, error) {
		return s.Delete(doc)
	})
	rs.chargeShard(shard, cost)
	rs.charge(r.model.RPCRoundTrip(16, 8) + cost)
	return err
}

// FlushLive makes pending adds visible on every shard, sealing every live
// replica's delta through the set's ordered write path.
func (r *Router) FlushLive(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, set := range r.sets {
		if _, err := set.apply(func(s *Store) (float64, error) { return s.Flush() }); err != nil {
			return fmt.Errorf("serve: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// CompactLive merges sealed segments on every shard (every live replica —
// compaction is answer-invariant, so replicas may also compact on their own
// schedules).
func (r *Router) CompactLive(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, set := range r.sets {
		if _, err := set.apply(func(s *Store) (float64, error) { return s.Compact() }); err != nil {
			return fmt.Errorf("serve: compact shard %d: %w", i, err)
		}
	}
	return nil
}

// SaveLive persists the whole live set: pending adds flushed, compaction
// drained, then every shard primary's base store, sealed segments and
// tombstones written behind an extended (INSPSHARDS2) manifest at path.
func (r *Router) SaveLive(ctx context.Context, path string) error {
	if err := r.FlushLive(ctx); err != nil {
		return err
	}
	stores := make([]*Store, len(r.sets))
	for i := range r.sets {
		st := r.primaryStore(i)
		st.WaitCompaction()
		stores[i] = st
	}
	return SaveLiveSet(path, stores)
}

// Near returns the documents whose ThemeView projection falls within radius
// of (x, y), sorted, gathered from the shards whose data bounding box
// intersects the query box — a shard none of whose points can fall inside
// it is never asked.
func (rs *RouterSession) Near(ctx context.Context, x, y, radius float64) []int64 {
	if ctx.Err() != nil {
		return nil
	}
	r := rs.r
	rad := math.Abs(radius)
	live := r.tileShards(r.cfg.tileConfig().MaxZoom,
		tiles.Rect{MinX: x - rad, MinY: y - rad, MaxX: x + rad, MaxY: y + rad})
	if len(live) == 0 {
		r.shortCircuits.Add(1)
		rs.charge(r.model.LocalCopyCost(24))
		return nil
	}
	parts, cost := scatterQ(ctx, rs, live, 24,
		func(ctx context.Context, shard int, sub *Session) ([]int64, float64) {
			_ = sub.SetFilter(rs.filter)
			out := sub.Near(ctx, x, y, radius)
			return out, 8 * float64(len(out))
		})
	out := mergeDocs(parts)
	cost += r.mergeCost(float64(len(out)), 8)
	rs.charge(cost)
	return out
}

// --- gather merges --------------------------------------------------------

// mergeSorted k-way merges per-shard lists that are each sorted under less,
// emitting at most limit items (limit < 0 = all). A linear selection scan
// per item is right for the handful of shards a router fronts. nil when
// nothing merges.
func mergeSorted[T any](parts [][]T, less func(a, b T) bool, limit int) []T {
	var total int
	for _, p := range parts {
		total += len(p)
	}
	if limit >= 0 && total > limit {
		total = limit
	}
	if total == 0 {
		return nil
	}
	out := make([]T, 0, total)
	// The cursor vector lives on the stack for any realistic shard count, so
	// a gather merge costs exactly one allocation: the output it returns.
	var posBuf [16]int
	pos := posBuf[:]
	if len(parts) > len(posBuf) {
		pos = make([]int, len(parts))
	}
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if pos[i] >= len(p) {
				continue
			}
			if best < 0 || less(p[pos[i]], parts[best][pos[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][pos[best]])
		pos[best]++
	}
	return out
}

// mergeDocs k-way merges ascending, pairwise-disjoint document lists (the
// shards partition the document space, so no ID appears twice).
func mergeDocs(parts [][]int64) []int64 {
	return mergeSorted(parts, func(a, b int64) bool { return a < b }, -1)
}

// mergePostings k-way merges doc-sorted, disjoint posting lists.
func mergePostings(parts [][]query.Posting) []query.Posting {
	return mergeSorted(parts, func(a, b query.Posting) bool { return a.Doc < b.Doc }, -1)
}

// mergeHits k-way merges per-shard top-K hit lists (score descending, doc
// ascending on ties — the order every shard emits) and keeps the global
// top k.
func mergeHits(parts [][]query.Hit, k int) []query.Hit {
	return mergeSorted(parts, hitLess, k)
}

// hitLess orders hits score-descending, document-ascending on ties.
func hitLess(a, b query.Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}
