package serve

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"inspire/internal/cluster"
	"inspire/internal/core"
	"inspire/internal/corpus"
	"inspire/internal/query"
	"inspire/internal/simtime"
)

// propDocs mixes ASCII and non-ASCII vocabulary with overlapping themes so
// random conjunctions and disjunctions hit every interesting case: shared
// docs, disjoint lists, repeated terms, unicode folds.
var propDocs = []string{
	"apple apple banana banana cherry naïve",
	"apple banana banana café café",
	"apple apple cherry cherry naïve naïve",
	"durian durian elder elder fig fig café",
	"durian elder elder fig straße straße",
	"grape grape honeydew honeydew kiwi kiwi",
	"naïve café straße résumé résumé",
	"banana fig kiwi résumé naïve",
}

// propTerms is the query pool the checker draws from: indexed terms in odd
// spellings, plus misses.
var propTerms = []string{
	"apple", "APPLE", "banana", "cherry", "durian", "elder", "fig",
	"grape", "honeydew", "kiwi", "naïve", "NAÏVE", "'naïve'", "café",
	"CAFÉ", "straße", "résumé", "Résumé-", "missing", "naive", "cafe",
}

// TestSessionAgreesWithEngineProperty is the cross-layer property check: for
// random term sets, serve.Session answers over the snapshotted store — both
// the block-compressed and the flat layout — must equal query.Engine answers
// over the live run the snapshot was taken from.
func TestSessionAgreesWithEngineProperty(t *testing.T) {
	src := corpus.FromTexts("prop", propDocs)
	_, err := cluster.Run(3, simtime.Zero(), func(c *cluster.Comm) error {
		res, err := core.Run(c, []*corpus.Source{src}, core.Config{TopN: 200, TopicFrac: 0.5})
		if err != nil {
			return err
		}
		st, err := Snapshot(c, res)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			return nil
		}
		if !st.Compressed() {
			return fmt.Errorf("snapshot store not compressed")
		}
		e := query.New(c, res)
		comp, err := NewServer(st, Config{})
		if err != nil {
			return err
		}
		flat, err := NewServer(st.FlatCopy(), Config{PostingCacheEntries: 2})
		if err != nil {
			return err
		}

		agree := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			terms := make([]string, 1+rng.Intn(4))
			for i := range terms {
				terms[i] = propTerms[rng.Intn(len(propTerms))]
			}
			for _, srv := range []*Server{comp, flat} {
				sess := srv.NewSession()
				for _, term := range terms {
					if !reflect.DeepEqual(sess.TermDocs(context.Background(), term), e.TermDocs(term)) {
						t.Logf("seed %d: TermDocs(%q) disagrees", seed, term)
						return false
					}
					if sess.DF(context.Background(), term) != e.DF(term) {
						t.Logf("seed %d: DF(%q) disagrees", seed, term)
						return false
					}
				}
				if got, want := sess.And(context.Background(), terms...), e.And(terms...); !reflect.DeepEqual(got, want) {
					t.Logf("seed %d: And(%v) = %v, engine says %v", seed, terms, got, want)
					return false
				}
				if got, want := sess.Or(context.Background(), terms...), e.Or(terms...); !reflect.DeepEqual(got, want) {
					t.Logf("seed %d: Or(%v) = %v, engine says %v", seed, terms, got, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(agree, &quick.Config{MaxCount: 120}); err != nil {
			return fmt.Errorf("session/engine divergence: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
