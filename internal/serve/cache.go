package serve

import "container/list"

// lru is a minimal least-recently-used map used for the posting-list and
// similarity caches. Counters live in the Server so the cache stays a pure
// data structure; callers synchronize access (Server guards each cache with
// its own mutex alongside the in-flight table).
type lru[K comparable, V any] struct {
	cap   int
	ll    *list.List
	items map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, ll: list.New(), items: make(map[K]*list.Element, capacity)}
}

// get returns the cached value and refreshes its recency.
func (l *lru[K, V]) get(k K) (V, bool) {
	if el, ok := l.items[k]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// add inserts or refreshes a value. When the insert pushes the cache over
// capacity it returns the evicted entry's value and true, so callers holding
// external accounting against cached values (the posting cache's resident
// pins) can release it; refreshing an existing key evicts nothing.
func (l *lru[K, V]) add(k K, v V) (evictedVal V, evicted bool) {
	var zero V
	if el, ok := l.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		l.ll.MoveToFront(el)
		return zero, false
	}
	l.items[k] = l.ll.PushFront(&lruEntry[K, V]{key: k, val: v})
	if l.ll.Len() <= l.cap {
		return zero, false
	}
	oldest := l.ll.Back()
	l.ll.Remove(oldest)
	entry := oldest.Value.(*lruEntry[K, V])
	delete(l.items, entry.key)
	return entry.val, true
}

func (l *lru[K, V]) len() int { return l.ll.Len() }
