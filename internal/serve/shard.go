package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"inspire/internal/postings"
	"inspire/internal/segment"
	"inspire/internal/storefile"
)

// ShardOf is the document-partitioning rule of a sharded serving set: global
// document ID d lives on shard d mod shards. Modulo routing keeps every shard
// within one document of perfectly balanced for the dense IDs a pipeline run
// produces, and it needs no routing table — the router recomputes it from the
// manifest's shard count alone.
func ShardOf(doc int64, shards int) int {
	return int(doc % int64(shards))
}

// Shard splits the store into n document-partitioned shard stores. Each
// shard carries its own compressed posting blobs (per-term counts doubling as
// the shard's DF summary), its slice of the signatures, ThemeView points and
// cluster assignments, and the full replicated vocabulary, ownership bounds,
// model and themes — everything a shard Server needs to answer sub-queries
// on its own. The receiver is not modified; shard stores share its immutable
// replicated tables.
//
// Sharding assumes the dense document IDs a pipeline snapshot produces
// (0..TotalDocs-1); each shard's TotalDocs is its own document count.
func (st *Store) Shard(n int) ([]*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: shard count %d", n)
	}
	st.live.mu.Lock()
	hasLive := st.hasLiveLocked()
	st.live.mu.Unlock()
	if hasLive {
		return nil, fmt.Errorf("serve: shard a store before ingesting into it (flush and Rebase first)")
	}
	if len(st.Holes) > 0 {
		// Sharding assumes the dense IDs of a pure pipeline snapshot; a
		// rebase that dropped deletions left holes the per-shard counts
		// cannot describe (see Rebase's doc comment).
		return nil, fmt.Errorf("serve: shard a store before rebasing deletions into it")
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	posts := st.Posts
	if posts == nil {
		// Legacy flat snapshot: encode the block layout without touching the
		// receiver, so sharding a v1 store leaves the original flat.
		w := postings.NewWriter(int64(len(st.PostDoc)))
		for t := int64(0); t < st.VocabSize; t++ {
			var docs, freqs []int64
			if c := st.DF[t]; c > 0 {
				off := st.Off[t]
				docs, freqs = st.PostDoc[off:off+c], st.PostFreq[off:off+c]
			}
			if err := w.Append(docs, freqs); err != nil {
				return nil, fmt.Errorf("serve: shard: %w", err)
			}
		}
		posts = w.Finish()
	}
	parts, err := posts.Split(n, func(doc int64) int { return ShardOf(doc, n) })
	if err != nil {
		return nil, fmt.Errorf("serve: shard: %w", err)
	}

	out := make([]*Store, n)
	for i := range out {
		out[i] = &Store{
			Model: st.Model, P: st.P,
			// Dense IDs round-robin across shards: shard i owns
			// ceil((TotalDocs-i)/n) of them.
			TotalDocs: (st.TotalDocs - int64(i) + int64(n) - 1) / int64(n),
			VocabSize: st.VocabSize,
			Terms:     st.Terms, TermList: st.TermList, Prefix: st.Prefix,
			DF:    parts[i].Count,
			Posts: parts[i],
			SigM:  st.SigM, Proj: st.Proj,
			Planar: st.Planar, TileBox: st.TileBox,
			K: st.K, Themes: st.Themes,
			ShardCount: n, ShardIndex: i, GlobalDocs: st.TotalDocs,
			// A mapped parent shares its dictionary backing with the shards:
			// TermList strings and the sorted permutation alias its file.
			backing: st.backing, res: st.res, termSorted: st.termSorted,
		}
	}
	for i, d := range st.SigDocs {
		r := ShardOf(d, n)
		out[r].SigDocs = append(out[r].SigDocs, d)
		out[r].SigVecs = append(out[r].SigVecs, st.SigVecs[i])
	}
	for _, pt := range st.Points {
		r := ShardOf(pt.Doc, n)
		out[r].Points = append(out[r].Points, pt)
	}
	for i, d := range st.AssignDocs {
		r := ShardOf(d, n)
		out[r].AssignDocs = append(out[r].AssignDocs, d)
		out[r].AssignClusters = append(out[r].AssignClusters, st.AssignClusters[i])
	}
	// Partition the document metadata, re-interning each shard's facet rows
	// into its own dictionary so shard files carry only the facets their
	// documents use.
	if len(st.MetaDocs) > 0 {
		interners := make([]*facetInterner, n)
		tables := make([]metaTable, n)
		for i, d := range st.MetaDocs {
			r := ShardOf(d, n)
			if interners[r] == nil {
				interners[r] = newFacetInterner(nil)
				tables[r].facetOffs = []int64{0}
			}
			t, in := &tables[r], interners[r]
			t.docs = append(t.docs, d)
			t.times = append(t.times, st.MetaTimes[i])
			if len(st.MetaFacetOffs) > 0 {
				for _, id := range st.MetaFacetIDs[st.MetaFacetOffs[i]:st.MetaFacetOffs[i+1]] {
					t.facetIDs = append(t.facetIDs, in.intern([]string{st.FacetDict[id]})...)
				}
			}
			t.facetOffs = append(t.facetOffs, int64(len(t.facetIDs)))
		}
		for r := range tables {
			if interners[r] == nil {
				continue
			}
			if len(tables[r].facetIDs) == 0 {
				tables[r].facetOffs = nil
			} else {
				tables[r].dict = interners[r].dict
			}
			tables[r].install(out[r])
		}
	}
	for i := range out {
		if err := out[i].validate(); err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
	}
	return out, nil
}

// SaveShards shards the store n ways and persists the set: one INSPSTORE4
// file per shard (tile pyramid embedded) next to the manifest, plus the
// manifest itself at path. Every write is atomic. The manifest names the
// shard files relative to its own directory, so the set moves as a unit.
func (st *Store) SaveShards(path string, n int) error {
	shards, err := st.Shard(n)
	if err != nil {
		return err
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	man := &Manifest{
		NumShards: n,
		TotalDocs: st.TotalDocs,
		VocabSize: st.VocabSize,
		Route:     RouteMod,
		Shards:    make([]ShardInfo, n),
	}
	for i, sh := range shards {
		var posts int64
		for _, c := range sh.DF {
			posts += c
		}
		man.Shards[i] = ShardInfo{
			File:     fmt.Sprintf("%s.s%02d", base, i),
			Docs:     sh.TotalDocs,
			Postings: posts,
		}
		// SaveFile writes INSPSTORE4 with the tile pyramid embedded; no
		// sidecar needed.
		shardPath := filepath.Join(dir, man.Shards[i].File)
		if err := sh.SaveFile(shardPath); err != nil {
			return err
		}
	}
	data, err := man.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic routes a small whole-buffer write (manifests) through the
// temp+fsync+rename discipline.
func writeFileAtomic(path string, data []byte) error {
	return storefile.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// SaveLiveSet persists an already-partitioned shard set with its live state:
// each shard's base store as an ordinary store file, each sealed segment as
// an INSPSEG1 sidecar, and the tombstones inside the (v2) manifest at path.
// Callers flush pending deltas first (Router.SaveLive does); documents still
// buffered in a delta are not persisted. A set without live state writes a
// v1 manifest, byte-identical to SaveShards output.
func SaveLiveSet(path string, shards []*Store) error {
	if len(shards) == 0 {
		return fmt.Errorf("serve: no shards to save")
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	man := &Manifest{
		NumShards: len(shards),
		VocabSize: shards[0].VocabSize,
		Route:     RouteMod,
		Shards:    make([]ShardInfo, len(shards)),
	}
	for i, sh := range shards {
		if sh.PendingDocs() > 0 {
			return fmt.Errorf("serve: shard %d has unflushed pending adds", i)
		}
		v := sh.viewNow()
		var posts int64
		for _, c := range v.base.df {
			posts += c
		}
		info := ShardInfo{
			File:     fmt.Sprintf("%s.s%02d", base, i),
			Docs:     sh.TotalDocs,
			Postings: posts,
		}
		shardPath := filepath.Join(dir, info.File)
		if err := sh.SaveFile(shardPath); err != nil {
			return err
		}
		for j, seg := range v.segs {
			si := SegmentInfo{File: fmt.Sprintf("%s.s%02d.g%03d", base, i, j), Docs: seg.NumDocs()}
			if err := seg.SaveFile(filepath.Join(dir, si.File)); err != nil {
				return err
			}
			info.Segments = append(info.Segments, si)
		}
		for d := range v.tombs {
			info.Tombs = append(info.Tombs, d)
		}
		sort.Slice(info.Tombs, func(a, b int) bool { return info.Tombs[a] < info.Tombs[b] })
		// Persist the ID high-water mark only when the surviving data no
		// longer implies it (the highest assigned IDs were deleted and
		// compacted away): the common case re-derives it at load, keeping
		// frozen sets byte-identical to SaveShards output.
		derived := sh.TotalDocs
		if sh.ShardCount > 0 {
			derived = sh.GlobalDocs
		}
		for _, seg := range v.segs {
			if m := seg.MaxDoc() + 1; m > derived {
				derived = m
			}
		}
		if next := sh.NextDocID(); next > derived {
			info.NextDoc = next
		}
		man.Shards[i] = info
		man.TotalDocs += sh.TotalDocs
	}
	data, err := man.Encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// LoadShards reads a manifest written by SaveShards or SaveLiveSet and loads
// every shard store it names — base file, sealed segments and tombstones —
// cross-checking each against the manifest's summaries. INSPSTORE4 shard
// files are mapped (LoadShardsHeap materializes them instead).
func LoadShards(path string) (*Manifest, []*Store, error) {
	return loadShards(path, false)
}

// LoadShardsHeap loads a shard set entirely into heap — the -no-mmap path.
func LoadShardsHeap(path string) (*Manifest, []*Store, error) {
	return loadShards(path, true)
}

func loadShards(path string, noMmap bool) (*Manifest, []*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	man, err := DecodeManifest(data)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: load shards %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	shards := make([]*Store, man.NumShards)
	var docs int64
	for i, info := range man.Shards {
		// loadStoreFile also attaches a legacy shard's tile sidecar if
		// present; v4 shards embed their pyramid.
		sh, err := loadStoreFile(filepath.Join(dir, info.File), noMmap)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: load shard %d: %w", i, err)
		}
		if sh.VocabSize != man.VocabSize {
			return nil, nil, fmt.Errorf("serve: shard %d has vocabulary %d, manifest says %d", i, sh.VocabSize, man.VocabSize)
		}
		// Shard stores persisted before the live layer carry no routing
		// metadata (the gob fields decode zero); backfill it from the
		// manifest, which describes the same dense global space, so the live
		// layer can tell "base document" from "unknown" on legacy sets too.
		// Stores that do carry it must agree with the manifest.
		switch {
		case sh.ShardCount == 0:
			sh.ShardCount = man.NumShards
			sh.ShardIndex = i
			sh.GlobalDocs = man.TotalDocs
		case sh.ShardCount != man.NumShards:
			return nil, nil, fmt.Errorf("serve: shard %d store says a %d-way partition, manifest says %d", i, sh.ShardCount, man.NumShards)
		case sh.ShardIndex != i:
			return nil, nil, fmt.Errorf("serve: shard %d store says it is shard %d", i, sh.ShardIndex)
		}
		var posts int64
		for _, c := range sh.DF {
			posts += c
		}
		if sh.TotalDocs != info.Docs || posts != info.Postings {
			return nil, nil, fmt.Errorf("serve: shard %d carries %d docs/%d postings, manifest says %d/%d",
				i, sh.TotalDocs, posts, info.Docs, info.Postings)
		}
		var segs []*segment.Segment
		segDocs := make(map[int64]bool)
		for j, si := range info.Segments {
			seg, err := segment.LoadFile(filepath.Join(dir, si.File))
			if err != nil {
				return nil, nil, fmt.Errorf("serve: load shard %d segment %d: %w", i, j, err)
			}
			if seg.NumDocs() != si.Docs {
				return nil, nil, fmt.Errorf("serve: shard %d segment %d carries %d docs, manifest says %d",
					i, j, seg.NumDocs(), si.Docs)
			}
			if seg.Posts.NumTerms != sh.VocabSize {
				return nil, nil, fmt.Errorf("serve: shard %d segment %d covers %d terms of %d",
					i, j, seg.Posts.NumTerms, sh.VocabSize)
			}
			// The gather merges rely on disjointness: a segment document must
			// belong to this shard by the routing rule, appear in exactly one
			// segment, and not collide with the shard's base range.
			baseBound := sh.TotalDocs
			if sh.ShardCount > 0 {
				baseBound = sh.GlobalDocs
			}
			for _, d := range seg.Docs {
				switch {
				case man.NumShards > 1 && ShardOf(d, man.NumShards) != i:
					return nil, nil, fmt.Errorf("serve: shard %d segment %d holds doc %d owned by shard %d",
						i, j, d, ShardOf(d, man.NumShards))
				case segDocs[d]:
					return nil, nil, fmt.Errorf("serve: shard %d doc %d appears in two segments", i, d)
				case d < baseBound:
					return nil, nil, fmt.Errorf("serve: shard %d segment %d doc %d collides with the base", i, j, d)
				}
				segDocs[d] = true
			}
			segs = append(segs, seg)
		}
		if len(segs) > 0 || len(info.Tombs) > 0 {
			if err := sh.installLive(segs, info.Tombs); err != nil {
				return nil, nil, fmt.Errorf("serve: load shard %d: %w", i, err)
			}
		}
		// Restore the persisted ID high-water mark (see ShardInfo.NextDoc) so
		// the never-reuse invariant survives deleting-then-compacting the
		// highest assigned IDs.
		sh.AdvanceNextDoc(info.NextDoc)
		docs += sh.TotalDocs
		shards[i] = sh
	}
	if docs != man.TotalDocs {
		return nil, nil, fmt.Errorf("serve: shards carry %d docs, manifest says %d", docs, man.TotalDocs)
	}
	return man, shards, nil
}

// IsShardManifestFile reports whether the file begins with a shard-manifest
// magic (either version) — i.e. whether a -store path names a sharded set
// rather than a single store.
func IsShardManifestFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(manifestMagic))
	// ReadFull, not Read: a legal short read must not misclassify a valid
	// manifest. A file shorter than the magic is simply not a manifest.
	if _, err := io.ReadFull(f, head); err != nil {
		return false, nil
	}
	return string(head) == manifestMagic || string(head) == manifestMagicV2, nil
}

// LoadServiceFile opens any persisted serving artifact as a Service: a shard
// manifest loads its set behind a Router; a single store file — INSPSTORE4,
// INSPSTORE2 or legacy INSPSTORE1 — loads behind a plain Server (flat v1
// postings are re-compressed on load, as cmd/inspired has always done).
// INSPSTORE4 files are memory-mapped unless cfg.NoMmap is set, in which case
// they materialize to heap like the legacy formats always do. This is the
// one load path the daemon needs — sharded and monolithic sets serve behind
// the same session API.
func LoadServiceFile(path string, cfg Config) (Service, error) {
	man, err := IsShardManifestFile(path)
	if err != nil {
		return nil, err
	}
	if man {
		_, shards, err := loadShards(path, cfg.NoMmap)
		if err != nil {
			return nil, err
		}
		return NewService(Options{Shards: shards, Config: cfg})
	}
	st, err := loadStoreFile(path, cfg.NoMmap)
	if err != nil {
		return nil, err
	}
	if !st.Compressed() {
		if err := st.CompressPostings(); err != nil {
			return nil, err
		}
	}
	return NewService(Options{Store: st, Config: cfg})
}
