package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"inspire/internal/postings"
)

// ShardOf is the document-partitioning rule of a sharded serving set: global
// document ID d lives on shard d mod shards. Modulo routing keeps every shard
// within one document of perfectly balanced for the dense IDs a pipeline run
// produces, and it needs no routing table — the router recomputes it from the
// manifest's shard count alone.
func ShardOf(doc int64, shards int) int {
	return int(doc % int64(shards))
}

// Shard splits the store into n document-partitioned shard stores. Each
// shard carries its own compressed posting blobs (per-term counts doubling as
// the shard's DF summary), its slice of the signatures, ThemeView points and
// cluster assignments, and the full replicated vocabulary, ownership bounds,
// model and themes — everything a shard Server needs to answer sub-queries
// on its own. The receiver is not modified; shard stores share its immutable
// replicated tables.
//
// Sharding assumes the dense document IDs a pipeline snapshot produces
// (0..TotalDocs-1); each shard's TotalDocs is its own document count.
func (st *Store) Shard(n int) ([]*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("serve: shard count %d", n)
	}
	if err := st.validate(); err != nil {
		return nil, err
	}
	posts := st.Posts
	if posts == nil {
		// Legacy flat snapshot: encode the block layout without touching the
		// receiver, so sharding a v1 store leaves the original flat.
		w := postings.NewWriter(int64(len(st.PostDoc)))
		for t := int64(0); t < st.VocabSize; t++ {
			var docs, freqs []int64
			if c := st.DF[t]; c > 0 {
				off := st.Off[t]
				docs, freqs = st.PostDoc[off:off+c], st.PostFreq[off:off+c]
			}
			if err := w.Append(docs, freqs); err != nil {
				return nil, fmt.Errorf("serve: shard: %w", err)
			}
		}
		posts = w.Finish()
	}
	parts, err := posts.Split(n, func(doc int64) int { return ShardOf(doc, n) })
	if err != nil {
		return nil, fmt.Errorf("serve: shard: %w", err)
	}

	out := make([]*Store, n)
	for i := range out {
		out[i] = &Store{
			Model: st.Model, P: st.P,
			// Dense IDs round-robin across shards: shard i owns
			// ceil((TotalDocs-i)/n) of them.
			TotalDocs: (st.TotalDocs - int64(i) + int64(n) - 1) / int64(n),
			VocabSize: st.VocabSize,
			Terms:     st.Terms, TermList: st.TermList, Prefix: st.Prefix,
			DF:    parts[i].Count,
			Posts: parts[i],
			SigM:  st.SigM,
			K:     st.K, Themes: st.Themes,
		}
	}
	for i, d := range st.SigDocs {
		r := ShardOf(d, n)
		out[r].SigDocs = append(out[r].SigDocs, d)
		out[r].SigVecs = append(out[r].SigVecs, st.SigVecs[i])
	}
	for _, pt := range st.Points {
		r := ShardOf(pt.Doc, n)
		out[r].Points = append(out[r].Points, pt)
	}
	for i, d := range st.AssignDocs {
		r := ShardOf(d, n)
		out[r].AssignDocs = append(out[r].AssignDocs, d)
		out[r].AssignClusters = append(out[r].AssignClusters, st.AssignClusters[i])
	}
	for i := range out {
		if err := out[i].validate(); err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
	}
	return out, nil
}

// SaveShards shards the store n ways and persists the set: one INSPSTORE2
// file per shard next to the manifest, plus the manifest itself at path. The
// manifest names the shard files relative to its own directory, so the set
// moves as a unit.
func (st *Store) SaveShards(path string, n int) error {
	shards, err := st.Shard(n)
	if err != nil {
		return err
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	man := &Manifest{
		NumShards: n,
		TotalDocs: st.TotalDocs,
		VocabSize: st.VocabSize,
		Route:     RouteMod,
		Shards:    make([]ShardInfo, n),
	}
	for i, sh := range shards {
		var posts int64
		for _, c := range sh.DF {
			posts += c
		}
		man.Shards[i] = ShardInfo{
			File:     fmt.Sprintf("%s.s%02d", base, i),
			Docs:     sh.TotalDocs,
			Postings: posts,
		}
		if err := sh.SaveFile(filepath.Join(dir, man.Shards[i].File)); err != nil {
			return err
		}
	}
	data, err := man.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadShards reads a manifest written by SaveShards and loads every shard
// store it names, cross-checking each against the manifest's summary.
func LoadShards(path string) (*Manifest, []*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	man, err := DecodeManifest(data)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: load shards %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	shards := make([]*Store, man.NumShards)
	var docs int64
	for i, info := range man.Shards {
		sh, err := LoadStoreFile(filepath.Join(dir, info.File))
		if err != nil {
			return nil, nil, fmt.Errorf("serve: load shard %d: %w", i, err)
		}
		if sh.VocabSize != man.VocabSize {
			return nil, nil, fmt.Errorf("serve: shard %d has vocabulary %d, manifest says %d", i, sh.VocabSize, man.VocabSize)
		}
		var posts int64
		for _, c := range sh.DF {
			posts += c
		}
		if sh.TotalDocs != info.Docs || posts != info.Postings {
			return nil, nil, fmt.Errorf("serve: shard %d carries %d docs/%d postings, manifest says %d/%d",
				i, sh.TotalDocs, posts, info.Docs, info.Postings)
		}
		docs += sh.TotalDocs
		shards[i] = sh
	}
	if docs != man.TotalDocs {
		return nil, nil, fmt.Errorf("serve: shards carry %d docs, manifest says %d", docs, man.TotalDocs)
	}
	return man, shards, nil
}

// IsShardManifestFile reports whether the file begins with the shard-manifest
// magic — i.e. whether a -store path names a sharded set rather than a single
// store.
func IsShardManifestFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	head := make([]byte, len(manifestMagic))
	// ReadFull, not Read: a legal short read must not misclassify a valid
	// manifest. A file shorter than the magic is simply not a manifest.
	if _, err := io.ReadFull(f, head); err != nil {
		return false, nil
	}
	return string(head) == manifestMagic, nil
}

// LoadServiceFile opens any persisted serving artifact as a Service: a shard
// manifest loads its set behind a Router; a single INSPSTORE2 or legacy
// INSPSTORE1 file loads behind a plain Server (flat v1 postings are
// re-compressed on load, as cmd/inspired has always done). This is the one
// load path the daemon needs — sharded and monolithic sets serve behind the
// same session API.
func LoadServiceFile(path string, cfg Config) (Service, error) {
	man, err := IsShardManifestFile(path)
	if err != nil {
		return nil, err
	}
	if man {
		_, shards, err := LoadShards(path)
		if err != nil {
			return nil, err
		}
		return NewRouter(shards, cfg)
	}
	st, err := LoadStoreFile(path)
	if err != nil {
		return nil, err
	}
	if !st.Compressed() {
		if err := st.CompressPostings(); err != nil {
			return nil, err
		}
	}
	return NewServer(st, cfg)
}
