package serve

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"inspire/internal/tiles"
)

// worldRect spans every tile at any zoom.
func worldRect() tiles.Rect {
	return tiles.Rect{MinX: -1e18, MinY: -1e18, MaxX: 1e18, MaxY: 1e18}
}

// tileDump enumerates every non-empty tile at every zoom level through the
// public session surface.
func tileDump(t *testing.T, q Querier, maxZoom int) [][]*TileResult {
	t.Helper()
	out := make([][]*TileResult, maxZoom+1)
	for z := 0; z <= maxZoom; z++ {
		ts, err := q.TileRange(context.Background(), z, worldRect())
		if err != nil {
			t.Fatalf("TileRange(%d): %v", z, err)
		}
		out[z] = ts
	}
	return out
}

// pyramidBytes encodes the store's maintained pyramid for the current view.
func pyramidBytes(st *Store, tc tiles.Config) []byte {
	var b []byte
	st.withPyramid(st.viewNow(), tc, func(p *tiles.Pyramid) { b = p.Encode() })
	return b
}

// resetPyramid discards the maintained pyramid so the next query rebuilds it
// from scratch — the "offline-built" comparator of the invariance tests.
func resetPyramid(st *Store) {
	st.live.tileMu.Lock()
	st.live.tilePyr, st.live.tileView = nil, nil
	st.live.tileMu.Unlock()
}

// TestTileRouterMatchesServer pins the sharding contract for the tile
// surface: a Router over any shard count answers Tile and TileRange
// bit-identically to the monolithic Server — density grids, theme
// histograms, exemplars and ordering included.
func TestTileRouterMatchesServer(t *testing.T) {
	st := buildStoreT(t, 3)
	cfg := Config{TileMaxZoom: 4}
	srv := newServerT(t, st, cfg)
	want := tileDump(t, srv.NewSession(), 4)
	if len(want[0]) != 1 || want[0][0].Docs != st.TotalDocs {
		t.Fatalf("root tile covers %v, want all %d docs", want[0], st.TotalDocs)
	}

	for _, n := range []int{1, 2, 4} {
		shards, err := st.Shard(n)
		if err != nil {
			t.Fatalf("shard %d: %v", n, err)
		}
		r, err := NewRouter(shards, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess := r.NewSession()
		got := tileDump(t, sess, 4)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%d-shard tile dump differs from server", n)
		}
		// Single-tile queries agree too, on hits and on empty addresses.
		for z, row := range want {
			for _, wt := range row {
				gt, err := sess.Tile(context.Background(), z, wt.X, wt.Y)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(wt, gt) {
					t.Fatalf("%d-shard Tile(%d,%d,%d) = %+v, want %+v", n, z, wt.X, wt.Y, gt, wt)
				}
			}
		}
		if _, err := sess.Tile(context.Background(), 5, 0, 0); err == nil {
			t.Fatal("out-of-range zoom accepted by router")
		}
		if _, err := sess.Tile(context.Background(), 2, 4, 0); err == nil {
			t.Fatal("out-of-range address accepted by router")
		}
	}
	if _, err := srv.NewSession().Tile(context.Background(), -1, 0, 0); err == nil {
		t.Fatal("negative zoom accepted")
	}
}

// TestTilePyramidIncrementalMatchesRebuild pins the invariance the live
// layer promises: the pyramid patched forward across seal, delete, compact
// and rebase epochs is byte-identical to one rebuilt from scratch for the
// same view, and spatial answers always match the tile-less full scan.
func TestTilePyramidIncrementalMatchesRebuild(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3).Fork()
	texts := recordTexts(t, sources)
	st.SetLivePolicy(LivePolicy{SealDocs: 5, CompactSegments: 3, ManualCompaction: true})
	cfg := Config{TileMaxZoom: 5}
	srv := newServerT(t, st, cfg)
	naive := newServerT(t, st, Config{DisableTiles: true})
	tc := srv.cfg.tileConfig()
	sess := srv.NewSession()

	check := func(label string) {
		t.Helper()
		// Touch the pyramid through the session so it patches forward.
		sess.Near(context.Background(), 0, 0, 0.5)
		inc := pyramidBytes(st, tc)
		resetPyramid(st)
		rebuilt := pyramidBytes(st, tc)
		if !bytes.Equal(inc, rebuilt) {
			t.Fatalf("%s: incrementally maintained pyramid differs from rebuild (%d vs %d bytes)",
				label, len(inc), len(rebuilt))
		}
		rng := rand.New(rand.NewSource(3))
		ns, fs := srv.NewSession(), naive.NewSession()
		for i := 0; i < 25; i++ {
			x, y := rng.Float64()*2-1, rng.Float64()*2-1
			r := rng.Float64() * 0.8
			if a, b := fs.Near(context.Background(), x, y, r), ns.Near(context.Background(), x, y, r); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: Near(%g,%g,%g) via tiles = %v, full scan %v", label, x, y, r, b, a)
			}
		}
		if a, b := fs.Near(context.Background(), 0, 0, 1e9), ns.Near(context.Background(), 0, 0, 1e9); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: Near(all) via tiles %d docs, full scan %d", label, len(b), len(a))
		}
	}

	check("pristine")

	var added []int64
	for i := 0; i < 12; i++ {
		doc, err := sess.Add(context.Background(), texts[i%len(texts)])
		if err != nil {
			t.Fatal(err)
		}
		added = append(added, doc)
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	check("sealed")

	if err := sess.Delete(context.Background(), added[3]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(context.Background(), added[7]); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(context.Background(), 1); err != nil { // a base document
		t.Fatal(err)
	}
	check("deleted")

	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	check("compacted")

	for i := 0; i < 7; i++ {
		if _, err := sess.Add(context.Background(), texts[(i*5)%len(texts)]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete(context.Background(), added[9]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	check("second round")

	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	check("rebased")

	// The ingested documents stayed on the plane through the rebase.
	all := srv.NewSession().Near(context.Background(), 0, 0, 1e9)
	found := map[int64]bool{}
	for _, d := range all {
		found[d] = true
	}
	for i, d := range added {
		dead := i == 3 || i == 7 || i == 9
		if found[d] == dead {
			t.Fatalf("rebase: added doc %d found=%v, want %v", d, found[d], !dead)
		}
	}
}

// TestTileRouterMatchesServerUnderIngest runs the router==server tile
// equivalence while both serve the same routed ingest stream: the same
// documents added through a 2-shard router and through the monolithic server
// produce identical tiles at every stage.
func TestTileRouterMatchesServerUnderIngest(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3)
	texts := recordTexts(t, sources)
	cfg := Config{TileMaxZoom: 4}

	mono := st.Fork()
	mono.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 3, ManualCompaction: true})
	monoSrv := newServerT(t, mono, cfg)
	monoSess := monoSrv.NewSession()

	shards, err := st.Shard(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		sh.SetLivePolicy(LivePolicy{SealDocs: 4, CompactSegments: 3, ManualCompaction: true})
	}
	r, err := NewRouter(shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rSess := r.NewSession()

	for i := 0; i < 11; i++ {
		text := texts[i%len(texts)]
		md, err := monoSess.Add(context.Background(), text)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := rSess.Add(context.Background(), text)
		if err != nil {
			t.Fatal(err)
		}
		if md != rd {
			t.Fatalf("add %d: mono doc %d, routed doc %d", i, md, rd)
		}
	}
	if _, err := mono.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushLive(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tileDump(t, monoSess, 4), tileDump(t, rSess, 4)) {
		t.Fatal("sealed: routed tile dump differs from monolithic")
	}

	if err := monoSess.Delete(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if err := rSess.Delete(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tileDump(t, monoSess, 4), tileDump(t, rSess, 4)) {
		t.Fatal("deleted: routed tile dump differs from monolithic")
	}
}

// TestLegacyAndSidecarTileLoads pins the load paths: a store persisted
// without Planar/TileBox (a pre-tiles build) lazily builds an identical
// pyramid on load; a store saved with its sidecar serves from it; and a
// corrupt sidecar is ignored, not fatal.
func TestLegacyAndSidecarTileLoads(t *testing.T) {
	st := buildStoreT(t, 3)
	cfg := Config{TileMaxZoom: 4}
	want := tileDump(t, newServerT(t, st, cfg).NewSession(), 4)
	dir := t.TempDir()

	// Legacy: no frozen tile metadata, no sidecar.
	legacy := st.Fork()
	legacy.Planar, legacy.TileBox = nil, nil
	legacyPath := filepath.Join(dir, "legacy.store")
	if err := legacy.SaveFile(legacyPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStoreFile(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TileBox == nil {
		t.Fatal("load did not derive tile bounds from the points")
	}
	if got := tileDump(t, newServerT(t, loaded, cfg).NewSession(), 4); !reflect.DeepEqual(want, got) {
		t.Fatal("legacy store's lazily built tiles differ")
	}

	// Sidecar: a legacy-layout store's persisted pyramid attaches and
	// serves identically.
	scPath := filepath.Join(dir, "sidecar.store")
	if err := st.SaveLegacyFile(scPath); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveTilesFile(scPath, cfg); err != nil {
		t.Fatal(err)
	}
	withSC, err := LoadStoreFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	if withSC.live.tileSidecar == nil {
		t.Fatal("sidecar not attached on load")
	}
	if got := tileDump(t, newServerT(t, withSC, cfg).NewSession(), 4); !reflect.DeepEqual(want, got) {
		t.Fatal("sidecar-served tiles differ")
	}

	// INSPSTORE4 embeds the pyramid as a section instead of a sidecar; it
	// decodes lazily on first tile use and serves identically.
	v4Path := filepath.Join(dir, "v4.store")
	if err := st.SaveFile(v4Path); err != nil {
		t.Fatal(err)
	}
	fromV4, err := LoadStoreFile(v4Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromV4.live.tileRaw) == 0 {
		t.Fatal("v4 store carries no embedded pyramid bytes")
	}
	if got := tileDump(t, newServerT(t, fromV4, cfg).NewSession(), 4); !reflect.DeepEqual(want, got) {
		t.Fatal("v4-embedded tiles differ")
	}

	// Corruption: the sidecar is advisory; a broken one is ignored.
	if err := os.WriteFile(scPath+TilesSidecarSuffix, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := LoadStoreFile(scPath)
	if err != nil {
		t.Fatal(err)
	}
	if broken.live.tileSidecar != nil {
		t.Fatal("corrupt sidecar attached")
	}
	if got := tileDump(t, newServerT(t, broken, cfg).NewSession(), 4); !reflect.DeepEqual(want, got) {
		t.Fatal("store with corrupt sidecar serves different tiles")
	}

	// Sharded persistence: shards are INSPSTORE4 files with the pyramid
	// embedded — no sidecar files — and the loaded set answers identically
	// to the in-memory router.
	manPath := filepath.Join(dir, "set.shards")
	if err := st.SaveShards(manPath, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(manPath + ".s00" + TilesSidecarSuffix); err == nil {
		t.Fatal("v4 shard grew a tile sidecar file")
	}
	_, shardStores, err := LoadShards(manPath)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(shardStores, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tileDump(t, r.NewSession(), 4); !reflect.DeepEqual(want, got) {
		t.Fatal("loaded shard set serves different tiles")
	}
}

// TestNearChargesCandidatesNotCorpus pins the Near cost bugfix: a tight
// query is cheaper than the full-scan server charges, the pruning counter
// advances, and tile hits land in the epoch-keyed LRU.
func TestNearChargesCandidatesNotCorpus(t *testing.T) {
	st := batchStore(t, ingestSources(), 3)
	srv := newServerT(t, st, Config{})
	naive := newServerT(t, st, Config{DisableTiles: true})

	ns, fs := srv.NewSession(), naive.NewSession()
	// Warm the pyramid so the probe measures steady-state query cost.
	ns.Near(context.Background(), 0, 0, 0.01)
	ns.Near(context.Background(), 0, 0, 0.01)
	tight := ns.Stats().LastMS
	fs.Near(context.Background(), 0, 0, 0.01)
	full := fs.Stats().LastMS
	if tight <= 0 || full <= 0 {
		t.Fatalf("virtual costs not charged: tiles %g ms, scan %g ms", tight, full)
	}
	if tight >= full {
		t.Fatalf("tight tile-pruned Near costs %g ms, full scan %g ms", tight, full)
	}
	if p := srv.Stats().TilesPruned; p == 0 {
		t.Fatal("no subtrees pruned on a tight query")
	}

	sess := srv.NewSession()
	if _, err := sess.Tile(context.Background(), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Tile(context.Background(), 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	stats := srv.Stats()
	if stats.TileHits == 0 || stats.TileMisses == 0 {
		t.Fatalf("tile LRU not exercised: %+v hits/%+v misses", stats.TileHits, stats.TileMisses)
	}

	if _, err := naive.NewSession().Tile(context.Background(), 0, 0, 0); err == nil {
		t.Fatal("tiles answered on a DisableTiles server")
	}
	if _, err := naive.NewSession().TileRange(context.Background(), 0, worldRect()); err == nil {
		t.Fatal("tile range answered on a DisableTiles server")
	}
}
