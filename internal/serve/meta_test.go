package serve

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"inspire/internal/tiles"
)

// docMetaRow is the test's own record of one document's stamped metadata —
// the independent ground truth the brute-force filter checks resolve
// against, deliberately not the store's resolution path.
type docMetaRow struct {
	ts     int64
	facets []string
}

// stampMetaT installs deterministic metadata on every signature-bearing base
// document and returns the ground-truth table.
func stampMetaT(t *testing.T, st *Store) map[int64]docMetaRow {
	t.Helper()
	set := st.Signatures()
	truth := make(map[int64]docMetaRow, len(set.Docs))
	docs := append([]int64(nil), set.Docs...)
	times := make([]int64, len(docs))
	rows := make([][]string, len(docs))
	for i, d := range docs {
		times[i] = 1000 + d*10
		rows[i] = []string{
			fmt.Sprintf("source=s%d", d%3),
			fmt.Sprintf("lang=l%d", d%2),
		}
		truth[d] = docMetaRow{ts: times[i], facets: append([]string(nil), rows[i]...)}
	}
	if err := st.SetBaseMeta(docs, times, rows); err != nil {
		t.Fatal(err)
	}
	return truth
}

// probeFilters is the filter palette the equivalence tests sweep: empty,
// time-only, single facet, facet conjunction, combined, and one that can
// match nothing.
func probeFilters() []Filter {
	return []Filter{
		{},
		{After: 1015, Before: 1085},
		{Facets: []string{"source=s1"}},
		{Facets: []string{"lang=l0", "source=s2"}},
		{After: 1025, Facets: []string{"lang=l1"}},
		{Facets: []string{"source=s99"}},
	}
}

// metaMatches is the brute-force predicate, written against the documented
// semantics rather than the serving code: inclusive time bounds that an
// untimestamped document always fails, and facets that must all be present.
func metaMatches(f Filter, row docMetaRow) bool {
	if f.After != 0 || f.Before != 0 {
		if row.ts == 0 || (f.After != 0 && row.ts < f.After) || (f.Before != 0 && row.ts > f.Before) {
			return false
		}
	}
	for _, w := range f.Facets {
		found := false
		for _, h := range row.facets {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func bruteFilter(f Filter, truth map[int64]docMetaRow, docs []int64) []int64 {
	out := make([]int64, 0, len(docs))
	for _, d := range docs {
		if metaMatches(f, truth[d]) {
			out = append(out, d)
		}
	}
	return out
}

func TestSetBaseMetaValidates(t *testing.T) {
	st := buildStoreT(t, 2)
	row := [][]string{{"k=v"}}
	if err := st.SetBaseMeta([]int64{0, 1}, []int64{5}, [][]string{nil, nil}); err == nil {
		t.Fatal("mismatched vector lengths accepted")
	}
	if err := st.SetBaseMeta([]int64{-1}, []int64{5}, row); err == nil {
		t.Fatal("negative doc ID accepted")
	}
	if err := st.SetBaseMeta([]int64{2, 2}, []int64{5, 6}, [][]string{{"k=v"}, {"k=w"}}); err == nil {
		t.Fatal("duplicate doc ID accepted")
	}
	if err := st.SetBaseMeta([]int64{0}, []int64{5}, [][]string{{"no-equals"}}); err == nil {
		t.Fatal("malformed facet accepted")
	}
	if err := st.SetBaseMeta([]int64{0}, []int64{5}, [][]string{{"=v"}}); err == nil {
		t.Fatal("empty facet key accepted")
	}

	// Unsorted input with duplicate facet strings installs normalized.
	if err := st.SetBaseMeta([]int64{1, 0}, []int64{20, 10}, [][]string{{"b=2", "a=1", "b=2"}, {"c=3"}}); err != nil {
		t.Fatal(err)
	}
	if ts, facets := st.baseMetaOf(0); ts != 10 || !reflect.DeepEqual(facets, []string{"c=3"}) {
		t.Fatalf("doc 0 meta = (%d, %v)", ts, facets)
	}
	if ts, facets := st.baseMetaOf(1); ts != 20 || !reflect.DeepEqual(facets, []string{"a=1", "b=2"}) {
		t.Fatalf("doc 1 meta = (%d, %v), want dedup+sorted", ts, facets)
	}

	// Zero rows are the canonical "no metadata" and are dropped.
	if err := st.SetBaseMeta([]int64{0}, []int64{0}, [][]string{nil}); err != nil {
		t.Fatal(err)
	}
	if len(st.MetaDocs) != 0 {
		t.Fatalf("all-zero row kept %d metadata rows", len(st.MetaDocs))
	}

	// Live state blocks the bulk path.
	if _, _, err := st.AddMeta("apple banana", 99, []string{"k=v"}); err != nil {
		t.Fatal(err)
	}
	if err := st.SetBaseMeta([]int64{0}, []int64{5}, row); err == nil {
		t.Fatal("SetBaseMeta accepted a store with live segments")
	}
}

func TestFilterValidation(t *testing.T) {
	st := buildStoreT(t, 2)
	srv := newServerT(t, st, Config{})
	ss := srv.NewSession()
	if err := ss.SetFilter(Filter{Facets: []string{"bare"}}); err == nil {
		t.Fatal("SetFilter accepted a facet without key=value form")
	}
	if err := ss.SetFilter(Filter{Facets: []string{"k=v", "a=b", "k=v"}}); err != nil {
		t.Fatal(err)
	}
	if got := ss.filter.Facets; !reflect.DeepEqual(got, []string{"a=b", "k=v"}) {
		t.Fatalf("session filter not normalized: %v", got)
	}
	if err := ss.SetFilter(Filter{}); err != nil {
		t.Fatal(err)
	}
	if !ss.filter.Empty() {
		t.Fatal("clearing the filter did not empty it")
	}
}

// TestFilteredQueriesMatchBruteForce pins the core semantics on a monolithic
// server with base metadata and live faceted ingest: every filtered read is
// exactly the unfiltered read with non-matching documents removed.
func TestFilteredQueriesMatchBruteForce(t *testing.T) {
	st := batchStore(t, ingestSources(), 3).Fork()
	truth := stampMetaT(t, st)
	srv := newServerT(t, st, Config{TileMaxZoom: 4})

	plain := srv.NewSession()
	terms := st.TopTerms(10)
	docs := st.SampleDocs(6)

	// Live documents with segment-resident metadata, plus one bare document
	// (no timestamp, no facets) that must fail every bounded filter.
	ld, err := plain.AddDoc(context.Background(), terms[0]+" "+terms[1], 1042, []string{"source=s1", "live=yes"})
	if err != nil {
		t.Fatal(err)
	}
	truth[ld] = docMetaRow{ts: 1042, facets: []string{"live=yes", "source=s1"}}
	bare, err := plain.AddDoc(context.Background(), terms[0]+" "+terms[2], 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	truth[bare] = docMetaRow{}

	for fi, f := range probeFilters() {
		filtered := srv.NewSession()
		if err := filtered.SetFilter(f); err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("filter %d (%+v)", fi, f)
		ctx := context.Background()

		for _, tm := range terms {
			all := plain.TermDocs(ctx, tm)
			want := all[:0:0]
			for _, p := range all {
				if metaMatches(f, truth[p.Doc]) {
					want = append(want, p)
				}
			}
			if got := filtered.TermDocs(ctx, tm); !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: TermDocs(%q) = %v, brute force %v", label, tm, got, want)
			}
			// DF stays a corpus-wide descriptor, deliberately unfiltered.
			if got, wantDF := filtered.DF(ctx, tm), plain.DF(ctx, tm); got != wantDF {
				t.Fatalf("%s: DF(%q) = %d, want unfiltered %d", label, tm, got, wantDF)
			}
		}
		for i := 1; i < len(terms); i++ {
			pair := []string{terms[i-1], terms[i]}
			want := bruteFilter(f, truth, plain.And(ctx, pair...))
			if got := filtered.And(ctx, pair...); !sameDocs(got, want) {
				t.Fatalf("%s: And(%v) = %v, brute force %v", label, pair, got, want)
			}
			wantOr := bruteFilter(f, truth, plain.Or(ctx, pair...))
			if got := filtered.Or(ctx, pair...); !sameDocs(got, wantOr) {
				t.Fatalf("%s: Or(%v) = %v, brute force %v", label, pair, got, wantOr)
			}
		}
		for c := 0; c < srv.NumThemes(); c++ {
			want := bruteFilter(f, truth, plain.ThemeDocs(ctx, c))
			if got := filtered.ThemeDocs(ctx, c); !sameDocs(got, want) {
				t.Fatalf("%s: ThemeDocs(%d) = %v, brute force %v", label, c, got, want)
			}
		}
		// Similar: the filtered ranking is the unfiltered ranking with
		// non-matching hits removed, order and scores intact.
		for _, d := range docs {
			all, err := plain.Similar(ctx, d, 50)
			if err != nil {
				t.Fatal(err)
			}
			got, err := filtered.Similar(ctx, d, 50)
			if err != nil {
				t.Fatal(err)
			}
			kept := all[:0:0]
			for _, h := range all {
				if metaMatches(f, truth[h.Doc]) {
					kept = append(kept, h)
				}
			}
			if !(len(got) == 0 && len(kept) == 0) && !reflect.DeepEqual(got, kept) {
				t.Fatalf("%s: Similar(%d) = %v, brute force %v", label, d, got, kept)
			}
		}
		want := bruteFilter(f, truth, plain.Near(ctx, 0, 0, 1e9))
		if got := filtered.Near(ctx, 0, 0, 1e9); !sameDocs(got, want) {
			t.Fatalf("%s: Near(all) = %v, brute force %v", label, got, want)
		}
	}
}

// sameDocs compares two doc lists treating nil and empty as equal — a
// filtered answer that removed everything may be nil where the brute-force
// list is an allocated empty slice.
func sameDocs(a, b []int64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestFilterEquivalenceAcrossModes requires byte-identical filtered answers
// from every store mode: heap-decoded, mapped INSPSTORE4, legacy gob, and a
// 3-shard router over the mapped store.
func TestFilterEquivalenceAcrossModes(t *testing.T) {
	base := batchStore(t, ingestSources(), 3)
	stampMetaT(t, base)
	path := saveV4T(t, base, "meta-eq.store")

	mappedStore, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heapStore, err := LoadStoreFileHeap(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mappedStore.Mapped() {
		t.Fatal("v4 store did not map")
	}
	legacyStore := mustLoadHeapLegacyTwin(t, base)

	shardSrc, err := LoadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{TileMaxZoom: 4, PostingCacheEntries: 8}
	ref := serviceOf(t, heapStore, 1, cfg)
	others := map[string]Service{
		"mapped":     serviceOf(t, mappedStore, 1, cfg),
		"legacy-gob": serviceOf(t, legacyStore, 1, cfg),
		"sharded-3":  serviceOf(t, shardSrc, 3, cfg),
	}

	terms := ref.TopTerms(context.Background(), 8)
	docs := ref.SampleDocs(context.Background(), 4)
	themes := ref.NumThemes()
	for fi, f := range probeFilters() {
		want := ref.NewQuerier()
		if err := want.SetFilter(f); err != nil {
			t.Fatal(err)
		}
		for mode, svc := range others {
			got := svc.NewQuerier()
			if err := got.SetFilter(f); err != nil {
				t.Fatal(err)
			}
			compareQueriers(t, fmt.Sprintf("filter %d vs %s", fi, mode), got, want, terms, docs, themes)
		}
	}
}

// TestTileHistogramsIncrementalMatchRebuild pins the faceted tile contract:
// the per-tile time histograms and facet counts an incrementally maintained
// pyramid carries stay byte-identical to an offline rebuild across seal,
// compact and rebase, with concurrent faceted ingest under the race
// detector, and a filtered tile equals the tile of a filtered pyramid.
func TestTileHistogramsIncrementalMatchRebuild(t *testing.T) {
	sources := ingestSources()
	st := batchStore(t, sources, 3).Fork()
	truth := stampMetaT(t, st)
	texts := recordTexts(t, sources)
	st.SetLivePolicy(LivePolicy{SealDocs: 5, CompactSegments: 3, ManualCompaction: true})
	cfg := Config{TileMaxZoom: 4}
	srv := newServerT(t, st, cfg)
	tc := srv.cfg.tileConfig()
	sess := srv.NewSession()
	ctx := context.Background()
	filter := Filter{Facets: []string{"source=s1"}}

	check := func(label string) {
		t.Helper()
		sess.Near(ctx, 0, 0, 0.5) // patch the pyramid forward
		inc := pyramidBytes(st, tc)
		resetPyramid(st)
		if rebuilt := pyramidBytes(st, tc); !reflect.DeepEqual(inc, rebuilt) {
			t.Fatalf("%s: incremental pyramid differs from rebuild", label)
		}

		// The root tile's histograms must agree with the ground truth over
		// every live document.
		root, err := sess.Tile(ctx, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantTimes := map[int64]int64{}
		fc := map[string]int64{}
		liveDocs := sess.Near(ctx, 0, 0, 1e9)
		for _, d := range liveDocs {
			row := truth[d]
			if row.ts != 0 {
				wantTimes[tiles.TimeBucket(row.ts)]++
			}
			for _, s := range row.facets {
				fc[s]++
			}
		}
		gotTimes := map[int64]int64{}
		for _, b := range root.Times {
			gotTimes[b.Bucket] = b.Docs
		}
		if !reflect.DeepEqual(wantTimes, gotTimes) {
			t.Fatalf("%s: root time histogram %v, ground truth %v", label, gotTimes, wantTimes)
		}
		keys := make([]string, 0, len(fc))
		for k := range fc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		wantFacets := make([]tiles.FacetCount, len(keys))
		for i, k := range keys {
			wantFacets[i] = tiles.FacetCount{Facet: k, Docs: fc[k]}
		}
		if !(len(root.Facets) == 0 && len(wantFacets) == 0) && !reflect.DeepEqual(root.Facets, wantFacets) {
			t.Fatalf("%s: root facet counts %v, ground truth %v", label, root.Facets, wantFacets)
		}

		// A filtered tile carries exactly the matching documents' aggregates.
		fs := srv.NewSession()
		if err := fs.SetFilter(filter); err != nil {
			t.Fatal(err)
		}
		froot, err := fs.Tile(ctx, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wantDocs int64
		for _, d := range liveDocs {
			if metaMatches(filter, truth[d]) {
				wantDocs++
			}
		}
		if froot.Docs != wantDocs {
			t.Fatalf("%s: filtered root tile has %d docs, ground truth %d", label, froot.Docs, wantDocs)
		}
	}

	check("pristine")

	// Faceted live ingest races tile reads; the race detector is the
	// assertion mid-flight, equality after the dust settles.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := srv.NewSession()
		_ = q.SetFilter(filter)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = q.Tile(ctx, 0, 0, 0)
		}
	}()
	var added []int64
	for i := 0; i < 12; i++ {
		ts := int64(2000 + i*10)
		facets := []string{fmt.Sprintf("source=s%d", i%3), "live=yes"}
		doc, err := sess.AddDoc(ctx, texts[i%len(texts)], ts, facets)
		if err != nil {
			t.Fatal(err)
		}
		truth[doc] = docMetaRow{ts: ts, facets: []string{"live=yes", fmt.Sprintf("source=s%d", i%3)}}
		added = append(added, doc)
	}
	close(stop)
	wg.Wait()
	if _, err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	check("sealed")

	if err := sess.Delete(ctx, added[3]); err != nil {
		t.Fatal(err)
	}
	delete(truth, added[3])
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.WaitCompaction()
	check("compacted")

	if err := st.Rebase(); err != nil {
		t.Fatal(err)
	}
	check("rebased")

	// Rebase folded segment metadata into the base vectors; the rows must
	// have survived verbatim.
	for _, d := range added {
		if d == added[3] {
			continue
		}
		row := truth[d]
		ts, facets := st.baseMetaOf(d)
		if ts != row.ts || !reflect.DeepEqual(facets, row.facets) {
			t.Fatalf("rebase lost doc %d metadata: (%d, %v), want (%d, %v)", d, ts, facets, row.ts, row.facets)
		}
	}
}
