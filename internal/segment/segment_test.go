package segment

import (
	"bytes"
	"reflect"
	"testing"
)

// buildSeg seals a delta holding the given docs, each with one posting for
// every term in its terms list.
func buildSeg(t *testing.T, vocab int64, sigM int, docs map[int64]map[int64]int64, sigs map[int64][]float64) *Segment {
	t.Helper()
	d := NewDelta(vocab, sigM)
	for doc, counts := range docs {
		if err := d.Add(doc, counts, sigs[doc]); err != nil {
			t.Fatal(err)
		}
	}
	seg, err := d.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.Validate(); err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestDeltaSealSortsAndIndexes(t *testing.T) {
	sig7 := []float64{0.5, 0.5}
	seg := buildSeg(t, 4, 2,
		map[int64]map[int64]int64{
			9: {0: 2, 3: 1},
			7: {0: 1},
			8: {2: 5},
		},
		map[int64][]float64{7: sig7},
	)
	if !reflect.DeepEqual(seg.Docs, []int64{7, 8, 9}) {
		t.Fatalf("docs = %v", seg.Docs)
	}
	if seg.MaxDoc() != 9 || seg.NumDocs() != 3 {
		t.Fatalf("bounds: max %d num %d", seg.MaxDoc(), seg.NumDocs())
	}
	docs, freqs := seg.Posts.Postings(0)
	if !reflect.DeepEqual(docs, []int64{7, 9}) || !reflect.DeepEqual(freqs, []int64{1, 2}) {
		t.Fatalf("term 0 postings %v %v", docs, freqs)
	}
	if seg.Posts.Count[1] != 0 || seg.Posts.Count[2] != 1 || seg.Posts.Count[3] != 1 {
		t.Fatalf("counts %v", seg.Posts.Count)
	}
	if !seg.Contains(8) || seg.Contains(6) {
		t.Fatal("contains wrong")
	}
	if v, ok := seg.SigVec(7); !ok || !reflect.DeepEqual(v, sig7) {
		t.Fatalf("sig of 7: %v %v", v, ok)
	}
	if v, ok := seg.SigVec(8); !ok || v != nil {
		t.Fatalf("null sig of 8: %v %v", v, ok)
	}
	if _, ok := seg.SigVec(3); ok {
		t.Fatal("phantom signature")
	}
	if seg.Postings() != 4 {
		t.Fatalf("postings %d", seg.Postings())
	}
}

func TestDeltaRejects(t *testing.T) {
	d := NewDelta(4, 2)
	if err := d.Add(-1, nil, nil); err == nil {
		t.Fatal("negative doc accepted")
	}
	if err := d.Add(1, map[int64]int64{5: 1}, nil); err == nil {
		t.Fatal("out-of-vocab term accepted")
	}
	if err := d.Add(1, map[int64]int64{0: 0}, nil); err == nil {
		t.Fatal("zero count accepted")
	}
	if err := d.Add(1, nil, []float64{1}); err == nil {
		t.Fatal("wrong-dim signature accepted")
	}
	if err := d.Add(1, map[int64]int64{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, map[int64]int64{0: 1}, nil); err == nil {
		t.Fatal("duplicate doc accepted")
	}
}

func TestMergeDropsTombstones(t *testing.T) {
	a := buildSeg(t, 3, 0, map[int64]map[int64]int64{
		10: {0: 1, 1: 2},
		12: {1: 1},
	}, nil)
	b := buildSeg(t, 3, 0, map[int64]map[int64]int64{
		11: {0: 3},
		13: {2: 1},
	}, nil)
	m, err := Merge([]*Segment{a, b}, func(d int64) bool { return d == 12 })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Docs, []int64{10, 11, 13}) {
		t.Fatalf("merged docs %v", m.Docs)
	}
	docs, freqs := m.Posts.Postings(0)
	if !reflect.DeepEqual(docs, []int64{10, 11}) || !reflect.DeepEqual(freqs, []int64{1, 3}) {
		t.Fatalf("merged term 0: %v %v", docs, freqs)
	}
	if docs, _ := m.Posts.Postings(1); !reflect.DeepEqual(docs, []int64{10}) {
		t.Fatalf("tombstoned posting survived: %v", docs)
	}
	if _, err := Merge(nil, nil); err == nil {
		t.Fatal("empty merge accepted")
	}
}

func TestSegmentSaveLoadRoundTrip(t *testing.T) {
	seg := buildSeg(t, 3, 1, map[int64]map[int64]int64{
		5: {0: 1, 2: 2},
		6: {1: 1},
	}, map[int64][]float64{5: {1}})
	var buf bytes.Buffer
	if err := seg.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Docs, seg.Docs) || !reflect.DeepEqual(back.SigVecs, seg.SigVecs) {
		t.Fatal("round trip drifted")
	}
	d1, f1 := seg.Posts.Postings(0)
	d2, f2 := back.Posts.Postings(0)
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(f1, f2) {
		t.Fatal("postings drifted")
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage loaded")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	seg := buildSeg(t, 2, 0, map[int64]map[int64]int64{1: {0: 1}}, nil)
	bad := &Segment{Docs: []int64{2, 1}, SigVecs: [][]float64{nil, nil}, Posts: seg.Posts}
	if err := bad.Validate(); err == nil {
		t.Fatal("unsorted docs accepted")
	}
	bad2 := &Segment{Docs: []int64{3}, SigVecs: [][]float64{nil}, Posts: seg.Posts}
	if err := bad2.Validate(); err == nil {
		t.Fatal("posting outside segment accepted")
	}
}
