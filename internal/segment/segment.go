// Package segment implements the LSM-style building block of live serving:
// an immutable slice of the inverted index covering the documents ingested
// after a base snapshot was taken. A mutable Delta accumulates added
// documents in memory; Seal freezes it into a block-compressed Segment
// (postings.Writer emits the same codec the base store uses, so a segment's
// per-term Count vector doubles as its DF summary); Merge k-way-merges small
// segments into larger ones, dropping tombstoned documents — the compaction
// step that keeps the segment count bounded under sustained ingestion.
//
// Segments share the producing store's dense vocabulary: a term absent from
// the vocabulary cannot be ingested (the serving layers drop it), so every
// segment addresses terms [0, NumTerms) like the base. Each document lives in
// exactly one segment — a document's postings are never split — which is what
// lets boolean queries intersect per segment and union the results.
package segment

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"

	"inspire/internal/postings"
	"inspire/internal/storefile"
)

// Segment is one immutable sealed slice of a live store. All exported fields
// are gob-persisted and must be treated as read-only; every method is safe
// for concurrent use.
type Segment struct {
	// Docs lists the document IDs the segment covers, ascending.
	Docs []int64
	// Posts holds the segment's block-compressed postings over the full
	// shared vocabulary; Posts.Count is the segment's per-term DF summary.
	Posts *postings.Store
	// SigM is the signature dimensionality; SigVecs[i] is Docs[i]'s
	// knowledge signature (nil = null signature).
	SigM    int
	SigVecs [][]float64
	// Times[i] is Docs[i]'s ingest timestamp (unix seconds; 0 = none). A nil
	// vector — every pre-metadata segment file decodes to one — means no
	// document in the segment is timestamped.
	Times []int64
	// Facets[i] is Docs[i]'s facet strings ("key=value", strictly
	// ascending); nil rows and a nil outer slice mean no facets.
	Facets [][]string
}

// Meta returns doc's ingest timestamp and facet strings; ok is false for a
// document outside the segment. The returned slice aliases segment state and
// must not be mutated.
func (s *Segment) Meta(doc int64) (ts int64, facets []string, ok bool) {
	i := sort.Search(len(s.Docs), func(i int) bool { return s.Docs[i] >= doc })
	if i >= len(s.Docs) || s.Docs[i] != doc {
		return 0, nil, false
	}
	if s.Times != nil {
		ts = s.Times[i]
	}
	if s.Facets != nil {
		facets = s.Facets[i]
	}
	return ts, facets, true
}

// NumDocs returns the number of documents the segment covers.
func (s *Segment) NumDocs() int64 { return int64(len(s.Docs)) }

// MaxDoc returns the largest document ID in the segment (-1 when empty).
func (s *Segment) MaxDoc() int64 {
	if len(s.Docs) == 0 {
		return -1
	}
	return s.Docs[len(s.Docs)-1]
}

// Postings returns the total posting count across all terms.
func (s *Segment) Postings() int64 {
	var n int64
	for _, c := range s.Posts.Count {
		n += c
	}
	return n
}

// ShipBytes returns the byte volume shipping this segment to a replica
// moves: the block-compressed posting store, the document table, and the
// signature vectors. The replica catch-up path charges it.
func (s *Segment) ShipBytes() int64 {
	n := s.Posts.SizeBytes() + int64(8*len(s.Docs)) + int64(8*len(s.Times))
	for _, v := range s.SigVecs {
		n += int64(8 * len(v))
	}
	for _, fs := range s.Facets {
		for _, f := range fs {
			n += int64(len(f))
		}
	}
	return n
}

// Contains reports whether the segment covers doc.
func (s *Segment) Contains(doc int64) bool {
	i := sort.Search(len(s.Docs), func(i int) bool { return s.Docs[i] >= doc })
	return i < len(s.Docs) && s.Docs[i] == doc
}

// SigVec returns doc's signature vector: (nil, true) for a present null
// signature, (nil, false) for a document outside the segment.
func (s *Segment) SigVec(doc int64) ([]float64, bool) {
	i := sort.Search(len(s.Docs), func(i int) bool { return s.Docs[i] >= doc })
	if i >= len(s.Docs) || s.Docs[i] != doc {
		return nil, false
	}
	return s.SigVecs[i], true
}

// Validate checks the structural invariants a loaded segment must satisfy.
func (s *Segment) Validate() error {
	switch {
	case s.Posts == nil:
		return fmt.Errorf("segment: no postings")
	case len(s.SigVecs) != len(s.Docs):
		return fmt.Errorf("segment: %d signatures for %d docs", len(s.SigVecs), len(s.Docs))
	case s.SigM < 0:
		return fmt.Errorf("segment: negative signature dimensionality")
	case s.Times != nil && len(s.Times) != len(s.Docs):
		return fmt.Errorf("segment: %d timestamps for %d docs", len(s.Times), len(s.Docs))
	case s.Facets != nil && len(s.Facets) != len(s.Docs):
		return fmt.Errorf("segment: %d facet rows for %d docs", len(s.Facets), len(s.Docs))
	}
	for i, fs := range s.Facets {
		for j, f := range fs {
			if f == "" || (j > 0 && f <= fs[j-1]) {
				return fmt.Errorf("segment: doc %d facets not strictly ascending", s.Docs[i])
			}
		}
	}
	for i, d := range s.Docs {
		if d < 0 {
			return fmt.Errorf("segment: negative doc ID %d", d)
		}
		if i > 0 && d <= s.Docs[i-1] {
			return fmt.Errorf("segment: doc IDs not strictly increasing at %d", i)
		}
		if v := s.SigVecs[i]; v != nil && len(v) != s.SigM {
			return fmt.Errorf("segment: doc %d signature has dim %d, want %d", d, len(v), s.SigM)
		}
	}
	if err := s.Posts.Validate(); err != nil {
		return err
	}
	// Every posting must name a covered document.
	covered := make(map[int64]bool, len(s.Docs))
	for _, d := range s.Docs {
		covered[d] = true
	}
	for t := int64(0); t < s.Posts.NumTerms; t++ {
		docs, _ := s.Posts.Postings(t)
		for _, d := range docs {
			if !covered[d] {
				return fmt.Errorf("segment: term %d posts doc %d outside the segment", t, d)
			}
		}
	}
	return nil
}

// Delta accumulates added documents in memory until sealed. It is a plain
// data structure: callers synchronize access (the serving layer guards it
// with the store's ingest mutex).
type Delta struct {
	vocab int64
	sigM  int

	docs   []int64
	seen   map[int64]bool
	sigs   [][]float64
	times  []int64
	facets [][]string

	termDocs  map[int64][]int64
	termFreqs map[int64][]int64
	postings  int64
}

// NewDelta opens a delta over a vocabulary of the given size, producing
// signatures of dimensionality sigM.
func NewDelta(vocab int64, sigM int) *Delta {
	return &Delta{
		vocab:     vocab,
		sigM:      sigM,
		seen:      make(map[int64]bool),
		termDocs:  make(map[int64][]int64),
		termFreqs: make(map[int64][]int64),
	}
}

// NumDocs returns the number of buffered documents.
func (d *Delta) NumDocs() int { return len(d.docs) }

// Postings returns the number of buffered (doc, term) postings.
func (d *Delta) Postings() int64 { return d.postings }

// Contains reports whether doc is buffered.
func (d *Delta) Contains(doc int64) bool { return d.seen[doc] }

// Add buffers one document: its in-document term counts (dense term ID ->
// frequency; every key must be within the vocabulary) and its signature
// (nil = null). Documents may arrive in any ID order — Seal sorts — but each
// ID at most once.
func (d *Delta) Add(doc int64, counts map[int64]int64, sig []float64) error {
	return d.AddMeta(doc, counts, sig, 0, nil)
}

// AddMeta is Add carrying the document's metadata: its ingest timestamp
// (unix seconds; 0 = none) and facet strings, which must be strictly
// ascending. The facets slice is retained; callers must not mutate it.
func (d *Delta) AddMeta(doc int64, counts map[int64]int64, sig []float64, ts int64, facets []string) error {
	switch {
	case doc < 0:
		return fmt.Errorf("segment: negative doc ID %d", doc)
	case d.seen[doc]:
		return fmt.Errorf("segment: doc %d already buffered", doc)
	case sig != nil && len(sig) != d.sigM:
		return fmt.Errorf("segment: doc %d signature has dim %d, want %d", doc, len(sig), d.sigM)
	}
	for i, f := range facets {
		if f == "" || (i > 0 && f <= facets[i-1]) {
			return fmt.Errorf("segment: doc %d facets not strictly ascending", doc)
		}
	}
	for t, c := range counts {
		if t < 0 || t >= d.vocab {
			return fmt.Errorf("segment: doc %d counts term %d outside vocabulary %d", doc, t, d.vocab)
		}
		if c <= 0 {
			return fmt.Errorf("segment: doc %d has count %d for term %d", doc, c, t)
		}
	}
	if len(facets) == 0 {
		facets = nil
	}
	d.seen[doc] = true
	d.docs = append(d.docs, doc)
	d.sigs = append(d.sigs, sig)
	d.times = append(d.times, ts)
	d.facets = append(d.facets, facets)
	for t, c := range counts {
		d.termDocs[t] = append(d.termDocs[t], doc)
		d.termFreqs[t] = append(d.termFreqs[t], c)
		d.postings++
	}
	return nil
}

// Seal freezes the delta into an immutable block-compressed segment. The
// delta must not be used afterwards.
func (d *Delta) Seal() (*Segment, error) {
	// Sort documents ascending and remember each doc's rank so the per-term
	// lists can be reordered to match.
	order := make([]int, len(d.docs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d.docs[order[a]] < d.docs[order[b]] })
	docs := make([]int64, len(order))
	sigs := make([][]float64, len(order))
	times := make([]int64, len(order))
	facets := make([][]string, len(order))
	anyMeta := false
	for r, i := range order {
		docs[r] = d.docs[i]
		sigs[r] = d.sigs[i]
		times[r] = d.times[i]
		facets[r] = d.facets[i]
		if times[r] != 0 || facets[r] != nil {
			anyMeta = true
		}
	}
	if !anyMeta {
		// Metadata-free segments stay byte-identical to the pre-metadata
		// format: gob omits nil vectors entirely.
		times, facets = nil, nil
	}

	w := postings.NewWriter(d.postings)
	type pair struct{ doc, freq int64 }
	var scratch []pair
	for t := int64(0); t < d.vocab; t++ {
		td, tf := d.termDocs[t], d.termFreqs[t]
		if len(td) > 1 {
			scratch = scratch[:0]
			for i := range td {
				scratch = append(scratch, pair{td[i], tf[i]})
			}
			sort.Slice(scratch, func(a, b int) bool { return scratch[a].doc < scratch[b].doc })
			for i, p := range scratch {
				td[i], tf[i] = p.doc, p.freq
			}
		}
		if err := w.Append(td, tf); err != nil {
			return nil, fmt.Errorf("segment: seal: %w", err)
		}
	}
	seg := &Segment{Docs: docs, Posts: w.Finish(), SigM: d.sigM, SigVecs: sigs, Times: times, Facets: facets}
	*d = Delta{}
	return seg, nil
}

// Merge k-way merges segments into one, dropping every document dead reports
// as tombstoned. All segments must share one vocabulary and signature
// dimensionality, and cover pairwise-disjoint documents. dead may be nil.
func Merge(segs []*Segment, dead func(doc int64) bool) (*Segment, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("segment: merge of no segments")
	}
	if dead == nil {
		dead = func(int64) bool { return false }
	}
	vocab := segs[0].Posts.NumTerms
	sigM := segs[0].SigM
	var total int64
	for _, s := range segs {
		if s.Posts.NumTerms != vocab {
			return nil, fmt.Errorf("segment: merge vocabulary mismatch (%d vs %d)", s.Posts.NumTerms, vocab)
		}
		if s.SigM != sigM {
			return nil, fmt.Errorf("segment: merge signature dim mismatch (%d vs %d)", s.SigM, sigM)
		}
		total += s.Postings()
	}

	// Merge the document lists (each ascending), their signatures and their
	// metadata.
	out := &Segment{SigM: sigM}
	pos := make([]int, len(segs))
	anyMeta := false
	for {
		best := -1
		for i, s := range segs {
			if pos[i] >= len(s.Docs) {
				continue
			}
			if best < 0 || s.Docs[pos[i]] < segs[best].Docs[pos[best]] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		d := segs[best].Docs[pos[best]]
		if !dead(d) {
			out.Docs = append(out.Docs, d)
			out.SigVecs = append(out.SigVecs, segs[best].SigVecs[pos[best]])
			var ts int64
			var fs []string
			if segs[best].Times != nil {
				ts = segs[best].Times[pos[best]]
			}
			if segs[best].Facets != nil {
				fs = segs[best].Facets[pos[best]]
			}
			out.Times = append(out.Times, ts)
			out.Facets = append(out.Facets, fs)
			if ts != 0 || fs != nil {
				anyMeta = true
			}
		}
		pos[best]++
	}
	if !anyMeta {
		out.Times, out.Facets = nil, nil
	}

	// Merge each term's posting lists the same way.
	w := postings.NewWriter(total)
	type cursor struct{ docs, freqs []int64 }
	curs := make([]cursor, len(segs))
	var docs, freqs []int64
	for t := int64(0); t < vocab; t++ {
		docs, freqs = docs[:0], freqs[:0]
		for i, s := range segs {
			if s.Posts.Count[t] == 0 {
				curs[i] = cursor{}
				continue
			}
			d, f := s.Posts.Postings(t)
			curs[i] = cursor{docs: d, freqs: f}
		}
		tpos := make([]int, len(segs))
		for {
			best := -1
			for i := range curs {
				if tpos[i] >= len(curs[i].docs) {
					continue
				}
				if best < 0 || curs[i].docs[tpos[i]] < curs[best].docs[tpos[best]] {
					best = i
				}
			}
			if best < 0 {
				break
			}
			if d := curs[best].docs[tpos[best]]; !dead(d) {
				docs = append(docs, d)
				freqs = append(freqs, curs[best].freqs[tpos[best]])
			}
			tpos[best]++
		}
		if err := w.Append(docs, freqs); err != nil {
			return nil, fmt.Errorf("segment: merge: %w", err)
		}
	}
	out.Posts = w.Finish()
	return out, nil
}

// segMagic heads a persisted segment file.
const segMagic = "INSPSEG1\n"

// Save writes the segment in its persistent format (magic + gob body).
func (s *Segment) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, segMagic); err != nil {
		return err
	}
	if err := gob.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("segment: save: %w", err)
	}
	return bw.Flush()
}

// SaveFile persists the segment to a file atomically: a crash mid-save
// leaves any previous segment file intact.
func (s *Segment) SaveFile(path string) error {
	return storefile.WriteFileAtomic(path, s.Save)
}

// Load reads a segment written by Save and validates it.
func Load(r io.Reader) (*Segment, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("segment: load: %w", err)
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("segment: load: bad magic %q", magic)
	}
	s := &Segment{}
	if err := gob.NewDecoder(br).Decode(s); err != nil {
		return nil, fmt.Errorf("segment: load: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFile reads a persisted segment by path.
func LoadFile(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
