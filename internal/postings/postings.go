// Package postings implements the block-compressed posting-list codec the
// serving layer stores its inverted index in. Doc IDs are delta-coded and
// varint-packed in blocks of BlockSize entries; frequencies are varint-packed
// in parallel blocks. A per-block skip directory (max doc ID + byte bounds of
// every interior block) lets boolean queries rule out whole blocks without
// decoding them, and every block decodes independently — the first doc ID of
// a block is absolute, not a delta from the previous block.
//
// The layout is flat and shared: one doc blob and one freq blob hold every
// term's blocks back to back, and three offset vectors (byte start of each
// term's doc blocks, of its freq blocks, and its slice of the block
// directory) address them. Single-block terms — the long tail of a Zipf
// vocabulary — carry no directory entries at all: their block bounds are the
// term bounds. This is the same compaction that lets one front-end serve
// million-document corpora (cf. Cartolabe, Textiverse): ~2-3 bytes per
// posting against 16 for the flat []int64 pair.
//
// Terms dense enough in their doc-ID span (more than one posting per
// BitmapDensity candidate IDs, at least one full block's worth) use a second
// container: a packed 64-bit-word bitmap instead of varint doc blocks, chosen
// per term by Writer.Append. Boolean kernels then work on whole words —
// dense∧dense is one `&` per 64 candidate docs (AndBitmapsInto), dense∧sparse
// a per-doc bit probe (IntersectInto dispatches) — and the word arrays
// persist as 8-aligned raw sections a mapped store serves in place. See
// bitmap.go.
package postings

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the number of postings per compressed block. 128 keeps a
// decoded block in two cache lines' worth of int64s while making the skip
// directory overhead (24 bytes per interior block) negligible.
const BlockSize = 128

// Store holds the block-compressed posting lists of dense term IDs
// [0, NumTerms). All fields are exported for gob persistence and must be
// treated as immutable; every method is safe for concurrent use.
type Store struct {
	NumTerms int64
	// Count[t] is term t's posting count (its document frequency).
	Count []int64

	// DocBlob and FreqBlob are every term's blocks, back to back in term
	// order. Term t's doc blocks are DocBlob[TermDoc[t]:TermDoc[t+1]] and
	// its freq blocks FreqBlob[TermFreq[t]:TermFreq[t+1]].
	DocBlob  []byte
	FreqBlob []byte
	TermDoc  []int64 // len NumTerms+1
	TermFreq []int64 // len NumTerms+1

	// Skip directory: one entry per interior block (blocks 0..B-2 of every
	// term with B > 1 blocks). Term t's entries are indexes
	// [TermBlk[t], TermBlk[t+1]). The final block of a term needs none: its
	// byte bounds are the term bounds and its max doc is the list's last.
	TermBlk    []int64 // len NumTerms+1
	BlkMax     []int64 // max doc ID of interior block j
	BlkDocEnd  []int64 // absolute byte end of interior block j in DocBlob
	BlkFreqEnd []int64 // absolute byte end of interior block j in FreqBlob

	// Adaptive bitmap containers. All three are nil on block-only stores so
	// files written before this representation read back byte-identically.
	// Term t is bitmap-backed iff len(TermBit) > 0 && TermBit[t+1] >
	// TermBit[t]; its doc IDs are then the set bits of
	// BitWords[TermBit[t]:TermBit[t+1]] offset by BitBase[t] (a multiple of
	// 64), its doc-block and directory spans are empty, and its frequencies
	// are a plain varint run in FreqBlob (no block structure — the bitmap has
	// none to parallel).
	TermBit  []int64  // len NumTerms+1 when present: word offsets into BitWords
	BitBase  []int64  // len NumTerms when present: doc ID of word 0 bit 0
	BitWords []uint64 // packed 64-doc words, back to back in term order
}

// Blocks returns the number of varint blocks of term t — 0 for a
// bitmap-backed term, which has no block structure to skip or decode.
func (s *Store) Blocks(t int64) int64 {
	if s.IsBitmap(t) {
		return 0
	}
	return (s.Count[t] + BlockSize - 1) / BlockSize
}

// TermBytes returns the compressed byte sizes of term t's doc and freq
// containers — what a fetch of the whole list transfers. For a bitmap term
// the doc side is its word array.
func (s *Store) TermBytes(t int64) (docBytes, freqBytes int64) {
	docBytes = s.TermDoc[t+1] - s.TermDoc[t]
	if s.IsBitmap(t) {
		docBytes = 8 * (s.TermBit[t+1] - s.TermBit[t])
	}
	return docBytes, s.TermFreq[t+1] - s.TermFreq[t]
}

// SizeBytes returns the total in-memory footprint of the compressed layout:
// both blobs plus every directory vector. This is the quantity the bench
// figure compares against 16 bytes per posting of the flat layout.
func (s *Store) SizeBytes() int64 {
	ints := len(s.Count) + len(s.TermDoc) + len(s.TermFreq) + len(s.TermBlk) +
		len(s.BlkMax) + len(s.BlkDocEnd) + len(s.BlkFreqEnd) +
		len(s.TermBit) + len(s.BitBase) + len(s.BitWords)
	return int64(len(s.DocBlob)) + int64(len(s.FreqBlob)) + 8*int64(ints)
}

// blockSpan returns the posting count and byte bounds of block j of term t.
func (s *Store) blockSpan(t, j int64) (n int, docLo, docHi, freqLo, freqHi int64) {
	b := s.Blocks(t)
	e := s.TermBlk[t]
	if j == 0 {
		docLo, freqLo = s.TermDoc[t], s.TermFreq[t]
	} else {
		docLo, freqLo = s.BlkDocEnd[e+j-1], s.BlkFreqEnd[e+j-1]
	}
	if j == b-1 {
		docHi, freqHi = s.TermDoc[t+1], s.TermFreq[t+1]
	} else {
		docHi, freqHi = s.BlkDocEnd[e+j], s.BlkFreqEnd[e+j]
	}
	n = BlockSize
	if j == b-1 {
		n = int(s.Count[t] - j*BlockSize)
	}
	return n, docLo, docHi, freqLo, freqHi
}

// decodeDocBlock decodes block j of term t's doc IDs into dst (len >=
// BlockSize) and returns the decoded prefix.
func (s *Store) decodeDocBlock(t, j int64, dst []int64) []int64 {
	n, lo, hi, _, _ := s.blockSpan(t, j)
	buf := s.DocBlob[lo:hi]
	var prev int64
	for i := 0; i < n; i++ {
		v, w := binary.Uvarint(buf)
		if w <= 0 {
			panic(fmt.Sprintf("postings: corrupt doc block (term %d block %d)", t, j))
		}
		buf = buf[w:]
		if i == 0 {
			prev = int64(v)
		} else {
			prev += int64(v)
		}
		dst[i] = prev
	}
	return dst[:n]
}

// Postings decodes term t's full posting list into fresh slices, sorted by
// document ID. Both slices are nil when the term has no postings. A bitmap
// term enumerates its set bits — no varint doc decode happens.
func (s *Store) Postings(t int64) (docs, freqs []int64) {
	n := s.Count[t]
	if n == 0 {
		return nil, nil
	}
	if s.IsBitmap(t) {
		docs = s.BitmapDocsInto(make([]int64, 0, n), t)
		freqs = s.bitmapFreqs(make([]int64, 0, n), t)
		return docs, freqs
	}
	docs = make([]int64, n)
	freqs = make([]int64, n)
	dbuf := s.DocBlob[s.TermDoc[t]:s.TermDoc[t+1]]
	fbuf := s.FreqBlob[s.TermFreq[t]:s.TermFreq[t+1]]
	var prev int64
	for i := int64(0); i < n; i++ {
		v, w := binary.Uvarint(dbuf)
		if w <= 0 {
			panic(fmt.Sprintf("postings: corrupt doc blocks of term %d", t))
		}
		dbuf = dbuf[w:]
		if i%BlockSize == 0 {
			prev = int64(v) // block-leading docs are absolute
		} else {
			prev += int64(v)
		}
		docs[i] = prev
		f, w := binary.Uvarint(fbuf)
		if w <= 0 {
			panic(fmt.Sprintf("postings: corrupt freq blocks of term %d", t))
		}
		fbuf = fbuf[w:]
		freqs[i] = int64(f)
	}
	return docs, freqs
}

// IntersectStats accounts one intersection: how many of the term's blocks
// were decoded, how many the skip directory ruled out, the postings those
// blocks held, and the compressed bytes they occupy (what a modeled fetch
// moves). Bitmap kernels report word-wise work instead: 64-bit word pairs
// ANDed (WordsScanned) and single-doc membership probes (BitProbes) — both
// leave the decode counters at zero because nothing is decoded.
type IntersectStats struct {
	BlocksDecoded   int
	BlocksSkipped   int
	PostingsDecoded int
	BytesDecoded    int64
	WordsScanned    int
	BitProbes       int
}

// Intersect returns acc ∩ postings(t) for an ascending-sorted acc, decoding
// only the blocks whose skip-directory max admits a candidate — blocks the
// directory rules out are never touched. The result is freshly allocated and
// sorted; acc is not mutated.
func (s *Store) Intersect(acc []int64, t int64) ([]int64, IntersectStats) {
	return s.IntersectInto(nil, acc, t)
}

// IntersectInto is Intersect with a caller-owned result buffer: the
// intersection is written over dst[:0] and the (possibly regrown) slice
// returned, so a session can reuse one scratch buffer across queries and keep
// the And hot path allocation-free once the buffer reaches working-set size.
// dst must not alias acc.
func (s *Store) IntersectInto(dst, acc []int64, t int64) ([]int64, IntersectStats) {
	var ist IntersectStats
	n := s.Count[t]
	if n == 0 || len(acc) == 0 {
		ist.BlocksSkipped = int(s.Blocks(t))
		// dst[:0], not nil: the caller keeps its buffer for the next query.
		return dst[:0], ist
	}
	if s.IsBitmap(t) {
		return s.bitmapProbeInto(dst, acc, t)
	}
	b := s.Blocks(t)
	e := s.TermBlk[t]
	out := dst[:0]
	var block [BlockSize]int64
	var cur []int64
	j, loaded, pos := int64(0), int64(-1), 0
	for _, a := range acc {
		// Skip whole blocks whose max doc is below the candidate. The final
		// block has no directory entry; it is never skipped, only reached.
		for j < b-1 && s.BlkMax[e+j] < a {
			j++
		}
		if j != loaded {
			ist.BlocksSkipped += int(j - loaded - 1)
			bn, docLo, docHi, _, _ := s.blockSpan(t, j)
			ist.BlocksDecoded++
			ist.PostingsDecoded += bn
			ist.BytesDecoded += docHi - docLo
			cur = s.decodeDocBlock(t, j, block[:])
			loaded, pos = j, 0
		}
		for pos < len(cur) && cur[pos] < a {
			pos++
		}
		if pos < len(cur) && cur[pos] == a {
			out = append(out, a)
		}
	}
	ist.BlocksSkipped += int(b - loaded - 1) // blocks past the last one decoded
	return out, ist
}

// Split partitions the store by document into n stores with the same dense
// term IDs: posting (doc, freq) pairs of every term are routed to the store
// route(doc) selects. Each output store's Count vector is that shard's
// per-term document-frequency summary — what a scatter-gather router prunes
// fan-out on. Lists are decoded once and re-encoded per shard.
func (s *Store) Split(n int, route func(doc int64) int) ([]*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("postings: split into %d shards", n)
	}
	writers := make([]*Writer, n)
	for i := range writers {
		writers[i] = NewWriter(int64(len(s.DocBlob)) / int64(n))
	}
	partDocs := make([][]int64, n)
	partFreqs := make([][]int64, n)
	for t := int64(0); t < s.NumTerms; t++ {
		for i := range partDocs {
			partDocs[i] = partDocs[i][:0]
			partFreqs[i] = partFreqs[i][:0]
		}
		docs, freqs := s.Postings(t)
		for i, d := range docs {
			r := route(d)
			if r < 0 || r >= n {
				return nil, fmt.Errorf("postings: split routed doc %d to shard %d of %d", d, r, n)
			}
			partDocs[r] = append(partDocs[r], d)
			partFreqs[r] = append(partFreqs[r], freqs[i])
		}
		for i, w := range writers {
			if err := w.Append(partDocs[i], partFreqs[i]); err != nil {
				return nil, err
			}
		}
	}
	out := make([]*Store, n)
	for i, w := range writers {
		out[i] = w.Finish()
	}
	return out, nil
}

// Validate checks the structural invariants of the layout: vector lengths,
// monotone offsets, and directory extents consistent with the block counts.
func (s *Store) Validate() error {
	v := s.NumTerms
	switch {
	case v < 0:
		return fmt.Errorf("postings: negative term count %d", v)
	case int64(len(s.Count)) != v:
		return fmt.Errorf("postings: %d counts for %d terms", len(s.Count), v)
	case int64(len(s.TermDoc)) != v+1 || int64(len(s.TermFreq)) != v+1 || int64(len(s.TermBlk)) != v+1:
		return fmt.Errorf("postings: term directory lengths %d/%d/%d, want %d",
			len(s.TermDoc), len(s.TermFreq), len(s.TermBlk), v+1)
	case len(s.BlkMax) != len(s.BlkDocEnd) || len(s.BlkMax) != len(s.BlkFreqEnd):
		return fmt.Errorf("postings: block directory lengths disagree")
	case s.TermDoc[v] != int64(len(s.DocBlob)) || s.TermFreq[v] != int64(len(s.FreqBlob)):
		return fmt.Errorf("postings: blobs not fully addressed by term directory")
	case s.TermBlk[v] != int64(len(s.BlkMax)):
		return fmt.Errorf("postings: block directory not fully addressed")
	case len(s.TermBit) != 0 && (int64(len(s.TermBit)) != v+1 || int64(len(s.BitBase)) != v):
		return fmt.Errorf("postings: bitmap directory lengths %d/%d, want %d/%d",
			len(s.TermBit), len(s.BitBase), v+1, v)
	case len(s.TermBit) == 0 && len(s.BitWords) != 0:
		return fmt.Errorf("postings: %d bitmap words with no bitmap directory", len(s.BitWords))
	case len(s.TermBit) != 0 && s.TermBit[v] != int64(len(s.BitWords)):
		return fmt.Errorf("postings: bitmap words not fully addressed by directory")
	}
	for t := int64(0); t < v; t++ {
		if s.Count[t] < 0 {
			return fmt.Errorf("postings: term %d has negative count", t)
		}
		if len(s.TermBit) != 0 {
			if s.TermBit[t] > s.TermBit[t+1] {
				return fmt.Errorf("postings: term %d bitmap offsets not monotone", t)
			}
			if err := s.validateBitmap(t); err != nil {
				return err
			}
		}
		if s.TermDoc[t] > s.TermDoc[t+1] || s.TermFreq[t] > s.TermFreq[t+1] {
			return fmt.Errorf("postings: term %d byte offsets not monotone", t)
		}
		interior := s.Blocks(t) - 1
		if interior < 0 {
			interior = 0
		}
		if s.TermBlk[t+1]-s.TermBlk[t] != interior {
			return fmt.Errorf("postings: term %d has %d directory entries, want %d",
				t, s.TermBlk[t+1]-s.TermBlk[t], interior)
		}
		for e := s.TermBlk[t]; e < s.TermBlk[t+1]; e++ {
			if s.BlkDocEnd[e] < s.TermDoc[t] || s.BlkDocEnd[e] > s.TermDoc[t+1] ||
				s.BlkFreqEnd[e] < s.TermFreq[t] || s.BlkFreqEnd[e] > s.TermFreq[t+1] {
				return fmt.Errorf("postings: term %d directory entry %d out of term bounds", t, e)
			}
			if e > s.TermBlk[t] && (s.BlkDocEnd[e] < s.BlkDocEnd[e-1] || s.BlkFreqEnd[e] < s.BlkFreqEnd[e-1] ||
				s.BlkMax[e] <= s.BlkMax[e-1]) {
				return fmt.Errorf("postings: term %d directory not monotone at entry %d", t, e)
			}
		}
	}
	return nil
}

// Writer builds a Store one term at a time, in dense-ID order. The indexing
// layer (invert), segment sealing/merging and the serving snapshot all emit
// containers through it, so the per-term representation choice made here
// propagates everywhere lists are (re)encoded.
type Writer struct {
	st          Store
	forceBlocks bool
}

// ForceBlocks pins every subsequent Append to the varint block container,
// disabling the bitmap density heuristic. Legacy persistence uses it to emit
// stores that builds predating the bitmap container can still load.
func (w *Writer) ForceBlocks() {
	w.forceBlocks = true
}

// NewWriter returns a writer; sizeHint (total postings, 0 if unknown) presizes
// the blobs.
func NewWriter(sizeHint int64) *Writer {
	w := &Writer{st: Store{
		TermDoc:  []int64{0},
		TermFreq: []int64{0},
		TermBlk:  []int64{0},
	}}
	if sizeHint > 0 {
		w.st.DocBlob = make([]byte, 0, 2*sizeHint)
		w.st.FreqBlob = make([]byte, 0, sizeHint)
	}
	return w
}

// Append encodes the next term's posting list. docs must be strictly
// increasing non-negative IDs; freqs parallel and non-negative. An empty list
// appends a term with no postings. Lists at least one block long whose
// density in their doc-ID span clears 1/BitmapDensity are stored as packed
// bitmaps (unless ForceBlocks was called); everything else takes the varint
// block container.
func (w *Writer) Append(docs, freqs []int64) error {
	t := w.st.NumTerms
	if len(docs) != len(freqs) {
		return fmt.Errorf("postings: term %d has %d docs for %d freqs", t, len(docs), len(freqs))
	}
	for i, d := range docs {
		switch {
		case d < 0:
			return fmt.Errorf("postings: term %d doc %d is negative", t, d)
		case i > 0 && d <= docs[i-1]:
			return fmt.Errorf("postings: term %d docs not strictly increasing at %d", t, i)
		case freqs[i] < 0:
			return fmt.Errorf("postings: term %d freq %d is negative", t, freqs[i])
		}
	}
	if !w.forceBlocks && len(docs) >= BlockSize {
		span := docs[len(docs)-1] - docs[0] + 1
		if int64(len(docs))*BitmapDensity > span {
			w.appendBitmap(docs, freqs)
			return nil
		}
	}
	st := &w.st
	blocks := (int64(len(docs)) + BlockSize - 1) / BlockSize
	for j := int64(0); j < blocks; j++ {
		lo := j * BlockSize
		hi := lo + BlockSize
		if hi > int64(len(docs)) {
			hi = int64(len(docs))
		}
		prev := int64(0)
		for i := lo; i < hi; i++ {
			if i == lo {
				st.DocBlob = binary.AppendUvarint(st.DocBlob, uint64(docs[i]))
			} else {
				st.DocBlob = binary.AppendUvarint(st.DocBlob, uint64(docs[i]-prev))
			}
			prev = docs[i]
			st.FreqBlob = binary.AppendUvarint(st.FreqBlob, uint64(freqs[i]))
		}
		if j < blocks-1 { // interior block: record its skip entry
			st.BlkMax = append(st.BlkMax, docs[hi-1])
			st.BlkDocEnd = append(st.BlkDocEnd, int64(len(st.DocBlob)))
			st.BlkFreqEnd = append(st.BlkFreqEnd, int64(len(st.FreqBlob)))
		}
	}
	st.NumTerms++
	st.Count = append(st.Count, int64(len(docs)))
	st.TermDoc = append(st.TermDoc, int64(len(st.DocBlob)))
	st.TermFreq = append(st.TermFreq, int64(len(st.FreqBlob)))
	st.TermBlk = append(st.TermBlk, int64(len(st.BlkMax)))
	if st.TermBit != nil { // a bitmap term exists: keep the directory parallel
		st.TermBit = append(st.TermBit, int64(len(st.BitWords)))
		st.BitBase = append(st.BitBase, 0)
	}
	return nil
}

// Finish returns the completed store. The writer must not be used after.
// A store that ended up all-blocks drops its empty bitmap directory so its
// gob encoding is byte-identical to one written before bitmaps existed.
func (w *Writer) Finish() *Store {
	st := w.st
	w.st = Store{}
	if len(st.BitWords) == 0 {
		st.TermBit, st.BitBase, st.BitWords = nil, nil, nil
	}
	return &st
}
