package postings

import (
	"testing"
)

// buildAllocStore writes one term with enough postings to span several
// blocks, so the intersect exercises the skip directory and block decode.
func buildAllocStore(t testing.TB) *Store {
	t.Helper()
	w := NewWriter(0)
	docs := make([]int64, 0, 5*BlockSize)
	freqs := make([]int64, 0, 5*BlockSize)
	for d := int64(0); d < 5*BlockSize; d++ {
		docs = append(docs, 3*d) // stride 3 so the accumulator misses too
		freqs = append(freqs, 1+d%7)
	}
	if err := w.Append(docs, freqs); err != nil {
		t.Fatal(err)
	}
	return w.Finish()
}

// TestIntersectIntoAllocFree pins the tentpole's postings win: a warm
// block-skipping intersect into a caller-owned buffer performs zero
// allocations. Intersect (the allocating wrapper) must keep costing exactly
// the result slice, no more.
func TestIntersectIntoAllocFree(t *testing.T) {
	s := buildAllocStore(t)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d) // every other posting of the stride-3 list
	}
	// Warm once so dst reaches working-set size.
	dst, _ := s.IntersectInto(nil, acc, 0)
	if len(dst) != len(acc) {
		t.Fatalf("intersect kept %d of %d candidates", len(dst), len(acc))
	}
	got := testing.AllocsPerRun(100, func() {
		dst, _ = s.IntersectInto(dst[:0], acc, 0)
	})
	if got != 0 {
		t.Fatalf("warm IntersectInto allocates %v objects/op, want 0", got)
	}
}

func BenchmarkIntersect(b *testing.B) {
	s := buildAllocStore(b)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Intersect(acc, 0)
	}
}

func BenchmarkIntersectInto(b *testing.B) {
	s := buildAllocStore(b)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d)
	}
	dst, _ := s.IntersectInto(nil, acc, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, _ = s.IntersectInto(dst[:0], acc, 0)
	}
}
