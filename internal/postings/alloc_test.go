package postings

import (
	"testing"
)

// buildAllocStore writes one term with enough postings to span several
// blocks, so the intersect exercises the skip directory and block decode.
func buildAllocStore(t testing.TB) *Store {
	t.Helper()
	w := NewWriter(0)
	docs := make([]int64, 0, 5*BlockSize)
	freqs := make([]int64, 0, 5*BlockSize)
	for d := int64(0); d < 5*BlockSize; d++ {
		docs = append(docs, 3*d) // stride 3 so the accumulator misses too
		freqs = append(freqs, 1+d%7)
	}
	if err := w.Append(docs, freqs); err != nil {
		t.Fatal(err)
	}
	return w.Finish()
}

// TestIntersectIntoAllocFree pins the tentpole's postings win: a warm
// block-skipping intersect into a caller-owned buffer performs zero
// allocations. Intersect (the allocating wrapper) must keep costing exactly
// the result slice, no more.
func TestIntersectIntoAllocFree(t *testing.T) {
	s := buildAllocStore(t)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d) // every other posting of the stride-3 list
	}
	// Warm once so dst reaches working-set size.
	dst, _ := s.IntersectInto(nil, acc, 0)
	if len(dst) != len(acc) {
		t.Fatalf("intersect kept %d of %d candidates", len(dst), len(acc))
	}
	got := testing.AllocsPerRun(100, func() {
		dst, _ = s.IntersectInto(dst[:0], acc, 0)
	})
	if got != 0 {
		t.Fatalf("warm IntersectInto allocates %v objects/op, want 0", got)
	}
}

// buildBitmapAllocStore writes two dense overlapping terms so both land in
// the bitmap container.
func buildBitmapAllocStore(t testing.TB) *Store {
	t.Helper()
	w := NewWriter(0)
	for term := int64(0); term < 2; term++ {
		docs := make([]int64, 0, 8*BlockSize)
		freqs := make([]int64, 0, 8*BlockSize)
		for d := int64(0); d < 8*BlockSize; d++ {
			docs = append(docs, term+2*d) // stride 2, offset by term: half overlap
			freqs = append(freqs, 1)
		}
		if err := w.Append(docs, freqs); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Finish()
	if !st.IsBitmap(0) || !st.IsBitmap(1) {
		t.Fatal("alloc fixture terms not bitmaps")
	}
	return st
}

// TestBitmapKernelsAllocFree pins the dense kernels at zero allocations
// warm: dense∧dense (AndBitmapsInto), dense∧sparse (the probe dispatch in
// IntersectInto), dense∨dense (OrBitmapsInto) and full enumeration
// (BitmapDocsInto) all run entirely in caller-owned buffers.
func TestBitmapKernelsAllocFree(t *testing.T) {
	s := buildBitmapAllocStore(t)
	acc := make([]int64, 0, BlockSize)
	for d := int64(0); d < BlockSize; d++ {
		acc = append(acc, 4*d)
	}

	dst, _ := s.AndBitmapsInto(nil, 0, 1)
	if got := testing.AllocsPerRun(100, func() {
		dst, _ = s.AndBitmapsInto(dst[:0], 0, 1)
	}); got != 0 {
		t.Fatalf("warm AndBitmapsInto allocates %v objects/op, want 0", got)
	}

	dst, _ = s.IntersectInto(dst[:0], acc, 0)
	if got := testing.AllocsPerRun(100, func() {
		dst, _ = s.IntersectInto(dst[:0], acc, 0)
	}); got != 0 {
		t.Fatalf("warm bitmap probe allocates %v objects/op, want 0", got)
	}

	dst, _ = s.OrBitmapsInto(dst[:0], 0, 1)
	if got := testing.AllocsPerRun(100, func() {
		dst, _ = s.OrBitmapsInto(dst[:0], 0, 1)
	}); got != 0 {
		t.Fatalf("warm OrBitmapsInto allocates %v objects/op, want 0", got)
	}

	dst = s.BitmapDocsInto(dst[:0], 0)
	if got := testing.AllocsPerRun(100, func() {
		dst = s.BitmapDocsInto(dst[:0], 0)
	}); got != 0 {
		t.Fatalf("warm BitmapDocsInto allocates %v objects/op, want 0", got)
	}
}

func BenchmarkIntersect(b *testing.B) {
	s := buildAllocStore(b)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Intersect(acc, 0)
	}
}

func BenchmarkIntersectInto(b *testing.B) {
	s := buildAllocStore(b)
	acc := make([]int64, 0, 2*BlockSize)
	for d := int64(0); d < 2*BlockSize; d++ {
		acc = append(acc, 6*d)
	}
	dst, _ := s.IntersectInto(nil, acc, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, _ = s.IntersectInto(dst[:0], acc, 0)
	}
}

// BenchmarkDenseAndBitmap vs BenchmarkDenseAndBlocks is the kernel-level
// version of the wall harness's dense_and_speedup: the same two dense lists
// intersected word-wise against block-skip decode.
func BenchmarkDenseAndBitmap(b *testing.B) {
	s := buildBitmapAllocStore(b)
	dst, _ := s.AndBitmapsInto(nil, 0, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, _ = s.AndBitmapsInto(dst[:0], 0, 1)
	}
}

func BenchmarkDenseAndBlocks(b *testing.B) {
	s := buildBitmapAllocStore(b)
	docs, _ := s.Postings(0)
	w := NewWriter(0)
	w.ForceBlocks()
	for t := int64(0); t < 2; t++ {
		d, f := s.Postings(t)
		if err := w.Append(d, f); err != nil {
			b.Fatal(err)
		}
	}
	blocks := w.Finish()
	dst, _ := blocks.IntersectInto(nil, docs, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, _ = blocks.IntersectInto(dst[:0], docs, 1)
	}
}
