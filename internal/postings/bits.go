package postings

import "math/bits"

// Bits is a caller-built packed doc-ID set sharing the bitmap containers'
// layout: a word-aligned base and 64 IDs per uint64 word. The serving layer
// builds one per (epoch, filter) for dense metadata selections, so filtered
// boolean queries run the same word-wise kernels the dense posting
// containers use instead of a per-document comparison loop.
type Bits struct {
	// Base is the doc ID of word 0, bit 0; a multiple of 64 so the word grid
	// lines up with the bitmap posting containers with no shifting.
	Base int64
	// Words holds the packed membership bits.
	Words []uint64
}

// NewBits returns an empty set able to hold doc IDs in [lo, hi).
func NewBits(lo, hi int64) *Bits {
	if hi < lo {
		hi = lo
	}
	base := lo &^ 63
	return &Bits{Base: base, Words: make([]uint64, (hi-base+63)>>6)}
}

// Set adds doc to the set. doc must be within the range the set was built
// for.
func (b *Bits) Set(doc int64) {
	off := doc - b.Base
	b.Words[off>>6] |= 1 << uint(off&63)
}

// Contains reports whether doc is in the set — one word probe.
func (b *Bits) Contains(doc int64) bool {
	off := doc - b.Base
	if off < 0 || off>>6 >= int64(len(b.Words)) {
		return false
	}
	return b.Words[off>>6]>>(uint(off)&63)&1 != 0
}

// Len returns the number of set bits.
func (b *Bits) Len() int64 {
	var n int64
	for _, w := range b.Words {
		n += int64(bits.OnesCount64(w))
	}
	return n
}

// FilterInto appends the members of docs (ascending) that are in the set
// over dst[:0] — the dense membership filter, one bit probe per candidate.
func (b *Bits) FilterInto(dst, docs []int64) ([]int64, IntersectStats) {
	var ist IntersectStats
	end := b.Base + int64(len(b.Words))<<6
	out := dst[:0]
	ist.BitProbes = len(docs)
	for _, d := range docs {
		if d < b.Base || d >= end {
			continue
		}
		off := d - b.Base
		if b.Words[off>>6]>>(uint(off)&63)&1 != 0 {
			out = append(out, d)
		}
	}
	return out, ist
}

// AndBitsInto intersects bitmap term t with the set word-wise into dst[:0]:
// one AND per 64 candidate doc IDs across the overlap of the two spans, zero
// decode — the dense∧dense kernel with a caller-built operand. t must be a
// bitmap term. Both bases are multiples of 64, so the grids align.
func (s *Store) AndBitsInto(dst []int64, t int64, b *Bits) ([]int64, IntersectStats) {
	var ist IntersectStats
	wt, baseT := s.bitmapRange(t)
	lo, hi := baseT, baseT+int64(len(wt))<<6
	if b.Base > lo {
		lo = b.Base
	}
	if end := b.Base + int64(len(b.Words))<<6; end < hi {
		hi = end
	}
	out := dst[:0]
	for w0 := lo; w0 < hi; w0 += 64 {
		w := wt[(w0-baseT)>>6] & b.Words[(w0-b.Base)>>6]
		ist.WordsScanned++
		for w != 0 {
			out = append(out, w0+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out, ist
}
