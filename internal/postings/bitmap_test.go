package postings

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// genDense builds a sorted list of n docs starting near base with gaps of
// 1..maxGap — dense enough for the bitmap container when maxGap is small.
func genDense(rng *rand.Rand, base int64, n int, maxGap int64) (docs, freqs []int64) {
	docs = make([]int64, n)
	freqs = make([]int64, n)
	cur := base
	for i := 0; i < n; i++ {
		cur += 1 + rng.Int63n(maxGap)
		docs[i] = cur
		freqs[i] = 1 + rng.Int63n(9)
	}
	return docs, freqs
}

// TestWriterPicksContainers pins the density heuristic: short or sparse
// lists stay blocks, long dense lists become bitmaps, and ForceBlocks
// overrides the choice.
func TestWriterPicksContainers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense, df := genDense(rng, 1000, 4*BlockSize, 4) // ~1/2.5 density
	sparse, sf := genDense(rng, 0, 4*BlockSize, 100) // ~1/50 density
	short, shf := genDense(rng, 0, BlockSize-1, 1)   // dense but under a block
	st := buildStoreFrom(t, [][2][]int64{{dense, df}, {sparse, sf}, {short, shf}, {nil, nil}})

	if !st.IsBitmap(0) || !st.HasBitmaps() {
		t.Fatal("dense multi-block list not stored as a bitmap")
	}
	for _, tt := range []int64{1, 2, 3} {
		if st.IsBitmap(tt) {
			t.Fatalf("term %d stored as a bitmap", tt)
		}
	}
	if st.Blocks(0) != 0 {
		t.Fatalf("bitmap term reports %d blocks", st.Blocks(0))
	}
	if db, _ := st.TermBytes(0); db != 8*(st.TermBit[1]-st.TermBit[0]) {
		t.Fatalf("bitmap TermBytes = %d", db)
	}

	forced := buildBlockStoreFrom(t, [][2][]int64{{dense, df}})
	if forced.HasBitmaps() || forced.TermBit != nil {
		t.Fatal("ForceBlocks still produced a bitmap")
	}
}

// TestBitmapRoundTrip pins decode equivalence: a bitmap term's Postings,
// BitmapDocsInto and gob round trip all reproduce the input exactly.
func TestBitmapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	docs, freqs := genDense(rng, 777, 3*BlockSize+11, 3)
	st := buildStoreFrom(t, [][2][]int64{{docs, freqs}})
	if !st.IsBitmap(0) {
		t.Fatal("test list not dense enough for a bitmap")
	}

	gd, gf := st.Postings(0)
	if !reflect.DeepEqual(gd, docs) || !reflect.DeepEqual(gf, freqs) {
		t.Fatal("bitmap Postings round trip mismatch")
	}
	if got := st.BitmapDocsInto(nil, 0); !reflect.DeepEqual(got, docs) {
		t.Fatal("BitmapDocsInto mismatch")
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var back Store
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	gd, gf = back.Postings(0)
	if !reflect.DeepEqual(gd, docs) || !reflect.DeepEqual(gf, freqs) {
		t.Fatal("gob round trip mismatch")
	}
}

// TestBitmapKernelsAgreeWithBlocks pins cross-representation answers: the
// word-wise AND/OR kernels and the probe dispatch all agree with the
// block-skip path over the same lists, for overlapping, disjoint and nested
// spans.
func TestBitmapKernelsAgreeWithBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := []struct {
		name         string
		baseA, baseB int64
		nA, nB       int
		gapA, gapB   int64
	}{
		{"overlapping", 0, 300, 4 * BlockSize, 3 * BlockSize, 3, 4},
		{"disjoint", 0, 100000, 2 * BlockSize, 2 * BlockSize, 2, 2},
		{"nested", 0, 128, 8 * BlockSize, BlockSize, 3, 2},
		{"identical", 64, 64, 2 * BlockSize, 2 * BlockSize, 1, 1},
	}
	for _, tc := range cases {
		rngA := rand.New(rand.NewSource(rng.Int63()))
		da, fa := genDense(rngA, tc.baseA, tc.nA, tc.gapA)
		db, fb := genDense(rngA, tc.baseB, tc.nB, tc.gapB)
		st := buildStoreFrom(t, [][2][]int64{{da, fa}, {db, fb}})
		if !st.IsBitmap(0) || !st.IsBitmap(1) {
			t.Fatalf("%s: lists not dense enough for bitmaps", tc.name)
		}
		blocks := buildBlockStoreFrom(t, [][2][]int64{{da, fa}, {db, fb}})

		wantAnd := mergeIntersect(da, db)
		got, ist := st.AndBitmapsInto(nil, 0, 1)
		if !reflect.DeepEqual(append([]int64{}, got...), append([]int64{}, wantAnd...)) {
			t.Fatalf("%s: AndBitmapsInto = %v, want %v", tc.name, got, wantAnd)
		}
		if ist.BlocksDecoded != 0 || ist.PostingsDecoded != 0 || ist.BytesDecoded != 0 {
			t.Fatalf("%s: bitmap AND decoded something: %+v", tc.name, ist)
		}
		if len(wantAnd) > 0 && ist.WordsScanned == 0 {
			t.Fatalf("%s: no words scanned", tc.name)
		}

		// The probe dispatch (dense∧sparse) agrees with the block path.
		probe, pist := st.IntersectInto(nil, da, 1)
		ref, _ := blocks.IntersectInto(nil, da, 1)
		if !reflect.DeepEqual(append([]int64{}, probe...), append([]int64{}, ref...)) {
			t.Fatalf("%s: probe path diverges from block path", tc.name)
		}
		if pist.BitProbes != len(da) || pist.BlocksDecoded != 0 {
			t.Fatalf("%s: probe stats %+v", tc.name, pist)
		}

		wantOr := mergeUnion(da, db)
		gotOr, _ := st.OrBitmapsInto(nil, 0, 1)
		if !reflect.DeepEqual(append([]int64{}, gotOr...), append([]int64{}, wantOr...)) {
			t.Fatalf("%s: OrBitmapsInto = %v, want %v", tc.name, gotOr, wantOr)
		}
	}
}

func mergeUnion(a, b []int64) []int64 {
	out := []int64{}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// TestMixedStoreSplitAndValidate pins that a store mixing both containers
// splits by document into valid shards (Split re-encodes, so each shard
// re-chooses its containers) and that bitmap corruption is caught loudly.
func TestMixedStoreSplitAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dense, df := genDense(rng, 0, 6*BlockSize, 2)
	sparse, sf := genDense(rng, 0, 2*BlockSize, 200)
	st := buildStoreFrom(t, [][2][]int64{{dense, df}, {sparse, sf}})
	if !st.IsBitmap(0) || st.IsBitmap(1) {
		t.Fatal("container choice not mixed")
	}

	shards, err := st.Split(3, func(doc int64) int { return int(doc % 3) })
	if err != nil {
		t.Fatal(err)
	}
	var mergedDense []int64
	for _, sh := range shards {
		if err := sh.Validate(); err != nil {
			t.Fatal(err)
		}
		d, _ := sh.Postings(0)
		mergedDense = mergeUnion(mergedDense, d)
	}
	if !reflect.DeepEqual(mergedDense, dense) {
		t.Fatal("split lost or invented postings")
	}

	// Corruption: a flipped word breaks the popcount invariant.
	bad := *st
	bad.BitWords = append([]uint64(nil), bad.BitWords...)
	bad.BitWords[1] ^= 1 << 7
	if bad.Validate() == nil {
		t.Fatal("popcount corruption validated")
	}
	// A truncated word array breaks the directory extent.
	bad = *st
	bad.BitWords = bad.BitWords[:len(bad.BitWords)-1]
	if bad.Validate() == nil {
		t.Fatal("truncated bitmap words validated")
	}
	// An unaligned base is rejected.
	bad = *st
	bad.BitBase = append([]int64(nil), bad.BitBase...)
	bad.BitBase[0] += 3
	if bad.Validate() == nil {
		t.Fatal("unaligned bitmap base validated")
	}
}
