package postings

import (
	"math/rand"
	"reflect"
	"testing"
)

// genList builds a random sorted posting list of n docs with gaps up to span.
func genList(rng *rand.Rand, n int, span int64) (docs, freqs []int64) {
	docs = make([]int64, n)
	freqs = make([]int64, n)
	cur := int64(0)
	for i := 0; i < n; i++ {
		cur += 1 + rng.Int63n(span)
		docs[i] = cur
		freqs[i] = 1 + rng.Int63n(9)
	}
	return docs, freqs
}

func buildStoreFrom(t *testing.T, lists [][2][]int64) *Store {
	t.Helper()
	w := NewWriter(0)
	for _, l := range lists {
		if err := w.Append(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Finish()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	return st
}

// buildBlockStoreFrom pins every list to the varint block container — for
// tests that exercise block internals (skip directory, block decode) on
// lists dense enough that Append would otherwise pick a bitmap.
func buildBlockStoreFrom(t *testing.T, lists [][2][]int64) *Store {
	t.Helper()
	w := NewWriter(0)
	w.ForceBlocks()
	for _, l := range lists {
		if err := w.Append(l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Finish()
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRoundTripAcrossBlockBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var lists [][2][]int64
	for _, n := range []int{0, 1, 2, BlockSize - 1, BlockSize, BlockSize + 1, 3 * BlockSize, 1000} {
		d, f := genList(rng, n, 40)
		lists = append(lists, [2][]int64{d, f})
	}
	st := buildStoreFrom(t, lists)
	if st.NumTerms != int64(len(lists)) {
		t.Fatalf("store has %d terms, want %d", st.NumTerms, len(lists))
	}
	for ti, l := range lists {
		docs, freqs := st.Postings(int64(ti))
		if len(l[0]) == 0 {
			if docs != nil || freqs != nil {
				t.Fatalf("term %d: empty list decoded non-nil", ti)
			}
			continue
		}
		if !reflect.DeepEqual(docs, l[0]) || !reflect.DeepEqual(freqs, l[1]) {
			t.Fatalf("term %d: round trip mismatch", ti)
		}
	}
}

func TestWriterRejectsMalformedLists(t *testing.T) {
	cases := []struct {
		name        string
		docs, freqs []int64
	}{
		{"length mismatch", []int64{1, 2}, []int64{1}},
		{"negative doc", []int64{-1, 2}, []int64{1, 1}},
		{"unsorted", []int64{5, 3}, []int64{1, 1}},
		{"duplicate doc", []int64{3, 3}, []int64{1, 1}},
		{"negative freq", []int64{1, 2}, []int64{1, -4}},
	}
	for _, c := range cases {
		if err := NewWriter(0).Append(c.docs, c.freqs); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestSkipDirectoryMatchesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, f := genList(rng, 5*BlockSize+17, 100)
	st := buildBlockStoreFrom(t, [][2][]int64{{d, f}})
	if got, want := st.Blocks(0), int64(6); got != want {
		t.Fatalf("blocks = %d, want %d", got, want)
	}
	// Every interior directory entry holds the true block max, and every
	// block decodes independently to the matching slice of the full list.
	var buf [BlockSize]int64
	for j := int64(0); j < st.Blocks(0); j++ {
		blk := st.decodeDocBlock(0, j, buf[:])
		lo := j * BlockSize
		if !reflect.DeepEqual(blk, d[lo:min(lo+BlockSize, int64(len(d)))]) {
			t.Fatalf("block %d decodes wrong", j)
		}
		if j < st.Blocks(0)-1 && st.BlkMax[j] != blk[len(blk)-1] {
			t.Fatalf("block %d: directory max %d, want %d", j, st.BlkMax[j], blk[len(blk)-1])
		}
	}
}

func TestIntersectSkipsRuledOutBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d, f := genList(rng, 8*BlockSize, 10)
	st := buildBlockStoreFrom(t, [][2][]int64{{d, f}})

	// Self-intersection returns the list, decoding every block.
	got, ist := st.Intersect(d, 0)
	if !reflect.DeepEqual(got, d) {
		t.Fatal("self-intersection differs from list")
	}
	if ist.BlocksDecoded != 8 || ist.BlocksSkipped != 0 {
		t.Fatalf("self-intersection stats %+v", ist)
	}

	// Probing only docs of the last block leaves the first seven cold.
	tail := d[len(d)-3:]
	got, ist = st.Intersect(tail, 0)
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("tail intersection = %v", got)
	}
	if ist.BlocksDecoded != 1 || ist.BlocksSkipped != 7 {
		t.Fatalf("tail intersection decoded %d skipped %d, want 1/7", ist.BlocksDecoded, ist.BlocksSkipped)
	}

	// Candidates between two postings intersect to nothing.
	if got, _ := st.Intersect([]int64{d[0] + 1}, 0); len(got) != 0 {
		t.Fatalf("phantom intersection: %v", got)
	}
	// Empty candidate set decodes nothing.
	if _, ist := st.Intersect(nil, 0); ist.BlocksDecoded != 0 {
		t.Fatalf("empty acc decoded %d blocks", ist.BlocksDecoded)
	}
}

func TestIntersectAgreesWithMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		d, f := genList(rng, rng.Intn(4*BlockSize), 6)
		st := buildStoreFrom(t, [][2][]int64{{d, f}})
		acc, _ := genList(rng, rng.Intn(200), 9)
		want := mergeIntersect(acc, d)
		got, ist := st.Intersect(acc, 0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: intersect = %v, want %v", trial, got, want)
		}
		if int64(ist.BlocksDecoded+ist.BlocksSkipped) != st.Blocks(0) {
			t.Fatalf("trial %d: decoded %d + skipped %d != %d blocks",
				trial, ist.BlocksDecoded, ist.BlocksSkipped, st.Blocks(0))
		}
	}
}

func mergeIntersect(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, f := genList(rng, 2*BlockSize, 5)
	st := buildBlockStoreFrom(t, [][2][]int64{{d, f}})

	bad := *st
	bad.Count = bad.Count[:0]
	if bad.Validate() == nil {
		t.Fatal("truncated counts validated")
	}
	bad = *st
	bad.TermDoc = append([]int64(nil), bad.TermDoc...)
	bad.TermDoc[1]++
	if bad.Validate() == nil {
		t.Fatal("blob overrun validated")
	}
	bad = *st
	bad.BlkDocEnd = append([]int64(nil), bad.BlkDocEnd...)
	bad.BlkDocEnd[0] = 1 << 40
	if bad.Validate() == nil {
		t.Fatal("out-of-bounds directory validated")
	}
}
