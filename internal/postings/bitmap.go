// Bitmap posting containers: the dense half of the adaptive layout.
//
// A term whose postings cover more than 1/BitmapDensity of their doc-ID span
// stores those IDs as set bits in packed 64-bit words instead of delta+varint
// blocks (the Roaring-style hybrid, collapsed to two container kinds). The
// win is twofold: dense∧dense intersection degenerates to one AND per 64
// candidate documents with no decode at all, and the word array is plain
// fixed-width data an mmap'd store aliases in place — the kernel runs
// straight off the page cache, so a hot boolean query touches neither the
// varint decoder nor the posting LRU.
package postings

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// BitmapDensity is the density threshold for the bitmap container: a list of
// at least BlockSize postings is stored as a bitmap when it has more than one
// posting per BitmapDensity doc IDs of its span. At 32 the bitmap costs at
// most span/8 bytes over span/32 postings — under 4 bytes per posting at the
// threshold, shrinking toward 1 bit as density grows — close enough to the
// ~2-3 bytes/posting of varint blocks that the word-wise kernels come almost
// free in space.
const BitmapDensity = 32

// IsBitmap reports whether term t uses the bitmap container.
func (s *Store) IsBitmap(t int64) bool {
	return len(s.TermBit) > 0 && s.TermBit[t+1] > s.TermBit[t]
}

// HasBitmaps reports whether any term uses the bitmap container. Builds
// predating the container cannot load such a store (their Validate rejects
// it loudly); SaveLegacy re-encodes through ForceBlocks when this is true.
func (s *Store) HasBitmaps() bool {
	return len(s.BitWords) > 0
}

// bitmapRange returns term t's packed words and the doc ID of word 0, bit 0.
func (s *Store) bitmapRange(t int64) (words []uint64, base int64) {
	return s.BitWords[s.TermBit[t]:s.TermBit[t+1]], s.BitBase[t]
}

// appendBitmap encodes docs as term t's packed bitmap and freqs as a plain
// varint run. Called by Append once the density heuristic picked the bitmap
// container; docs is non-empty and validated.
func (w *Writer) appendBitmap(docs, freqs []int64) {
	st := &w.st
	if st.TermBit == nil { // first bitmap term: backfill the directory
		st.TermBit = make([]int64, st.NumTerms+1)
		st.BitBase = make([]int64, st.NumTerms)
	}
	base := docs[0] &^ 63 // word-aligned so overlapping bitmaps AND without shifts
	nWords := (docs[len(docs)-1]-base)/64 + 1
	lo := len(st.BitWords)
	st.BitWords = append(st.BitWords, make([]uint64, nWords)...)
	words := st.BitWords[lo:]
	for _, d := range docs {
		off := d - base
		words[off>>6] |= 1 << uint(off&63)
	}
	for _, f := range freqs {
		st.FreqBlob = binary.AppendUvarint(st.FreqBlob, uint64(f))
	}
	st.NumTerms++
	st.Count = append(st.Count, int64(len(docs)))
	st.TermDoc = append(st.TermDoc, int64(len(st.DocBlob))) // empty doc span
	st.TermFreq = append(st.TermFreq, int64(len(st.FreqBlob)))
	st.TermBlk = append(st.TermBlk, int64(len(st.BlkMax))) // empty directory span
	st.BitBase = append(st.BitBase, base)
	st.TermBit = append(st.TermBit, int64(len(st.BitWords)))
}

// BitmapDocsInto appends term t's doc IDs, ascending, over dst[:0] and
// returns the (possibly regrown) slice. t must be a bitmap term. Enumeration
// is a popcount walk over the words — no varint decode.
func (s *Store) BitmapDocsInto(dst []int64, t int64) []int64 {
	words, base := s.bitmapRange(t)
	out := dst[:0]
	for i, w := range words {
		wb := base + int64(i)<<6
		for w != 0 {
			out = append(out, wb+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// bitmapFreqs appends term t's frequencies, in doc order, over dst[:0].
func (s *Store) bitmapFreqs(dst []int64, t int64) []int64 {
	buf := s.FreqBlob[s.TermFreq[t]:s.TermFreq[t+1]]
	out := dst[:0]
	for i := int64(0); i < s.Count[t]; i++ {
		f, w := binary.Uvarint(buf)
		if w <= 0 {
			panic(fmt.Sprintf("postings: corrupt freq run of bitmap term %d", t))
		}
		buf = buf[w:]
		out = append(out, int64(f))
	}
	return out
}

// AndBitmapsInto intersects two bitmap terms word-wise into dst[:0]: one AND
// per 64 candidate doc IDs across the overlap of the two spans, zero decode.
// Both bases are multiples of 64, so the word grids line up with no shifting.
// The stats report word pairs ANDed; every decode counter stays zero.
func (s *Store) AndBitmapsInto(dst []int64, a, b int64) ([]int64, IntersectStats) {
	var ist IntersectStats
	wa, baseA := s.bitmapRange(a)
	wb, baseB := s.bitmapRange(b)
	lo, hi := baseA, baseA+int64(len(wa))<<6
	if baseB > lo {
		lo = baseB
	}
	if end := baseB + int64(len(wb))<<6; end < hi {
		hi = end
	}
	out := dst[:0]
	for w0 := lo; w0 < hi; w0 += 64 {
		w := wa[(w0-baseA)>>6] & wb[(w0-baseB)>>6]
		ist.WordsScanned++
		for w != 0 {
			out = append(out, w0+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out, ist
}

// OrBitmapsInto unions two bitmap terms word-wise into dst[:0], ascending.
func (s *Store) OrBitmapsInto(dst []int64, a, b int64) ([]int64, IntersectStats) {
	var ist IntersectStats
	wa, baseA := s.bitmapRange(a)
	wb, baseB := s.bitmapRange(b)
	endA, endB := baseA+int64(len(wa))<<6, baseB+int64(len(wb))<<6
	lo, hi := baseA, endA
	if baseB < lo {
		lo = baseB
	}
	if endB > hi {
		hi = endB
	}
	out := dst[:0]
	for w0 := lo; w0 < hi; w0 += 64 {
		var w uint64
		if w0 >= baseA && w0 < endA {
			w = wa[(w0-baseA)>>6]
		}
		if w0 >= baseB && w0 < endB {
			w |= wb[(w0-baseB)>>6]
		}
		ist.WordsScanned++
		for w != 0 {
			out = append(out, w0+int64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out, ist
}

// bitmapProbeInto is the dense∧sparse kernel: each accumulator doc costs one
// bit probe into term t's words. IntersectInto dispatches here, so every
// block-skip caller handles bitmap terms transparently.
func (s *Store) bitmapProbeInto(dst, acc []int64, t int64) ([]int64, IntersectStats) {
	var ist IntersectStats
	words, base := s.bitmapRange(t)
	end := base + int64(len(words))<<6
	out := dst[:0]
	ist.BitProbes = len(acc)
	for _, d := range acc {
		if d < base || d >= end {
			continue
		}
		off := d - base
		if words[off>>6]>>(uint(off)&63)&1 != 0 {
			out = append(out, d)
		}
	}
	return out, ist
}

// validateBitmap checks term t's container invariants from either side: a
// bitmap term's popcount must equal its Count and its block spans must be
// empty; a block term must carry no words and a zero base.
func (s *Store) validateBitmap(t int64) error {
	if !s.IsBitmap(t) {
		if s.BitBase[t] != 0 {
			return fmt.Errorf("postings: block term %d has bitmap base %d", t, s.BitBase[t])
		}
		return nil
	}
	if s.TermDoc[t+1] != s.TermDoc[t] || s.TermBlk[t+1] != s.TermBlk[t] {
		return fmt.Errorf("postings: bitmap term %d also has doc blocks", t)
	}
	if base := s.BitBase[t]; base < 0 || base&63 != 0 {
		return fmt.Errorf("postings: bitmap term %d base %d not a non-negative multiple of 64", t, base)
	}
	words, _ := s.bitmapRange(t)
	var n int64
	for _, w := range words {
		n += int64(bits.OnesCount64(w))
	}
	if n != s.Count[t] {
		return fmt.Errorf("postings: bitmap term %d has %d set bits for count %d", t, n, s.Count[t])
	}
	if len(words) > 0 && (words[0] == 0 || words[len(words)-1] == 0) {
		return fmt.Errorf("postings: bitmap term %d has empty boundary words", t)
	}
	return nil
}
