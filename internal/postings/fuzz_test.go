package postings

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// FuzzBlockRoundTrip drives the block codec with arbitrary gap/freq streams:
// the fuzzer's bytes become posting gaps and frequencies, which must encode
// and decode to identity, keep the skip directory consistent with the block
// contents, self-intersect to identity, and survive gob persistence.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3, 255, 0, 7}, uint16(1))
	f.Add(bytes.Repeat([]byte{9, 1}, 400), uint16(3*BlockSize))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Derive a strictly increasing doc list and parallel freqs from the
		// raw bytes; n caps the length so giant inputs stay fast.
		count := int(n)%(4*BlockSize+3) + len(data)%7
		docs := make([]int64, 0, count)
		freqs := make([]int64, 0, count)
		cur := int64(0)
		for i := 0; i < count; i++ {
			gap, fr := int64(1), int64(0)
			if len(data) > 0 {
				gap += int64(data[i%len(data)])
				fr = int64(data[(i*2+1)%len(data)])
			}
			cur += gap
			docs = append(docs, cur)
			freqs = append(freqs, fr)
		}

		w := NewWriter(int64(count))
		w.ForceBlocks() // this fuzzer targets the block codec; bitmaps have their own
		if err := w.Append(docs, freqs); err != nil {
			t.Fatalf("valid list rejected: %v", err)
		}
		if err := w.Append(nil, nil); err != nil { // empty term rides along
			t.Fatalf("empty list rejected: %v", err)
		}
		st := w.Finish()
		if err := st.Validate(); err != nil {
			t.Fatalf("encoded store invalid: %v", err)
		}

		gotDocs, gotFreqs := st.Postings(0)
		if count == 0 {
			if gotDocs != nil || gotFreqs != nil {
				t.Fatal("empty term decoded non-nil")
			}
		} else if !reflect.DeepEqual(gotDocs, docs) || !reflect.DeepEqual(gotFreqs, freqs) {
			t.Fatal("round trip mismatch")
		}

		// Skip-directory consistency: every interior entry is the true block
		// max and the recorded boundaries decode block-locally.
		var buf [BlockSize]int64
		for j := int64(0); j < st.Blocks(0); j++ {
			blk := st.decodeDocBlock(0, j, buf[:])
			lo := int(j) * BlockSize
			hi := min(lo+BlockSize, len(docs))
			if !reflect.DeepEqual(blk, docs[lo:hi]) {
				t.Fatalf("block %d decodes wrong", j)
			}
			if j < st.Blocks(0)-1 && st.BlkMax[j] != docs[hi-1] {
				t.Fatalf("block %d skip max %d, want %d", j, st.BlkMax[j], docs[hi-1])
			}
		}

		// Self-intersection is identity and touches every block.
		inter, ist := st.Intersect(docs, 0)
		if count > 0 && !reflect.DeepEqual(inter, docs) {
			t.Fatal("self-intersection differs")
		}
		if int64(ist.BlocksDecoded+ist.BlocksSkipped) != st.Blocks(0) {
			t.Fatalf("block accounting off: %+v over %d blocks", ist, st.Blocks(0))
		}

		// The layout survives its persistence encoding.
		var pb bytes.Buffer
		if err := gob.NewEncoder(&pb).Encode(st); err != nil {
			t.Fatal(err)
		}
		var re Store
		if err := gob.NewDecoder(&pb).Decode(&re); err != nil {
			t.Fatal(err)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("reloaded store invalid: %v", err)
		}
	})
}

// fuzzList derives a strictly increasing doc list and parallel freqs from
// fuzz bytes. gapMod caps the gaps, steering density: small caps force the
// bitmap container, large ones the block container.
func fuzzList(data []byte, n uint16, gapMod int64) (docs, freqs []int64) {
	count := int(n)%(4*BlockSize+3) + len(data)%7
	docs = make([]int64, 0, count)
	freqs = make([]int64, 0, count)
	cur := int64(0)
	for i := 0; i < count; i++ {
		gap, fr := int64(1), int64(0)
		if len(data) > 0 {
			gap += int64(data[i%len(data)]) % gapMod
			fr = int64(data[(i*2+1)%len(data)])
		}
		cur += gap
		docs = append(docs, cur)
		freqs = append(freqs, fr)
	}
	return docs, freqs
}

// FuzzBitmapRoundTrip drives the adaptive writer with dense gap streams so
// the bitmap container is exercised: whatever container Append picks must
// decode to identity, self-intersect to identity with consistent accounting,
// validate, and survive gob persistence.
func FuzzBitmapRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{1}, 16), uint16(2*BlockSize))
	f.Add(bytes.Repeat([]byte{3, 1, 200}, 100), uint16(4*BlockSize))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		docs, freqs := fuzzList(data, n, 8) // gaps 1..8: above 1/32 density
		w := NewWriter(int64(len(docs)))
		if err := w.Append(docs, freqs); err != nil {
			t.Fatalf("valid list rejected: %v", err)
		}
		if err := w.Append(nil, nil); err != nil {
			t.Fatalf("empty list rejected: %v", err)
		}
		st := w.Finish()
		if err := st.Validate(); err != nil {
			t.Fatalf("encoded store invalid: %v", err)
		}
		if len(docs) >= BlockSize && !st.IsBitmap(0) {
			t.Fatalf("dense %d-posting list not a bitmap", len(docs))
		}

		gotDocs, gotFreqs := st.Postings(0)
		if len(docs) == 0 {
			if gotDocs != nil || gotFreqs != nil {
				t.Fatal("empty term decoded non-nil")
			}
		} else if !reflect.DeepEqual(gotDocs, docs) || !reflect.DeepEqual(gotFreqs, freqs) {
			t.Fatal("round trip mismatch")
		}
		if st.IsBitmap(0) {
			if got := st.BitmapDocsInto(nil, 0); !reflect.DeepEqual(got, docs) {
				t.Fatal("BitmapDocsInto mismatch")
			}
			if self, ist := st.AndBitmapsInto(nil, 0, 0); !reflect.DeepEqual(self, docs) || ist.BlocksDecoded != 0 {
				t.Fatalf("bitmap self-AND broken (%+v)", ist)
			}
		}
		inter, _ := st.Intersect(docs, 0)
		if len(docs) > 0 && !reflect.DeepEqual(inter, docs) {
			t.Fatal("self-intersection differs")
		}

		var pb bytes.Buffer
		if err := gob.NewEncoder(&pb).Encode(st); err != nil {
			t.Fatal(err)
		}
		var re Store
		if err := gob.NewDecoder(&pb).Decode(&re); err != nil {
			t.Fatal(err)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("reloaded store invalid: %v", err)
		}
		if gd, gf := re.Postings(0); len(docs) > 0 &&
			(!reflect.DeepEqual(gd, docs) || !reflect.DeepEqual(gf, freqs)) {
			t.Fatal("reloaded round trip mismatch")
		}
	})
}

// FuzzContainerIntersect pins cross-representation answers: for arbitrary
// pairs of lists, AND and OR through the adaptive store (whatever mix of
// containers Append chose) match the forced-block store exactly, and the
// dedicated word-wise kernels agree whenever both terms are bitmaps.
func FuzzContainerIntersect(f *testing.F) {
	f.Add([]byte{1, 1, 1}, []byte{2, 1, 9}, uint16(300), uint16(200))
	f.Add(bytes.Repeat([]byte{1}, 8), bytes.Repeat([]byte{255}, 8), uint16(4*BlockSize), uint16(64))
	f.Fuzz(func(t *testing.T, da, db []byte, na, nb uint16) {
		docsA, freqsA := fuzzList(da, na, 6)   // dense-leaning
		docsB, freqsB := fuzzList(db, nb, 250) // sparse-leaning
		adaptive := NewWriter(0)
		forced := NewWriter(0)
		forced.ForceBlocks()
		for _, l := range [][2][]int64{{docsA, freqsA}, {docsB, freqsB}} {
			if err := adaptive.Append(l[0], l[1]); err != nil {
				t.Fatal(err)
			}
			if err := forced.Append(l[0], l[1]); err != nil {
				t.Fatal(err)
			}
		}
		ad, bl := adaptive.Finish(), forced.Finish()
		if err := ad.Validate(); err != nil {
			t.Fatal(err)
		}

		// A ∩ B both ways through IntersectInto's dispatch.
		for _, pair := range [][2]int64{{0, 1}, {1, 0}} {
			accD, _ := ad.Postings(pair[0])
			got, gist := ad.IntersectInto(nil, accD, pair[1])
			want, _ := bl.IntersectInto(nil, accD, pair[1])
			if !reflect.DeepEqual(append([]int64{}, got...), append([]int64{}, want...)) {
				t.Fatalf("intersect(%d,%d) diverges across containers", pair[0], pair[1])
			}
			if ad.IsBitmap(pair[1]) && gist.BlocksDecoded != 0 {
				t.Fatalf("bitmap operand decoded blocks: %+v", gist)
			}
		}

		if ad.IsBitmap(0) && ad.IsBitmap(1) {
			want, _ := bl.IntersectInto(nil, docsA, 1)
			got, ist := ad.AndBitmapsInto(nil, 0, 1)
			if !reflect.DeepEqual(append([]int64{}, got...), append([]int64{}, want...)) {
				t.Fatal("AndBitmapsInto diverges from block-skip answer")
			}
			if ist.BlocksDecoded != 0 || ist.PostingsDecoded != 0 || ist.BytesDecoded != 0 {
				t.Fatalf("dense AND decoded something: %+v", ist)
			}
			gotOr, _ := ad.OrBitmapsInto(nil, 0, 1)
			wantOr := mergeUnion(docsA, docsB)
			if !reflect.DeepEqual(append([]int64{}, gotOr...), append([]int64{}, wantOr...)) {
				t.Fatal("OrBitmapsInto diverges from merge union")
			}
		}
	})
}
