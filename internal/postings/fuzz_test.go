package postings

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// FuzzBlockRoundTrip drives the block codec with arbitrary gap/freq streams:
// the fuzzer's bytes become posting gaps and frequencies, which must encode
// and decode to identity, keep the skip directory consistent with the block
// contents, self-intersect to identity, and survive gob persistence.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3, 255, 0, 7}, uint16(1))
	f.Add(bytes.Repeat([]byte{9, 1}, 400), uint16(3*BlockSize))
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Derive a strictly increasing doc list and parallel freqs from the
		// raw bytes; n caps the length so giant inputs stay fast.
		count := int(n)%(4*BlockSize+3) + len(data)%7
		docs := make([]int64, 0, count)
		freqs := make([]int64, 0, count)
		cur := int64(0)
		for i := 0; i < count; i++ {
			gap, fr := int64(1), int64(0)
			if len(data) > 0 {
				gap += int64(data[i%len(data)])
				fr = int64(data[(i*2+1)%len(data)])
			}
			cur += gap
			docs = append(docs, cur)
			freqs = append(freqs, fr)
		}

		w := NewWriter(int64(count))
		if err := w.Append(docs, freqs); err != nil {
			t.Fatalf("valid list rejected: %v", err)
		}
		if err := w.Append(nil, nil); err != nil { // empty term rides along
			t.Fatalf("empty list rejected: %v", err)
		}
		st := w.Finish()
		if err := st.Validate(); err != nil {
			t.Fatalf("encoded store invalid: %v", err)
		}

		gotDocs, gotFreqs := st.Postings(0)
		if count == 0 {
			if gotDocs != nil || gotFreqs != nil {
				t.Fatal("empty term decoded non-nil")
			}
		} else if !reflect.DeepEqual(gotDocs, docs) || !reflect.DeepEqual(gotFreqs, freqs) {
			t.Fatal("round trip mismatch")
		}

		// Skip-directory consistency: every interior entry is the true block
		// max and the recorded boundaries decode block-locally.
		var buf [BlockSize]int64
		for j := int64(0); j < st.Blocks(0); j++ {
			blk := st.decodeDocBlock(0, j, buf[:])
			lo := int(j) * BlockSize
			hi := min(lo+BlockSize, len(docs))
			if !reflect.DeepEqual(blk, docs[lo:hi]) {
				t.Fatalf("block %d decodes wrong", j)
			}
			if j < st.Blocks(0)-1 && st.BlkMax[j] != docs[hi-1] {
				t.Fatalf("block %d skip max %d, want %d", j, st.BlkMax[j], docs[hi-1])
			}
		}

		// Self-intersection is identity and touches every block.
		inter, ist := st.Intersect(docs, 0)
		if count > 0 && !reflect.DeepEqual(inter, docs) {
			t.Fatal("self-intersection differs")
		}
		if int64(ist.BlocksDecoded+ist.BlocksSkipped) != st.Blocks(0) {
			t.Fatalf("block accounting off: %+v over %d blocks", ist, st.Blocks(0))
		}

		// The layout survives its persistence encoding.
		var pb bytes.Buffer
		if err := gob.NewEncoder(&pb).Encode(st); err != nil {
			t.Fatal(err)
		}
		var re Store
		if err := gob.NewDecoder(&pb).Decode(&re); err != nil {
			t.Fatal(err)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("reloaded store invalid: %v", err)
		}
	})
}
